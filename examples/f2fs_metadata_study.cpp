// F2FS-style mixed workload on a device with conventional zones
// (§III-E extension).
//
// The paper notes consumer devices need conventional zones "to allow
// necessary in-place updates from the host, such as updating the
// metadata of F2FS", and leaves their design open. This example runs the
// access pattern F2FS actually produces — small random in-place metadata
// updates (NAT/SIT blocks) concurrent with large sequential data-log
// writes — and shows how the two zone types share the device's buffers,
// SLC region and GC.
//
//   ./build/examples/f2fs_metadata_study
#include <cstdio>

#include "conzone/conzone.hpp"

using namespace conzone;

namespace {

void Run(bool with_metadata) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.num_conventional_zones = 2;  // the metadata area
  auto dev = ConZoneDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "create: %s\n", dev.status().ToString().c_str());
    std::exit(1);
  }
  ConZoneDevice& d = **dev;
  const std::uint64_t zb = d.info().zone_size_bytes;

  std::vector<JobSpec> jobs;
  // The data log: sequential 512 KiB writes through four sequential
  // zones (device zones 2..5, after the two conventional zones).
  JobSpec data;
  data.name = "data-log";
  data.direction = IoDirection::kWrite;
  data.block_size = 512 * kKiB;
  data.zone_list = {2, 3, 4, 5};
  data.io_count = 4 * CeilDiv(zb, data.block_size);
  jobs.push_back(data);

  if (with_metadata) {
    // Metadata: 4 KiB random in-place updates confined to zone 0 —
    // checkpoints and NAT updates land wherever they land.
    JobSpec meta;
    meta.name = "metadata";
    meta.direction = IoDirection::kWrite;
    meta.pattern = IoPattern::kRandom;
    meta.block_size = 4096;
    meta.zone_list = {0};
    meta.io_count = 4000;
    meta.seed = 7;
    jobs.push_back(meta);
  }

  FioRunner fio(d);
  auto r = fio.Run(jobs);
  if (!r.ok()) {
    std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }

  const JobResult& dlog = r.value().jobs[0];
  std::printf("%-22s data log %7.1f MiB/s (p99.9 %8.1f us)",
              with_metadata ? "with metadata traffic:" : "data log alone:",
              dlog.throughput.MiBps(), dlog.latency.Percentile(0.999).us());
  if (with_metadata) {
    const JobResult& meta = r.value().jobs[1];
    std::printf(" | metadata %6.1f KIOPS (p99.9 %8.1f us)",
                meta.throughput.Kiops(), meta.latency.Percentile(0.999).us());
  }
  std::printf("\n");
  if (with_metadata) {
    std::printf(
        "  internals: %llu in-place overwrites, %llu conventional GC runs "
        "(%llu slots), %llu premature flushes, WAF %.2f\n",
        static_cast<unsigned long long>(d.stats().conventional_overwrites),
        static_cast<unsigned long long>(d.stats().conventional_gc_runs),
        static_cast<unsigned long long>(d.stats().conventional_gc_migrated),
        static_cast<unsigned long long>(d.Stats().premature_flushes),
        d.Stats().WriteAmplification());
  }
}

}  // namespace

int main() {
  std::printf("F2FS-style mixed workload over conventional + sequential zones\n\n");
  Run(false);
  Run(true);
  std::printf(
      "\nThe metadata stream's 4 KiB in-place updates ride the shared write\n"
      "buffers and SLC secondary buffer; the interference they inflict on\n"
      "the sequential data log (bandwidth and tail above) is exactly the\n"
      "resource-isolation question the paper leaves open in SIII-E.\n");
  return 0;
}
