// Fleet soak study: crash/recovery at fleet scale on degrading devices.
//
// Runs a fleet of independent device shards on the work-stealing
// executor. Every shard soaks the crash harness's mixed op stream under
// ConsumerDefaults() fault rates with a wear ramp (fault probabilities
// escalate as erase counts pass the rated endurance), a deterministic
// per-shard random power-cut schedule, and a staggered checkpoint
// cadence (shard i checkpoints every base << (i % levels) L2P-log
// entries). Each cut runs the full PowerCut/Recover pipeline and the
// crash-consistency checker before the shard resumes; a shard that
// degrades to read-only ends its soak early as a survivor.
//
// The per-shard table shows the variance the merged numbers hide:
// fault-rate spread across decorrelated fault streams, remount-latency
// spread across checkpoint cadences (longer intervals => older images
// => bigger scan tails), and which shards degraded.
//
//   ./build/examples/fleet_soak [shards] [cuts_per_shard]
#include <cstdio>
#include <cstdlib>

#include "conzone/conzone.hpp"

using namespace conzone;

// Upper bucket edge holding the q-th sample of a log2 histogram. Coarse
// (order-of-magnitude buckets) but remount latencies span decades, so
// the bucket edge is the honest resolution.
static double PercentileUs(const Log2Histogram& h, double q) {
  if (h.count() == 0) return 0.0;
  const double target = q * static_cast<double>(h.count());
  std::uint64_t seen = 0;
  for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
    seen += h.bucket(i);
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(Log2Histogram::BucketLowerEdgeNs(i + 1)) / 1e3;
    }
  }
  return 0.0;
}

int main(int argc, char** argv) {
  FleetSoakPlan plan;
  plan.config = ConZoneConfig::PaperConfig();
  plan.config.num_conventional_zones = 2;
  plan.shards = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
  plan.cuts_per_shard =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 100;
  plan.cut_interval_ns = 10'000'000;  // 10 ms mean between cuts
  plan.ops_per_slice = 24;
  plan.workload.seed = 0xF1EE7;
  plan.workload.conv_prob = 0.25;
  plan.wear_ramp_endurance = 16;
  plan.wear_ramp_slope = 0.02;
  plan.checkpoint_interval_entries = 1024;
  plan.checkpoint_stagger_levels = 4;
  plan.master_seed = 0x50AC;

  std::printf(
      "fleet soak: %u shards x %u cuts, consumer faults + wear ramp "
      "(endurance %u, slope %.2f),\ncheckpoint cadence %llu entries "
      "staggered over %u levels, mean cut interval %s\n",
      plan.shards, plan.cuts_per_shard, plan.wear_ramp_endurance,
      plan.wear_ramp_slope,
      static_cast<unsigned long long>(plan.checkpoint_interval_entries),
      plan.checkpoint_stagger_levels,
      SimDuration::Nanos(plan.cut_interval_ns).ToString().c_str());

  auto res = FleetSoakRunner(plan).Run();
  if (!res.ok()) {
    std::fprintf(stderr, "fleet soak failed: %s\n",
                 res.status().ToString().c_str());
    return 1;
  }
  const FleetSoakResult& r = res.value();

  std::printf("%-6s %10s %6s %8s %8s %8s %10s %10s %10s %4s\n", "shard",
              "ckpt_ivl", "cuts", "remounts", "faults", "retired", "ckpt_hit",
              "p50(us)", "p99(us)", "ro");
  for (const FleetShardResult& s : r.shards) {
    const ConZoneConfig cfg = FleetSoakRunner::ConfigForShard(plan, s.shard_id);
    std::printf("%-6u %10llu %6u %8u %8llu %8llu %10llu %10.1f %10.1f %4s\n",
                s.shard_id,
                static_cast<unsigned long long>(cfg.checkpoint.interval_entries),
                s.cuts, s.remounts,
                static_cast<unsigned long long>(s.reliability.TotalFaults()),
                static_cast<unsigned long long>(s.reliability.RetiredBlocks()),
                static_cast<unsigned long long>(s.recovery.checkpoint_loaded),
                PercentileUs(s.recovery.remount_hist, 0.50),
                PercentileUs(s.recovery.remount_hist, 0.99),
                s.read_only ? "yes" : "no");
  }

  const double n = static_cast<double>(
      r.recovery.power_cuts == 0 ? 1 : r.recovery.power_cuts);
  std::printf(
      "\nfleet: cuts=%llu remounts=%llu survivors(read-only)=%u "
      "fingerprint=%016llx\n",
      static_cast<unsigned long long>(r.total_cuts),
      static_cast<unsigned long long>(r.total_remounts), r.read_only_shards,
      static_cast<unsigned long long>(r.fleet_fingerprint));
  std::printf(
      "  per cut: scan=%.1f skip=%.1f replay=%.1f  remount p50=%.1fus "
      "p99=%.1fus\n",
      static_cast<double>(r.recovery.pages_scanned) / n,
      static_cast<double>(r.recovery.pages_skipped) / n,
      static_cast<double>(r.recovery.replayed_mappings) / n,
      PercentileUs(r.recovery.remount_hist, 0.50),
      PercentileUs(r.recovery.remount_hist, 0.99));
  std::printf("  rec: %s\n", r.recovery.Summary().c_str());
  std::printf("  rel: %s\n", r.reliability.Summary().c_str());
  // Per-IoClass traffic split over the merged fleet counters; classes
  // with no IO stay hidden (the soak's own stream is host-foreground,
  // so migration/maintenance only show up once tagged IO exists).
  static const char* kClassNames[kNumIoClasses] = {"foreground", "migration",
                                                   "maintenance"};
  bool any_class = false;
  for (std::size_t c = 0; c < kNumIoClasses; ++c) {
    any_class |= r.device.class_reads[c] != 0 || r.device.class_writes[c] != 0;
  }
  if (any_class) {
    std::printf("  io classes:");
    for (std::size_t c = 0; c < kNumIoClasses; ++c) {
      if (r.device.class_reads[c] == 0 && r.device.class_writes[c] == 0) continue;
      std::printf(" %s r=%llu w=%llu", kClassNames[c],
                  static_cast<unsigned long long>(r.device.class_reads[c]),
                  static_cast<unsigned long long>(r.device.class_writes[c]));
    }
    std::printf("\n");
  }
  return 0;
}
