// Crash study: remount latency under a random power-cut schedule.
//
// Drives the crash harness (mixed writes / flushes / resets over
// sequential + conventional zones) against a FaultModel cut stream:
// exponentially distributed cut times with a configurable mean interval.
// At every scheduled cut the device loses power mid-workload, remounts,
// and the crash-consistency checker verifies every durability invariant
// before the workload resumes on the recovered device.
//
// Sweeping the mean cut interval varies how much dirty state each cut
// catches in flight: short intervals cut into half-filled write buffers
// and small L2P log tails; long intervals let folds, GC and log flushes
// accumulate, so the mount-time OOB scan walks more programmed pages and
// replays more mappings. The table reports per-cut remount work and the
// simulated remount latency spread (mean / p50 / p99) from the device's
// RecoveryStats histogram.
//
//   ./build/examples/crash_study
#include <cstdio>

#include "conzone/conzone.hpp"

using namespace conzone;

// Upper bucket edge holding the q-th sample of a log2 histogram. Coarse
// (order-of-magnitude buckets) but remount latencies span decades, so
// the bucket edge is the honest resolution.
static double PercentileUs(const Log2Histogram& h, double q) {
  if (h.count() == 0) return 0.0;
  const double target = q * static_cast<double>(h.count());
  std::uint64_t seen = 0;
  for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
    seen += h.bucket(i);
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(Log2Histogram::BucketLowerEdgeNs(i + 1)) / 1e3;
    }
  }
  return 0.0;
}

int main() {
  // Mean simulated time between scheduled cuts.
  constexpr std::uint64_t kMeanIntervalsNs[] = {2'000'000, 10'000'000,
                                                50'000'000};
  constexpr int kCutsPerPoint = 40;
  constexpr std::size_t kOpsPerSlice = 24;

  std::printf("crash study: %d scheduled cuts per point, mixed workload\n",
              kCutsPerPoint);
  std::printf("%-12s %8s %10s %10s %12s %10s %10s %10s\n", "interval",
              "cuts", "lost/cut", "torn/cut", "replay/cut", "mean(us)",
              "p50(us)", "p99(us)");

  for (const std::uint64_t mean_ns : kMeanIntervalsNs) {
    ConZoneConfig cfg = ConZoneConfig::PaperConfig();
    cfg.num_conventional_zones = 2;
    cfg.l2p_log.enabled = true;
    cfg.fault.power_cut_mean_interval_ns = mean_ns;  // implies power_loss

    CrashHarness::Options opt;
    opt.seed = 0xC4A5;
    opt.conv_prob = 0.25;
    CrashHarness h(cfg, opt);
    if (Status st = h.Init(); !st.ok()) {
      std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
      return 1;
    }

    // The cut schedule comes from the device's own fault model so the
    // stream is deterministic in the config seed and decorrelated from
    // any fault draws.
    FaultModel schedule(cfg.fault);
    SimTime next_cut = schedule.NextCutAfter(h.now());
    int cuts = 0;
    while (cuts < kCutsPerPoint) {
      if (Status st = h.RunOps(kOpsPerSlice); !st.ok()) {
        std::fprintf(stderr, "workload failed: %s\n", st.ToString().c_str());
        return 1;
      }
      if (h.now() < next_cut) continue;  // keep running until the alarm
      // The schedule can land inside an idle gap that ended before the
      // last submission; PowerCut refuses to rewind, so clamp forward.
      const SimTime at = Later(next_cut, h.last_submit());
      if (Status st = h.CutAt(at); !st.ok()) {
        std::fprintf(stderr, "cut failed: %s\n", st.ToString().c_str());
        return 1;
      }
      if (Status st = h.RecoverAndVerify(); !st.ok()) {
        std::fprintf(stderr, "CONSISTENCY VIOLATION: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      ++cuts;
      next_cut = schedule.NextCutAfter(h.now());
    }

    const RecoveryStats& rs = h.device().recovery_stats();
    const double n = static_cast<double>(rs.power_cuts);
    std::printf("%-12s %8llu %10.1f %10.1f %12.1f %10.1f %10.1f %10.1f\n",
                SimDuration::Nanos(mean_ns).ToString().c_str(),
                static_cast<unsigned long long>(rs.power_cuts),
                static_cast<double>(rs.buffered_slots_lost) / n,
                static_cast<double>(rs.torn_program_slots) / n,
                static_cast<double>(rs.replayed_mappings) / n,
                rs.remount_hist.mean().seconds() * 1e6,
                PercentileUs(rs.remount_hist, 0.50),
                PercentileUs(rs.remount_hist, 0.99));
    std::printf("  %s\n", rs.Summary().c_str());
  }
  return 0;
}
