// Crash study: remount latency under a random power-cut schedule.
//
// Drives the crash harness (mixed writes / flushes / resets over
// sequential + conventional zones) against a FaultModel cut stream:
// exponentially distributed cut times with a configurable mean interval.
// At every scheduled cut the device loses power mid-workload, remounts,
// and the crash-consistency checker verifies every durability invariant
// before the workload resumes on the recovered device.
//
// Sweeping the mean cut interval varies how much dirty state each cut
// catches in flight: short intervals cut into half-filled write buffers
// and small L2P log tails; long intervals let folds, GC and log flushes
// accumulate, so the mount-time OOB scan walks more programmed pages and
// replays more mappings. Each interval runs twice — checkpointing off
// and on (DESIGN.md §12) — so the table shows side by side what the
// durable L2P image buys: the scan shrinks to the post-checkpoint tail
// and the simulated remount latency drops accordingly.
//
//   ./build/examples/crash_study
#include <cstdio>

#include "conzone/conzone.hpp"

using namespace conzone;

// Upper bucket edge holding the q-th sample of a log2 histogram. Coarse
// (order-of-magnitude buckets) but remount latencies span decades, so
// the bucket edge is the honest resolution.
static double PercentileUs(const Log2Histogram& h, double q) {
  if (h.count() == 0) return 0.0;
  const double target = q * static_cast<double>(h.count());
  std::uint64_t seen = 0;
  for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
    seen += h.bucket(i);
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(Log2Histogram::BucketLowerEdgeNs(i + 1)) / 1e3;
    }
  }
  return 0.0;
}

// One sweep point: run kCuts scheduled cuts and return the device's
// RecoveryStats snapshot. `with_checkpoints` toggles the durable L2P
// image; everything else (seed, workload, cut schedule) is identical, so
// the off/on rows differ only in how the remount rebuilds its state.
static bool RunPoint(std::uint64_t mean_ns, bool with_checkpoints, int cuts_target,
                     std::size_t ops_per_slice, RecoveryStats* out) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.num_conventional_zones = 2;
  cfg.l2p_log.enabled = true;
  cfg.fault.power_cut_mean_interval_ns = mean_ns;  // implies power_loss
  cfg.checkpoint.enabled = with_checkpoints;
  cfg.checkpoint.interval_entries = 4096;

  CrashHarness::Options opt;
  opt.seed = 0xC4A5;
  opt.conv_prob = 0.25;
  CrashHarness h(cfg, opt);
  if (Status st = h.Init(); !st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    return false;
  }

  // The cut schedule comes from the device's own fault model so the
  // stream is deterministic in the config seed and decorrelated from
  // any fault draws.
  FaultModel schedule(cfg.fault);
  SimTime next_cut = schedule.NextCutAfter(h.now());
  int cuts = 0;
  while (cuts < cuts_target) {
    if (Status st = h.RunOps(ops_per_slice); !st.ok()) {
      std::fprintf(stderr, "workload failed: %s\n", st.ToString().c_str());
      return false;
    }
    if (h.now() < next_cut) continue;  // keep running until the alarm
    // The schedule can land inside an idle gap that ended before the
    // last submission; PowerCut refuses to rewind, so clamp forward.
    const SimTime at = Later(next_cut, h.last_submit());
    if (Status st = h.CutAt(at); !st.ok()) {
      std::fprintf(stderr, "cut failed: %s\n", st.ToString().c_str());
      return false;
    }
    if (Status st = h.RecoverAndVerify(); !st.ok()) {
      std::fprintf(stderr, "CONSISTENCY VIOLATION: %s\n", st.ToString().c_str());
      return false;
    }
    ++cuts;
    next_cut = schedule.NextCutAfter(h.now());
  }
  *out = h.device().recovery_stats();
  return true;
}

int main() {
  // Mean simulated time between scheduled cuts.
  constexpr std::uint64_t kMeanIntervalsNs[] = {2'000'000, 10'000'000,
                                                50'000'000};
  constexpr int kCutsPerPoint = 40;
  constexpr std::size_t kOpsPerSlice = 24;

  std::printf(
      "crash study: %d scheduled cuts per point, mixed workload,\n"
      "checkpointing off vs on (interval 4096 L2P-log entries)\n",
      kCutsPerPoint);
  std::printf("%-12s %8s %10s %12s %11s %11s %10s %10s\n", "interval",
              "cuts", "torn/cut", "replay/cut", "scan/cut", "skip/cut",
              "mount(us)", "p99(us)");

  for (const std::uint64_t mean_ns : kMeanIntervalsNs) {
    for (const bool ckpt : {false, true}) {
      RecoveryStats rs;
      if (!RunPoint(mean_ns, ckpt, kCutsPerPoint, kOpsPerSlice, &rs)) return 1;
      const double n = static_cast<double>(rs.power_cuts);
      char label[32];
      std::snprintf(label, sizeof(label), "%s %s",
                    SimDuration::Nanos(mean_ns).ToString().c_str(),
                    ckpt ? "ckpt" : "scan");
      std::printf("%-12s %8llu %10.1f %12.1f %11.1f %11.1f %10.1f %10.1f\n",
                  label, static_cast<unsigned long long>(rs.power_cuts),
                  static_cast<double>(rs.torn_program_slots) / n,
                  static_cast<double>(rs.replayed_mappings) / n,
                  static_cast<double>(rs.pages_scanned) / n,
                  static_cast<double>(rs.pages_skipped) / n,
                  rs.remount_hist.mean().seconds() * 1e6,
                  PercentileUs(rs.remount_hist, 0.99));
      if (ckpt) {
        // The checkpoint counters only mean something on the on-row:
        // image writes, torn images lost to cuts, image-served mounts,
        // entries replayed/rejected, and zones restored without a
        // reconcile re-walk.
        std::printf(
            "  ckpt: written=%llu torn=%llu loaded=%llu replayed=%llu "
            "stale_dropped=%llu zones_restored=%llu\n",
            static_cast<unsigned long long>(rs.checkpoints_written),
            static_cast<unsigned long long>(rs.checkpoints_torn),
            static_cast<unsigned long long>(rs.checkpoint_loaded),
            static_cast<unsigned long long>(rs.checkpoint_mappings),
            static_cast<unsigned long long>(rs.checkpoint_stale_dropped),
            static_cast<unsigned long long>(rs.zones_restored));
        std::printf("  ckpt age: %s\n", rs.checkpoint_age_hist.Summary().c_str());
      }
      std::printf("  %s\n", rs.Summary().c_str());
    }
  }
  return 0;
}
