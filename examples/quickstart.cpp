// Quickstart: create the paper-configured ConZone device, run FIO-style
// sequential and random micro-benchmarks against it, and print the
// device-internal statistics that make consumer-grade zoned storage
// interesting: premature flushes, SLC fold-backs, hybrid-mapping
// aggregation, and L2P cache behavior.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "conzone/conzone.hpp"

using namespace conzone;
using namespace conzone::literals;

int main() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  // Power-loss emulation on: the device journals media mutations so the
  // final cut + remount demo works. Simulated timings are unaffected.
  cfg.fault.power_loss = true;
  auto dev = ConZoneDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "create failed: %s\n", dev.status().ToString().c_str());
    return 1;
  }
  ConZoneDevice& d = **dev;
  const DeviceInfo di = d.info();
  std::printf("== %s ==\n", di.name.c_str());
  std::printf("capacity        : %.1f MiB (%u zones x %.1f MiB)\n",
              static_cast<double>(di.capacity_bytes) / (1 << 20), di.num_zones,
              static_cast<double>(di.zone_size_bytes) / (1 << 20));
  std::printf("reserved/zone   : %.2f MiB normal + %u KiB SLC patch\n",
              static_cast<double>(d.layout().normal_bytes()) / (1 << 20),
              static_cast<unsigned>(d.layout().patch_bytes() / 1024));

  // --- 1. Sequential write: one zone, 512 KiB blocks (fio seq write) ---
  FioRunner fio(d);
  JobSpec wr;
  wr.name = "seqwrite";
  wr.direction = IoDirection::kWrite;
  wr.pattern = IoPattern::kSequential;
  wr.block_size = 512_KiB;
  wr.region_offset = 0;
  wr.region_size = 8 * di.zone_size_bytes;
  wr.io_count = wr.region_size / wr.block_size;
  auto wres = fio.Run({wr});
  if (!wres.ok()) {
    std::fprintf(stderr, "seqwrite failed: %s\n", wres.status().ToString().c_str());
    return 1;
  }
  std::printf("\nseq write 512K  : %8.1f MiB/s   (%s)\n", wres.value().MiBps(),
              wres.value().latency.Summary().c_str());
  // Uniform counters through the StorageDevice interface; `folds` is a
  // ConZone-internal event with no device-neutral meaning.
  const StatsSnapshot snap = d.Stats();
  std::printf("flushes=%llu premature=%llu folds=%llu WAF=%.3f\n",
              static_cast<unsigned long long>(snap.buffer_flushes),
              static_cast<unsigned long long>(snap.premature_flushes),
              static_cast<unsigned long long>(d.stats().folds),
              snap.WriteAmplification());
  // Per-IoClass traffic split, printed only for classes that saw IO:
  // plain FIO traffic is all host-foreground, so the other columns stay
  // hidden until something (a cache, a scrubber) issues tagged IO.
  static const char* kClassNames[kNumIoClasses] = {"foreground", "migration",
                                                   "maintenance"};
  std::printf("io classes      :");
  for (std::size_t c = 0; c < kNumIoClasses; ++c) {
    if (snap.class_reads[c] == 0 && snap.class_writes[c] == 0) continue;
    std::printf(" %s r=%llu w=%llu", kClassNames[c],
                static_cast<unsigned long long>(snap.class_reads[c]),
                static_cast<unsigned long long>(snap.class_writes[c]));
  }
  std::printf("\n");
  std::printf("aggregates      : %llu chunk, %llu zone\n",
              static_cast<unsigned long long>(d.stats().aggregates_chunk),
              static_cast<unsigned long long>(d.stats().aggregates_zone));
  const WriteBufferStats& wb = d.buffers().stats();
  std::printf("write buffers   : appends=%llu takes=%llu conflicts=%llu\n",
              static_cast<unsigned long long>(wb.appends),
              static_cast<unsigned long long>(wb.takes),
              static_cast<unsigned long long>(wb.conflicts));

  // --- 2. Sequential read over the written range ---
  JobSpec rd = wr;
  rd.name = "seqread";
  rd.direction = IoDirection::kRead;
  auto rres = fio.Run({rd}, wres.value().end_time);
  if (!rres.ok()) {
    std::fprintf(stderr, "seqread failed: %s\n", rres.status().ToString().c_str());
    return 1;
  }
  std::printf("\nseq read 512K   : %8.1f MiB/s   (%s)\n", rres.value().MiBps(),
              rres.value().latency.Summary().c_str());

  // --- 3. 4 KiB random reads, paper Fig. 7 style ---
  JobSpec rnd;
  rnd.name = "randread";
  rnd.direction = IoDirection::kRead;
  rnd.pattern = IoPattern::kRandom;
  rnd.block_size = 4096;
  rnd.region_offset = 0;
  rnd.region_size = 8 * di.zone_size_bytes;
  rnd.io_count = 20000;
  d.ResetStats();
  auto rr = fio.Run({rnd}, rres.value().end_time);
  if (!rr.ok()) {
    std::fprintf(stderr, "randread failed: %s\n", rr.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrand read 4K    : %8.1f KIOPS  (%s)\n", rr.value().Kiops(),
              rr.value().latency.Summary().c_str());
  std::printf("L2P miss rate   : %5.1f%%  fetches/miss=%.2f  cache=%zu/%llu entries\n",
              d.L2pMissRate() * 100.0, d.translator().stats().FetchesPerMiss(),
              d.l2p_cache().size(),
              static_cast<unsigned long long>(d.l2p_cache().max_entries()));
  std::printf("reliability     : %s\n", d.Reliability().Summary().c_str());

  // --- 4. Power cut mid-stream + crash-consistent remount ---
  const SimTime cut_at = rr.value().end_time;
  if (Status st = d.PowerCut(cut_at); !st.ok()) {
    std::fprintf(stderr, "power cut failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto rec = d.Recover(cut_at);
  if (!rec.ok()) {
    std::fprintf(stderr, "recover failed: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("\npower cut + remount\n");
  std::printf("recovery        : %s\n", d.recovery_stats().Summary().c_str());
  return 0;
}
