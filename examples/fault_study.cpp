// Fault study: how NAND read-retry rates reshape the read tail.
//
// Sweeps the per-read retry probability over consumer-representative
// values, runs the same preconditioned 4 KiB random-read workload at
// each point, and prints the p50/p99/p99.9 latencies plus the device's
// ReliabilityStats. The median barely moves (most reads stay clean)
// while the tail stretches by whole multiples of the sense latency —
// the signature of retry-dominated consumer flash (§II-A).
//
// The per-event recovery histograms underneath each row show WHERE the
// tail comes from: the read-retry histogram buckets each retried read's
// extra sense time (one bucket per retry depth, since each step adds one
// fixed sense latency), the re-drive histogram each program-recovery
// event.
//
//   ./build/examples/fault_study
#include <cstdio>

#include "conzone/conzone.hpp"

using namespace conzone;

int main() {
  constexpr double kRetryRates[] = {0.0, 0.01, 0.05, 0.2};
  std::printf("4 KiB random reads over 4 preconditioned zones, iodepth 1\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "retry_p", "p50(us)", "p99(us)",
              "p99.9(us)", "KIOPS");

  for (const double rate : kRetryRates) {
    ConZoneConfig cfg = ConZoneConfig::PaperConfig();
    cfg.fault.slc.read_retry = rate;
    cfg.fault.normal.read_retry = rate;
    auto dev = ConZoneDevice::Create(cfg);
    if (!dev.ok()) {
      std::fprintf(stderr, "create failed: %s\n", dev.status().ToString().c_str());
      return 1;
    }
    ConZoneDevice& d = **dev;

    const std::uint64_t span = 4 * cfg.zone_size_bytes;
    SimTime end = SimTime::Zero();
    if (Status st = FioRunner::Precondition(d, 0, span, 512 * kKiB, &end); !st.ok()) {
      std::fprintf(stderr, "precondition failed: %s\n", st.ToString().c_str());
      return 1;
    }

    JobSpec rnd;
    rnd.name = "randread";
    rnd.direction = IoDirection::kRead;
    rnd.pattern = IoPattern::kRandom;
    rnd.block_size = 4096;
    rnd.region_offset = 0;
    rnd.region_size = span;
    rnd.io_count = 20000;
    FioRunner fio(d);
    auto run = fio.Run({rnd}, end);
    if (!run.ok()) {
      std::fprintf(stderr, "randread failed: %s\n", run.status().ToString().c_str());
      return 1;
    }
    const LatencyHistogram& lat = run.value().latency;
    std::printf("%-10.2f %10.1f %10.1f %10.1f %10.1f\n", rate,
                lat.Percentile(0.5).us(), lat.Percentile(0.99).us(),
                lat.Percentile(0.999).us(), run.value().Kiops());
    const ReliabilityStats rel = d.Reliability();
    std::printf("           %s\n", rel.Summary().c_str());
    std::printf("           read_retry_hist: %s\n",
                rel.read_retry_hist.Summary().c_str());
    std::printf("           redrive_hist:    %s\n",
                rel.redrive_hist.Summary().c_str());
  }
  return 0;
}
