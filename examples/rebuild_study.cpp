// Rebuild study: what background redundancy work costs the foreground.
//
// A RedundantVolume serves reads while an online scrub or a live member
// rebuild walks the volume in tick-sized quanta. Both jobs steal member
// bandwidth: scrub reads every replica of every stripe row, rebuild
// reads the surviving source and appends to the fresh member. This
// study measures the foreground's view of that interference — the
// p50/p99 simulated latency of 4 KiB random reads when the volume is
// idle, mid-scrub, and mid-rebuild — the "rebuild tax" a consumer
// device pays for self-healing storage.
//
// Foreground reads and background ticks interleave at the same
// simulated instant (the volume serializes them deterministically), so
// the latency deltas isolate media contention: background work advances
// member write pointers and occupies chip timelines the reads then
// queue behind.
//
//   ./build/examples/rebuild_study
#include <cstdio>
#include <memory>
#include <vector>

#include "conzone/conzone.hpp"

using namespace conzone;

namespace {

constexpr std::uint64_t kStripe = 16 * kKiB;
constexpr std::uint32_t kReadsPerPhase = 2000;

Result<std::unique_ptr<RedundantVolume>> MakeMirror() {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto dev = ConZoneDevice::Create(
        ConZoneConfig::PaperConfig().ForShard(i, /*master_seed=*/42));
    if (!dev.ok()) return dev.status();
    devs.push_back(std::move(dev).value());
  }
  RedundantVolumeOptions opt;
  opt.stripe_bytes = kStripe;
  // Two stripe rows per tick: slow enough that the rebuild outlasts the
  // measured phase, so every sample sees an active background job.
  opt.rows_per_tick = 2;
  return RedundantVolume::Create(std::move(devs), opt);
}

/// One phase: kReadsPerPhase 4 KiB random reads over the filled span,
/// optionally issued at the same simulated instant as one background
/// Tick — the read queues behind the tick's media work on shared chips,
/// which is exactly the interference under study. `now` advances to the
/// later of the two completions, so background work never runs "for
/// free" between samples.
LatencyHistogram MeasurePhase(RedundantVolume& v, std::uint64_t span,
                              bool tick, SimTime* now, Rng* rng) {
  LatencyHistogram hist;
  const std::uint64_t slots = span / 4096;
  for (std::uint32_t i = 0; i < kReadsPerPhase; ++i) {
    SimTime bg_done = *now;
    if (tick) {
      auto bg = v.Tick(*now);
      if (bg.ok()) bg_done = bg.value();
    }
    const std::uint64_t off = (rng->Next() % slots) * 4096;
    auto r = v.Read(IoRequest{off, 4096, *now});
    if (!r.ok()) {
      std::fprintf(stderr, "read: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    hist.Record(r.value().done - *now);
    *now = Later(r.value().done, bg_done);
  }
  return hist;
}

}  // namespace

int main() {
  auto volr = MakeMirror();
  if (!volr.ok()) {
    std::fprintf(stderr, "create: %s\n", volr.status().ToString().c_str());
    return 1;
  }
  RedundantVolume& v = **volr;
  const std::uint64_t zb = v.info().zone_size_bytes;
  const std::uint64_t span = 4 * zb;

  // Fill four logical zones so background work has real ground to walk.
  SimTime now;
  for (std::uint64_t z = 0; z < 4; ++z) {
    for (std::uint64_t off = 0; off < zb; off += 32 * kStripe) {
      std::vector<std::uint64_t> toks(32 * kStripe / 4096);
      for (std::uint64_t j = 0; j < toks.size(); ++j) {
        toks[j] = (z * zb + off) / 4096 + j + 1;
      }
      auto w = v.Write(IoRequest{z * zb + off, 32 * kStripe, now, toks});
      if (!w.ok()) {
        std::fprintf(stderr, "fill: %s\n", w.status().ToString().c_str());
        return 1;
      }
      now = w.value().done;
    }
  }
  auto f = v.Flush(now);
  if (f.ok()) now = f.value();

  Rng rng(7);

  // Phase 1: idle baseline.
  LatencyHistogram idle = MeasurePhase(v, span, /*tick=*/false, &now, &rng);

  // Phase 2: scrub active (restarted if it drains before the phase ends).
  (void)v.StartScrub(now);
  LatencyHistogram scrub;
  for (std::uint32_t i = 0; i < kReadsPerPhase; ++i) {
    if (!v.scrub_active()) (void)v.StartScrub(now);
    SimTime bg_done = now;
    auto bg = v.Tick(now);
    if (bg.ok()) bg_done = bg.value();
    const std::uint64_t off = (rng.Next() % (span / 4096)) * 4096;
    auto r = v.Read(IoRequest{off, 4096, now});
    if (!r.ok()) {
      std::fprintf(stderr, "scrub read: %s\n", r.status().ToString().c_str());
      return 1;
    }
    scrub.Record(r.value().done - now);
    now = Later(r.value().done, bg_done);
  }
  // Drain the scrub so the rebuild phase starts clean.
  for (int i = 0; i < 1000000 && v.scrub_active(); ++i) {
    auto bg = v.Tick(now);
    if (!bg.ok()) break;
    now = Later(now, bg.value());
  }

  // Phase 3: rebuild active. Fail member 1 and replace it; reads fall
  // back to member 0, which also serves as the rebuild source.
  (void)v.MarkFailed(1);
  auto fresh = ConZoneDevice::Create(
      ConZoneConfig::PaperConfig().ForShard(9, /*master_seed=*/42));
  if (!fresh.ok()) {
    std::fprintf(stderr, "fresh: %s\n", fresh.status().ToString().c_str());
    return 1;
  }
  if (Status st = v.ReplaceMember(1, std::move(fresh).value(), now); !st.ok()) {
    std::fprintf(stderr, "replace: %s\n", st.ToString().c_str());
    return 1;
  }
  LatencyHistogram rebuild = MeasurePhase(v, span, /*tick=*/true, &now, &rng);
  const bool rebuild_outlasted = v.rebuild_active();
  for (int i = 0; i < 1000000 && v.rebuild_active(); ++i) {
    auto bg = v.Tick(now);
    if (!bg.ok()) break;
    now = Later(now, bg.value());
  }

  std::printf("# rebuild_study: 2-way ConZone mirror, %u x 4KiB random reads "
              "per phase, rows_per_tick=2\n",
              kReadsPerPhase);
  std::printf("%-16s %10s %10s %10s\n", "phase", "p50(us)", "p99(us)",
              "max(us)");
  auto row = [](const char* name, const LatencyHistogram& h) {
    std::printf("%-16s %10.1f %10.1f %10.1f\n", name, h.Percentile(0.50).us(),
                h.Percentile(0.99).us(), h.max().us());
  };
  row("idle", idle);
  row("scrub-active", scrub);
  row("rebuild-active", rebuild);
  std::printf("# rebuild outlasted measurement phase: %s\n",
              rebuild_outlasted ? "yes" : "no");
  std::printf("# redundancy: %s\n", v.Redundancy().Summary().c_str());
  return 0;
}
