// Cache study: how a zone-aware flash cache behaves as its capacity
// shrinks, and what eviction-by-reset buys over overwrite-style
// eviction on the same flash geometry.
//
// Part 1 mounts a ZoneCache on progressively larger ConZone devices and
// drives the same zipfian get/put mix against each: hit ratio climbs
// with capacity while the device-level write amplification stays flat,
// because the cache cleans by whole-zone reset — the device never has to
// garbage-collect behind it.
//
// Part 2 replays the identical request stream against an overwrite-style
// cache (fixed per-key slabs, updated in place) on a Legacy conventional
// device with the same flash geometry, where cleaning is the device's
// problem. The device-level WA comparison between the two is the point:
// reset-based eviction must not amplify more than overwrite-based
// eviction does (EXPERIMENTS.md records the measured numbers).
//
//   ./build/examples/cache_study
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "conzone/conzone.hpp"

using namespace conzone;

namespace {

CacheJobSpec StudySpec() {
  CacheJobSpec spec;
  spec.keys = 1024;
  spec.zipf_theta = 0.99;
  spec.get_ratio = 0.8;  // a write-heavier mix than YCSB-B: churn matters
  spec.min_value_slots = 2;
  spec.max_value_slots = 6;
  spec.ops = 20000;
  spec.seed = 11;
  spec.hot_divisor = 1;  // single admission group, see StudyOptions()
  return spec;
}

// The paper's consumer device has two controller write buffers. A cache
// stream that doesn't fit that budget gets its extents evicted as
// sub-program-unit SLC flushes, which the device later folds and
// garbage-collects — measured here, three streams (two groups + the
// journal) cost ~0.6x extra device WA. So the study mounts with ONE
// admission group (data + journal = two streams) and a lazy sync
// cadence that doesn't force partial-unit buffer drains.
ZoneCacheOptions StudyOptions() {
  ZoneCacheOptions opt;
  opt.num_groups = 1;
  opt.sync_every_puts = 256;
  return opt;
}

struct ZonedPoint {
  std::uint32_t data_zones = 0;
  std::uint64_t max_entries = 0;
  double hit_ratio = 0;
  double wa = 0;
  std::uint64_t resets = 0;
  std::uint64_t evictions = 0;
  std::uint64_t migrated = 0;
};

// One zoned-cache measurement. `blocks_per_chip` scales the zone count
// and `conventional` the journal area — and with it the index bound —
// so the two knobs together sweep the cache's object capacity.
bool RunZoned(std::uint32_t blocks_per_chip, std::uint32_t conventional,
              ZonedPoint* out) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.channels = 1;
  cfg.geometry.chips_per_channel = 1;
  cfg.geometry.blocks_per_chip = blocks_per_chip;
  cfg.geometry.slc_blocks_per_chip = 4;
  cfg.zone_size_bytes = 4 * kMiB;
  cfg.num_conventional_zones = conventional;
  auto dev = ConZoneDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "create: %s\n", dev.status().ToString().c_str());
    return false;
  }
  auto cache = ZoneCache::Mount(dev->get(), StudyOptions(), SimTime::Zero());
  if (!cache.ok()) {
    std::fprintf(stderr, "mount: %s\n", cache.status().ToString().c_str());
    return false;
  }
  auto r = CacheWorkloadRunner::Run(**cache, StudySpec(), SimTime::Zero());
  if (!r.ok()) {
    std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
    return false;
  }
  const StatsSnapshot s = (*dev)->Stats();
  out->data_zones = (*cache)->num_data_zones();
  out->max_entries = (*cache)->max_entries();
  out->hit_ratio = (*cache)->stats().HitRatio();
  out->wa = s.WriteAmplification();
  out->resets = s.zone_resets;
  out->evictions = (*cache)->stats().evictions;
  out->migrated = (*cache)->stats().migrated_entries;
  return true;
}

// Overwrite-style eviction baseline: the same cache-aside request stream
// against per-key slabs in conventional flash, updated in place —
// admission overwrites the slab, eviction overwrites the slab of a
// hash-colliding key, and all cleaning is left to the device's garbage
// collection. The slab arena spans the keyspace's worst-case footprint,
// mirroring how the zoned cache cycles its whole data space.
bool RunOverwrite(std::uint64_t num_slabs, double* hit_ratio, double* wa) {
  const CacheJobSpec spec = StudySpec();
  LegacyConfig cfg;
  cfg.geometry.channels = 1;
  cfg.geometry.chips_per_channel = 1;
  cfg.geometry.blocks_per_chip = 24;
  cfg.geometry.slc_blocks_per_chip = 4;
  auto dev = LegacyDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "legacy create: %s\n", dev.status().ToString().c_str());
    return false;
  }
  StorageDevice& d = **dev;
  const std::uint64_t slab_slots = spec.max_value_slots;  // worst-case object
  const std::uint64_t arena_slabs = d.info().capacity_bytes / (slab_slots * 4096);
  const std::uint64_t slabs = std::min(num_slabs, arena_slabs);

  struct Slab {
    bool used = false;
    std::uint64_t key = 0;
    std::uint32_t value_slots = 0;
  };
  std::vector<Slab> dir(slabs);
  std::uint64_t gets = 0, hits = 0;

  Rng rng(MixSeeds(spec.seed, 0x63616368u, spec.ops));  // same stream as Run()
  const ZipfianGenerator zipf(spec.keys, spec.zipf_theta);
  std::vector<std::uint32_t> generations(spec.keys, 0);
  std::vector<std::uint64_t> value;
  SimTime now;

  const auto fill = [&](std::uint64_t key, std::uint32_t gen) -> bool {
    const std::uint32_t n = CacheWorkloadRunner::ValueSlots(spec, key, gen);
    value.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      value.push_back(CacheWorkloadRunner::ValueToken(spec.seed, key, gen, i));
    }
    Slab& s = dir[key % slabs];
    auto w = d.Write(IoRequest{(key % slabs) * slab_slots * 4096,
                               static_cast<std::uint64_t>(n) * 4096, now, value});
    if (!w.ok()) {
      std::fprintf(stderr, "slab write: %s\n", w.status().ToString().c_str());
      return false;
    }
    now = w.value().done;
    s = Slab{true, key, n};
    return true;
  };

  for (std::uint64_t op = 0; op < spec.ops; ++op) {
    const std::uint64_t key = zipf.Next(rng);
    const bool is_get = rng.NextBool(spec.get_ratio);
    const std::uint32_t gen = generations[key];
    if (is_get) {
      ++gets;
      const Slab& s = dir[key % slabs];
      if (s.used && s.key == key) {
        ++hits;
        auto rd = d.Read(IoRequest{(key % slabs) * slab_slots * 4096,
                                   static_cast<std::uint64_t>(s.value_slots) * 4096,
                                   now});
        if (!rd.ok()) return false;
        now = rd.value().done;
      } else if (!fill(key, gen)) {
        return false;
      }
    } else {
      generations[key] = gen + 1;
      if (!fill(key, gen + 1)) return false;
    }
  }
  const StatsSnapshot s = d.Stats();
  *hit_ratio = gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
  *wa = s.WriteAmplification();
  return true;
}

}  // namespace

int main() {
  std::printf("== ZoneCache vs cache size (zipfian %.2f, %.0f%% gets) ==\n",
              StudySpec().zipf_theta, StudySpec().get_ratio * 100.0);
  std::printf("%-11s %-11s %-9s %-9s %-7s %-9s %-9s\n", "data_zones",
              "max_entries", "hit_ratio", "device_WA", "resets", "evictions",
              "migrated");
  ZonedPoint mid{};
  const std::pair<std::uint32_t, std::uint32_t> sizes[] = {
      {16, 2}, {24, 4}, {32, 6}, {48, 8}};
  for (const auto& [blocks, conventional] : sizes) {
    ZonedPoint p{};
    if (!RunZoned(blocks, conventional, &p)) return 1;
    if (blocks == 24u) mid = p;
    std::printf("%-11u %-11llu %-9.3f %-9.3f %-7llu %-9llu %-9llu\n",
                p.data_zones, static_cast<unsigned long long>(p.max_entries),
                p.hit_ratio, p.wa, static_cast<unsigned long long>(p.resets),
                static_cast<unsigned long long>(p.evictions),
                static_cast<unsigned long long>(p.migrated));
  }

  double ow_hit = 0, ow_wa = 0;
  if (!RunOverwrite(StudySpec().keys, &ow_hit, &ow_wa)) return 1;
  std::printf("\n== Eviction policy, same stream + flash geometry ==\n");
  std::printf("%-28s %-9s %-9s\n", "policy", "hit_ratio", "device_WA");
  std::printf("%-28s %-9.3f %-9.3f\n", "eviction-by-reset (zoned)", mid.hit_ratio,
              mid.wa);
  std::printf("%-28s %-9.3f %-9.3f\n", "overwrite-in-place (legacy)", ow_hit,
              ow_wa);
  std::printf("\nreset-based WA %s overwrite-based WA (%s)\n",
              mid.wa <= ow_wa ? "<=" : ">",
              mid.wa <= ow_wa ? "zone resets erase without copying"
                              : "UNEXPECTED: investigate");
  return mid.wa <= ow_wa ? 0 : 2;
}
