// Read-range study: a finer-grained version of the paper's Fig. 7 case
// study (§IV-D) — 4 KiB random-read performance as the read range grows,
// under page mapping vs hybrid mapping and across L2P cache sizes.
//
// The crossover this reproduces: page mapping collapses once the range
// outgrows the cache's page-entry coverage (cache_entries x 4 KiB),
// while hybrid mapping stays flat because completed zones cost one
// entry each.
//
//   ./build/examples/read_range_study
#include <cstdio>

#include "conzone/conzone.hpp"

using namespace conzone;

namespace {

double MeasureKiops(bool hybrid, std::uint64_t l2p_bytes, std::uint64_t range) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.translator.hybrid = hybrid;
  cfg.l2p.capacity_bytes = l2p_bytes;
  auto dev = ConZoneDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "create: %s\n", dev.status().ToString().c_str());
    std::exit(1);
  }
  ConZoneDevice& d = **dev;
  SimTime t;
  if (!FioRunner::Precondition(d, 0, range, 512 * kKiB, &t).ok()) std::exit(1);

  FioRunner fio(d);
  JobSpec job;
  job.direction = IoDirection::kRead;
  job.pattern = IoPattern::kRandom;
  job.block_size = 4096;
  job.region_size = range;
  job.io_count = 3000;  // warm-up
  job.seed = 99;
  auto warm = fio.Run({job}, t);
  if (!warm.ok()) std::exit(1);
  job.io_count = 10000;
  job.seed = 1;
  auto r = fio.Run({job}, warm.value().end_time);
  if (!r.ok()) {
    std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return r.value().Kiops();
}

}  // namespace

int main() {
  std::printf("Read-range study: 4 KiB random read KIOPS by mapping mechanism\n\n");
  const std::uint64_t ranges[] = {1 * kMiB, 4 * kMiB, 16 * kMiB, 64 * kMiB,
                                  256 * kMiB, 1 * kGiB};
  const std::uint64_t cache_sizes[] = {6 * kKiB, 12 * kKiB, 24 * kKiB};

  std::printf("%-8s", "range");
  for (std::uint64_t c : cache_sizes) {
    std::printf(" | page %2lluK  hyb %2lluK", static_cast<unsigned long long>(c / 1024),
                static_cast<unsigned long long>(c / 1024));
  }
  std::printf("\n");
  for (std::uint64_t range : ranges) {
    if (range >= kGiB) {
      std::printf("%5lluGiB ", static_cast<unsigned long long>(range / kGiB));
    } else {
      std::printf("%5lluMiB ", static_cast<unsigned long long>(range / kMiB));
    }
    for (std::uint64_t c : cache_sizes) {
      std::printf(" | %8.1f %8.1f", MeasureKiops(false, c, range),
                  MeasureKiops(true, c, range));
    }
    std::printf("\n");
  }
  std::printf(
      "\nEach page-mapping column collapses past its coverage knee\n"
      "(entries x 4 KiB = cache_bytes/4 x 4 KiB of range); the hybrid\n"
      "columns stay flat at every cache size because zone aggregation\n"
      "needs one entry per 16 MiB (§IV-D).\n");
  return 0;
}
