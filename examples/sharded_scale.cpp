// Sharded scale-out study: aggregate emulator throughput vs shard count.
//
// Runs the same preconditioned 4 KiB random-read workload on N fully
// independent device shards (own config, own seeded fault stream, own
// event queue) with one worker thread per shard, and reports the
// AGGREGATE simulated IOs per wall-clock second plus the scaling
// efficiency relative to the 1-shard baseline:
//
//   efficiency(N) = (agg_ios_per_s(N) / agg_ios_per_s(1)) / N
//
// On a host with >= N free cores, efficiency should stay near 1.0 — the
// shards share nothing on the hot path. On fewer cores the shards
// time-slice and efficiency degrades toward 1/N; the host core count is
// printed so the numbers read honestly. The merged statistics are
// bit-identical for any thread count (see tests/shard_test.cpp), so
// scaling changes only wall-clock time, never results.
//
//   ./build/examples/sharded_scale
#include <chrono>
#include <cstdio>
#include <thread>

#include "conzone/conzone.hpp"

using namespace conzone;

int main() {
  constexpr std::uint32_t kShardCounts[] = {1, 2, 4, 8};
  constexpr std::uint64_t kRegion = 64 * kMiB;

  JobSpec rd;
  rd.name = "randread";
  rd.pattern = IoPattern::kRandom;
  rd.direction = IoDirection::kRead;
  rd.block_size = 4096;
  rd.region_offset = 0;
  rd.region_size = kRegion;
  rd.io_count = 40000;
  rd.iodepth = 4;
  rd.seed = 1;

  std::printf("4 KiB random reads, one device shard per worker thread "
              "(host has %u hardware threads)\n",
              std::thread::hardware_concurrency());
  std::printf("%-8s %-8s %14s %14s %12s\n", "shards", "threads", "agg_sim_ios/s",
              "events/s", "efficiency");

  double base_ios_per_s = 0.0;
  for (const std::uint32_t shards : kShardCounts) {
    ShardPlan plan;
    plan.config = ConZoneConfig::PaperConfig();
    plan.jobs = {rd};
    plan.shards = shards;
    plan.threads = shards;
    plan.master_seed = 1;
    plan.precondition_bytes = kRegion;

    const auto t0 = std::chrono::steady_clock::now();
    auto res = ShardedRunner(plan).Run();
    const auto t1 = std::chrono::steady_clock::now();
    if (!res.ok()) {
      std::fprintf(stderr, "sharded run failed: %s\n",
                   res.status().ToString().c_str());
      return 1;
    }
    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    const ShardedResult& r = res.value();
    const double ios_per_s = static_cast<double>(r.total.ops) / wall_s;
    const double events_per_s = static_cast<double>(r.events) / wall_s;
    if (shards == 1) base_ios_per_s = ios_per_s;
    const double efficiency =
        base_ios_per_s > 0 ? ios_per_s / (base_ios_per_s * shards) : 0.0;
    std::printf("%-8u %-8u %14.0f %14.0f %11.2fx\n", shards, shards, ios_per_s,
                events_per_s, efficiency);
  }
  return 0;
}
