// GC-pressure study: sizing the SLC secondary write buffer (§III-D).
//
// Consumer devices must choose how many blocks to program as SLC. A
// small SLC region forces the composite GC to run during host writes
// (foreground stalls, tail-latency spikes); a large region burns
// capacity. This example runs a premature-flush-heavy workload across
// SLC region sizes and reports GC activity and write tail latency.
//
//   ./build/examples/gc_pressure_study
#include <cstdio>

#include "conzone/conzone.hpp"

using namespace conzone;

namespace {

void RunWithSlcBlocks(std::uint32_t slc_blocks) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  // Keep the normal region constant at 40 zones; vary only SLC.
  cfg.geometry.slc_blocks_per_chip = slc_blocks;
  cfg.geometry.blocks_per_chip = 40 + slc_blocks;
  auto dev = ConZoneDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "create: %s\n", dev.status().ToString().c_str());
    std::exit(1);
  }
  ConZoneDevice& d = **dev;

  // Conflict-heavy writes: two same-parity zones, 48 KiB granularity,
  // several rewrite rounds so staged SLC data churns and must be
  // reclaimed.
  FioRunner fio(d);
  std::vector<JobSpec> jobs;
  for (int j = 0; j < 2; ++j) {
    JobSpec s;
    s.name = "w" + std::to_string(j);
    s.direction = IoDirection::kWrite;
    s.block_size = 48 * kKiB;
    s.zone_list = {j == 0 ? 0ull : 2ull};
    s.io_count = 4 * CeilDiv(d.info().zone_size_bytes, s.block_size);  // 4 passes
    s.reset_zones_on_wrap = true;
    s.seed = static_cast<std::uint64_t>(j + 1);
    jobs.push_back(std::move(s));
  }
  auto r = fio.Run(jobs);
  if (!r.ok()) {
    std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  const auto& gc = d.gc().stats();
  std::printf(
      "%4u blocks (%5.1f MiB) | %7.1f MiB/s | WAF %4.2f | GC runs %3llu "
      "(migrated %5llu slots, %6.1f ms busy) | write p99.9 %8.1f us\n",
      slc_blocks,
      static_cast<double>(cfg.geometry.SlcUsableBytesPerSuperblock()) * slc_blocks /
          (1 << 20),
      r.value().MiBps(), d.Stats().WriteAmplification(),
      static_cast<unsigned long long>(gc.runs),
      static_cast<unsigned long long>(gc.slots_migrated), gc.busy_time.ms(),
      r.value().latency.Percentile(0.999).us());
}

}  // namespace

int main() {
  std::printf("GC-pressure study: SLC region size under conflict-heavy writes\n\n");
  for (std::uint32_t blocks : {3u, 4u, 6u, 8u, 12u, 16u}) {
    RunWithSlcBlocks(blocks);
  }
  std::printf(
      "\nSmaller SLC regions push the composite GC into the write path:\n"
      "watch the GC busy time climb and the p99.9 write latency spike as\n"
      "the region shrinks, while bandwidth degrades only mildly — the\n"
      "tail, not the average, is what SLC sizing buys (§III-D).\n");
  return 0;
}
