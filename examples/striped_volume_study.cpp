// Striped-volume study: host-side scale-up over N emulated devices.
//
// A StripedVolume groups N member devices into one logical zoned address
// space: logical zones interleave round-robin across stripe sets, and a
// single large write fans out into per-member runs whose simulated
// timelines advance independently. This study sweeps the member count
// and reports the aggregate simulated bandwidth the volume achieves for
// the same workload — the host-layer analogue of the sharded runner's
// wall-clock scale-out.
//
//   ./build/examples/striped_volume_study
#include <cstdio>
#include <memory>
#include <vector>

#include "conzone/conzone.hpp"

using namespace conzone;

namespace {

constexpr std::uint64_t kSpan = 64 * kMiB;

Result<std::unique_ptr<StripedVolume>> MakeVolume(std::uint32_t members) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < members; ++i) {
    // Decorrelated member configs, the same derivation the sharded
    // runner uses for its members.
    auto dev = ConZoneDevice::Create(
        ConZoneConfig::PaperConfig().ForShard(i, /*master_seed=*/42));
    if (!dev.ok()) return dev.status();
    devs.push_back(std::move(dev).value());
  }
  return StripedVolume::Create(std::move(devs), StripedVolumeOptions{});
}

struct Row {
  double write_mibps = 0;
  double read_kiops = 0;
  double waf = 0;
  std::uint64_t logical_zones = 0;
  std::uint64_t end_ns = 0;
};

Row RunOne(std::uint32_t members) {
  auto volr = MakeVolume(members);
  if (!volr.ok()) {
    std::fprintf(stderr, "create: %s\n", volr.status().ToString().c_str());
    std::exit(1);
  }
  StripedVolume& vol = **volr;

  JobSpec wr;
  wr.name = "seqwrite";
  wr.direction = IoDirection::kWrite;
  wr.pattern = IoPattern::kSequential;
  wr.block_size = 512 * kKiB;
  wr.region_offset = 0;
  wr.region_size = kSpan;
  wr.io_count = kSpan / wr.block_size;
  wr.iodepth = 4;
  wr.seed = 1;

  FioRunner fio(vol);
  auto wres = fio.Run({wr}, SimTime::Zero());
  if (!wres.ok()) {
    std::fprintf(stderr, "write: %s\n", wres.status().ToString().c_str());
    std::exit(1);
  }
  auto fres = vol.Flush(wres.value().end_time);
  if (!fres.ok()) {
    std::fprintf(stderr, "flush: %s\n", fres.status().ToString().c_str());
    std::exit(1);
  }

  JobSpec rd;
  rd.name = "randread";
  rd.direction = IoDirection::kRead;
  rd.pattern = IoPattern::kRandom;
  rd.block_size = 4096;
  rd.region_offset = 0;
  rd.region_size = kSpan;
  rd.io_count = 16384;
  rd.iodepth = 8;
  rd.seed = 2;
  auto rres = fio.Run({rd}, fres.value());
  if (!rres.ok()) {
    std::fprintf(stderr, "read: %s\n", rres.status().ToString().c_str());
    std::exit(1);
  }

  Row row;
  row.write_mibps = wres.value().MiBps();
  row.read_kiops = rres.value().Kiops();
  row.waf = vol.Stats().WriteAmplification();
  row.logical_zones = vol.info().num_zones;
  row.end_ns = rres.value().end_time.ns();
  return row;
}

}  // namespace

int main() {
  std::printf("Striped-volume study: one logical device over N members\n");
  std::printf("(64 MiB sequential write at qd4, then 16 Ki random 4 KiB reads at qd8)\n\n");
  std::printf("%-8s | %-12s | %-11s | %-5s | %s\n", "members", "write MiB/s",
              "read KIOPS", "WAF", "logical zones");

  std::uint64_t base_end = 0;
  for (const std::uint32_t members : {1u, 2u, 4u}) {
    const Row row = RunOne(members);
    std::printf("%-8u | %12.0f | %11.1f | %5.2f | %llu\n", members,
                row.write_mibps, row.read_kiops, row.waf,
                static_cast<unsigned long long>(row.logical_zones));
    if (members == 1) base_end = row.end_ns;
  }

  // Determinism: the study itself is a smoke test. Same seeds, same
  // volume, bit-identical simulated end time.
  const Row again = RunOne(1);
  const bool deterministic = again.end_ns == base_end;
  std::printf("\nrepeat run bit-identical: %s\n", deterministic ? "yes" : "NO");

  // Typed zone identity: where does logical zone L live? Each logical
  // zone stripes across one set of members; sets interleave round-robin.
  auto volr = MakeVolume(4);
  if (volr.ok()) {
    StripedVolume& vol = **volr;
    std::printf("\nzone map (4 members, stripe width %u):\n", vol.stripe_width());
    for (std::uint64_t l = 0; l < 4; ++l) {
      std::printf("  logical zone %llu ->", static_cast<unsigned long long>(l));
      for (std::uint32_t lane = 0; lane < vol.stripe_width(); ++lane) {
        const MemberZone mz = vol.ToMemberZone(ZoneId{l}, lane);
        std::printf(" m%u/z%llu", mz.member,
                    static_cast<unsigned long long>(mz.zone.value()));
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nReading the table: one member is the bare-device baseline; adding\n"
      "members multiplies the write bandwidth because each 512 KiB write\n"
      "splits into per-member runs that program flash concurrently in\n"
      "simulated time. Random reads scale with members too until the\n"
      "queue depth runs out of distinct members to overlap.\n");
  return deterministic ? 0 : 1;
}
