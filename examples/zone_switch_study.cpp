// Zone-switch study: how the number of shared write buffers and the
// host's write granularity determine premature flushing, SLC detours,
// write amplification and bandwidth (paper §II-B, §IV-C).
//
// Two writers alternate between two zones that map to the SAME buffer
// (worst case, like Fig. 6b's same-parity test). We sweep:
//   - the write granularity (16 KiB .. 384 KiB), and
//   - the number of write buffers (1, 2, 4, 6 — the paper notes F2FS
//     would want 6 but consumer SRAM affords ~2).
//
//   ./build/examples/zone_switch_study
#include <cstdio>

#include "conzone/conzone.hpp"

using namespace conzone;

namespace {

struct Cell {
  double mibps = 0;
  double waf = 0;
  std::uint64_t premature = 0;
};

Cell RunWriters(std::uint32_t num_buffers, std::uint64_t granularity) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.buffers.num_buffers = num_buffers;
  auto dev = ConZoneDevice::Create(cfg);
  if (!dev.ok()) {
    std::fprintf(stderr, "create: %s\n", dev.status().ToString().c_str());
    std::exit(1);
  }
  ConZoneDevice& d = **dev;
  FioRunner fio(d);
  // Four concurrent writers on zones 0..3: with one buffer everyone
  // collides, with two the same-parity pairs collide (the Fig. 6b
  // scenario), with four or more nobody does.
  std::vector<JobSpec> jobs;
  for (std::uint64_t j = 0; j < 4; ++j) {
    JobSpec s;
    s.name = "w" + std::to_string(j);
    s.direction = IoDirection::kWrite;
    s.block_size = granularity;
    s.zone_list = {j};
    s.io_count = CeilDiv(d.info().zone_size_bytes, granularity);
    s.seed = j + 1;
    jobs.push_back(std::move(s));
  }
  auto r = fio.Run(jobs);
  if (!r.ok()) {
    std::fprintf(stderr, "run: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  const StatsSnapshot snap = d.Stats();
  return Cell{r.value().MiBps(), snap.WriteAmplification(), snap.premature_flushes};
}

}  // namespace

int main() {
  std::printf("Zone-switch study: four writers vs the shared buffer pool\n");
  std::printf("(bandwidth MiB/s | write amplification | premature flushes)\n\n");
  const std::uint64_t granularities[] = {16 * kKiB, 48 * kKiB, 96 * kKiB,
                                         192 * kKiB, 384 * kKiB};
  const std::uint32_t buffer_counts[] = {1, 2, 4, 6};

  std::printf("%-12s", "granularity");
  for (std::uint32_t b : buffer_counts) std::printf(" | %8u buf%s     ", b, b > 1 ? "s" : " ");
  std::printf("\n");
  for (std::uint64_t g : granularities) {
    std::printf("%9llu K ", static_cast<unsigned long long>(g / 1024));
    for (std::uint32_t b : buffer_counts) {
      const Cell c = RunWriters(b, g);
      std::printf(" | %6.0f %4.2f %4llu", c.mibps, c.waf,
                  static_cast<unsigned long long>(c.premature));
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading the table: sub-96 KiB writes are flushed prematurely on\n"
      "every zone switch and detour through SLC (WAF toward 1.5-2.0), and\n"
      "the damage scales with how many writers share a buffer — four\n"
      "buffers absorb four writers, two leave the same-parity pairs\n"
      "fighting (Fig. 6b), one serializes everyone. Past the programming\n"
      "unit the conflict flush is nearly free regardless of pool size\n"
      "(§II-B, §IV-C).\n");
  return 0;
}
