#include "gc/slc_gc.hpp"

#include <limits>
#include <vector>

namespace conzone {

Status GcConfig::Validate() const {
  if (low_watermark == 0) {
    return Status::InvalidArgument("gc: watermark must be >= 1 (allocator headroom)");
  }
  if (reclaim_target < low_watermark) {
    return Status::InvalidArgument("gc: reclaim target below watermark");
  }
  return Status::Ok();
}

SlcGarbageCollector::SlcGarbageCollector(FlashArray& array, FlashTimingEngine& engine,
                                         SuperblockPool& pool, SlcAllocator& allocator,
                                         const GcConfig& config)
    : array_(array), engine_(engine), pool_(pool), alloc_(allocator), cfg_(config) {}

SuperblockId SlcGarbageCollector::SelectVictim() const {
  const FlashGeometry& geo = array_.geometry();
  SuperblockId best;
  std::uint64_t best_valid = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_erases = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t s = 0; s < geo.NumSlcSuperblocks(); ++s) {
    const SuperblockId sb{s};
    if (sb == alloc_.current_superblock()) continue;
    // Explicit free-list check: a freed superblock can still carry stale
    // cursor state in a retired block, so used==0 no longer implies free.
    if (pool_.IsFreeSlc(sb)) continue;
    std::uint64_t valid = 0;
    std::uint64_t used = 0;
    std::uint64_t erases = 0;
    std::uint32_t healthy = 0;
    for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
      const BlockId b = geo.BlockOfSuperblock(sb, ChipId{c});
      valid += array_.ValidSlots(b);
      used += array_.NextProgramSlot(b);
      erases += array_.EraseCount(b);
      if (!array_.IsRetired(b)) ++healthy;
    }
    if (used == 0) continue;   // never written
    if (healthy == 0) continue;  // fully retired: nothing erasable to reclaim
    // Lexicographic (valid, erase count, id): migration cost dominates;
    // among equally cheap victims prefer the least-worn (collecting a
    // victim erases it, so this steers erase load off hot superblocks),
    // then the lowest id for determinism.
    if (valid < best_valid || (valid == best_valid && erases < best_erases)) {
      best_valid = valid;
      best_erases = erases;
      best = sb;
    }
  }
  return best;
}

Result<SimTime> SlcGarbageCollector::CollectOne(SuperblockId victim, SimTime now) {
  const FlashGeometry& geo = array_.geometry();
  const std::uint64_t migrate_mark = array_.MarkJournal();
  ++stats_.victims;

  // Gather valid slots, grouped per flash page so each page costs one
  // sense + one transfer of its live 4 KiB slots.
  struct Live {
    Ppn old_ppn;
    SlotWrite data;
  };
  std::vector<Live> live;
  SimTime reads_done = now;
  for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
    // Retired blocks are read too: their live slots must drain before the
    // superblock can retire for good.
    const BlockId b = geo.BlockOfSuperblock(victim, ChipId{c});
    const std::uint32_t used = array_.NextProgramSlot(b);
    std::uint32_t page_live = 0;
    std::uint32_t page_retry = 0;
    std::uint32_t current_page = std::numeric_limits<std::uint32_t>::max();
    auto flush_page_read = [&](std::uint32_t page) {
      if (page_live == 0) return;
      array_.CountPageRead();
      const SimTime end = engine_.ReadPage(ChipId{c}, CellType::kSlc,
                                           page_live * geo.slot_size, now, page_retry);
      reads_done = Later(reads_done, end);
      page_live = 0;
      page_retry = 0;
      (void)page;
    };
    for (std::uint32_t i = 0; i < used; ++i) {
      const std::uint32_t page_in_block = i / geo.SlotsPerPage();
      const std::uint32_t slot_in_page = i % geo.SlotsPerPage();
      const Ppn ppn = geo.SlotAt(geo.PageAt(b, page_in_block), slot_in_page);
      if (array_.StateOfSlot(ppn) != SlotState::kValid) continue;
      if (page_in_block != current_page) {
        flush_page_read(current_page);
        current_page = page_in_block;
      }
      ++page_live;
      const SlotRead r = array_.ReadSlot(ppn);
      if (r.retry_level > page_retry) page_retry = r.retry_level;
      live.push_back(Live{ppn, SlotWrite{r.lpn, r.token}});
    }
    flush_page_read(current_page);
  }

  // Partition: slots the owner wants out of SLC entirely (no fold-back
  // will ever drain them) versus slots re-staged within the region.
  std::vector<Live> keep;
  std::vector<SlotWrite> evict_data;
  std::vector<Ppn> evict_old;
  for (const Live& l : live) {
    if (evict_filter_ && evict_ && evict_filter_(l.data.lpn)) {
      evict_data.push_back(l.data);
      evict_old.push_back(l.old_ppn);
    } else {
      keep.push_back(l);
    }
  }

  SimTime progs_done = reads_done;
  if (!evict_data.empty()) {
    auto done = evict_(std::move(evict_data), reads_done);
    if (!done.ok()) return done.status();
    progs_done = Later(progs_done, done.value());
    for (const Ppn old : evict_old) {
      if (Status st = array_.InvalidateSlot(old); !st.ok()) return st;
      ++stats_.slots_migrated;
    }
  }

  // Migrate the rest within the SLC region through the write pointer.
  if (!keep.empty()) {
    std::vector<SlotWrite> writes;
    writes.reserve(keep.size());
    for (const Live& l : keep) writes.push_back(l.data);
    auto ppns = alloc_.Program(writes);
    if (!ppns.ok()) return ppns.status();
    if (!alloc_.last_failed().empty()) {
      // Pulses the migration burned on the way to healthy blocks.
      progs_done = Later(progs_done,
                         ChargeSlcRewrites(engine_, geo, alloc_.last_failed(),
                                           reads_done,
                                           &array_.mutable_reliability()).end);
    }
    progs_done = Later(progs_done,
                       ProgramSlcSlots(engine_, geo, ppns.value(), reads_done).end);
    for (std::size_t i = 0; i < keep.size(); ++i) {
      const Ppn new_ppn = ppns.value()[i];
      if (remap_) remap_(keep[i].data.lpn, keep[i].old_ppn, new_ppn);
      if (Status st = array_.InvalidateSlot(keep[i].old_ppn); !st.ok()) return st;
      ++stats_.slots_migrated;
    }
  }

  // Stamp the migration's journal entries before issuing erases: the
  // programs and invalidates above complete by progs_done, but the
  // erases start only then — sharing one window would let a mid-GC cut
  // mislabel never-issued erases as torn and discard restorable data.
  // Mark-scoped so a caller's pending batch (a fold mid-flush) is never
  // captured under the migration window.
  array_.StampJournal(migrate_mark, now, progs_done);
  const std::uint64_t erase_mark = array_.MarkJournal();

  // Erase the victim's blocks (all chips in parallel) and free it.
  // Retired blocks are scrubbed, not erased; an erase failure retires the
  // block on the spot (the pulse still occupied the die). The superblock
  // returns to the free list as long as one healthy block survives — a
  // fully retired superblock is permanently lost capacity.
  SimTime erases_done = progs_done;
  std::uint32_t healthy_erased = 0;
  for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
    const BlockId b = geo.BlockOfSuperblock(victim, ChipId{c});
    if (array_.IsRetired(b)) {
      array_.ScrubBlock(b);
      continue;
    }
    Status st = array_.EraseBlock(b);
    const SimTime end = engine_.Erase(ChipId{c}, CellType::kSlc, progs_done);
    erases_done = Later(erases_done, end);
    if (st.ok()) {
      ++healthy_erased;
      continue;
    }
    if (st.code() != StatusCode::kMediaError) return st;
    array_.ScrubBlock(b);
    array_.mutable_reliability().recovery_time +=
        engine_.timing().For(CellType::kSlc).erase_latency;
  }
  array_.StampJournal(erase_mark, progs_done, erases_done);
  if (healthy_erased > 0) {
    ++stats_.superblocks_erased;
    if (Status st = pool_.ReleaseSlc(victim); !st.ok()) return st;
  }
  return erases_done;
}

Result<SimTime> SlcGarbageCollector::Run(SimTime now) {
  ++stats_.runs;
  SimTime t = now;
  while (pool_.FreeSlcCount() < cfg_.reclaim_target) {
    const SuperblockId victim = SelectVictim();
    if (!victim.valid()) {
      if (pool_.FreeSlcCount() == 0) {
        return Status::ResourceExhausted("SLC region exhausted and no GC victim");
      }
      break;  // nothing reclaimable; live with what we have
    }
    const std::size_t free_before = pool_.FreeSlcCount();
    auto done = CollectOne(victim, t);
    if (!done.ok()) return done.status();
    t = done.value();
    if (pool_.FreeSlcCount() <= free_before) {
      // The victim's live data consumed as much as the erase reclaimed —
      // the region is effectively full of valid data; compacting further
      // cannot help until the host invalidates something.
      break;
    }
  }
  stats_.busy_time += t - now;
  return t;
}

}  // namespace conzone
