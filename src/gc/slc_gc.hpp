// Composite garbage collection — the SLC half (paper §III-D).
//
// Zoned (normal) flash blocks never need device-side GC: the host resets
// whole zones and ConZone erases their reserved blocks directly (that
// path lives in the core device). The SLC secondary write buffer,
// however, accumulates invalidated slots — staged data gets folded back
// to normal blocks, zone resets drop staged data — so it runs a *full*
// GC: pick the victim superblock with the fewest valid slots (greedy),
// migrate the valid slots within the SLC region through the SLC write
// pointer, erase the victim, and return it to the free list.
//
// Every migration changes a PPA, so the owner device supplies a remap
// hook that fixes the mapping table, the L2P cache, and any aggregation
// that the move breaks.
#pragma once

#include <cstdint>
#include <functional>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "flash/array.hpp"
#include "flash/slc_allocator.hpp"
#include "flash/superblock.hpp"
#include "flash/timing_engine.hpp"

namespace conzone {

struct GcConfig {
  /// Run GC when the SLC free list drops below this many superblocks.
  std::uint32_t low_watermark = 2;
  /// Keep collecting until the free list is back at this level.
  std::uint32_t reclaim_target = 3;

  Status Validate() const;
};

struct GcStats {
  std::uint64_t runs = 0;
  std::uint64_t victims = 0;
  std::uint64_t slots_migrated = 0;
  std::uint64_t superblocks_erased = 0;
  SimDuration busy_time;  ///< Simulated time spent inside GC.
};

class SlcGarbageCollector {
 public:
  /// (lpn, old ppn, new ppn) — invoked for every migrated slot *after*
  /// the new copy is programmed and before the old one is invalidated.
  using RemapHook = std::function<void(Lpn, Ppn, Ppn)>;

  /// Slots for which this returns true are *evicted from the SLC region*
  /// instead of being re-staged within it (e.g. conventional-zone data,
  /// which has no fold-back to drain it).
  using EvictFilter = std::function<bool(Lpn)>;
  /// Owner-side relocation of evicted slots: program them elsewhere,
  /// update the mapping, and return the completion time. The collector
  /// invalidates the old SLC copies afterwards.
  using EvictHook =
      std::function<Result<SimTime>(std::vector<SlotWrite>, SimTime reads_done)>;

  SlcGarbageCollector(FlashArray& array, FlashTimingEngine& engine,
                      SuperblockPool& pool, SlcAllocator& allocator,
                      const GcConfig& config);

  void set_remap_hook(RemapHook hook) { remap_ = std::move(hook); }
  void set_evict_hook(EvictFilter filter, EvictHook hook) {
    evict_filter_ = std::move(filter);
    evict_ = std::move(hook);
  }

  bool NeedsGc() const { return pool_.FreeSlcCount() < cfg_.low_watermark; }

  /// Collect until the reclaim target is met or no victim remains.
  /// Returns the simulated completion time (>= now). The device holds the
  /// triggering host request until then — GC is foreground, as in real
  /// consumer devices under pressure.
  Result<SimTime> Run(SimTime now);

  /// Victim with the fewest valid slots, excluding the allocator's
  /// currently open superblock and free-list members. Invalid id when no
  /// candidate exists.
  SuperblockId SelectVictim() const;

  const GcStats& stats() const { return stats_; }

 private:
  /// Migrate valid slots out of `victim`, erase it, release it. Returns
  /// completion time.
  Result<SimTime> CollectOne(SuperblockId victim, SimTime now);

  FlashArray& array_;
  FlashTimingEngine& engine_;
  SuperblockPool& pool_;
  SlcAllocator& alloc_;
  GcConfig cfg_;
  RemapHook remap_;
  EvictFilter evict_filter_;
  EvictHook evict_;
  GcStats stats_;
};

}  // namespace conzone
