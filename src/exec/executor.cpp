#include "exec/executor.hpp"

#include <algorithm>

namespace conzone {

namespace {
/// Set while the calling thread is inside a task body — on worker lanes
/// for their whole lifetime, on the submitting thread only while it
/// participates in a batch. Guards nested Run() calls into inline
/// execution (see header).
thread_local bool tls_in_task = false;

struct ScopedTaskFlag {
  bool prev;
  ScopedTaskFlag() : prev(tls_in_task) { tls_in_task = true; }
  ~ScopedTaskFlag() { tls_in_task = prev; }
};
}  // namespace

bool Executor::InTask() { return tls_in_task; }

void SerialExecutor::Run(std::size_t tasks, TaskRef fn) {
  for (std::size_t i = 0; i < tasks; ++i) fn(i);
}

WorkStealingExecutor::WorkStealingExecutor(std::uint32_t threads)
    : num_lanes_(threads != 0 ? threads
                              : std::max(1u, std::thread::hardware_concurrency())) {
  lanes_.reserve(num_lanes_);
  for (std::uint32_t i = 0; i < num_lanes_; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  workers_.reserve(num_lanes_ - 1);
  for (std::uint32_t i = 1; i < num_lanes_; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

WorkStealingExecutor::~WorkStealingExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::uint64_t WorkStealingExecutor::steals() const {
  return steals_.load(std::memory_order_relaxed);
}

bool WorkStealingExecutor::PopOwn(std::uint32_t lane, std::uint32_t* task) {
  Lane& l = *lanes_[lane];
  std::lock_guard<std::mutex> lk(l.mu);
  if (l.head >= l.tasks.size()) return false;
  *task = l.tasks[l.head++];
  return true;
}

bool WorkStealingExecutor::Steal(std::uint32_t thief, std::uint32_t* task) {
  for (std::uint32_t k = 1; k < num_lanes_; ++k) {
    Lane& victim = *lanes_[(thief + k) % num_lanes_];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (victim.head >= victim.tasks.size()) continue;
    *task = victim.tasks.back();
    victim.tasks.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool WorkStealingExecutor::RunOneTask(std::uint32_t lane) {
  std::uint32_t task;
  if (!PopOwn(lane, &task) && !Steal(lane, &task)) return false;
  // fn_ is written under the lane mutexes' release chain before any task
  // of the batch becomes poppable, and stays valid until remaining_
  // reaches zero — which cannot happen before this task's decrement.
  (*fn_)(static_cast<std::size_t>(task));
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(mu_);
    done_cv_.notify_all();
  }
  return true;
}

void WorkStealingExecutor::WorkerMain(std::uint32_t lane) {
  ScopedTaskFlag flag;  // workers exist only to run tasks
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
    }
    while (RunOneTask(lane)) {
    }
  }
}

void WorkStealingExecutor::Run(std::size_t tasks, TaskRef fn) {
  if (tasks == 0) return;
  if (num_lanes_ == 1 || tasks == 1 || InTask()) {
    // Inline serial fallback: single lane, nothing to fan out, or a
    // nested fork-join from inside a task (joining on our own pool from
    // a worker could deadlock it; results are identical either way).
    ScopedTaskFlag flag;
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_.emplace(fn);
    remaining_.store(tasks, std::memory_order_relaxed);
    // Deal task ids round-robin in submission order. Lane mutexes are
    // taken even though workers of the previous batch are quiescent: a
    // straggler may still be scanning deques, and the lock chain also
    // publishes fn_ to whoever pops a task.
    for (std::uint32_t i = 0; i < num_lanes_; ++i) {
      Lane& l = *lanes_[i];
      std::lock_guard<std::mutex> llk(l.mu);
      l.tasks.clear();
      l.head = 0;
      for (std::size_t t = i; t < tasks; t += num_lanes_) {
        l.tasks.push_back(static_cast<std::uint32_t>(t));
      }
    }
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    // The submitting thread is lane 0 and works like everyone else.
    ScopedTaskFlag flag;
    while (RunOneTask(0)) {
    }
  }
  // Join barrier: stragglers may still be running stolen tasks.
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return remaining_.load(std::memory_order_acquire) == 0; });
  fn_.reset();
}

}  // namespace conzone
