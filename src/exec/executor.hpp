// Deterministic fork-join executor with work stealing (DESIGN.md §7).
//
// One substrate for every wall-clock-parallel corner of the emulator:
// StripedVolume fans per-member sub-requests out across real cores, and
// ShardedRunner schedules its shard tasks here instead of carrying its
// own thread pool. Both rely on the same contract, generalized from the
// merge-after-join pattern the sharded runner proved thread-count
// invariant:
//
//   * Tasks are submitted in a fixed order with stable ids 0..n-1.
//   * A task writes only to state it owns (its result slot, its member
//     device, its shard); tasks never communicate.
//   * Run() is a join barrier: it returns only after every task of the
//     batch has completed, and the caller merges results strictly in
//     submission (task-id) order afterwards.
//
// Under that contract the thread count, the stealing order and the OS
// scheduler can change only wall-clock time — never an output bit. The
// tests in tests/exec_test.cpp cross-check parallel execution against
// the SerialExecutor reference backend at several thread counts.
//
// Scheduling. WorkStealingExecutor keeps `threads` lanes: the calling
// thread is lane 0 and `threads - 1` persistent workers are lanes
// 1..threads-1 (parked on a condition variable between batches, so a
// per-IO fan-out does not pay thread creation). Run() deals task ids
// round-robin into per-lane deques in submission order; a lane pops its
// own deque front (FIFO — lane 0 alone degenerates to exactly the
// serial order) and steals from the back of other lanes' deques when
// its own runs dry.
//
// Nesting. A Run() issued from inside a task — e.g. a StripedVolume
// fan-out inside a ShardedRunner shard — executes inline and serially
// on the calling lane. Blocking a worker on a nested join could
// deadlock the pool, and the determinism contract makes inline
// execution indistinguishable from parallel execution anyway.
//
// Tasks must not throw: the emulator's failure vocabulary is Status,
// carried out through the task's result slot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace conzone {

/// Non-owning reference to the batch's task body: Run(n, fn) invokes
/// fn(i) once for every i in [0, n). Two raw pointers — submitting a
/// batch never allocates. The referenced callable must outlive Run(),
/// which holds until the join barrier anyway.
class TaskRef {
 public:
  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, TaskRef>>>
  TaskRef(F&& f)  // NOLINT: implicit by design, mirrors function_ref.
      : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* ctx, std::size_t task) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(task);
        }) {}

  void operator()(std::size_t task) const { call_(ctx_, task); }

 private:
  void* ctx_;
  void (*call_)(void*, std::size_t);
};

class Executor {
 public:
  virtual ~Executor() = default;

  /// Lanes that can execute tasks concurrently (1 = serial).
  virtual std::uint32_t threads() const = 0;

  /// Run tasks 0..n-1 and join: returns only after every task has
  /// completed. fn may be invoked concurrently from several threads
  /// with distinct task ids. Not reentrant from different threads on
  /// the same executor; a nested call from inside a task runs inline.
  virtual void Run(std::size_t tasks, TaskRef fn) = 0;

  /// True while the calling thread is executing a task of any executor
  /// (the nested-Run guard).
  static bool InTask();
};

/// The reference backend: runs every task inline on the calling thread,
/// in submission order. Parallel backends are asserted bit-identical to
/// this one.
class SerialExecutor final : public Executor {
 public:
  std::uint32_t threads() const override { return 1; }
  void Run(std::size_t tasks, TaskRef fn) override;
};

class WorkStealingExecutor final : public Executor {
 public:
  /// `threads` lanes including the caller; 0 = hardware_concurrency.
  explicit WorkStealingExecutor(std::uint32_t threads = 0);
  ~WorkStealingExecutor() override;

  WorkStealingExecutor(const WorkStealingExecutor&) = delete;
  WorkStealingExecutor& operator=(const WorkStealingExecutor&) = delete;

  std::uint32_t threads() const override { return num_lanes_; }
  void Run(std::size_t tasks, TaskRef fn) override;

  /// Tasks executed by a lane other than the one they were dealt to
  /// (introspection for the steal-stress tests; monotonic).
  std::uint64_t steals() const;

 private:
  /// One lane's deque of dealt task ids. The owner pops head (FIFO in
  /// submission order), thieves pop tail. Guarded by `mu`: fan-out
  /// batches are small (members, shards), so a plain mutex costs less
  /// than it looks and keeps the executor trivially TSan-clean.
  struct Lane {
    std::mutex mu;
    std::vector<std::uint32_t> tasks;
    std::size_t head = 0;
  };

  void WorkerMain(std::uint32_t lane);
  /// Pop own deque or steal, run one task. False = batch drained.
  bool RunOneTask(std::uint32_t lane);
  bool PopOwn(std::uint32_t lane, std::uint32_t* task);
  bool Steal(std::uint32_t thief, std::uint32_t* task);

  std::uint32_t num_lanes_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Signals a new batch (epoch bump).
  std::condition_variable done_cv_;  ///< Signals remaining_ hit zero.
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
  std::optional<TaskRef> fn_;  ///< Valid while remaining_ > 0.
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace conzone
