#include "fault/fault_model.hpp"

#include <cmath>

namespace conzone {

namespace {
Status CheckProbability(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(std::string("fault: ") + name +
                                   " must be in [0, 1]");
  }
  return Status::Ok();
}

Status CheckRates(const FaultRates& r, const char* region) {
  if (Status st = CheckProbability(r.program_fail, region); !st.ok()) return st;
  if (Status st = CheckProbability(r.erase_fail, region); !st.ok()) return st;
  if (Status st = CheckProbability(r.read_retry, region); !st.ok()) return st;
  return Status::Ok();
}
}  // namespace

FaultConfig FaultConfig::ConsumerDefaults() {
  FaultConfig cfg;
  // SLC staging sees the most program traffic (slot-granular partial
  // programs) but the widest margins; the normal region fails less often
  // per op but every failure burns a whole one-shot unit.
  cfg.slc.program_fail = 2e-4;
  cfg.slc.erase_fail = 1e-3;
  cfg.slc.read_retry = 0.02;
  cfg.normal.program_fail = 1e-4;
  cfg.normal.erase_fail = 5e-4;
  cfg.normal.read_retry = 0.01;
  cfg.read_retry_decay = 0.25;
  cfg.max_read_retries = 7;
  return cfg;
}

Status FaultConfig::Validate() const {
  if (Status st = CheckRates(slc, "slc rate"); !st.ok()) return st;
  if (Status st = CheckRates(normal, "normal rate"); !st.ok()) return st;
  if (Status st = CheckProbability(read_retry_decay, "read_retry_decay"); !st.ok()) {
    return st;
  }
  if (wear_slope < 0.0) {
    return Status::InvalidArgument("fault: wear_slope must be >= 0");
  }
  if (AnyFaults() && max_read_retries == 0 &&
      (slc.read_retry > 0 || normal.read_retry > 0)) {
    return Status::InvalidArgument(
        "fault: read_retry > 0 needs max_read_retries >= 1");
  }
  return Status::Ok();
}

FaultModel::FaultModel(const FaultConfig& config)
    : cfg_(config),
      rng_(config.seed),
      cut_rng_(MixSeeds(config.seed, 0x50C0FFEEull, 0xC07ull)),
      enabled_(config.AnyFaults()) {}

SimTime FaultModel::NextCutAfter(SimTime t) {
  // Exponential inter-arrival, quantized to >= 1 ns so the schedule
  // always makes progress.
  const double mean = static_cast<double>(cfg_.power_cut_mean_interval_ns);
  const double u = cut_rng_.NextDouble();  // [0, 1)
  const double gap = -mean * std::log(1.0 - u);
  const std::uint64_t ns =
      gap < 1.0 ? 1ull
                : static_cast<std::uint64_t>(gap < 9.2e18 ? gap : 9.2e18);
  return t + SimDuration::Nanos(ns);
}

double FaultModel::WearMultiplier(std::uint32_t erase_count) const {
  if (cfg_.rated_endurance == 0 || erase_count <= cfg_.rated_endurance) return 1.0;
  return 1.0 + cfg_.wear_slope * static_cast<double>(erase_count - cfg_.rated_endurance);
}

bool FaultModel::ProgramFails(bool slc, std::uint32_t erase_count) {
  const double p = For(slc).program_fail * WearMultiplier(erase_count);
  const bool fail = rng_.NextDouble() < p;
  if (fail) ++counters_.program_faults;
  return fail;
}

bool FaultModel::EraseFails(bool slc, std::uint32_t erase_count) {
  const double p = For(slc).erase_fail * WearMultiplier(erase_count);
  const bool fail = rng_.NextDouble() < p;
  if (fail) ++counters_.erase_faults;
  return fail;
}

std::uint32_t FaultModel::ReadRetryLevel(bool slc, std::uint32_t erase_count) {
  double p = For(slc).read_retry * WearMultiplier(erase_count);
  std::uint32_t level = 0;
  while (level < cfg_.max_read_retries && rng_.NextDouble() < p) {
    ++level;
    p *= cfg_.read_retry_decay;
  }
  if (level > 0) {
    ++counters_.reads_with_retry;
    counters_.retry_steps += level;
  }
  return level;
}

}  // namespace conzone
