// Deterministic NAND fault injection (§II-A, §III-D).
//
// Consumer flash is defined by unreliable, wear-limited media: program
// pulses fail, erases fail, and read raw-bit-error rates climb with wear
// until pages need several read-retry steps before they ECC-correct.
// `FaultModel` injects exactly those three fault classes into the media
// layer, driven by the emulator's seeded xoshiro `Rng` so that the same
// seed and the same operation sequence reproduce a bit-identical fault
// sequence — the property every regression test and A/B comparison in
// this repo depends on.
//
// Rates are configured per cell class (SLC secondary buffer vs the
// normal TLC/QLC region) because real devices see order-of-magnitude
// different raw error rates between them. An optional wear coupling
// scales all probabilities once a block's erase count passes its rated
// endurance, which is how grown bad blocks cluster late in device life.
//
// The null model (all rates zero) is guaranteed free on the hot path:
// every consumer guards with `enabled()` (one pointer + one bool test)
// and no RNG draw happens.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace conzone {

/// How a scheduled power-cut stream spaces its cuts. Consumers (the
/// sharded runner and the fleet soak) derive the stream deterministically
/// from the config seed via MixSeeds, so the same plan replays the same
/// cut times regardless of thread count.
enum class CutScheduleKind : std::uint8_t {
  kFixedInterval,   ///< Cuts exactly every interval_ns of simulated time.
  kRandomInterval,  ///< Exponential gaps with mean interval_ns (FaultModel).
};

/// Fault probabilities for one cell class. All are per-operation
/// probabilities in [0, 1].
struct FaultRates {
  /// P(one program pulse fails and the block grows bad).
  double program_fail = 0.0;
  /// P(one block erase fails and the block grows bad).
  double erase_fail = 0.0;
  /// P(a page read needs at least one retry step). Each further step is
  /// geometric with ratio `read_retry_decay`.
  double read_retry = 0.0;
};

struct FaultConfig {
  /// Seed of the fault model's private RNG stream (kept separate from the
  /// workload RNGs so fault and traffic randomness do not entangle).
  std::uint64_t seed = 0xFA177AB1Eull;

  FaultRates slc;
  FaultRates normal;

  /// P(level >= k+1 | level >= k) for read-retry levels past the first.
  double read_retry_decay = 0.25;
  /// Hard cap on retry steps per read (mirrors the finite read-retry
  /// table of real controllers; past it the controller gives up and
  /// relocates, which this model folds into the last step).
  std::uint32_t max_read_retries = 7;

  /// Wear coupling: past this many erases the per-op failure probability
  /// grows linearly with slope `wear_slope` per extra erase. 0 = off.
  std::uint32_t rated_endurance = 0;
  double wear_slope = 0.0;

  /// Graceful degradation: the device enters read-only mode when the
  /// number of healthy (non-retired) SLC blocks falls below this floor.
  /// Default: two superblocks' worth on the paper geometry (2ch x 2chips).
  std::uint32_t read_only_spare_floor_blocks = 8;

  // --- Power loss ---
  /// Enable power-loss emulation: the device journals media mutations so
  /// PowerCut()/Recover() work. Orthogonal to the fault rates above —
  /// a pure power-loss config draws no fault RNG.
  bool power_loss = false;
  /// Mean interval of a random power-cut schedule (exponential,
  /// deterministic in `seed` via a private decorrelated stream);
  /// 0 = no scheduled cuts. A non-zero interval implies power_loss.
  std::uint64_t power_cut_mean_interval_ns = 0;

  /// True when power-loss emulation should be active.
  bool PowerLossEnabled() const {
    return power_loss || power_cut_mean_interval_ns > 0;
  }

  /// True when any fault class can fire — the hot-path gate.
  bool AnyFaults() const {
    return slc.program_fail > 0 || slc.erase_fail > 0 || slc.read_retry > 0 ||
           normal.program_fail > 0 || normal.erase_fail > 0 ||
           normal.read_retry > 0;
  }

  /// Documented default rates for reliability soaks: high enough that a
  /// 10k-IO run exercises every recovery path, low enough that the device
  /// survives with spare capacity left.
  static FaultConfig ConsumerDefaults();

  Status Validate() const;
};

/// Faults actually injected — the "expected" side of the reconciliation
/// the reliability tests perform against the media layer's observed
/// `ReliabilityStats`.
struct FaultCounters {
  std::uint64_t program_faults = 0;
  std::uint64_t erase_faults = 0;
  std::uint64_t reads_with_retry = 0;
  std::uint64_t retry_steps = 0;  ///< Sum of injected retry levels.
};

class FaultModel {
 public:
  /// Null model: never fires, consumes no randomness.
  FaultModel() = default;
  explicit FaultModel(const FaultConfig& config);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return cfg_; }

  /// One draw per media operation. `slc` selects the rate table; the
  /// block's erase count feeds the wear coupling. Only call when
  /// enabled() — callers gate so the null model costs nothing.
  bool ProgramFails(bool slc, std::uint32_t erase_count);
  bool EraseFails(bool slc, std::uint32_t erase_count);
  /// 0 = clean read; k > 0 = the page needs k retry re-reads.
  std::uint32_t ReadRetryLevel(bool slc, std::uint32_t erase_count);

  const FaultCounters& counters() const { return counters_; }

  // --- Power-cut stream ---
  /// Whether the random cut schedule is configured.
  bool cut_stream_enabled() const {
    return cfg_.power_cut_mean_interval_ns > 0;
  }
  /// Next scheduled cut strictly after `t`, exponentially distributed
  /// with the configured mean. Draws from a private RNG stream
  /// (decorrelated from the fault draws) so enabling cuts does not shift
  /// the fault sequence of an otherwise identical run.
  SimTime NextCutAfter(SimTime t);

  /// The wear-coupling factor applied to every rate at this erase count:
  /// 1.0 up to rated_endurance, then 1 + wear_slope * excess. Pure —
  /// draws no randomness — so tests and studies can assert the ramp
  /// without perturbing the fault stream.
  double wear_multiplier(std::uint32_t erase_count) const {
    return WearMultiplier(erase_count);
  }

 private:
  double WearMultiplier(std::uint32_t erase_count) const;
  const FaultRates& For(bool slc) const { return slc ? cfg_.slc : cfg_.normal; }

  FaultConfig cfg_;
  Rng rng_{0};
  Rng cut_rng_{0};
  FaultCounters counters_;
  bool enabled_ = false;
};

}  // namespace conzone
