// Limited volatile write buffers (paper §II-B, §III-B).
//
// Consumer-grade storage cannot give every open zone its own
// superpage-sized aggregation buffer: F2FS opens up to 6 zones but the
// device has ~1 MiB of buffer SRAM, so all zones share a small pool
// (§IV-A: two 384 KiB buffers). A zone is assigned the buffer
// `zone_index mod num_buffers`; when the host switches to writing a zone
// whose buffer currently holds another zone's data, that data is flushed
// *prematurely* — usually with less than a programming unit of content —
// which is what pushes writes through the SLC secondary buffer and
// inflates write amplification (Fig. 6b).
//
// The pool is pure bookkeeping: it tracks which zone owns each buffer
// and the 4 KiB slots accumulated so far. The flush policy and flush
// timing live in the core device.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fastdiv.hpp"
#include "common/ids.hpp"
#include "common/status.hpp"
#include "flash/array.hpp"

namespace conzone {

enum class BufferMappingPolicy : std::uint8_t {
  kModulo = 0,  ///< buffer = zone index mod pool size (the paper's rule).
};

struct WriteBufferConfig {
  std::uint32_t num_buffers = 2;
  std::uint64_t buffer_bytes = 384 * kKiB;  ///< One superpage (§II-A).
  std::uint64_t slot_bytes = 4 * kKiB;
  BufferMappingPolicy policy = BufferMappingPolicy::kModulo;

  Status Validate() const;
};

/// The content of one buffer: a run of consecutive logical slots of a
/// single zone.
struct BufferedExtent {
  ZoneId owner;
  Lpn first_lpn;                   ///< Device-absolute LPN of slots[0].
  std::vector<SlotWrite> slots;    ///< In logical order.

  bool empty() const { return slots.empty(); }
  std::uint64_t slot_count() const { return slots.size(); }
};

struct WriteBufferStats {
  std::uint64_t appends = 0;
  std::uint64_t takes = 0;
  std::uint64_t conflicts = 0;  ///< Takes forced by a different zone's arrival.
};

class WriteBufferPool {
 public:
  explicit WriteBufferPool(const WriteBufferConfig& config);

  const WriteBufferConfig& config() const { return cfg_; }

  WriteBufferId BufferForZone(ZoneId zone) const;

  /// Whether appending for `zone` first requires flushing another zone's
  /// data out of its buffer (the §III-B conflicting mapping).
  bool HasConflict(ZoneId zone) const;

  /// Current content of a buffer (owner invalid when empty).
  const BufferedExtent& Contents(WriteBufferId buffer) const;

  std::uint64_t SlotCapacity() const { return cfg_.buffer_bytes / cfg_.slot_bytes; }
  std::uint64_t FreeSlots(WriteBufferId buffer) const;

  /// Append consecutive slots for `zone`. Preconditions (caller enforces
  /// by flushing first): the buffer is empty or already owned by `zone`
  /// with `first_lpn` continuing its run; the slots fit.
  Status Append(ZoneId zone, Lpn first_lpn, std::span<const SlotWrite> slots);

  /// Stream-keyed variant (Legacy: no zones, the controller detects
  /// write streams instead). Same preconditions, explicit buffer.
  Status AppendTo(WriteBufferId buffer, ZoneId owner, Lpn first_lpn,
                  std::span<const SlotWrite> slots);

  /// Buffer for a stream whose next slot is `next_lpn`: prefer the buffer
  /// whose extent it continues, then an empty buffer, then the least
  /// recently appended one (which the caller must flush first).
  WriteBufferId PickBufferForStream(Lpn next_lpn) const;

  /// Remove and return a buffer's content for flushing. `conflict` marks
  /// a flush forced by another zone's write (statistics).
  BufferedExtent Take(WriteBufferId buffer, bool conflict);

  /// Drop any buffered data of `zone` without flushing (zone reset).
  void Discard(ZoneId zone);

  /// Power cut: drop every buffer's content (SRAM is volatile). Returns
  /// the number of 4 KiB slots destroyed, for RecoveryStats.
  std::uint64_t DiscardAll();

  const WriteBufferStats& stats() const { return stats_; }

 private:
  WriteBufferConfig cfg_;
  FastDiv div_num_buffers_;  ///< BufferForZone runs once per write IO.
  std::vector<BufferedExtent> buffers_;
  std::vector<std::uint64_t> last_append_;  ///< Recency for stream picking.
  std::uint64_t append_clock_ = 0;
  WriteBufferStats stats_;
};

}  // namespace conzone
