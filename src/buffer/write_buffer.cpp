#include "buffer/write_buffer.hpp"

#include <cassert>
#include <string>

namespace conzone {

Status WriteBufferConfig::Validate() const {
  if (num_buffers == 0) return Status::InvalidArgument("buffers: need at least one");
  if (slot_bytes == 0 || buffer_bytes == 0 || buffer_bytes % slot_bytes != 0) {
    return Status::InvalidArgument("buffers: size must be a multiple of the slot size");
  }
  return Status::Ok();
}

WriteBufferPool::WriteBufferPool(const WriteBufferConfig& config)
    : cfg_(config), div_num_buffers_(config.num_buffers) {
  assert(cfg_.Validate().ok());
  buffers_.resize(cfg_.num_buffers);
  last_append_.resize(cfg_.num_buffers, 0);
}

WriteBufferId WriteBufferPool::BufferForZone(ZoneId zone) const {
  switch (cfg_.policy) {
    case BufferMappingPolicy::kModulo:
      return WriteBufferId(div_num_buffers_.Mod(zone.value()));
  }
  return WriteBufferId(0);
}

bool WriteBufferPool::HasConflict(ZoneId zone) const {
  const BufferedExtent& b =
      buffers_[static_cast<std::size_t>(BufferForZone(zone).value())];
  return !b.empty() && b.owner != zone;
}

const BufferedExtent& WriteBufferPool::Contents(WriteBufferId buffer) const {
  return buffers_[static_cast<std::size_t>(buffer.value())];
}

std::uint64_t WriteBufferPool::FreeSlots(WriteBufferId buffer) const {
  return SlotCapacity() - buffers_[static_cast<std::size_t>(buffer.value())].slot_count();
}

Status WriteBufferPool::Append(ZoneId zone, Lpn first_lpn,
                               std::span<const SlotWrite> slots) {
  return AppendTo(BufferForZone(zone), zone, first_lpn, slots);
}

Status WriteBufferPool::AppendTo(WriteBufferId id, ZoneId owner, Lpn first_lpn,
                                 std::span<const SlotWrite> slots) {
  BufferedExtent& b = buffers_[static_cast<std::size_t>(id.value())];
  if (!b.empty() && b.owner != owner) {
    return Status::FailedPrecondition("buffer " + std::to_string(id.value()) +
                                      " still holds zone " +
                                      std::to_string(b.owner.value()) + " data");
  }
  if (slots.size() > FreeSlots(id)) {
    return Status::ResourceExhausted("buffer overflow: flush before appending");
  }
  if (b.empty()) {
    b.owner = owner;
    b.first_lpn = first_lpn;
  } else if (Lpn(b.first_lpn.value() + b.slot_count()) != first_lpn) {
    return Status::InvalidArgument("non-contiguous append to write buffer");
  }
  b.slots.insert(b.slots.end(), slots.begin(), slots.end());
  last_append_[static_cast<std::size_t>(id.value())] = ++append_clock_;
  ++stats_.appends;
  return Status::Ok();
}

WriteBufferId WriteBufferPool::PickBufferForStream(Lpn next_lpn) const {
  // 1. A buffer whose extent this write continues.
  for (std::uint32_t i = 0; i < cfg_.num_buffers; ++i) {
    const BufferedExtent& b = buffers_[i];
    if (!b.empty() && Lpn(b.first_lpn.value() + b.slot_count()) == next_lpn) {
      return WriteBufferId{i};
    }
  }
  // 2. An empty buffer.
  for (std::uint32_t i = 0; i < cfg_.num_buffers; ++i) {
    if (buffers_[i].empty()) return WriteBufferId{i};
  }
  // 3. The least recently appended buffer (caller flushes it first).
  std::uint32_t victim = 0;
  for (std::uint32_t i = 1; i < cfg_.num_buffers; ++i) {
    if (last_append_[i] < last_append_[victim]) victim = i;
  }
  return WriteBufferId{victim};
}

BufferedExtent WriteBufferPool::Take(WriteBufferId buffer, bool conflict) {
  BufferedExtent& b = buffers_[static_cast<std::size_t>(buffer.value())];
  BufferedExtent out = std::move(b);
  b = BufferedExtent{};
  ++stats_.takes;
  if (conflict) ++stats_.conflicts;
  return out;
}

void WriteBufferPool::Discard(ZoneId zone) {
  for (auto& b : buffers_) {
    if (!b.empty() && b.owner == zone) b = BufferedExtent{};
  }
}

std::uint64_t WriteBufferPool::DiscardAll() {
  std::uint64_t lost = 0;
  for (auto& b : buffers_) {
    lost += b.slot_count();
    b = BufferedExtent{};
  }
  return lost;
}

}  // namespace conzone
