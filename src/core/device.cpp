#include "core/device.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_map>

namespace conzone {

namespace {
/// Default integrity token when the host does not supply payloads.
std::uint64_t DefaultToken(Lpn lpn) { return 0xC0DE0000u ^ lpn.value(); }
}  // namespace

Result<std::unique_ptr<ConZoneDevice>> ConZoneDevice::Create(const ConZoneConfig& config) {
  if (Status st = config.Validate(); !st.ok()) return st;
  return std::unique_ptr<ConZoneDevice>(new ConZoneDevice(config));
}

ConZoneDevice::ConZoneDevice(const ConZoneConfig& config)
    : cfg_([&] {
        // Derive the FTL sub-configs from the top-level knobs so callers
        // only state them once.
        ConZoneConfig c = config;
        c.l2p.lpns_per_chunk = c.lpns_per_chunk;
        c.l2p.lpns_per_zone =
            static_cast<std::uint32_t>(c.zone_size_bytes / c.geometry.slot_size);
        c.buffers.slot_bytes = c.geometry.slot_size;
        return c;
      }()),
      layout_(cfg_.geometry, cfg_.zone_size_bytes, cfg_.superblocks_per_zone,
              cfg_.EffectiveConventionalSuperblocks()),
      fault_(cfg_.fault),
      array_(cfg_.geometry),
      engine_(cfg_.geometry, cfg_.timing),
      pool_(cfg_.geometry, cfg_.EffectiveConventionalSuperblocks()),
      slc_alloc_(array_, pool_),
      buffers_(cfg_.buffers),
      zones_(ZoneLimitsConfig{cfg_.zone_size_bytes, cfg_.zone_size_bytes,
                              cfg_.num_conventional_zones + layout_.num_zones(),
                              cfg_.max_open_zones, cfg_.max_active_zones}),
      table_(MappingGeometry{
          (cfg_.num_conventional_zones + layout_.num_zones()) *
              (cfg_.zone_size_bytes / cfg_.geometry.slot_size),
          cfg_.lpns_per_chunk,
          static_cast<std::uint32_t>(cfg_.zone_size_bytes / cfg_.geometry.slot_size),
          static_cast<std::uint32_t>(cfg_.geometry.page_size / 4)}),
      cache_(cfg_.l2p),
      translator_(table_, cache_, *this, cfg_.translator),
      gc_(array_, engine_, pool_, slc_alloc_, cfg_.gc),
      l2p_log_(cfg_.l2p_log),
      conv_alloc_(array_, pool_),
      div_slot_(cfg_.geometry.slot_size),
      div_zone_(cfg_.zone_size_bytes),
      div_slots_per_page_(cfg_.geometry.slot_size ? cfg_.geometry.SlotsPerPage() : 0),
      div_lpns_per_zone_(cfg_.geometry.slot_size
                             ? cfg_.zone_size_bytes / cfg_.geometry.slot_size
                             : 0),
      div_host_bw_(cfg_.host_link_bandwidth_bps),
      lpns_per_zone_(cfg_.geometry.slot_size
                         ? cfg_.zone_size_bytes / cfg_.geometry.slot_size
                         : 0) {
  runtime_.resize(cfg_.num_conventional_zones + layout_.num_zones());
  buffer_ready_.resize(cfg_.buffers.num_buffers, SimTime::Zero());
  // Erase-count-aware allocation (ROADMAP wear leveling): steer SLC and
  // conventional-pool allocation toward the least-worn superblocks.
  pool_.AttachWearSource(&array_);
  if (fault_.enabled()) {
    array_.AttachFaultModel(&fault_);
    engine_.AttachReliability(&array_.mutable_reliability());
  }
  if (cfg_.fault.PowerLossEnabled()) array_.EnableJournal(true);
  gc_.set_remap_hook(
      [this](Lpn lpn, Ppn old_ppn, Ppn new_ppn) { OnGcRemap(lpn, old_ppn, new_ppn); });
  if (cfg_.num_conventional_zones > 0) {
    gc_.set_evict_hook(
        [this](Lpn lpn) { return IsConventional(ZoneId{lpn.value() / LpnsPerZone()}); },
        [this](std::vector<SlotWrite> slots, SimTime reads_done) {
          return EvictConventionalFromSlc(std::move(slots), reads_done);
        });
  }
}

DeviceInfo ConZoneDevice::info() const {
  DeviceInfo di;
  di.name = "ConZone";
  di.num_zones = cfg_.num_conventional_zones + layout_.num_zones();
  di.capacity_bytes = static_cast<std::uint64_t>(di.num_zones) * cfg_.zone_size_bytes;
  di.zone_size_bytes = cfg_.zone_size_bytes;
  di.num_conventional_zones = cfg_.num_conventional_zones;
  di.max_open_zones = cfg_.max_open_zones;
  di.max_active_zones = cfg_.max_active_zones;
  di.slc_bytes = cfg_.geometry.SlcUsableBytesPerSuperblock() *
                 cfg_.geometry.NumSlcSuperblocks();
  di.io_alignment = cfg_.geometry.slot_size;
  di.health = powered_off_ ? DeviceHealth::kOffline
              : read_only_ ? DeviceHealth::kReadOnly
                           : DeviceHealth::kHealthy;
  return di;
}

Result<IoResult> ConZoneDevice::Write(const IoRequest& req) {
  auto done = WriteImpl(req.offset, req.len, req.now, req.tokens);
  if (!done.ok()) return done.status();
  ++class_writes_[static_cast<std::size_t>(req.io_class)];
  return IoResult{done.value(), {}};
}

Result<IoResult> ConZoneDevice::Read(const IoRequest& req) {
  IoResult res;
  auto done =
      ReadImpl(req.offset, req.len, req.now, req.want_tokens ? &res.tokens : nullptr);
  if (!done.ok()) return done.status();
  ++class_reads_[static_cast<std::size_t>(req.io_class)];
  res.done = done.value();
  return res;
}

StatsSnapshot ConZoneDevice::Stats() const {
  StatsSnapshot s;
  s.host_bytes_written = stats_.host_bytes_written;
  s.host_bytes_read = stats_.host_bytes_read;
  s.flash_bytes_written =
      array_.counters().TotalSlotsProgrammed() * cfg_.geometry.slot_size;
  s.writes = stats_.writes;
  s.reads = stats_.reads;
  s.zone_resets = stats_.zone_resets;
  s.host_flushes = stats_.host_flushes;
  s.buffer_flushes = stats_.flushes;
  s.premature_flushes = stats_.premature_flushes;
  s.overwrites = stats_.conventional_overwrites;
  s.gc_runs = gc_.stats().runs + stats_.conventional_gc_runs;
  s.gc_slots_migrated = gc_.stats().slots_migrated + stats_.conventional_gc_migrated;
  s.class_reads = class_reads_;
  s.class_writes = class_writes_;
  return s;
}

SimDuration ConZoneDevice::HostTransferTime(std::uint64_t bytes) const {
  // Same 64-bit fast path as TimingConfig::TransferTime: request sizes
  // keep bytes * 1e9 well inside 64 bits, and the link bandwidth is
  // fixed, so the reciprocal answers exactly.
  if (bytes <= UINT64_MAX / 1000000000ull) {
    return SimDuration::Nanos(div_host_bw_.Div(bytes * 1000000000ull));
  }
  const unsigned __int128 ns = static_cast<unsigned __int128>(bytes) * 1000000000ull /
                               cfg_.host_link_bandwidth_bps;
  return SimDuration::Nanos(static_cast<std::uint64_t>(ns));
}

Lpn ConZoneDevice::ZoneBaseLpn(ZoneId zone) const {
  return Lpn(zone.value() * LpnsPerZone());
}

void ConZoneDevice::ResetStats() {
  stats_ = ConZoneStats{};
  class_reads_ = {};
  class_writes_ = {};
  translator_.ResetStats();
  cache_.ResetStats();
  array_.ResetCounters();
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status ConZoneDevice::BeginHostOp(SimTime now) {
  if (powered_off_) {
    return Status::FailedPrecondition("device is powered off: call Recover() first");
  }
  if (last_submit_ < now) last_submit_ = now;
  if (array_.JournalEnabled()) {
    // A future cut can never precede this submission, so journal entries
    // and log commits whose media window closed by `now` are permanently
    // durable — forget them to keep both structures O(in-flight).
    array_.PruneJournal(now);
    l2p_log_.PruneCommits(now);
  }
  return Status::Ok();
}

Result<SimTime> ConZoneDevice::WriteImpl(std::uint64_t offset, std::uint64_t len,
                                         SimTime now,
                                         std::span<const std::uint64_t> tokens) {
  if (Status st = BeginHostOp(now); !st.ok()) return st;
  if (div_slot_.Mod(offset) != 0 || div_slot_.Mod(len) != 0 || len == 0) {
    return Status::InvalidArgument("write must be 4 KiB aligned and non-empty");
  }
  const std::uint64_t nslots = div_slot_.Div(len);
  const ZoneId zone{div_zone_.Div(offset)};
  const std::uint64_t off_in_zone = offset - zone.value() * cfg_.zone_size_bytes;
  if (zone.value() >= cfg_.num_conventional_zones + layout_.num_zones()) {
    return Status::OutOfRange("write beyond device capacity");
  }
  if (off_in_zone + len > cfg_.zone_size_bytes) {
    return Status::InvalidArgument("write crosses a zone boundary");
  }
  if (!tokens.empty() && tokens.size() != nslots) {
    return Status::InvalidArgument("token count != written 4 KiB pages");
  }
  if (fault_.enabled() && InReadOnly()) {
    // Graceful degradation: writes are refused with a distinct sub-reason,
    // reads (and resets) keep working on the surviving media.
    return Status::ResourceExhausted(
        "device is read-only: healthy SLC spare below floor after media faults");
  }
  if (IsConventional(zone)) {
    return WriteConventional(zone, offset, len, now, tokens);
  }
  if (Status st = zones_.BeginWrite(zone, off_in_zone, len); !st.ok()) return st;

  ++stats_.writes;
  stats_.host_bytes_written += len;

  // Host DMA into device SRAM.
  SimTime t = now + cfg_.request_overhead;
  t = host_link_.Reserve(t, HostTransferTime(len)).end;

  const Lpn first_lpn = Lpn(div_slot_.Div(offset));
  const WriteBufferId buf = buffers_.BufferForZone(zone);

  std::uint64_t i = 0;
  while (i < nslots) {
    // The buffer SRAM may still be streaming out a previous flush.
    t = Later(t, buffer_ready_[static_cast<std::size_t>(buf.value())]);

    if (buffers_.HasConflict(zone)) {
      // §III-B conflicting zone-buffer mapping: evict the other zone's
      // data first. The arriving write stalls until the SRAM drains into
      // the dies (the program pulses continue in the background).
      ++stats_.conflict_flushes;
      BufferedExtent ext = buffers_.Take(buf, /*conflict=*/true);
      auto done = FlushAny(std::move(ext), t);
      if (!done.ok()) return done.status();
      buffer_ready_[static_cast<std::size_t>(buf.value())] = done.value().sram_free;
      t = done.value().sram_free;
    }

    const std::uint64_t free = buffers_.FreeSlots(buf);
    const std::uint64_t n = std::min(free, nslots - i);
    std::vector<SlotWrite>& chunk = chunk_scratch_;
    chunk.clear();
    for (std::uint64_t k = 0; k < n; ++k) {
      const Lpn lpn = Lpn(first_lpn.value() + i + k);
      const std::uint64_t token = tokens.empty() ? DefaultToken(lpn) : tokens[i + k];
      chunk.push_back(SlotWrite{lpn, token});
    }
    if (Status st = buffers_.Append(zone, Lpn(first_lpn.value() + i), chunk); !st.ok()) {
      return st;
    }
    i += n;

    const bool zone_complete = i == nslots && off_in_zone + len == cfg_.zone_size_bytes;
    if (buffers_.FreeSlots(buf) == 0 || zone_complete) {
      // Flush when the superpage completes — and when the zone itself
      // completes, so the §III-E alignment patch is programmed and the
      // zone can aggregate. The host write does not wait for media; only
      // later appends to this buffer do.
      BufferedExtent ext = buffers_.Take(buf, /*conflict=*/false);
      auto done = FlushAny(std::move(ext), t);
      if (!done.ok()) return done.status();
      buffer_ready_[static_cast<std::size_t>(buf.value())] = done.value().sram_free;
    }
  }
  return t;
}

bool ConZoneDevice::InReadOnly() {
  if (read_only_) return true;
  if (array_.HealthySlcBlocks() < cfg_.fault.read_only_spare_floor_blocks) {
    read_only_ = true;
    array_.mutable_reliability().read_only_trips++;
    return true;
  }
  return false;
}

Result<ConZoneDevice::FlushResult> ConZoneDevice::FlushAny(BufferedExtent extent,
                                                           SimTime now) {
  if (extent.empty()) return FlushResult{now, now};
  return IsConventional(extent.owner) ? FlushConventionalExtent(std::move(extent), now)
                                      : FlushExtent(std::move(extent), now);
}

Result<SimTime> ConZoneDevice::ReadBackStaged(ZoneId zone, std::uint64_t begin,
                                              std::uint64_t end,
                                              std::vector<SlotWrite>& out, SimTime now) {
  const FlashGeometry& geo = cfg_.geometry;
  const Lpn zbase = ZoneBaseLpn(zone);
  // One sense+transfer per distinct flash page holding staged slots; the
  // page's sense repeats at the worst retry level among its slots.
  struct PageLoad {
    std::uint32_t count = 0;
    std::uint32_t retries = 0;
  };
  std::unordered_map<std::uint64_t, PageLoad> pages;
  SimTime done = now;
  for (std::uint64_t off = begin; off < end; off += geo.slot_size) {
    const Lpn lpn = Lpn(zbase.value() + off / geo.slot_size);
    const MapEntry e = table_.Get(lpn);
    if (!e.mapped()) {
      return Status::Internal("staged range has unmapped lpn " +
                              std::to_string(lpn.value()));
    }
    const SlotRead r = array_.ReadSlot(e.ppn);
    if (r.state != SlotState::kValid || r.lpn != lpn) {
      return Status::Internal("staged slot mismatch for lpn " +
                              std::to_string(lpn.value()));
    }
    out.push_back(SlotWrite{lpn, r.token});
    PageLoad& load = pages[geo.PageOfSlot(e.ppn).value()];
    load.count++;
    if (r.retry_level > load.retries) load.retries = r.retry_level;
    if (Status st = array_.InvalidateSlot(e.ppn); !st.ok()) return st;
    ++stats_.fold_slots_read;
  }
  for (const auto& [page, load] : pages) {
    const ChipId chip = geo.ChipOfBlock(geo.BlockOfPage(FlashPageId(page)));
    array_.CountPageRead();
    done = Later(done, engine_.ReadPage(chip, CellType::kSlc,
                                        load.count * geo.slot_size, now, load.retries));
  }
  return done;
}

Result<ConZoneDevice::FlushResult> ConZoneDevice::StageSlots(
    ZoneId zone, ZoneRuntime& zr, const BufferedExtent& extent, std::uint64_t from_byte,
    SimTime now) {
  const FlashGeometry& geo = cfg_.geometry;
  const std::uint64_t ext_start =
      (extent.first_lpn.value() - ZoneBaseLpn(zone).value()) * geo.slot_size;
  const std::uint64_t ext_end = ext_start + extent.slot_count() * geo.slot_size;
  if (from_byte >= ext_end) return FlushResult{now, now};
  const std::uint64_t first = (std::max(from_byte, ext_start) - ext_start) / geo.slot_size;

  std::vector<SlotWrite> writes(extent.slots.begin() +
                                    static_cast<std::ptrdiff_t>(first),
                                extent.slots.end());
  const std::uint64_t mark = array_.MarkJournal();
  auto ppns = slc_alloc_.Program(writes);
  if (!ppns.ok()) return ppns.status();
  if (!slc_alloc_.last_failed().empty()) {
    ChargeSlcRewrites(engine_, geo, slc_alloc_.last_failed(), now,
                      &array_.mutable_reliability());
  }
  const auto prog = ProgramSlcSlots(engine_, geo, ppns.value(), now);
  FlushResult done{prog.data_in, prog.end};
  for (std::size_t k = 0; k < writes.size(); ++k) {
    table_.Set(writes[k].lpn, ppns.value()[k]);
    cache_.Erase(L2pKey{MapGranularity::kPage, writes[k].lpn.value()});
  }
  l2p_log_.Append(writes.size());
  array_.StampJournal(mark, now, prog.end);
  zr.staged_end = ext_end;
  return done;
}

Result<ConZoneDevice::FlushResult> ConZoneDevice::RedriveUnitToSlc(
    ZoneRuntime& zr, std::uint64_t mark, std::span<const SlotWrite> data,
    SimTime now) {
  const FlashGeometry& geo = cfg_.geometry;
  // No GC here: the fold already invalidated the unit's staged source
  // copies, so reclaiming now could durably erase the only surviving
  // copies before the re-drive program completes. The caller reclaims
  // headroom before the unit's read-back instead.
  std::vector<SlotWrite> writes(data.begin(), data.end());
  auto ppns = slc_alloc_.Program(writes);
  if (!ppns.ok()) return ppns.status();
  if (!slc_alloc_.last_failed().empty()) {
    ChargeSlcRewrites(engine_, geo, slc_alloc_.last_failed(), now,
                      &array_.mutable_reliability());
  }
  const auto prog = ProgramSlcSlots(engine_, geo, ppns.value(), now);
  for (std::size_t k = 0; k < writes.size(); ++k) {
    table_.Set(writes[k].lpn, ppns.value()[k]);
    cache_.Erase(L2pKey{MapGranularity::kPage, writes[k].lpn.value()});
  }
  l2p_log_.Append(writes.size());
  // Covers the re-driven SLC program plus the invalidates from the fold
  // read-back that fed it — the caller's mark reaches back to them (a
  // burned one-shot pulse leaves no journal entry of its own).
  array_.StampJournal(mark, now, prog.end);
  // Part of the zone's nominally-normal range now lives in SLC: freeze
  // aggregation from here on (already-stamped chunks predate the failure
  // and are fully layout-resident, so they stay correct).
  zr.degraded = true;
  return FlushResult{prog.data_in, prog.end};
}

Result<ConZoneDevice::FlushResult> ConZoneDevice::ProgramPatchRun(
    ZoneId zone, ZoneRuntime& zr, const BufferedExtent& extent, SimTime now) {
  const FlashGeometry& geo = cfg_.geometry;
  const std::uint64_t begin = layout_.normal_bytes();
  const std::uint64_t end = cfg_.zone_size_bytes;
  const Lpn zbase = ZoneBaseLpn(zone);
  const std::uint64_t ext_start =
      (extent.first_lpn.value() - zbase.value()) * geo.slot_size;

  // Assemble the full patch: staged pieces are read back and invalidated
  // (they will be re-programmed contiguously), the rest comes from the
  // flushed buffer extent.
  std::vector<SlotWrite> data;
  data.reserve((end - begin) / geo.slot_size);
  const std::uint64_t mark = array_.MarkJournal();
  SimTime reads_done = now;
  if (zr.staged_end > begin) {
    auto rd = ReadBackStaged(zone, begin, zr.staged_end, data, now);
    if (!rd.ok()) return rd.status();
    reads_done = rd.value();
  }
  for (std::uint64_t off = std::max(begin, ext_start); off < end; off += geo.slot_size) {
    const std::uint64_t idx = (off - ext_start) / geo.slot_size;
    data.push_back(extent.slots[static_cast<std::size_t>(idx)]);
  }
  if (data.size() != (end - begin) / geo.slot_size) {
    return Status::Internal("patch assembly incomplete for zone " +
                            std::to_string(zone.value()));
  }

  auto ppns = slc_alloc_.Program(data);
  if (!ppns.ok()) return ppns.status();
  if (!slc_alloc_.last_failed().empty()) {
    ChargeSlcRewrites(engine_, geo, slc_alloc_.last_failed(), reads_done,
                      &array_.mutable_reliability());
  }
  const auto prog = ProgramSlcSlots(engine_, geo, ppns.value(), reads_done);
  FlushResult done{prog.data_in, prog.end};
  bool contiguous = true;
  for (std::size_t k = 0; k < data.size(); ++k) {
    const Ppn ppn = ppns.value()[k];
    table_.Set(data[k].lpn, ppn);
    cache_.Erase(L2pKey{MapGranularity::kPage, data[k].lpn.value()});
    if (k > 0) {
      auto expect = layout_.StripeAdvance(ppns.value()[0], k);
      if (!expect || *expect != ppn) contiguous = false;
    }
  }
  l2p_log_.Append(data.size());
  array_.StampJournal(mark, now, prog.end);
  zr.patch_start = ppns.value()[0];
  zr.patch_contiguous = contiguous;
  zr.durable_normal_end = begin;
  zr.staged_end = end;
  ++stats_.patch_runs;
  return done;
}

Result<ConZoneDevice::FlushResult> ConZoneDevice::FlushExtent(BufferedExtent extent,
                                                              SimTime now) {
  if (extent.empty()) return FlushResult{now, now};
  ++stats_.flushes;
  const FlashGeometry& geo = cfg_.geometry;
  const ZoneId zone = extent.owner;
  ZoneRuntime& zr = runtime_[static_cast<std::size_t>(zone.value())];
  const Lpn zbase = ZoneBaseLpn(zone);
  const std::uint64_t ext_start =
      (extent.first_lpn.value() - zbase.value()) * geo.slot_size;
  const std::uint64_t ext_end = ext_start + extent.slot_count() * geo.slot_size;
  if (ext_start != zr.staged_end) {
    return Status::Internal("flush extent does not continue zone " +
                            std::to_string(zone.value()));
  }

  const std::uint64_t unit = geo.program_unit;
  FlushResult done{now, now};
  std::uint64_t cur = zr.durable_normal_end;
  bool staged_anything = false;

  // (1)/(3): fold whole program units into the reserved normal blocks.
  std::vector<SlotWrite> data;
  data.reserve(unit / geo.slot_size);
  while (cur < layout_.normal_bytes() && cur + unit <= ext_end) {
    // Reclaim SLC headroom for a possible re-drive BEFORE the fold
    // invalidates its staged source copies: GC running after that point
    // could durably erase the only surviving copies of data whose
    // superseding program a cut may still tear.
    if (gc_.NeedsGc()) {
      auto gc_done = gc_.Run(now);
      if (!gc_done.ok()) return gc_done.status();
      now = Later(now, gc_done.value());
      done.sram_free = Later(done.sram_free, now);
      done.media_done = Later(done.media_done, now);
    }
    const std::uint64_t mark = array_.MarkJournal();
    data.clear();
    SimTime reads_done = now;
    std::uint64_t staged_bytes = 0;
    if (cur < zr.staged_end) {
      // Fold: staged SLC data is read out and invalidated (§III-B ③).
      const std::uint64_t staged_upto = std::min(zr.staged_end, cur + unit);
      staged_bytes = staged_upto - cur;
      auto rd = ReadBackStaged(zone, cur, staged_upto, data, now);
      if (!rd.ok()) return rd.status();
      reads_done = rd.value();
      ++stats_.folds;
    }
    for (std::uint64_t off = std::max(cur, zr.staged_end); off < cur + unit;
         off += geo.slot_size) {
      data.push_back(extent.slots[static_cast<std::size_t>((off - ext_start) /
                                                           geo.slot_size)]);
    }

    const ZoneLayout::UnitLoc loc = layout_.UnitAt(SeqZone(zone), cur / unit);
    bool redrive = false;
    if (array_.IsRetired(loc.block)) {
      // The reserved block grew bad earlier (previous program or a failed
      // reset erase): nothing can program there, go straight to SLC.
      redrive = true;
    } else if (array_.NextProgramSlot(loc.block) !=
               loc.first_page_in_block * geo.SlotsPerPage()) {
      // The block's cursor does not sit at this unit's layout position —
      // a power cut tore a program here (the cursor is past its point of
      // no return even though the slots came back invalid). The layout is
      // fixed, so the unit re-drives into SLC; a zone reset erases the
      // block and clears the skew.
      redrive = true;
    } else {
      Status st = array_.ProgramSlots(loc.block, data);
      if (st.ok()) {
        const auto prog = engine_.ProgramFold(loc.chip, geo.normal_cell, unit,
                                              unit - staged_bytes, now, reads_done);
        done.sram_free = Later(done.sram_free, prog.data_in);
        done.media_done = Later(done.media_done, prog.end);
        for (std::size_t k = 0; k < data.size(); ++k) {
          const Ppn ppn = layout_.NormalSlot(SeqZone(zone), cur + k * geo.slot_size);
          table_.Set(data[k].lpn, ppn);
          cache_.Erase(L2pKey{MapGranularity::kPage, data[k].lpn.value()});
        }
        l2p_log_.Append(data.size());
        // One window for the fold's read-back invalidates and its
        // program: both become durable when the one-shot pulse ends.
        array_.StampJournal(mark, now, prog.end);
      } else if (st.code() == StatusCode::kMediaError) {
        // The die still ran (and burned) the one-shot pulse; the layout is
        // fixed, so the unit cannot relocate within the zone's reserved
        // blocks — re-drive it into SLC under page mapping.
        const auto burned = engine_.ProgramFold(loc.chip, geo.normal_cell, unit,
                                                unit - staged_bytes, now, reads_done);
        done.sram_free = Later(done.sram_free, burned.data_in);
        ReliabilityStats& rel = array_.mutable_reliability();
        rel.recovery_time += engine_.timing().For(geo.normal_cell).program_latency;
        rel.redrive_hist.Record(engine_.timing().For(geo.normal_cell).program_latency);
        rel.rewrite_slots += data.size();
        redrive = true;
      } else {
        return st;
      }
    }
    if (redrive) {
      auto rd = RedriveUnitToSlc(zr, mark, data, reads_done);
      if (!rd.ok()) return rd.status();
      done.sram_free = Later(done.sram_free, rd.value().sram_free);
      done.media_done = Later(done.media_done, rd.value().media_done);
      staged_anything = true;
    }
    // The zone-relative range is durable either way; degraded zones simply
    // keep part of it in SLC, invisible to the fold/stage logic.
    cur += unit;
    zr.durable_normal_end = cur;
    zr.staged_end = std::max(zr.staged_end, cur);
  }

  if (cur >= layout_.normal_bytes() && layout_.patch_bytes() > 0 &&
      ext_end == cfg_.zone_size_bytes) {
    // Zone completes: write the §III-E alignment patch as one contiguous
    // SLC run so the zone's mapping can still aggregate.
    auto pr = ProgramPatchRun(zone, zr, extent, now);
    if (!pr.ok()) return pr.status();
    done.sram_free = Later(done.sram_free, pr.value().sram_free);
    done.media_done = Later(done.media_done, pr.value().media_done);
    staged_anything = true;  // the patch is SLC-resident by design
  } else if (ext_end > std::max(cur, zr.staged_end)) {
    // (2): sub-unit remainder — partial-program into the SLC secondary
    // write buffer (premature flush).
    auto st = StageSlots(zone, zr, extent, std::max(cur, zr.staged_end), now);
    if (!st.ok()) return st.status();
    done.sram_free = Later(done.sram_free, st.value().sram_free);
    done.media_done = Later(done.media_done, st.value().media_done);
    staged_anything = true;
  }
  if (staged_anything) ++stats_.premature_flushes;

  UpdateAggregation(zone, zr);

  // Keep the SLC region ahead of demand. GC is foreground: while it
  // runs, host requests (including further appends) are held.
  if (gc_.NeedsGc()) {
    auto gc_done = gc_.Run(done.media_done);
    if (!gc_done.ok()) return gc_done.status();
    done.media_done = Later(done.media_done, gc_done.value());
    done.sram_free = Later(done.sram_free, gc_done.value());
  }
  // §III-E extension: a full L2P log blocks the flush until persisted.
  const SimTime logged = MaybeFlushL2pLog(done.sram_free);
  done.sram_free = Later(done.sram_free, logged);
  done.media_done = Later(done.media_done, logged);
  media_horizon_ = Later(media_horizon_, done.media_done);
  return done;
}

SimTime ConZoneDevice::MaybeFlushL2pLog(SimTime now, bool force) {
  SimTime t = now;
  while (l2p_log_.NeedsFlush() || (force && l2p_log_.pending_bytes() > 0)) {
    const std::uint64_t bytes = l2p_log_.BeginFlush();
    // Program the accumulated records to metadata flash, one page-sized
    // chunk at a time, round-robin over the chips.
    std::uint64_t left = bytes;
    while (left > 0) {
      const std::uint64_t chunk = std::min<std::uint64_t>(left, cfg_.geometry.page_size);
      const ChipId chip{l2p_log_chip_};
      l2p_log_chip_ = (l2p_log_chip_ + 1) % cfg_.geometry.NumChips();
      t = engine_.Program(chip, cfg_.map_media, chunk, t).end;
      left -= chunk;
    }
    // Commit only now that the program's media window is known: a cut
    // racing the flush rolls the commit back instead of double-counting.
    l2p_log_.CommitFlush(bytes, t);
    flushed_entries_since_ckpt_ += bytes / cfg_.l2p_log.entry_bytes;
  }
  // Interval policy (§12): every K flushed log entries, fold the whole
  // mapping into a durable image so the mount scan stays O(tail).
  if (cfg_.checkpoint.enabled &&
      flushed_entries_since_ckpt_ >= cfg_.checkpoint.interval_entries) {
    t = WriteCheckpoint(t);
  }
  media_horizon_ = Later(media_horizon_, t);
  return t;
}

SimTime ConZoneDevice::WriteCheckpoint(SimTime now) {
  CheckpointImage img;
  img.seq = ckpt_.NextSeq();
  img.program_seq = array_.program_seq();
  // Extent-coded: zoned fills are contiguous in both lpn and ppn space,
  // so AddMapping collapses the table to O(extents) runs.
  table_.ForEachMapped([&](Lpn lpn, Ppn ppn) {
    img.AddMapping(lpn.value(), ppn.value());
  });
  // Zone snapshots: the pure reconciliation of the mapping we just
  // serialized. A zone whose reconcile has no orphans and whose staged
  // extent reaches the host-visible write pointer (nothing buffered or
  // in flight) is stamped restorable — an untouched zone restores its
  // runtime from these fields at mount without re-walking its lpns.
  {
    const auto& zinfos = zones_.zones();
    for (std::uint32_t z = 0; z < zinfos.size(); ++z) {
      ZoneSnap snap;
      snap.write_pointer = zinfos[z].write_pointer;
      if (!IsConventional(ZoneId{z})) {
        const ZoneReconcile rec = ReconcileZoneMapping(ZoneId{z});
        snap.durable_normal_end = rec.durable_normal_end;
        snap.patch_start = rec.patch_start.value();
        if (rec.degraded) snap.flags |= ZoneSnap::kFlagDegraded;
        if (rec.patch_contiguous) snap.flags |= ZoneSnap::kFlagPatchContiguous;
        if (!rec.has_orphans && rec.staged_end == zinfos[z].write_pointer) {
          snap.flags |= ZoneSnap::kFlagRestorable;
        }
      }
      img.zones.push_back(snap);
    }
  }
  for (SuperblockId sb : pool_.FreeSlcList()) img.free_slc.push_back(sb.value());
  for (SuperblockId sb : pool_.FreeNormalList()) {
    img.free_normal.push_back(sb.value());
  }
  std::vector<std::uint8_t> blob = img.Encode();

  // Honest media cost on the shared chip timelines: reclaim the target
  // slot's block, then program the image page-sized chunks striped across
  // the chips. Chunks on the same chip chain sequentially; chips run in
  // parallel, so the image lands in max-over-chips time, not the sum.
  const int slot = ckpt_.NextSlot();
  SimTime t = engine_.Erase(ChipId{ckpt_chip_}, cfg_.map_media, now);
  const std::uint32_t num_chips = cfg_.geometry.NumChips();
  std::vector<SimTime> chip_done(num_chips, t);
  std::uint64_t left = blob.size();
  while (left > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(left, cfg_.geometry.page_size);
    const std::uint32_t chip = ckpt_chip_;
    ckpt_chip_ = (ckpt_chip_ + 1) % num_chips;
    chip_done[chip] =
        engine_.Program(ChipId{chip}, cfg_.map_media, chunk, chip_done[chip]).end;
    left -= chunk;
  }
  for (SimTime done : chip_done) t = Later(t, done);
  ++recovery_.checkpoints_written;
  recovery_.checkpoint_bytes += blob.size();
  // Commit carries the media window's end: a cut before `t` tears this
  // slot and mount falls back to the other image (or the full scan).
  ckpt_.Commit(slot, std::move(blob), img.seq, t);
  flushed_entries_since_ckpt_ = 0;
  media_horizon_ = Later(media_horizon_, t);
  return t;
}

Result<SimTime> ConZoneDevice::CheckpointNow(SimTime now) {
  if (!cfg_.checkpoint.enabled) {
    return Status::FailedPrecondition("checkpointing is not enabled");
  }
  if (Status st = BeginHostOp(now); !st.ok()) return st;
  const SimTime logged = MaybeFlushL2pLog(now, /*force=*/true);
  return WriteCheckpoint(logged);
}

// ---------------------------------------------------------------------------
// Aggregation maintenance
// ---------------------------------------------------------------------------

void ConZoneDevice::UpdateAggregation(ZoneId zone, ZoneRuntime& zr,
                                      bool table_prestamped) {
  // Degraded zones keep part of their "normal" range in SLC under page
  // mapping — aggregated entries would resolve those LPNs to the layout
  // and read stale media. Stamp nothing further.
  if (zr.degraded) return;
  const std::uint64_t chunk_bytes =
      static_cast<std::uint64_t>(cfg_.lpns_per_chunk) * cfg_.geometry.slot_size;
  const Lpn zbase = ZoneBaseLpn(zone);
  const std::uint64_t total_chunks = cfg_.zone_size_bytes / chunk_bytes;

  auto stamp_chunk = [&](std::uint32_t idx) {
    const Lpn cbase = Lpn(zbase.value() + static_cast<std::uint64_t>(idx) *
                                              cfg_.lpns_per_chunk);
    if (!table_prestamped) {
      table_.SetAggregated(cbase, cfg_.lpns_per_chunk, MapGranularity::kChunk);
    }
    auto base_ppn = ResolveAggregated(MapGranularity::kChunk,
                                      cbase.value() / cfg_.lpns_per_chunk, cbase);
    if (base_ppn) {
      translator_.OnAggregateGenerated(MapGranularity::kChunk,
                                       cbase.value() / cfg_.lpns_per_chunk, *base_ppn);
    }
    ++stats_.aggregates_chunk;
  };

  // Chunks wholly inside the durable normal prefix (§III-C ②: compare the
  // physical address against the chunk boundary — with the reserved
  // layout that is exactly the durable prefix test).
  while (static_cast<std::uint64_t>(zr.chunks_aggregated + 1) * chunk_bytes <=
         zr.durable_normal_end) {
    stamp_chunk(zr.chunks_aggregated);
    ++zr.chunks_aggregated;
  }

  // Zone completion: the patch (if any) must have landed contiguously.
  const bool complete = zr.staged_end == cfg_.zone_size_bytes &&
                        zr.durable_normal_end == layout_.normal_bytes();
  const bool patch_ok = layout_.patch_bytes() == 0 || zr.patch_contiguous;
  if (complete && patch_ok && !zr.zone_aggregated) {
    while (zr.chunks_aggregated < total_chunks) {
      stamp_chunk(zr.chunks_aggregated);
      ++zr.chunks_aggregated;
    }
    if (cfg_.max_aggregation == MapGranularity::kZone) {
      if (!table_prestamped) {
        table_.SetAggregated(zbase, LpnsPerZone(), MapGranularity::kZone);
      }
      auto base_ppn = ResolveAggregated(MapGranularity::kZone, zone.value(), zbase);
      if (base_ppn) {
        translator_.OnAggregateGenerated(MapGranularity::kZone, zone.value(), *base_ppn);
      }
      zr.zone_aggregated = true;
      ++stats_.aggregates_zone;
    }
  }
}

std::optional<Ppn> ConZoneDevice::ResolveAggregated(MapGranularity gran,
                                                    std::uint64_t unit_index,
                                                    Lpn lpn) const {
  (void)gran;
  (void)unit_index;
  const ZoneId zone{div_lpns_per_zone_.Div(lpn.value())};
  if (IsConventional(zone)) return std::nullopt;  // never aggregated
  if (zone.value() >= cfg_.num_conventional_zones + layout_.num_zones()) {
    return std::nullopt;
  }
  const std::uint64_t off =
      (lpn.value() - zone.value() * LpnsPerZone()) * cfg_.geometry.slot_size;
  if (off < layout_.normal_bytes()) return layout_.NormalSlot(SeqZone(zone), off);
  const ZoneRuntime& zr = runtime_[static_cast<std::size_t>(zone.value())];
  if (!zr.patch_contiguous || !zr.patch_start.valid()) return std::nullopt;
  const std::uint64_t steps = (off - layout_.normal_bytes()) / cfg_.geometry.slot_size;
  return layout_.StripeAdvance(zr.patch_start, steps);
}

void ConZoneDevice::OnGcRemap(Lpn lpn, Ppn old_ppn, Ppn new_ppn) {
  (void)old_ppn;
  const MapEntry e = table_.Get(lpn);
  if (e.gran != MapGranularity::kPage) {
    // Only patch slots can be both SLC-resident and aggregated; moving
    // one breaks the zone (and patch-chunk) aggregation.
    const ZoneId zone{lpn.value() / LpnsPerZone()};
    ZoneRuntime& zr = runtime_[static_cast<std::size_t>(zone.value())];
    const Lpn zbase = ZoneBaseLpn(zone);
    const std::uint64_t chunk_bytes =
        static_cast<std::uint64_t>(cfg_.lpns_per_chunk) * cfg_.geometry.slot_size;
    const std::uint32_t full_chunks =
        static_cast<std::uint32_t>(layout_.normal_bytes() / chunk_bytes);

    table_.DowngradeToPage(zbase, LpnsPerZone());
    cache_.Erase(L2pKey{MapGranularity::kZone, zone.value()});
    const std::uint64_t first_chunk = zbase.value() / cfg_.lpns_per_chunk;
    const std::uint64_t total_chunks = cfg_.zone_size_bytes / chunk_bytes;
    for (std::uint64_t c = 0; c < total_chunks; ++c) {
      cache_.Erase(L2pKey{MapGranularity::kChunk, first_chunk + c});
    }
    // Chunks wholly in the normal region stay aggregatable at chunk level.
    for (std::uint32_t c = 0; c < full_chunks; ++c) {
      const Lpn cbase = Lpn(zbase.value() + static_cast<std::uint64_t>(c) *
                                                cfg_.lpns_per_chunk);
      table_.SetAggregated(cbase, cfg_.lpns_per_chunk, MapGranularity::kChunk);
      auto base_ppn = ResolveAggregated(MapGranularity::kChunk,
                                        cbase.value() / cfg_.lpns_per_chunk, cbase);
      if (base_ppn) {
        translator_.OnAggregateGenerated(MapGranularity::kChunk,
                                         cbase.value() / cfg_.lpns_per_chunk, *base_ppn);
      }
    }
    zr.zone_aggregated = false;
    zr.patch_contiguous = false;
    zr.chunks_aggregated = full_chunks;
    ++stats_.aggregation_breaks;
  }
  table_.Set(lpn, new_ppn);
  cache_.Erase(L2pKey{MapGranularity::kPage, lpn.value()});
  l2p_log_.Append(1);
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

Result<SimTime> ConZoneDevice::ReadImpl(std::uint64_t offset, std::uint64_t len,
                                        SimTime now,
                                        std::vector<std::uint64_t>* tokens_out) {
  if (Status st = BeginHostOp(now); !st.ok()) return st;
  const FlashGeometry& geo = cfg_.geometry;
  const std::uint64_t slot = geo.slot_size;
  if (div_slot_.Mod(offset) != 0 || div_slot_.Mod(len) != 0 || len == 0) {
    return Status::InvalidArgument("read must be 4 KiB aligned and non-empty");
  }
  // Full logical capacity: the conventional pool precedes the
  // sequential zones, so the bound must include both (the write path's
  // zone-count check already does).
  if (offset + len >
      layout_.device_capacity() +
          static_cast<std::uint64_t>(cfg_.num_conventional_zones) *
              cfg_.zone_size_bytes) {
    return Status::OutOfRange("read beyond device capacity");
  }

  ++stats_.reads;
  stats_.host_bytes_read += len;
  const SimTime t0 = now + cfg_.request_overhead;
  SimTime data_done = t0;

  // Per-request page groups: every distinct flash page touched costs one
  // sense + one transfer of its live slots, no matter how the slots are
  // interleaved (SLC staging stripes consecutive LPNs across chips).
  std::vector<PageGroup>& groups = read_groups_;
  groups.clear();
  auto add_to_group = [&](FlashPageId page, SimTime dep, std::uint32_t retries) {
    for (PageGroup& g : groups) {
      if (g.page == page) {
        ++g.slots;
        g.dep = Later(g.dep, dep);
        if (retries > g.retries) g.retries = retries;
        return;
      }
    }
    groups.push_back(PageGroup{page, 1, dep, retries});
  };

  for (std::uint64_t off = offset; off < offset + len; off += slot) {
    const Lpn lpn = Lpn(div_slot_.Div(off));
    const ZoneId zone{div_zone_.Div(off)};
    const std::uint64_t off_in_zone = off - zone.value() * cfg_.zone_size_bytes;
    if (IsConventional(zone)) {
      // In-place region: no write pointer; validity comes from the
      // mapping itself. Buffered updates are served from RAM.
      if (const std::uint64_t* tok = BufferedToken(lpn)) {
        if (tokens_out) tokens_out->push_back(*tok);
        ++stats_.buffer_ram_reads;
        continue;
      }
      auto tr = translator_.Translate(lpn);
      if (!tr.ok()) return tr.status();
      SimTime dep = t0;
      for (std::uint64_t map_page : tr.value().map_pages_fetched) {
        const ChipId chip{map_page % geo.NumChips()};
        array_.CountPageRead();
        dep = engine_.ReadPage(chip, cfg_.map_media, geo.page_size, dep);
      }
      const SlotRead r = array_.ReadSlot(tr.value().ppn);
      if (r.state != SlotState::kValid || r.lpn != lpn) {
        return Status::Internal("conventional mapping stale (lpn " +
                                std::to_string(lpn.value()) + ")");
      }
      if (tokens_out) tokens_out->push_back(r.token);
      add_to_group(FlashPageId(div_slots_per_page_.Div(tr.value().ppn.value())), dep,
                   r.retry_level);
      continue;
    }
    if (Status st = zones_.CheckRead(zone, off_in_zone, slot); !st.ok()) return st;
    const ZoneRuntime& zr = runtime_[static_cast<std::size_t>(zone.value())];

    if (off_in_zone >= zr.staged_end) {
      // Still in the volatile write buffer: served from RAM.
      const BufferedExtent& b = buffers_.Contents(buffers_.BufferForZone(zone));
      if (b.empty() || b.owner != zone || lpn < b.first_lpn ||
          lpn.value() >= b.first_lpn.value() + b.slot_count()) {
        return Status::Internal("unflushed data missing from write buffer (lpn " +
                                std::to_string(lpn.value()) + ")");
      }
      if (tokens_out) {
        tokens_out->push_back(
            b.slots[static_cast<std::size_t>(lpn.value() - b.first_lpn.value())].token);
      }
      ++stats_.buffer_ram_reads;
      continue;
    }

    auto tr = translator_.Translate(lpn);
    if (!tr.ok()) return tr.status();
    SimTime dep = t0;
    // L2P miss: dependent metadata fetches, sequential (§III-C R.2 —
    // multiple fetches make read performance unstable under MULTIPLE).
    for (std::uint64_t map_page : tr.value().map_pages_fetched) {
      const ChipId chip{map_page % geo.NumChips()};
      array_.CountPageRead();
      dep = engine_.ReadPage(chip, cfg_.map_media, geo.page_size, dep);
    }

    const Ppn ppn = tr.value().ppn;
    const SlotRead r = array_.ReadSlot(ppn);
    if (r.state != SlotState::kValid || r.lpn != lpn) {
      return Status::Internal("mapping points at stale slot (lpn " +
                              std::to_string(lpn.value()) + " ppn " +
                              std::to_string(ppn.value()) + ")");
    }
    if (tokens_out) tokens_out->push_back(r.token);
    add_to_group(FlashPageId(div_slots_per_page_.Div(ppn.value())), dep, r.retry_level);
  }

  for (const PageGroup& g : groups) {
    const BlockId block = geo.BlockOfPage(g.page);
    array_.CountPageRead();
    data_done = Later(data_done, engine_.ReadPage(geo.ChipOfBlock(block),
                                                  geo.CellOfBlock(block),
                                                  g.slots * slot, g.dep, g.retries));
  }

  // Stream the payload back to the host.
  const SimTime end = host_link_.Reserve(data_done, HostTransferTime(len)).end;
  return end;
}

// ---------------------------------------------------------------------------
// Erase path
// ---------------------------------------------------------------------------

Result<SimTime> ConZoneDevice::ResetZone(ZoneId zone, SimTime now) {
  if (Status st = BeginHostOp(now); !st.ok()) return st;
  if (!zone.valid() ||
      zone.value() >= cfg_.num_conventional_zones + layout_.num_zones()) {
    return Status::OutOfRange("reset of invalid zone");
  }
  if (IsConventional(zone)) return ResetConventionalZone(zone, now);
  if (Status st = zones_.Reset(zone); !st.ok()) return st;
  ++stats_.zone_resets;

  const FlashGeometry& geo = cfg_.geometry;
  buffers_.Discard(zone);

  // Invalidate SLC-resident slots (staged data and the patch, E.2: "if
  // the zone has some data in SLC, ConZone invalidates it also") and drop
  // all mappings.
  const std::uint64_t mark = array_.MarkJournal();
  const Lpn zbase = ZoneBaseLpn(zone);
  for (std::uint64_t i = 0; i < LpnsPerZone(); ++i) {
    const Lpn lpn = Lpn(zbase.value() + i);
    const MapEntry e = table_.Get(lpn);
    if (e.mapped() && geo.IsSlcBlock(geo.BlockOfSlot(e.ppn))) {
      // Erased normal blocks reset their own slot state below.
      (void)array_.InvalidateSlot(e.ppn);
    }
    if (e.mapped()) table_.Unmap(lpn);
  }
  cache_.InvalidateLpnRange(zbase, LpnsPerZone());

  // Directly erase the reserved normal blocks that hold data.
  const SimTime t0 = now + cfg_.request_overhead;
  SimTime done = t0;
  for (std::uint32_t k = 0; k < cfg_.superblocks_per_zone; ++k) {
    const SuperblockId sb = layout_.SuperblockOfZone(SeqZone(zone), k);
    for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
      const BlockId b = geo.BlockOfSuperblock(sb, ChipId{c});
      if (array_.IsRetired(b)) {
        // Grown-bad reserved block: scrub leftovers; future writes to its
        // units re-drive into SLC (the zone comes back degraded).
        array_.ScrubBlock(b);
        continue;
      }
      if (array_.NextProgramSlot(b) == 0) continue;
      Status st = array_.EraseBlock(b);
      done = Later(done, engine_.Erase(ChipId{c}, geo.normal_cell, t0));
      if (!st.ok()) {
        if (st.code() != StatusCode::kMediaError) return st;
        array_.ScrubBlock(b);
        array_.mutable_reliability().recovery_time +=
            engine_.timing().For(geo.normal_cell).erase_latency;
      }
    }
  }
  runtime_[static_cast<std::size_t>(zone.value())] = ZoneRuntime{};
  // One window for the reset's SLC invalidates and block erases: the
  // erases were issued at t0 and the reset is durable once they finish.
  array_.StampJournal(mark, t0, done);
  media_horizon_ = Later(media_horizon_, done);
  return done;
}

Result<SimTime> ConZoneDevice::Flush(SimTime now) {
  if (Status st = BeginHostOp(now); !st.ok()) return st;
  ++stats_.host_flushes;
  SimTime done = now;
  for (std::uint32_t b = 0; b < cfg_.buffers.num_buffers; ++b) {
    const WriteBufferId id{b};
    if (buffers_.Contents(id).empty()) continue;
    const SimTime start = Later(now, buffer_ready_[b]);
    auto res = FlushAny(buffers_.Take(id, /*conflict=*/false), start);
    if (!res.ok()) return res.status();
    buffer_ready_[b] = res.value().sram_free;
    done = Later(done, res.value().media_done);
  }
  // Durability contract (FUA semantics): the acknowledgment may not race
  // any program pulse still in flight — a buffer can be empty while its
  // last background flush's pulse is still on the die, and that gap is
  // exactly what a power cut between the two would expose. Then persist
  // the sub-threshold L2P log tail so the mapping of everything acked
  // here survives a cut too.
  done = Later(done, media_horizon_);
  done = MaybeFlushL2pLog(done, /*force=*/true);
  // Clean-flush policy (§12): the device is quiescent and the log tail
  // just persisted — a cheap moment to fold the mapping into an image.
  // Gated on a minimum of flushed entries so a flush-heavy host does not
  // pay a full image per Flush.
  if (cfg_.checkpoint.enabled && cfg_.checkpoint.on_host_flush &&
      flushed_entries_since_ckpt_ >= cfg_.checkpoint.min_flush_entries &&
      flushed_entries_since_ckpt_ > 0) {
    done = WriteCheckpoint(done);
  }
  return done;
}


// ---------------------------------------------------------------------------
// Conventional zones (SIII-E extension): in-place updates for the host's
// metadata region, backed by a page-mapped dynamic pool with its own GC.
// ---------------------------------------------------------------------------

const std::uint64_t* ConZoneDevice::BufferedToken(Lpn lpn) const {
  for (std::uint32_t b = 0; b < cfg_.buffers.num_buffers; ++b) {
    const BufferedExtent& e = buffers_.Contents(WriteBufferId{b});
    if (!e.empty() && lpn >= e.first_lpn &&
        lpn.value() < e.first_lpn.value() + e.slot_count()) {
      return &e.slots[static_cast<std::size_t>(lpn.value() - e.first_lpn.value())].token;
    }
  }
  return nullptr;
}

SimTime ConZoneDevice::ChargeNormalBurns(SimTime issue) {
  SimTime done = issue;
  const FlashGeometry& geo = cfg_.geometry;
  ReliabilityStats& rel = array_.mutable_reliability();
  for (const ChipId chip : conv_alloc_.last_failed_chips()) {
    done = Later(done,
                 engine_.Program(chip, geo.normal_cell, geo.program_unit, issue).data_in);
    rel.recovery_time += engine_.timing().For(geo.normal_cell).program_latency;
    rel.redrive_hist.Record(engine_.timing().For(geo.normal_cell).program_latency);
    rel.rewrite_slots += geo.program_unit / geo.slot_size;
  }
  return done;
}

Status ConZoneDevice::SetMappingInPlace(Lpn lpn, Ppn ppn) {
  const MapEntry old = table_.Get(lpn);
  if (old.mapped() && array_.StateOfSlot(old.ppn) == SlotState::kValid) {
    if (Status st = array_.InvalidateSlot(old.ppn); !st.ok()) return st;
    ++stats_.conventional_overwrites;
  }
  table_.Set(lpn, ppn);
  cache_.Erase(L2pKey{MapGranularity::kPage, lpn.value()});
  l2p_log_.Append(1);
  return Status::Ok();
}

Result<SimTime> ConZoneDevice::WriteConventional(ZoneId zone, std::uint64_t offset,
                                                 std::uint64_t len, SimTime now,
                                                 std::span<const std::uint64_t> tokens) {
  ++stats_.writes;
  ++stats_.conventional_writes;
  stats_.host_bytes_written += len;

  SimTime t = now + cfg_.request_overhead;
  t = host_link_.Reserve(t, HostTransferTime(len)).end;

  const std::uint64_t nslots = div_slot_.Div(len);
  const Lpn first_lpn = Lpn(div_slot_.Div(offset));

  std::uint64_t i = 0;
  while (i < nslots) {
    const Lpn next = Lpn(first_lpn.value() + i);
    // The controller tracks in-place streams the way Legacy does:
    // continue a matching extent, else take an empty buffer, else evict
    // the coldest one (which may belong to a sequential zone - FlushAny
    // dispatches correctly).
    const WriteBufferId buf = buffers_.PickBufferForStream(next);
    t = Later(t, buffer_ready_[static_cast<std::size_t>(buf.value())]);

    const BufferedExtent& cur = buffers_.Contents(buf);
    const bool contiguous =
        cur.empty() || (cur.owner == zone &&
                        Lpn(cur.first_lpn.value() + cur.slot_count()) == next);
    const bool overlaps =
        !cur.empty() && next.value() < cur.first_lpn.value() + cur.slot_count() &&
        next.value() + (nslots - i) > cur.first_lpn.value();
    if (!contiguous || overlaps) {
      ++stats_.conflict_flushes;
      auto done = FlushAny(buffers_.Take(buf, /*conflict=*/true), t);
      if (!done.ok()) return done.status();
      buffer_ready_[static_cast<std::size_t>(buf.value())] = done.value().sram_free;
      t = done.value().sram_free;
    }

    const std::uint64_t free = buffers_.FreeSlots(buf);
    const std::uint64_t n = std::min(free, nslots - i);
    std::vector<SlotWrite>& chunk = chunk_scratch_;
    chunk.clear();
    for (std::uint64_t k = 0; k < n; ++k) {
      const Lpn lpn = Lpn(first_lpn.value() + i + k);
      chunk.push_back(
          SlotWrite{lpn, tokens.empty() ? DefaultToken(lpn) : tokens[i + k]});
    }
    if (Status st = buffers_.AppendTo(buf, zone, next, chunk); !st.ok()) return st;
    i += n;

    if (buffers_.FreeSlots(buf) == 0) {
      auto done = FlushAny(buffers_.Take(buf, /*conflict=*/false), t);
      if (!done.ok()) return done.status();
      buffer_ready_[static_cast<std::size_t>(buf.value())] = done.value().sram_free;
    }
  }
  return t;
}

Result<ConZoneDevice::FlushResult> ConZoneDevice::FlushConventionalExtent(
    BufferedExtent extent, SimTime now) {
  if (extent.empty()) return FlushResult{now, now};
  ++stats_.flushes;
  const FlashGeometry& geo = cfg_.geometry;
  const std::uint64_t unit_slots = geo.program_unit / geo.slot_size;
  FlushResult done{now, now};

  std::size_t i = 0;
  // Whole one-shot units into the conventional pool's log.
  while (extent.slot_count() - i >= unit_slots) {
    const std::uint64_t mark = array_.MarkJournal();
    auto unit = conv_alloc_.ProgramUnit(
        std::span<const SlotWrite>(extent.slots).subspan(i, unit_slots));
    if (!unit.ok()) return unit.status();
    if (!conv_alloc_.last_failed_chips().empty()) {
      done.sram_free = Later(done.sram_free, ChargeNormalBurns(now));
    }
    const auto prog =
        engine_.Program(unit.value().chip, geo.normal_cell, geo.program_unit, now);
    done.sram_free = Later(done.sram_free, prog.data_in);
    done.media_done = Later(done.media_done, prog.end);
    for (std::size_t k = 0; k < unit_slots; ++k) {
      if (Status st = SetMappingInPlace(extent.slots[i + k].lpn, unit.value().ppns[k]);
          !st.ok()) {
        return st;
      }
    }
    // The unit's program and the overwrites it superseded share one
    // durability window.
    array_.StampJournal(mark, now, prog.end);
    i += unit_slots;
  }
  // Sub-unit remainder: through the shared SLC secondary buffer. Under
  // page mapping it simply lives there until GC migrates it.
  if (i < extent.slot_count()) {
    ++stats_.premature_flushes;
    const std::uint64_t mark = array_.MarkJournal();
    std::vector<SlotWrite> rest(extent.slots.begin() + static_cast<std::ptrdiff_t>(i),
                                extent.slots.end());
    auto ppns = slc_alloc_.Program(rest);
    if (!ppns.ok()) return ppns.status();
    if (!slc_alloc_.last_failed().empty()) {
      ChargeSlcRewrites(engine_, geo, slc_alloc_.last_failed(), now,
                        &array_.mutable_reliability());
    }
    const auto prog = ProgramSlcSlots(engine_, geo, ppns.value(), now);
    done.sram_free = Later(done.sram_free, prog.data_in);
    done.media_done = Later(done.media_done, prog.end);
    for (std::size_t k = 0; k < rest.size(); ++k) {
      if (Status st = SetMappingInPlace(rest[k].lpn, ppns.value()[k]); !st.ok()) {
        return st;
      }
    }
    array_.StampJournal(mark, now, prog.end);
  }

  if (pool_.FreeNormalCount() < cfg_.gc.low_watermark) {
    auto gc_done = CollectConventional(done.media_done);
    if (!gc_done.ok()) return gc_done.status();
    done.media_done = Later(done.media_done, gc_done.value());
    done.sram_free = Later(done.sram_free, gc_done.value());
  }
  if (gc_.NeedsGc()) {
    auto gc_done = gc_.Run(done.media_done);
    if (!gc_done.ok()) return gc_done.status();
    done.media_done = Later(done.media_done, gc_done.value());
    done.sram_free = Later(done.sram_free, gc_done.value());
  }
  const SimTime logged = MaybeFlushL2pLog(done.sram_free);
  done.sram_free = Later(done.sram_free, logged);
  done.media_done = Later(done.media_done, logged);
  media_horizon_ = Later(media_horizon_, done.media_done);
  return done;
}

Result<SimTime> ConZoneDevice::CollectConventional(SimTime now) {
  const FlashGeometry& geo = cfg_.geometry;
  ++stats_.conventional_gc_runs;
  SimTime t = now;
  const std::uint32_t pool_begin = geo.NumSlcSuperblocks();
  const std::uint32_t pool_end =
      pool_begin + cfg_.EffectiveConventionalSuperblocks();
  std::size_t last_free = pool_.FreeNormalCount();
  int stalled = 0;
  while (pool_.FreeNormalCount() < cfg_.gc.reclaim_target) {
    // Greedy victim within the conventional pool.
    SuperblockId victim;
    std::uint64_t best_valid = ~0ull;
    for (std::uint32_t sb = pool_begin; sb < pool_end; ++sb) {
      const SuperblockId cand{sb};
      if (cand == conv_alloc_.current_superblock()) continue;
      if (pool_.IsFreeNormal(cand)) continue;
      std::uint64_t valid = 0, used = 0;
      std::uint32_t healthy = 0;
      for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
        const BlockId b = geo.BlockOfSuperblock(cand, ChipId{c});
        valid += array_.ValidSlots(b);
        used += array_.NextProgramSlot(b);
        if (!array_.IsRetired(b)) ++healthy;
      }
      if (used == 0) continue;
      if (healthy == 0) continue;  // fully retired: nothing reclaimable
      if (valid < best_valid) {
        best_valid = valid;
        victim = cand;
      }
    }
    if (!victim.valid()) {
      if (pool_.FreeNormalCount() == 0) {
        return Status::ResourceExhausted("conventional pool exhausted, no victim");
      }
      break;
    }
    if (pool_.FreeNormalCount() <= last_free && ++stalled > 1) break;
    last_free = pool_.FreeNormalCount();

    // Read live slots (grouped per page), re-log them, erase, release.
    const std::uint64_t migrate_mark = array_.MarkJournal();
    const SimTime migrate_start = t;
    std::vector<SlotWrite> live;
    std::vector<Ppn> old_ppns;
    SimTime reads_done = t;
    for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
      const BlockId b = geo.BlockOfSuperblock(victim, ChipId{c});
      const std::uint32_t used = array_.NextProgramSlot(b);
      std::uint32_t page_live = 0;
      std::uint32_t page_retry = 0;
      std::uint32_t current_page = ~0u;
      auto flush_page = [&] {
        if (page_live == 0) return;
        array_.CountPageRead();
        reads_done = Later(reads_done,
                           engine_.ReadPage(ChipId{c}, geo.normal_cell,
                                            page_live * geo.slot_size, t, page_retry));
        page_live = 0;
        page_retry = 0;
      };
      for (std::uint32_t sidx = 0; sidx < used; ++sidx) {
        const std::uint32_t page = sidx / geo.SlotsPerPage();
        const Ppn ppn = geo.SlotAt(geo.PageAt(b, page), sidx % geo.SlotsPerPage());
        if (array_.StateOfSlot(ppn) != SlotState::kValid) continue;
        if (page != current_page) {
          flush_page();
          current_page = page;
        }
        ++page_live;
        const SlotRead r = array_.ReadSlot(ppn);
        if (r.retry_level > page_retry) page_retry = r.retry_level;
        live.push_back(SlotWrite{r.lpn, r.token});
        old_ppns.push_back(ppn);
      }
      flush_page();
    }
    // Invalidate the old copies first so SetMappingInPlace's invariant
    // (mapping points at a valid slot) holds while re-logging.
    for (const Ppn old : old_ppns) {
      if (Status st = array_.InvalidateSlot(old); !st.ok()) return st;
    }
    std::size_t i = 0;
    while (i < live.size()) {
      std::vector<SlotWrite> unit(
          live.begin() + static_cast<std::ptrdiff_t>(i),
          live.begin() + static_cast<std::ptrdiff_t>(
                             std::min(i + geo.program_unit / geo.slot_size, live.size())));
      const std::size_t data_count = unit.size();
      unit.resize(geo.program_unit / geo.slot_size, SlotWrite{Lpn::Invalid(), 0});
      auto res = conv_alloc_.ProgramUnit(unit);
      if (!res.ok()) return res.status();
      if (!conv_alloc_.last_failed_chips().empty()) {
        t = Later(t, ChargeNormalBurns(reads_done));
      }
      t = Later(t, engine_.Program(res.value().chip, geo.normal_cell, geo.program_unit,
                                   reads_done)
                       .end);
      for (std::size_t k = 0; k < unit.size(); ++k) {
        const Ppn ppn = res.value().ppns[k];
        if (k < data_count) {
          table_.Set(unit[k].lpn, ppn);
          cache_.Erase(L2pKey{MapGranularity::kPage, unit[k].lpn.value()});
          l2p_log_.Append(1);
        } else {
          if (Status st = array_.InvalidateSlot(ppn); !st.ok()) return st;
        }
      }
      i += data_count;
      stats_.conventional_gc_migrated += data_count;
    }
    // Two-phase stamping (GC is not atomic under power loss): the
    // migration — source invalidates plus re-log programs — closes when
    // the last program pulse ends; the erases are stamped separately
    // below with their true issue time, or a mid-GC cut would mislabel
    // never-issued erases as torn and destroy restorable source data.
    array_.StampJournal(migrate_mark, migrate_start, t);
    const std::uint64_t erase_mark = array_.MarkJournal();
    SimTime erases = t;
    std::uint32_t healthy_erased = 0;
    for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
      const BlockId b = geo.BlockOfSuperblock(victim, ChipId{c});
      if (array_.IsRetired(b)) {
        array_.ScrubBlock(b);
        continue;
      }
      Status st = array_.EraseBlock(b);
      erases = Later(erases, engine_.Erase(ChipId{c}, geo.normal_cell, t));
      if (st.ok()) {
        ++healthy_erased;
        continue;
      }
      if (st.code() != StatusCode::kMediaError) return st;
      array_.ScrubBlock(b);
      array_.mutable_reliability().recovery_time +=
          engine_.timing().For(geo.normal_cell).erase_latency;
    }
    array_.StampJournal(erase_mark, t, erases);
    t = erases;
    if (healthy_erased > 0) {
      if (Status st = pool_.ReleaseNormal(victim); !st.ok()) return st;
    }
  }
  return t;
}

Result<SimTime> ConZoneDevice::EvictConventionalFromSlc(std::vector<SlotWrite> slots,
                                                        SimTime reads_done) {
  const FlashGeometry& geo = cfg_.geometry;
  // Make room in the pool first if needed; this never re-enters SLC GC.
  SimTime t = reads_done;
  if (pool_.FreeNormalCount() == 0) {
    auto gc_done = CollectConventional(t);
    if (!gc_done.ok()) return gc_done.status();
    t = gc_done.value();
  }
  const std::uint64_t unit_slots = geo.program_unit / geo.slot_size;
  std::size_t i = 0;
  while (i < slots.size()) {
    std::vector<SlotWrite> unit(
        slots.begin() + static_cast<std::ptrdiff_t>(i),
        slots.begin() +
            static_cast<std::ptrdiff_t>(std::min(i + unit_slots, slots.size())));
    const std::size_t data_count = unit.size();
    unit.resize(unit_slots, SlotWrite{Lpn::Invalid(), 0});
    const std::uint64_t mark = array_.MarkJournal();
    const SimTime issue = t;
    auto res = conv_alloc_.ProgramUnit(unit);
    if (!res.ok()) return res.status();
    if (!conv_alloc_.last_failed_chips().empty()) {
      t = Later(t, ChargeNormalBurns(t));
    }
    t = Later(t, engine_.Program(res.value().chip, geo.normal_cell, geo.program_unit, t)
                     .end);
    for (std::size_t k = 0; k < unit.size(); ++k) {
      const Ppn ppn = res.value().ppns[k];
      if (k < data_count) {
        // The caller (SLC GC) invalidates the old copies; just repoint.
        table_.Set(unit[k].lpn, ppn);
        cache_.Erase(L2pKey{MapGranularity::kPage, unit[k].lpn.value()});
        l2p_log_.Append(1);
      } else {
        if (Status st = array_.InvalidateSlot(ppn); !st.ok()) return st;
      }
    }
    array_.StampJournal(mark, issue, t);
    i += data_count;
  }
  return t;
}

Result<SimTime> ConZoneDevice::ResetConventionalZone(ZoneId zone, SimTime now) {
  ++stats_.zone_resets;
  buffers_.Discard(zone);
  const std::uint64_t mark = array_.MarkJournal();
  const Lpn zbase = ZoneBaseLpn(zone);
  for (std::uint64_t i = 0; i < LpnsPerZone(); ++i) {
    const Lpn lpn = Lpn(zbase.value() + i);
    const MapEntry e = table_.Get(lpn);
    if (!e.mapped()) continue;
    if (array_.StateOfSlot(e.ppn) == SlotState::kValid) {
      if (Status st = array_.InvalidateSlot(e.ppn); !st.ok()) return st;
    }
    table_.Unmap(lpn);
  }
  cache_.InvalidateLpnRange(zbase, LpnsPerZone());
  // No erase here: the pool's blocks are shared; GC reclaims them. The
  // invalidates are controller metadata; they become cut-proof once the
  // reset is acknowledged.
  array_.StampJournal(mark, now, now + cfg_.request_overhead);
  return now + cfg_.request_overhead;
}

Result<SimTime> ConZoneDevice::FinishZone(ZoneId zone, SimTime now) {
  if (Status st = BeginHostOp(now); !st.ok()) return st;
  if (!zone.valid() ||
      zone.value() >= cfg_.num_conventional_zones + layout_.num_zones()) {
    return Status::OutOfRange("finish of invalid zone");
  }
  if (IsConventional(zone)) {
    return Status::FailedPrecondition("conventional zones have no FINISH");
  }
  // Flush the zone's buffered tail so written data stays readable.
  SimTime done = now;
  const WriteBufferId buf = buffers_.BufferForZone(zone);
  const BufferedExtent& b = buffers_.Contents(buf);
  if (!b.empty() && b.owner == zone) {
    const SimTime start = Later(now, buffer_ready_[static_cast<std::size_t>(buf.value())]);
    auto res = FlushExtent(buffers_.Take(buf, /*conflict=*/false), start);
    if (!res.ok()) return res.status();
    buffer_ready_[static_cast<std::size_t>(buf.value())] = res.value().sram_free;
    done = res.value().media_done;
  }
  if (Status st = zones_.Finish(zone); !st.ok()) return st;
  return done;
}

// ---------------------------------------------------------------------------
// Power loss and crash-consistent recovery
// ---------------------------------------------------------------------------

Status ConZoneDevice::PowerCut(SimTime cut_time) {
  if (!array_.JournalEnabled()) {
    return Status::FailedPrecondition(
        "power loss not enabled (set fault.power_loss before Create)");
  }
  if (powered_off_) {
    return Status::FailedPrecondition("device is already powered off");
  }
  if (cut_time < last_submit_) {
    return Status::InvalidArgument("power cut precedes the last host submission");
  }
  ++recovery_.power_cuts;
  // Media first: every batch whose program window had not closed at the
  // cut rolls back per the journal's point-of-no-return rule.
  FlashArray::PowerCutReport rep = array_.ApplyPowerCut(cut_time);
  recovery_.torn_program_slots += rep.torn_program_slots;
  recovery_.unissued_program_slots += rep.unissued_program_slots;
  recovery_.resurrected_slots += rep.resurrected_slots;
  reerase_pending_ = std::move(rep.reerase);
  rescan_pending_ = std::move(rep.rescan);
  last_cut_time_ = cut_time;
  // A checkpoint image whose programs had not finished at the cut is
  // torn; the store invalidates it so mount elects the previous image.
  recovery_.checkpoints_torn += ckpt_.ApplyPowerCut(cut_time);
  // Volatile controller state dies with the SRAM: buffered host data and
  // the unflushed (or in-flight) L2P log tail.
  recovery_.buffered_slots_lost += buffers_.DiscardAll();
  recovery_.l2p_log_bytes_lost += l2p_log_.DropVolatile(cut_time);
  powered_off_ = true;
  return Status::Ok();
}

Result<SimTime> ConZoneDevice::RecoverReeraseTorn(std::span<const BlockId> blocks,
                                                  SimTime now) {
  const FlashGeometry& geo = cfg_.geometry;
  SimTime done = now;
  for (const BlockId b : blocks) {
    if (array_.IsRetired(b)) continue;
    const CellType cell = geo.CellOfBlock(b);
    Status st = array_.EraseBlock(b);
    done = Later(done, engine_.Erase(geo.ChipOfBlock(b), cell, now));
    if (!st.ok()) {
      if (st.code() != StatusCode::kMediaError) return st;
      array_.ScrubBlock(b);
      array_.mutable_reliability().recovery_time +=
          engine_.timing().For(cell).erase_latency;
    }
    ++recovery_.reerased_blocks;
  }
  return done;
}

Result<SimTime> ConZoneDevice::RecoverScanMedia(SimTime now) {
  const FlashGeometry& geo = cfg_.geometry;
  std::uint64_t mapped = 0;
  SimTime done = now;
  const std::uint32_t num_zones = cfg_.num_conventional_zones + layout_.num_zones();
  zone_dirty_.assign(num_zones, 0);
  mount_have_snaps_ = false;
  const std::uint64_t lpns_per_zone = LpnsPerZone();
  auto dirty_lpn = [&](std::uint64_t lpn_v) {
    const std::uint64_t z = lpn_v / lpns_per_zone;
    if (z < num_zones) zone_dirty_[static_cast<std::size_t>(z)] = 1;
  };

  // Checkpoint fast path (§12): replay the newest valid image, then
  // bound the OOB scan to blocks programmed after its watermark. The
  // image is a RAM snapshot, so every entry is re-checked against the
  // media it points at — a slot torn or superseded after the snapshot
  // rejects here and the tail scan (or a forced rescan) supplies the
  // truth instead.
  bool have_ckpt = false;
  std::uint64_t watermark = 0;
  std::optional<CheckpointImage> img;  // lives past the tail scan (pass B)
  std::vector<std::uint8_t> run_clean;
  if (cfg_.checkpoint.enabled && cfg_.checkpoint.load_at_mount) {
    const CheckpointStore::Slot* slot = ckpt_.NewestValid();
    // NewestValid only elects decodable slots, so Decode cannot fail
    // here; the has_value() check keeps the fallback honest anyway.
    if (slot != nullptr) img = CheckpointImage::Decode(slot->blob);
      if (img.has_value()) {
      // Charge the image load like the write: page-sized chunk reads
      // striped over the chips. Same-chip chunks chain sequentially,
      // chips overlap, so the load costs max-over-chips time.
      std::vector<SimTime> chip_done(geo.NumChips(), done);
      std::uint64_t left = slot->blob.size();
      std::uint32_t chip = 0;
      while (left > 0) {
        const std::uint64_t chunk = std::min<std::uint64_t>(left, geo.page_size);
        array_.CountPageRead();
        chip_done[chip] =
            engine_.ReadPage(ChipId{chip}, cfg_.map_media, chunk, chip_done[chip]);
        chip = (chip + 1) % geo.NumChips();
        left -= chunk;
      }
      for (SimTime cd : chip_done) done = Later(done, cd);
      watermark = img->program_seq;
      have_ckpt = true;
      ++recovery_.checkpoint_loaded;
      recovery_.checkpoint_age_hist.Record(last_cut_time_ - slot->media_end);
      if (img->zones.size() == num_zones) {
        mount_zone_snaps_ = std::move(img->zones);
        mount_have_snaps_ = true;
      }
      // Force-rescan flags: blocks the cut's undo pass put *older* state
      // back into (resurrected slots, restored erase pre-images) must be
      // rescanned even below the watermark — and their image runs
      // re-checked per-slot — because the image may map their lpns
      // elsewhere or not at all.
      rescan_flags_.assign(static_cast<std::size_t>(geo.TotalBlocks()), 0);
      for (const BlockId b : rescan_pending_) {
        rescan_flags_[static_cast<std::size_t>(b.value())] = 1;
      }
      // Pass A — cleanliness only, no installs yet: a run is clean when
      // every block its ppn span touches is unchanged since the snapshot
      // (change-seq at or below the watermark, no forced rescan), so the
      // media still holds exactly what the image recorded. Unclean runs
      // dirty every zone they span: those zones' restore must fall back
      // to media reconciliation. Installation waits for the tail scan
      // below so the final per-zone restore decision (and with it each
      // entry's aggregation map bits) is known before the table pass.
      const std::uint64_t num_lpns = table_.geometry().num_lpns;
      const std::uint64_t run_spb =
          static_cast<std::uint64_t>(geo.pages_per_block) * geo.SlotsPerPage();
      const std::uint64_t total_slots = geo.TotalBlocks() * run_spb;
      run_clean.assign(img->mappings.size(), 0);
      for (std::size_t ri = 0; ri < img->mappings.size(); ++ri) {
        const MapRun& run = img->mappings[ri];
        bool clean = run.lpn + run.count <= num_lpns &&
                     run.ppn + run.count <= total_slots;
        if (clean) {
          const std::uint64_t b_first = run.ppn / run_spb;
          const std::uint64_t b_last = (run.ppn + run.count - 1) / run_spb;
          for (std::uint64_t b = b_first; clean && b <= b_last; ++b) {
            clean = array_.LastChangeSeq(BlockId{b}) <= watermark &&
                    rescan_flags_[static_cast<std::size_t>(b)] == 0;
          }
        }
        run_clean[ri] = clean ? 1 : 0;
        if (!clean) {
          const std::uint64_t z0 = run.lpn / lpns_per_zone;
          const std::uint64_t z1 = (run.lpn + run.count - 1) / lpns_per_zone;
          for (std::uint64_t z = z0; z <= z1 && z < num_zones; ++z) {
            zone_dirty_[static_cast<std::size_t>(z)] = 1;
          }
        }
      }
    }
  }
  rescan_pending_.clear();

  // Reset the table, skipping the ranges clean image runs will stream
  // over in pass B: at high fullness nearly every entry is about to be
  // re-installed, and rewriting the table twice is the dominant mount
  // cost. Unclean runs and the tail scan need genuinely cleared entries
  // (they probe `prev.mapped()`), and their lpns are never inside a
  // clean run: a post-snapshot copy of a clean run's lpn would have
  // invalidated the run's slot (change-seq bump) or sits in a cut-undo
  // block (forced rescan) — either way pass A already marked the run
  // unclean. A stale entry slipping through anyway trips the two-copies
  // check or the Σvalid == mapped gate; nothing fails silently.
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> keep;
    if (img.has_value()) {
      keep.reserve(img->mappings.size());
      for (std::size_t ri = 0; ri < img->mappings.size(); ++ri) {
        if (run_clean[ri] != 0) {
          keep.emplace_back(img->mappings[ri].lpn, img->mappings[ri].count);
        }
      }
    }
    table_.ClearForMountExcept(keep);
  }

  const std::uint32_t slots_per_page = geo.SlotsPerPage();
  const std::uint64_t slots_per_block =
      static_cast<std::uint64_t>(geo.pages_per_block) * slots_per_page;
  // Hot loop (the tail path): the flat ppn of a block's slot s is
  // base + s, so the per-slot PageAt/SlotAt arithmetic is hoisted into
  // one running base per block.
  std::uint64_t base = 0;
  for (std::uint64_t bi = 0; bi < geo.TotalBlocks(); ++bi, base += slots_per_block) {
    const BlockId b{bi};
    const std::uint32_t used = array_.NextProgramSlot(b);
    if (used == 0) continue;
    const std::uint32_t used_pages = (used + slots_per_page - 1) / slots_per_page;
    if (have_ckpt && array_.LastProgramSeq(b) <= watermark &&
        rescan_flags_[static_cast<std::size_t>(bi)] == 0) {
      // Untouched since the snapshot: the image already mapped every
      // valid slot here identically. Skip the senses entirely.
      recovery_.pages_skipped += used_pages;
      continue;
    }
    const ChipId chip = geo.ChipOfBlock(b);
    const CellType cell = geo.CellOfBlock(b);
    // One OOB sense per used page; pages of one block are sequential on
    // the chip, blocks on different chips overlap via the timelines.
    SimTime block_done = now;
    for (std::uint32_t p = 0; p < used_pages; ++p) {
      array_.CountPageRead();
      block_done = engine_.ReadPage(chip, cell, geo.page_size, block_done);
      ++recovery_.pages_scanned;
    }
    done = Later(done, block_done);
    for (std::uint32_t s = 0; s < used; ++s) {
      const Ppn ppn{base + s};
      // PeekSlot: the mount scan charges timing above but never draws
      // from the fault RNG — a cut/recover cycle must not perturb the
      // fault sequence of later host IO.
      const SlotRead r = array_.PeekSlot(ppn);
      if (r.state != SlotState::kValid) continue;
      if (!r.lpn.valid()) continue;  // alignment padding never maps
      // A scanned-in slot means this zone changed after the snapshot
      // (or there is no snapshot); its restore must re-reconcile.
      dirty_lpn(r.lpn.value());
      const MapEntry prev = table_.Get(r.lpn);
      if (prev.mapped()) {
        // Image entries install after this loop, so a prior mapping here
        // is another scanned block's copy — a genuine double, same as
        // the full scan. (Same-ppn is unreachable; kept for symmetry
        // with the image path.)
        if (prev.ppn == ppn) continue;
        return Status::Internal("mount scan found two valid copies of lpn " +
                                std::to_string(r.lpn.value()));
      }
      table_.Set(r.lpn, ppn);
      ++mapped;
    }
  }

  // Pass B — install the image runs. zone_dirty_ is final now, so each
  // restorable-and-clean zone's aggregation boundary is known up front
  // and a clean run installs with its final map bits in one streaming
  // store pass (no second SetAggregated sweep at restore time).
  if (img.has_value()) {
    std::vector<std::uint64_t> agg_end(num_zones, 0);
    std::vector<MapGranularity> agg_gran(num_zones, MapGranularity::kPage);
    if (mount_have_snaps_) {
      const std::uint64_t chunk_bytes =
          static_cast<std::uint64_t>(cfg_.lpns_per_chunk) * geo.slot_size;
      for (std::uint32_t z = cfg_.num_conventional_zones; z < num_zones; ++z) {
        if (zone_dirty_[z] != 0) continue;
        const ZoneSnap& snap = mount_zone_snaps_[z];
        if ((snap.flags & ZoneSnap::kFlagRestorable) == 0) continue;
        if ((snap.flags & ZoneSnap::kFlagDegraded) != 0) continue;
        // Mirror of UpdateAggregation over the snapshot's runtime: whole
        // chunks inside the durable normal prefix aggregate at chunk
        // granularity; a complete zone with a contiguous patch lifts to
        // the configured maximum.
        const std::uint64_t zbase = static_cast<std::uint64_t>(z) * lpns_per_zone;
        const bool complete = snap.write_pointer == cfg_.zone_size_bytes &&
                              snap.durable_normal_end == layout_.normal_bytes();
        const bool patch_ok = layout_.patch_bytes() == 0 ||
                              (snap.flags & ZoneSnap::kFlagPatchContiguous) != 0;
        if (complete && patch_ok) {
          agg_end[z] = zbase + lpns_per_zone;
          agg_gran[z] = cfg_.max_aggregation == MapGranularity::kZone
                            ? MapGranularity::kZone
                            : MapGranularity::kChunk;
        } else {
          agg_end[z] = zbase + (snap.durable_normal_end / chunk_bytes) *
                                   cfg_.lpns_per_chunk;
          agg_gran[z] = MapGranularity::kChunk;
        }
      }
    }
    std::uint64_t accepted = 0;
    const std::uint64_t num_lpns = table_.geometry().num_lpns;
    for (std::size_t ri = 0; ri < img->mappings.size(); ++ri) {
      const MapRun& run = img->mappings[ri];
      if (run_clean[ri] != 0) {
        // Clean runs install blind (image lpns are unique, and a clean
        // run cannot collide with a scanned-in entry: any supersede of
        // its data would have changed one of its blocks). Segment by
        // zone and aggregation boundary for the final map bits.
        std::uint64_t lpn = run.lpn;
        std::uint64_t ppn = run.ppn;
        std::uint64_t left = run.count;
        while (left > 0) {
          const std::uint64_t z = lpn / lpns_per_zone;
          std::uint64_t seg_end = (z + 1) * lpns_per_zone;
          MapGranularity gran = MapGranularity::kPage;
          if (z < num_zones && lpn < agg_end[z]) {
            seg_end = agg_end[z];
            gran = agg_gran[z];
          }
          const std::uint64_t n = std::min(left, seg_end - lpn);
          table_.InstallRunAtMount(Lpn{lpn}, Ppn{ppn}, n, gran);
          lpn += n;
          ppn += n;
          left -= n;
        }
        accepted += run.count;
        continue;
      }
      // Per-entry path: something under the run moved after the
      // snapshot (pass A already dirtied the spanned zones). Each entry
      // is re-checked against the media it points at — a slot torn or
      // superseded after the snapshot rejects here, and the tail scan
      // already supplied the truth.
      for (std::uint64_t i = 0; i < run.count; ++i) {
        const std::uint64_t lpn_v = run.lpn + i;
        if (lpn_v >= num_lpns) {
          ++recovery_.checkpoint_stale_dropped;
          continue;
        }
        const Ppn ppn{run.ppn + i};
        // PeekSlot: no fault RNG draws, same as the scan above.
        const SlotRead r = array_.PeekSlot(ppn);
        if (r.state != SlotState::kValid || !r.lpn.valid() ||
            r.lpn.value() != lpn_v) {
          ++recovery_.checkpoint_stale_dropped;
          continue;
        }
        const MapEntry prev = table_.Get(Lpn{lpn_v});
        if (prev.mapped()) {
          // The tail scan installed this exact mapping already; anything
          // else is a genuine double copy, same as the full scan.
          if (prev.ppn == ppn) continue;
          return Status::Internal("mount scan found two valid copies of lpn " +
                                  std::to_string(lpn_v));
        }
        table_.Set(Lpn{lpn_v}, ppn);
        ++accepted;
      }
    }
    mapped += accepted;
    recovery_.checkpoint_mappings += accepted;
  }
  recovery_.replayed_mappings += mapped;
  return done;
}

ConZoneDevice::ZoneReconcile ConZoneDevice::ReconcileZoneMapping(
    ZoneId zone) const {
  const FlashGeometry& geo = cfg_.geometry;
  ZoneReconcile rec;
  const Lpn zbase = ZoneBaseLpn(zone);
  const std::uint64_t slot = geo.slot_size;
  const std::uint64_t unit_lpns = geo.program_unit / slot;
  const std::uint64_t normal_lpns = layout_.normal_bytes() / slot;
  const std::uint64_t zone_lpns = LpnsPerZone();

  // 1. Durable normal prefix: whole one-shot units fully mapped from unit
  //    0 upward. A unit counts even when its slots were re-driven into
  //    SLC — the zone simply comes back degraded, like after a live
  //    program failure. A one-shot unit never spans blocks and its slots
  //    are ppn-consecutive, so one NormalSlot call per unit anchors the
  //    layout compare for all of its lpns.
  std::uint64_t u = 0;
  bool degraded = false;
  for (; u < normal_lpns / unit_lpns; ++u) {
    const Ppn unit_base =
        layout_.NormalSlot(SeqZone(zone), u * geo.program_unit);
    bool full = true;
    bool off_layout = false;
    for (std::uint64_t k = 0; k < unit_lpns; ++k) {
      const std::uint64_t rel = u * unit_lpns + k;
      const MapEntry e = table_.Get(Lpn(zbase.value() + rel));
      if (!e.mapped()) {
        full = false;
        break;
      }
      if (e.ppn.value() != unit_base.value() + k) off_layout = true;
    }
    if (!full) break;
    degraded |= off_layout;
  }
  rec.durable_normal_end = u * geo.program_unit;
  rec.degraded = degraded;

  // 2. Contiguous staged run beyond the durable prefix (SLC staging and,
  //    on a complete zone, the patch).
  std::uint64_t s = u * unit_lpns;
  while (s < zone_lpns && table_.Get(Lpn(zbase.value() + s)).mapped()) ++s;
  rec.staged_end = s * slot;

  // 3. Mapped islands beyond the staged extent (early exit: the caller
  //    only needs to know whether any exist).
  for (std::uint64_t k = s; k < zone_lpns; ++k) {
    if (table_.Get(Lpn(zbase.value() + k)).mapped()) {
      rec.has_orphans = true;
      break;
    }
  }

  // 4. §III-E patch contiguity, rechecked against the stripe layout so
  //    aggregated reads stay sound after the remount.
  if (rec.staged_end == cfg_.zone_size_bytes && layout_.patch_bytes() > 0) {
    const MapEntry first = table_.Get(Lpn(zbase.value() + normal_lpns));
    bool contiguous = first.mapped();
    for (std::uint64_t k = 1; contiguous && k < zone_lpns - normal_lpns; ++k) {
      const MapEntry e = table_.Get(Lpn(zbase.value() + normal_lpns + k));
      auto expect = layout_.StripeAdvance(first.ppn, k);
      if (!expect || !e.mapped() || e.ppn != *expect) contiguous = false;
    }
    rec.patch_start = first.ppn;
    rec.patch_contiguous = contiguous;
  }
  return rec;
}

Status ConZoneDevice::RecoverZone(ZoneId zone) {
  const FlashGeometry& geo = cfg_.geometry;
  ZoneRuntime& zr = runtime_[static_cast<std::size_t>(zone.value())];
  zr = ZoneRuntime{};
  const ZoneReconcile rec = ReconcileZoneMapping(zone);
  zr.durable_normal_end = rec.durable_normal_end;
  zr.staged_end = rec.staged_end;
  zr.degraded = rec.degraded;
  zr.patch_start = rec.patch_start;
  zr.patch_contiguous = rec.patch_contiguous;

  // Orphans: mapped islands beyond the reconciled write pointer are
  // unreachable under zone semantics. They are always unacknowledged
  // data — a host Flush waits for every outstanding pulse, so durable
  // content can never strand behind a hole. Drop them.
  if (rec.has_orphans) {
    const Lpn zbase = ZoneBaseLpn(zone);
    const std::uint64_t zone_lpns = LpnsPerZone();
    for (std::uint64_t k = rec.staged_end / geo.slot_size; k < zone_lpns; ++k) {
      const Lpn lpn = Lpn(zbase.value() + k);
      const MapEntry e = table_.Get(lpn);
      if (!e.mapped()) continue;
      if (array_.StateOfSlot(e.ppn) == SlotState::kValid) {
        if (Status st = array_.InvalidateSlot(e.ppn); !st.ok()) return st;
      }
      table_.Unmap(lpn);
      ++recovery_.orphaned_slots;
    }
  }

  // Re-stamp aggregation from scratch over the recovered durable state,
  // then restore host-visible zone state from the reconciled write
  // pointer (ZNS after unexpected power off: EMPTY, CLOSED or FULL only).
  UpdateAggregation(zone, zr);
  zones_.RestoreAtMount(zone, zr.staged_end);
  return Status::Ok();
}

Result<SimTime> ConZoneDevice::Recover(SimTime now) {
  if (!powered_off_) {
    return Status::FailedPrecondition("device is not powered off");
  }
  // Recovery's own media mutations are the new durable baseline, not
  // undoable state (a second cut during the remount is not modeled).
  array_.PauseJournal(true);
  auto fail = [&](Status st) -> Result<SimTime> {
    array_.PauseJournal(false);
    return st;
  };

  // 1. Torn erases left untrusted cells: run a real erase (wear and
  //    possible faults included) before anything can program there.
  auto re = RecoverReeraseTorn(reerase_pending_, now);
  if (!re.ok()) return fail(re.status());
  reerase_pending_.clear();
  SimTime t = re.value();

  // 2. OOB scan: rebuild the page-granularity L2P table from media,
  //    replaying what the lost log tail described.
  auto sc = RecoverScanMedia(t);
  if (!sc.ok()) return fail(sc.status());
  t = sc.value();

  // 3. The L2P cache died with the SRAM. Clear it before reconciliation
  //    re-pins aggregated entries.
  const std::uint32_t num_zones = cfg_.num_conventional_zones + layout_.num_zones();
  cache_.InvalidateLpnRange(Lpn(0),
                            static_cast<std::uint64_t>(num_zones) * LpnsPerZone());

  // 4. Per-zone reconciliation: write pointers, staging extents,
  //    aggregation, orphan slots. A zone whose snapshot is restorable
  //    and that stayed clean through the scan (no entry dropped, no slot
  //    sensed, no forced per-entry check) is byte-identical to the image
  //    — restore its runtime from the snapshot instead of re-walking its
  //    lpn range.
  for (std::uint32_t z = 0; z < num_zones; ++z) {
    const ZoneId zone{z};
    if (IsConventional(zone)) {
      // In-place region: no write pointer to reconcile; validity comes
      // from the rebuilt mapping alone.
      runtime_[z] = ZoneRuntime{};
      zones_.RestoreAtMount(zone, 0);
      continue;
    }
    if (mount_have_snaps_ && zone_dirty_[z] == 0 &&
        (mount_zone_snaps_[z].flags & ZoneSnap::kFlagRestorable) != 0) {
      const ZoneSnap& snap = mount_zone_snaps_[z];
      ZoneRuntime& zr = runtime_[z];
      zr = ZoneRuntime{};
      zr.durable_normal_end = snap.durable_normal_end;
      zr.staged_end = snap.write_pointer;  // restorable ⇒ wp == staged end
      zr.degraded = (snap.flags & ZoneSnap::kFlagDegraded) != 0;
      zr.patch_start = Ppn{snap.patch_start};
      zr.patch_contiguous = (snap.flags & ZoneSnap::kFlagPatchContiguous) != 0;
      // Map bits were already written by the scan's bulk install;
      // regenerate only counters and resolver pins.
      UpdateAggregation(zone, zr, /*table_prestamped=*/true);
      zones_.RestoreAtMount(zone, zr.staged_end);
      ++recovery_.zones_restored;
      continue;
    }
    if (Status st = RecoverZone(zone); !st.ok()) return fail(st);
  }
  zones_.RecountAfterMount();

  // 5. Allocators and free lists from the surviving media state.
  pool_.RebuildFreeLists(array_);
  slc_alloc_.Remount();
  conv_alloc_.Remount();
  read_only_ = array_.HealthySlcBlocks() < cfg_.fault.read_only_spare_floor_blocks;

  // 6. Counters must reconcile: every mapped LPN points at exactly one
  //    valid slot and every valid slot is mapped.
  std::uint64_t valid = 0;
  for (std::uint64_t b = 0; b < cfg_.geometry.TotalBlocks(); ++b) {
    valid += array_.ValidSlots(BlockId{b});
  }
  if (valid != table_.mapped_count()) {
    return fail(Status::Internal(
        "recovery reconcile failed: " + std::to_string(valid) +
        " valid slots vs " + std::to_string(table_.mapped_count()) +
        " mapped lpns"));
  }

  for (SimTime& br : buffer_ready_) br = t;
  media_horizon_ = t;
  last_submit_ = t;
  powered_off_ = false;
  ++recovery_.recoveries;
  recovery_.remount_time += t - now;
  recovery_.remount_hist.Record(t - now);
  array_.PauseJournal(false);
  return t;
}

}  // namespace conzone
