// ConZone device configuration and the paper's evaluation preset.
#pragma once

#include <cstdint>

#include "buffer/write_buffer.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "fault/fault_model.hpp"
#include "flash/checkpoint_store.hpp"
#include "flash/geometry.hpp"
#include "flash/timing.hpp"
#include "ftl/l2p_cache.hpp"
#include "ftl/l2p_log.hpp"
#include "ftl/translator.hpp"
#include "gc/slc_gc.hpp"

namespace conzone {

struct ConZoneConfig {
  FlashGeometry geometry;
  TimingConfig timing;

  // --- Zones ---
  /// Host-visible zone size. When larger than the data capacity of the
  /// zone's reserved superblocks, the tail ("patched data", §III-E) is
  /// written to SLC pages — the paper's workaround for TLC's
  /// non-power-of-two natural zone sizes.
  std::uint64_t zone_size_bytes = 16 * kMiB;
  std::uint32_t superblocks_per_zone = 1;
  std::uint32_t max_open_zones = 6;
  std::uint32_t max_active_zones = 12;

  // --- Write path ---
  WriteBufferConfig buffers;

  // --- Read path ---
  L2pCacheConfig l2p;
  TranslatorConfig translator;
  /// Cap on aggregation level: kZone (full hybrid mapping) or kChunk
  /// (§IV-C uses chunk-only for fairness against Legacy's prefetch).
  MapGranularity max_aggregation = MapGranularity::kZone;
  std::uint32_t lpns_per_chunk = 1024;  ///< 4 MiB chunks.
  /// Media holding the L2P mapping table pages (miss fetch latency).
  CellType map_media = CellType::kTlc;
  /// Optional §III-E extension: persist mapping updates through an L2P
  /// log whose flush-back blocks host requests. Off by default (the
  /// paper defers this to future work).
  L2pLogConfig l2p_log;
  /// Durable L2P checkpoints bounding the mount-time OOB scan to the
  /// post-checkpoint tail (DESIGN.md §12). Requires the L2P log.
  CheckpointConfig checkpoint;

  // --- Conventional zones (§III-E extension) ---
  /// The first `num_conventional_zones` zones accept in-place updates —
  /// the region F2FS needs for metadata. The paper leaves their design
  /// open; this implementation backs them with a dynamically allocated
  /// pool of normal superblocks (page-mapped, device-side GC) that sits
  /// between the SLC region and the sequential zones' reservations, and
  /// lets them share the write buffers and the SLC secondary buffer with
  /// the sequential zones.
  std::uint32_t num_conventional_zones = 0;
  /// Physical superblocks backing the conventional zones (0 = auto:
  /// capacity rounded up plus two superblocks of GC headroom).
  std::uint32_t conventional_superblocks = 0;

  /// Backing pool size after auto-sizing.
  std::uint32_t EffectiveConventionalSuperblocks() const;

  // --- Erase path ---
  GcConfig gc;

  // --- Reliability ---
  /// NAND fault injection (all-zero default = no faults, zero hot-path
  /// cost). See FaultConfig for rates, determinism and the read-only
  /// spare floor.
  FaultConfig fault;

  // --- Host interface ---
  /// Host-link (UFS) bandwidth for request payload transfer.
  std::uint64_t host_link_bandwidth_bps = 4200 * kMiB;
  /// Fixed firmware/submission overhead charged per request.
  SimDuration request_overhead = SimDuration::Micros(15);

  Status Validate() const;

  /// The §IV-A evaluation configuration: TLC, 2 channels x 2 chips,
  /// 96 KiB programming unit (=> 384 KiB superpage), two shared 384 KiB
  /// write buffers, 1.5 GB flash, 12 KiB L2P cache, 3200 MiB/s channels.
  static ConZoneConfig PaperConfig();

  /// Derive the configuration of shard `shard_id` in a sharded run: the
  /// same device with a decorrelated fault-RNG stream. Shard 0 is the
  /// identity — a 1-shard run is bit-identical to driving this config
  /// directly. Deterministic in (this config, shard_id, master_seed).
  ConZoneConfig ForShard(std::uint32_t shard_id, std::uint64_t master_seed) const;
};

}  // namespace conzone
