// Crash-consistency shadow model and scripted crash harness.
//
// The checker mirrors, in plain host-visible terms, what ConZone is
// contractually allowed to return after a power cut:
//
//   * Acknowledged-durable data — everything written before a Flush whose
//     completion precedes the cut — must read back exactly.
//   * Merely-buffered data (written but not flushed) may survive in part:
//     each sequential zone must come back as a *token-prefix* of what the
//     host wrote in some epoch between the last durably-completed reset
//     and the current one. Prefix, because flash programs land in order;
//     epoch range, because a torn reset legitimately leaves either the
//     old content (partially erased to a shorter prefix) or nothing.
//   * A conventional LPN must read back either its durable value or a
//     value written after the durable flush (a torn overwrite may
//     resurrect the previous copy, never an unrelated one).
//   * The recovered write pointer may not exceed readable content, and
//     reads past it must fail.
//
// The harness drives a seeded, reproducible op stream (zone-sequential
// writes, flushes, resets, finishes, conventional overwrites) against a
// real device with the checker shadowing every op, then cuts power at an
// arbitrary point, remounts, and verifies. Same seed + same cut time =>
// bit-identical recovery, which the fingerprint exposes.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "core/device.hpp"

namespace conzone {

class CrashConsistencyChecker {
 public:
  /// `total_zones` = conventional + sequential (DeviceInfo::num_zones;
  /// the count is derived from the layout, not stored in the config).
  CrashConsistencyChecker(const ConZoneConfig& config, std::uint32_t total_zones);

  // --- Shadowing (call once per acknowledged host op) ---
  void OnWrite(std::uint64_t offset, std::span<const std::uint64_t> tokens,
               SimTime submit, SimTime done);
  void OnFlush(SimTime submit, SimTime done);
  void OnReset(ZoneId zone, SimTime submit, SimTime done);
  /// Finish/open/close change no content; they only advance the clock.
  void OnNoop(SimTime submit, SimTime done);

  /// Resolve which flush and which resets were durable at `cut_time`.
  void OnPowerCut(SimTime cut_time);

  /// After Recover(): read back every zone and assert the contract above,
  /// plus the counter reconciliation (every mapped LPN <-> one valid
  /// slot). On success the shadow is re-baselined to the recovered state
  /// (now fully on media, hence durable), so the same checker can keep
  /// shadowing ops toward the next cut.
  Status VerifyAfterRecovery(ConZoneDevice& dev, SimTime now);

  /// Order-sensitive FNV-1a hash over the recovered state the last
  /// VerifyAfterRecovery observed: write pointers, every readable token,
  /// conventional values. Two runs with the same seed and cut time must
  /// produce equal fingerprints.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  /// One zone generation: the token stream written since a reset.
  struct Epoch {
    std::uint64_t number = 0;
    std::vector<std::uint64_t> tokens;
  };

  struct ZoneShadow {
    std::uint64_t current_epoch = 0;
    /// Epoch created by the newest reset known durably complete (its
    /// completion precedes a later op's submission, hence any legal cut).
    std::uint64_t floor_epoch = 0;
    /// Retained generations, oldest first; front is >= floor_epoch.
    std::deque<Epoch> epochs;
    /// Resets not yet folded into floor_epoch: epoch they created + when
    /// their erases finished.
    std::vector<std::pair<std::uint64_t, SimTime>> pending_resets;
  };

  /// Host-visible state at one Flush completion.
  struct Snapshot {
    SimTime submit;
    SimTime done;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> zones;  ///< epoch, length
    std::vector<std::uint64_t> conv;  ///< token per conventional LPN (0 = none)
  };

  struct ConvWrite {
    std::uint64_t token = 0;
    SimTime submit;
  };

  bool IsConv(ZoneId z) const { return z.value() < cfg_.num_conventional_zones; }
  ZoneShadow& Seq(ZoneId z) {
    return zones_[static_cast<std::size_t>(z.value() - cfg_.num_conventional_zones)];
  }
  /// Every op submission confirms completions that precede it: the
  /// pending flush becomes the durable baseline candidate and finished
  /// resets raise their zone's floor (a cut can never land before
  /// `submit` anymore).
  void Advance(SimTime submit);
  Snapshot Capture(SimTime submit, SimTime done) const;
  Status VerifySequentialZone(ConZoneDevice& dev, ZoneId zone, SimTime now);
  Status VerifyConventionalZone(ConZoneDevice& dev, ZoneId zone, SimTime now);
  void Mix(std::uint64_t v) {
    fingerprint_ = (fingerprint_ ^ v) * 0x100000001B3ull;
  }

  ConZoneConfig cfg_;
  std::uint32_t total_zones_ = 0;
  std::uint64_t lpns_per_zone_ = 0;
  std::vector<ZoneShadow> zones_;            ///< Sequential zones only.
  std::vector<std::uint64_t> conv_current_;  ///< Token per conventional LPN.
  std::vector<std::vector<ConvWrite>> conv_history_;  ///< Since last confirmed flush.
  std::optional<Snapshot> confirmed_;  ///< Durable under ANY legal cut.
  std::optional<Snapshot> pending_;    ///< Last flush, not yet confirmed.
  std::optional<Snapshot> durable_;    ///< Resolved by OnPowerCut().
  SimTime cut_time_;
  bool cut_resolved_ = false;
  std::uint64_t fingerprint_ = 0xCBF29CE484222325ull;
};

/// Seeded random op stream against a live device, with the checker
/// shadowing every op. Supports repeated cut/recover/verify rounds on one
/// device (the checker re-baselines after each verified recovery).
class CrashHarness {
 public:
  struct Options {
    std::uint64_t seed = 1;
    std::uint32_t active_zones = 4;     ///< Sequential zones the stream cycles over.
    std::uint32_t max_write_slots = 16;  ///< Per-write length cap (4 KiB slots).
    double flush_prob = 0.12;
    double reset_prob = 0.05;
    double finish_prob = 0.02;
    double conv_prob = 0.15;  ///< Used only when the config has conventional zones.
  };

  CrashHarness(const ConZoneConfig& config, const Options& options);

  /// Create the device (power-loss journaling is forced on).
  Status Init();

  /// Generate and execute `n` ops from the current device state.
  Status RunOps(std::size_t n);

  /// Cut power at `frac` of the way through the last op's service window
  /// (0 = its submission instant, 1 = its completion; >1 reaches into
  /// background pulses still in flight past the completion).
  Status Cut(double frac);
  Status CutAt(SimTime t);

  /// Remount and run the full consistency check. Advances now() to the
  /// remount completion.
  Status RecoverAndVerify();

  ConZoneDevice& device() { return *dev_; }
  const ConZoneDevice& device() const { return *dev_; }
  const CrashConsistencyChecker& checker() const { return *checker_; }
  std::uint64_t fingerprint() const { return checker_->fingerprint(); }
  SimTime now() const { return now_; }
  SimTime last_submit() const { return last_submit_; }

 private:
  Status RunOne();

  ConZoneConfig cfg_;
  Options opt_;
  Rng rng_;
  std::uint64_t next_token_ = 1;  ///< 0 is reserved for "never written".
  std::unique_ptr<ConZoneDevice> dev_;
  std::optional<CrashConsistencyChecker> checker_;  ///< Built by Init().
  SimTime now_;
  SimTime last_submit_;
};

}  // namespace conzone
