// Reserved physical layout of zones (paper §III-B, Fig. 3).
//
// ConZone reserves a fixed run of normal-region superblocks for every
// zone ("square-patterned blocks in Fig. 3") so that data residing in the
// normal flash area is always physically contiguous *in layout order*:
// the physical address of any byte can be computed from its logical
// offset within the zone. Layout order stripes one-shot program units
// across the chips — unit u of a zone goes to chip (u mod chips), row
// (u div chips) — which is what lets a superpage flush program all chips
// in parallel.
//
// When the host-visible zone size exceeds the reserved superblocks' data
// capacity (TLC's non-power-of-two problem, §III-E), the tail of the zone
// — the *patch region* — is written to SLC pages instead; the layout
// exposes the boundary so the write path and the aggregation checks can
// treat the two parts correctly.
#pragma once

#include <cstdint>
#include <optional>

#include "common/fastdiv.hpp"
#include "common/ids.hpp"
#include "common/status.hpp"
#include "flash/geometry.hpp"

namespace conzone {

class ZoneLayout {
 public:
  /// `reserve_offset_superblocks` normal superblocks are skipped before
  /// zone 0's reservation (they back the conventional-zone pool).
  ZoneLayout(const FlashGeometry& geometry, std::uint64_t zone_size_bytes,
             std::uint32_t superblocks_per_zone,
             std::uint32_t reserve_offset_superblocks = 0);

  Status Validate() const;

  std::uint32_t num_zones() const { return num_zones_; }
  std::uint64_t zone_bytes() const { return zone_bytes_; }
  /// Bytes of a zone that live in its reserved normal superblocks.
  std::uint64_t normal_bytes() const { return normal_bytes_; }
  /// Bytes of a zone patched into SLC (zone_bytes - normal_bytes).
  std::uint64_t patch_bytes() const { return zone_bytes_ - normal_bytes_; }

  std::uint64_t device_capacity() const {
    return zone_bytes_ * num_zones_;
  }

  /// k-th reserved superblock of `zone` (k < superblocks_per_zone).
  SuperblockId SuperblockOfZone(ZoneId zone, std::uint32_t k) const;

  /// Program units per zone in the normal region.
  std::uint64_t UnitsPerZone() const { return normal_bytes_ / geo_.program_unit; }

  struct UnitLoc {
    BlockId block;
    ChipId chip;
    std::uint32_t first_page_in_block = 0;
  };
  /// Location of program unit `unit_index` of `zone` (layout order).
  UnitLoc UnitAt(ZoneId zone, std::uint64_t unit_index) const;

  /// Physical slot of zone-relative byte `offset` (< normal_bytes()).
  Ppn NormalSlot(ZoneId zone, std::uint64_t offset) const;

  // --- SLC stripe arithmetic (for contiguous patch runs, §III-E) ---
  /// Position of a slot in the SLC page-fill stripe order (must match
  /// SlcAllocator's allocation order).
  struct StripePos {
    SuperblockId sb;
    std::uint64_t flat = 0;
  };
  StripePos StripeOfSlot(Ppn ppn) const;
  Ppn SlotOfStripe(const StripePos& pos) const;
  /// Slot `steps` positions after `ppn` in stripe order; nullopt when the
  /// walk would leave the superblock (contiguity broken).
  std::optional<Ppn> StripeAdvance(Ppn ppn, std::uint64_t steps) const;

  const FlashGeometry& geometry() const { return geo_; }

 private:
  FlashGeometry geo_;
  std::uint64_t zone_bytes_;
  std::uint32_t sbs_per_zone_;
  std::uint32_t reserve_offset_;
  std::uint64_t normal_bytes_;
  std::uint32_t num_zones_;
  // Reciprocals of the geometry constants used by the per-IO address
  // arithmetic (UnitAt / NormalSlot sit on the read hot path through
  // aggregated-entry resolution).
  FastDiv div_chips_;
  FastDiv div_units_per_block_;
  FastDiv div_program_unit_;
  FastDiv div_page_size_;
  FastDiv div_slot_size_;
  std::uint32_t pages_per_unit_ = 0;  ///< geo_.PagesPerProgramUnit()
};

}  // namespace conzone
