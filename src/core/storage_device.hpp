// Abstract storage device driven by the workload runner.
//
// All devices in this repository (ConZone, the Legacy baseline, the
// FEMU-model baseline) implement this synchronous simulated-time
// interface: an operation submitted at simulated time `now` returns its
// completion time. Concurrency (multi-threaded FIO jobs) is created by
// the caller interleaving submissions in time order; the devices'
// internal resource timelines serialize contended hardware.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace conzone {

struct DeviceInfo {
  std::string name;
  std::uint64_t capacity_bytes = 0;   ///< Host-visible logical capacity.
  std::uint64_t zone_size_bytes = 0;  ///< 0 for conventional devices.
  std::uint32_t num_zones = 0;
  std::uint64_t io_alignment = 4096;  ///< Required offset/length alignment.
};

class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  virtual DeviceInfo info() const = 0;

  /// Write `len` bytes at byte `offset`, submitted at `now`; returns the
  /// completion time. `tokens` optionally carries one integrity token per
  /// 4 KiB page (tests use this to verify end-to-end data paths); when
  /// empty the device stores a default token derived from the LPN.
  virtual Result<SimTime> Write(std::uint64_t offset, std::uint64_t len, SimTime now,
                                std::span<const std::uint64_t> tokens = {}) = 0;

  /// Read `len` bytes at `offset`. When `tokens_out` is non-null it is
  /// filled with the stored token of each 4 KiB page.
  virtual Result<SimTime> Read(std::uint64_t offset, std::uint64_t len, SimTime now,
                               std::vector<std::uint64_t>* tokens_out = nullptr) = 0;

  /// Zoned devices: reset one zone. Conventional devices reject this.
  virtual Result<SimTime> ResetZone(ZoneId zone, SimTime now) {
    (void)zone;
    (void)now;
    return Status::Unimplemented("device has no zones");
  }

  /// Flush all volatile write buffers to media.
  virtual Result<SimTime> Flush(SimTime now) { return now; }
};

}  // namespace conzone
