// Abstract storage device driven by the workload runner.
//
// All devices in this repository (ConZone, the Legacy baseline, the
// FEMU-model baseline, and host-side compositions such as StripedVolume)
// implement this synchronous simulated-time interface: an operation
// submitted at simulated time `now` returns its completion time.
// Concurrency (multi-threaded FIO jobs) is created by the caller
// interleaving submissions in time order; the devices' internal resource
// timelines serialize contended hardware.
//
// Capability discovery is data, not error codes: a host layer decides
// how to place and route I/O from `DeviceInfo` (zoned vs conventional,
// zone geometry, open/active limits, SLC staging capacity) — it must
// never probe by issuing an op and sniffing for kUnimplemented.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace conzone {

/// Coarse serviceability of a device, surfaced through DeviceInfo so a
/// redundancy layer can route around a dead or write-refusing member
/// without probing by error code. Like the zoned() capability, this is
/// data the host plans against, not a status to sniff mid-IO.
enum class DeviceHealth {
  kHealthy,   ///< Accepts reads and writes.
  kReadOnly,  ///< Reads serve; writes are refused (e.g. spare floor hit).
  kOffline,   ///< No ops serve (e.g. powered off awaiting Recover()).
};

struct DeviceInfo {
  std::string name;
  std::uint64_t capacity_bytes = 0;   ///< Host-visible logical capacity.
  /// 0 for conventional devices — the one conventional signal callers
  /// gate zone handling on (never on ResetZone's error code).
  std::uint64_t zone_size_bytes = 0;
  std::uint32_t num_zones = 0;
  /// Leading zones that accept in-place updates (ConZone §III-E
  /// extension); 0 on purely sequential or purely conventional devices.
  std::uint32_t num_conventional_zones = 0;
  /// Zone-resource limits a host must plan placement around; 0 means
  /// unlimited (or non-zoned).
  std::uint32_t max_open_zones = 0;
  std::uint32_t max_active_zones = 0;
  /// Usable SLC staging capacity (secondary write buffer); 0 when the
  /// device has no low-latency staging media (e.g. the FEMU model).
  std::uint64_t slc_bytes = 0;
  std::uint64_t io_alignment = 4096;  ///< Required offset/length alignment.
  /// Current serviceability; devices without a failure model are always
  /// healthy.
  DeviceHealth health = DeviceHealth::kHealthy;

  bool zoned() const { return zone_size_bytes != 0; }
};

/// Who issued an I/O. Host layers tag their internal traffic so device
/// counters can attribute it instead of blending everything into the
/// foreground stream: a ZoneCache eviction that migrates live entries is
/// real device load, but it is not host load, and capacity planning needs
/// to see the two separately. Devices bucket per-class counters in
/// StatsSnapshot; the class never changes scheduling or timing.
enum class IoClass : std::uint8_t {
  kHostForeground = 0,  ///< Ordinary host I/O (the default).
  kCacheMigration = 1,  ///< Cache eviction/migration rewrites.
  kMaintenance = 2,     ///< Journals, scrub, verify, mount-time reads.
};
inline constexpr std::size_t kNumIoClasses = 3;

/// One host I/O, fully described. Replaces the growing default-argument
/// tail on Write/Read: future fields (priority, deadline, async
/// completion hooks) extend this struct instead of every signature.
struct IoRequest {
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  SimTime now;  ///< Submission time.
  /// Writes: one integrity token per 4 KiB page (tests use this to
  /// verify end-to-end data paths); empty = the device stores a default
  /// token derived from the LPN.
  std::span<const std::uint64_t> tokens = {};
  /// Reads: fill IoResult::tokens with the stored token of each 4 KiB
  /// page. Off by default — the hot path stays allocation-free.
  bool want_tokens = false;
  /// Attribution class (see IoClass). Default-constructed requests are
  /// foreground and behave bit-identically to requests that predate the
  /// tag.
  IoClass io_class = IoClass::kHostForeground;
};

/// Completion of one host I/O.
struct IoResult {
  SimTime done;  ///< Completion time.
  /// Reads with want_tokens: stored token per 4 KiB page, request order.
  std::vector<std::uint64_t> tokens;
  /// Stripe units a redundancy layer had to rebuild from peers/parity to
  /// serve this request (0 on bare devices and clean reads): the per-IO
  /// degraded-mode signal, mirrored in aggregate by RedundancyStats.
  std::uint32_t reconstructed_units = 0;
};

/// Uniform device counters every StorageDevice can report, so hosts,
/// examples and harnesses aggregate heterogeneous members without
/// downcasting to concrete device types. Counters a device does not
/// model stay zero.
struct StatsSnapshot {
  std::uint64_t host_bytes_written = 0;
  std::uint64_t host_bytes_read = 0;
  /// Bytes programmed to flash media (write amplification numerator).
  std::uint64_t flash_bytes_written = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t zone_resets = 0;
  std::uint64_t host_flushes = 0;    ///< Explicit host Flush/FUA commands.
  std::uint64_t buffer_flushes = 0;  ///< Write-buffer drain events.
  std::uint64_t premature_flushes = 0;
  std::uint64_t overwrites = 0;  ///< In-place updates (conventional space).
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_slots_migrated = 0;
  /// Per-IoClass breakdown of successful reads/writes (indexed by
  /// IoClass). Devices that predate the tag leave these zero. The sums
  /// stay <= the blended `reads`/`writes`, which also count requests
  /// that fail after admission (e.g. reads past a write pointer).
  std::array<std::uint64_t, kNumIoClasses> class_reads{};
  std::array<std::uint64_t, kNumIoClasses> class_writes{};

  double WriteAmplification() const {
    return host_bytes_written == 0
               ? 0.0
               : static_cast<double>(flash_bytes_written) /
                     static_cast<double>(host_bytes_written);
  }

  /// Fold another device's snapshot into this one (host-layer merge).
  void Merge(const StatsSnapshot& o) {
    host_bytes_written += o.host_bytes_written;
    host_bytes_read += o.host_bytes_read;
    flash_bytes_written += o.flash_bytes_written;
    writes += o.writes;
    reads += o.reads;
    zone_resets += o.zone_resets;
    host_flushes += o.host_flushes;
    buffer_flushes += o.buffer_flushes;
    premature_flushes += o.premature_flushes;
    overwrites += o.overwrites;
    gc_runs += o.gc_runs;
    gc_slots_migrated += o.gc_slots_migrated;
    for (std::size_t c = 0; c < kNumIoClasses; ++c) {
      class_reads[c] += o.class_reads[c];
      class_writes[c] += o.class_writes[c];
    }
  }

  bool operator==(const StatsSnapshot&) const = default;
};

class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  virtual DeviceInfo info() const = 0;

  /// Write req.len bytes at byte req.offset, submitted at req.now.
  virtual Result<IoResult> Write(const IoRequest& req) = 0;

  /// Read req.len bytes at req.offset; with req.want_tokens the result
  /// carries the stored token of each 4 KiB page.
  virtual Result<IoResult> Read(const IoRequest& req) = 0;

  /// Zoned devices: reset one zone. Conventional devices never implement
  /// this — but callers must decide zone handling from
  /// DeviceInfo::zone_size_bytes, not by probing for this error.
  virtual Result<SimTime> ResetZone(ZoneId zone, SimTime now) {
    (void)zone;
    (void)now;
    return Status::Unimplemented("device has no zones");
  }

  /// Flush all volatile write buffers to media.
  virtual Result<SimTime> Flush(SimTime now) { return now; }

  /// Uniform counters; see StatsSnapshot. Default: a device that tracks
  /// nothing reports zeros.
  virtual StatsSnapshot Stats() const { return {}; }

  /// Fault/recovery accounting; zero-filled on devices without a
  /// reliability model.
  virtual ReliabilityStats Reliability() const { return {}; }

  /// Power-loss/remount accounting (cuts survived, remount latency,
  /// checkpoint counters); zero-filled on devices without power-loss
  /// emulation. Hosts and harnesses aggregate this uniformly — no
  /// downcast to a concrete device type.
  virtual RecoveryStats Recovery() const { return {}; }
};

}  // namespace conzone
