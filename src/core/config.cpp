#include "core/config.hpp"

#include "common/rng.hpp"
#include "core/zone_layout.hpp"

namespace conzone {

std::uint32_t ConZoneConfig::EffectiveConventionalSuperblocks() const {
  if (num_conventional_zones == 0) return 0;
  if (conventional_superblocks != 0) return conventional_superblocks;
  const std::uint64_t needed = CeilDiv(
      static_cast<std::uint64_t>(num_conventional_zones) * zone_size_bytes,
      geometry.NormalSuperblockBytes());
  return static_cast<std::uint32_t>(needed) + 2;  // GC headroom
}

Status ConZoneConfig::Validate() const {
  if (Status st = geometry.Validate(); !st.ok()) return st;
  if (Status st = buffers.Validate(); !st.ok()) return st;
  if (Status st = gc.Validate(); !st.ok()) return st;
  if (Status st = l2p_log.Validate(); !st.ok()) return st;
  if (Status st = checkpoint.Validate(); !st.ok()) return st;
  if (checkpoint.enabled && !l2p_log.enabled) {
    return Status::InvalidArgument(
        "config: checkpointing requires the L2P log (interval counts "
        "flushed log entries)");
  }
  if (Status st = fault.Validate(); !st.ok()) return st;
  if (buffers.slot_bytes != geometry.slot_size) {
    return Status::InvalidArgument("config: buffer slot size != geometry slot size");
  }
  const std::uint32_t conv_sbs = EffectiveConventionalSuperblocks();
  if (num_conventional_zones > 0) {
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(conv_sbs) * geometry.NormalSuperblockBytes();
    const std::uint64_t logical =
        static_cast<std::uint64_t>(num_conventional_zones) * zone_size_bytes;
    if (capacity < logical + 2 * geometry.NormalSuperblockBytes()) {
      return Status::InvalidArgument(
          "config: conventional pool too small for its zones plus GC headroom");
    }
  }
  ZoneLayout layout(geometry, zone_size_bytes, superblocks_per_zone, conv_sbs);
  if (Status st = layout.Validate(); !st.ok()) return st;
  if (layout.patch_bytes() % geometry.slot_size != 0) {
    return Status::InvalidArgument("config: patch region must be slot-aligned");
  }
  if (zone_size_bytes % (static_cast<std::uint64_t>(lpns_per_chunk) * geometry.slot_size) !=
      0) {
    return Status::InvalidArgument("config: zone size must be a whole number of chunks");
  }
  if (max_open_zones == 0 || max_active_zones < max_open_zones) {
    return Status::InvalidArgument("config: need max_active >= max_open >= 1");
  }
  if (host_link_bandwidth_bps == 0) {
    return Status::InvalidArgument("config: host link bandwidth must be > 0");
  }
  return Status::Ok();
}

ConZoneConfig ConZoneConfig::PaperConfig() {
  // Defaults already encode §IV-A: TLC normal region, 2 channels x 2
  // chips, 252-page blocks => 15.75 MiB natural superblock capacity,
  // 16 MiB host-visible zones with a 256 KiB SLC patch, 96 KiB program
  // unit, two 384 KiB write buffers, 12 KiB L2P cache, 3200 MiB/s
  // channels, 1.5 GB flash.
  return ConZoneConfig{};
}

ConZoneConfig ConZoneConfig::ForShard(std::uint32_t shard_id,
                                      std::uint64_t master_seed) const {
  ConZoneConfig out = *this;
  if (shard_id == 0) return out;  // identity: 1-shard == single-device
  out.fault.seed = MixSeeds(out.fault.seed, master_seed, shard_id);
  return out;
}

}  // namespace conzone
