// ConZoneDevice — the consumer-grade zoned flash storage emulator
// (paper §III, Fig. 2).
//
// Wires every substrate together into the three paths:
//
//   Write (§III-B, Fig. 3): requests land in the zone's shared write
//   buffer (zone mod #buffers). A write to a zone whose buffer holds
//   another zone's data forces a *premature flush* of that data. Flushes
//   program whole one-shot units into the zone's reserved normal blocks
//   (①); sub-unit remainders are partial-programmed into the SLC
//   secondary buffer (②); once enough data accumulates, staged SLC data
//   is read back, invalidated and folded into a normal-block program
//   (③). The zone tail past the reserved capacity — the non-power-of-two
//   patch (§III-E) — is written as a contiguous SLC run when the zone
//   completes.
//
//   Read (§III-C, Fig. 4): the L2P cache is probed LZA → LCA → LPA; on a
//   miss the mapping entries are fetched from metadata flash pages
//   according to the configured search strategy, the data page is read,
//   and the cache is refilled. Data still in the volatile write buffer is
//   served from RAM.
//
//   Erase (§III-D): zone reset directly erases the zone's reserved
//   normal blocks and invalidates its SLC-resident slots; the SLC region
//   itself is reclaimed by the composite garbage collector.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "buffer/write_buffer.hpp"
#include "common/fastdiv.hpp"
#include "core/config.hpp"
#include "core/storage_device.hpp"
#include "core/zone_layout.hpp"
#include "fault/fault_model.hpp"
#include "flash/array.hpp"
#include "flash/normal_allocator.hpp"
#include "flash/slc_allocator.hpp"
#include "flash/superblock.hpp"
#include "flash/timing_engine.hpp"
#include "ftl/l2p_cache.hpp"
#include "ftl/l2p_log.hpp"
#include "ftl/mapping.hpp"
#include "ftl/translator.hpp"
#include "gc/slc_gc.hpp"
#include "sim/resource.hpp"
#include "zns/zone.hpp"

namespace conzone {

/// Device-level counters beyond the per-module statistics.
struct ConZoneStats {
  std::uint64_t host_bytes_written = 0;
  std::uint64_t host_bytes_read = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t zone_resets = 0;
  std::uint64_t host_flushes = 0;  ///< Explicit host Flush/FUA commands.
  std::uint64_t flushes = 0;
  std::uint64_t premature_flushes = 0;  ///< Flushes that staged data to SLC.
  std::uint64_t conflict_flushes = 0;   ///< Forced by zone-buffer conflicts.
  std::uint64_t folds = 0;              ///< SLC read-back + normal program events.
  std::uint64_t fold_slots_read = 0;    ///< 4 KiB slots read back from SLC.
  std::uint64_t buffer_ram_reads = 0;   ///< Read slots served from the write buffer.
  std::uint64_t patch_runs = 0;         ///< Zone-tail SLC patch programs (§III-E).
  std::uint64_t aggregates_chunk = 0;
  std::uint64_t aggregates_zone = 0;
  std::uint64_t aggregation_breaks = 0;  ///< Aggregates undone by GC moves.
  std::uint64_t conventional_writes = 0;   ///< In-place writes (§III-E ext.).
  std::uint64_t conventional_overwrites = 0;
  std::uint64_t conventional_gc_runs = 0;
  std::uint64_t conventional_gc_migrated = 0;
};

class ConZoneDevice final : public StorageDevice, private PhysicalResolver {
 public:
  static Result<std::unique_ptr<ConZoneDevice>> Create(const ConZoneConfig& config);

  DeviceInfo info() const override;

  Result<IoResult> Write(const IoRequest& req) override;
  Result<IoResult> Read(const IoRequest& req) override;
  Result<SimTime> ResetZone(ZoneId zone, SimTime now) override;
  Result<SimTime> Flush(SimTime now) override;
  StatsSnapshot Stats() const override;
  ReliabilityStats Reliability() const override { return array_.reliability(); }
  RecoveryStats Recovery() const override { return recovery_; }

  Result<SimTime> FinishZone(ZoneId zone, SimTime now);
  Status OpenZone(ZoneId zone) { return zones_.ExplicitOpen(zone); }
  Status CloseZone(ZoneId zone) { return zones_.Close(zone); }

  // --- Power loss (requires fault.power_loss / a cut schedule) ---

  /// Cut power at simulated time `cut_time`. All volatile state dies:
  /// write-buffer SRAM, the unflushed (or in-flight) L2P log tail, the
  /// L2P cache, and every media batch whose program had not completed on
  /// the die — per the journal's point-of-no-return rule (see
  /// FlashArray). `cut_time` must not precede the last host submission
  /// (the device cannot retroactively lose an op it has not issued yet).
  /// After PowerCut only Recover() is accepted.
  Status PowerCut(SimTime cut_time);

  /// Remount after a cut: re-erase torn blocks, scan used blocks' OOB to
  /// rebuild the L2P table (replaying the lost log), reconcile every
  /// zone's write pointer with durable content, drop unreachable orphan
  /// slots, rebuild free lists / allocators, and recompute read-only
  /// state. Returns the simulated remount completion time; the device
  /// accepts host ops again from then on.
  Result<SimTime> Recover(SimTime now);

  /// True between PowerCut() and a successful Recover().
  bool powered_off() const { return powered_off_; }
  const RecoveryStats& recovery_stats() const { return recovery_; }

  /// Latest host submission time — the earliest instant PowerCut()
  /// accepts (it refuses to retroactively lose an op already issued).
  /// Cut schedulers clamp forward with Later(cut, last_submit()).
  SimTime last_submit() const { return last_submit_; }

  /// Force a checkpoint image right now (tests and studies; the policy
  /// hooks in MaybeFlushL2pLog / Flush cover normal operation). Flushes
  /// the L2P log tail first so the interval accounting stays coherent.
  /// Requires checkpoint.enabled.
  Result<SimTime> CheckpointNow(SimTime now);
  const CheckpointStore& checkpoint_store() const { return ckpt_; }
  /// Test hook (round-trip/corruption suites mutate slots directly).
  CheckpointStore& mutable_checkpoint_store() { return ckpt_; }

  // --- Introspection (tests, benches, examples) ---
  const ConZoneConfig& config() const { return cfg_; }
  const ZoneLayout& layout() const { return layout_; }
  const ZoneManager& zones() const { return zones_; }
  const WriteBufferPool& buffers() const { return buffers_; }
  const MappingTable& mapping() const { return table_; }
  const L2PCache& l2p_cache() const { return cache_; }
  const Translator& translator() const { return translator_; }
  const SlcGarbageCollector& gc() const { return gc_; }
  const L2pLog& l2p_log() const { return l2p_log_; }
  std::uint32_t num_conventional_zones() const { return cfg_.num_conventional_zones; }
  const FlashArray& array() const { return array_; }
  const FlashTimingEngine& engine() const { return engine_; }
  const ConZoneStats& stats() const { return stats_; }
  const MediaCounters& media_counters() const { return array_.counters(); }
  const FaultModel& fault_model() const { return fault_; }
  /// True once the device has latched read-only mode (healthy SLC spare
  /// fell below the configured floor). Writes fail, reads keep working.
  bool read_only() const { return read_only_; }

  /// Current L2P miss rate as seen by the translator.
  double L2pMissRate() const { return translator_.stats().MissRate(); }
  void ResetStats();

 private:
  explicit ConZoneDevice(const ConZoneConfig& config);

  /// The pre-IoRequest write/read bodies; the virtual overrides unpack
  /// the request and delegate here.
  Result<SimTime> WriteImpl(std::uint64_t offset, std::uint64_t len, SimTime now,
                            std::span<const std::uint64_t> tokens);
  Result<SimTime> ReadImpl(std::uint64_t offset, std::uint64_t len, SimTime now,
                           std::vector<std::uint64_t>* tokens_out);

  /// Per-zone write-path runtime (§III-B bookkeeping).
  struct ZoneRuntime {
    /// Zone-relative bytes durably placed in the reserved normal blocks
    /// (always a prefix, always unit-aligned below the patch boundary).
    std::uint64_t durable_normal_end = 0;
    /// Zone-relative bytes durable anywhere (normal + SLC staging). The
    /// half-open range [durable_normal_end, staged_end) lives in SLC.
    std::uint64_t staged_end = 0;
    /// Chunks stamped as aggregated so far (from chunk 0 upward).
    std::uint32_t chunks_aggregated = 0;
    /// First slot of the zone's SLC patch run, once programmed.
    Ppn patch_start;
    bool patch_contiguous = false;
    bool zone_aggregated = false;
    /// A reserved normal block failed a program (or was already retired):
    /// part of the zone's "normal" range actually lives in SLC under page
    /// mapping, so no FURTHER aggregation may be stamped. Chunks stamped
    /// before the failure remain layout-resident and stay valid.
    bool degraded = false;
  };

  // PhysicalResolver: aggregated-entry address computation over the
  // reserved layout (normal region) and the patch run (SLC).
  std::optional<Ppn> ResolveAggregated(MapGranularity gran, std::uint64_t unit_index,
                                       Lpn lpn) const override;

  SimDuration HostTransferTime(std::uint64_t bytes) const;
  Lpn ZoneBaseLpn(ZoneId zone) const;
  std::uint64_t LpnsPerZone() const { return lpns_per_zone_; }

  /// Two completion horizons of a flush: the write-buffer SRAM is free to
  /// accept new data once the flash transfers drain (`sram_free`); the
  /// data is durable once every program pulse finishes (`media_done`).
  struct FlushResult {
    SimTime sram_free;
    SimTime media_done;
  };

  /// Flush one buffer extent through the §III-B decision tree.
  Result<FlushResult> FlushExtent(BufferedExtent extent, SimTime now);

  /// Program the zone tail [normal_bytes, zone_bytes) as one contiguous
  /// SLC run, folding in any staged pieces. `extent` supplies the slots
  /// not yet staged.
  Result<FlushResult> ProgramPatchRun(ZoneId zone, ZoneRuntime& zr,
                                      const BufferedExtent& extent, SimTime now);

  /// Stage extent slots in [from_byte, end) to SLC (partial programming).
  Result<FlushResult> StageSlots(ZoneId zone, ZoneRuntime& zr,
                                 const BufferedExtent& extent, std::uint64_t from_byte,
                                 SimTime now);

  /// Recovery: a reserved normal block refused (or failed) a one-shot
  /// unit — program the unit's slots into SLC under page mapping and mark
  /// the zone degraded (no further aggregation). `mark` is the caller's
  /// journal mark from before the fold's read-back, so the stamp also
  /// covers the source invalidates the re-drive supersedes.
  Result<FlushResult> RedriveUnitToSlc(ZoneRuntime& zr, std::uint64_t mark,
                                       std::span<const SlotWrite> data, SimTime now);

  /// Lazily latch read-only mode when the healthy SLC spare drops below
  /// the configured floor. Called at the top of every write.
  bool InReadOnly();

  /// Charge the die time of one-shot pulses the conventional allocator
  /// burned on failed programs (last_failed_chips) and book the recovery
  /// work. Returns when the burned transfers drain.
  SimTime ChargeNormalBurns(SimTime issue);

  /// Read staged SLC slots for zone-relative range [begin, end); groups
  /// by flash page, invalidates them, appends their data to `out`.
  Result<SimTime> ReadBackStaged(ZoneId zone, std::uint64_t begin, std::uint64_t end,
                                 std::vector<SlotWrite>& out, SimTime now);

  /// Stamp newly completed chunks / the zone aggregate (§III-C Fig. 5 ②).
  /// With `table_prestamped`, the per-entry map bits were already written
  /// by the mount's bulk install — only the runtime counters, resolver
  /// pins and stats are (re)generated, skipping the table pass.
  void UpdateAggregation(ZoneId zone, ZoneRuntime& zr,
                         bool table_prestamped = false);

  /// GC remap hook: fix mapping, cache, and any aggregation the move broke.
  void OnGcRemap(Lpn lpn, Ppn old_ppn, Ppn new_ppn);

  /// §III-E extension: flush the L2P log to metadata flash when it is
  /// full; the caller's operation blocks until the program completes.
  /// With `force`, also drains a below-threshold tail (host Flush/FUA).
  SimTime MaybeFlushL2pLog(SimTime now, bool force = false);

  /// Serialize mapping + zone WPs + free lists into a checkpoint image,
  /// charge its media cost (slot erase + chunked programs), and commit it
  /// to the ping-pong store. Returns the image's media completion time.
  SimTime WriteCheckpoint(SimTime now);

  /// Host-op prologue: refuse ops while powered off, advance the
  /// last-submission watermark, and prune journal/log state that a
  /// future cut can no longer reach.
  Status BeginHostOp(SimTime now);

  // --- Power-loss recovery pipeline (Recover() stages) ---
  /// Re-erase blocks whose erase was torn by the cut.
  Result<SimTime> RecoverReeraseTorn(std::span<const BlockId> blocks, SimTime now);
  /// OOB scan of all used blocks: rebuild the page-granularity mapping.
  /// Returns the scan completion time.
  Result<SimTime> RecoverScanMedia(SimTime now);
  /// Pure zone reconciliation over the current mapping: the write-
  /// pointer / staging / patch facts RecoverZone derives, with no side
  /// effects. Shared by RecoverZone (which additionally invalidates
  /// orphans and restores runtime) and WriteCheckpoint (which snapshots
  /// the result into ZoneSnap records).
  struct ZoneReconcile {
    std::uint64_t durable_normal_end = 0;
    std::uint64_t staged_end = 0;
    Ppn patch_start;
    bool degraded = false;
    bool patch_contiguous = false;
    /// Mapped lpns exist past staged_end (islands the mount path must
    /// invalidate); such a zone is never checkpoint-restorable.
    bool has_orphans = false;
  };
  ZoneReconcile ReconcileZoneMapping(ZoneId zone) const;
  /// Reconcile one zone: write pointer, staging extents, aggregation,
  /// orphan slots. `zone` is a sequential zone id.
  Status RecoverZone(ZoneId zone);

  // --- Conventional zones (§III-E extension) ---
  bool IsConventional(ZoneId zone) const {
    return zone.value() < cfg_.num_conventional_zones;
  }
  /// Layout index of a sequential zone (conventional zones precede them
  /// in the device's zone numbering).
  ZoneId SeqZone(ZoneId zone) const {
    return ZoneId{zone.value() - cfg_.num_conventional_zones};
  }
  /// Dispatch a flush by the owning zone's type.
  Result<FlushResult> FlushAny(BufferedExtent extent, SimTime now);
  Result<SimTime> WriteConventional(ZoneId zone, std::uint64_t offset,
                                    std::uint64_t len, SimTime now,
                                    std::span<const std::uint64_t> tokens);
  Result<FlushResult> FlushConventionalExtent(BufferedExtent extent, SimTime now);
  /// In-place mapping update: invalidates the previous copy.
  Status SetMappingInPlace(Lpn lpn, Ppn ppn);
  /// Device-side GC over the conventional pool (greedy, like Legacy's).
  Result<SimTime> CollectConventional(SimTime now);
  Result<SimTime> ResetConventionalZone(ZoneId zone, SimTime now);
  /// SLC-GC eviction target: relocate conventional slots to the pool
  /// (conventional data has no fold-back to drain it from SLC).
  Result<SimTime> EvictConventionalFromSlc(std::vector<SlotWrite> slots,
                                           SimTime reads_done);
  /// Token of `lpn` if it sits in any write buffer (conventional reads).
  const std::uint64_t* BufferedToken(Lpn lpn) const;

  ConZoneConfig cfg_;
  ZoneLayout layout_;
  FaultModel fault_;  ///< Before array_: attached to it during construction.
  FlashArray array_;
  FlashTimingEngine engine_;
  SuperblockPool pool_;
  SlcAllocator slc_alloc_;
  WriteBufferPool buffers_;
  ZoneManager zones_;
  MappingTable table_;
  L2PCache cache_;
  Translator translator_;
  SlcGarbageCollector gc_;
  ResourceTimeline host_link_;
  L2pLog l2p_log_;
  std::uint32_t l2p_log_chip_ = 0;  ///< Round-robin metadata program target.
  NormalAllocator conv_alloc_;      ///< Conventional-pool write pointer.
  CheckpointStore ckpt_;            ///< Ping-pong checkpoint slots (§12).
  std::uint32_t ckpt_chip_ = 0;     ///< Round-robin checkpoint program target.
  /// L2P-log entries flushed since the last checkpoint image — the
  /// interval policy counter. Survives cuts on purpose: the un-imaged
  /// tail is still un-imaged after a remount.
  std::uint64_t flushed_entries_since_ckpt_ = 0;

  std::vector<ZoneRuntime> runtime_;
  std::vector<SimTime> buffer_ready_;  ///< Per-buffer flush completion.
  ConZoneStats stats_;
  /// Successful reads/writes bucketed by IoRequest::io_class.
  std::array<std::uint64_t, kNumIoClasses> class_reads_{};
  std::array<std::uint64_t, kNumIoClasses> class_writes_{};
  bool read_only_ = false;  ///< Latched by InReadOnly(); reads still serve.

  // --- Power-loss state ---
  bool powered_off_ = false;
  /// Latest host submission time seen; a PowerCut may not precede it,
  /// which is also what lets the journal prune entries older than it.
  SimTime last_submit_;
  /// Max media completion time of any program issued so far. Flush must
  /// wait for it: a buffer can be empty while its last background
  /// flush's pulse is still in flight, and durability means the pulse
  /// ended (that gap is exactly what a cut between the two exposes).
  SimTime media_horizon_;
  /// Blocks whose erase the last cut tore; Recover() re-erases them.
  std::vector<BlockId> reerase_pending_;
  /// Blocks the cut's undo pass revived older state in; a checkpoint-
  /// bounded scan must read them even below the watermark.
  std::vector<BlockId> rescan_pending_;
  /// When the last cut landed — the checkpoint-age reference point.
  SimTime last_cut_time_;
  /// Per-block force-rescan flags, rebuilt from rescan_pending_ at each
  /// mount (scratch, reused across remounts).
  std::vector<std::uint8_t> rescan_flags_;
  /// Per-zone mount dirt: set when anything diverged from the checkpoint
  /// image for that zone (stale entry dropped, per-entry accept path,
  /// tail-scan sense). A clean zone with a restorable snapshot restores
  /// its runtime directly instead of re-reconciling.
  std::vector<std::uint8_t> zone_dirty_;
  /// Zone snapshots from the image the current mount loaded (empty when
  /// mounting without a checkpoint).
  std::vector<ZoneSnap> mount_zone_snaps_;
  bool mount_have_snaps_ = false;
  RecoveryStats recovery_;

  /// One flash page touched by a read request and the slots it serves.
  struct PageGroup {
    FlashPageId page;
    std::uint32_t slots = 0;
    SimTime dep;  // latest metadata fetch feeding this page
    std::uint32_t retries = 0;  // max read-retry level across the slots
  };
  // Per-request scratch buffers: Read/Write never recurse into
  // themselves, so reusing these keeps the per-IO paths allocation-free
  // after warm-up (capacity is retained across requests).
  std::vector<PageGroup> read_groups_;   ///< Read()
  std::vector<SlotWrite> chunk_scratch_; ///< Write()/WriteConventional()

  // Reciprocals of the configuration constants the per-IO paths divide
  // by (the hardware divider is a measurable fraction of an emulated IO).
  FastDiv div_slot_;            ///< geometry.slot_size
  FastDiv div_zone_;            ///< zone_size_bytes
  FastDiv div_slots_per_page_;  ///< geometry.SlotsPerPage()
  FastDiv div_lpns_per_zone_;   ///< zone_size / slot_size
  FastDiv div_host_bw_;         ///< host_link_bandwidth_bps
  std::uint64_t lpns_per_zone_ = 0;
};

}  // namespace conzone
