#include "core/zone_layout.hpp"

#include <cassert>
#include <string>

namespace conzone {

ZoneLayout::ZoneLayout(const FlashGeometry& geometry, std::uint64_t zone_size_bytes,
                       std::uint32_t superblocks_per_zone,
                       std::uint32_t reserve_offset_superblocks)
    : geo_(geometry),
      zone_bytes_(zone_size_bytes),
      sbs_per_zone_(superblocks_per_zone),
      reserve_offset_(reserve_offset_superblocks),
      normal_bytes_(geo_.NormalSuperblockBytes() * superblocks_per_zone),
      num_zones_(superblocks_per_zone && geo_.NumNormalSuperblocks() > reserve_offset_superblocks
                     ? (geo_.NumNormalSuperblocks() - reserve_offset_superblocks) /
                           superblocks_per_zone
                     : 0),
      div_chips_(geo_.NumChips()),
      div_units_per_block_(geo_.PagesPerProgramUnit() ? geo_.UnitsPerBlock() : 0),
      div_program_unit_(geo_.program_unit),
      div_page_size_(geo_.page_size),
      div_slot_size_(geo_.slot_size),
      pages_per_unit_(geo_.page_size ? geo_.PagesPerProgramUnit() : 0) {}

Status ZoneLayout::Validate() const {
  if (sbs_per_zone_ == 0) {
    return Status::InvalidArgument("layout: need at least one superblock per zone");
  }
  if (num_zones_ == 0) {
    return Status::InvalidArgument("layout: no zones fit in the normal region");
  }
  if (zone_bytes_ < normal_bytes_) {
    return Status::InvalidArgument(
        "layout: zone size " + std::to_string(zone_bytes_) +
        " below reserved capacity " + std::to_string(normal_bytes_) +
        " (shrink superblocks_per_zone)");
  }
  if (zone_bytes_ % geo_.slot_size != 0) {
    return Status::InvalidArgument("layout: zone size must be slot-aligned");
  }
  if (patch_bytes() >= normal_bytes_) {
    return Status::InvalidArgument("layout: patch region larger than normal region");
  }
  return Status::Ok();
}

SuperblockId ZoneLayout::SuperblockOfZone(ZoneId zone, std::uint32_t k) const {
  assert(zone.value() < num_zones_ && k < sbs_per_zone_);
  return SuperblockId(geo_.NumSlcSuperblocks() + reserve_offset_ +
                      zone.value() * sbs_per_zone_ + k);
}

ZoneLayout::UnitLoc ZoneLayout::UnitAt(ZoneId zone, std::uint64_t unit_index) const {
  const std::uint64_t row = div_chips_.Div(unit_index);
  const std::uint32_t chip =
      static_cast<std::uint32_t>(unit_index - row * div_chips_.value());
  const std::uint32_t sb_k = static_cast<std::uint32_t>(div_units_per_block_.Div(row));
  const std::uint32_t block_row = static_cast<std::uint32_t>(
      row - sb_k * div_units_per_block_.value());
  UnitLoc loc;
  loc.chip = ChipId{chip};
  loc.block = geo_.BlockOfSuperblock(SuperblockOfZone(zone, sb_k), loc.chip);
  loc.first_page_in_block = block_row * pages_per_unit_;
  return loc;
}

Ppn ZoneLayout::NormalSlot(ZoneId zone, std::uint64_t offset) const {
  assert(offset < normal_bytes_);
  const std::uint64_t unit = div_program_unit_.Div(offset);
  const std::uint64_t in_unit = offset - unit * div_program_unit_.value();
  const UnitLoc loc = UnitAt(zone, unit);
  const std::uint32_t page =
      loc.first_page_in_block + static_cast<std::uint32_t>(div_page_size_.Div(in_unit));
  const std::uint32_t slot = static_cast<std::uint32_t>(
      div_slot_size_.Div(div_page_size_.Mod(in_unit)));
  return geo_.SlotAt(geo_.PageAt(loc.block, page), slot);
}

ZoneLayout::StripePos ZoneLayout::StripeOfSlot(Ppn ppn) const {
  // Page-fill stripe order (must match SlcAllocator):
  //   flat = page_row * (slots_per_page * chips) + chip * slots_per_page + slot.
  const BlockId block = geo_.BlockOfSlot(ppn);
  assert(geo_.IsSlcBlock(block));
  const std::uint32_t spp = geo_.SlotsPerPage();
  const std::uint32_t in_block = geo_.SlotIndexInBlock(ppn);
  const std::uint32_t page_row = in_block / spp;
  const std::uint32_t slot = in_block % spp;
  const std::uint32_t chip = static_cast<std::uint32_t>(geo_.ChipOfBlock(block).value());
  StripePos pos;
  pos.sb = geo_.SuperblockOfBlock(block);
  pos.flat = static_cast<std::uint64_t>(page_row) * spp * geo_.NumChips() +
             static_cast<std::uint64_t>(chip) * spp + slot;
  return pos;
}

Ppn ZoneLayout::SlotOfStripe(const StripePos& pos) const {
  const std::uint32_t spp = geo_.SlotsPerPage();
  const std::uint32_t page_row =
      static_cast<std::uint32_t>(pos.flat / (spp * geo_.NumChips()));
  const std::uint32_t chip = static_cast<std::uint32_t>((pos.flat / spp) % geo_.NumChips());
  const std::uint32_t slot = static_cast<std::uint32_t>(pos.flat % spp);
  const BlockId block = geo_.BlockOfSuperblock(pos.sb, ChipId{chip});
  return geo_.SlotAt(geo_.PageAt(block, page_row), slot);
}

std::optional<Ppn> ZoneLayout::StripeAdvance(Ppn ppn, std::uint64_t steps) const {
  StripePos pos = StripeOfSlot(ppn);
  pos.flat += steps;
  const std::uint64_t total =
      static_cast<std::uint64_t>(geo_.SlcUsableSlotsPerBlock()) * geo_.NumChips();
  if (pos.flat >= total) return std::nullopt;
  return SlotOfStripe(pos);
}

}  // namespace conzone
