#include "core/crash_checker.hpp"

#include <algorithm>
#include <string>

namespace conzone {

// ---------------------------------------------------------------------------
// CrashConsistencyChecker
// ---------------------------------------------------------------------------

CrashConsistencyChecker::CrashConsistencyChecker(const ConZoneConfig& config,
                                                 std::uint32_t total_zones)
    : cfg_(config), total_zones_(total_zones) {
  lpns_per_zone_ = cfg_.zone_size_bytes / cfg_.geometry.slot_size;
  zones_.resize(total_zones_ - cfg_.num_conventional_zones);
  for (ZoneShadow& zs : zones_) zs.epochs.push_back(Epoch{0, {}});
  conv_current_.resize(cfg_.num_conventional_zones * lpns_per_zone_, 0);
  conv_history_.resize(conv_current_.size());
}

void CrashConsistencyChecker::Advance(SimTime submit) {
  if (pending_ && pending_->done <= submit) {
    confirmed_ = std::move(pending_);
    pending_.reset();
    // Overwrites older than the confirmed flush can no longer resurrect:
    // their media copies were invalidated before the flush completed.
    for (auto& h : conv_history_) {
      std::erase_if(h, [&](const ConvWrite& w) { return w.submit < confirmed_->submit; });
    }
  }
  for (ZoneShadow& zs : zones_) {
    bool raised = false;
    for (auto it = zs.pending_resets.begin(); it != zs.pending_resets.end();) {
      if (it->second <= submit) {
        zs.floor_epoch = std::max(zs.floor_epoch, it->first);
        it = zs.pending_resets.erase(it);
        raised = true;
      } else {
        ++it;
      }
    }
    if (raised) {
      while (!zs.epochs.empty() && zs.epochs.front().number < zs.floor_epoch) {
        zs.epochs.pop_front();
      }
    }
  }
}

CrashConsistencyChecker::Snapshot CrashConsistencyChecker::Capture(
    SimTime submit, SimTime done) const {
  Snapshot s;
  s.submit = submit;
  s.done = done;
  s.zones.reserve(zones_.size());
  for (const ZoneShadow& zs : zones_) {
    const Epoch& cur = zs.epochs.back();
    s.zones.emplace_back(zs.current_epoch,
                         cur.number == zs.current_epoch ? cur.tokens.size() : 0);
  }
  s.conv = conv_current_;
  return s;
}

void CrashConsistencyChecker::OnWrite(std::uint64_t offset,
                                      std::span<const std::uint64_t> tokens,
                                      SimTime submit, SimTime done) {
  Advance(submit);
  const std::uint64_t slot = cfg_.geometry.slot_size;
  const ZoneId zone{offset / cfg_.zone_size_bytes};
  if (IsConv(zone)) {
    const std::uint64_t first = offset / slot;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      conv_current_[first + i] = tokens[i];
      conv_history_[first + i].push_back(ConvWrite{tokens[i], submit});
    }
    return;
  }
  ZoneShadow& zs = Seq(zone);
  Epoch& cur = zs.epochs.back();
  const std::uint64_t rel =
      (offset - zone.value() * cfg_.zone_size_bytes) / slot;
  if (cur.tokens.size() < rel + tokens.size()) cur.tokens.resize(rel + tokens.size());
  std::copy(tokens.begin(), tokens.end(),
            cur.tokens.begin() + static_cast<std::ptrdiff_t>(rel));
  (void)done;
}

void CrashConsistencyChecker::OnFlush(SimTime submit, SimTime done) {
  Advance(submit);
  pending_ = Capture(submit, done);
}

void CrashConsistencyChecker::OnReset(ZoneId zone, SimTime submit, SimTime done) {
  Advance(submit);
  if (IsConv(zone)) return;  // Conventional resets don't exist in the stream.
  ZoneShadow& zs = Seq(zone);
  ++zs.current_epoch;
  zs.epochs.push_back(Epoch{zs.current_epoch, {}});
  zs.pending_resets.emplace_back(zs.current_epoch, done);
}

void CrashConsistencyChecker::OnNoop(SimTime submit, SimTime done) {
  Advance(submit);
  (void)done;
}

void CrashConsistencyChecker::OnPowerCut(SimTime cut_time) {
  cut_time_ = cut_time;
  // Which flush is the durable baseline under THIS cut: the pending one
  // if its completion beat the cut, else the last confirmed one.
  if (pending_ && pending_->done <= cut_time) {
    durable_ = pending_;
  } else {
    durable_ = confirmed_;
  }
  // Resets whose erases finished before the cut are durably complete:
  // the old generation may not come back.
  for (ZoneShadow& zs : zones_) {
    for (const auto& [epoch, done] : zs.pending_resets) {
      if (done <= cut_time) zs.floor_epoch = std::max(zs.floor_epoch, epoch);
    }
    while (!zs.epochs.empty() && zs.epochs.front().number < zs.floor_epoch) {
      zs.epochs.pop_front();
    }
    zs.pending_resets.clear();
  }
  cut_resolved_ = true;
}

Status CrashConsistencyChecker::VerifySequentialZone(ConZoneDevice& dev, ZoneId zone,
                                                     SimTime now) {
  const std::uint64_t slot = cfg_.geometry.slot_size;
  const std::uint64_t base = zone.value() * cfg_.zone_size_bytes;
  const ZoneInfo& info = dev.zones().Info(zone);
  const std::uint64_t wp_slots = info.write_pointer / slot;
  ZoneShadow& zs = Seq(zone);
  auto fail = [&](const std::string& why) {
    return Status::Internal("zone " + std::to_string(zone.value()) + ": " + why);
  };

  // 1. Everything below the recovered write pointer must read back.
  std::vector<std::uint64_t> read_tokens;
  if (wp_slots > 0) {
    auto rd = dev.Read(IoRequest{base, wp_slots * slot, now, {},
                                 /*want_tokens=*/true, IoClass::kMaintenance});
    if (rd.ok()) read_tokens = std::move(rd.value().tokens);
    if (!rd.ok()) {
      return fail("write pointer exceeds readable content: " +
                  std::string(rd.status().message()));
    }
    if (read_tokens.size() != wp_slots) return fail("short read below write pointer");
  }

  // 2. The content must be a token-prefix of a retained generation in
  //    [floor_epoch, current_epoch].
  const Epoch* matched = nullptr;
  for (const Epoch& e : zs.epochs) {
    if (wp_slots > e.tokens.size()) continue;
    if (std::equal(read_tokens.begin(), read_tokens.end(), e.tokens.begin())) {
      matched = &e;  // Tokens are unique: at most one non-empty match.
      if (wp_slots > 0) break;
    }
  }
  if (matched == nullptr) {
    return fail("recovered content (wp=" + std::to_string(wp_slots) +
                " slots) is not a prefix of any legal generation");
  }

  // 3. Acknowledged-durable floor: with no reset issued after the durable
  //    flush, the zone must retain at least what that flush covered.
  if (durable_) {
    const std::size_t zi =
        static_cast<std::size_t>(zone.value() - cfg_.num_conventional_zones);
    const auto [d_epoch, d_len] = durable_->zones[zi];
    if (d_epoch == zs.current_epoch && d_len > 0) {
      if (wp_slots < d_len) {
        return fail("durable data lost: flushed " + std::to_string(d_len) +
                    " slots, recovered " + std::to_string(wp_slots));
      }
      if (matched->number != d_epoch) return fail("recovered a pre-reset generation");
    }
  }

  // 4. Reads past the recovered write pointer must fail.
  if (info.write_pointer < dev.zones().config().zone_capacity_bytes) {
    auto rd = dev.Read(IoRequest{base + info.write_pointer, slot, now, {},
                                 /*want_tokens=*/false, IoClass::kMaintenance});
    if (rd.ok()) return fail("read beyond the recovered write pointer succeeded");
  }

  Mix(info.write_pointer);
  for (std::uint64_t t : read_tokens) Mix(t);

  // Re-baseline: the recovered content is on media and the mapping that
  // reaches it was just rebuilt FROM media, so it is durable by
  // construction. Collapse history to a single known generation.
  Epoch next{zs.current_epoch, std::move(read_tokens)};
  zs.epochs.clear();
  zs.epochs.push_back(std::move(next));
  zs.floor_epoch = zs.current_epoch;
  zs.pending_resets.clear();
  return Status::Ok();
}

Status CrashConsistencyChecker::VerifyConventionalZone(ConZoneDevice& dev, ZoneId zone,
                                                       SimTime now) {
  const std::uint64_t slot = cfg_.geometry.slot_size;
  for (std::uint64_t k = 0; k < lpns_per_zone_; ++k) {
    const std::uint64_t lpn = zone.value() * lpns_per_zone_ + k;
    const std::uint64_t d = durable_ ? durable_->conv[lpn] : 0;
    std::vector<std::uint64_t> tok;
    auto rd = dev.Read(IoRequest{lpn * slot, slot, now, {}, /*want_tokens=*/true,
                                 IoClass::kMaintenance});
    if (rd.ok()) tok = std::move(rd.value().tokens);
    if (!rd.ok()) {
      if (d != 0) {
        return Status::Internal("conventional lpn " + std::to_string(lpn) +
                                ": durable value unreadable after recovery");
      }
      conv_current_[lpn] = 0;
      conv_history_[lpn].clear();
      Mix(0);
      continue;
    }
    const std::uint64_t got = tok.empty() ? 0 : tok[0];
    bool allowed = d != 0 && got == d;
    if (!allowed) {
      for (const ConvWrite& w : conv_history_[lpn]) {
        if (durable_ && w.submit < durable_->submit) continue;
        if (w.token == got) {
          allowed = true;
          break;
        }
      }
    }
    if (!allowed) {
      return Status::Internal("conventional lpn " + std::to_string(lpn) +
                              ": recovered token " + std::to_string(got) +
                              " was never a durable or later-written value");
    }
    conv_current_[lpn] = got;
    conv_history_[lpn].clear();
    Mix(got);
  }
  return Status::Ok();
}

Status CrashConsistencyChecker::VerifyAfterRecovery(ConZoneDevice& dev, SimTime now) {
  if (!cut_resolved_) {
    return Status::FailedPrecondition("VerifyAfterRecovery without OnPowerCut");
  }
  for (std::uint32_t z = 0; z < total_zones_; ++z) {
    const ZoneId zone{z};
    Status st = IsConv(zone) ? VerifyConventionalZone(dev, zone, now)
                             : VerifySequentialZone(dev, zone, now);
    if (!st.ok()) return st;
  }

  // Counter reconciliation over the public API: every mapped LPN points
  // at exactly one valid slot and vice versa.
  std::uint64_t valid = 0;
  for (std::uint64_t b = 0; b < cfg_.geometry.TotalBlocks(); ++b) {
    valid += dev.array().ValidSlots(BlockId{b});
  }
  if (valid != dev.mapping().mapped_count()) {
    return Status::Internal("counter reconcile: " + std::to_string(valid) +
                            " valid slots vs " +
                            std::to_string(dev.mapping().mapped_count()) +
                            " mapped lpns");
  }
  Mix(dev.recovery_stats().remount_time.ns());

  // The recovered state is the new durable baseline (see re-baseline
  // notes above); the checker is ready to shadow ops toward another cut.
  confirmed_ = Capture(now, now);
  pending_.reset();
  durable_.reset();
  cut_resolved_ = false;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// CrashHarness
// ---------------------------------------------------------------------------

namespace {
ConZoneConfig WithPowerLoss(ConZoneConfig c) {
  c.fault.power_loss = true;  // The harness is pointless without the journal.
  return c;
}
}  // namespace

CrashHarness::CrashHarness(const ConZoneConfig& config, const Options& options)
    : cfg_(WithPowerLoss(config)),
      opt_(options),
      rng_(MixSeeds(options.seed, 0xC4A5Full, 0x0FFull)) {}

Status CrashHarness::Init() {
  auto dev = ConZoneDevice::Create(cfg_);
  if (!dev.ok()) return dev.status();
  dev_ = std::move(dev.value());
  checker_.emplace(cfg_, dev_->info().num_zones);
  now_ = SimTime::Zero();
  last_submit_ = SimTime::Zero();
  return Status::Ok();
}

Status CrashHarness::RunOne() {
  const std::uint64_t slot = cfg_.geometry.slot_size;
  const std::uint64_t capacity = dev_->zones().config().zone_capacity_bytes;
  const std::uint32_t num_seq = dev_->info().num_zones - cfg_.num_conventional_zones;
  const std::uint32_t active = std::min(opt_.active_zones, num_seq);
  const SimTime submit = now_;
  last_submit_ = submit;

  double r = rng_.NextDouble();
  // Conventional in-place write (only when the config carves that region).
  if (cfg_.num_conventional_zones > 0 && r < opt_.conv_prob) {
    const std::uint64_t zone_slots = cfg_.zone_size_bytes / slot;
    const ZoneId zone{static_cast<std::uint32_t>(
        rng_.NextBelow(cfg_.num_conventional_zones))};
    const std::uint64_t off_slots = rng_.NextBelow(zone_slots);
    const std::uint64_t len_slots = 1 + rng_.NextBelow(std::min<std::uint64_t>(
                                            opt_.max_write_slots, zone_slots - off_slots));
    std::vector<std::uint64_t> tokens(len_slots);
    for (auto& t : tokens) t = next_token_++;
    const std::uint64_t off =
        zone.value() * cfg_.zone_size_bytes + off_slots * slot;
    auto done = dev_->Write(IoRequest{off, len_slots * slot, submit, tokens});
    if (!done.ok()) return done.status();
    checker_->OnWrite(off, tokens, submit, done.value().done);
    now_ = done.value().done;
    return Status::Ok();
  }
  r = cfg_.num_conventional_zones > 0 ? r - opt_.conv_prob : r;

  if (r < opt_.flush_prob) {
    auto done = dev_->Flush(submit);
    if (!done.ok()) return done.status();
    checker_->OnFlush(submit, done.value());
    now_ = done.value();
    return Status::Ok();
  }
  r -= opt_.flush_prob;

  if (r < opt_.reset_prob) {
    const ZoneId zone{cfg_.num_conventional_zones +
                      static_cast<std::uint32_t>(rng_.NextBelow(active))};
    auto done = dev_->ResetZone(zone, submit);
    if (!done.ok()) return done.status();
    checker_->OnReset(zone, submit, done.value());
    now_ = done.value();
    return Status::Ok();
  }
  r -= opt_.reset_prob;

  if (r < opt_.finish_prob) {
    // Finish wants a started, not-yet-full zone; fall through to a write
    // when none qualifies.
    for (std::uint32_t k = 0; k < active; ++k) {
      const ZoneId zone{cfg_.num_conventional_zones +
                        static_cast<std::uint32_t>(rng_.NextBelow(active))};
      const ZoneInfo& info = dev_->zones().Info(zone);
      if (info.write_pointer == 0 || info.state == ZoneState::kFull) continue;
      auto done = dev_->FinishZone(zone, submit);
      if (!done.ok()) return done.status();
      checker_->OnNoop(submit, done.value());
      now_ = done.value();
      return Status::Ok();
    }
  }

  // Zone-sequential write at the write pointer; a full target is reset
  // first (the stream must keep making progress).
  ZoneId zone{cfg_.num_conventional_zones +
              static_cast<std::uint32_t>(rng_.NextBelow(active))};
  const ZoneInfo* info = &dev_->zones().Info(zone);
  if (info->state == ZoneState::kFull || info->write_pointer >= capacity) {
    auto done = dev_->ResetZone(zone, submit);
    if (!done.ok()) return done.status();
    checker_->OnReset(zone, submit, done.value());
    now_ = done.value();
    return Status::Ok();
  }
  const std::uint64_t room = (capacity - info->write_pointer) / slot;
  const std::uint64_t len_slots =
      1 + rng_.NextBelow(std::min<std::uint64_t>(opt_.max_write_slots, room));
  std::vector<std::uint64_t> tokens(len_slots);
  for (auto& t : tokens) t = next_token_++;
  const std::uint64_t off = zone.value() * cfg_.zone_size_bytes + info->write_pointer;
  auto done = dev_->Write(IoRequest{off, len_slots * slot, submit, tokens});
  if (!done.ok()) return done.status();
  checker_->OnWrite(off, tokens, submit, done.value().done);
  now_ = done.value().done;
  return Status::Ok();
}

Status CrashHarness::RunOps(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (Status st = RunOne(); !st.ok()) return st;
  }
  return Status::Ok();
}

Status CrashHarness::Cut(double frac) {
  const std::uint64_t span = (now_ - last_submit_).ns();
  const std::uint64_t extra = static_cast<std::uint64_t>(
      frac * static_cast<double>(span == 0 ? 1 : span));
  return CutAt(last_submit_ + SimDuration::Nanos(extra));
}

Status CrashHarness::CutAt(SimTime t) {
  if (Status st = dev_->PowerCut(t); !st.ok()) return st;
  checker_->OnPowerCut(t);
  now_ = Later(now_, t);
  return Status::Ok();
}

Status CrashHarness::RecoverAndVerify() {
  auto done = dev_->Recover(now_);
  if (!done.ok()) return done.status();
  now_ = done.value();
  return checker_->VerifyAfterRecovery(*dev_, now_);
}

}  // namespace conzone
