#include "host/striped_volume.hpp"

#include <algorithm>
#include <utility>

#include "exec/executor.hpp"

namespace conzone {

namespace {
/// Fan a batch of member sub-ops out: on `exec` when it can actually
/// parallelize, inline otherwise. Each task owns disjoint state; the
/// caller merges the per-task slots in submission order afterwards.
template <class F>
void FanOut(Executor* exec, std::size_t n, F&& task) {
  if (exec != nullptr && exec->threads() > 1 && n > 1) {
    exec->Run(n, task);
  } else {
    for (std::size_t i = 0; i < n; ++i) task(i);
  }
}
}  // namespace

Result<std::unique_ptr<StripedVolume>> StripedVolume::Create(
    std::vector<std::unique_ptr<StorageDevice>> members,
    const StripedVolumeOptions& options) {
  if (members.empty()) {
    return Status::InvalidArgument("striped volume needs at least one member");
  }
  for (const auto& m : members) {
    if (m == nullptr) return Status::InvalidArgument("null member device");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(members.size());
  const std::uint32_t width = options.stripe_width == 0 ? n : options.stripe_width;
  if (width == 0 || n % width != 0) {
    return Status::InvalidArgument("stripe width must divide the member count");
  }

  const DeviceInfo first = members[0]->info();
  for (const auto& m : members) {
    const DeviceInfo di = m->info();
    if (di.io_alignment != first.io_alignment) {
      return Status::InvalidArgument("members disagree on I/O alignment");
    }
    if (di.zoned() != first.zoned()) {
      return Status::InvalidArgument(
          "cannot mix zoned and conventional members in one volume");
    }
    if (di.zoned()) {
      if (di.zone_size_bytes != first.zone_size_bytes) {
        return Status::InvalidArgument("members disagree on zone size");
      }
      if (di.num_conventional_zones != 0) {
        return Status::InvalidArgument(
            "members with conventional zones are not supported");
      }
    }
  }

  if (options.stripe_bytes == 0 ||
      options.stripe_bytes % first.io_alignment != 0) {
    return Status::InvalidArgument(
        "stripe unit must be a non-zero multiple of the I/O alignment");
  }

  std::uint32_t rows = 0;
  if (first.zoned()) {
    if (first.zone_size_bytes % options.stripe_bytes != 0) {
      return Status::InvalidArgument("stripe unit must divide the zone size");
    }
    rows = members[0]->info().num_zones;
    for (const auto& m : members) rows = std::min(rows, m->info().num_zones);
    if (rows == 0) return Status::InvalidArgument("members have no zones");
  } else {
    if (options.stripe_width != 0 && options.stripe_width != n) {
      // Without zones there is no row to interleave sets over; a
      // conventional volume always stripes across all members.
      return Status::InvalidArgument(
          "conventional volumes stripe across all members");
    }
    std::uint64_t span = members[0]->info().capacity_bytes;
    for (const auto& m : members) span = std::min(span, m->info().capacity_bytes);
    span -= span % options.stripe_bytes;
    if (span == 0) {
      return Status::InvalidArgument("members smaller than one stripe unit");
    }
  }

  return std::unique_ptr<StripedVolume>(
      new StripedVolume(std::move(members), options, first, rows));
}

StripedVolume::StripedVolume(std::vector<std::unique_ptr<StorageDevice>> members,
                             const StripedVolumeOptions& options,
                             DeviceInfo member_info, std::uint32_t rows)
    : members_(std::move(members)),
      member_info_(std::move(member_info)),
      stripe_(options.stripe_bytes),
      width_(options.stripe_width == 0
                 ? static_cast<std::uint32_t>(members_.size())
                 : options.stripe_width),
      rows_(rows),
      align_(member_info_.io_alignment) {
  if (member_info_.zoned()) {
    num_sets_ = static_cast<std::uint32_t>(members_.size()) / width_;
    zone_bytes_ = member_info_.zone_size_bytes * width_;
    member_span_ = member_info_.zone_size_bytes * rows_;
  } else {
    // Conventional volumes stripe across all members as a single set.
    width_ = static_cast<std::uint32_t>(members_.size());
    num_sets_ = 1;
    zone_bytes_ = 0;
    std::uint64_t span = members_[0]->info().capacity_bytes;
    for (const auto& m : members_) span = std::min(span, m->info().capacity_bytes);
    member_span_ = span - span % stripe_;
  }
  runs_.reserve(members_.size());
  lane_tokens_.resize(width_);
  run_status_.reserve(members_.size());
  run_done_.reserve(members_.size());
}

DeviceInfo StripedVolume::info() const {
  DeviceInfo di;
  di.name = "striped-" + std::to_string(members_.size()) + "x" + member_info_.name;
  di.io_alignment = align_;
  if (member_info_.zoned()) {
    di.zone_size_bytes = zone_bytes_;
    di.num_zones = rows_ * num_sets_;
    di.capacity_bytes = zone_bytes_ * di.num_zones;
    // Opening a logical zone opens one member zone on each of its set's
    // members, so the guaranteed volume-wide limit is the weakest
    // member's (0 = unlimited; any limited member caps the volume).
    std::uint32_t open = 0, active = 0;
    for (const auto& m : members_) {
      const DeviceInfo mi = m->info();
      if (mi.max_open_zones != 0) {
        open = open == 0 ? mi.max_open_zones : std::min(open, mi.max_open_zones);
      }
      if (mi.max_active_zones != 0) {
        active =
            active == 0 ? mi.max_active_zones : std::min(active, mi.max_active_zones);
      }
    }
    di.max_open_zones = open;
    di.max_active_zones = active;
  } else {
    di.capacity_bytes = member_span_ * members_.size();
  }
  for (const auto& m : members_) di.slc_bytes += m->info().slc_bytes;
  return di;
}

MemberZone StripedVolume::ToMemberZone(ZoneId logical, std::uint32_t lane) const {
  const std::uint64_t set = logical.value() % num_sets_;
  const std::uint64_t row = logical.value() / num_sets_;
  return MemberZone{static_cast<std::uint32_t>(set * width_ + lane), ZoneId{row}};
}

ZoneId StripedVolume::ToLogicalZone(const MemberZone& mz) const {
  const std::uint64_t set = mz.member / width_;
  return ZoneId{mz.zone.value() * num_sets_ + set};
}

Status StripedVolume::Resolve(const IoRequest& req, std::uint32_t* first_member,
                              std::uint64_t* member_base,
                              std::uint64_t* rel) const {
  if (req.len == 0 || req.offset % align_ != 0 || req.len % align_ != 0) {
    return Status::InvalidArgument("request must be aligned and non-empty");
  }
  if (zone_bytes_ != 0) {
    const std::uint64_t logical = req.offset / zone_bytes_;
    if (logical >= static_cast<std::uint64_t>(rows_) * num_sets_) {
      return Status::OutOfRange("request beyond volume capacity");
    }
    const std::uint64_t in_zone = req.offset - logical * zone_bytes_;
    if (in_zone + req.len > zone_bytes_) {
      // Mirrors the members' own rule; a zoned host never issues these.
      return Status::InvalidArgument("request crosses a zone boundary");
    }
    const MemberZone anchor = ToMemberZone(ZoneId{logical}, 0);
    *first_member = anchor.member;
    *member_base = anchor.zone.value() * member_info_.zone_size_bytes;
    *rel = in_zone;
  } else {
    if (req.offset + req.len > member_span_ * members_.size()) {
      return Status::OutOfRange("request beyond volume capacity");
    }
    *first_member = 0;
    *member_base = 0;
    *rel = req.offset;
  }
  return Status::Ok();
}

void StripedVolume::Split(std::uint64_t rel, std::uint64_t len,
                          std::uint32_t first_member, std::uint64_t member_base) {
  runs_.clear();
  const std::uint64_t u0 = rel / stripe_;
  const std::uint64_t u1 = (rel + len - 1) / stripe_;
  const std::uint64_t frag0 = rel % stripe_;
  const std::uint64_t frag1 = (rel + len - 1) % stripe_ + 1;
  for (std::uint32_t lane = 0; lane < width_; ++lane) {
    // First and last stripe unit of this lane inside [u0, u1].
    const std::uint64_t first =
        u0 + (lane + width_ - static_cast<std::uint32_t>(u0 % width_)) % width_;
    if (first > u1) continue;
    const std::uint64_t last =
        u1 - (static_cast<std::uint32_t>(u1 % width_) + width_ - lane) % width_;
    const std::uint64_t start = (first / width_) * stripe_ + (first == u0 ? frag0 : 0);
    const std::uint64_t end =
        (last / width_) * stripe_ + (last == u1 ? frag1 : stripe_);
    runs_.push_back(Run{first_member + lane, member_base + start, end - start});
  }
}

Result<IoResult> StripedVolume::Write(const IoRequest& req) {
  std::uint32_t first_member = 0;
  std::uint64_t member_base = 0, rel = 0;
  if (Status st = Resolve(req, &first_member, &member_base, &rel); !st.ok()) {
    return st;
  }
  if (!req.tokens.empty() && req.tokens.size() != req.len / align_) {
    return Status::InvalidArgument("token count != written pages");
  }
  Split(rel, req.len, first_member, member_base);

  // Single-run fast path (whole request on one member — always the case
  // for len <= the distance to the next stripe boundary, and for a
  // 1-member volume): forward the token span untouched. This is what
  // makes a 1-member volume bit-identical to the bare device.
  if (runs_.size() == 1) {
    const Run& r = runs_[0];
    auto res = members_[r.member]->Write(IoRequest{r.offset, r.len, req.now,
                                                   req.tokens, req.want_tokens,
                                                   req.io_class});
    if (!res.ok()) return res.status();
    return std::move(res).value();
  }

  // Gather each lane's tokens in member-run order before issuing.
  const bool tokens = !req.tokens.empty();
  if (tokens) {
    for (auto& v : lane_tokens_) v.clear();
    std::uint64_t page = 0;  // Cursor into req.tokens.
    for (std::uint64_t u = rel / stripe_; page < req.tokens.size(); ++u) {
      const std::uint64_t unit_lo = std::max(rel, u * stripe_);
      const std::uint64_t unit_hi = std::min(rel + req.len, (u + 1) * stripe_);
      const std::uint64_t pages = (unit_hi - unit_lo) / align_;
      auto& lane = lane_tokens_[static_cast<std::size_t>(u % width_)];
      lane.insert(lane.end(), req.tokens.begin() + static_cast<std::ptrdiff_t>(page),
                  req.tokens.begin() + static_cast<std::ptrdiff_t>(page + pages));
      page += pages;
    }
  }

  // Fork one task per member run. Every run is issued (see header: a
  // failing member does not shield later members), results land in
  // per-task slots, and the merge below walks them in run order — the
  // same bits whether the tasks ran serially or on executor threads.
  run_status_.assign(runs_.size(), Status::Ok());
  run_done_.assign(runs_.size(), req.now);
  FanOut(exec_, runs_.size(), [&](std::size_t i) {
    const Run& r = runs_[i];
    const std::size_t lane = r.member - first_member;
    IoRequest sub{r.offset, r.len, req.now,
                  tokens ? std::span<const std::uint64_t>(lane_tokens_[lane])
                         : std::span<const std::uint64_t>{},
                  /*want_tokens=*/false, req.io_class};
    auto res = members_[r.member]->Write(sub);
    if (!res.ok()) {
      run_status_[i] = res.status();
    } else {
      run_done_[i] = res.value().done;
    }
  });

  SimTime done = req.now;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (!run_status_[i].ok()) return std::move(run_status_[i]);
    done = Later(done, run_done_[i]);
  }
  return IoResult{done, {}};
}

Result<IoResult> StripedVolume::Read(const IoRequest& req) {
  std::uint32_t first_member = 0;
  std::uint64_t member_base = 0, rel = 0;
  if (Status st = Resolve(req, &first_member, &member_base, &rel); !st.ok()) {
    return st;
  }
  Split(rel, req.len, first_member, member_base);

  if (runs_.size() == 1) {
    const Run& r = runs_[0];
    auto res = members_[r.member]->Read(
        IoRequest{r.offset, r.len, req.now, {}, req.want_tokens, req.io_class});
    if (!res.ok()) return res.status();
    return std::move(res).value();
  }

  for (auto& v : lane_tokens_) v.clear();
  run_status_.assign(runs_.size(), Status::Ok());
  run_done_.assign(runs_.size(), req.now);
  FanOut(exec_, runs_.size(), [&](std::size_t i) {
    const Run& r = runs_[i];
    auto res = members_[r.member]->Read(
        IoRequest{r.offset, r.len, req.now, {}, req.want_tokens, req.io_class});
    if (!res.ok()) {
      run_status_[i] = res.status();
      return;
    }
    run_done_[i] = res.value().done;
    if (req.want_tokens) {
      // Each task scatters into its own lane slot only.
      lane_tokens_[static_cast<std::size_t>(r.member - first_member)] =
          std::move(res.value().tokens);
    }
  });

  IoResult out;
  out.done = req.now;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (!run_status_[i].ok()) return std::move(run_status_[i]);
    out.done = Later(out.done, run_done_[i]);
  }

  if (req.want_tokens) {
    // Scatter member tokens back into logical (request) page order.
    out.tokens.reserve(req.len / align_);
    std::vector<std::size_t> cursor(width_, 0);
    std::uint64_t consumed = 0;
    for (std::uint64_t u = rel / stripe_; consumed < req.len; ++u) {
      const std::uint64_t unit_lo = std::max(rel, u * stripe_);
      const std::uint64_t unit_hi = std::min(rel + req.len, (u + 1) * stripe_);
      const std::uint64_t pages = (unit_hi - unit_lo) / align_;
      auto& lane = lane_tokens_[static_cast<std::size_t>(u % width_)];
      std::size_t& c = cursor[static_cast<std::size_t>(u % width_)];
      for (std::uint64_t p = 0; p < pages; ++p) {
        out.tokens.push_back(lane[c++]);
      }
      consumed += unit_hi - unit_lo;
    }
  }
  return out;
}

Result<SimTime> StripedVolume::ResetZone(ZoneId zone, SimTime now) {
  if (zone_bytes_ == 0) {
    // The volume is conventional (DeviceInfo::zone_size_bytes == 0); the
    // members are never consulted.
    return Status::Unimplemented("volume has no zones");
  }
  if (!zone.valid() || zone.value() >= static_cast<std::uint64_t>(rows_) * num_sets_) {
    return Status::OutOfRange("reset of invalid zone");
  }
  run_status_.assign(width_, Status::Ok());
  run_done_.assign(width_, now);
  FanOut(exec_, width_, [&](std::size_t lane) {
    const MemberZone mz = ToMemberZone(zone, static_cast<std::uint32_t>(lane));
    auto r = members_[mz.member]->ResetZone(mz.zone, now);
    if (!r.ok()) {
      run_status_[lane] = r.status();
    } else {
      run_done_[lane] = r.value();
    }
  });
  SimTime done = now;
  for (std::uint32_t lane = 0; lane < width_; ++lane) {
    if (!run_status_[lane].ok()) return std::move(run_status_[lane]);
    done = Later(done, run_done_[lane]);
  }
  return done;
}

Result<SimTime> StripedVolume::Flush(SimTime now) {
  const std::size_t n = members_.size();
  run_status_.assign(n, Status::Ok());
  run_done_.assign(n, now);
  FanOut(exec_, n, [&](std::size_t i) {
    auto r = members_[i]->Flush(now);
    if (!r.ok()) {
      run_status_[i] = r.status();
    } else {
      run_done_[i] = r.value();
    }
  });
  SimTime done = now;
  for (std::size_t i = 0; i < n; ++i) {
    if (!run_status_[i].ok()) return std::move(run_status_[i]);
    done = Later(done, run_done_[i]);
  }
  return done;
}

StatsSnapshot StripedVolume::Stats() const {
  StatsSnapshot s;
  for (const auto& m : members_) s.Merge(m->Stats());
  return s;
}

ReliabilityStats StripedVolume::Reliability() const {
  ReliabilityStats s;
  for (const auto& m : members_) s.Merge(m->Reliability());
  return s;
}

RecoveryStats StripedVolume::Recovery() const {
  RecoveryStats s;
  for (const auto& m : members_) s.Merge(m->Recovery());
  return s;
}

std::vector<StatsSnapshot> StripedVolume::PerMemberStats() const {
  std::vector<StatsSnapshot> out;
  out.reserve(members_.size());
  for (const auto& m : members_) out.push_back(m->Stats());
  return out;
}

std::vector<ReliabilityStats> StripedVolume::PerMemberReliability() const {
  std::vector<ReliabilityStats> out;
  out.reserve(members_.size());
  for (const auto& m : members_) out.push_back(m->Reliability());
  return out;
}

std::vector<RecoveryStats> StripedVolume::PerMemberRecovery() const {
  std::vector<RecoveryStats> out;
  out.reserve(members_.size());
  for (const auto& m : members_) out.push_back(m->Recovery());
  return out;
}

}  // namespace conzone
