#include "host/redundant_volume.hpp"

#include <algorithm>
#include <utility>

#include "exec/executor.hpp"

namespace conzone {

namespace {
/// Fan a batch of member sub-ops out: on `exec` when it can actually
/// parallelize, inline otherwise. Each task owns disjoint state; the
/// caller merges the per-task slots in submission order afterwards.
template <class F>
void FanOut(Executor* exec, std::size_t n, F&& task) {
  if (exec != nullptr && exec->threads() > 1 && n > 1) {
    exec->Run(n, task);
  } else {
    for (std::size_t i = 0; i < n; ++i) task(i);
  }
}
}  // namespace

Result<std::unique_ptr<RedundantVolume>> RedundantVolume::Create(
    std::vector<std::unique_ptr<StorageDevice>> members,
    const RedundantVolumeOptions& options) {
  if (members.size() < 2) {
    return Status::InvalidArgument("redundant volume needs at least two members");
  }
  for (const auto& m : members) {
    if (m == nullptr) return Status::InvalidArgument("null member device");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(members.size());

  const DeviceInfo first = members[0]->info();
  for (const auto& m : members) {
    const DeviceInfo di = m->info();
    if (di.io_alignment != first.io_alignment) {
      return Status::InvalidArgument("members disagree on I/O alignment");
    }
    if (di.zoned() != first.zoned()) {
      return Status::InvalidArgument(
          "cannot mix zoned and conventional members in one volume");
    }
    if (di.zoned()) {
      if (di.zone_size_bytes != first.zone_size_bytes) {
        return Status::InvalidArgument("members disagree on zone size");
      }
      if (di.num_conventional_zones != 0) {
        return Status::InvalidArgument(
            "members with conventional zones are not supported");
      }
    }
  }

  std::uint32_t group = 0;
  if (options.layout == RedundancyLayout::kMirror) {
    group = options.replicas == 0 ? n : options.replicas;
    if (group < 2 || n % group != 0) {
      return Status::InvalidArgument(
          "mirror replicas must be >= 2 and divide the member count");
    }
    if (!first.zoned() && group != n) {
      // Without zones there is no row to interleave groups over; a
      // conventional mirror replicates across all members.
      return Status::InvalidArgument(
          "conventional mirrors replicate across all members");
    }
  } else {
    if (!first.zoned()) {
      // Parity over in-place media would need read-modify-write of the
      // parity unit on every small write — out of scope by design.
      return Status::InvalidArgument("parity layout requires zoned members");
    }
    group = options.stripe_width == 0 ? n : options.stripe_width;
    if (group < 3 || n % group != 0) {
      return Status::InvalidArgument(
          "parity stripe width must be >= 3 and divide the member count");
    }
  }

  if (options.stripe_bytes == 0 ||
      options.stripe_bytes % first.io_alignment != 0) {
    return Status::InvalidArgument(
        "stripe unit must be a non-zero multiple of the I/O alignment");
  }
  if (options.rows_per_tick == 0) {
    return Status::InvalidArgument("rows_per_tick must be non-zero");
  }

  std::uint32_t rows = 0;
  if (first.zoned()) {
    if (first.zone_size_bytes % options.stripe_bytes != 0) {
      return Status::InvalidArgument("stripe unit must divide the zone size");
    }
    rows = members[0]->info().num_zones;
    for (const auto& m : members) rows = std::min(rows, m->info().num_zones);
    if (rows == 0) return Status::InvalidArgument("members have no zones");
  } else {
    std::uint64_t span = members[0]->info().capacity_bytes;
    for (const auto& m : members) span = std::min(span, m->info().capacity_bytes);
    span -= span % options.stripe_bytes;
    if (span == 0) {
      return Status::InvalidArgument("members smaller than one stripe unit");
    }
  }

  return std::unique_ptr<RedundantVolume>(
      new RedundantVolume(std::move(members), options, first, rows));
}

RedundantVolume::RedundantVolume(std::vector<std::unique_ptr<StorageDevice>> members,
                                 const RedundantVolumeOptions& options,
                                 DeviceInfo member_info, std::uint32_t rows)
    : members_(std::move(members)),
      state_(members_.size(), MemberState::kActive),
      member_info_(std::move(member_info)),
      layout_(options.layout),
      stripe_(options.stripe_bytes),
      rows_(rows),
      align_(member_info_.io_alignment),
      rows_per_tick_(options.rows_per_tick) {
  const std::uint32_t n = static_cast<std::uint32_t>(members_.size());
  if (layout_ == RedundancyLayout::kMirror) {
    group_ = options.replicas == 0 ? n : options.replicas;
  } else {
    group_ = options.stripe_width == 0 ? n : options.stripe_width;
  }
  num_groups_ = n / group_;
  if (member_info_.zoned()) {
    zone_bytes_ = layout_ == RedundancyLayout::kParity
                      ? (group_ - 1) * member_info_.zone_size_bytes
                      : member_info_.zone_size_bytes;
    member_span_ = member_info_.zone_size_bytes * rows_;
  } else {
    zone_bytes_ = 0;
    std::uint64_t span = members_[0]->info().capacity_bytes;
    for (const auto& m : members_) span = std::min(span, m->info().capacity_bytes);
    member_span_ = span - span % stripe_;
  }
  lane_tokens_.resize(group_);
  target_scratch_.reserve(group_);
  run_status_.reserve(n);
  run_done_.reserve(n);
  scrub_clean_.assign(n, 1);
}

DeviceInfo RedundantVolume::info() const {
  DeviceInfo di;
  di.name = (layout_ == RedundancyLayout::kMirror ? "mirror-" : "parity-") +
            std::to_string(members_.size()) + "x" + std::to_string(group_) + "-" +
            member_info_.name;
  di.io_alignment = align_;
  if (member_info_.zoned()) {
    di.zone_size_bytes = zone_bytes_;
    di.num_zones = rows_ * num_groups_;
    di.capacity_bytes = zone_bytes_ * di.num_zones;
    // Opening a logical zone opens one member zone on each group/set
    // member, so the guaranteed volume-wide limit is the weakest
    // member's (0 = unlimited; any limited member caps the volume).
    std::uint32_t open = 0, active = 0;
    for (const auto& m : members_) {
      const DeviceInfo mi = m->info();
      if (mi.max_open_zones != 0) {
        open = open == 0 ? mi.max_open_zones : std::min(open, mi.max_open_zones);
      }
      if (mi.max_active_zones != 0) {
        active =
            active == 0 ? mi.max_active_zones : std::min(active, mi.max_active_zones);
      }
    }
    di.max_open_zones = open;
    di.max_active_zones = active;
  } else {
    di.capacity_bytes = member_span_;
  }
  for (const auto& m : members_) di.slc_bytes += m->info().slc_bytes;
  // The volume serves while every group/set is within its failure
  // tolerance; one lost group takes the whole address space with it.
  di.health = DeviceHealth::kHealthy;
  for (std::uint32_t g = 0; g < num_groups_; ++g) {
    std::uint32_t live = 0;
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      if (state_[g * group_ + lane] == MemberState::kActive) ++live;
    }
    const bool dead = layout_ == RedundancyLayout::kMirror ? live == 0
                                                           : group_ - live > 1;
    if (dead) {
      di.health = DeviceHealth::kOffline;
      break;
    }
  }
  return di;
}

MemberZone RedundantVolume::ToMemberZone(ZoneId logical, std::uint32_t lane) const {
  return MemberZone{GroupBase(logical.value()) + lane,
                    ZoneId{MemberRow(logical.value())}};
}

ZoneId RedundantVolume::ToLogicalZone(const MemberZone& mz) const {
  const std::uint64_t g = mz.member / group_;
  return ZoneId{mz.zone.value() * num_groups_ + g};
}

Status RedundantVolume::Resolve(const IoRequest& req, bool write,
                                std::uint64_t* logical,
                                std::uint64_t* in_zone) const {
  (void)write;
  if (req.len == 0 || req.offset % align_ != 0 || req.len % align_ != 0) {
    return Status::InvalidArgument("request must be aligned and non-empty");
  }
  if (zone_bytes_ != 0) {
    const std::uint64_t l = req.offset / zone_bytes_;
    if (l >= static_cast<std::uint64_t>(rows_) * num_groups_) {
      return Status::OutOfRange("request beyond volume capacity");
    }
    const std::uint64_t in = req.offset - l * zone_bytes_;
    if (in + req.len > zone_bytes_) {
      return Status::InvalidArgument("request crosses a zone boundary");
    }
    *logical = l;
    *in_zone = in;
  } else {
    if (req.offset + req.len > member_span_) {
      return Status::OutOfRange("request beyond volume capacity");
    }
    *logical = 0;
    *in_zone = req.offset;
  }
  return Status::Ok();
}

bool RedundantVolume::Reconstructable(StatusCode code) {
  switch (code) {
    case StatusCode::kMediaError:         // NAND gave the data up.
    case StatusCode::kFailedPrecondition: // Powered off / zone-state skew.
    case StatusCode::kOutOfRange:         // WP regressed below the request.
    case StatusCode::kResourceExhausted:  // Member latched read-only.
      return true;
    default:
      return false;
  }
}

void RedundantVolume::LatchFailed(std::uint32_t m) {
  if (state_[m] == MemberState::kFailed) return;
  state_[m] = MemberState::kFailed;
  red_.member_failures++;
  if (static_cast<std::int32_t>(m) == rebuild_member_) rebuild_member_ = -1;
}

bool RedundantVolume::Writable(std::uint32_t m, std::uint64_t where) const {
  switch (state_[m]) {
    case MemberState::kActive:
      return true;
    case MemberState::kFailed:
      return false;
    case MemberState::kRebuilding:
      break;
  }
  if (zone_bytes_ != 0) {
    if (rebuild_phase_ == 2) return where != rebuild_verify_zone_;
    if (rebuild_phase_ == 1) return true;
    return where < rebuild_zone_;
  }
  return rebuild_phase_ >= 1 || where < rebuild_off_;
}

Result<IoResult> RedundantVolume::Write(const IoRequest& req) {
  std::uint64_t logical = 0, in_zone = 0;
  if (Status st = Resolve(req, /*write=*/true, &logical, &in_zone); !st.ok()) {
    return st;
  }
  if (!req.tokens.empty() && req.tokens.size() != req.len / align_) {
    return Status::InvalidArgument("token count != written pages");
  }
  if (scrub_active_) {
    // Writing at or behind the scrub cursor invalidates "this pass saw
    // the whole volume in sync" — readmission must not use it.
    const bool behind = zone_bytes_ != 0 ? logical <= scrub_zone_
                                         : req.offset <= scrub_off_;
    if (behind) scrub_dirty_ = true;
  }
  return layout_ == RedundancyLayout::kMirror ? WriteMirror(req, logical, in_zone)
                                              : WriteParity(req, logical, in_zone);
}

Result<IoResult> RedundantVolume::WriteMirror(const IoRequest& req,
                                              std::uint64_t logical,
                                              std::uint64_t in_zone) {
  const std::uint64_t pages = req.len / align_;
  // Materialize explicit tokens so every replica stores identical
  // content regardless of its device type's default-token scheme.
  std::span<const std::uint64_t> toks = req.tokens;
  if (toks.empty()) {
    token_scratch_.resize(pages);
    const std::uint64_t p0 = req.offset / align_;
    for (std::uint64_t i = 0; i < pages; ++i) {
      token_scratch_[i] = VolumeToken(p0 + i);
    }
    toks = token_scratch_;
  }

  const std::uint32_t base = GroupBase(logical);
  const std::uint64_t zr = MemberRow(logical);
  const std::uint64_t moff =
      zone_bytes_ != 0 ? zr * member_info_.zone_size_bytes + in_zone : req.offset;

  target_scratch_.clear();
  bool degraded = false;
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    const std::uint32_t m = base + lane;
    if (!Writable(m, zone_bytes_ != 0 ? zr : req.offset)) {
      degraded = true;
      continue;
    }
    target_scratch_.push_back(lane);
  }
  if (target_scratch_.empty()) {
    return Status::FailedPrecondition("no writable replica in mirror group");
  }

  run_status_.assign(target_scratch_.size(), Status::Ok());
  run_done_.assign(target_scratch_.size(), req.now);
  FanOut(exec_, target_scratch_.size(), [&](std::size_t i) {
    const std::uint32_t m = base + target_scratch_[i];
    auto res = members_[m]->Write(
        IoRequest{moff, req.len, req.now, toks, /*want_tokens=*/false,
                  req.io_class});
    if (!res.ok()) {
      run_status_[i] = res.status();
    } else {
      run_done_[i] = res.value().done;
    }
  });

  SimTime done = req.now;
  std::size_t failed = 0;
  Status first_err;
  for (std::size_t i = 0; i < target_scratch_.size(); ++i) {
    if (!run_status_[i].ok()) {
      ++failed;
      if (first_err.ok()) first_err = run_status_[i];
    } else {
      done = Later(done, run_done_[i]);
    }
  }
  if (failed == target_scratch_.size()) {
    // Every leg refused identically — almost certainly the request
    // itself (misaligned, beyond WP), not a member fault. No latching.
    return first_err;
  }
  if (failed > 0) {
    for (std::size_t i = 0; i < target_scratch_.size(); ++i) {
      if (!run_status_[i].ok()) LatchFailed(base + target_scratch_[i]);
    }
    degraded = true;
  }
  if (degraded) red_.degraded_writes++;
  return IoResult{done, {}};
}

Result<IoResult> RedundantVolume::WriteParity(const IoRequest& req,
                                              std::uint64_t logical,
                                              std::uint64_t in_zone) {
  const std::uint64_t row_bytes = (group_ - 1) * stripe_;
  if (in_zone % row_bytes != 0 || req.len % row_bytes != 0) {
    // Every lane is written in every row, so sub-row writes would need
    // read-modify-write of the parity unit (the RAID-5 write hole).
    return Status::InvalidArgument(
        "parity volume writes must be whole stripe-row multiples");
  }
  const std::uint64_t pages = req.len / align_;
  std::span<const std::uint64_t> toks = req.tokens;
  if (toks.empty()) {
    token_scratch_.resize(pages);
    const std::uint64_t p0 = req.offset / align_;
    for (std::uint64_t i = 0; i < pages; ++i) {
      token_scratch_[i] = VolumeToken(p0 + i);
    }
    toks = token_scratch_;
  }

  const std::uint32_t base = GroupBase(logical);
  const std::uint64_t zr = MemberRow(logical);
  const std::uint64_t r0 = in_zone / row_bytes;
  const std::uint64_t nrows = req.len / row_bytes;
  const std::uint64_t unit_pages = stripe_ / align_;
  const std::uint64_t run_off = zr * member_info_.zone_size_bytes + r0 * stripe_;
  const std::uint64_t run_len = nrows * stripe_;

  // Gather each lane's tokens (data units in rotating-parity order,
  // parity units XOR-folded) row by row; every lane's run is contiguous
  // in its member's address space because every row touches every lane.
  for (auto& v : lane_tokens_) v.clear();
  for (std::uint64_t x = 0; x < nrows; ++x) {
    const std::uint64_t k = r0 + x;
    const std::uint32_t p = ParityLane(k);
    const std::uint64_t row_base = x * (group_ - 1) * unit_pages;
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      auto& lt = lane_tokens_[lane];
      if (lane == p) {
        for (std::uint64_t j = 0; j < unit_pages; ++j) {
          std::uint64_t acc = 0;
          for (std::uint32_t d = 0; d + 1 < group_; ++d) {
            acc ^= toks[row_base + d * unit_pages + j];
          }
          lt.push_back(acc);
        }
      } else {
        const std::uint32_t d = lane - (lane > p ? 1 : 0);
        const std::uint64_t from = row_base + d * unit_pages;
        for (std::uint64_t j = 0; j < unit_pages; ++j) lt.push_back(toks[from + j]);
      }
    }
  }

  target_scratch_.clear();
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    if (Writable(base + lane, zr)) target_scratch_.push_back(lane);
  }
  if (target_scratch_.empty()) {
    return Status::FailedPrecondition("no writable lane in parity set");
  }
  if (group_ - static_cast<std::uint32_t>(target_scratch_.size()) > 1) {
    // Refuse before any leg is issued: appending the row on the
    // survivors and then failing would skew their write pointers within
    // the stripe and poison full-row retries after the members return.
    return Status::FailedPrecondition("parity set beyond single-fault tolerance");
  }

  run_status_.assign(target_scratch_.size(), Status::Ok());
  run_done_.assign(target_scratch_.size(), req.now);
  FanOut(exec_, target_scratch_.size(), [&](std::size_t i) {
    const std::uint32_t lane = target_scratch_[i];
    auto res = members_[base + lane]->Write(
        IoRequest{run_off, run_len, req.now,
                  std::span<const std::uint64_t>(lane_tokens_[lane]),
                  /*want_tokens=*/false, req.io_class});
    if (!res.ok()) {
      run_status_[i] = res.status();
    } else {
      run_done_[i] = res.value().done;
    }
  });

  SimTime done = req.now;
  std::size_t failed = 0;
  Status first_err;
  for (std::size_t i = 0; i < target_scratch_.size(); ++i) {
    if (!run_status_[i].ok()) {
      ++failed;
      if (first_err.ok()) first_err = run_status_[i];
    } else {
      done = Later(done, run_done_[i]);
    }
  }
  if (failed == target_scratch_.size()) return first_err;  // Request bug.
  if (failed > 0) {
    for (std::size_t i = 0; i < target_scratch_.size(); ++i) {
      if (!run_status_[i].ok()) LatchFailed(base + target_scratch_[i]);
    }
  }
  const std::uint32_t missing =
      group_ - static_cast<std::uint32_t>(target_scratch_.size() - failed);
  if (missing > 1) {
    // Two lanes short of one row: single parity cannot get the data
    // back; acknowledging the write would be silent loss.
    return !first_err.ok()
               ? first_err
               : Status::FailedPrecondition(
                     "parity set beyond single-fault tolerance");
  }
  if (missing > 0) red_.degraded_writes++;
  return IoResult{done, {}};
}

Result<IoResult> RedundantVolume::Read(const IoRequest& req) {
  std::uint64_t logical = 0, in_zone = 0;
  if (Status st = Resolve(req, /*write=*/false, &logical, &in_zone); !st.ok()) {
    return st;
  }
  return layout_ == RedundancyLayout::kMirror ? ReadMirror(req, logical, in_zone)
                                              : ReadParity(req, logical, in_zone);
}

Result<IoResult> RedundantVolume::ReadMirror(const IoRequest& req,
                                             std::uint64_t logical,
                                             std::uint64_t in_zone) {
  const std::uint32_t base = GroupBase(logical);
  const std::uint64_t zr = MemberRow(logical);
  const std::uint64_t moff =
      zone_bytes_ != 0 ? zr * member_info_.zone_size_bytes + in_zone : req.offset;
  const std::uint64_t units =
      (in_zone + req.len - 1) / stripe_ - in_zone / stripe_ + 1;
  // Primary replica rotates with the zone row and the first stripe unit
  // so independent streams spread across the group; fallback order is a
  // fixed function of the request — deterministic at any thread count.
  const std::uint32_t primary =
      static_cast<std::uint32_t>((zr + in_zone / stripe_) % group_);

  Status first_err;
  for (std::uint32_t t = 0; t < group_; ++t) {
    const std::uint32_t lane = (primary + t) % group_;
    const std::uint32_t m = base + lane;
    if (!Readable(m)) continue;
    auto res = members_[m]->Read(
        IoRequest{moff, req.len, req.now, {}, req.want_tokens, req.io_class});
    if (res.ok()) {
      IoResult out = std::move(res).value();
      if (t != 0) {
        out.reconstructed_units = static_cast<std::uint32_t>(units);
        red_.degraded_reads++;
        red_.reconstructed_units += units;
      }
      return out;
    }
    if (!Reconstructable(res.status().code())) return res.status();
    if (first_err.ok()) first_err = res.status();
  }
  if (!first_err.ok()) return first_err;
  return Status::FailedPrecondition("no readable replica in mirror group");
}

Result<IoResult> RedundantVolume::ReadParity(const IoRequest& req,
                                             std::uint64_t logical,
                                             std::uint64_t in_zone) {
  const std::uint64_t row_bytes = (group_ - 1) * stripe_;
  const std::uint32_t base = GroupBase(logical);
  const std::uint64_t zr = MemberRow(logical);
  const std::uint64_t mzs = member_info_.zone_size_bytes;

  // Split the data-space range into per-unit fragments; each fragment
  // lives on exactly one lane of the set.
  struct Frag {
    std::uint32_t lane;
    std::uint64_t moff;
    std::uint64_t len;
    std::uint64_t row;
    std::uint64_t unit_off;
  };
  std::vector<Frag> frags;
  std::uint64_t db = in_zone, left = req.len;
  while (left > 0) {
    const std::uint64_t k = db / row_bytes;
    const std::uint64_t wr = db % row_bytes;
    const std::uint64_t d = wr / stripe_;
    const std::uint64_t uo = wr % stripe_;
    const std::uint64_t take = std::min(stripe_ - uo, left);
    const std::uint32_t p = ParityLane(k);
    const std::uint32_t lane = static_cast<std::uint32_t>(d) + (d >= p ? 1u : 0u);
    frags.push_back(Frag{lane, zr * mzs + k * stripe_ + uo, take, k, uo});
    db += take;
    left -= take;
  }

  // Group fragments per member: devices are not thread-safe, so one
  // fan-out task owns all of a member's fragments and issues them
  // serially; results land in per-fragment slots (disjoint across
  // tasks) and merge in fragment order below.
  std::vector<std::vector<std::size_t>> by_lane(group_);
  for (std::size_t i = 0; i < frags.size(); ++i) {
    by_lane[frags[i].lane].push_back(i);
  }
  std::vector<std::uint8_t> need(frags.size(), 0);
  target_scratch_.clear();
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    if (by_lane[lane].empty()) continue;
    if (!Readable(base + lane)) {
      for (std::size_t idx : by_lane[lane]) need[idx] = 1;
    } else {
      target_scratch_.push_back(lane);
    }
  }

  std::vector<Status> fstat(frags.size());
  std::vector<SimTime> fdone(frags.size(), req.now);
  std::vector<std::vector<std::uint64_t>> ftok(frags.size());
  FanOut(exec_, target_scratch_.size(), [&](std::size_t ti) {
    for (std::size_t idx : by_lane[target_scratch_[ti]]) {
      const Frag& f = frags[idx];
      auto res = members_[base + f.lane]->Read(
          IoRequest{f.moff, f.len, req.now, {}, req.want_tokens, req.io_class});
      if (!res.ok()) {
        fstat[idx] = res.status();
      } else {
        fdone[idx] = res.value().done;
        if (req.want_tokens) ftok[idx] = std::move(res.value().tokens);
      }
    }
  });

  // Serial reconstruction pass: a lost fragment reads the same in-unit
  // byte range from the other W-1 lanes and XORs pagewise. Serial on
  // purpose — reconstruction touches members other tasks may own.
  IoResult out;
  out.done = req.now;
  std::uint32_t recon = 0;
  for (std::size_t idx = 0; idx < frags.size(); ++idx) {
    if (need[idx] == 0 && !fstat[idx].ok()) {
      if (!Reconstructable(fstat[idx].code())) return std::move(fstat[idx]);
      need[idx] = 1;
    }
    if (need[idx] != 0) {
      const Frag& f = frags[idx];
      std::vector<std::uint64_t> rec;
      auto r = ReconstructParity(logical, f.row, f.lane, f.unit_off, f.len,
                                 req.now, &rec);
      if (!r.ok()) {
        // Prefer the direct read's own error (e.g. plain beyond-WP) so a
        // degraded volume fails the same way a bare device would.
        return fstat[idx].ok() ? r.status() : std::move(fstat[idx]);
      }
      fdone[idx] = r.value();
      ftok[idx] = std::move(rec);
      ++recon;
    }
    out.done = Later(out.done, fdone[idx]);
  }

  if (recon > 0) {
    out.reconstructed_units = recon;
    red_.degraded_reads++;
    red_.reconstructed_units += recon;
  }
  if (req.want_tokens) {
    out.tokens.reserve(req.len / align_);
    for (std::size_t idx = 0; idx < frags.size(); ++idx) {
      out.tokens.insert(out.tokens.end(), ftok[idx].begin(), ftok[idx].end());
    }
  }
  return out;
}

Result<SimTime> RedundantVolume::ReconstructParity(
    std::uint64_t logical, std::uint64_t row, std::uint32_t lost,
    std::uint64_t unit_off, std::uint64_t len, SimTime now,
    std::vector<std::uint64_t>* tokens_out) {
  const std::uint32_t base = GroupBase(logical);
  const std::uint64_t zr = MemberRow(logical);
  const std::uint64_t moff =
      zr * member_info_.zone_size_bytes + row * stripe_ + unit_off;
  const std::uint64_t pages = len / align_;
  tokens_out->assign(pages, 0);
  SimTime done = now;
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    if (lane == lost) continue;
    const std::uint32_t m = base + lane;
    if (!Readable(m)) {
      return Status::FailedPrecondition(
          "parity reconstruction needs every surviving lane of the set");
    }
    auto res = members_[m]->Read(
        IoRequest{moff, len, now, {}, /*want_tokens=*/true});
    if (!res.ok()) return res.status();
    for (std::uint64_t j = 0; j < pages; ++j) {
      (*tokens_out)[j] ^= res.value().tokens[j];
    }
    done = Later(done, res.value().done);
  }
  return done;
}

Result<SimTime> RedundantVolume::ResetZone(ZoneId zone, SimTime now) {
  if (zone_bytes_ == 0) {
    return Status::Unimplemented("volume has no zones");
  }
  if (!zone.valid() ||
      zone.value() >= static_cast<std::uint64_t>(rows_) * num_groups_) {
    return Status::OutOfRange("reset of invalid zone");
  }
  if (scrub_active_ && zone.value() <= scrub_zone_) scrub_dirty_ = true;

  const std::uint32_t base = GroupBase(zone.value());
  const std::uint64_t zr = MemberRow(zone.value());
  target_scratch_.clear();
  bool restart_copy = false;
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    const std::uint32_t m = base + lane;
    if (state_[m] == MemberState::kFailed) continue;
    if (state_[m] == MemberState::kRebuilding) {
      // Zones ahead of the copy cursor are still empty on the fresh
      // member; behind (or under) it they must be reset with the peers.
      if (rebuild_phase_ == 0 && zr > rebuild_zone_) continue;
      if ((rebuild_phase_ == 0 && zr == rebuild_zone_) ||
          (rebuild_phase_ == 2 && zr == rebuild_verify_zone_)) {
        restart_copy = true;
      }
    }
    target_scratch_.push_back(lane);
  }
  if (target_scratch_.empty()) {
    return Status::FailedPrecondition("no serviceable member for zone reset");
  }

  run_status_.assign(target_scratch_.size(), Status::Ok());
  run_done_.assign(target_scratch_.size(), now);
  FanOut(exec_, target_scratch_.size(), [&](std::size_t i) {
    auto r = members_[base + target_scratch_[i]]->ResetZone(ZoneId{zr}, now);
    if (!r.ok()) {
      run_status_[i] = r.status();
    } else {
      run_done_[i] = r.value();
    }
  });

  SimTime done = now;
  std::size_t failed = 0;
  Status first_err;
  for (std::size_t i = 0; i < target_scratch_.size(); ++i) {
    if (!run_status_[i].ok()) {
      ++failed;
      if (first_err.ok()) first_err = run_status_[i];
    } else {
      done = Later(done, run_done_[i]);
    }
  }
  if (failed == target_scratch_.size()) return first_err;
  if (failed > 0) {
    for (std::size_t i = 0; i < target_scratch_.size(); ++i) {
      if (!run_status_[i].ok()) LatchFailed(base + target_scratch_[i]);
    }
  }
  if (restart_copy && rebuild_member_ >= 0) {
    rebuild_off_ = 0;
    rebuild_fail_streak_ = 0;
  }
  // Best-effort: propagate the reset to failed members that are still
  // online, so a later scrub never sees pre-reset content on them (and
  // readmission starts from an in-sync, empty zone). Errors here neither
  // fail the reset nor re-latch — the member is already failed.
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    const std::uint32_t m = base + lane;
    if (state_[m] != MemberState::kFailed) continue;
    if (members_[m]->info().health == DeviceHealth::kOffline) continue;
    auto r = members_[m]->ResetZone(ZoneId{zr}, now);
    if (r.ok()) done = Later(done, r.value());
  }
  return done;
}

Result<SimTime> RedundantVolume::Flush(SimTime now) {
  std::vector<std::uint32_t> targets;
  targets.reserve(members_.size());
  for (std::uint32_t m = 0; m < members_.size(); ++m) {
    if (state_[m] != MemberState::kFailed) targets.push_back(m);
  }
  if (targets.empty()) {
    return Status::FailedPrecondition("no serviceable member to flush");
  }
  run_status_.assign(targets.size(), Status::Ok());
  run_done_.assign(targets.size(), now);
  FanOut(exec_, targets.size(), [&](std::size_t i) {
    auto r = members_[targets[i]]->Flush(now);
    if (!r.ok()) {
      run_status_[i] = r.status();
    } else {
      run_done_[i] = r.value();
    }
  });
  SimTime done = now;
  std::size_t failed = 0;
  Status first_err;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!run_status_[i].ok()) {
      ++failed;
      if (first_err.ok()) first_err = run_status_[i];
    } else {
      done = Later(done, run_done_[i]);
    }
  }
  if (failed == targets.size()) return first_err;
  if (failed > 0) {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (!run_status_[i].ok()) LatchFailed(targets[i]);
    }
  }
  return done;
}

StatsSnapshot RedundantVolume::Stats() const {
  StatsSnapshot s;
  for (const auto& m : members_) s.Merge(m->Stats());
  return s;
}

ReliabilityStats RedundantVolume::Reliability() const {
  ReliabilityStats s;
  for (const auto& m : members_) s.Merge(m->Reliability());
  return s;
}

RecoveryStats RedundantVolume::Recovery() const {
  RecoveryStats s;
  for (const auto& m : members_) s.Merge(m->Recovery());
  return s;
}

std::vector<StatsSnapshot> RedundantVolume::PerMemberStats() const {
  std::vector<StatsSnapshot> out;
  out.reserve(members_.size());
  for (const auto& m : members_) out.push_back(m->Stats());
  return out;
}

std::vector<ReliabilityStats> RedundantVolume::PerMemberReliability() const {
  std::vector<ReliabilityStats> out;
  out.reserve(members_.size());
  for (const auto& m : members_) out.push_back(m->Reliability());
  return out;
}

std::vector<RecoveryStats> RedundantVolume::PerMemberRecovery() const {
  std::vector<RecoveryStats> out;
  out.reserve(members_.size());
  for (const auto& m : members_) out.push_back(m->Recovery());
  return out;
}

Status RedundantVolume::MarkFailed(std::uint32_t i) {
  if (i >= members_.size()) return Status::InvalidArgument("no such member");
  LatchFailed(i);
  return Status::Ok();
}

Status RedundantVolume::ReplaceMember(std::uint32_t i,
                                      std::unique_ptr<StorageDevice> fresh,
                                      SimTime now) {
  (void)now;
  if (i >= members_.size()) return Status::InvalidArgument("no such member");
  if (fresh == nullptr) return Status::InvalidArgument("null replacement device");
  if (rebuild_member_ >= 0) {
    return Status::FailedPrecondition("a rebuild is already active");
  }
  const DeviceInfo fi = fresh->info();
  if (fi.io_alignment != align_) {
    return Status::InvalidArgument("replacement disagrees on I/O alignment");
  }
  if (fi.zoned() != member_info_.zoned()) {
    return Status::InvalidArgument("replacement zonedness mismatch");
  }
  if (member_info_.zoned()) {
    if (fi.zone_size_bytes != member_info_.zone_size_bytes) {
      return Status::InvalidArgument("replacement disagrees on zone size");
    }
    if (fi.num_zones < rows_) {
      return Status::InvalidArgument("replacement has too few zones");
    }
    if (fi.num_conventional_zones != 0) {
      return Status::InvalidArgument(
          "members with conventional zones are not supported");
    }
  } else if (fi.capacity_bytes < member_span_) {
    return Status::InvalidArgument("replacement smaller than the mirrored span");
  }
  if (fi.health != DeviceHealth::kHealthy) {
    return Status::FailedPrecondition("replacement device is not healthy");
  }
  scrub_active_ = false;  // Rebuild takes the background slot.
  members_[i] = std::move(fresh);
  state_[i] = MemberState::kRebuilding;
  rebuild_member_ = static_cast<std::int32_t>(i);
  rebuild_phase_ = 0;
  rebuild_zone_ = 0;
  rebuild_verify_zone_ = 0;
  rebuild_off_ = 0;
  rebuild_fail_streak_ = 0;
  return Status::Ok();
}

Status RedundantVolume::StartScrub(SimTime now) {
  (void)now;
  if (rebuild_member_ >= 0) {
    return Status::FailedPrecondition("cannot scrub during a rebuild");
  }
  if (scrub_active_) {
    return Status::FailedPrecondition("a scrub is already running");
  }
  scrub_active_ = true;
  scrub_zone_ = 0;
  scrub_row_ = 0;
  scrub_off_ = 0;
  scrub_clean_.assign(members_.size(), 1);
  scrub_dirty_ = false;
  return Status::Ok();
}

Result<SimTime> RedundantVolume::Tick(SimTime now) {
  if (rebuild_member_ >= 0) return TickRebuild(now);
  if (scrub_active_) return TickScrub(now);
  return now;
}

std::uint64_t RedundantVolume::ProbePrefix(std::uint32_t m, std::uint64_t base,
                                           std::uint64_t span, SimTime now,
                                           SimTime* done) {
  // Readability of a zone is a prefix (the recovered-WP contract the
  // crash checker enforces), so binary search is sound: O(log slots)
  // probe reads instead of a linear scan.
  std::uint64_t lo = 0, hi = span / align_;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    auto r = members_[m]->Read(
        IoRequest{base + mid * align_, align_, now, {}, /*want_tokens=*/false,
                  IoClass::kMaintenance});
    if (r.ok()) {
      *done = Later(*done, r.value().done);
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void RedundantVolume::RecordMismatch(std::uint64_t logical, std::uint64_t row,
                                     std::uint32_t m) {
  red_.scrub_mismatches++;
  if (scrub_log_.size() < kScrubLogCap) {
    scrub_log_.push_back(
        ScrubMismatch{ZoneId{logical}, static_cast<std::uint32_t>(row), m});
  }
}

Result<SimTime> RedundantVolume::TickScrub(SimTime now) {
  SimTime done = now;
  bool finished = false;
  const std::uint64_t zone_rows =
      zone_bytes_ != 0 ? member_info_.zone_size_bytes / stripe_ : 0;
  const std::uint64_t total_zones =
      zone_bytes_ != 0 ? static_cast<std::uint64_t>(rows_) * num_groups_ : 0;

  for (std::uint32_t budget = rows_per_tick_; budget > 0; --budget) {
    if (zone_bytes_ != 0) {
      if (scrub_zone_ >= total_zones) {
        finished = true;
        break;
      }
      bool content = true;
      auto r = layout_ == RedundancyLayout::kMirror
                   ? ScrubRowMirror(scrub_zone_, scrub_row_, now, &content)
                   : ScrubRowParity(scrub_zone_, scrub_row_, now, &content);
      if (!r.ok()) return r;
      done = Later(done, r.value());
      if (content) {
        red_.scrub_rows++;
        scrub_row_++;
      }
      if (!content || scrub_row_ >= zone_rows) {
        scrub_zone_++;
        scrub_row_ = 0;
      }
      if (scrub_zone_ >= total_zones) {
        finished = true;
        break;
      }
    } else {
      if (scrub_off_ >= member_span_) {
        finished = true;
        break;
      }
      bool content = true;
      auto r = ScrubConventional(now, &content);
      if (!r.ok()) return r;
      done = Later(done, r.value());
      red_.scrub_rows++;
      scrub_off_ += stripe_;
      if (scrub_off_ >= member_span_) {
        finished = true;
        break;
      }
    }
  }

  // Make this tick's repairs durable — the crash boundary the
  // mid-scrub-cut tests sweep.
  for (std::uint32_t m = 0; m < members_.size(); ++m) {
    if (members_[m]->info().health == DeviceHealth::kOffline) continue;
    auto f = members_[m]->Flush(now);
    if (f.ok()) done = Later(done, f.value());
  }

  if (finished) {
    scrub_active_ = false;
    red_.scrubs_completed++;
    // Readmission: a failed member that the whole pass saw (or brought)
    // in sync is safe to serve again — unless foreground writes dirtied
    // already-scrubbed ground, in which case "clean" proved nothing.
    for (std::uint32_t m = 0; m < members_.size(); ++m) {
      if (state_[m] == MemberState::kFailed && scrub_clean_[m] != 0 &&
          !scrub_dirty_ &&
          members_[m]->info().health == DeviceHealth::kHealthy) {
        state_[m] = MemberState::kActive;
        red_.members_readmitted++;
      }
    }
  }
  return done;
}

Result<SimTime> RedundantVolume::ScrubRowMirror(std::uint64_t logical,
                                                std::uint64_t row, SimTime now,
                                                bool* content) {
  const std::uint32_t base = GroupBase(logical);
  const std::uint64_t zr = MemberRow(logical);
  const std::uint64_t row_off =
      zr * member_info_.zone_size_bytes + row * stripe_;
  const std::uint64_t slots = stripe_ / align_;
  SimTime done = now;

  std::vector<std::uint64_t> prefix(group_, 0);
  std::vector<std::vector<std::uint64_t>> toks(group_);
  std::vector<std::uint8_t> part(group_, 0);
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    const std::uint32_t m = base + lane;
    if (members_[m]->info().health == DeviceHealth::kOffline) {
      scrub_clean_[m] = 0;  // Unverifiable this pass.
      continue;
    }
    part[lane] = 1;
    auto res = members_[m]->Read(
        IoRequest{row_off, stripe_, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
    if (res.ok()) {
      prefix[lane] = slots;
      toks[lane] = std::move(res.value().tokens);
      done = Later(done, res.value().done);
      continue;
    }
    if (!Reconstructable(res.status().code())) return res.status();
    prefix[lane] = ProbePrefix(m, row_off, stripe_, now, &done);
    if (prefix[lane] > 0) {
      auto rr = members_[m]->Read(IoRequest{row_off, prefix[lane] * align_, now,
                                            {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
      if (rr.ok()) {
        toks[lane] = std::move(rr.value().tokens);
        done = Later(done, rr.value().done);
      } else {
        prefix[lane] = 0;
        scrub_clean_[m] = 0;
      }
    }
  }

  // The repair authority is the longest ACTIVE replica. A non-active
  // member may hold stale content — e.g. a zone reset issued while it
  // was failed never landed on it — so sourcing from it would resurrect
  // deleted data onto the good replicas and then readmit the stale
  // member as clean.
  std::uint64_t max_p = 0;
  std::uint32_t src = 0;
  bool have_active = false;
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    if (part[lane] == 0 || state_[base + lane] != MemberState::kActive) continue;
    have_active = true;
    if (prefix[lane] > max_p) {
      max_p = prefix[lane];
      src = lane;
    }
  }
  if (!have_active) {
    // No active replica participated: nothing is authoritative, so this
    // pass cannot vouch for any non-active lane it read here.
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      if (part[lane] != 0) scrub_clean_[base + lane] = 0;
    }
    *content = false;
    return done;
  }
  if (max_p == 0) {
    // Active content ends before this row. A non-active lane with
    // content here holds a stale tail (a reset or rewrite it missed) —
    // flag it so it is neither readmitted nor ever used as a source.
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      const std::uint32_t m = base + lane;
      if (part[lane] != 0 && state_[m] != MemberState::kActive &&
          prefix[lane] > 0) {
        RecordMismatch(logical, row, m);
        scrub_clean_[m] = 0;
      }
    }
    *content = false;
    return done;
  }
  *content = true;

  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    if (part[lane] == 0 || lane == src) continue;
    const std::uint32_t m = base + lane;
    bool diverged = false;
    const std::uint64_t common = std::min(prefix[lane], max_p);
    for (std::uint64_t j = 0; j < common; ++j) {
      if (toks[lane][j] != toks[src][j]) {
        // Readable-but-different content on append-only media cannot be
        // rewritten in place; count and log it instead.
        RecordMismatch(logical, row, m);
        scrub_clean_[m] = 0;
        diverged = true;
        break;
      }
    }
    if (!diverged && prefix[lane] > max_p) {
      // Content beyond the longest active replica: only a non-active
      // lane can get here (src is the active maximum), and the excess is
      // stale by definition.
      RecordMismatch(logical, row, m);
      scrub_clean_[m] = 0;
      diverged = true;
    }
    if (diverged || prefix[lane] >= max_p || scrub_clean_[m] == 0) continue;
    // The replica's durable content ends inside this row — the
    // signature of a survived power cut. Append the missing slots at
    // its write pointer from the longest replica.
    auto w = members_[m]->Write(IoRequest{
        row_off + prefix[lane] * align_, (max_p - prefix[lane]) * align_, now,
        std::span<const std::uint64_t>(toks[src].data() + prefix[lane],
                                       max_p - prefix[lane]),
        /*want_tokens=*/false,
                  IoClass::kMaintenance});
    if (w.ok()) {
      red_.scrub_repaired_slots += max_p - prefix[lane];
      done = Later(done, w.value().done);
    } else {
      RecordMismatch(logical, row, m);
      scrub_clean_[m] = 0;
    }
  }
  return done;
}

Result<SimTime> RedundantVolume::ScrubRowParity(std::uint64_t logical,
                                                std::uint64_t row, SimTime now,
                                                bool* content) {
  const std::uint32_t base = GroupBase(logical);
  const std::uint64_t zr = MemberRow(logical);
  const std::uint64_t row_off =
      zr * member_info_.zone_size_bytes + row * stripe_;
  const std::uint64_t slots = stripe_ / align_;
  SimTime done = now;

  bool all_online = true;
  std::vector<std::uint64_t> prefix(group_, 0);
  std::vector<std::vector<std::uint64_t>> toks(group_);
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    const std::uint32_t m = base + lane;
    if (members_[m]->info().health == DeviceHealth::kOffline) {
      scrub_clean_[m] = 0;
      all_online = false;
      continue;
    }
    auto res = members_[m]->Read(
        IoRequest{row_off, stripe_, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
    if (res.ok()) {
      prefix[lane] = slots;
      toks[lane] = std::move(res.value().tokens);
      done = Later(done, res.value().done);
      continue;
    }
    if (!Reconstructable(res.status().code())) return res.status();
    prefix[lane] = ProbePrefix(m, row_off, stripe_, now, &done);
    if (prefix[lane] > 0) {
      auto rr = members_[m]->Read(IoRequest{row_off, prefix[lane] * align_, now,
                                            {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
      if (rr.ok()) {
        toks[lane] = std::move(rr.value().tokens);
        done = Later(done, rr.value().done);
      } else {
        prefix[lane] = 0;
        scrub_clean_[m] = 0;
      }
    }
  }

  std::uint64_t max_p = 0, min_p = slots;
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    max_p = std::max(max_p, prefix[lane]);
    min_p = std::min(min_p, prefix[lane]);
  }
  if (max_p == 0) {
    *content = false;
    return done;
  }
  *content = true;
  if (!all_online) return done;  // Cannot verify or repair without every lane.

  // Repair authority is bounded by the active lanes: a failed-but-online
  // lane may hold a stale tail (e.g. a zone reset issued while it was
  // unreachable), which XOR reconstruction would launder into its peers.
  std::uint64_t active_max = 0;
  bool any_active = false;
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    if (state_[base + lane] != MemberState::kActive) continue;
    any_active = true;
    active_max = std::max(active_max, prefix[lane]);
  }
  if (!any_active) {
    // No authority at all; nothing read here is verifiable.
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      scrub_clean_[base + lane] = 0;
    }
    *content = false;
    return done;
  }
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    const std::uint32_t m = base + lane;
    if (state_[m] != MemberState::kActive && prefix[lane] > active_max) {
      RecordMismatch(logical, row, m);
      scrub_clean_[m] = 0;
    }
  }
  if (active_max == 0) {
    *content = false;  // Active content ends before this row.
    return done;
  }

  // Where every lane is present the row must XOR to zero, slot by slot.
  for (std::uint64_t j = 0; j < min_p; ++j) {
    std::uint64_t acc = 0;
    for (std::uint32_t lane = 0; lane < group_; ++lane) acc ^= toks[lane][j];
    if (acc != 0) {
      RecordMismatch(logical, row, base);
      for (std::uint32_t lane = 0; lane < group_; ++lane) {
        scrub_clean_[base + lane] = 0;  // Cannot tell which lane lies.
      }
      break;
    }
  }

  std::uint32_t short_lanes = 0, short_lane = 0;
  for (std::uint32_t lane = 0; lane < group_; ++lane) {
    if (prefix[lane] < max_p) {
      ++short_lanes;
      short_lane = lane;
    }
  }
  if (short_lanes == 1) {
    // The W-1 source lanes must all be active: XOR with a non-active
    // lane's tokens would append reconstructed-from-stale data.
    bool sources_active = true;
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      if (lane != short_lane && state_[base + lane] != MemberState::kActive) {
        sources_active = false;
      }
    }
    const std::uint32_t m = base + short_lane;
    if (sources_active && scrub_clean_[m] != 0) {
      // Exactly one lagging lane: its missing slots are the XOR of the
      // other W-1, appended at its write pointer.
      const std::uint64_t nmiss = max_p - prefix[short_lane];
      std::vector<std::uint64_t> rec(nmiss, 0);
      for (std::uint32_t lane = 0; lane < group_; ++lane) {
        if (lane == short_lane) continue;
        for (std::uint64_t j = 0; j < nmiss; ++j) {
          rec[j] ^= toks[lane][prefix[short_lane] + j];
        }
      }
      auto w = members_[m]->Write(
          IoRequest{row_off + prefix[short_lane] * align_, nmiss * align_, now,
                    std::span<const std::uint64_t>(rec), /*want_tokens=*/false,
                  IoClass::kMaintenance});
      if (w.ok()) {
        red_.scrub_repaired_slots += nmiss;
        done = Later(done, w.value().done);
      } else {
        RecordMismatch(logical, row, m);
        scrub_clean_[m] = 0;
      }
    }
  } else if (short_lanes >= 2) {
    // Two lanes short of the same row: single parity cannot reconstruct
    // either — this is the double-fault data-loss case; log it.
    RecordMismatch(logical, row, base);
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      if (prefix[lane] < max_p) scrub_clean_[base + lane] = 0;
    }
  }
  return done;
}

Result<SimTime> RedundantVolume::ScrubConventional(SimTime now, bool* content) {
  *content = true;  // Conventional scans the whole span; no content end.
  const std::uint64_t off = scrub_off_;
  const std::uint64_t chunk = std::min(stripe_, member_span_ - off);
  const std::uint64_t slots = chunk / align_;
  const std::uint32_t n = static_cast<std::uint32_t>(members_.size());
  SimTime done = now;

  // Conventional space has no prefix property — any slot can be mapped
  // or unmapped independently — so classification is per slot.
  std::vector<std::vector<std::uint64_t>> toks(n);
  std::vector<std::vector<std::uint8_t>> have(n);
  std::vector<std::uint8_t> part(n, 0);
  for (std::uint32_t m = 0; m < n; ++m) {
    if (members_[m]->info().health == DeviceHealth::kOffline) {
      scrub_clean_[m] = 0;
      continue;
    }
    part[m] = 1;
    toks[m].assign(slots, 0);
    have[m].assign(slots, 0);
    auto res =
        members_[m]->Read(IoRequest{off, chunk, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
    if (res.ok()) {
      for (std::uint64_t j = 0; j < slots; ++j) {
        toks[m][j] = res.value().tokens[j];
        have[m][j] = 1;
      }
      done = Later(done, res.value().done);
      continue;
    }
    if (!Reconstructable(res.status().code())) return res.status();
    for (std::uint64_t j = 0; j < slots; ++j) {
      auto sr = members_[m]->Read(IoRequest{off + j * align_, align_, now, {},
                                            /*want_tokens=*/true,
                  IoClass::kMaintenance});
      if (sr.ok()) {
        toks[m][j] = sr.value().tokens[0];
        have[m][j] = 1;
        done = Later(done, sr.value().done);
      } else if (!Reconstructable(sr.status().code())) {
        return sr.status();
      }
    }
  }

  const std::uint64_t chunk_idx = off / stripe_;
  for (std::uint64_t j = 0; j < slots; ++j) {
    // The slot authority is the first ACTIVE member holding it: a failed
    // member's content may predate degraded-mode writes, and must never
    // overwrite what an active replica acknowledged. A non-active
    // member's content only fills slots no active member has.
    std::int32_t src = -1;
    for (std::uint32_t m = 0; m < n; ++m) {
      if (part[m] != 0 && have[m][j] != 0 &&
          state_[m] == MemberState::kActive) {
        src = static_cast<std::int32_t>(m);
        break;
      }
    }
    const bool src_active = src >= 0;
    if (src < 0) {
      for (std::uint32_t m = 0; m < n; ++m) {
        if (part[m] != 0 && have[m][j] != 0) {
          src = static_cast<std::int32_t>(m);
          break;
        }
      }
    }
    if (src < 0) continue;  // Legitimately unmapped on every replica.
    for (std::uint32_t m = 0; m < n; ++m) {
      if (part[m] == 0 || static_cast<std::int32_t>(m) == src) continue;
      const bool stale =
          have[m][j] != 0 &&
          toks[m][j] != toks[static_cast<std::uint32_t>(src)][j];
      if (have[m][j] != 0 && !stale) continue;
      if (stale) {
        RecordMismatch(0, chunk_idx, m);
        if (!src_active) {
          // Two non-active replicas disagree and no active replica has
          // the slot: there is no authority to repair from either way.
          scrub_clean_[m] = 0;
          scrub_clean_[static_cast<std::uint32_t>(src)] = 0;
          continue;
        }
      }
      // Conventional media overwrites in place, so both a missing and a
      // divergent slot are repairable.
      auto w = members_[m]->Write(IoRequest{
          off + j * align_, align_, now,
          std::span<const std::uint64_t>(
              &toks[static_cast<std::uint32_t>(src)][j], 1),
          /*want_tokens=*/false,
                  IoClass::kMaintenance});
      if (w.ok()) {
        red_.scrub_repaired_slots++;
        done = Later(done, w.value().done);
      } else {
        if (!stale) RecordMismatch(0, chunk_idx, m);
        scrub_clean_[m] = 0;
      }
    }
  }
  return done;
}

Result<SimTime> RedundantVolume::TickRebuild(SimTime now) {
  SimTime done = now;
  const std::uint64_t mzs = member_info_.zone_size_bytes;

  for (std::uint32_t budget = rows_per_tick_; budget > 0; --budget) {
    if (rebuild_member_ < 0) break;  // A leg failure latched the fresh member.
    const std::uint32_t m = static_cast<std::uint32_t>(rebuild_member_);
    if (zone_bytes_ != 0) {
      if (rebuild_phase_ == 0) {
        if (rebuild_zone_ >= rows_) {
          rebuild_phase_ = 1;
          rebuild_verify_zone_ = 0;
          continue;
        }
        bool content = true;
        auto r = RebuildRow(now, &content);
        if (!r.ok()) return r;
        done = Later(done, r.value());
        if (!content || rebuild_off_ >= mzs) {
          // Zone complete: flush before moving on so a later cut can
          // only tear the zone under copy, never a finished one.
          auto f = members_[m]->Flush(now);
          if (f.ok()) done = Later(done, f.value());
          rebuild_zone_++;
          rebuild_off_ = 0;
          rebuild_fail_streak_ = 0;
        }
      } else if (rebuild_phase_ == 1) {
        if (rebuild_verify_zone_ >= rows_) {
          auto f = members_[m]->Flush(now);
          if (!f.ok()) return f.status();
          done = Later(done, f.value());
          state_[m] = MemberState::kActive;
          rebuild_member_ = -1;
          red_.rebuilds_completed++;
          return done;
        }
        bool hole = false;
        auto r = VerifyRebuildZone(now, &hole);
        if (!r.ok()) return r;
        done = Later(done, r.value());
        if (hole) {
          rebuild_phase_ = 2;  // Re-copy from the shortfall.
        } else {
          rebuild_verify_zone_++;
        }
      } else {  // Phase 2: re-copy the torn zone, then resume the sweep.
        bool content = true;
        auto r = RebuildRow(now, &content);
        if (!r.ok()) return r;
        done = Later(done, r.value());
        if (!content || rebuild_off_ >= mzs) {
          auto f = members_[m]->Flush(now);
          if (f.ok()) done = Later(done, f.value());
          rebuild_phase_ = 1;  // Re-check the same zone, then continue.
          rebuild_off_ = 0;
          rebuild_fail_streak_ = 0;
        }
      }
    } else {
      if (rebuild_phase_ == 0) {
        if (rebuild_off_ >= member_span_) {
          rebuild_phase_ = 1;
          rebuild_off_ = 0;
          continue;
        }
        bool content = true;
        auto r = RebuildConventionalChunk(now, &content);
        if (!r.ok()) return r;
        done = Later(done, r.value());
        rebuild_off_ += stripe_;
      } else {
        if (rebuild_off_ >= member_span_) {
          auto f = members_[m]->Flush(now);
          if (!f.ok()) return f.status();
          done = Later(done, f.value());
          state_[m] = MemberState::kActive;
          rebuild_member_ = -1;
          red_.rebuilds_completed++;
          return done;
        }
        auto r = VerifyConventionalChunk(now);
        if (!r.ok()) return r;
        done = Later(done, r.value());
        rebuild_off_ += stripe_;
      }
    }
  }

  if (rebuild_member_ >= 0) {
    // Tick-boundary durability point: a power cut between ticks can only
    // regress the fresh member to a flushed row prefix, never a torn one.
    auto f = members_[static_cast<std::uint32_t>(rebuild_member_)]->Flush(now);
    if (!f.ok()) return f.status();
    done = Later(done, f.value());
  }
  return done;
}

Status RedundantVolume::SourceZoneSlots(std::uint32_t zr, SimTime now,
                                        std::uint64_t* slots, SimTime* done) {
  const std::uint32_t m = static_cast<std::uint32_t>(rebuild_member_);
  const std::uint32_t base = (m / group_) * group_;
  const std::uint64_t mzs = member_info_.zone_size_bytes;
  const std::uint64_t zbase = static_cast<std::uint64_t>(zr) * mzs;
  if (layout_ == RedundancyLayout::kMirror) {
    std::uint64_t best = 0;
    bool any = false;
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      const std::uint32_t pm = base + lane;
      if (pm == m || state_[pm] != MemberState::kActive) continue;
      if (members_[pm]->info().health == DeviceHealth::kOffline) {
        return Status::FailedPrecondition("rebuild source is powered off");
      }
      any = true;
      best = std::max(best, ProbePrefix(pm, zbase, mzs, now, done));
    }
    if (!any) return Status::FailedPrecondition("no surviving source for rebuild");
    *slots = best;
  } else {
    std::uint64_t mn = mzs / align_;
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      const std::uint32_t pm = base + lane;
      if (pm == m) continue;
      if (state_[pm] != MemberState::kActive) {
        return Status::FailedPrecondition(
            "parity rebuild needs every other lane of the set");
      }
      if (members_[pm]->info().health == DeviceHealth::kOffline) {
        return Status::FailedPrecondition("rebuild source is powered off");
      }
      mn = std::min(mn, ProbePrefix(pm, zbase, mzs, now, done));
    }
    *slots = mn;
  }
  return Status::Ok();
}

Status RedundantVolume::FreshWriteFailed(Status leg, SimTime now, SimTime* done) {
  const std::uint32_t m = static_cast<std::uint32_t>(rebuild_member_);
  if (members_[m]->info().health == DeviceHealth::kOffline) {
    return leg;  // Caller must Recover() the member and Tick again.
  }
  const std::uint32_t zr =
      rebuild_phase_ == 2 ? rebuild_verify_zone_ : rebuild_zone_;
  const std::uint64_t mzs = member_info_.zone_size_bytes;
  rebuild_fail_streak_++;
  if (rebuild_fail_streak_ == 1) {
    // A survived power cut regressed the zone below the cursor: resync
    // to the durable prefix and continue from there — never a torn row.
    rebuild_off_ =
        ProbePrefix(m, static_cast<std::uint64_t>(zr) * mzs, mzs, now, done) *
        align_;
    red_.rebuild_zone_restarts++;
    return Status::Ok();
  }
  if (rebuild_fail_streak_ == 2) {
    auto r = members_[m]->ResetZone(ZoneId{zr}, now);
    if (!r.ok()) return r.status();
    *done = Later(*done, r.value());
    rebuild_off_ = 0;
    red_.rebuild_zone_restarts++;
    return Status::Ok();
  }
  return Status::Internal("rebuild cannot make progress on member zone " +
                          std::to_string(zr));
}

Result<SimTime> RedundantVolume::RebuildRow(SimTime now, bool* content) {
  const std::uint32_t m = static_cast<std::uint32_t>(rebuild_member_);
  const std::uint32_t zr =
      rebuild_phase_ == 2 ? rebuild_verify_zone_ : rebuild_zone_;
  const std::uint32_t base = (m / group_) * group_;
  const std::uint64_t mzs = member_info_.zone_size_bytes;
  const std::uint64_t off = rebuild_off_;
  const std::uint64_t span = std::min(stripe_ - off % stripe_, mzs - off);
  const std::uint64_t moff = static_cast<std::uint64_t>(zr) * mzs + off;
  SimTime done = now;
  *content = true;

  std::vector<std::uint64_t> data;
  if (layout_ == RedundancyLayout::kMirror) {
    std::int32_t peer0 = -1;
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      const std::uint32_t pm = base + lane;
      if (pm == m || state_[pm] != MemberState::kActive) continue;
      if (members_[pm]->info().health == DeviceHealth::kOffline) {
        return Status::FailedPrecondition("rebuild source is powered off");
      }
      if (peer0 < 0) peer0 = static_cast<std::int32_t>(pm);
    }
    if (peer0 < 0) {
      return Status::FailedPrecondition("no surviving source for rebuild");
    }
    auto res = members_[static_cast<std::uint32_t>(peer0)]->Read(
        IoRequest{moff, span, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
    if (res.ok()) {
      data = std::move(res.value().tokens);
      done = Later(done, res.value().done);
    } else if (!Reconstructable(res.status().code())) {
      return res.status();
    } else {
      // Near the content end (or a lagging first peer): take the row
      // from whichever surviving replica holds the most of it.
      std::uint64_t best = 0;
      std::int32_t bm = -1;
      for (std::uint32_t lane = 0; lane < group_; ++lane) {
        const std::uint32_t pm = base + lane;
        if (pm == m || state_[pm] != MemberState::kActive) continue;
        const std::uint64_t p = ProbePrefix(pm, moff, span, now, &done);
        if (p > best) {
          best = p;
          bm = static_cast<std::int32_t>(pm);
        }
      }
      if (best == 0) {
        *content = false;  // The zone's durable content ends here.
        return done;
      }
      auto rr = members_[static_cast<std::uint32_t>(bm)]->Read(
          IoRequest{moff, best * align_, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
      if (!rr.ok()) return rr.status();
      data = std::move(rr.value().tokens);
      done = Later(done, rr.value().done);
      if (best * align_ < span) *content = false;
    }
  } else {
    // Parity: the lost lane — data or parity alike — is the XOR of all
    // other lanes, bounded by the shortest surviving prefix.
    std::vector<std::vector<std::uint64_t>> lt;
    std::uint64_t min_p = span / align_;
    for (std::uint32_t lane = 0; lane < group_; ++lane) {
      const std::uint32_t pm = base + lane;
      if (pm == m) continue;
      if (state_[pm] != MemberState::kActive) {
        return Status::FailedPrecondition(
            "parity rebuild needs every other lane of the set");
      }
      if (members_[pm]->info().health == DeviceHealth::kOffline) {
        return Status::FailedPrecondition("rebuild source is powered off");
      }
      auto res = members_[pm]->Read(
          IoRequest{moff, span, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
      if (res.ok()) {
        lt.push_back(std::move(res.value().tokens));
        done = Later(done, res.value().done);
        continue;
      }
      if (!Reconstructable(res.status().code())) return res.status();
      const std::uint64_t p = ProbePrefix(pm, moff, span, now, &done);
      min_p = std::min(min_p, p);
      if (p > 0) {
        auto rr = members_[pm]->Read(
            IoRequest{moff, p * align_, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
        if (!rr.ok()) return rr.status();
        lt.push_back(std::move(rr.value().tokens));
        done = Later(done, rr.value().done);
      } else {
        lt.emplace_back();
      }
    }
    if (min_p == 0) {
      *content = false;
      return done;
    }
    data.assign(min_p, 0);
    for (const auto& v : lt) {
      for (std::uint64_t j = 0; j < min_p; ++j) data[j] ^= v[j];
    }
    if (min_p * align_ < span) *content = false;
  }

  auto w = members_[m]->Write(IoRequest{
      moff, data.size() * align_, now, std::span<const std::uint64_t>(data),
      /*want_tokens=*/false,
                  IoClass::kMaintenance});
  if (!w.ok()) {
    if (Status st = FreshWriteFailed(w.status(), now, &done); !st.ok()) {
      return st;
    }
    *content = true;  // Cursor was resynced; retry from there next round.
    return done;
  }
  rebuild_fail_streak_ = 0;
  done = Later(done, w.value().done);
  red_.rebuild_slots_copied += data.size();
  rebuild_off_ += data.size() * align_;
  return done;
}

Result<SimTime> RedundantVolume::VerifyRebuildZone(SimTime now, bool* hole) {
  const std::uint32_t m = static_cast<std::uint32_t>(rebuild_member_);
  const std::uint32_t zr = rebuild_verify_zone_;
  const std::uint64_t mzs = member_info_.zone_size_bytes;
  SimTime done = now;
  std::uint64_t src_slots = 0;
  if (Status st = SourceZoneSlots(zr, now, &src_slots, &done); !st.ok()) {
    return st;
  }
  const std::uint64_t fresh_slots =
      ProbePrefix(m, static_cast<std::uint64_t>(zr) * mzs, mzs, now, &done);
  if (fresh_slots < src_slots) {
    // A power cut tore rebuilt ground behind the cursor (programs from
    // one tick complete out of submission order across dies, so even a
    // zone-boundary flush cannot fully order durability). Re-enter the
    // copy phase at the durable prefix.
    *hole = true;
    rebuild_off_ = fresh_slots * align_;
    rebuild_fail_streak_ = 0;
    red_.rebuild_zone_restarts++;
  } else {
    *hole = false;
  }
  return done;
}

Result<SimTime> RedundantVolume::RebuildConventionalChunk(SimTime now,
                                                          bool* content) {
  *content = true;
  const std::uint32_t m = static_cast<std::uint32_t>(rebuild_member_);
  const std::uint64_t off = rebuild_off_;
  const std::uint64_t chunk = std::min(stripe_, member_span_ - off);
  const std::uint64_t slots = chunk / align_;
  SimTime done = now;

  target_scratch_.clear();
  for (std::uint32_t pm = 0; pm < members_.size(); ++pm) {
    if (pm == m || state_[pm] != MemberState::kActive) continue;
    if (members_[pm]->info().health == DeviceHealth::kOffline) {
      return Status::FailedPrecondition("rebuild source is powered off");
    }
    target_scratch_.push_back(pm);
  }
  if (target_scratch_.empty()) {
    return Status::FailedPrecondition("no surviving source for rebuild");
  }

  auto res = members_[target_scratch_[0]]->Read(
      IoRequest{off, chunk, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
  if (res.ok()) {
    auto w = members_[m]->Write(
        IoRequest{off, chunk, now,
                  std::span<const std::uint64_t>(res.value().tokens),
                  /*want_tokens=*/false,
                  IoClass::kMaintenance});
    if (!w.ok()) return w.status();
    done = Later(done, res.value().done);
    done = Later(done, w.value().done);
    red_.rebuild_slots_copied += slots;
    return done;
  }
  if (!Reconstructable(res.status().code())) return res.status();

  // Sparse ground: copy slot by slot, first replica that has it wins;
  // slots unmapped everywhere stay unmapped on the fresh member too.
  for (std::uint64_t j = 0; j < slots; ++j) {
    for (std::uint32_t pm : target_scratch_) {
      auto sr = members_[pm]->Read(
          IoRequest{off + j * align_, align_, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
      if (sr.ok()) {
        auto w = members_[m]->Write(IoRequest{
            off + j * align_, align_, now,
            std::span<const std::uint64_t>(&sr.value().tokens[0], 1),
            /*want_tokens=*/false,
                  IoClass::kMaintenance});
        if (!w.ok()) return w.status();
        done = Later(done, sr.value().done);
        done = Later(done, w.value().done);
        red_.rebuild_slots_copied++;
        break;
      }
      if (!Reconstructable(sr.status().code())) return sr.status();
    }
  }
  return done;
}

Result<SimTime> RedundantVolume::VerifyConventionalChunk(SimTime now) {
  const std::uint32_t m = static_cast<std::uint32_t>(rebuild_member_);
  const std::uint64_t off = rebuild_off_;
  const std::uint64_t chunk = std::min(stripe_, member_span_ - off);
  const std::uint64_t slots = chunk / align_;
  SimTime done = now;

  target_scratch_.clear();
  for (std::uint32_t pm = 0; pm < members_.size(); ++pm) {
    if (pm == m || state_[pm] != MemberState::kActive) continue;
    if (members_[pm]->info().health == DeviceHealth::kOffline) {
      return Status::FailedPrecondition("rebuild source is powered off");
    }
    target_scratch_.push_back(pm);
  }
  if (target_scratch_.empty()) {
    return Status::FailedPrecondition("no surviving source for rebuild");
  }

  for (std::uint64_t j = 0; j < slots; ++j) {
    std::uint64_t want = 0;
    bool mapped = false;
    for (std::uint32_t pm : target_scratch_) {
      auto sr = members_[pm]->Read(
          IoRequest{off + j * align_, align_, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
      if (sr.ok()) {
        want = sr.value().tokens[0];
        mapped = true;
        done = Later(done, sr.value().done);
        break;
      }
      if (!Reconstructable(sr.status().code())) return sr.status();
    }
    if (!mapped) continue;
    auto fr = members_[m]->Read(
        IoRequest{off + j * align_, align_, now, {}, /*want_tokens=*/true,
                  IoClass::kMaintenance});
    bool repair = true;
    if (fr.ok()) {
      repair = fr.value().tokens[0] != want;
      done = Later(done, fr.value().done);
    } else if (!Reconstructable(fr.status().code())) {
      return fr.status();
    }
    if (!repair) continue;
    auto w = members_[m]->Write(
        IoRequest{off + j * align_, align_, now,
                  std::span<const std::uint64_t>(&want, 1),
                  /*want_tokens=*/false,
                  IoClass::kMaintenance});
    if (!w.ok()) return w.status();
    done = Later(done, w.value().done);
    red_.rebuild_slots_copied++;
  }
  return done;
}

}  // namespace conzone
