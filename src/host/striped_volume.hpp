// Host-side striped volume: one logical zoned (or conventional) address
// space over N member devices (DESIGN.md §6).
//
// The consumer stack the paper implies — a host striping I/O over
// several zoned devices — is modeled as a StorageDevice *composition*:
// a StripedVolume is itself a StorageDevice, so FioRunner, the sharded
// runner, benches and examples drive it unchanged.
//
// Geometry. Members are grouped into `sets` of `stripe_width` devices
// (width divides the member count; default width = all members).
// Logical zones are interleaved round-robin across the sets:
//
//   logical zone L  ->  set  s = L % num_sets
//                       row  r = L / num_sets     (zone index on members)
//
// and each logical zone is striped, `stripe_bytes` at a time,
// round-robin across its set's members — so one logical zone spans
// `stripe_width` member zones, all at member-zone row r. A logical
// zone is `stripe_width * member_zone_size` bytes.
//
// Routing. Writes and reads are split at stripe-unit boundaries and
// coalesced into at most one contiguous run per member, all submitted
// at the same simulated time: the members' internal resource timelines
// advance independently, which is exactly what makes them overlap.
// ResetZone fans out to every member that owns a stripe of the logical
// zone, Flush to every member; both complete at the max across members.
//
// Execution. With an attached fork-join Executor (set_executor), a
// multi-run fan-out forks one task per member sub-request across real
// cores — each member device is owned by exactly one in-flight task —
// and the results (completion timestamps, tokens, statuses) are merged
// strictly in run-submission order after the join barrier, so the
// outcome is bit-identical to the serial reference path at any thread
// count (tests/exec_test.cpp cross-checks this). Without an executor
// (the default) the same merge runs inline on the calling thread.
// Either way every member sub-request of a request is issued — a
// failing member does not shield later members from their sub-IOs,
// mirroring a real host that already has all stripe legs in flight —
// and a failure reports the lowest-run-index error, deterministically.
//
// Zone identity is typed at every boundary: the volume's own ZoneId
// values are *logical* zones, and member zones only travel as
// MemberZone{member, zone} — never as a raw index that could alias a
// logical id (the exact bug class PR 4's superblock fix came from).
//
// Conventional members (DeviceInfo::zone_size_bytes == 0) form a
// conventional volume: same striping over byte offsets, no zones, and
// ResetZone is refused by the volume itself — gated on DeviceInfo, the
// documented conventional signal, never on a member's error code.
// Zoned and conventional members cannot mix.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "core/storage_device.hpp"

namespace conzone {

class Executor;

/// A zone on one member device, as opposed to a logical zone of the
/// volume. Keeping the two in distinct types makes accidental
/// logical/member aliasing a compile error at the routing boundary.
struct MemberZone {
  std::uint32_t member = 0;  ///< Member index within the volume.
  ZoneId zone;               ///< Zone in the member's own zone space.

  bool operator==(const MemberZone&) const = default;
};

struct StripedVolumeOptions {
  /// Stripe unit: consecutive runs of this many bytes go to consecutive
  /// members of the zone's set. Must divide the member zone size and be
  /// a multiple of the members' I/O alignment.
  std::uint64_t stripe_bytes = 64 * 1024;
  /// Members per stripe set (a logical zone spans this many members).
  /// 0 = all members. Must divide the member count.
  std::uint32_t stripe_width = 0;
};

class StripedVolume final : public StorageDevice {
 public:
  /// Validates member geometry (uniform zonedness, zone size and
  /// alignment; width divides the count) and takes ownership.
  static Result<std::unique_ptr<StripedVolume>> Create(
      std::vector<std::unique_ptr<StorageDevice>> members,
      const StripedVolumeOptions& options = {});

  DeviceInfo info() const override;
  Result<IoResult> Write(const IoRequest& req) override;
  Result<IoResult> Read(const IoRequest& req) override;
  Result<SimTime> ResetZone(ZoneId zone, SimTime now) override;
  Result<SimTime> Flush(SimTime now) override;
  StatsSnapshot Stats() const override;
  ReliabilityStats Reliability() const override;
  RecoveryStats Recovery() const override;

  /// Per-member breakdowns, member order. The merged Stats()/Reliability()
  /// flatten which member degraded; degraded-mode tests and the examples/
  /// studies use these to attribute failures to a member.
  std::vector<StatsSnapshot> PerMemberStats() const;
  std::vector<ReliabilityStats> PerMemberReliability() const;
  std::vector<RecoveryStats> PerMemberRecovery() const;

  /// Attach a fork-join executor: multi-run requests fork one task per
  /// member sub-request on it and merge after the join, in run order.
  /// Null (default) or a 1-thread executor keeps the serial reference
  /// path. Non-owning; the executor must outlive the volume. The volume
  /// itself must still be driven from one thread at a time.
  void set_executor(Executor* exec) { exec_ = exec; }
  Executor* executor() const { return exec_; }

  // --- Introspection (tests, tools) ---
  std::uint32_t num_members() const { return static_cast<std::uint32_t>(members_.size()); }
  std::uint32_t stripe_width() const { return width_; }
  std::uint64_t stripe_bytes() const { return stripe_; }
  StorageDevice& member(std::uint32_t i) { return *members_[i]; }
  const StorageDevice& member(std::uint32_t i) const { return *members_[i]; }

  /// The member zone that holds stripe lane `lane` (in [0, stripe_width))
  /// of logical zone `logical`. Zoned volumes only.
  MemberZone ToMemberZone(ZoneId logical, std::uint32_t lane) const;
  /// Inverse: the logical zone a member zone belongs to.
  ZoneId ToLogicalZone(const MemberZone& mz) const;

 private:
  /// One contiguous member-space run of a split request. A request
  /// touches each member in at most one run (stripe rows of one member
  /// are contiguous in its own address space).
  struct Run {
    std::uint32_t member;
    std::uint64_t offset;  ///< Member-space byte offset.
    std::uint64_t len;
  };

  StripedVolume(std::vector<std::unique_ptr<StorageDevice>> members,
                const StripedVolumeOptions& options, DeviceInfo member_info,
                std::uint32_t rows);

  /// Split `len` bytes at `rel` (zone-relative for zoned volumes,
  /// absolute for conventional) into per-member runs, ascending member
  /// order. `first_member`/`member_base` anchor the zone's set and row.
  void Split(std::uint64_t rel, std::uint64_t len, std::uint32_t first_member,
             std::uint64_t member_base);

  /// Resolve a request's set anchor; validates bounds and (zoned) the
  /// zone-crossing rule. On success fills first_member/member_base and
  /// the set-relative offset.
  Status Resolve(const IoRequest& req, std::uint32_t* first_member,
                 std::uint64_t* member_base, std::uint64_t* rel) const;

  std::vector<std::unique_ptr<StorageDevice>> members_;
  DeviceInfo member_info_;   ///< Common member geometry (name = first member's).
  std::uint64_t stripe_;     ///< Stripe unit bytes.
  std::uint32_t width_;      ///< Members per set.
  std::uint32_t num_sets_;   ///< members / width (1 for conventional).
  std::uint32_t rows_;       ///< Member zones consumed per member (zoned).
  std::uint64_t zone_bytes_; ///< Logical zone size (zoned; 0 otherwise).
  std::uint64_t member_span_;///< Striped bytes used per member (conventional).
  std::uint64_t align_;      ///< I/O alignment = token granularity.

  Executor* exec_ = nullptr;  ///< Fan-out backend; null = serial.

  // Per-request scratch, reused so the routing path is allocation-free
  // after warm-up (the volume never re-enters itself). During a
  // parallel fan-out, task i owns exactly run_status_[i]/run_done_[i]
  // and its own lane's lane_tokens_ slot — tasks share nothing.
  std::vector<Run> runs_;
  std::vector<std::vector<std::uint64_t>> lane_tokens_;  ///< Gather/scatter.
  std::vector<Status> run_status_;  ///< Per-task result slots (merge order).
  std::vector<SimTime> run_done_;
};

}  // namespace conzone
