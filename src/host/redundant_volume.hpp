// Host-side redundant volume: mirrored or single-parity layouts over N
// member devices, with degraded reads, an online scrub, and live member
// rebuild (DESIGN.md §8).
//
// StripedVolume (§6) scales capacity and bandwidth but dies with its
// weakest member: one failed or power-cut device makes the whole logical
// address space unreadable. RedundantVolume is the robustness
// counterpart — the btrfs scrub/replace story over the same typed
// MemberZone machinery and the same deterministic fork-join executor:
//
//   * kMirror — members form groups of R replicas; every stripe unit is
//     written to all R members of its group at identical member offsets.
//     Logical zones interleave round-robin across the N/R groups, so a
//     logical zone is exactly one member zone, R times.
//   * kParity — members form sets of W lanes (W >= 3). Each stripe row
//     holds W-1 data units plus one XOR parity unit on a rotating lane
//     (parity lane of row k is W-1-(k%W), RAID-5 style), so one member's
//     loss costs 1/W of capacity, not half. A logical zone spans W member
//     zones and holds (W-1) * member_zone_size data bytes. Because every
//     lane is written in every row, parity volumes accept writes only in
//     whole stripe-row multiples (full-stripe writes — the standard ZNS
//     answer to the read-modify-write hole).
//
// Degraded reads. A member is excluded from service once it is latched
// failed — explicitly (MarkFailed), by a failed write leg, or because a
// replacement is rebuilding it. Reads that hit a failed/lagging member
// (media error, powered-off FailedPrecondition, write-pointer-regressed
// OutOfRange) are reconstructed: mirror reads fail over to the next
// replica; parity reads XOR the row's surviving units. The request still
// succeeds, the per-IO IoResult::reconstructed_units signals it, and
// RedundancyStats aggregates it. kInvalidArgument/kInternal/kUnimplemented
// are volume bugs and propagate.
//
// Online scrub. StartScrub + Tick walk the volume stripe row by stripe
// row at a configured rows-per-tick pace, interleaved with foreground
// traffic by the caller: replicas are compared token for token, parity
// rows are checked to XOR to zero, and a lagging member (its durable
// prefix ends inside the row — the signature of a survived power cut) is
// repaired by appending the reconstructed slots at its write pointer.
// Repair authority is strictly the kActive members: a failed member may
// hold stale content (writes and zone resets issued while it was out of
// service never reached it), so its tokens never overwrite or extend an
// active replica's — content found only on non-active members is logged
// as a mismatch and blocks that member's readmission (ResetZone also
// best-effort-propagates to failed-but-online members so their zones do
// not go stale in the first place). Readable-but-divergent content on
// zoned members cannot be rewritten in place (append-only media); it is
// counted and logged deterministically in scrub_log() instead.
// Conventional mirrors repair by overwrite.
//
// Live rebuild. ReplaceMember(i, fresh) swaps in a fresh device and
// rebuilds member i's content zone by zone, stripe row by stripe row,
// from peers (mirror) or by XOR of the other lanes (parity), while the
// volume keeps serving foreground traffic: writes land on the fresh
// member for zones already rebuilt and are recopied later for zones
// ahead of the cursor; reads treat the rebuilding member as absent. Each
// Tick ends with a Flush of the fresh member, so a power cut at a tick
// boundary recovers to exactly the rebuilt prefix; a cut mid-tick
// regresses the fresh member to a durable row prefix and the next Tick
// resynchronizes by probing the readable prefix and continuing from
// there — never a torn row (the PR 4 crash checker's prefix rule, lifted
// to the volume).
//
// Determinism. All fan-out runs on the attached Executor under the §7
// contract (per-task result slots, merge in submission order), replica
// selection and reconstruction orders are functions of the request
// alone, and scrub/rebuild advance in fixed cursor order — so every
// outcome is bit-identical across thread counts and same-seed reruns.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "core/storage_device.hpp"
#include "host/striped_volume.hpp"  // MemberZone

namespace conzone {

class Executor;

enum class RedundancyLayout {
  kMirror,  ///< R-way replication per stripe unit.
  kParity,  ///< Rotating single-parity (RAID-5-style XOR) per stripe row.
};

enum class MemberState {
  kActive,      ///< Serving reads and writes.
  kFailed,      ///< Excluded from service; awaiting ReplaceMember.
  kRebuilding,  ///< Fresh device being filled; writes join per rebuilt zone.
};

struct RedundantVolumeOptions {
  RedundancyLayout layout = RedundancyLayout::kMirror;
  /// Stripe unit: reconstruction, scrub and rebuild all advance in units
  /// of this many bytes. Must divide the member zone size and be a
  /// multiple of the members' I/O alignment.
  std::uint64_t stripe_bytes = 64 * 1024;
  /// kMirror: replicas per mirror group (0 = all members in one group).
  /// Must divide the member count and be >= 2.
  std::uint32_t replicas = 0;
  /// kParity: lanes per stripe set, parity included (0 = all members).
  /// Must divide the member count and be >= 3.
  std::uint32_t stripe_width = 0;
  /// Background quantum: stripe rows verified (scrub) or copied
  /// (rebuild) per Tick().
  std::uint32_t rows_per_tick = 8;
};

/// One deterministic scrub finding: replica/parity disagreement that
/// could not be repaired in place (zoned media is append-only).
struct ScrubMismatch {
  ZoneId logical;        ///< Logical zone of the divergent row.
  std::uint32_t row;     ///< Stripe row index within the zone.
  std::uint32_t member;  ///< Divergent member (parity rows: the set's first).

  bool operator==(const ScrubMismatch&) const = default;
};

class RedundantVolume final : public StorageDevice {
 public:
  /// Validates member geometry (uniform zonedness, zone size, alignment;
  /// group/set arithmetic; parity requires zoned members) and takes
  /// ownership.
  static Result<std::unique_ptr<RedundantVolume>> Create(
      std::vector<std::unique_ptr<StorageDevice>> members,
      const RedundantVolumeOptions& options = {});

  DeviceInfo info() const override;
  Result<IoResult> Write(const IoRequest& req) override;
  Result<IoResult> Read(const IoRequest& req) override;
  Result<SimTime> ResetZone(ZoneId zone, SimTime now) override;
  Result<SimTime> Flush(SimTime now) override;
  StatsSnapshot Stats() const override;
  ReliabilityStats Reliability() const override;
  RecoveryStats Recovery() const override;

  /// Volume-level redundancy accounting (degraded service, scrub,
  /// rebuild). Member-level fault accounting stays in Reliability().
  const RedundancyStats& Redundancy() const { return red_; }

  /// Per-member breakdowns, member order — the merged Stats()/
  /// Reliability() flatten which member failed (same satellite accessor
  /// as StripedVolume).
  std::vector<StatsSnapshot> PerMemberStats() const;
  std::vector<ReliabilityStats> PerMemberReliability() const;
  std::vector<RecoveryStats> PerMemberRecovery() const;

  /// Attach a fork-join executor for per-member fan-out (writes, parity
  /// read legs). Null (default) or 1 thread = serial reference path.
  /// Non-owning; must outlive the volume.
  void set_executor(Executor* exec) { exec_ = exec; }
  Executor* executor() const { return exec_; }

  // --- Member failure & replacement ---

  /// Latch member `i` failed: it receives no further I/O and reads are
  /// served degraded. Idempotent.
  Status MarkFailed(std::uint32_t i);

  /// Swap in a fresh device for member `i` (failed or not) and start a
  /// live rebuild. The fresh device must match the member geometry and
  /// be empty; one rebuild at a time; an active scrub is cancelled. The
  /// old device is destroyed. Rebuild work advances via Tick().
  Status ReplaceMember(std::uint32_t i, std::unique_ptr<StorageDevice> fresh,
                       SimTime now);

  // --- Background work (scrub / rebuild), tick-scheduled ---

  /// Begin a full-volume scrub pass from zone 0. Fails if a rebuild is
  /// active or a scrub is already running.
  Status StartScrub(SimTime now);

  /// Advance the active background job (rebuild has priority over scrub)
  /// by `rows_per_tick` stripe rows and flush the members it wrote.
  /// Returns the simulated completion time of the work performed (== now
  /// when idle). A powered-off member surfaces as an error; recover it
  /// and call Tick again — the rebuild resynchronizes itself.
  Result<SimTime> Tick(SimTime now);

  bool scrub_active() const { return scrub_active_; }
  bool rebuild_active() const { return rebuild_member_ >= 0; }
  /// Member under rebuild (-1 when none).
  std::int32_t rebuild_member() const { return rebuild_member_; }
  /// Member zones fully rebuilt so far (== member zone rows when done).
  std::uint32_t rebuild_zones_done() const { return rebuild_zone_; }

  /// Unrepairable divergences found by scrub, in deterministic walk
  /// order (capped; the scrub_mismatches counter keeps counting).
  const std::vector<ScrubMismatch>& scrub_log() const { return scrub_log_; }

  // --- Introspection (tests, tools) ---
  std::uint32_t num_members() const { return static_cast<std::uint32_t>(members_.size()); }
  RedundancyLayout layout() const { return layout_; }
  /// Mirror: replicas per group. Parity: lanes per set (parity included).
  std::uint32_t group_size() const { return group_; }
  std::uint64_t stripe_bytes() const { return stripe_; }
  StorageDevice& member(std::uint32_t i) { return *members_[i]; }
  const StorageDevice& member(std::uint32_t i) const { return *members_[i]; }
  MemberState member_state(std::uint32_t i) const { return state_[i]; }

  /// The member zone holding lane `lane` (mirror: replica index) of
  /// logical zone `logical`. Zoned volumes only.
  MemberZone ToMemberZone(ZoneId logical, std::uint32_t lane) const;
  /// Inverse: the logical zone a member zone belongs to.
  ZoneId ToLogicalZone(const MemberZone& mz) const;
  /// Parity: the lane holding row k's parity unit (rotates per row).
  std::uint32_t ParityLane(std::uint64_t row) const {
    return group_ - 1 - static_cast<std::uint32_t>(row % group_);
  }

 private:
  RedundantVolume(std::vector<std::unique_ptr<StorageDevice>> members,
                  const RedundantVolumeOptions& options, DeviceInfo member_info,
                  std::uint32_t rows);

  // --- Routing helpers ---
  /// Validate a request and resolve its logical zone / group anchor.
  Status Resolve(const IoRequest& req, bool write, std::uint64_t* logical,
                 std::uint64_t* in_zone) const;
  /// First member index of logical zone `logical`'s group/set.
  std::uint32_t GroupBase(std::uint64_t logical) const {
    return static_cast<std::uint32_t>(logical % num_groups_) * group_;
  }
  /// Member zone row of logical zone `logical`.
  std::uint64_t MemberRow(std::uint64_t logical) const {
    return logical / num_groups_;
  }
  /// True when `code` signals a failed/lagging member whose data the
  /// volume may reconstruct (vs a caller/volume bug that must propagate).
  static bool Reconstructable(StatusCode code);
  /// Latch a member failed (idempotent) and count it.
  void LatchFailed(std::uint32_t m);
  /// Reads are served only by fully-active members: a rebuilding member
  /// may hold holes until its completion verify sweep passes, so it never
  /// serves foreground reads.
  bool Readable(std::uint32_t m) const { return state_[m] == MemberState::kActive; }
  /// Writes include a rebuilding member once the target is behind the
  /// copy cursor (`where` = member zone row when zoned, byte offset when
  /// conventional), so rebuilt ground stays in sync with the peers.
  bool Writable(std::uint32_t m, std::uint64_t where) const;

  /// Default token the volume materializes when the host writes without
  /// tokens, so replica comparison and parity XOR are well-defined
  /// across heterogeneous member types.
  std::uint64_t VolumeToken(std::uint64_t logical_page) const {
    return 0x9ED00000ull ^ logical_page;
  }

  // --- Data-path bodies ---
  Result<IoResult> WriteMirror(const IoRequest& req, std::uint64_t logical,
                               std::uint64_t in_zone);
  Result<IoResult> WriteParity(const IoRequest& req, std::uint64_t logical,
                               std::uint64_t in_zone);
  Result<IoResult> ReadMirror(const IoRequest& req, std::uint64_t logical,
                              std::uint64_t in_zone);
  Result<IoResult> ReadParity(const IoRequest& req, std::uint64_t logical,
                              std::uint64_t in_zone);
  /// Reconstruct the byte range [unit_off, unit_off + len) of lane
  /// `lost` in stripe row `row` of logical zone `logical` by XOR of the
  /// other lanes. Fills `tokens_out` (always gathered) and returns the
  /// latest peer completion.
  Result<SimTime> ReconstructParity(std::uint64_t logical, std::uint64_t row,
                                    std::uint32_t lost, std::uint64_t unit_off,
                                    std::uint64_t len, SimTime now,
                                    std::vector<std::uint64_t>* tokens_out);

  // --- Background work bodies ---
  Result<SimTime> TickScrub(SimTime now);
  Result<SimTime> TickRebuild(SimTime now);
  /// Scrub one stripe row; sets *content to false when the row is beyond
  /// every member's durable content (zone exhausted).
  Result<SimTime> ScrubRowMirror(std::uint64_t logical, std::uint64_t row,
                                 SimTime now, bool* content);
  Result<SimTime> ScrubRowParity(std::uint64_t logical, std::uint64_t row,
                                 SimTime now, bool* content);
  Result<SimTime> ScrubConventional(SimTime now, bool* content);
  /// Copy/reconstruct one stripe row of the zone under rebuild onto the
  /// fresh member; sets *content=false at the source's durable end.
  Result<SimTime> RebuildRow(SimTime now, bool* content);
  Result<SimTime> RebuildConventionalChunk(SimTime now, bool* content);
  /// Completion verify sweep, one zone per call: compare the fresh
  /// member's durable prefix against the source's; on a shortfall (a
  /// power cut tore rebuilt ground) re-enter the copy phase at the hole.
  Result<SimTime> VerifyRebuildZone(SimTime now, bool* hole);
  /// Conventional verify: re-compare one chunk slot by slot, repairing
  /// divergent/stale slots in place (conventional media overwrites).
  Result<SimTime> VerifyConventionalChunk(SimTime now);
  /// Durable content of the rebuild source for member zone row `zr`, in
  /// slots: mirror = best surviving replica's prefix, parity = the
  /// shortest prefix across the other lanes (the reconstructable bound).
  /// Fails if a source member is offline (caller must Recover it).
  Status SourceZoneSlots(std::uint32_t zr, SimTime now, std::uint64_t* slots,
                         SimTime* done);
  /// Handle a failed append to the fresh member: offline propagates;
  /// otherwise escalate probe-resync → zone reset → Internal.
  Status FreshWriteFailed(Status leg, SimTime now, SimTime* done);
  /// Readable 4 KiB slots of `m` in [base, base+span), probed slot by
  /// slot from `base` (the prefix property makes this the write pointer).
  std::uint64_t ProbePrefix(std::uint32_t m, std::uint64_t base,
                            std::uint64_t span, SimTime now, SimTime* done);
  void RecordMismatch(std::uint64_t logical, std::uint64_t row, std::uint32_t m);

  std::vector<std::unique_ptr<StorageDevice>> members_;
  std::vector<MemberState> state_;
  DeviceInfo member_info_;  ///< Common member geometry (name = first member's).
  RedundancyLayout layout_;
  std::uint64_t stripe_;      ///< Stripe unit bytes.
  std::uint32_t group_;       ///< Members per group (mirror) / set (parity).
  std::uint32_t num_groups_;  ///< members / group_.
  std::uint32_t rows_;        ///< Member zones consumed per member (zoned).
  std::uint64_t zone_bytes_;  ///< Logical zone size (zoned; 0 otherwise).
  std::uint64_t member_span_; ///< Mirrored bytes per member (conventional).
  std::uint64_t align_;       ///< I/O alignment = token granularity.
  std::uint32_t rows_per_tick_;  ///< Background quantum (stripe rows / Tick).

  Executor* exec_ = nullptr;

  RedundancyStats red_;
  std::vector<ScrubMismatch> scrub_log_;
  static constexpr std::size_t kScrubLogCap = 4096;

  // Scrub cursor (logical zone, stripe row) — valid while scrub_active_.
  bool scrub_active_ = false;
  std::uint64_t scrub_zone_ = 0;
  std::uint64_t scrub_row_ = 0;
  std::uint64_t scrub_off_ = 0;  ///< Conventional: byte cursor.
  /// Per-member per-pass verdict: 1 while every row of this pass agreed
  /// with (or was repaired onto) the member. A failed member that ends a
  /// pass clean — and no foreground write dirtied scrubbed ground — is
  /// readmitted to kActive.
  std::vector<std::uint8_t> scrub_clean_;
  /// A foreground write/reset landed at or behind the scrub cursor, so
  /// "pass was clean" no longer implies "member is in sync".
  bool scrub_dirty_ = false;

  // Rebuild cursor — valid while rebuild_member_ >= 0. Zoned: member
  // zone index + byte offset inside it; conventional: byte offset.
  // Phases: 0 = copy (cursor rebuild_zone_/rebuild_off_), 1 = verify
  // sweep (cursor rebuild_verify_zone_), 2 = re-copying a hole the
  // verify found (zone rebuild_verify_zone_, offset rebuild_off_).
  std::int32_t rebuild_member_ = -1;
  std::uint8_t rebuild_phase_ = 0;
  std::uint32_t rebuild_zone_ = 0;
  std::uint32_t rebuild_verify_zone_ = 0;
  std::uint64_t rebuild_off_ = 0;
  /// Consecutive failed appends to the fresh member: 1 → probe-resync
  /// the cursor to its durable prefix (the post-power-cut path), 2 →
  /// reset the member zone and restart it, 3 → give up (Internal).
  std::uint32_t rebuild_fail_streak_ = 0;

  // Per-request scratch, reused so the routing path stays allocation-
  // free after warm-up (the volume never re-enters itself). During a
  // parallel fan-out task i owns exactly run_status_[i]/run_done_[i] and
  // its own lane_tokens_ slot — tasks share nothing.
  std::vector<std::uint64_t> token_scratch_;  ///< Materialized write tokens.
  std::vector<std::vector<std::uint64_t>> lane_tokens_;
  std::vector<std::uint32_t> target_scratch_;  ///< Lanes served by this request.
  std::vector<Status> run_status_;
  std::vector<SimTime> run_done_;
};

}  // namespace conzone
