// L2P mapping-table update log (paper §III-E, "Persistence of L2P
// Mapping Table Updates" — listed as future work in ConZone; implemented
// here as an optional extension).
//
// The mapping table lives in flash, but updating a 4 B entry cannot
// rewrite a 16 KiB metadata page each time. Consumer firmware instead
// accumulates updates in a volatile *L2P log* and flushes the log to
// flash once enough entries gather — and "the flushing back of the L2P
// log may block host requests". This model charges exactly that: every
// mapping update appends one entry; when the log reaches its flush
// threshold the owning device must program it to a metadata flash page
// before the triggering operation completes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace conzone {

struct L2pLogConfig {
  bool enabled = false;
  /// Bytes of one log entry (compact LPN->PPN delta record).
  std::uint32_t entry_bytes = 8;
  /// Flush once the accumulated log reaches this size (one metadata
  /// flash page by default).
  std::uint64_t flush_threshold_bytes = 16 * kKiB;

  Status Validate() const {
    if (!enabled) return Status::Ok();
    if (entry_bytes == 0 || flush_threshold_bytes < entry_bytes) {
      return Status::InvalidArgument("l2p log: threshold below entry size");
    }
    return Status::Ok();
  }
};

struct L2pLogStats {
  std::uint64_t entries_appended = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes_flushed = 0;
  /// Flushes/bytes rolled back because a power cut landed before the
  /// flush program completed on media (plus pending bytes dropped).
  std::uint64_t flushes_lost = 0;
  std::uint64_t bytes_lost = 0;
};

/// Volatile accumulation state; the owning device supplies the flash
/// timing when `NeedsFlush()` fires.
///
/// Flush accounting is two-phase so a crash racing a flush can never
/// double-count `bytes_flushed`: `BeginFlush()` moves the pending bytes
/// out, and only `CommitFlush()` — called with the flush program's media
/// completion time — records them as flushed. `DropVolatile(cut)` then
/// rolls back any commit whose media window had not ended by the cut,
/// moving those bytes (and anything still pending) into `bytes_lost`
/// exactly once. In a crash-free run the old invariant still holds:
/// bytes_flushed + pending_bytes == entries_appended * entry_bytes.
class L2pLog {
 public:
  explicit L2pLog(const L2pLogConfig& config) : cfg_(config) {}

  bool enabled() const { return cfg_.enabled; }

  /// Record `count` mapping-table updates.
  void Append(std::uint64_t count) {
    if (!cfg_.enabled) return;
    pending_bytes_ += count * cfg_.entry_bytes;
    stats_.entries_appended += count;
  }

  bool NeedsFlush() const {
    return cfg_.enabled && pending_bytes_ >= cfg_.flush_threshold_bytes;
  }

  /// Phase 1: bytes the device must program right now; zeroes the
  /// pending count but records nothing yet. Call when NeedsFlush() (or
  /// to force-drain the tail on a host Flush).
  std::uint64_t BeginFlush() {
    const std::uint64_t bytes = pending_bytes_;
    pending_bytes_ = 0;
    return bytes;
  }

  /// Phase 2: the flush program completes on media at `media_done`.
  void CommitFlush(std::uint64_t bytes, SimTime media_done) {
    ++stats_.flushes;
    stats_.bytes_flushed += bytes;
    commits_.push_back(Commit{bytes, media_done});
  }

  /// Power cut at `cut`: drop pending bytes and roll back commits whose
  /// flush program had not finished. Returns the bytes lost.
  std::uint64_t DropVolatile(SimTime cut) {
    std::uint64_t lost = pending_bytes_;
    pending_bytes_ = 0;
    while (!commits_.empty() && commits_.back().media_done > cut) {
      lost += commits_.back().bytes;
      stats_.bytes_flushed -= commits_.back().bytes;
      --stats_.flushes;
      ++stats_.flushes_lost;
      commits_.pop_back();
    }
    stats_.bytes_lost += lost;
    commits_.clear();
    return lost;
  }

  /// Forget commits that can no longer race a cut (cut time is never
  /// before the next host submission). Keeps the commit list O(inflight).
  void PruneCommits(SimTime horizon) {
    std::size_t keep = 0;
    while (keep < commits_.size() && commits_[keep].media_done <= horizon) ++keep;
    if (keep > 0) commits_.erase(commits_.begin(), commits_.begin() + static_cast<std::ptrdiff_t>(keep));
  }

  std::uint64_t pending_bytes() const { return pending_bytes_; }
  const L2pLogStats& stats() const { return stats_; }

 private:
  struct Commit {
    std::uint64_t bytes = 0;
    SimTime media_done;
  };

  L2pLogConfig cfg_;
  std::uint64_t pending_bytes_ = 0;
  std::vector<Commit> commits_;
  L2pLogStats stats_;
};

}  // namespace conzone
