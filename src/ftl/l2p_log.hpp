// L2P mapping-table update log (paper §III-E, "Persistence of L2P
// Mapping Table Updates" — listed as future work in ConZone; implemented
// here as an optional extension).
//
// The mapping table lives in flash, but updating a 4 B entry cannot
// rewrite a 16 KiB metadata page each time. Consumer firmware instead
// accumulates updates in a volatile *L2P log* and flushes the log to
// flash once enough entries gather — and "the flushing back of the L2P
// log may block host requests". This model charges exactly that: every
// mapping update appends one entry; when the log reaches its flush
// threshold the owning device must program it to a metadata flash page
// before the triggering operation completes.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "common/units.hpp"

namespace conzone {

struct L2pLogConfig {
  bool enabled = false;
  /// Bytes of one log entry (compact LPN->PPN delta record).
  std::uint32_t entry_bytes = 8;
  /// Flush once the accumulated log reaches this size (one metadata
  /// flash page by default).
  std::uint64_t flush_threshold_bytes = 16 * kKiB;

  Status Validate() const {
    if (!enabled) return Status::Ok();
    if (entry_bytes == 0 || flush_threshold_bytes < entry_bytes) {
      return Status::InvalidArgument("l2p log: threshold below entry size");
    }
    return Status::Ok();
  }
};

struct L2pLogStats {
  std::uint64_t entries_appended = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes_flushed = 0;
};

/// Volatile accumulation state; the owning device supplies the flash
/// timing when `NeedsFlush()` fires.
class L2pLog {
 public:
  explicit L2pLog(const L2pLogConfig& config) : cfg_(config) {}

  bool enabled() const { return cfg_.enabled; }

  /// Record `count` mapping-table updates.
  void Append(std::uint64_t count) {
    if (!cfg_.enabled) return;
    pending_bytes_ += count * cfg_.entry_bytes;
    stats_.entries_appended += count;
  }

  bool NeedsFlush() const {
    return cfg_.enabled && pending_bytes_ >= cfg_.flush_threshold_bytes;
  }

  /// Bytes the device must program right now; resets the pending count.
  /// Call only when NeedsFlush() (or at shutdown for the tail).
  std::uint64_t TakeFlushBytes() {
    const std::uint64_t bytes = pending_bytes_;
    pending_bytes_ = 0;
    ++stats_.flushes;
    stats_.bytes_flushed += bytes;
    return bytes;
  }

  std::uint64_t pending_bytes() const { return pending_bytes_; }
  const L2pLogStats& stats() const { return stats_; }

 private:
  L2pLogConfig cfg_;
  std::uint64_t pending_bytes_ = 0;
  L2pLogStats stats_;
};

}  // namespace conzone
