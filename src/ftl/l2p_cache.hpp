// The volatile L2P cache (paper §III-C).
//
// Consumer-grade storage has only a few KiB of SRAM for L2P caching, so
// each cached entry is precious. An entry maps a *logical unit* at one of
// three granularities — page (LPA), chunk (LCA), zone (LZA) — to the
// physical slot of the unit's first 4 KiB page; lookups probe the three
// granularities coarse-to-fine, and a hit computes the final PPA by
// adding the offset of the original LPA inside the unit.
//
// Organization: entries are hashed into buckets (the paper's bucketed
// search) with a global LRU chain for eviction. Entries inserted as
// *pinned* (the §IV-D PINNED design) are exempt from eviction; when an
// aggregated entry is generated, the finer-granularity entries it covers
// are evicted to reclaim capacity.
//
// Storage: entries live in a flat slot array sized to the configured
// capacity; the LRU chain is intrusive (prev/next slot indices inside
// each entry) and the hash index is an open-addressing table of slot
// indices (linear probing, backward-shift deletion). Lookups, inserts
// and evictions touch contiguous memory and never allocate after
// construction — this sits on the per-IO hot path of every read.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fastdiv.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "ftl/mapping.hpp"

namespace conzone {

/// Identity of a cached translation: granularity + index of the logical
/// unit (lpn / units-per-granularity).
struct L2pKey {
  MapGranularity gran = MapGranularity::kPage;
  std::uint64_t index = 0;

  std::uint64_t Encoded() const { return (index << 2) | static_cast<std::uint64_t>(gran); }
  friend bool operator==(const L2pKey&, const L2pKey&) = default;
};

struct L2pCacheConfig {
  std::uint64_t capacity_bytes = 12 * kKiB;  ///< §IV-A scaled-down budget.
  std::uint32_t entry_bytes = 4;             ///< §IV-D packed-entry figure.
  std::uint32_t lpns_per_chunk = 1024;
  std::uint32_t lpns_per_zone = 4096;

  std::uint64_t MaxEntries() const {
    return entry_bytes ? capacity_bytes / entry_bytes : 0;
  }
};

struct L2pCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected_insertions = 0;  ///< Cache full of pinned entries.

  double HitRate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
  double MissRate() const { return lookups ? 1.0 - HitRate() : 0.0; }
};

class L2PCache {
 public:
  explicit L2PCache(const L2pCacheConfig& config);

  /// Probe one granularity level. A hit refreshes LRU recency and returns
  /// the base PPA of the logical unit.
  std::optional<Ppn> Lookup(const L2pKey& key);

  /// Probe without touching recency or statistics (diagnostics).
  std::optional<Ppn> Peek(const L2pKey& key) const;

  /// Insert (or refresh) a translation. Evicts the LRU unpinned entry
  /// when full; if every resident entry is pinned the insertion of an
  /// unpinned entry is dropped.
  void Insert(const L2pKey& key, Ppn base_ppn, bool pinned = false);

  void Erase(const L2pKey& key);

  /// Evict all finer-granularity entries whose range is covered by the
  /// aggregate `key` (PINNED design: the aggregate supersedes them).
  void EvictCoveredBy(const L2pKey& key);

  /// Remove every entry overlapping the LPA range [start, start+count) —
  /// used on zone reset and on remapping (fold-back, GC migration).
  void InvalidateLpnRange(Lpn start, std::uint64_t count);

  std::size_t size() const { return size_; }
  std::uint64_t max_entries() const { return max_entries_; }
  std::size_t pinned_count() const { return pinned_count_; }
  const L2pCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = L2pCacheStats{}; }

  /// LPAs covered by one unit at granularity `g`.
  std::uint64_t UnitLpns(MapGranularity g) const;
  /// Key of the unit containing `lpn` at granularity `g`.
  L2pKey KeyFor(MapGranularity g, Lpn lpn) const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    std::uint64_t key = 0;  // encoded L2pKey
    Ppn base_ppn;
    std::uint32_t prev = kNil;  // intrusive LRU chain (head = most recent)
    std::uint32_t next = kNil;
    bool pinned = false;
  };

  static std::uint64_t HashKey(std::uint64_t key);
  /// Bucket of `key` in table_, or the first empty bucket of its probe
  /// sequence. `*found` says which.
  std::size_t FindBucket(std::uint64_t key, bool* found) const;
  /// Backward-shift deletion at `bucket` (no tombstones).
  void TableErase(std::size_t bucket);

  void LruUnlink(std::uint32_t slot);
  void LruPushFront(std::uint32_t slot);
  void LruMoveToFront(std::uint32_t slot);

  void EvictOne();
  /// Remove `slot` (already located at `bucket`) from table, LRU and the
  /// slot free list.
  void RemoveSlot(std::uint32_t slot, std::size_t bucket);

  L2pCacheConfig cfg_;
  std::uint64_t max_entries_;
  // Reciprocals for KeyFor — probed up to three times per read IO.
  FastDiv div_lpns_per_chunk_;
  FastDiv div_lpns_per_zone_;
  std::vector<Slot> slots_;             // flat entry storage
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> table_;    // open addressing: slot index or kNil
  std::uint64_t table_mask_ = 0;        // table_.size() - 1 (power of two)
  std::uint32_t lru_head_ = kNil;       // most recently used
  std::uint32_t lru_tail_ = kNil;       // least recently used
  std::size_t size_ = 0;
  std::size_t pinned_count_ = 0;
  L2pCacheStats stats_;
};

}  // namespace conzone
