// Logical-to-physical translation (paper §III-C, Fig. 4).
//
// A read first probes the L2P cache coarse-to-fine: the logical address
// is re-expressed as a zone address (LZA), chunk address (LCA) and page
// address (LPA) and each is looked up in turn. On a miss the mapping
// entry must be fetched from the metadata flash pages, and *how many*
// flash reads that costs is the crux of the §IV-D case study:
//
//   kBitmap   — an SRAM bitmap mirrors every entry's map bits, so the
//               granularity is known up front: exactly 1 fetch. Fast but
//               needs ~0.006% of capacity in SRAM (64 MiB for 1 TB —
//               unacceptable on consumer devices, kept as the
//               performance-optimized reference).
//   kMultiple — assume the widest aggregation first: fetch the LZA
//               entry, check its map bits, fall back to the LCA entry,
//               then the LPA entry: 1-3 fetches (capacity-optimized).
//   kPinned   — aggregated entries are pinned in the cache when they are
//               generated and never evicted, so a miss implies page
//               granularity: exactly 1 fetch, no bitmap (the paper's
//               proposed feasible design).
//
// Aggregated hits resolve the final PPA through a PhysicalResolver
// implemented by the device over its reserved zone layout ("calculated
// based on the offset of the original logical address").
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <optional>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "ftl/l2p_cache.hpp"
#include "ftl/mapping.hpp"

namespace conzone {

enum class L2pSearchStrategy : std::uint8_t { kBitmap = 0, kMultiple = 1, kPinned = 2 };

constexpr const char* L2pSearchStrategyName(L2pSearchStrategy s) {
  switch (s) {
    case L2pSearchStrategy::kBitmap: return "BITMAP";
    case L2pSearchStrategy::kMultiple: return "MULTIPLE";
    case L2pSearchStrategy::kPinned: return "PINNED";
  }
  return "?";
}

/// Resolves the PPA of `lpn` inside an aggregated unit, using the
/// device's reserved physical layout.
class PhysicalResolver {
 public:
  virtual ~PhysicalResolver() = default;
  virtual std::optional<Ppn> ResolveAggregated(MapGranularity gran,
                                               std::uint64_t unit_index,
                                               Lpn lpn) const = 0;
};

struct TranslatorConfig {
  L2pSearchStrategy strategy = L2pSearchStrategy::kBitmap;
  /// When false the device runs pure page mapping (the Fig. 7 baseline):
  /// only page-granularity cache entries are used.
  bool hybrid = true;
  /// Legacy-style sequential prefetch: on a page-granularity miss, insert
  /// this many *following* page entries from the fetched map page as well
  /// (§IV-C uses 1023 under Legacy). 0 disables.
  std::uint32_t prefetch_window = 0;
};

/// Fixed-capacity list of the metadata map pages a miss had to read. A
/// translation fetches at most 3 (MULTIPLE probes zone → chunk → page),
/// so the storage is inline — `TranslateOutcome` never touches the heap
/// on the per-IO path.
class MapFetchList {
 public:
  void push_back(std::uint64_t page) {
    assert(count_ < kMax);
    pages_[count_++] = page;
  }
  const std::uint64_t* begin() const { return pages_.data(); }
  const std::uint64_t* end() const { return pages_.data() + count_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  static constexpr std::size_t kMax = 3;
  std::array<std::uint64_t, kMax> pages_{};
  std::uint32_t count_ = 0;
};

struct TranslateOutcome {
  Ppn ppn;
  bool cache_hit = false;
  MapGranularity gran = MapGranularity::kPage;
  /// Metadata flash pages that had to be read (empty on a cache hit).
  /// The device charges one flash read per element.
  MapFetchList map_pages_fetched;
};

struct TranslatorStats {
  std::uint64_t translations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t map_fetches = 0;
  std::uint64_t hits_by_gran[3] = {0, 0, 0};

  double MissRate() const {
    return translations
               ? 1.0 - static_cast<double>(cache_hits) / static_cast<double>(translations)
               : 0.0;
  }
  double FetchesPerMiss() const {
    const std::uint64_t misses = translations - cache_hits;
    return misses ? static_cast<double>(map_fetches) / static_cast<double>(misses) : 0.0;
  }
};

class Translator {
 public:
  Translator(MappingTable& table, L2PCache& cache, const PhysicalResolver& resolver,
             const TranslatorConfig& config);

  /// Translate `lpn`; fails if the address was never written.
  Result<TranslateOutcome> Translate(Lpn lpn);

  /// Write-path hook: a new aggregate was generated (§III-C ④ / Fig. 5 ②).
  /// Inserts it into the cache — pinned under kPinned, which also evicts
  /// the covered finer entries.
  void OnAggregateGenerated(MapGranularity gran, std::uint64_t unit_index, Ppn base_ppn);

  /// SRAM the strategy consumes beyond the cache itself (the BITMAP map-
  /// bits mirror); 0 for the other strategies.
  std::uint64_t StrategySramBytes() const;

  const TranslatorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TranslatorStats{}; }
  const TranslatorConfig& config() const { return cfg_; }

 private:
  Result<TranslateOutcome> MissBitmap(Lpn lpn, TranslateOutcome out);
  Result<TranslateOutcome> MissMultiple(Lpn lpn, TranslateOutcome out);
  Result<TranslateOutcome> MissPinnedOrPage(Lpn lpn, TranslateOutcome out);

  /// Cache-insert helper for a unit containing `lpn` at granularity `g`.
  void InsertUnit(MapGranularity g, Lpn lpn, bool pinned);

  MappingTable& table_;
  L2PCache& cache_;
  const PhysicalResolver& resolver_;
  TranslatorConfig cfg_;
  TranslatorStats stats_;
};

}  // namespace conzone
