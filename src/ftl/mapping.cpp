#include "ftl/mapping.hpp"

#include <algorithm>
#include <cassert>

#include "common/units.hpp"

namespace conzone {

MappingTable::MappingTable(const MappingGeometry& geometry) : geo_(geometry) {
  assert(geo_.num_lpns > 0);
  assert(geo_.lpns_per_chunk > 0);
  assert(geo_.lpns_per_zone % geo_.lpns_per_chunk == 0 &&
         "a zone must be a whole number of chunks");
  entries_.resize(static_cast<std::size_t>(geo_.num_lpns));
}

void MappingTable::Set(Lpn lpn, Ppn ppn) {
  assert(lpn.value() < geo_.num_lpns);
  MapEntry& e = entries_[static_cast<std::size_t>(lpn.value())];
  if (!e.mapped()) ++mapped_;
  e.ppn = ppn;
  e.gran = MapGranularity::kPage;
}

void MappingTable::InstallRunAtMount(Lpn lpn, Ppn ppn, std::uint64_t count,
                                     MapGranularity gran) {
  assert(lpn.value() + count <= geo_.num_lpns);
  MapEntry* e = &entries_[static_cast<std::size_t>(lpn.value())];
  MapEntry v;
  v.gran = gran;
  for (std::uint64_t i = 0; i < count; ++i) {
    v.ppn = Ppn{ppn.value() + i};
    e[i] = v;  // whole-struct store: full-width writes, no read-modify-write
  }
  mapped_ += count;
}

void MappingTable::ClearForMountExcept(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& keep) {
  std::uint64_t pos = 0;
  for (const auto& [lpn, count] : keep) {
    assert(lpn >= pos && lpn + count <= geo_.num_lpns &&
           "keep ranges must be sorted, disjoint and in bounds");
    // max(): stay safe on release builds if the caller's list overlaps —
    // the region is still cleared-or-installed, never skipped.
    for (std::uint64_t i = pos; i < lpn; ++i) {
      entries_[static_cast<std::size_t>(i)] = MapEntry{};
    }
    pos = std::max(pos, lpn + count);
  }
  for (std::uint64_t i = pos; i < geo_.num_lpns; ++i) {
    entries_[static_cast<std::size_t>(i)] = MapEntry{};
  }
  mapped_ = 0;
}

void MappingTable::Unmap(Lpn lpn) {
  assert(lpn.value() < geo_.num_lpns);
  MapEntry& e = entries_[static_cast<std::size_t>(lpn.value())];
  if (e.mapped()) --mapped_;
  e = MapEntry{};
}

MapEntry MappingTable::Get(Lpn lpn) const {
  assert(lpn.value() < geo_.num_lpns);
  return entries_[static_cast<std::size_t>(lpn.value())];
}

void MappingTable::SetAggregated(Lpn start, std::uint64_t count, MapGranularity gran) {
  assert(start.value() + count <= geo_.num_lpns);
  for (std::uint64_t i = 0; i < count; ++i) {
    MapEntry& e = entries_[static_cast<std::size_t>(start.value() + i)];
    assert(e.mapped() && "cannot aggregate unmapped entries");
    e.gran = gran;
  }
}

void MappingTable::DowngradeToPage(Lpn start, std::uint64_t count) {
  assert(start.value() + count <= geo_.num_lpns);
  for (std::uint64_t i = 0; i < count; ++i) {
    entries_[static_cast<std::size_t>(start.value() + i)].gran = MapGranularity::kPage;
  }
}

std::uint64_t MappingTable::NumMapPages() const {
  return CeilDiv(geo_.num_lpns, geo_.entries_per_map_page);
}

void MappingTable::ClearAllForMount() {
  for (MapEntry& e : entries_) e = MapEntry{};
  mapped_ = 0;
}

}  // namespace conzone
