#include "ftl/translator.hpp"

#include <cassert>
#include <string>

namespace conzone {

namespace {
Lpn AlignToUnit(Lpn lpn, std::uint64_t unit) { return Lpn(lpn.value() / unit * unit); }
}  // namespace

Translator::Translator(MappingTable& table, L2PCache& cache,
                       const PhysicalResolver& resolver, const TranslatorConfig& config)
    : table_(table), cache_(cache), resolver_(resolver), cfg_(config) {}

std::uint64_t Translator::StrategySramBytes() const {
  if (cfg_.strategy != L2pSearchStrategy::kBitmap || !cfg_.hybrid) return 0;
  // Two map bits per L2P entry (Fig. 5), densely packed.
  return CeilDiv(table_.geometry().num_lpns * 2, 8);
}

void Translator::InsertUnit(MapGranularity g, Lpn lpn, bool pinned) {
  const L2pKey key = cache_.KeyFor(g, lpn);
  const Lpn base = AlignToUnit(lpn, cache_.UnitLpns(g));
  const MapEntry base_entry = table_.Get(base);
  assert(base_entry.mapped());
  cache_.Insert(key, base_entry.ppn, pinned);
  if (pinned && g != MapGranularity::kPage) cache_.EvictCoveredBy(key);
}

Result<TranslateOutcome> Translator::Translate(Lpn lpn) {
  ++stats_.translations;
  TranslateOutcome out;

  // (I) Probe the cache LZA -> LCA -> LPA.
  if (cfg_.hybrid) {
    for (MapGranularity g : {MapGranularity::kZone, MapGranularity::kChunk}) {
      const L2pKey key = cache_.KeyFor(g, lpn);
      if (auto base = cache_.Lookup(key)) {
        auto ppn = resolver_.ResolveAggregated(g, key.index, lpn);
        if (!ppn) {
          return Status::Internal("aggregated cache entry for lpn " +
                                  std::to_string(lpn.value()) +
                                  " cannot be resolved by the layout");
        }
        ++stats_.cache_hits;
        ++stats_.hits_by_gran[static_cast<int>(g)];
        out.cache_hit = true;
        out.gran = g;
        out.ppn = *ppn;
        (void)base;
        return out;
      }
    }
  }
  if (auto ppn = cache_.Lookup(cache_.KeyFor(MapGranularity::kPage, lpn))) {
    ++stats_.cache_hits;
    ++stats_.hits_by_gran[static_cast<int>(MapGranularity::kPage)];
    out.cache_hit = true;
    out.gran = MapGranularity::kPage;
    out.ppn = *ppn;
    return out;
  }

  // (II) Cache miss: the entry must be fetched from the metadata flash
  // pages. Reads of never-written addresses fail up front.
  if (!table_.Get(lpn).mapped()) {
    return Status::OutOfRange("read of unmapped lpn " + std::to_string(lpn.value()));
  }
  if (!cfg_.hybrid) return MissPinnedOrPage(lpn, std::move(out));
  switch (cfg_.strategy) {
    case L2pSearchStrategy::kBitmap: return MissBitmap(lpn, std::move(out));
    case L2pSearchStrategy::kMultiple: return MissMultiple(lpn, std::move(out));
    case L2pSearchStrategy::kPinned: return MissPinnedOrPage(lpn, std::move(out));
  }
  return Status::Internal("unknown search strategy");
}

Result<TranslateOutcome> Translator::MissBitmap(Lpn lpn, TranslateOutcome out) {
  // The SRAM bitmap mirrors the map bits: one fetch at the right level.
  const MapGranularity g = table_.Get(lpn).gran;
  const Lpn base = AlignToUnit(lpn, cache_.UnitLpns(g));
  out.map_pages_fetched.push_back(table_.MapPageOf(base));
  stats_.map_fetches += 1;
  InsertUnit(g, lpn, /*pinned=*/false);
  out.gran = g;
  if (g == MapGranularity::kPage) {
    out.ppn = table_.Get(lpn).ppn;
  } else {
    auto ppn = resolver_.ResolveAggregated(g, cache_.KeyFor(g, lpn).index, lpn);
    if (!ppn) return Status::Internal("bitmap: unresolvable aggregate");
    out.ppn = *ppn;
  }
  return out;
}

Result<TranslateOutcome> Translator::MissMultiple(Lpn lpn, TranslateOutcome out) {
  // Assume the widest aggregation first (§III-C): fetch the LZA entry,
  // check its map bits, then the LCA entry, then the LPA entry. Probes
  // that land on the same table entry are not fetched twice.
  const Lpn zone_base = AlignToUnit(lpn, cache_.UnitLpns(MapGranularity::kZone));
  const Lpn chunk_base = AlignToUnit(lpn, cache_.UnitLpns(MapGranularity::kChunk));

  out.map_pages_fetched.push_back(table_.MapPageOf(zone_base));
  const MapEntry zone_entry = table_.Get(zone_base);
  if (zone_entry.mapped() && zone_entry.gran == MapGranularity::kZone) {
    InsertUnit(MapGranularity::kZone, lpn, /*pinned=*/false);
    out.gran = MapGranularity::kZone;
    auto ppn = resolver_.ResolveAggregated(
        MapGranularity::kZone, cache_.KeyFor(MapGranularity::kZone, lpn).index, lpn);
    if (!ppn) return Status::Internal("multiple: unresolvable zone aggregate");
    out.ppn = *ppn;
    stats_.map_fetches += out.map_pages_fetched.size();
    return out;
  }

  MapEntry chunk_entry = zone_entry;
  if (chunk_base != zone_base) {
    out.map_pages_fetched.push_back(table_.MapPageOf(chunk_base));
    chunk_entry = table_.Get(chunk_base);
  }
  if (chunk_entry.mapped() && chunk_entry.gran == MapGranularity::kChunk) {
    InsertUnit(MapGranularity::kChunk, lpn, /*pinned=*/false);
    out.gran = MapGranularity::kChunk;
    auto ppn = resolver_.ResolveAggregated(
        MapGranularity::kChunk, cache_.KeyFor(MapGranularity::kChunk, lpn).index, lpn);
    if (!ppn) return Status::Internal("multiple: unresolvable chunk aggregate");
    out.ppn = *ppn;
    stats_.map_fetches += out.map_pages_fetched.size();
    return out;
  }

  if (lpn != chunk_base) {
    out.map_pages_fetched.push_back(table_.MapPageOf(lpn));
  }
  InsertUnit(MapGranularity::kPage, lpn, /*pinned=*/false);
  out.gran = MapGranularity::kPage;
  out.ppn = table_.Get(lpn).ppn;
  stats_.map_fetches += out.map_pages_fetched.size();
  return out;
}

Result<TranslateOutcome> Translator::MissPinnedOrPage(Lpn lpn, TranslateOutcome out) {
  // Under kPinned every aggregate is resident and pinned, so a miss
  // implies page granularity; pure page mapping trivially so. One fetch.
  out.map_pages_fetched.push_back(table_.MapPageOf(lpn));
  stats_.map_fetches += 1;
  out.gran = MapGranularity::kPage;
  out.ppn = table_.Get(lpn).ppn;
  cache_.Insert(cache_.KeyFor(MapGranularity::kPage, lpn), out.ppn, /*pinned=*/false);

  if (cfg_.prefetch_window > 0) {
    // Sequential prefetch (Legacy, §IV-C): pull following entries from the
    // already-fetched map page at no extra flash cost.
    const std::uint64_t per_page = table_.geometry().entries_per_map_page;
    const std::uint64_t page_end = (lpn.value() / per_page + 1) * per_page;
    const std::uint64_t end = std::min({lpn.value() + 1 + cfg_.prefetch_window, page_end,
                                        table_.geometry().num_lpns});
    for (std::uint64_t l = lpn.value() + 1; l < end; ++l) {
      const MapEntry e = table_.Get(Lpn(l));
      if (!e.mapped()) break;
      cache_.Insert(cache_.KeyFor(MapGranularity::kPage, Lpn(l)), e.ppn, false);
    }
  }
  return out;
}

void Translator::OnAggregateGenerated(MapGranularity gran, std::uint64_t unit_index,
                                      Ppn base_ppn) {
  if (cfg_.strategy != L2pSearchStrategy::kPinned || !cfg_.hybrid) return;
  const L2pKey key{gran, unit_index};
  cache_.Insert(key, base_ppn, /*pinned=*/true);
  cache_.EvictCoveredBy(key);
}

}  // namespace conzone
