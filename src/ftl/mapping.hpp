// Page-mapping table with hybrid-aggregation map bits (paper §III-C, Fig. 5).
//
// The FTL always records a full page-granularity L2P table ("FTL still
// uses page mapping to record all mapping information"). Two reserved
// bits per entry — the *map bits* — mark whether the entry belongs to a
// logically & physically contiguous run that has been aggregated at
// chunk (1024 LPAs = 4 MiB) or zone granularity. Aggregated runs can be
// represented by a single L2P cache entry, stretching the tiny consumer
// L2P cache across a much larger address range.
//
// The table itself lives in flash; `MapPageOf()` says which metadata
// flash page holds a given entry so the read path can charge the right
// number of flash reads on an L2P cache miss.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"

namespace conzone {

enum class MapGranularity : std::uint8_t { kPage = 0, kChunk = 1, kZone = 2 };

constexpr const char* MapGranularityName(MapGranularity g) {
  switch (g) {
    case MapGranularity::kPage: return "page";
    case MapGranularity::kChunk: return "chunk";
    case MapGranularity::kZone: return "zone";
  }
  return "?";
}

struct MapEntry {
  Ppn ppn;                                         ///< Invalid if unmapped.
  MapGranularity gran = MapGranularity::kPage;     ///< The map bits.
  bool mapped() const { return ppn.valid(); }
};

struct MappingGeometry {
  std::uint64_t num_lpns = 0;          ///< Logical 4 KiB pages.
  std::uint32_t lpns_per_chunk = 1024; ///< 4 MiB chunks (§III-A).
  std::uint32_t lpns_per_zone = 4096;  ///< Zone size in LPAs.
  /// L2P entries per 16 KiB metadata flash page (16 KiB / 4 B).
  std::uint32_t entries_per_map_page = 4096;
};

class MappingTable {
 public:
  explicit MappingTable(const MappingGeometry& geometry);

  const MappingGeometry& geometry() const { return geo_; }

  /// Point `lpn` at `ppn` with page-granularity map bits. Any previous
  /// aggregation covering `lpn` must have been downgraded first.
  void Set(Lpn lpn, Ppn ppn);

  /// Bulk install of `count` consecutive lpns to consecutive ppns with
  /// the given map bits, for the mount fast path only: pure streaming
  /// stores — no per-entry occupancy check, no per-call overhead. The
  /// target range may still hold stale pre-mount bytes (see
  /// ClearForMountExcept); the mount's Σvalid == mapped gate catches a
  /// range that is double-installed or never overwritten. The caller
  /// passes the aggregation granularity the entries will end up with so
  /// the remount needs no second stamping pass over the table.
  void InstallRunAtMount(Lpn lpn, Ppn ppn, std::uint64_t count,
                         MapGranularity gran);

  /// Power-loss remount variant of ClearAllForMount for when the caller
  /// already knows which lpn ranges it will immediately re-install
  /// (checkpoint runs whose media is untouched): zeroes only the gaps
  /// between the `keep` ranges — sorted by lpn, disjoint, in bounds —
  /// plus the tail, and resets the mapped count. Entries inside keep
  /// ranges retain stale bytes until InstallRunAtMount overwrites them;
  /// rewriting the whole table is the mount fast path's single biggest
  /// cost, so touching each entry exactly once is the point.
  void ClearForMountExcept(
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>& keep);

  /// Drop the mapping (zone reset / TRIM).
  void Unmap(Lpn lpn);

  MapEntry Get(Lpn lpn) const;

  /// Stamp the map bits of `count` entries starting at `start` as
  /// aggregated at `gran`. The caller has already verified physical
  /// contiguity against the reserved zone layout (§III-C ②).
  void SetAggregated(Lpn start, std::uint64_t count, MapGranularity gran);

  /// Reset map bits of a range to page granularity (contiguity broken,
  /// e.g. data re-staged to SLC after a zone reset + rewrite).
  void DowngradeToPage(Lpn start, std::uint64_t count);

  // --- Address helpers ---
  ChunkId ChunkOf(Lpn lpn) const { return ChunkId(lpn.value() / geo_.lpns_per_chunk); }
  ZoneId ZoneOf(Lpn lpn) const { return ZoneId(lpn.value() / geo_.lpns_per_zone); }
  Lpn ChunkBase(ChunkId c) const { return Lpn(c.value() * geo_.lpns_per_chunk); }
  Lpn ZoneBase(ZoneId z) const { return Lpn(z.value() * geo_.lpns_per_zone); }

  /// Metadata flash page holding the entry for `lpn`.
  std::uint64_t MapPageOf(Lpn lpn) const { return lpn.value() / geo_.entries_per_map_page; }
  std::uint64_t NumMapPages() const;

  /// Number of currently mapped entries (diagnostics).
  std::uint64_t mapped_count() const { return mapped_; }

  /// Power-loss remount: drop every entry (and all aggregation) so the
  /// recovery scan can rebuild the table from media OOB state.
  void ClearAllForMount();

  /// Visit every mapped entry in lpn order as fn(Lpn, Ppn) — checkpoint
  /// serialization walks the table without exposing the entry vector.
  template <typename Fn>
  void ForEachMapped(Fn&& fn) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].mapped()) fn(Lpn(i), entries_[i].ppn);
    }
  }

 private:
  MappingGeometry geo_;
  std::vector<MapEntry> entries_;
  std::uint64_t mapped_ = 0;
};

}  // namespace conzone
