#include "ftl/l2p_cache.hpp"

#include <cassert>

namespace conzone {

L2PCache::L2PCache(const L2pCacheConfig& config)
    : cfg_(config), max_entries_(config.MaxEntries()) {
  assert(cfg_.lpns_per_zone % cfg_.lpns_per_chunk == 0);
}

std::uint64_t L2PCache::UnitLpns(MapGranularity g) const {
  switch (g) {
    case MapGranularity::kPage: return 1;
    case MapGranularity::kChunk: return cfg_.lpns_per_chunk;
    case MapGranularity::kZone: return cfg_.lpns_per_zone;
  }
  return 1;
}

L2pKey L2PCache::KeyFor(MapGranularity g, Lpn lpn) const {
  return L2pKey{g, lpn.value() / UnitLpns(g)};
}

std::optional<Ppn> L2PCache::Lookup(const L2pKey& key) {
  ++stats_.lookups;
  auto it = map_.find(key.Encoded());
  if (it == map_.end()) return std::nullopt;
  ++stats_.hits;
  // Refresh recency.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->base_ppn;
}

std::optional<Ppn> L2PCache::Peek(const L2pKey& key) const {
  auto it = map_.find(key.Encoded());
  if (it == map_.end()) return std::nullopt;
  return it->second->base_ppn;
}

void L2PCache::EvictOne() {
  for (auto it = lru_.end(); it != lru_.begin();) {
    --it;
    if (it->pinned) continue;
    map_.erase(it->key.Encoded());
    lru_.erase(it);
    ++stats_.evictions;
    return;
  }
}

void L2PCache::Insert(const L2pKey& key, Ppn base_ppn, bool pinned) {
  auto it = map_.find(key.Encoded());
  if (it != map_.end()) {
    // Refresh in place.
    if (it->second->pinned && !pinned) --pinned_count_;
    if (!it->second->pinned && pinned) ++pinned_count_;
    it->second->base_ppn = base_ppn;
    it->second->pinned = pinned;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (max_entries_ == 0) return;
  if (map_.size() >= max_entries_) {
    if (pinned_count_ >= max_entries_ && !pinned) {
      // Nothing evictable; drop the insertion rather than overflow SRAM.
      ++stats_.rejected_insertions;
      return;
    }
    EvictOne();
    if (map_.size() >= max_entries_) {
      ++stats_.rejected_insertions;
      return;
    }
  }
  lru_.push_front(Entry{key, base_ppn, pinned});
  map_.emplace(key.Encoded(), lru_.begin());
  if (pinned) ++pinned_count_;
  ++stats_.insertions;
}

void L2PCache::Erase(const L2pKey& key) {
  auto it = map_.find(key.Encoded());
  if (it == map_.end()) return;
  if (it->second->pinned) --pinned_count_;
  lru_.erase(it->second);
  map_.erase(it);
}

void L2PCache::EvictCoveredBy(const L2pKey& key) {
  const std::uint64_t unit = UnitLpns(key.gran);
  const std::uint64_t start = key.index * unit;
  if (key.gran == MapGranularity::kPage) return;
  // Chunk entries covered (only when key is a zone).
  if (key.gran == MapGranularity::kZone) {
    const std::uint64_t chunks = unit / cfg_.lpns_per_chunk;
    const std::uint64_t first = start / cfg_.lpns_per_chunk;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      Erase(L2pKey{MapGranularity::kChunk, first + c});
    }
  }
  // Page entries covered. Ranges are at most one zone (4096 keys) — cheap
  // relative to the flash ops that trigger aggregation.
  for (std::uint64_t i = 0; i < unit; ++i) {
    Erase(L2pKey{MapGranularity::kPage, start + i});
  }
}

void L2PCache::InvalidateLpnRange(Lpn start, std::uint64_t count) {
  const std::uint64_t lo = start.value();
  const std::uint64_t hi = lo + count;  // exclusive
  for (std::uint64_t lpn = lo; lpn < hi; ++lpn) {
    Erase(L2pKey{MapGranularity::kPage, lpn});
  }
  for (std::uint64_t c = lo / cfg_.lpns_per_chunk; c * cfg_.lpns_per_chunk < hi; ++c) {
    Erase(L2pKey{MapGranularity::kChunk, c});
  }
  for (std::uint64_t z = lo / cfg_.lpns_per_zone; z * cfg_.lpns_per_zone < hi; ++z) {
    Erase(L2pKey{MapGranularity::kZone, z});
  }
}

}  // namespace conzone
