#include "ftl/l2p_cache.hpp"

#include <cassert>

namespace conzone {

namespace {
std::uint64_t NextPow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

L2PCache::L2PCache(const L2pCacheConfig& config)
    : cfg_(config),
      max_entries_(config.MaxEntries()),
      div_lpns_per_chunk_(config.lpns_per_chunk),
      div_lpns_per_zone_(config.lpns_per_zone) {
  assert(cfg_.lpns_per_zone % cfg_.lpns_per_chunk == 0);
  if (max_entries_ > 0) {
    slots_.resize(max_entries_);
    free_slots_.reserve(max_entries_);
    // Free list popped from the back: push in reverse so slot 0 is used
    // first (purely cosmetic; any order works).
    for (std::uint64_t i = max_entries_; i > 0; --i) {
      free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
    }
    // Load factor <= 0.5 keeps linear-probe chains short.
    table_.assign(NextPow2(max_entries_ * 2), kNil);
    table_mask_ = table_.size() - 1;
  }
}

std::uint64_t L2PCache::UnitLpns(MapGranularity g) const {
  switch (g) {
    case MapGranularity::kPage: return 1;
    case MapGranularity::kChunk: return cfg_.lpns_per_chunk;
    case MapGranularity::kZone: return cfg_.lpns_per_zone;
  }
  return 1;
}

L2pKey L2PCache::KeyFor(MapGranularity g, Lpn lpn) const {
  switch (g) {
    case MapGranularity::kPage: return L2pKey{g, lpn.value()};
    case MapGranularity::kChunk: return L2pKey{g, div_lpns_per_chunk_.Div(lpn.value())};
    case MapGranularity::kZone: return L2pKey{g, div_lpns_per_zone_.Div(lpn.value())};
  }
  return L2pKey{g, lpn.value()};
}

std::uint64_t L2PCache::HashKey(std::uint64_t key) {
  // SplitMix64 finalizer: cheap, and full avalanche so linear probing
  // sees uniformly spread buckets even for the stride-patterned keys the
  // granularity encoding produces.
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ull;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBull;
  key ^= key >> 31;
  return key;
}

std::size_t L2PCache::FindBucket(std::uint64_t key, bool* found) const {
  std::size_t b = HashKey(key) & table_mask_;
  while (true) {
    const std::uint32_t s = table_[b];
    if (s == kNil) {
      *found = false;
      return b;
    }
    if (slots_[s].key == key) {
      *found = true;
      return b;
    }
    b = (b + 1) & table_mask_;
  }
}

void L2PCache::TableErase(std::size_t bucket) {
  // Backward-shift deletion: close the hole by moving displaced entries
  // whose home bucket lies outside the vacated gap.
  std::size_t hole = bucket;
  table_[hole] = kNil;
  std::size_t i = hole;
  while (true) {
    i = (i + 1) & table_mask_;
    const std::uint32_t s = table_[i];
    if (s == kNil) return;
    const std::size_t home = HashKey(slots_[s].key) & table_mask_;
    // Move s into the hole unless its home bucket sits in (hole, i]
    // (cyclically) — in that case the probe chain is intact without it.
    const bool home_in_gap =
        (hole < i) ? (home > hole && home <= i) : (home > hole || home <= i);
    if (!home_in_gap) {
      table_[hole] = s;
      table_[i] = kNil;
      hole = i;
    }
  }
}

void L2PCache::LruUnlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else {
    lru_head_ = s.next;
  }
  if (s.next != kNil) {
    slots_[s.next].prev = s.prev;
  } else {
    lru_tail_ = s.prev;
  }
  s.prev = s.next = kNil;
}

void L2PCache::LruPushFront(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.prev = kNil;
  s.next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].prev = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNil) lru_tail_ = slot;
}

void L2PCache::LruMoveToFront(std::uint32_t slot) {
  if (lru_head_ == slot) return;
  LruUnlink(slot);
  LruPushFront(slot);
}

std::optional<Ppn> L2PCache::Lookup(const L2pKey& key) {
  ++stats_.lookups;
  if (size_ == 0) return std::nullopt;
  bool found = false;
  const std::size_t b = FindBucket(key.Encoded(), &found);
  if (!found) return std::nullopt;
  ++stats_.hits;
  const std::uint32_t slot = table_[b];
  LruMoveToFront(slot);
  return slots_[slot].base_ppn;
}

std::optional<Ppn> L2PCache::Peek(const L2pKey& key) const {
  if (size_ == 0) return std::nullopt;
  bool found = false;
  const std::size_t b = FindBucket(key.Encoded(), &found);
  if (!found) return std::nullopt;
  return slots_[table_[b]].base_ppn;
}

void L2PCache::RemoveSlot(std::uint32_t slot, std::size_t bucket) {
  LruUnlink(slot);
  TableErase(bucket);
  free_slots_.push_back(slot);
  --size_;
}

void L2PCache::EvictOne() {
  // Scan from the LRU end, skipping pinned entries (they also live in
  // the chain but are exempt from eviction).
  for (std::uint32_t s = lru_tail_; s != kNil; s = slots_[s].prev) {
    if (slots_[s].pinned) continue;
    bool found = false;
    const std::size_t b = FindBucket(slots_[s].key, &found);
    assert(found);
    RemoveSlot(s, b);
    ++stats_.evictions;
    return;
  }
}

void L2PCache::Insert(const L2pKey& key, Ppn base_ppn, bool pinned) {
  if (max_entries_ == 0) return;
  bool found = false;
  std::size_t b = FindBucket(key.Encoded(), &found);
  if (found) {
    // Refresh in place.
    Slot& s = slots_[table_[b]];
    if (s.pinned && !pinned) --pinned_count_;
    if (!s.pinned && pinned) ++pinned_count_;
    s.base_ppn = base_ppn;
    s.pinned = pinned;
    LruMoveToFront(table_[b]);
    return;
  }
  if (size_ >= max_entries_) {
    if (pinned_count_ >= max_entries_ && !pinned) {
      // Nothing evictable; drop the insertion rather than overflow SRAM.
      ++stats_.rejected_insertions;
      return;
    }
    EvictOne();
    if (size_ >= max_entries_) {
      ++stats_.rejected_insertions;
      return;
    }
    // The eviction may have shifted buckets; re-locate the insert point.
    b = FindBucket(key.Encoded(), &found);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  Slot& s = slots_[slot];
  s.key = key.Encoded();
  s.base_ppn = base_ppn;
  s.pinned = pinned;
  table_[b] = slot;
  LruPushFront(slot);
  ++size_;
  if (pinned) ++pinned_count_;
  ++stats_.insertions;
}

void L2PCache::Erase(const L2pKey& key) {
  if (size_ == 0) return;
  bool found = false;
  const std::size_t b = FindBucket(key.Encoded(), &found);
  if (!found) return;
  const std::uint32_t slot = table_[b];
  if (slots_[slot].pinned) --pinned_count_;
  RemoveSlot(slot, b);
}

void L2PCache::EvictCoveredBy(const L2pKey& key) {
  const std::uint64_t unit = UnitLpns(key.gran);
  const std::uint64_t start = key.index * unit;
  if (key.gran == MapGranularity::kPage) return;
  // Chunk entries covered (only when key is a zone).
  if (key.gran == MapGranularity::kZone) {
    const std::uint64_t chunks = unit / cfg_.lpns_per_chunk;
    const std::uint64_t first = start / cfg_.lpns_per_chunk;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      Erase(L2pKey{MapGranularity::kChunk, first + c});
    }
  }
  // Page entries covered. Ranges are at most one zone (4096 keys) — cheap
  // relative to the flash ops that trigger aggregation.
  for (std::uint64_t i = 0; i < unit; ++i) {
    Erase(L2pKey{MapGranularity::kPage, start + i});
  }
}

void L2PCache::InvalidateLpnRange(Lpn start, std::uint64_t count) {
  const std::uint64_t lo = start.value();
  const std::uint64_t hi = lo + count;  // exclusive
  for (std::uint64_t lpn = lo; lpn < hi; ++lpn) {
    Erase(L2pKey{MapGranularity::kPage, lpn});
  }
  for (std::uint64_t c = lo / cfg_.lpns_per_chunk; c * cfg_.lpns_per_chunk < hi; ++c) {
    Erase(L2pKey{MapGranularity::kChunk, c});
  }
  for (std::uint64_t z = lo / cfg_.lpns_per_zone; z * cfg_.lpns_per_zone < hi; ++z) {
    Erase(L2pKey{MapGranularity::kZone, z});
  }
}

}  // namespace conzone
