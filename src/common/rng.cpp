#include "common/rng.hpp"

namespace conzone {

namespace {
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  // All-zero state is the one forbidden state for xoshiro; SplitMix64 of
  // any seed cannot produce four zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Lemire's multiply-shift with rejection for exact uniformity.
  if (bound == 0) return 0;
  return NextBelow(bound, RejectionThreshold(bound));
}

std::uint64_t Rng::NextBelow(std::uint64_t bound, std::uint64_t threshold) {
  if (bound == 0) return 0;
  for (;;) {
    std::uint64_t r = Next();
    // 128-bit multiply-high.
    unsigned __int128 m = static_cast<unsigned __int128>(r) * bound;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace conzone
