// Latency and throughput statistics.
//
// `LatencyHistogram` is an HDR-style log-linear histogram over simulated
// durations: each power-of-two band is split into 64 linear sub-buckets,
// bounding relative quantile error to ~1.6% while staying O(1) per record
// and a few KiB of memory — good enough to report the p99/p99.9 tail
// latencies the paper's figures use.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace conzone {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(SimDuration d);
  /// Merge another histogram into this one (for multi-job aggregation).
  void Merge(const LatencyHistogram& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  SimDuration min() const { return count_ ? min_ : SimDuration(); }
  SimDuration max() const { return max_; }
  SimDuration mean() const {
    return count_ ? SimDuration::Nanos(sum_ns_ / count_) : SimDuration();
  }

  /// Value at quantile q in [0,1]; returns the upper edge of the bucket
  /// containing the q-th sample. q=0.5 → median, q=0.999 → p99.9.
  SimDuration Percentile(double q) const;

  /// "mean=52.1us p50=49us p99=86us ..." one-line summary.
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per band.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBands = 40;  // covers up to ~2^45 ns ≈ 9.7 hours.

  static int BucketIndex(std::uint64_t ns);
  static std::uint64_t BucketUpperEdge(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  SimDuration min_ = SimDuration::Nanos(~0ull);
  SimDuration max_;
};

/// Fixed-bucket power-of-two histogram over durations: bucket i counts
/// samples with ns in [2^(i-1), 2^i); bucket 0 counts zero-length
/// samples. 64 buckets cover the full uint64 nanosecond range in a flat
/// 520-byte POD — cheap enough to live inside ReliabilityStats and be
/// merged across shards. Coarser than LatencyHistogram on purpose:
/// recovery events are rare and span six decades (a one-step read retry
/// is ~50 us, a multi-unit re-drive can be tens of ms), so order-of-
/// magnitude buckets are the readable unit.
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(SimDuration d) {
    ++buckets_[static_cast<std::size_t>(BucketIndex(d.ns()))];
    ++count_;
    sum_ns_ += d.ns();
  }
  void Merge(const Log2Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
  }
  void Reset() { *this = Log2Histogram{}; }

  std::uint64_t count() const { return count_; }
  std::uint64_t bucket(int i) const { return buckets_[static_cast<std::size_t>(i)]; }
  SimDuration mean() const {
    return count_ ? SimDuration::Nanos(sum_ns_ / count_) : SimDuration();
  }
  /// Inclusive lower edge of bucket i (0 for bucket 0, else 2^(i-1) ns).
  static std::uint64_t BucketLowerEdgeNs(int i) {
    return i == 0 ? 0 : 1ull << (i - 1);
  }
  static int BucketIndex(std::uint64_t ns);

  /// Non-empty buckets as "[512us,1ms):12" pairs, or "(empty)".
  std::string Summary() const;

  bool operator==(const Log2Histogram&) const = default;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
};

/// Reliability accounting across the fault-injection and recovery paths.
/// Owned by the media layer (FlashArray) and shared — by reference — with
/// the allocators, the timing engine and the device, so every layer's
/// recovery work lands in one reconcilable snapshot.
struct ReliabilityStats {
  // Faults observed at the media layer, by kind and region.
  std::uint64_t program_failures_slc = 0;
  std::uint64_t program_failures_normal = 0;
  std::uint64_t erase_failures_slc = 0;
  std::uint64_t erase_failures_normal = 0;

  // Read-retry activity (per ReadSlot draw; the timing engine charges the
  // per-page maximum).
  std::uint64_t reads_with_retry = 0;
  std::uint64_t read_retries = 0;  ///< Sum of retry levels.

  // Recovery work.
  std::uint64_t rewrite_slots = 0;  ///< Slots re-driven after a failed program.
  std::uint64_t retired_blocks_slc = 0;
  std::uint64_t retired_blocks_normal = 0;
  std::uint64_t read_only_trips = 0;  ///< Times the device latched read-only.

  /// Nominal simulated time spent on recovery work: burned program
  /// pulses, failed erases, and extra read-retry senses.
  SimDuration recovery_time;

  // Per-event recovery duration distributions (ROADMAP: expose
  // recovery-induced tail modes, not just the aggregate).
  Log2Histogram read_retry_hist;  ///< Extra sense time per retried read.
  Log2Histogram redrive_hist;     ///< Program time per re-drive/burn event.

  /// Fold another device's stats into this one — shard aggregation.
  void Merge(const ReliabilityStats& other);

  std::uint64_t TotalFaults() const {
    return program_failures_slc + program_failures_normal + erase_failures_slc +
           erase_failures_normal + reads_with_retry;
  }
  std::uint64_t RetiredBlocks() const {
    return retired_blocks_slc + retired_blocks_normal;
  }

  /// One-line "faults=... retries=... retired=slc:x,normal:y ..." summary.
  std::string Summary() const;
};

/// Power-loss accounting: what each cut destroyed and what the remount
/// pipeline did to bring the device back. Owned by the device; merged
/// across shards like ReliabilityStats.
struct RecoveryStats {
  std::uint64_t power_cuts = 0;   ///< PowerCut() calls survived.
  std::uint64_t recoveries = 0;   ///< Recover() remounts completed.

  // Volatile state destroyed by the cut.
  std::uint64_t buffered_slots_lost = 0;   ///< SRAM write-buffer slots dropped.
  std::uint64_t torn_program_slots = 0;    ///< Programs in flight at the cut.
  std::uint64_t unissued_program_slots = 0;///< Programs queued, never started.
  std::uint64_t l2p_log_bytes_lost = 0;    ///< Unflushed/in-flight L2P log bytes.

  // Remount pipeline work.
  std::uint64_t resurrected_slots = 0;  ///< Old copies revived under torn supersedes.
  std::uint64_t orphaned_slots = 0;     ///< Valid-but-unreachable slots invalidated.
  std::uint64_t pages_scanned = 0;      ///< OOB pages sensed by the mount scan.
  std::uint64_t pages_skipped = 0;      ///< Used pages the checkpoint let the scan skip.
  std::uint64_t reerased_blocks = 0;    ///< Blocks re-erased after a torn erase.
  std::uint64_t replayed_mappings = 0;  ///< L2P entries rebuilt from the scan.

  // Checkpoint activity (DESIGN.md §12).
  std::uint64_t checkpoints_written = 0;  ///< Images committed to a slot.
  std::uint64_t checkpoint_bytes = 0;     ///< Serialized bytes programmed.
  std::uint64_t checkpoints_torn = 0;     ///< Slots invalidated by a cut mid-write.
  std::uint64_t checkpoint_loaded = 0;    ///< Mounts served by a valid image.
  std::uint64_t checkpoint_mappings = 0;  ///< L2P entries replayed from images.
  std::uint64_t checkpoint_stale_dropped = 0;  ///< Image entries rejected at mount.
  std::uint64_t zones_restored = 0;  ///< Zones restored from a snapshot, no re-walk.

  /// Total simulated time spent remounting, and its per-event spread.
  SimDuration remount_time;
  Log2Histogram remount_hist;
  /// Checkpoint age at each image-served mount: simulated time between
  /// the image's media completion and the cut it recovered from.
  Log2Histogram checkpoint_age_hist;

  /// Fold another device's stats into this one — shard aggregation.
  void Merge(const RecoveryStats& other);

  /// One-line "cuts=... lost=... replayed=... remount=..." summary.
  std::string Summary() const;
};

/// Redundancy accounting for host-side mirrored/parity volumes: degraded
/// serving, scrub verification/repair, and member rebuild progress.
/// Owned by RedundantVolume; merged across shards like the other stats.
struct RedundancyStats {
  // Degraded foreground service.
  std::uint64_t degraded_reads = 0;   ///< Reads that needed reconstruction.
  std::uint64_t degraded_writes = 0;  ///< Writes acknowledged with missing legs.
  std::uint64_t reconstructed_units = 0;  ///< Stripe units rebuilt from peers/parity.
  std::uint64_t member_failures = 0;      ///< Members latched failed.
  std::uint64_t members_readmitted = 0;   ///< Failed members resynced by a clean scrub.

  // Online scrub.
  std::uint64_t scrub_rows = 0;        ///< Stripe rows verified.
  std::uint64_t scrub_mismatches = 0;  ///< Rows with replica/parity disagreement.
  std::uint64_t scrub_repaired_slots = 0;  ///< 4 KiB slots repaired/completed.
  std::uint64_t scrubs_completed = 0;      ///< Full volume passes finished.

  // Live member rebuild.
  std::uint64_t rebuild_slots_copied = 0;  ///< Slots written to the fresh member.
  std::uint64_t rebuild_zone_restarts = 0; ///< Member zones restarted after a torn copy.
  std::uint64_t rebuilds_completed = 0;

  /// Fold another volume's stats into this one — shard aggregation.
  void Merge(const RedundancyStats& other);

  /// One-line "degraded=r:x,w:y rebuilt_units=... scrub=..." summary.
  std::string Summary() const;

  bool operator==(const RedundancyStats&) const = default;
};

/// Throughput over a measured interval.
struct Throughput {
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
  SimDuration elapsed;

  double MiBps() const {
    double s = elapsed.seconds();
    return s > 0 ? static_cast<double>(bytes) / (1024.0 * 1024.0) / s : 0.0;
  }
  double Iops() const {
    double s = elapsed.seconds();
    return s > 0 ? static_cast<double>(ops) / s : 0.0;
  }
  double Kiops() const { return Iops() / 1000.0; }
};

}  // namespace conzone
