// Minimal Status / Result error-handling vocabulary.
//
// The emulator is exception-free on its hot paths: device operations
// return `Status` or `Result<T>` so callers (the workload runner, tests)
// can branch on error codes the way a block layer branches on errno.
#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace conzone {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed request (misaligned, bad id).
  kOutOfRange,        ///< Address beyond the device or zone capacity.
  kFailedPrecondition,///< Operation illegal in current state (e.g. zone FULL).
  kResourceExhausted, ///< No free blocks / buffers / open-zone slots.
  kUnimplemented,
  kInternal,          ///< Emulator invariant violation (a bug).
};

std::string_view StatusCodeName(StatusCode code);

// OK is represented as a null rep so the success path — every per-IO
// return — costs one pointer move and no string traffic; only the error
// path (which aborts the run anyway) pays for an allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;
};

template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result from OK status must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace conzone
