// Minimal Status / Result error-handling vocabulary.
//
// The emulator is exception-free on its hot paths: device operations
// return `Status` or `Result<T>` so callers (the workload runner, tests)
// can branch on error codes the way a block layer branches on errno.
#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace conzone {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed request (misaligned, bad id).
  kOutOfRange,        ///< Address beyond the device or zone capacity.
  kFailedPrecondition,///< Operation illegal in current state (e.g. zone FULL).
  kResourceExhausted, ///< No free blocks / buffers / open-zone slots.
  kUnimplemented,
  kInternal,          ///< Emulator invariant violation (a bug).
  kMediaError,        ///< NAND fault: program/erase failure on the media.
};

std::string_view StatusCodeName(StatusCode code);

namespace internal {
/// Abort with a message. Status/Result misuse (reading the value of an
/// error result) is a logic bug that must fail loudly in Release builds
/// too — an `assert` compiles out and silently reads an empty optional.
[[noreturn]] void FailFast(const char* what);
}  // namespace internal

// OK is represented as a null rep so the success path — every per-IO
// return — costs one pointer move and no string traffic; only the error
// path (which aborts the run anyway) pays for an allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status MediaError(std::string msg) {
    return Status(StatusCode::kMediaError, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;
};

template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      internal::FailFast("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  /// The value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) internal::FailFast("Result::value() called on an error result");
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace conzone
