// Minimal Status / Result error-handling vocabulary.
//
// The emulator is exception-free on its hot paths: device operations
// return `Status` or `Result<T>` so callers (the workload runner, tests)
// can branch on error codes the way a block layer branches on errno.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace conzone {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed request (misaligned, bad id).
  kOutOfRange,        ///< Address beyond the device or zone capacity.
  kFailedPrecondition,///< Operation illegal in current state (e.g. zone FULL).
  kResourceExhausted, ///< No free blocks / buffers / open-zone slots.
  kUnimplemented,
  kInternal,          ///< Emulator invariant violation (a bug).
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result from OK status must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace conzone
