// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic choice in the emulator and the workload generator pulls
// from an explicitly seeded Rng so that a run is reproducible bit-for-bit
// from its seed — a requirement for the regression tests and for
// comparing design variants on identical request streams.
#pragma once

#include <cstdint>

namespace conzone {

/// Combine a base seed with two salts into a decorrelated derived seed
/// (SplitMix64 finalizer). Used to fan one master seed out into
/// per-shard, per-job RNG streams that do not overlap. Pure function —
/// the same inputs always derive the same stream.
constexpr std::uint64_t MixSeeds(std::uint64_t base, std::uint64_t salt_a,
                                 std::uint64_t salt_b) {
  std::uint64_t z = base ^ (salt_a * 0x9E3779B97F4A7C15ull) ^
                    (salt_b * 0xBF58476D1CE4E5B9ull);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seed with SplitMix64 expansion, so nearby seeds give unrelated
  /// streams.
  void Seed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform in [0, bound), bias-free via rejection; bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Rejection threshold for `bound` — precompute it once when drawing
  /// many values below the same bound (saves a 64-bit division per draw).
  static std::uint64_t RejectionThreshold(std::uint64_t bound) {
    return bound ? (0 - bound) % bound : 0;
  }

  /// NextBelow with a caller-precomputed RejectionThreshold(bound).
  std::uint64_t NextBelow(std::uint64_t bound, std::uint64_t threshold);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool NextBool(double p);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace conzone
