// Size and time units used throughout ConZone.
//
// All byte quantities in the emulator are expressed in plain uint64_t with
// the named constants below; all simulated time is expressed with the
// strong types in time.hpp.
#pragma once

#include <cstdint>

namespace conzone {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kTiB = 1024ull * kGiB;

namespace literals {

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }

}  // namespace literals

/// Integer ceiling division for non-negative quantities.
constexpr std::uint64_t CeilDiv(std::uint64_t num, std::uint64_t den) {
  return (num + den - 1) / den;
}

/// True iff `v` is a power of two (zero is not).
constexpr bool IsPowerOfTwo(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Round `v` up to the next multiple of `align` (align > 0).
constexpr std::uint64_t RoundUp(std::uint64_t v, std::uint64_t align) {
  return CeilDiv(v, align) * align;
}

/// Round `v` down to the previous multiple of `align` (align > 0).
constexpr std::uint64_t RoundDown(std::uint64_t v, std::uint64_t align) {
  return (v / align) * align;
}

}  // namespace conzone
