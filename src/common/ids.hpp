// Strongly typed identifiers for the address spaces in the emulator.
//
// The paper distinguishes many granularities of address:
//   - host byte offsets (LBAs in the request layer),
//   - logical pages (LPA, 4 KiB — the FTL mapping granularity),
//   - logical chunks (LCA, 1024 LPAs = 4 MiB) and logical zones (LZA),
//   - flash pages (16 KiB physical pages),
//   - physical 4 KiB slots (PPA) — a flash page holds 4 of them,
//   - blocks, superblocks, chips, channels, zones, write buffers.
// Mixing these up is the classic FTL bug, so each gets its own type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace conzone {

template <class Tag>
class Id {
 public:
  using rep = std::uint64_t;
  static constexpr rep kInvalidValue = std::numeric_limits<rep>::max();

  constexpr Id() = default;
  constexpr explicit Id(rep v) : v_(v) {}

  static constexpr Id Invalid() { return Id(); }
  constexpr bool valid() const { return v_ != kInvalidValue; }
  constexpr rep value() const { return v_; }

  constexpr auto operator<=>(const Id&) const = default;

  /// Successor id — useful when iterating dense id ranges.
  constexpr Id next() const { return Id(v_ + 1); }

 private:
  rep v_ = kInvalidValue;
};

// Logical address spaces (host-visible).
using Lpn = Id<struct LpnTag>;        ///< Logical page number, 4 KiB units.
using ChunkId = Id<struct ChunkTag>;  ///< Logical chunk, 1024 LPAs (4 MiB).
using ZoneId = Id<struct ZoneTag>;    ///< Logical zone.

// Physical address spaces (media-side).
using Ppn = Id<struct PpnTag>;  ///< Physical 4 KiB slot number, device-flat.
using FlashPageId = Id<struct FlashPageTag>;  ///< Physical 16 KiB flash page, device-flat.
using BlockId = Id<struct BlockTag>;          ///< Physical flash block, device-flat.
using SuperblockId = Id<struct SuperblockTag>;  ///< Row of blocks across all chips.

// Topology.
using ChannelId = Id<struct ChannelTag>;
using ChipId = Id<struct ChipTag>;  ///< Device-flat chip index.

// Device resources.
using WriteBufferId = Id<struct WriteBufferTag>;

}  // namespace conzone

namespace std {
template <class Tag>
struct hash<conzone::Id<Tag>> {
  size_t operator()(const conzone::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>()(id.value());
  }
};
}  // namespace std
