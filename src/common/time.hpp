// Simulated time.
//
// The emulator is a discrete-event simulation: nothing here reads wall
// clocks. `SimTime` is an absolute instant on the simulated timeline and
// `SimDuration` a signed-free span; both count nanoseconds in uint64_t,
// which covers ~584 years of simulated time.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace conzone {

class SimDuration {
 public:
  constexpr SimDuration() = default;
  static constexpr SimDuration Nanos(std::uint64_t ns) { return SimDuration(ns); }
  static constexpr SimDuration Micros(std::uint64_t us) { return SimDuration(us * 1000); }
  static constexpr SimDuration Millis(std::uint64_t ms) { return SimDuration(ms * 1000000); }
  static constexpr SimDuration Seconds(std::uint64_t s) { return SimDuration(s * 1000000000); }
  /// Fractional-microsecond constructor (e.g. TLC tPROG = 937.5 us).
  static constexpr SimDuration MicrosF(double us) {
    return SimDuration(static_cast<std::uint64_t>(us * 1000.0 + 0.5));
  }

  constexpr std::uint64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimDuration&) const = default;
  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(ns_ + o.ns_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(ns_ - o.ns_); }
  constexpr SimDuration operator*(std::uint64_t k) const { return SimDuration(ns_ * k); }
  constexpr SimDuration operator/(std::uint64_t k) const { return SimDuration(ns_ / k); }
  constexpr SimDuration& operator+=(SimDuration o) { ns_ += o.ns_; return *this; }
  constexpr SimDuration& operator-=(SimDuration o) { ns_ -= o.ns_; return *this; }

  std::string ToString() const;

 private:
  constexpr explicit SimDuration(std::uint64_t ns) : ns_(ns) {}
  std::uint64_t ns_ = 0;
};

class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime FromNanos(std::uint64_t ns) { return SimTime(ns); }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(~0ull); }

  constexpr std::uint64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimDuration d) const { return SimTime(ns_ + d.ns()); }
  constexpr SimTime& operator+=(SimDuration d) { ns_ += d.ns(); return *this; }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration::Nanos(ns_ - o.ns_);
  }

  std::string ToString() const;

 private:
  constexpr explicit SimTime(std::uint64_t ns) : ns_(ns) {}
  std::uint64_t ns_ = 0;
};

/// Later of two instants — the workhorse of busy-until resource scheduling.
constexpr SimTime Later(SimTime a, SimTime b) { return a < b ? b : a; }

}  // namespace conzone
