#include "common/time.hpp"

#include <cstdio>

namespace conzone {

namespace {
std::string FormatNs(std::uint64_t ns) {
  char buf[64];
  if (ns < 1000ull) {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(ns));
  } else if (ns < 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}
}  // namespace

std::string SimDuration::ToString() const { return FormatNs(ns_); }
std::string SimTime::ToString() const { return FormatNs(ns_); }

}  // namespace conzone
