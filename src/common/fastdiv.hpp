// Exact division by a run-time-invariant divisor without the hardware
// divider.
//
// The emulator's hot paths are dominated by address arithmetic — byte
// offset to slot/zone/page/unit decompositions — whose divisors are
// fixed at configuration time (slot size, zone size, program unit, chip
// count, ...) but are run-time values to the compiler, so every `/` and
// `%` costs a 64-bit divide (~20+ cycles). FastDiv precomputes a
// reciprocal once and answers each division with two widening
// multiplies.
//
// Exactness: with c = ceil(2^128 / d), floor(x * c / 2^128) == floor(x/d)
// for every x < 2^64 and every divisor 2 <= d < 2^64. (The error term
// x * (d - 2^128 mod d) / (d * 2^128) is below x / 2^128 < 2^-64 <= 1/d,
// too small to carry the value across the next multiple of 1/d; see
// Lemire, "Faster remainder by direct computation", extended to a
// 128-bit reciprocal.) Results are therefore bit-identical to hardware
// division for all operands; d == 1 short-circuits to x and d == 0
// divides by zero just like the hardware would.
#pragma once

#include <cstdint>

namespace conzone {

class FastDiv {
 public:
  FastDiv() = default;
  explicit FastDiv(std::uint64_t d) : d_(d) {
    if (d >= 2) {
      // ceil(2^128 / d), computed as floor((2^128 - 1) / d) + 1 (equal to
      // the ceiling whether or not d divides 2^128).
      const unsigned __int128 c = ~static_cast<unsigned __int128>(0) / d + 1;
      magic_hi_ = static_cast<std::uint64_t>(c >> 64);
      magic_lo_ = static_cast<std::uint64_t>(c);
    }
  }

  std::uint64_t Div(std::uint64_t x) const {
    // magic_hi_ >= 1 whenever d >= 2 (c >= 2^64); 0 means d is 0 or 1 and
    // the hardware divider preserves exact semantics (incl. the d==0 trap).
    if (magic_hi_ == 0) return x / d_;
    // floor(x * c / 2^128) via two 64x64->128 multiplies:
    //   x*c = x*hi * 2^64 + x*lo, so the top 64 bits of the 192-bit
    //   product are (x*hi + high64(x*lo)) >> 64.
    const std::uint64_t t = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(magic_lo_) * x) >> 64);
    return static_cast<std::uint64_t>(
        ((static_cast<unsigned __int128>(magic_hi_) * x) + t) >> 64);
  }

  std::uint64_t Mod(std::uint64_t x) const { return x - Div(x) * d_; }

  std::uint64_t value() const { return d_; }

 private:
  std::uint64_t d_ = 1;
  std::uint64_t magic_hi_ = 0;  // 0 = always use the hardware divider
  std::uint64_t magic_lo_ = 0;
};

}  // namespace conzone
