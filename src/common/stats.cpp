#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace conzone {

LatencyHistogram::LatencyHistogram() : buckets_(kBands * kSubBuckets, 0) {}

int LatencyHistogram::BucketIndex(std::uint64_t ns) {
  // Values below kSubBuckets land in band 0 linearly.
  if (ns < kSubBuckets) return static_cast<int>(ns);
  const int msb = 63 - std::countl_zero(ns);
  const int band = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>((ns >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  int idx = band * kSubBuckets + sub;
  const int last = kBands * kSubBuckets - 1;
  return std::min(idx, last);
}

std::uint64_t LatencyHistogram::BucketUpperEdge(int index) {
  const int band = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (band == 0) return static_cast<std::uint64_t>(sub);
  const int shift = band - 1;
  // Band b (b>=1) spans [2^(b+5), 2^(b+6)) split into 64 pieces.
  const std::uint64_t base = (static_cast<std::uint64_t>(kSubBuckets) + static_cast<std::uint64_t>(sub)) << shift;
  const std::uint64_t width = 1ull << shift;
  return base + width - 1;
}

void LatencyHistogram::Record(SimDuration d) {
  const std::uint64_t ns = d.ns();
  buckets_[static_cast<std::size_t>(BucketIndex(ns))]++;
  count_++;
  sum_ns_ += ns;
  if (d < min_) min_ = d;
  if (d > max_) max_ = d;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ns_ = 0;
  min_ = SimDuration::Nanos(~0ull);
  max_ = SimDuration();
}

SimDuration LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return SimDuration();
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Exact min/max beat bucket edges at the extremes.
      std::uint64_t edge = BucketUpperEdge(static_cast<int>(i));
      edge = std::min(edge, max_.ns());
      edge = std::max(edge, min_.ns());
      return SimDuration::Nanos(edge);
    }
  }
  return max_;
}

std::string LatencyHistogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), mean().us(),
                Percentile(0.50).us(), Percentile(0.95).us(), Percentile(0.99).us(),
                Percentile(0.999).us(), max().us());
  return buf;
}

int Log2Histogram::BucketIndex(std::uint64_t ns) {
  if (ns == 0) return 0;
  return std::min<int>(kBuckets - 1, 64 - std::countl_zero(ns));
}

namespace {
// "512ns", "4us", "32ms" — power-of-two edges render exactly in at most
// one unit; keep them integral for readability.
std::string EdgeLabel(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull && ns % 1000000000ull == 0) {
    std::snprintf(buf, sizeof(buf), "%llus", static_cast<unsigned long long>(ns / 1000000000ull));
  } else if (ns >= 1000000ull && ns % 1000000ull == 0) {
    std::snprintf(buf, sizeof(buf), "%llums", static_cast<unsigned long long>(ns / 1000000ull));
  } else if (ns >= 1000ull && ns % 1000ull == 0) {
    std::snprintf(buf, sizeof(buf), "%lluus", static_cast<unsigned long long>(ns / 1000ull));
  } else if (ns >= 1048576ull) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(ns));
  }
  return buf;
}
}  // namespace

std::string Log2Histogram::Summary() const {
  if (count_ == 0) return "(empty)";
  std::string out;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[static_cast<std::size_t>(i)] == 0) continue;
    if (!out.empty()) out += ' ';
    char buf[96];
    std::snprintf(buf, sizeof(buf), "[%s,%s):%llu",
                  EdgeLabel(BucketLowerEdgeNs(i)).c_str(),
                  EdgeLabel(i + 1 < kBuckets ? BucketLowerEdgeNs(i + 1) : ~0ull).c_str(),
                  static_cast<unsigned long long>(buckets_[static_cast<std::size_t>(i)]));
    out += buf;
  }
  return out;
}

void ReliabilityStats::Merge(const ReliabilityStats& other) {
  program_failures_slc += other.program_failures_slc;
  program_failures_normal += other.program_failures_normal;
  erase_failures_slc += other.erase_failures_slc;
  erase_failures_normal += other.erase_failures_normal;
  reads_with_retry += other.reads_with_retry;
  read_retries += other.read_retries;
  rewrite_slots += other.rewrite_slots;
  retired_blocks_slc += other.retired_blocks_slc;
  retired_blocks_normal += other.retired_blocks_normal;
  read_only_trips += other.read_only_trips;
  recovery_time += other.recovery_time;
  read_retry_hist.Merge(other.read_retry_hist);
  redrive_hist.Merge(other.redrive_hist);
}

std::string ReliabilityStats::Summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "pfail=slc:%llu,normal:%llu efail=slc:%llu,normal:%llu "
      "retried_reads=%llu retry_steps=%llu rewrites=%llu "
      "retired=slc:%llu,normal:%llu ro_trips=%llu recovery=%.1fus",
      static_cast<unsigned long long>(program_failures_slc),
      static_cast<unsigned long long>(program_failures_normal),
      static_cast<unsigned long long>(erase_failures_slc),
      static_cast<unsigned long long>(erase_failures_normal),
      static_cast<unsigned long long>(reads_with_retry),
      static_cast<unsigned long long>(read_retries),
      static_cast<unsigned long long>(rewrite_slots),
      static_cast<unsigned long long>(retired_blocks_slc),
      static_cast<unsigned long long>(retired_blocks_normal),
      static_cast<unsigned long long>(read_only_trips), recovery_time.us());
  return buf;
}

void RecoveryStats::Merge(const RecoveryStats& other) {
  power_cuts += other.power_cuts;
  recoveries += other.recoveries;
  buffered_slots_lost += other.buffered_slots_lost;
  torn_program_slots += other.torn_program_slots;
  unissued_program_slots += other.unissued_program_slots;
  l2p_log_bytes_lost += other.l2p_log_bytes_lost;
  resurrected_slots += other.resurrected_slots;
  orphaned_slots += other.orphaned_slots;
  pages_scanned += other.pages_scanned;
  pages_skipped += other.pages_skipped;
  reerased_blocks += other.reerased_blocks;
  replayed_mappings += other.replayed_mappings;
  checkpoints_written += other.checkpoints_written;
  checkpoint_bytes += other.checkpoint_bytes;
  checkpoints_torn += other.checkpoints_torn;
  checkpoint_loaded += other.checkpoint_loaded;
  checkpoint_mappings += other.checkpoint_mappings;
  checkpoint_stale_dropped += other.checkpoint_stale_dropped;
  zones_restored += other.zones_restored;
  remount_time += other.remount_time;
  remount_hist.Merge(other.remount_hist);
  checkpoint_age_hist.Merge(other.checkpoint_age_hist);
}

std::string RecoveryStats::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "cuts=%llu lost=buf:%llu,torn:%llu,queued:%llu,log:%lluB "
      "replayed=%llu resurrected=%llu orphaned=%llu pages=scan:%llu,skip:%llu "
      "reerased=%llu ckpt=written:%llu,torn:%llu,loaded:%llu,replayed:%llu,"
      "stale:%llu zones_restored=%llu remount=%.1fms (mean %.1fms over %llu)",
      static_cast<unsigned long long>(power_cuts),
      static_cast<unsigned long long>(buffered_slots_lost),
      static_cast<unsigned long long>(torn_program_slots),
      static_cast<unsigned long long>(unissued_program_slots),
      static_cast<unsigned long long>(l2p_log_bytes_lost),
      static_cast<unsigned long long>(replayed_mappings),
      static_cast<unsigned long long>(resurrected_slots),
      static_cast<unsigned long long>(orphaned_slots),
      static_cast<unsigned long long>(pages_scanned),
      static_cast<unsigned long long>(pages_skipped),
      static_cast<unsigned long long>(reerased_blocks),
      static_cast<unsigned long long>(checkpoints_written),
      static_cast<unsigned long long>(checkpoints_torn),
      static_cast<unsigned long long>(checkpoint_loaded),
      static_cast<unsigned long long>(checkpoint_mappings),
      static_cast<unsigned long long>(checkpoint_stale_dropped),
      static_cast<unsigned long long>(zones_restored),
      remount_time.ms(), remount_hist.mean().ms(),
      static_cast<unsigned long long>(remount_hist.count()));
  return buf;
}

void RedundancyStats::Merge(const RedundancyStats& other) {
  degraded_reads += other.degraded_reads;
  degraded_writes += other.degraded_writes;
  reconstructed_units += other.reconstructed_units;
  member_failures += other.member_failures;
  members_readmitted += other.members_readmitted;
  scrub_rows += other.scrub_rows;
  scrub_mismatches += other.scrub_mismatches;
  scrub_repaired_slots += other.scrub_repaired_slots;
  scrubs_completed += other.scrubs_completed;
  rebuild_slots_copied += other.rebuild_slots_copied;
  rebuild_zone_restarts += other.rebuild_zone_restarts;
  rebuilds_completed += other.rebuilds_completed;
}

std::string RedundancyStats::Summary() const {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "degraded=r:%llu,w:%llu reconstructed_units=%llu failed_members=%llu "
      "readmitted=%llu scrub=rows:%llu,mismatch:%llu,repaired:%llu,passes:%llu "
      "rebuild=slots:%llu,restarts:%llu,done:%llu",
      static_cast<unsigned long long>(degraded_reads),
      static_cast<unsigned long long>(degraded_writes),
      static_cast<unsigned long long>(reconstructed_units),
      static_cast<unsigned long long>(member_failures),
      static_cast<unsigned long long>(members_readmitted),
      static_cast<unsigned long long>(scrub_rows),
      static_cast<unsigned long long>(scrub_mismatches),
      static_cast<unsigned long long>(scrub_repaired_slots),
      static_cast<unsigned long long>(scrubs_completed),
      static_cast<unsigned long long>(rebuild_slots_copied),
      static_cast<unsigned long long>(rebuild_zone_restarts),
      static_cast<unsigned long long>(rebuilds_completed));
  return buf;
}

}  // namespace conzone
