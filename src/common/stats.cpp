#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace conzone {

LatencyHistogram::LatencyHistogram() : buckets_(kBands * kSubBuckets, 0) {}

int LatencyHistogram::BucketIndex(std::uint64_t ns) {
  // Values below kSubBuckets land in band 0 linearly.
  if (ns < kSubBuckets) return static_cast<int>(ns);
  const int msb = 63 - std::countl_zero(ns);
  const int band = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>((ns >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  int idx = band * kSubBuckets + sub;
  const int last = kBands * kSubBuckets - 1;
  return std::min(idx, last);
}

std::uint64_t LatencyHistogram::BucketUpperEdge(int index) {
  const int band = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (band == 0) return static_cast<std::uint64_t>(sub);
  const int shift = band - 1;
  // Band b (b>=1) spans [2^(b+5), 2^(b+6)) split into 64 pieces.
  const std::uint64_t base = (static_cast<std::uint64_t>(kSubBuckets) + static_cast<std::uint64_t>(sub)) << shift;
  const std::uint64_t width = 1ull << shift;
  return base + width - 1;
}

void LatencyHistogram::Record(SimDuration d) {
  const std::uint64_t ns = d.ns();
  buckets_[static_cast<std::size_t>(BucketIndex(ns))]++;
  count_++;
  sum_ns_ += ns;
  if (d < min_) min_ = d;
  if (d > max_) max_ = d;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ns_ = 0;
  min_ = SimDuration::Nanos(~0ull);
  max_ = SimDuration();
}

SimDuration LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return SimDuration();
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Exact min/max beat bucket edges at the extremes.
      std::uint64_t edge = BucketUpperEdge(static_cast<int>(i));
      edge = std::min(edge, max_.ns());
      edge = std::max(edge, min_.ns());
      return SimDuration::Nanos(edge);
    }
  }
  return max_;
}

std::string LatencyHistogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), mean().us(),
                Percentile(0.50).us(), Percentile(0.95).us(), Percentile(0.99).us(),
                Percentile(0.999).us(), max().us());
  return buf;
}

std::string ReliabilityStats::Summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "pfail=slc:%llu,normal:%llu efail=slc:%llu,normal:%llu "
      "retried_reads=%llu retry_steps=%llu rewrites=%llu "
      "retired=slc:%llu,normal:%llu ro_trips=%llu recovery=%.1fus",
      static_cast<unsigned long long>(program_failures_slc),
      static_cast<unsigned long long>(program_failures_normal),
      static_cast<unsigned long long>(erase_failures_slc),
      static_cast<unsigned long long>(erase_failures_normal),
      static_cast<unsigned long long>(reads_with_retry),
      static_cast<unsigned long long>(read_retries),
      static_cast<unsigned long long>(rewrite_slots),
      static_cast<unsigned long long>(retired_blocks_slc),
      static_cast<unsigned long long>(retired_blocks_normal),
      static_cast<unsigned long long>(read_only_trips), recovery_time.us());
  return buf;
}

}  // namespace conzone
