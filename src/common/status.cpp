#include "common/status.hpp"

#include <cstdio>
#include <cstdlib>

namespace conzone {

namespace internal {
void FailFast(const char* what) {
  std::fprintf(stderr, "conzone: fatal: %s\n", what);
  std::fflush(stderr);
  std::abort();
}
}  // namespace internal

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kMediaError: return "MEDIA_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace conzone
