#include "common/status.hpp"

namespace conzone {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace conzone
