#include "shard/sharded_runner.hpp"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "core/device.hpp"
#include "exec/executor.hpp"

namespace conzone {

namespace {

/// Per-shard slot a worker fills in; merged only after join.
struct ShardOutcome {
  Status status = Status::Ok();
  ShardResult result;
};

/// A shard's device: a bare ConZone device (members == 1, the identity
/// path) or a striped volume over `members` ConZone devices, each with
/// its own decorrelated config stream.
Result<std::unique_ptr<StorageDevice>> MakeShardDevice(const ShardPlan& plan,
                                                       std::uint32_t shard_id) {
  const std::uint32_t members = plan.members == 0 ? 1 : plan.members;
  if (members == 1) {
    auto dev =
        ConZoneDevice::Create(plan.config.ForShard(shard_id, plan.master_seed));
    if (!dev.ok()) return dev.status();
    return std::unique_ptr<StorageDevice>(std::move(dev).value());
  }
  std::vector<std::unique_ptr<StorageDevice>> devs;
  devs.reserve(members);
  for (std::uint32_t j = 0; j < members; ++j) {
    auto dev = ConZoneDevice::Create(
        plan.config.ForShard(shard_id * members + j, plan.master_seed));
    if (!dev.ok()) return dev.status();
    devs.push_back(std::move(dev).value());
  }
  auto vol = StripedVolume::Create(std::move(devs), plan.volume);
  if (!vol.ok()) return vol.status();
  return std::unique_ptr<StorageDevice>(std::move(vol).value());
}

/// The cut-schedule path: a bare ConZone shard whose FIO workload is
/// interleaved with full PowerCut/Recover cycles at deterministic,
/// seed-derived times. The session pauses at each scheduled cut, the
/// device loses power and remounts, the surviving jobs resync their
/// cursors against the recovered write pointers, and the run continues
/// to its normal stop conditions after the last scheduled cut.
ShardOutcome RunOneShardWithCuts(const ShardPlan& plan, std::uint32_t shard_id) {
  ShardOutcome out;
  out.result.shard_id = shard_id;
  auto fail = [&out](Status st) {
    out.status = std::move(st);
    return out;
  };

  if (plan.members > 1) {
    return fail(Status::InvalidArgument(
        "sharded runner: cut_schedule requires members == 1"));
  }
  ConZoneConfig cfg = plan.config.ForShard(shard_id, plan.master_seed);
  cfg.fault.power_loss = true;  // cuts need the undo journal armed
  auto devr = ConZoneDevice::Create(cfg);
  if (!devr.ok()) return fail(devr.status());
  ConZoneDevice& dev = **devr;

  SimTime start = SimTime::Zero();
  if (plan.precondition_bytes > 0) {
    Status st = FioRunner::Precondition(dev, 0, plan.precondition_bytes,
                                        512 * kKiB, &start);
    if (!st.ok()) return fail(std::move(st));
  }

  FioRunner fio(dev, plan.backend);
  FioRunner::Session session(fio, ShardedRunner::JobsForShard(plan, shard_id),
                             start);
  if (Status st = session.Begin(); !st.ok()) return fail(std::move(st));

  // The cut stream is a pure function of the shard's derived fault seed:
  // fixed intervals need no randomness; random intervals ride
  // FaultModel's decorrelated cut stream (same derivation a device-side
  // schedule would use, so shard 0 matches a single-device run of the
  // template config).
  const std::uint64_t interval = plan.cut_schedule.interval_ns;
  FaultModel schedule;
  if (plan.cut_schedule.kind == CutScheduleKind::kRandomInterval) {
    FaultConfig sc;
    sc.seed = cfg.fault.seed;
    sc.power_cut_mean_interval_ns = interval;
    schedule = FaultModel(sc);
  }
  auto next_cut_after = [&](SimTime t) {
    return plan.cut_schedule.kind == CutScheduleKind::kRandomInterval
               ? schedule.NextCutAfter(t)
               : t + SimDuration::Nanos(interval);
  };
  auto wp_of = [&dev](std::uint64_t z) -> Result<std::uint64_t> {
    return dev.zones().Info(ZoneId{z}).write_pointer;
  };

  SimTime next_cut = next_cut_after(start);
  for (std::uint32_t cut = 0; cut < plan.cut_schedule.cuts; ++cut) {
    if (Status st = session.RunUntil(next_cut); !st.ok()) {
      return fail(std::move(st));
    }
    if (session.done()) break;  // workload finished before the schedule
    // Issue chains can submit past the pause point (zone resets on wrap
    // advance the submission clock); PowerCut refuses to rewind, so
    // clamp forward.
    const SimTime at = Later(next_cut, dev.last_submit());
    if (Status st = dev.PowerCut(at); !st.ok()) return fail(std::move(st));
    auto rec = dev.Recover(at);
    if (!rec.ok()) return fail(rec.status());
    auto resumed = session.Resume(rec.value(), wp_of);
    if (!resumed.ok()) return fail(resumed.status());
    next_cut = next_cut_after(resumed.value());
  }

  if (Status st = session.RunAll(); !st.ok()) return fail(std::move(st));
  auto run = session.Finish();
  if (!run.ok()) return fail(run.status());
  out.result.run = std::move(run).value();
  out.result.reliability = dev.Reliability();
  out.result.recovery = dev.Recovery();
  out.result.device = dev.Stats();
  return out;
}

ShardOutcome RunOneShard(const ShardPlan& plan, std::uint32_t shard_id) {
  if (plan.cut_schedule.cuts > 0) return RunOneShardWithCuts(plan, shard_id);

  ShardOutcome out;
  out.result.shard_id = shard_id;

  auto devr = MakeShardDevice(plan, shard_id);
  if (!devr.ok()) {
    out.status = devr.status();
    return out;
  }
  StorageDevice& dev = **devr;

  SimTime start = SimTime::Zero();
  if (plan.precondition_bytes > 0) {
    Status st = FioRunner::Precondition(dev, 0, plan.precondition_bytes,
                                        512 * kKiB, &start);
    if (!st.ok()) {
      out.status = std::move(st);
      return out;
    }
  }

  FioRunner fio(dev, plan.backend);
  auto run = fio.Run(ShardedRunner::JobsForShard(plan, shard_id), start);
  if (!run.ok()) {
    out.status = run.status();
    return out;
  }
  out.result.run = std::move(run).value();
  out.result.reliability = dev.Reliability();
  out.result.recovery = dev.Recovery();
  out.result.device = dev.Stats();
  return out;
}

}  // namespace

ShardedRunner::ShardedRunner(ShardPlan plan) : plan_(std::move(plan)) {}

std::vector<JobSpec> ShardedRunner::JobsForShard(const ShardPlan& plan,
                                                 std::uint32_t shard_id) {
  std::vector<JobSpec> jobs = plan.jobs;
  if (shard_id == 0) return jobs;  // identity: 1-shard == single-device
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    // Salt with the job index too: jobs sharing a template seed must not
    // collapse into one stream on every shard.
    jobs[j].seed = MixSeeds(jobs[j].seed + j, plan.master_seed, shard_id);
  }
  return jobs;
}

Result<ShardedResult> ShardedRunner::Run() {
  if (plan_.shards == 0) {
    return Status::InvalidArgument("sharded runner: need at least one shard");
  }
  const std::uint32_t shards = plan_.shards;
  std::uint32_t threads = plan_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min(shards, hw == 0 ? 1u : static_cast<std::uint32_t>(hw));
  }
  threads = std::min(threads, shards);

  std::vector<ShardOutcome> outcomes(shards);
  // Shard ids are the executor's task ids: submitted in shard order,
  // run wherever the deques and steals land them. Which lane runs which
  // shard is scheduling-dependent — but each outcome lands in its own
  // preallocated slot and the merge below happens after the join
  // barrier, in shard-id order, so the merge never sees that.
  auto shard_task = [&](std::size_t id) {
    outcomes[id] = RunOneShard(plan_, static_cast<std::uint32_t>(id));
  };
  if (plan_.executor != nullptr) {
    plan_.executor->Run(shards, shard_task);
  } else if (threads <= 1) {
    // Inline serial reference path: zero thread overhead.
    SerialExecutor().Run(shards, shard_task);
  } else {
    WorkStealingExecutor(threads).Run(shards, shard_task);
  }

  // Merge after join, in shard-id order: deterministic for any thread
  // count. Errors resolve to the lowest failing shard for the same
  // reason.
  for (std::uint32_t i = 0; i < shards; ++i) {
    if (!outcomes[i].status.ok()) return std::move(outcomes[i].status);
  }
  ShardedResult merged;
  merged.shards.reserve(shards);
  SimDuration longest;
  for (std::uint32_t i = 0; i < shards; ++i) {
    ShardResult& s = outcomes[i].result;
    merged.total.bytes += s.run.total.bytes;
    merged.total.ops += s.run.total.ops;
    longest = std::max(longest, s.run.total.elapsed);
    merged.latency.Merge(s.run.latency);
    merged.reliability.Merge(s.reliability);
    merged.recovery.Merge(s.recovery);
    merged.events += s.run.events;
    merged.io_errors += s.run.io_errors;
    merged.end_time = std::max(merged.end_time, s.run.end_time);
    merged.shards.push_back(std::move(s));
  }
  merged.total.elapsed = longest;
  return merged;
}

}  // namespace conzone
