#include "shard/sharded_runner.hpp"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "core/device.hpp"
#include "exec/executor.hpp"

namespace conzone {

namespace {

/// Per-shard slot a worker fills in; merged only after join.
struct ShardOutcome {
  Status status = Status::Ok();
  ShardResult result;
};

/// A shard's device: a bare ConZone device (members == 1, the identity
/// path) or a striped volume over `members` ConZone devices, each with
/// its own decorrelated config stream.
Result<std::unique_ptr<StorageDevice>> MakeShardDevice(const ShardPlan& plan,
                                                       std::uint32_t shard_id) {
  const std::uint32_t members = plan.members == 0 ? 1 : plan.members;
  if (members == 1) {
    auto dev =
        ConZoneDevice::Create(plan.config.ForShard(shard_id, plan.master_seed));
    if (!dev.ok()) return dev.status();
    return std::unique_ptr<StorageDevice>(std::move(dev).value());
  }
  std::vector<std::unique_ptr<StorageDevice>> devs;
  devs.reserve(members);
  for (std::uint32_t j = 0; j < members; ++j) {
    auto dev = ConZoneDevice::Create(
        plan.config.ForShard(shard_id * members + j, plan.master_seed));
    if (!dev.ok()) return dev.status();
    devs.push_back(std::move(dev).value());
  }
  auto vol = StripedVolume::Create(std::move(devs), plan.volume);
  if (!vol.ok()) return vol.status();
  return std::unique_ptr<StorageDevice>(std::move(vol).value());
}

ShardOutcome RunOneShard(const ShardPlan& plan, std::uint32_t shard_id) {
  ShardOutcome out;
  out.result.shard_id = shard_id;

  auto devr = MakeShardDevice(plan, shard_id);
  if (!devr.ok()) {
    out.status = devr.status();
    return out;
  }
  StorageDevice& dev = **devr;

  SimTime start = SimTime::Zero();
  if (plan.precondition_bytes > 0) {
    Status st = FioRunner::Precondition(dev, 0, plan.precondition_bytes,
                                        512 * kKiB, &start);
    if (!st.ok()) {
      out.status = std::move(st);
      return out;
    }
  }

  FioRunner fio(dev, plan.backend);
  auto run = fio.Run(ShardedRunner::JobsForShard(plan, shard_id), start);
  if (!run.ok()) {
    out.status = run.status();
    return out;
  }
  out.result.run = std::move(run).value();
  out.result.reliability = dev.Reliability();
  out.result.device = dev.Stats();
  return out;
}

}  // namespace

ShardedRunner::ShardedRunner(ShardPlan plan) : plan_(std::move(plan)) {}

std::vector<JobSpec> ShardedRunner::JobsForShard(const ShardPlan& plan,
                                                 std::uint32_t shard_id) {
  std::vector<JobSpec> jobs = plan.jobs;
  if (shard_id == 0) return jobs;  // identity: 1-shard == single-device
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    // Salt with the job index too: jobs sharing a template seed must not
    // collapse into one stream on every shard.
    jobs[j].seed = MixSeeds(jobs[j].seed + j, plan.master_seed, shard_id);
  }
  return jobs;
}

Result<ShardedResult> ShardedRunner::Run() {
  if (plan_.shards == 0) {
    return Status::InvalidArgument("sharded runner: need at least one shard");
  }
  const std::uint32_t shards = plan_.shards;
  std::uint32_t threads = plan_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min(shards, hw == 0 ? 1u : static_cast<std::uint32_t>(hw));
  }
  threads = std::min(threads, shards);

  std::vector<ShardOutcome> outcomes(shards);
  // Shard ids are the executor's task ids: submitted in shard order,
  // run wherever the deques and steals land them. Which lane runs which
  // shard is scheduling-dependent — but each outcome lands in its own
  // preallocated slot and the merge below happens after the join
  // barrier, in shard-id order, so the merge never sees that.
  auto shard_task = [&](std::size_t id) {
    outcomes[id] = RunOneShard(plan_, static_cast<std::uint32_t>(id));
  };
  if (plan_.executor != nullptr) {
    plan_.executor->Run(shards, shard_task);
  } else if (threads <= 1) {
    // Inline serial reference path: zero thread overhead.
    SerialExecutor().Run(shards, shard_task);
  } else {
    WorkStealingExecutor(threads).Run(shards, shard_task);
  }

  // Merge after join, in shard-id order: deterministic for any thread
  // count. Errors resolve to the lowest failing shard for the same
  // reason.
  for (std::uint32_t i = 0; i < shards; ++i) {
    if (!outcomes[i].status.ok()) return std::move(outcomes[i].status);
  }
  ShardedResult merged;
  merged.shards.reserve(shards);
  SimDuration longest;
  for (std::uint32_t i = 0; i < shards; ++i) {
    ShardResult& s = outcomes[i].result;
    merged.total.bytes += s.run.total.bytes;
    merged.total.ops += s.run.total.ops;
    longest = std::max(longest, s.run.total.elapsed);
    merged.latency.Merge(s.run.latency);
    merged.reliability.Merge(s.reliability);
    merged.events += s.run.events;
    merged.io_errors += s.run.io_errors;
    merged.end_time = std::max(merged.end_time, s.run.end_time);
    merged.shards.push_back(std::move(s));
  }
  merged.total.elapsed = longest;
  return merged;
}

}  // namespace conzone
