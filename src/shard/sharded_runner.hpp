// Sharded multi-device parallel runner — the scale-out half of the
// engine (the timing wheel in src/sim is the scale-up half).
//
// A shard is a fully independent simulated device: its own
// ConZoneConfig, its own fault-RNG stream, its own workload RNGs, its
// own event queue. Shards share NOTHING mutable, which is what lets a
// single process drive N of them in parallel without a single lock on
// the simulation hot path. Shard tasks are scheduled on the shared
// deterministic work-stealing executor (src/exec, DESIGN.md §7) — the
// same substrate StripedVolume fans member sub-requests out on — so
// the runner no longer carries a bespoke thread pool; the only
// synchronization is the executor's deques (off the hot path, once per
// shard) and its join barrier.
//
// Determinism contract:
//   * Each shard's entire run is a pure function of
//     (plan.config, plan.jobs, plan.master_seed, shard_id): the shard's
//     fault seed and job seeds are derived with MixSeeds, then the run
//     is an ordinary single-threaded DES.
//   * Results are written into a preallocated per-shard slot and merged
//     in shard-id order AFTER all workers join. Thread count, scheduling
//     order, and core count therefore cannot change any output bit —
//     they only change wall-clock time.
//   * Shard 0 is the identity derivation: a 1-shard plan reproduces the
//     plain single-device FioRunner run bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "core/config.hpp"
#include "core/storage_device.hpp"
#include "fault/fault_model.hpp"
#include "host/striped_volume.hpp"
#include "sim/event_queue.hpp"
#include "workload/fio.hpp"

namespace conzone {

class Executor;

/// Scheduled mid-run power cuts for each shard. With cuts > 0 every
/// shard interleaves its FIO workload with `cuts` full
/// PowerCut/Recover cycles: run to the next scheduled cut time, cut,
/// remount, resync the surviving jobs' cursors against the recovered
/// write pointers (FioRunner::Session::Resume), continue. Cut times
/// are a pure function of the shard's derived fault seed, so the
/// determinism contract is untouched. Requires members == 1 (cuts act
/// on a bare ConZone device; volumes have their own rebuild story).
struct ShardCutSchedule {
  std::uint32_t cuts = 0;  ///< 0 = no cuts (the historical path).
  CutScheduleKind kind = CutScheduleKind::kRandomInterval;
  /// Fixed: exact workload-time gap between resume and the next cut.
  /// Random: mean of the exponential gap (FaultModel::NextCutAfter).
  std::uint64_t interval_ns = 10'000'000;
};

/// Everything needed to reproduce a sharded run.
struct ShardPlan {
  /// Template device configuration; member j of shard i runs
  /// config.ForShard(i * members + j, master_seed) — with members == 1
  /// this is the classic per-shard derivation, unchanged.
  ConZoneConfig config;
  /// Template job list, instantiated per shard with decorrelated seeds
  /// (shard 0 keeps the template seeds unchanged).
  std::vector<JobSpec> jobs;
  std::uint32_t shards = 1;
  /// Devices per shard. 1 = a bare ConZone device (the historical
  /// behavior, bit for bit); >1 = each shard drives a StripedVolume of
  /// this many ConZone members.
  std::uint32_t members = 1;
  /// Striping geometry when members > 1.
  StripedVolumeOptions volume;
  /// Worker threads; 0 = min(shards, hardware_concurrency). Ignored
  /// when `executor` is set.
  std::uint32_t threads = 0;
  /// Schedule shard tasks on this shared executor instead of building
  /// one per run (non-owning; must outlive the run). Null = the runner
  /// constructs a WorkStealingExecutor with `threads` lanes. Results
  /// are bit-identical either way — the merge is what's ordered, not
  /// the execution.
  Executor* executor = nullptr;
  std::uint64_t master_seed = 1;
  /// Sequentially fill [0, precondition_bytes) on each shard before the
  /// measured jobs (read workloads need written media).
  std::uint64_t precondition_bytes = 0;
  /// Mid-run power-cut schedule (cuts == 0 disables it).
  ShardCutSchedule cut_schedule;
  EventQueue::Backend backend = EventQueue::Backend::kTimingWheel;
};

/// One shard's outcome, in full — kept per shard (not just merged) so
/// callers can inspect fleet variance, e.g. fault-rate spread. Device
/// counters come through the uniform StorageDevice::Stats() /
/// Reliability() interface, so a shard's device can be a bare ConZone
/// device or a striped volume without the result type caring.
struct ShardResult {
  std::uint32_t shard_id = 0;
  RunResult run;
  ReliabilityStats reliability;
  /// Remount/checkpoint accounting (uniform StorageDevice::Recovery();
  /// all-zero without a cut schedule or power-loss emulation).
  RecoveryStats recovery;
  StatsSnapshot device;
};

/// Merge of all shards, in fixed shard-id order.
struct ShardedResult {
  std::vector<ShardResult> shards;
  /// Summed bytes/ops; elapsed = the longest shard's simulated span
  /// (shards run concurrently, so the fleet is done when the slowest
  /// shard is).
  Throughput total;
  LatencyHistogram latency;       ///< Merged across all shards' jobs.
  ReliabilityStats reliability;   ///< Merged (counters, histograms).
  RecoveryStats recovery;         ///< Merged remount/checkpoint counters.
  std::uint64_t events = 0;       ///< Simulator events executed, summed.
  std::uint64_t io_errors = 0;
  SimTime end_time;               ///< Max over shards.
};

class ShardedRunner {
 public:
  explicit ShardedRunner(ShardPlan plan);

  /// Run every shard (on plan.threads workers) and merge. Any shard
  /// error fails the whole run; the lowest-numbered failing shard's
  /// status is returned (deterministic, unlike first-to-fail).
  Result<ShardedResult> Run();

  const ShardPlan& plan() const { return plan_; }

  /// The job list shard `shard_id` actually runs (derived seeds).
  /// Exposed for tests asserting the derivation contract.
  static std::vector<JobSpec> JobsForShard(const ShardPlan& plan,
                                           std::uint32_t shard_id);

 private:
  ShardPlan plan_;
};

}  // namespace conzone
