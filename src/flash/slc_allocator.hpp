// SLC-region write pointer.
//
// The paper (§III-B) keeps a separate write pointer per media region
// because the programming units differ: the SLC secondary buffer can
// partial-program at 4 KiB, the normal region programs one-shot units.
// This allocator is the SLC pointer: it binds to a free SLC superblock
// and iterates in *page-fill stripe order* — the four 4 KiB slots of one
// page, then the same page of the next chip, then the next page row —
// so a multi-slot premature flush batches into whole-page program pulses
// spread across the chips, while a sub-page flush still partial-programs
// a single page. When a superblock is exhausted the pointer rebinds to
// the next free superblock from the pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "flash/array.hpp"
#include "flash/geometry.hpp"
#include "flash/superblock.hpp"

namespace conzone {

class SlcAllocator {
 public:
  SlcAllocator(FlashArray& array, SuperblockPool& pool);

  /// Program `writes` at the SLC write pointer; returns the physical slot
  /// of each write, in order. Fails with kResourceExhausted when the
  /// region runs out of free superblocks (caller must GC first).
  ///
  /// Media faults are absorbed here: a program failure burns the slot,
  /// retires the block, and the write is re-driven at the next healthy
  /// position — so a successful return means every write landed. Burned
  /// positions are reported via last_failed() for timing/accounting.
  Result<std::vector<Ppn>> Program(std::span<const SlotWrite> writes);

  /// Slots burned by program failures during the most recent Program call
  /// (the die ran a pulse there; the data was re-driven elsewhere).
  std::span<const Ppn> last_failed() const { return failed_; }

  /// Slots still available without taking another superblock from the
  /// pool (GC trigger input).
  std::uint64_t SlotsLeftInCurrent() const;

  /// The superblock the pointer is currently bound to (invalid if none
  /// yet). GC must never pick this as a victim.
  SuperblockId current_superblock() const { return current_; }

  /// Power-loss remount: drop the volatile binding. The partially filled
  /// superblock it pointed at is abandoned to GC (its live slots are
  /// still mapped and readable); the next Program binds a fresh one.
  void Remount() {
    current_ = SuperblockId{};
    index_ = 0;
    failed_.clear();
  }

 private:
  Status BindNextSuperblock();

  FlashArray& array_;
  SuperblockPool& pool_;
  const FlashGeometry& geo_;

  SuperblockId current_;   // invalid until first program
  std::uint64_t index_ = 0;  // flat position in page-fill stripe order
  std::vector<Ppn> failed_;  // burned positions of the last Program call
};

}  // namespace conzone
