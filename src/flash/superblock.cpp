#include "flash/superblock.hpp"

#include <algorithm>
#include <string>

#include "flash/array.hpp"

namespace conzone {

SuperblockPool::SuperblockPool(const FlashGeometry& geometry,
                               std::uint32_t normal_pool_count)
    : geo_(geometry),
      normal_pool_count_(std::min(normal_pool_count, geo_.NumNormalSuperblocks())) {
  for (std::uint32_t s = 0; s < geo_.NumSlcSuperblocks(); ++s) {
    free_slc_.emplace_back(SuperblockId(s));
  }
  const std::uint32_t normal_end = geo_.NumSlcSuperblocks() + normal_pool_count_;
  for (std::uint32_t s = geo_.NumSlcSuperblocks(); s < normal_end; ++s) {
    free_normal_.emplace_back(SuperblockId(s));
  }
}

bool SuperblockPool::SuperblockErased(const FlashArray& array,
                                      SuperblockId sb) const {
  bool any_healthy = false;
  for (std::uint32_t c = 0; c < geo_.NumChips(); ++c) {
    const BlockId b = geo_.BlockOfSuperblock(sb, ChipId{c});
    if (array.IsRetired(b)) continue;
    any_healthy = true;
    if (array.NextProgramSlot(b) != 0 || array.ValidSlots(b) != 0) return false;
  }
  return any_healthy;
}

void SuperblockPool::RebuildFreeLists(const FlashArray& array) {
  free_slc_.clear();
  free_normal_.clear();
  for (std::uint32_t s = 0; s < geo_.NumSlcSuperblocks(); ++s) {
    const SuperblockId sb{s};
    if (SuperblockErased(array, sb)) free_slc_.push_back(sb);
  }
  const std::uint32_t normal_end = geo_.NumSlcSuperblocks() + normal_pool_count_;
  for (std::uint32_t s = geo_.NumSlcSuperblocks(); s < normal_end; ++s) {
    const SuperblockId sb{s};
    if (SuperblockErased(array, sb)) free_normal_.push_back(sb);
  }
}

std::uint64_t SuperblockPool::EraseSum(SuperblockId sb) const {
  if (wear_ == nullptr) return 0;
  std::uint64_t sum = 0;
  for (std::uint32_t c = 0; c < geo_.NumChips(); ++c) {
    sum += wear_->EraseCount(geo_.BlockOfSuperblock(sb, ChipId{c}));
  }
  return sum;
}

SuperblockId SuperblockPool::PopLeastWorn(std::deque<SuperblockId>& free_list) {
  if (wear_ == nullptr) {
    SuperblockId sb = free_list.front();
    free_list.pop_front();
    return sb;
  }
  auto best = free_list.begin();
  std::uint64_t best_wear = EraseSum(*best);
  for (auto it = std::next(free_list.begin()); it != free_list.end(); ++it) {
    const std::uint64_t wear = EraseSum(*it);
    // Lexicographic (erase sum, id): deterministic regardless of the
    // order releases happened to enqueue members.
    if (wear < best_wear || (wear == best_wear && it->value() < best->value())) {
      best = it;
      best_wear = wear;
    }
  }
  const SuperblockId sb = *best;
  free_list.erase(best);
  return sb;
}

Result<SuperblockId> SuperblockPool::AllocateNormal() {
  if (free_normal_.empty()) {
    return Status::ResourceExhausted("no free normal superblocks; GC required");
  }
  return PopLeastWorn(free_normal_);
}

Status SuperblockPool::ReleaseNormal(SuperblockId sb) {
  if (geo_.IsSlcSuperblock(sb) || sb.value() >= geo_.NumSuperblocks()) {
    return Status::InvalidArgument("superblock " + std::to_string(sb.value()) +
                                   " is not in the normal region");
  }
  if (std::find(free_normal_.begin(), free_normal_.end(), sb) != free_normal_.end()) {
    return Status::FailedPrecondition("superblock " + std::to_string(sb.value()) +
                                      " already free");
  }
  free_normal_.push_back(sb);
  return Status::Ok();
}

Result<SuperblockId> SuperblockPool::AllocateSlc() {
  if (free_slc_.empty()) {
    return Status::ResourceExhausted("no free SLC superblocks; GC required");
  }
  return PopLeastWorn(free_slc_);
}

Status SuperblockPool::ReleaseSlc(SuperblockId sb) {
  if (!geo_.IsSlcSuperblock(sb)) {
    return Status::InvalidArgument("superblock " + std::to_string(sb.value()) +
                                   " is not in the SLC region");
  }
  if (std::find(free_slc_.begin(), free_slc_.end(), sb) != free_slc_.end()) {
    return Status::FailedPrecondition("superblock " + std::to_string(sb.value()) +
                                      " already free");
  }
  free_slc_.push_back(sb);
  return Status::Ok();
}

bool SuperblockPool::IsFreeSlc(SuperblockId sb) const {
  return std::find(free_slc_.begin(), free_slc_.end(), sb) != free_slc_.end();
}

bool SuperblockPool::IsFreeNormal(SuperblockId sb) const {
  return std::find(free_normal_.begin(), free_normal_.end(), sb) != free_normal_.end();
}

}  // namespace conzone
