#include "flash/superblock.hpp"

#include <algorithm>
#include <string>

namespace conzone {

SuperblockPool::SuperblockPool(const FlashGeometry& geometry,
                               std::uint32_t normal_pool_count)
    : geo_(geometry) {
  for (std::uint32_t s = 0; s < geo_.NumSlcSuperblocks(); ++s) {
    free_slc_.emplace_back(SuperblockId(s));
  }
  const std::uint32_t normal_end =
      geo_.NumSlcSuperblocks() +
      std::min(normal_pool_count, geo_.NumNormalSuperblocks());
  for (std::uint32_t s = geo_.NumSlcSuperblocks(); s < normal_end; ++s) {
    free_normal_.emplace_back(SuperblockId(s));
  }
}

Result<SuperblockId> SuperblockPool::AllocateNormal() {
  if (free_normal_.empty()) {
    return Status::ResourceExhausted("no free normal superblocks; GC required");
  }
  SuperblockId sb = free_normal_.front();
  free_normal_.pop_front();
  return sb;
}

Status SuperblockPool::ReleaseNormal(SuperblockId sb) {
  if (geo_.IsSlcSuperblock(sb) || sb.value() >= geo_.NumSuperblocks()) {
    return Status::InvalidArgument("superblock " + std::to_string(sb.value()) +
                                   " is not in the normal region");
  }
  if (std::find(free_normal_.begin(), free_normal_.end(), sb) != free_normal_.end()) {
    return Status::FailedPrecondition("superblock " + std::to_string(sb.value()) +
                                      " already free");
  }
  free_normal_.push_back(sb);
  return Status::Ok();
}

Result<SuperblockId> SuperblockPool::AllocateSlc() {
  if (free_slc_.empty()) {
    return Status::ResourceExhausted("no free SLC superblocks; GC required");
  }
  SuperblockId sb = free_slc_.front();
  free_slc_.pop_front();
  return sb;
}

Status SuperblockPool::ReleaseSlc(SuperblockId sb) {
  if (!geo_.IsSlcSuperblock(sb)) {
    return Status::InvalidArgument("superblock " + std::to_string(sb.value()) +
                                   " is not in the SLC region");
  }
  if (std::find(free_slc_.begin(), free_slc_.end(), sb) != free_slc_.end()) {
    return Status::FailedPrecondition("superblock " + std::to_string(sb.value()) +
                                      " already free");
  }
  free_slc_.push_back(sb);
  return Status::Ok();
}

bool SuperblockPool::IsFreeSlc(SuperblockId sb) const {
  return std::find(free_slc_.begin(), free_slc_.end(), sb) != free_slc_.end();
}

bool SuperblockPool::IsFreeNormal(SuperblockId sb) const {
  return std::find(free_normal_.begin(), free_normal_.end(), sb) != free_normal_.end();
}

}  // namespace conzone
