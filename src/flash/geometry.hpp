// Physical geometry of the emulated flash array.
//
// Topology (paper §II-A, §IV-A): `channels` buses, each with
// `chips_per_channel` dies. Every chip holds `blocks_per_chip` blocks of
// `pages_per_block` 16 KiB flash pages. The first `slc_blocks_per_chip`
// blocks of each chip are programmed in SLC mode (§III-B); the rest are
// the "normal" multi-level region (TLC/QLC).
//
// Derived structures:
//   - superblock s  = the blocks with in-chip index s across all chips;
//   - superpage     = the program units with the same offset across chips;
//   - slot          = a 4 KiB sub-page, the FTL mapping granularity and
//                     the SLC partial-programming unit.
//
// A block programmed as SLC stores 1/BitsPerCell(normal_cell) of its
// multi-level capacity; only its first `SlcUsablePagesPerBlock()` pages
// are usable.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "flash/cell.hpp"

namespace conzone {

struct FlashGeometry {
  std::uint32_t channels = 2;
  std::uint32_t chips_per_channel = 2;
  std::uint32_t blocks_per_chip = 108;
  std::uint32_t slc_blocks_per_chip = 12;
  std::uint32_t pages_per_block = 252;
  std::uint64_t page_size = 16 * kKiB;
  std::uint64_t slot_size = 4 * kKiB;
  /// Cell type of the normal (non-SLC) region.
  CellType normal_cell = CellType::kTlc;
  /// One-shot programming unit of the normal region, per chip (§IV-A:
  /// 96 KiB for the TLC configuration; §III-B mentions 64 KiB for QLC).
  std::uint64_t program_unit = 96 * kKiB;

  // --- Topology ---
  std::uint32_t NumChips() const { return channels * chips_per_channel; }
  ChannelId ChannelOfChip(ChipId chip) const {
    return ChannelId(chip.value() / chips_per_channel);
  }
  ChipId ChipAt(ChannelId ch, std::uint32_t index_in_channel) const {
    return ChipId(ch.value() * chips_per_channel + index_in_channel);
  }

  // --- Blocks ---
  std::uint64_t TotalBlocks() const {
    return static_cast<std::uint64_t>(NumChips()) * blocks_per_chip;
  }
  BlockId BlockAt(ChipId chip, std::uint32_t index_in_chip) const {
    return BlockId(chip.value() * blocks_per_chip + index_in_chip);
  }
  ChipId ChipOfBlock(BlockId b) const { return ChipId(b.value() / blocks_per_chip); }
  std::uint32_t BlockIndexInChip(BlockId b) const {
    return static_cast<std::uint32_t>(b.value() % blocks_per_chip);
  }
  bool IsSlcBlock(BlockId b) const {
    return BlockIndexInChip(b) < slc_blocks_per_chip;
  }
  CellType CellOfBlock(BlockId b) const {
    return IsSlcBlock(b) ? CellType::kSlc : normal_cell;
  }

  // --- Superblocks (rows of blocks across chips) ---
  std::uint32_t NumSuperblocks() const { return blocks_per_chip; }
  std::uint32_t NumSlcSuperblocks() const { return slc_blocks_per_chip; }
  std::uint32_t NumNormalSuperblocks() const {
    return blocks_per_chip - slc_blocks_per_chip;
  }
  bool IsSlcSuperblock(SuperblockId s) const {
    return s.value() < slc_blocks_per_chip;
  }
  BlockId BlockOfSuperblock(SuperblockId s, ChipId chip) const {
    return BlockAt(chip, static_cast<std::uint32_t>(s.value()));
  }
  SuperblockId SuperblockOfBlock(BlockId b) const {
    return SuperblockId(BlockIndexInChip(b));
  }

  // --- Pages and slots ---
  std::uint32_t SlotsPerPage() const {
    return static_cast<std::uint32_t>(page_size / slot_size);
  }
  std::uint64_t TotalFlashPages() const { return TotalBlocks() * pages_per_block; }
  std::uint64_t TotalSlots() const { return TotalFlashPages() * SlotsPerPage(); }
  FlashPageId PageAt(BlockId b, std::uint32_t page_in_block) const {
    return FlashPageId(b.value() * pages_per_block + page_in_block);
  }
  BlockId BlockOfPage(FlashPageId p) const { return BlockId(p.value() / pages_per_block); }
  std::uint32_t PageIndexInBlock(FlashPageId p) const {
    return static_cast<std::uint32_t>(p.value() % pages_per_block);
  }
  Ppn SlotAt(FlashPageId p, std::uint32_t slot_in_page) const {
    return Ppn(p.value() * SlotsPerPage() + slot_in_page);
  }
  FlashPageId PageOfSlot(Ppn s) const { return FlashPageId(s.value() / SlotsPerPage()); }
  std::uint32_t SlotIndexInPage(Ppn s) const {
    return static_cast<std::uint32_t>(s.value() % SlotsPerPage());
  }
  BlockId BlockOfSlot(Ppn s) const { return BlockOfPage(PageOfSlot(s)); }
  ChipId ChipOfSlot(Ppn s) const { return ChipOfBlock(BlockOfSlot(s)); }
  std::uint32_t SlotIndexInBlock(Ppn s) const {
    return static_cast<std::uint32_t>(s.value() %
                                      (static_cast<std::uint64_t>(pages_per_block) * SlotsPerPage()));
  }

  // --- Program units ---
  std::uint32_t PagesPerProgramUnit() const {
    return static_cast<std::uint32_t>(program_unit / page_size);
  }
  std::uint32_t UnitsPerBlock() const {
    return pages_per_block / PagesPerProgramUnit();
  }
  /// Superpage = one program unit per chip (§II-A): the flush granularity
  /// that exploits full device parallelism.
  std::uint64_t SuperpageBytes() const {
    return program_unit * NumChips();
  }

  // --- SLC capacity ---
  std::uint32_t SlcUsablePagesPerBlock() const {
    return pages_per_block / BitsPerCell(normal_cell);
  }
  std::uint32_t SlcUsableSlotsPerBlock() const {
    return SlcUsablePagesPerBlock() * SlotsPerPage();
  }
  std::uint64_t SlcUsableBytesPerSuperblock() const {
    return static_cast<std::uint64_t>(SlcUsablePagesPerBlock()) * page_size * NumChips();
  }

  // --- Normal-region capacity ---
  std::uint64_t BlockDataBytes() const {
    return static_cast<std::uint64_t>(pages_per_block) * page_size;
  }
  std::uint64_t NormalSuperblockBytes() const {
    return BlockDataBytes() * NumChips();
  }
  std::uint64_t NormalRegionBytes() const {
    return NormalSuperblockBytes() * NumNormalSuperblocks();
  }

  /// Validate internal consistency; every device constructor calls this.
  Status Validate() const;
};

}  // namespace conzone
