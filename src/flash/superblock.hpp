// Superblock free-list management.
//
// Superblock s = the blocks with in-chip index s across every chip
// (paper §II-A). The SLC region's superblocks cycle through a free list:
// the secondary write buffer consumes them and the composite GC (§III-D)
// erases victims back onto the list. ConZone statically reserves the
// normal region's superblocks for zones and never touches the normal
// free list; the Legacy baseline (traditional FTL, §IV-A) allocates them
// dynamically through it.
#pragma once

#include <cstdint>
#include <deque>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "flash/geometry.hpp"

namespace conzone {

class FlashArray;

class SuperblockPool {
 public:
  /// `normal_pool_count` limits the normal free list to the first that
  /// many normal superblocks (UINT32_MAX = all; ConZone restricts it to
  /// the conventional-zone backing, Legacy uses the whole region).
  explicit SuperblockPool(const FlashGeometry& geometry,
                          std::uint32_t normal_pool_count = ~0u);

  /// Make allocation erase-count-aware: with a wear source attached,
  /// Allocate{Slc,Normal} pick the free superblock with the lowest total
  /// erase count (ties broken by lowest id — deterministic) instead of
  /// FIFO order. FIFO only levels wear that the pool itself caused;
  /// min-wear also corrects pre-existing imbalance (uneven retirement,
  /// re-drive hotspots, factory-worn blocks) by steering churn away from
  /// hot superblocks. `array` must outlive the pool.
  void AttachWearSource(const FlashArray* array) { wear_ = array; }

  /// Take a free SLC superblock: least-worn first when a wear source is
  /// attached, else FIFO (which levels only self-inflicted wear).
  Result<SuperblockId> AllocateSlc();

  /// Return an erased SLC superblock to the free list.
  Status ReleaseSlc(SuperblockId sb);

  std::size_t FreeSlcCount() const { return free_slc_.size(); }
  std::uint32_t TotalSlcCount() const { return geo_.NumSlcSuperblocks(); }
  /// Whether `sb` currently sits on the SLC free list. GC victim selection
  /// needs this explicitly once retired blocks exist: a free-list member
  /// can still carry stale slot state in a retired block, so "no valid
  /// slots" is no longer a reliable free-ness test.
  bool IsFreeSlc(SuperblockId sb) const;

  /// Take a free normal-region superblock (Legacy FTL allocation).
  Result<SuperblockId> AllocateNormal();
  /// Return an erased normal superblock to the free list.
  Status ReleaseNormal(SuperblockId sb);
  std::size_t FreeNormalCount() const { return free_normal_.size(); }
  std::uint32_t TotalNormalCount() const { return geo_.NumNormalSuperblocks(); }
  bool IsFreeNormal(SuperblockId sb) const;

  /// Free-list snapshots in list order, for checkpoint serialization.
  const std::deque<SuperblockId>& FreeSlcList() const { return free_slc_; }
  const std::deque<SuperblockId>& FreeNormalList() const { return free_normal_; }

  /// Sum of per-chip block erase counts for `sb` (0 without wear source).
  std::uint64_t EraseSum(SuperblockId sb) const;

  /// Power-loss remount: rebuild both free lists from media state. A
  /// superblock is free iff every healthy block in it is erased (cursor
  /// and valid count zero) and at least one healthy block remains —
  /// fully-retired superblocks must never cycle back into allocation.
  /// Retired blocks may keep a stale cursor (the live free lists allow
  /// that too, see IsFreeSlc). The normal list keeps its configured cap.
  void RebuildFreeLists(const FlashArray& array);

 private:
  /// Pop FIFO front, or the (erase-sum, id)-minimal member when a wear
  /// source is attached.
  SuperblockId PopLeastWorn(std::deque<SuperblockId>& free_list);
  bool SuperblockErased(const FlashArray& array, SuperblockId sb) const;

  FlashGeometry geo_;
  std::uint32_t normal_pool_count_ = 0;
  std::deque<SuperblockId> free_slc_;
  std::deque<SuperblockId> free_normal_;
  const FlashArray* wear_ = nullptr;
};

}  // namespace conzone
