#include "flash/timing_engine.hpp"

#include <cassert>

namespace conzone {

FlashTimingEngine::FlashTimingEngine(const FlashGeometry& geometry,
                                     const TimingConfig& timing)
    : geo_(geometry), timing_(timing), div_bw_(timing.channel_bandwidth_bps) {
  chips_.resize(geo_.NumChips());
  chip_reads_.resize(geo_.NumChips());
  channels_.resize(geo_.channels);
  bus_of_chip_.resize(geo_.NumChips());
  for (std::uint32_t c = 0; c < geo_.NumChips(); ++c) {
    bus_of_chip_[c] = static_cast<std::uint32_t>(geo_.ChannelOfChip(ChipId{c}).value());
  }
  last_pulse_start_.resize(geo_.NumChips(), SimTime::Zero());
}

SimTime FlashTimingEngine::ReadPage(ChipId chip, CellType cell, std::uint64_t bytes,
                                    SimTime issue, std::uint32_t retries) {
  assert(chip.value() < chips_.size());
  auto& die = chips_[static_cast<std::size_t>(chip.value())];
  auto& bus = BusOf(chip);

  // Each read-retry step re-senses the page with shifted reference
  // voltages; the suspend penalty (controller round-trip) is paid once.
  const SimDuration sense_latency =
      timing_.For(cell).read_latency * static_cast<std::uint64_t>(1 + retries);
  if (retries > 0 && rel_ != nullptr) {
    const SimDuration extra =
        timing_.For(cell).read_latency * static_cast<std::uint64_t>(retries);
    rel_->recovery_time += extra;
    rel_->read_retry_hist.Record(extra);
  }

  ResourceTimeline::Reservation sense;
  if (timing_.program_suspend_reads) {
    // The sense preempts any in-flight program pulse (at a penalty)
    // instead of queueing behind it; reads still serialize against each
    // other on the die's read path.
    auto& reads = chip_reads_[static_cast<std::size_t>(chip.value())];
    const bool program_in_flight = die.busy_until() > issue;
    SimDuration cost = sense_latency;
    if (program_in_flight) cost += timing_.read_suspend_penalty;
    sense = reads.Reserve(issue, cost);
  } else {
    sense = die.Reserve(issue, sense_latency);
  }
  const auto xfer = bus.Reserve(sense.end, XferTime(bytes));
  if (!timing_.program_suspend_reads && xfer.end > die.busy_until()) {
    // The die's register holds the data until the bus drains it; extend
    // the die occupancy without double-counting utilization.
    die.Reserve(die.busy_until(), xfer.end - die.busy_until());
  }
  return xfer.end;
}

FlashTimingEngine::ProgramResult FlashTimingEngine::Program(ChipId chip, CellType cell,
                                                            std::uint64_t bytes,
                                                            SimTime issue) {
  assert(chip.value() < chips_.size());
  auto& die = chips_[static_cast<std::size_t>(chip.value())];
  auto& bus = BusOf(chip);

  // Cache-register pipelining, one level deep: the transfer may overlap
  // the die's in-flight pulse, but only once that pulse has latched the
  // register (pulse start).
  const SimTime reg_free = last_pulse_start_[static_cast<std::size_t>(chip.value())];
  const auto xfer = bus.Reserve(Later(issue, reg_free), XferTime(bytes));
  const auto pulse = die.Reserve(xfer.end, timing_.For(cell).program_latency);
  last_pulse_start_[static_cast<std::size_t>(chip.value())] = pulse.start;
  return ProgramResult{xfer.end, pulse.end};
}

FlashTimingEngine::ProgramResult FlashTimingEngine::ProgramFold(
    ChipId chip, CellType cell, std::uint64_t total_bytes, std::uint64_t fresh_bytes,
    SimTime fresh_ready, SimTime staged_ready) {
  assert(chip.value() < chips_.size());
  auto& die = chips_[static_cast<std::size_t>(chip.value())];
  auto& bus = BusOf(chip);

  // The fresh (write-buffer) part streams into the die's cache register
  // as soon as the register is free — this is the moment the buffer SRAM
  // is reusable. The folded (SLC read-back) part streams once its reads
  // complete; the pulse fires when the whole unit is assembled.
  const SimTime reg_free = last_pulse_start_[static_cast<std::size_t>(chip.value())];
  const auto fresh =
      bus.Reserve(Later(fresh_ready, reg_free), XferTime(fresh_bytes));
  const auto staged = bus.Reserve(Later(staged_ready, fresh.end),
                                  XferTime(total_bytes - fresh_bytes));
  const auto pulse = die.Reserve(staged.end, timing_.For(cell).program_latency);
  last_pulse_start_[static_cast<std::size_t>(chip.value())] = pulse.start;
  return ProgramResult{fresh.end, pulse.end};
}

SimTime FlashTimingEngine::Erase(ChipId chip, CellType cell, SimTime issue) {
  assert(chip.value() < chips_.size());
  auto& die = chips_[static_cast<std::size_t>(chip.value())];
  return die.Reserve(issue, timing_.For(cell).erase_latency).end;
}

SimTime FlashTimingEngine::ChipIdleAt(ChipId chip) const {
  return chips_[static_cast<std::size_t>(chip.value())].busy_until();
}

SimDuration FlashTimingEngine::TotalChipBusy() const {
  SimDuration total;
  for (const auto& c : chips_) total += c.busy_time();
  for (const auto& c : chip_reads_) total += c.busy_time();
  return total;
}

SimDuration FlashTimingEngine::TotalChannelBusy() const {
  SimDuration total;
  for (const auto& c : channels_) total += c.busy_time();
  return total;
}

FlashTimingEngine::ProgramResult ProgramSlcSlots(FlashTimingEngine& engine,
                                                 const FlashGeometry& geo,
                                                 std::span<const Ppn> ppns,
                                                 SimTime issue) {
  FlashTimingEngine::ProgramResult out{issue, issue};
  std::size_t i = 0;
  while (i < ppns.size()) {
    const FlashPageId page = geo.PageOfSlot(ppns[i]);
    std::size_t j = i + 1;
    while (j < ppns.size() && geo.PageOfSlot(ppns[j]) == page) ++j;
    const auto prog = engine.Program(geo.ChipOfBlock(geo.BlockOfPage(page)),
                                     CellType::kSlc,
                                     (j - i) * geo.slot_size, issue);
    out.data_in = Later(out.data_in, prog.data_in);
    out.end = Later(out.end, prog.end);
    i = j;
  }
  return out;
}

FlashTimingEngine::ProgramResult ChargeSlcRewrites(FlashTimingEngine& engine,
                                                   const FlashGeometry& geo,
                                                   std::span<const Ppn> ppns,
                                                   SimTime issue,
                                                   ReliabilityStats* rel) {
  if (ppns.empty()) return FlashTimingEngine::ProgramResult{issue, issue};
  const auto prog = ProgramSlcSlots(engine, geo, ppns, issue);
  if (rel != nullptr) {
    const SimDuration spent = engine.timing().For(CellType::kSlc).program_latency *
                              static_cast<std::uint64_t>(ppns.size());
    rel->recovery_time += spent;
    rel->redrive_hist.Record(spent);
    rel->rewrite_slots += ppns.size();
  }
  return prog;
}

}  // namespace conzone
