// Flash cell types.
//
// Consumer-grade zoned flash is heterogeneous (paper §II-A, §III-B): a
// small region of blocks is programmed in SLC mode (fast, 4 KiB partial
// programming) and fronts the normal multi-level region (TLC or QLC,
// large one-shot programming unit, slow).
#pragma once

#include <cstdint>
#include <string_view>

namespace conzone {

enum class CellType : std::uint8_t {
  kSlc = 0,
  kTlc = 1,
  kQlc = 2,
};

constexpr std::string_view CellTypeName(CellType t) {
  switch (t) {
    case CellType::kSlc: return "SLC";
    case CellType::kTlc: return "TLC";
    case CellType::kQlc: return "QLC";
  }
  return "?";
}

/// Bits stored per cell; also the capacity divisor when a multi-level
/// block is programmed in SLC mode.
constexpr std::uint32_t BitsPerCell(CellType t) {
  switch (t) {
    case CellType::kSlc: return 1;
    case CellType::kTlc: return 3;
    case CellType::kQlc: return 4;
  }
  return 1;
}

}  // namespace conzone
