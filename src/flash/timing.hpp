// Media timing model (paper Table II) and channel transfer model.
//
// Latencies default to the published numbers the paper adopts:
//
//              SLC          TLC            QLC
//   Program    75 us [27]   937.5 us [28]  6400 us [29]
//   Read       20 us        32 us [28]     85 us [29]
//
// Erase times are not in Table II; we use typical 3D NAND block erase
// figures (3.5 ms) — they only matter for GC and zone-reset costs.
// The channel model is a shared bus per channel at a configurable
// bandwidth (default 3200 MiB/s, the UFS 4.0-derived figure from §IV-A).
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "common/units.hpp"
#include "flash/cell.hpp"

namespace conzone {

struct MediaTiming {
  SimDuration read_latency;
  SimDuration program_latency;
  SimDuration erase_latency;
};

struct TimingConfig {
  MediaTiming slc{SimDuration::Micros(20), SimDuration::Micros(75),
                  SimDuration::Millis(3)};
  MediaTiming tlc{SimDuration::Micros(32), SimDuration::MicrosF(937.5),
                  SimDuration::MicrosF(3500)};
  MediaTiming qlc{SimDuration::Micros(85), SimDuration::Micros(6400),
                  SimDuration::MicrosF(3500)};

  /// Channel (flash bus) bandwidth in bytes/second. §IV-A: 3200 MiB/s.
  std::uint64_t channel_bandwidth_bps = 3200 * kMiB;

  /// Program-suspend-to-read: mobile NAND lets a read preempt an ongoing
  /// program pulse at a fixed penalty instead of queueing behind it.
  /// Without it, the fold-back path (§III-B ③) serializes behind every
  /// in-flight one-shot program.
  bool program_suspend_reads = true;
  SimDuration read_suspend_penalty = SimDuration::Micros(40);

  const MediaTiming& For(CellType t) const {
    switch (t) {
      case CellType::kSlc: return slc;
      case CellType::kTlc: return tlc;
      case CellType::kQlc: return qlc;
    }
    return slc;
  }

  /// Time to move `bytes` over one channel.
  SimDuration TransferTime(std::uint64_t bytes) const {
    if (channel_bandwidth_bps == 0) return SimDuration();  // ideal bus (FEMU mode)
    // ns = bytes / (B/s) * 1e9. Transfers are at most a few MiB, so the
    // product fits in 64 bits and the (much cheaper) 64-bit divider
    // gives the same result; only absurd sizes take the 128-bit path.
    if (bytes <= UINT64_MAX / 1000000000ull) {
      return SimDuration::Nanos(bytes * 1000000000ull / channel_bandwidth_bps);
    }
    const unsigned __int128 ns =
        static_cast<unsigned __int128>(bytes) * 1000000000ull / channel_bandwidth_bps;
    return SimDuration::Nanos(static_cast<std::uint64_t>(ns));
  }
};

}  // namespace conzone
