// Flash operation scheduling on contended chip/channel resources.
//
// Each die and each channel bus is a ResourceTimeline. Operations are
// scheduled with the classic ordering:
//
//   read:    [chip: sense tR] -> [channel: transfer out] (chip holds its
//            data register until the transfer drains);
//   program: [channel: transfer in] -> [chip: program tPROG];
//   erase:   [chip: tERASE].
//
// Ops on different chips overlap freely; the two chips of one channel
// contend for the bus — which is exactly the mechanism that lets a
// superpage flush engage all four chips in parallel (paper §II-A) while
// the 3200 MiB/s UFS-class bus still bounds burst transfer rates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fastdiv.hpp"
#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "flash/geometry.hpp"
#include "flash/timing.hpp"
#include "sim/resource.hpp"

namespace conzone {

class FlashTimingEngine {
 public:
  FlashTimingEngine(const FlashGeometry& geometry, const TimingConfig& timing);

  /// Reliability sink for recovery-time accounting (read-retry re-senses,
  /// burned pulses). Null (default) skips the bookkeeping.
  void AttachReliability(ReliabilityStats* rel) { rel_ = rel; }

  /// Sense one page of `cell` media on `chip` and stream `bytes` out over
  /// the chip's channel. Returns the completion time. `retries` is the
  /// page's read-retry level: each step repeats the sense with shifted
  /// reference voltages, so the die stays busy (1 + retries) x tR.
  SimTime ReadPage(ChipId chip, CellType cell, std::uint64_t bytes, SimTime issue,
                   std::uint32_t retries = 0);

  struct ProgramResult {
    /// When the source buffer is drained (data fully streamed into the
    /// die's register) — the write-buffer SRAM is reusable from here.
    SimTime data_in;
    /// When the program pulse finishes (data durable on media).
    SimTime end;
  };
  /// Stream `bytes` to `chip` and run one program pulse of `cell` media.
  ProgramResult Program(ChipId chip, CellType cell, std::uint64_t bytes, SimTime issue);

  /// Fold-back program (§III-B ③): `fresh_bytes` come from the write
  /// buffer (available at `fresh_ready`, and releasing it at data_in),
  /// the rest from SLC read-back completing at `staged_ready`.
  ProgramResult ProgramFold(ChipId chip, CellType cell, std::uint64_t total_bytes,
                            std::uint64_t fresh_bytes, SimTime fresh_ready,
                            SimTime staged_ready);

  SimTime Erase(ChipId chip, CellType cell, SimTime issue);

  /// When `chip` next goes idle (for GC scheduling heuristics).
  SimTime ChipIdleAt(ChipId chip) const;

  const TimingConfig& timing() const { return timing_; }

  /// Aggregate busy time across chips/channels (utilization reporting).
  SimDuration TotalChipBusy() const;
  SimDuration TotalChannelBusy() const;

 private:
  /// Channel bus serving `chip` (chip→channel mapping is fixed at
  /// construction; indexing a table beats re-dividing per operation).
  ResourceTimeline& BusOf(ChipId chip) {
    return channels_[bus_of_chip_[static_cast<std::size_t>(chip.value())]];
  }

  /// TimingConfig::TransferTime with the bandwidth division answered by
  /// the precomputed reciprocal (one transfer per flash op adds up).
  SimDuration XferTime(std::uint64_t bytes) const {
    if (timing_.channel_bandwidth_bps == 0) return SimDuration();
    if (bytes <= UINT64_MAX / 1000000000ull) {
      return SimDuration::Nanos(div_bw_.Div(bytes * 1000000000ull));
    }
    return timing_.TransferTime(bytes);
  }

  FlashGeometry geo_;
  TimingConfig timing_;
  std::vector<ResourceTimeline> chips_;       ///< Program/erase path per die.
  std::vector<ResourceTimeline> chip_reads_;  ///< Suspend-mode read path per die.
  std::vector<ResourceTimeline> channels_;
  std::vector<std::uint32_t> bus_of_chip_;    ///< chip -> index in channels_
  FastDiv div_bw_;                            ///< timing_.channel_bandwidth_bps
  ReliabilityStats* rel_ = nullptr;           ///< Recovery-time sink (optional).
  /// Start time of each die's most recent program pulse. The die's single
  /// cache register frees when the pulse latches it into the array, so
  /// the *next* program's transfer may begin then — one-deep pipelining,
  /// which is what bounds host-visible write throughput to the pulse
  /// cadence instead of RAM speed.
  std::vector<SimTime> last_pulse_start_;
};

/// Program a run of SLC slots allocated in page-fill stripe order: slots
/// sharing a flash page batch into one program pulse (partial page
/// programs still cost a full pulse). Returns the latest data-in and
/// pulse-end times across the groups.
FlashTimingEngine::ProgramResult ProgramSlcSlots(FlashTimingEngine& engine,
                                                 const FlashGeometry& geo,
                                                 std::span<const Ppn> ppns,
                                                 SimTime issue);

/// Charge the media time of SLC program pulses that FAILED: the die still
/// ran each pulse before the verify rejected it, so the burned slots cost
/// normal ProgramSlcSlots time, booked as recovery work in `rel` together
/// with the rewrite count. (The successful re-drive is charged by the
/// caller through the ordinary program path.)
FlashTimingEngine::ProgramResult ChargeSlcRewrites(FlashTimingEngine& engine,
                                                   const FlashGeometry& geo,
                                                   std::span<const Ppn> ppns,
                                                   SimTime issue,
                                                   ReliabilityStats* rel);

}  // namespace conzone
