// Log-structured normal-region allocator (Legacy baseline and the
// conventional-zone pool of ConZone).
//
// Traditional consumer flash storage (§II-A, the "Legacy" device of
// §IV-A) has no zones: the controller appends wherever its write pointer
// says, and a page-mapping table tracks every 4 KiB slot. This allocator
// is that write pointer: it binds to a free normal superblock and hands
// out one-shot program units striped across the chips; exhausted
// superblocks are replaced from the pool, and the Legacy GC erases
// victims back onto it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "flash/array.hpp"
#include "flash/geometry.hpp"
#include "flash/superblock.hpp"

namespace conzone {

class NormalAllocator {
 public:
  NormalAllocator(FlashArray& array, SuperblockPool& pool);

  /// Program exactly one unit (program_unit bytes) of slots; `writes`
  /// must contain unit/slot_size entries. Returns the PPN of each slot
  /// and the chip that executed the program (for timing).
  ///
  /// Media faults are absorbed here: a failed one-shot program retires
  /// the block and the unit is re-driven at the next healthy position; a
  /// successful return means the unit landed. The chips whose pulses
  /// burned are reported via last_failed_chips() for timing charges.
  struct UnitResult {
    std::vector<Ppn> ppns;
    ChipId chip;
  };
  Result<UnitResult> ProgramUnit(std::span<const SlotWrite> writes);

  /// Chips that burned a failed one-shot pulse during the most recent
  /// ProgramUnit call.
  std::span<const ChipId> last_failed_chips() const { return failed_chips_; }

  SuperblockId current_superblock() const { return current_; }

  /// Power-loss remount: drop the volatile binding; the next ProgramUnit
  /// binds a fresh superblock and the abandoned tail is left to GC.
  void Remount() {
    current_ = SuperblockId{};
    row_ = 0;
    chip_off_ = 0;
    failed_chips_.clear();
  }

 private:
  Status BindNextSuperblock();

  FlashArray& array_;
  SuperblockPool& pool_;
  const FlashGeometry& geo_;

  SuperblockId current_;
  std::uint32_t row_ = 0;       // unit row within the superblock
  std::uint32_t chip_off_ = 0;  // next chip within the row
  std::vector<ChipId> failed_chips_;  // burned pulses of the last call
};

}  // namespace conzone
