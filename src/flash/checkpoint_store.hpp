// Durable L2P checkpoint images (ISSUE 8 / DESIGN.md §12).
//
// A checkpoint is a point-in-time snapshot of the FTL's rebuildable RAM
// state — L2P mapping, zone write pointers, superblock free lists — plus
// the FlashArray program-sequence watermark taken at the same instant.
// At mount, the newest valid image replays the mapping directly and the
// OOB scan shrinks to the blocks programmed after the watermark (the
// "tail"), turning remount cost from O(used pages) into O(tail).
//
// On-flash model: like the L2P log, the checkpoint region is side-band
// metadata flash — the store keeps the serialized blob in host memory
// and the device charges honest erase+program timing for every commit.
// Two reserved slots ping-pong: a commit always overwrites the slot NOT
// holding the newest valid image, so a cut during the write leaves the
// previous image intact. Each image carries a monotonic sequence number
// and an FNV-1a checksum; mount picks the newest slot whose checksum
// verifies (serial-number arithmetic, so wraparound orders correctly)
// and a torn or corrupt slot simply loses the election — worst case both
// slots are torn and mount falls back to the full scan.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"

namespace conzone {

struct CheckpointConfig {
  /// Master switch. Requires the L2P log (the interval counts flushed
  /// log entries); ConZoneConfig::Validate enforces that.
  bool enabled = false;
  /// Write a checkpoint after this many flushed L2P-log entries.
  std::uint64_t interval_entries = 16384;
  /// Also checkpoint on a clean host Flush/FUA — the device is quiescent
  /// and the log was just force-flushed, so the image is cheap to place.
  bool on_host_flush = true;
  /// Skip the on-flush checkpoint unless at least this many log entries
  /// flushed since the last image (a flush-heavy host would otherwise
  /// pay a full image per Flush).
  std::uint64_t min_flush_entries = 256;
  /// Load the newest valid image at mount. Off = write checkpoints but
  /// ignore them when recovering (full scan) — the bit-identity twin in
  /// the crash tests proves the fast path against this reference.
  bool load_at_mount = true;

  Status Validate() const;
};

/// One extent of the L2P mapping: `count` consecutive lpns starting at
/// `lpn` map to consecutive ppns starting at `ppn`. Zoned workloads are
/// extent-shaped (zones fill sequentially, SLC stages sequentially), so
/// run-length coding keeps the image O(extents) instead of O(pages).
/// Chip striping breaks extents every program unit; Encode additionally
/// folds arithmetic progressions of runs (constant stride, then a second
/// level over the fold) so a striped zone serializes in O(1) records and
/// the image load stays a page-sized read at any fullness. Worst case
/// (fully random maps) degrades to one-entry runs.
struct MapRun {
  std::uint64_t lpn = 0;
  std::uint64_t ppn = 0;
  std::uint64_t count = 0;
  bool operator==(const MapRun&) const = default;
};

/// Per-zone reconciliation snapshot. `write_pointer` doubles as the
/// staged-end byte offset. When kFlagRestorable is set, the snapshot was
/// computed from the mapping by the same pure reconciliation the mount
/// path runs, with no orphan islands — a zone untouched since the image
/// restores from these fields without re-walking its lpns. Without the
/// flag (or for a zone dirtied after the snapshot) the fields are
/// advisory and media reconciliation stays authoritative.
struct ZoneSnap {
  static constexpr std::uint64_t kFlagDegraded = 1;
  static constexpr std::uint64_t kFlagPatchContiguous = 2;
  static constexpr std::uint64_t kFlagRestorable = 4;
  std::uint64_t write_pointer = 0;
  std::uint64_t durable_normal_end = 0;
  std::uint64_t patch_start = 0;  ///< Raw ppn; meaningful per flags.
  std::uint64_t flags = 0;
  bool operator==(const ZoneSnap&) const = default;
};

/// Decoded checkpoint payload. Encode/Decode round-trip through the
/// versioned, checksummed wire format described in DESIGN.md §12.
struct CheckpointImage {
  std::uint64_t seq = 0;          ///< Monotonic image number (slot election).
  std::uint64_t program_seq = 0;  ///< FlashArray watermark at snapshot.
  /// L2P mapping at snapshot as extents, in lpn order.
  std::vector<MapRun> mappings;
  /// Append (lpn, ppn), extending the tail run when contiguous.
  void AddMapping(std::uint64_t lpn, std::uint64_t ppn) {
    if (!mappings.empty()) {
      MapRun& tail = mappings.back();
      if (lpn == tail.lpn + tail.count && ppn == tail.ppn + tail.count) {
        ++tail.count;
        return;
      }
    }
    mappings.push_back(MapRun{lpn, ppn, 1});
  }
  /// Per-zone snapshots, one per device zone (conventional + sequential).
  std::vector<ZoneSnap> zones;
  /// Free-list snapshots (superblock ids, list order). Advisory, as above.
  std::vector<std::uint64_t> free_slc;
  std::vector<std::uint64_t> free_normal;

  std::vector<std::uint8_t> Encode() const;
  /// Validates magic, version, structural sizes and the FNV-1a trailer;
  /// nullopt on any mismatch (a torn or corrupt image must lose quietly).
  static std::optional<CheckpointImage> Decode(
      const std::vector<std::uint8_t>& blob);

  /// a strictly newer than b in serial-number arithmetic (RFC 1982
  /// style): wraparound-safe as long as live images are < 2^63 apart.
  static bool SeqNewer(std::uint64_t a, std::uint64_t b) {
    return a != b && (a - b) < (1ull << 63);
  }
};

class CheckpointStore {
 public:
  struct Slot {
    bool valid = false;
    std::uint64_t seq = 0;
    SimTime media_end;  ///< When the image's last program completes.
    std::vector<std::uint8_t> blob;
    /// Decode-verification cache: Commit installs a freshly encoded blob
    /// (trivially decodable), so the election does not re-checksum a
    /// megabyte image on every call — the mount path still runs one full
    /// Decode before trusting any entry. CorruptByteForTest clears it.
    mutable bool verified = false;
  };

  static constexpr int kSlots = 2;

  /// Slot a new image must target: the one NOT holding the newest valid
  /// image (ping-pong). With no valid image, slot 0.
  int NextSlot() const;

  /// Install `blob` into `slot`. `media_end` is the simulated completion
  /// time of the image's last program; a later power cut before that
  /// instant tears the slot.
  void Commit(int slot, std::vector<std::uint8_t> blob, std::uint64_t seq,
              SimTime media_end);

  /// Invalidate every slot whose write had not completed by `cut`.
  /// Returns the number of slots torn.
  std::uint64_t ApplyPowerCut(SimTime cut);

  /// Newest slot whose blob decodes (checksum verifies). Ties — two valid
  /// slots with equal seq, possible only via external corruption — go to
  /// the lower slot index. Null when no slot survives.
  const Slot* NewestValid() const;

  /// Sequence number the next image should carry (newest valid + 1,
  /// starting at 1).
  std::uint64_t NextSeq() const;

  const Slot& slot(int i) const { return slots_[static_cast<std::size_t>(i)]; }
  /// Test hook: flip one byte of a committed blob in place.
  void CorruptByteForTest(int slot, std::size_t offset);

 private:
  Slot slots_[kSlots];
};

}  // namespace conzone
