#include "flash/geometry.hpp"

#include <string>

namespace conzone {

Status FlashGeometry::Validate() const {
  if (channels == 0 || chips_per_channel == 0) {
    return Status::InvalidArgument("geometry: need at least one channel and chip");
  }
  if (blocks_per_chip == 0 || pages_per_block == 0) {
    return Status::InvalidArgument("geometry: need at least one block and page");
  }
  if (slc_blocks_per_chip >= blocks_per_chip) {
    return Status::InvalidArgument(
        "geometry: SLC region must leave room for normal blocks");
  }
  if (page_size == 0 || slot_size == 0 || page_size % slot_size != 0) {
    return Status::InvalidArgument("geometry: page_size must be a multiple of slot_size");
  }
  if (normal_cell == CellType::kSlc) {
    return Status::InvalidArgument("geometry: normal region cannot be SLC");
  }
  if (program_unit == 0 || program_unit % page_size != 0) {
    return Status::InvalidArgument(
        "geometry: program_unit must be a whole number of flash pages");
  }
  if (pages_per_block % PagesPerProgramUnit() != 0) {
    return Status::InvalidArgument(
        "geometry: pages_per_block=" + std::to_string(pages_per_block) +
        " not divisible by pages per program unit=" +
        std::to_string(PagesPerProgramUnit()));
  }
  if (pages_per_block % BitsPerCell(normal_cell) != 0) {
    return Status::InvalidArgument(
        "geometry: pages_per_block must divide evenly in SLC mode");
  }
  return Status::Ok();
}

}  // namespace conzone
