#include "flash/checkpoint_store.hpp"

namespace conzone {

namespace {

// Same FNV-1a parameters as the crash-consistency checker, so a
// checkpoint checksum failure and a fingerprint mismatch speak the same
// dialect.
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

constexpr std::uint64_t kMagic = 0x434F4E5A43504B54ull;  // "CONZCPKT"
constexpr std::uint64_t kVersion = 1;

// Header: magic, version, seq, program_seq, then the four payload counts.
constexpr std::size_t kHeaderWords = 8;

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// FNV-1a over the blob's little-endian u64 words (the format is whole
// words by construction). Word-at-a-time matters: FNV is a serial
// multiply chain, and folding 8 bytes per step keeps the checksum from
// dominating mount wall-clock on megabyte images. Any single-byte flip
// still changes its word, hence the hash.
std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i + 8 <= n; i += 8) {
    h ^= GetU64(data + i);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

Status CheckpointConfig::Validate() const {
  if (!enabled) return Status::Ok();
  if (interval_entries == 0) {
    return Status::InvalidArgument("checkpoint: interval_entries must be > 0");
  }
  return Status::Ok();
}

namespace {

// Mapping-record tags. A striped zone serializes as a handful of kSuper
// records: the run level captures one program unit, kGroup folds the
// chip interleave (constant ppn stride), kSuper folds the repetition of
// that interleave down the superblock.
constexpr std::uint64_t kTagRun = 1;    // lpn, ppn, count
constexpr std::uint64_t kTagGroup = 2;  // + ways, stride
constexpr std::uint64_t kTagSuper = 3;  // + reps, stride2

struct FoldGroup {
  std::uint64_t lpn = 0;
  std::uint64_t ppn = 0;
  std::uint64_t count = 0;
  std::uint64_t ways = 1;
  std::uint64_t stride = 0;
};

// Greedily fold maximal arithmetic progressions of equal-length,
// lpn-contiguous runs into groups.
std::vector<FoldGroup> FoldRuns(const std::vector<MapRun>& runs) {
  std::vector<FoldGroup> out;
  for (std::size_t i = 0; i < runs.size();) {
    FoldGroup g{runs[i].lpn, runs[i].ppn, runs[i].count, 1, 0};
    while (i + g.ways < runs.size()) {
      const MapRun& next = runs[i + g.ways];
      if (next.count != g.count || next.lpn != g.lpn + g.ways * g.count) break;
      const std::uint64_t stride = next.ppn - g.ppn;  // wrapping on purpose
      if (g.ways == 1) {
        g.stride = stride;
      } else if (stride != g.ways * g.stride) {
        break;
      }
      ++g.ways;
    }
    i += static_cast<std::size_t>(g.ways);
    out.push_back(g);
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> CheckpointImage::Encode() const {
  // Two folding levels: runs -> groups (chip interleave), then identical
  // adjacent groups -> supers (interleave repeated down the superblock).
  const std::vector<FoldGroup> groups = FoldRuns(mappings);
  std::vector<std::uint8_t> out;
  out.reserve((kHeaderWords + 8 * groups.size() + 4 * zones.size() +
               free_slc.size() + free_normal.size() + 1) * 8);
  PutU64(out, kMagic);
  PutU64(out, kVersion);
  PutU64(out, seq);
  PutU64(out, program_seq);
  std::uint64_t n_rec = 0;
  const std::size_t count_at = out.size();
  PutU64(out, 0);  // record count, patched below
  PutU64(out, zones.size());
  PutU64(out, free_slc.size());
  PutU64(out, free_normal.size());
  for (std::size_t j = 0; j < groups.size();) {
    const FoldGroup& g = groups[j];
    std::uint64_t reps = 1;
    std::uint64_t stride2 = 0;
    const std::uint64_t span = g.count * g.ways;
    while (j + reps < groups.size()) {
      const FoldGroup& next = groups[j + reps];
      if (next.count != g.count || next.ways != g.ways ||
          next.stride != g.stride || next.lpn != g.lpn + reps * span) {
        break;
      }
      const std::uint64_t delta = next.ppn - g.ppn;
      if (reps == 1) {
        stride2 = delta;
      } else if (delta != reps * stride2) {
        break;
      }
      ++reps;
    }
    j += static_cast<std::size_t>(reps);
    ++n_rec;
    if (reps > 1) {
      PutU64(out, kTagSuper);
      PutU64(out, g.lpn);
      PutU64(out, g.ppn);
      PutU64(out, g.count);
      PutU64(out, g.ways);
      PutU64(out, g.stride);
      PutU64(out, reps);
      PutU64(out, stride2);
    } else if (g.ways > 1) {
      PutU64(out, kTagGroup);
      PutU64(out, g.lpn);
      PutU64(out, g.ppn);
      PutU64(out, g.count);
      PutU64(out, g.ways);
      PutU64(out, g.stride);
    } else {
      PutU64(out, kTagRun);
      PutU64(out, g.lpn);
      PutU64(out, g.ppn);
      PutU64(out, g.count);
    }
  }
  for (int i = 0; i < 8; ++i) {
    out[count_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(n_rec >> (8 * i));
  }
  for (const ZoneSnap& z : zones) {
    PutU64(out, z.write_pointer);
    PutU64(out, z.durable_normal_end);
    PutU64(out, z.patch_start);
    PutU64(out, z.flags);
  }
  for (std::uint64_t sb : free_slc) PutU64(out, sb);
  for (std::uint64_t sb : free_normal) PutU64(out, sb);
  PutU64(out, Fnv1a(out.data(), out.size()));
  return out;
}

std::optional<CheckpointImage> CheckpointImage::Decode(
    const std::vector<std::uint8_t>& blob) {
  if (blob.size() < (kHeaderWords + 1) * 8 || blob.size() % 8 != 0) {
    return std::nullopt;
  }
  const std::uint8_t* p = blob.data();
  if (GetU64(p) != kMagic || GetU64(p + 8) != kVersion) return std::nullopt;
  // Checksum before structure: a torn or corrupt image must lose quietly
  // no matter which words it mangled.
  const std::uint64_t stored_sum = GetU64(p + blob.size() - 8);
  if (Fnv1a(p, blob.size() - 8) != stored_sum) return std::nullopt;
  CheckpointImage img;
  img.seq = GetU64(p + 16);
  img.program_seq = GetU64(p + 24);
  const std::uint64_t n_rec = GetU64(p + 32);
  const std::uint64_t n_zone = GetU64(p + 40);
  const std::uint64_t n_slc = GetU64(p + 48);
  const std::uint64_t n_normal = GetU64(p + 56);
  const std::uint64_t max_words = blob.size() / 8;
  if (n_rec > max_words || n_zone > max_words || n_slc > max_words ||
      n_normal > max_words) {
    return std::nullopt;
  }
  // Mapping records are variable-length; walk them with per-record
  // bounds checks. `limit` is the first word past the record section.
  const std::uint64_t tail_words = 4 * n_zone + n_slc + n_normal + 1;
  if (tail_words > max_words - kHeaderWords) return std::nullopt;
  const std::size_t limit = blob.size() - static_cast<std::size_t>(tail_words) * 8;
  std::size_t off = kHeaderWords * 8;
  // Expansion guard: a checksum-valid but hostile image cannot inflate
  // the run list past a sane bound.
  constexpr std::uint64_t kMaxRuns = 1ull << 27;
  std::uint64_t total_runs = 0;
  // Validation pass: bounds, tags, and the expansion total — so the
  // unfold below can reserve once and never reallocate mid-expansion.
  for (std::uint64_t r = 0; r < n_rec; ++r) {
    if (off + 8 > limit) return std::nullopt;
    const std::uint64_t tag = GetU64(p + off);
    const std::size_t words = tag == kTagRun ? 4 : tag == kTagGroup ? 6 : 8;
    if (tag != kTagRun && tag != kTagGroup && tag != kTagSuper) return std::nullopt;
    if (off + words * 8 > limit) return std::nullopt;
    const std::uint64_t count = GetU64(p + off + 24);
    const std::uint64_t ways = tag == kTagRun ? 1 : GetU64(p + off + 32);
    const std::uint64_t reps = tag == kTagSuper ? GetU64(p + off + 48) : 1;
    if (count == 0 || ways == 0 || reps == 0) return std::nullopt;
    if (ways > kMaxRuns || reps > kMaxRuns) return std::nullopt;
    total_runs += ways * reps;
    if (total_runs > kMaxRuns) return std::nullopt;
    off += words * 8;
  }
  if (off != limit) return std::nullopt;
  img.mappings.reserve(static_cast<std::size_t>(total_runs));
  off = kHeaderWords * 8;
  for (std::uint64_t r = 0; r < n_rec; ++r) {
    const std::uint64_t tag = GetU64(p + off);
    const std::size_t words = tag == kTagRun ? 4 : tag == kTagGroup ? 6 : 8;
    const std::uint64_t lpn = GetU64(p + off + 8);
    const std::uint64_t ppn = GetU64(p + off + 16);
    const std::uint64_t count = GetU64(p + off + 24);
    const std::uint64_t ways = tag == kTagRun ? 1 : GetU64(p + off + 32);
    const std::uint64_t stride = tag == kTagRun ? 0 : GetU64(p + off + 40);
    const std::uint64_t reps = tag == kTagSuper ? GetU64(p + off + 48) : 1;
    const std::uint64_t stride2 = tag == kTagSuper ? GetU64(p + off + 56) : 0;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      for (std::uint64_t w = 0; w < ways; ++w) {
        img.mappings.push_back(MapRun{lpn + (rep * ways + w) * count,
                                      ppn + rep * stride2 + w * stride, count});
      }
    }
    off += words * 8;
  }
  img.zones.reserve(static_cast<std::size_t>(n_zone));
  for (std::uint64_t i = 0; i < n_zone; ++i, off += 32) {
    ZoneSnap z;
    z.write_pointer = GetU64(p + off);
    z.durable_normal_end = GetU64(p + off + 8);
    z.patch_start = GetU64(p + off + 16);
    z.flags = GetU64(p + off + 24);
    img.zones.push_back(z);
  }
  img.free_slc.reserve(static_cast<std::size_t>(n_slc));
  for (std::uint64_t i = 0; i < n_slc; ++i, off += 8) {
    img.free_slc.push_back(GetU64(p + off));
  }
  img.free_normal.reserve(static_cast<std::size_t>(n_normal));
  for (std::uint64_t i = 0; i < n_normal; ++i, off += 8) {
    img.free_normal.push_back(GetU64(p + off));
  }
  return img;
}

int CheckpointStore::NextSlot() const {
  const Slot* newest = NewestValid();
  if (newest == nullptr) return 0;
  return newest == &slots_[0] ? 1 : 0;
}

void CheckpointStore::Commit(int slot, std::vector<std::uint8_t> blob,
                             std::uint64_t seq, SimTime media_end) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.valid = true;
  s.seq = seq;
  s.media_end = media_end;
  s.blob = std::move(blob);
  // Commit always installs a freshly encoded image, so the election can
  // skip re-checksumming it (see Slot::verified).
  s.verified = true;
}

std::uint64_t CheckpointStore::ApplyPowerCut(SimTime cut) {
  std::uint64_t torn = 0;
  for (Slot& s : slots_) {
    if (s.valid && s.media_end > cut) {
      s.valid = false;
      s.verified = false;
      s.blob.clear();
      ++torn;
    }
  }
  return torn;
}

const CheckpointStore::Slot* CheckpointStore::NewestValid() const {
  const Slot* best = nullptr;
  for (const Slot& s : slots_) {
    if (!s.valid) continue;
    if (!s.verified) {
      if (!CheckpointImage::Decode(s.blob).has_value()) continue;
      s.verified = true;
    }
    // Ties go to the earlier slot: strict SeqNewer keeps `best`.
    if (best == nullptr || CheckpointImage::SeqNewer(s.seq, best->seq)) {
      best = &s;
    }
  }
  return best;
}

std::uint64_t CheckpointStore::NextSeq() const {
  const Slot* newest = NewestValid();
  return newest == nullptr ? 1 : newest->seq + 1;
}

void CheckpointStore::CorruptByteForTest(int slot, std::size_t offset) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (offset < s.blob.size()) s.blob[offset] ^= 0xFF;
  s.verified = false;
}

}  // namespace conzone
