// Flash media state.
//
// `FlashArray` owns the logical state of every 4 KiB slot in the device:
// free / valid / invalid, the payload token stored there, and the OOB
// (out-of-band) back-pointer to the logical page that wrote it — which is
// what real FTLs use during GC to find the forward-map entry to fix up.
//
// It enforces the NAND programming contract:
//   - a block must be erased before it is reprogrammed;
//   - programming within a block is strictly sequential;
//   - normal (TLC/QLC) blocks program in whole one-shot units
//     (`program_unit`, §II-A) — partial programming is an error;
//   - SLC blocks may partial-program at slot (4 KiB) granularity, but
//     only their derated capacity (1/bits-per-cell of the block) is
//     usable.
//
// FlashArray is purely functional state — the time each operation takes
// is the job of FlashTimingEngine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "fault/fault_model.hpp"
#include "flash/geometry.hpp"

namespace conzone {

enum class SlotState : std::uint8_t { kFree = 0, kValid = 1, kInvalid = 2 };

/// Per-block media health. A block that fails a program or an erase is
/// grown bad and retired: it refuses further programs/erases but its
/// already-valid slots stay readable until the FTL drains them.
enum class BlockHealth : std::uint8_t { kGood = 0, kRetired = 1 };

/// One 4 KiB unit of data to program. `lpn` is recorded in the slot's OOB
/// area; padding slots (alignment filler) carry an invalid lpn.
struct SlotWrite {
  Lpn lpn;
  std::uint64_t token = 0;  ///< Payload fingerprint for integrity checks.
};

struct SlotRead {
  SlotState state = SlotState::kFree;
  Lpn lpn;
  std::uint64_t token = 0;
  /// Read-retry steps this sense needed before it ECC-corrected
  /// (0 = clean). Drawn from the attached FaultModel; always 0 without one.
  std::uint32_t retry_level = 0;
};

/// Cumulative media counters, split by cell type — the denominator and
/// numerator of write amplification live here.
struct MediaCounters {
  std::uint64_t slots_programmed_slc = 0;
  std::uint64_t slots_programmed_normal = 0;
  std::uint64_t page_reads = 0;
  std::uint64_t erases_slc = 0;
  std::uint64_t erases_normal = 0;

  std::uint64_t TotalSlotsProgrammed() const {
    return slots_programmed_slc + slots_programmed_normal;
  }

  /// Per-field delta against an earlier snapshot, saturating at zero so a
  /// stale baseline (taken before a mid-run ResetCounters) can never make
  /// derived metrics such as write amplification go negative.
  MediaCounters Since(const MediaCounters& base) const;
};

class FlashArray {
 public:
  explicit FlashArray(const FlashGeometry& geometry);

  const FlashGeometry& geometry() const { return geo_; }

  /// Attach a fault model. Null (default) means the fault paths below are
  /// never taken and no RNG is consumed. The model must outlive the array.
  void AttachFaultModel(FaultModel* fault) { fault_ = fault; }
  bool FaultsEnabled() const { return fault_ != nullptr && fault_->enabled(); }

  /// Program `writes.size()` consecutive slots of `block`, starting at the
  /// block's internal write position. Normal blocks additionally require
  /// the write to be a whole number of program units.
  ///
  /// With a fault model attached this may return MediaError: the attempted
  /// slots are burned (left kInvalid, cursor advanced) and the block is
  /// retired. The caller must re-drive the payload into a healthy block.
  Status ProgramSlots(BlockId block, std::span<const SlotWrite> writes);

  /// State + OOB + payload of one slot (any state; callers check). With a
  /// fault model attached, `retry_level` reports how many read-retry steps
  /// this sense needed — the timing engine turns that into latency.
  SlotRead ReadSlot(Ppn ppn) const;

  /// Record a physical page read (for MediaCounters only; timing is the
  /// engine's job).
  void CountPageRead() {
    counters_.page_reads++;
    lifetime_.page_reads++;
  }

  /// Mark a previously valid slot invalid (host overwrite / zone reset /
  /// GC migration source).
  Status InvalidateSlot(Ppn ppn);

  /// With a fault model attached this may return MediaError: the erase
  /// count still accrues (wear happens), the block is retired, and its
  /// slots are left as-is; callers scrub via ScrubBlock.
  Status EraseBlock(BlockId block);

  // --- Reliability ---

  /// Force-retire a block (grown bad). Idempotent. Retired blocks refuse
  /// ProgramSlots/EraseBlock but stay readable.
  void RetireBlock(BlockId block);
  bool IsRetired(BlockId block) const;
  BlockHealth HealthOfBlock(BlockId block) const;
  /// Healthy (non-retired) blocks remaining in the SLC region — the input
  /// to the read-only spare-floor check.
  std::uint32_t HealthySlcBlocks() const;

  /// Drop every non-free slot of a retired block to kInvalid and zero its
  /// valid count, WITHOUT resetting the program cursor (the block was not
  /// erased — it just holds no live data any more). Used after an erase
  /// failure, once GC has migrated the block's live slots away.
  void ScrubBlock(BlockId block);

  const ReliabilityStats& reliability() const { return rel_; }
  ReliabilityStats& mutable_reliability() { return rel_; }

  // --- Inspectors ---
  SlotState StateOfSlot(Ppn ppn) const;
  std::uint32_t NextProgramSlot(BlockId block) const;
  /// Usable slot capacity of the block (derated for SLC blocks).
  std::uint32_t UsableSlots(BlockId block) const;
  bool BlockFull(BlockId block) const;
  std::uint32_t ValidSlots(BlockId block) const;
  std::uint32_t EraseCount(BlockId block) const;
  const MediaCounters& counters() const { return counters_; }
  /// Monotone since-construction counters, unaffected by ResetCounters —
  /// take deltas with MediaCounters::Since when a phase may reset mid-run.
  const MediaCounters& lifetime_counters() const { return lifetime_; }
  /// Zero the phase counters (benchmark phase boundaries). `lifetime_`
  /// keeps counting so derived metrics can clamp instead of going negative.
  void ResetCounters() { counters_ = MediaCounters{}; }

 private:
  struct BlockMeta {
    std::uint32_t next_slot = 0;   // sequential-programming cursor
    std::uint32_t valid_slots = 0;
    std::uint32_t erase_count = 0;
    BlockHealth health = BlockHealth::kGood;
  };

  struct Slot {
    SlotState state = SlotState::kFree;
    Lpn lpn;
    std::uint64_t token = 0;
  };

  std::size_t SlotIndex(Ppn ppn) const { return static_cast<std::size_t>(ppn.value()); }

  FlashGeometry geo_;
  std::vector<Slot> slots_;
  std::vector<BlockMeta> blocks_;
  MediaCounters counters_;
  MediaCounters lifetime_;
  // ReadSlot is const on every existing call path but must record retry
  // accounting; the fault draw mutates only these two members.
  mutable ReliabilityStats rel_;
  FaultModel* fault_ = nullptr;
};

}  // namespace conzone
