// Flash media state.
//
// `FlashArray` owns the logical state of every 4 KiB slot in the device:
// free / valid / invalid, the payload token stored there, and the OOB
// (out-of-band) back-pointer to the logical page that wrote it — which is
// what real FTLs use during GC to find the forward-map entry to fix up.
//
// It enforces the NAND programming contract:
//   - a block must be erased before it is reprogrammed;
//   - programming within a block is strictly sequential;
//   - normal (TLC/QLC) blocks program in whole one-shot units
//     (`program_unit`, §II-A) — partial programming is an error;
//   - SLC blocks may partial-program at slot (4 KiB) granularity, but
//     only their derated capacity (1/bits-per-cell of the block) is
//     usable.
//
// FlashArray is purely functional state — the time each operation takes
// is the job of FlashTimingEngine.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "fault/fault_model.hpp"
#include "flash/geometry.hpp"

namespace conzone {

enum class SlotState : std::uint8_t { kFree = 0, kValid = 1, kInvalid = 2 };

/// Per-block media health. A block that fails a program or an erase is
/// grown bad and retired: it refuses further programs/erases but its
/// already-valid slots stay readable until the FTL drains them.
enum class BlockHealth : std::uint8_t { kGood = 0, kRetired = 1 };

/// One 4 KiB unit of data to program. `lpn` is recorded in the slot's OOB
/// area; padding slots (alignment filler) carry an invalid lpn.
struct SlotWrite {
  Lpn lpn;
  std::uint64_t token = 0;  ///< Payload fingerprint for integrity checks.
};

struct SlotRead {
  SlotState state = SlotState::kFree;
  Lpn lpn;
  std::uint64_t token = 0;
  /// Read-retry steps this sense needed before it ECC-corrected
  /// (0 = clean). Drawn from the attached FaultModel; always 0 without one.
  std::uint32_t retry_level = 0;
};

/// Cumulative media counters, split by cell type — the denominator and
/// numerator of write amplification live here.
struct MediaCounters {
  std::uint64_t slots_programmed_slc = 0;
  std::uint64_t slots_programmed_normal = 0;
  std::uint64_t page_reads = 0;
  std::uint64_t erases_slc = 0;
  std::uint64_t erases_normal = 0;

  std::uint64_t TotalSlotsProgrammed() const {
    return slots_programmed_slc + slots_programmed_normal;
  }

  /// Per-field delta against an earlier snapshot, saturating at zero so a
  /// stale baseline (taken before a mid-run ResetCounters) can never make
  /// derived metrics such as write amplification go negative.
  MediaCounters Since(const MediaCounters& base) const;
};

class FlashArray {
 public:
  explicit FlashArray(const FlashGeometry& geometry);

  const FlashGeometry& geometry() const { return geo_; }

  /// Attach a fault model. Null (default) means the fault paths below are
  /// never taken and no RNG is consumed. The model must outlive the array.
  void AttachFaultModel(FaultModel* fault) { fault_ = fault; }
  bool FaultsEnabled() const { return fault_ != nullptr && fault_->enabled(); }

  /// Program `writes.size()` consecutive slots of `block`, starting at the
  /// block's internal write position. Normal blocks additionally require
  /// the write to be a whole number of program units.
  ///
  /// With a fault model attached this may return MediaError: the attempted
  /// slots are burned (left kInvalid, cursor advanced) and the block is
  /// retired. The caller must re-drive the payload into a healthy block.
  Status ProgramSlots(BlockId block, std::span<const SlotWrite> writes);

  /// State + OOB + payload of one slot (any state; callers check). With a
  /// fault model attached, `retry_level` reports how many read-retry steps
  /// this sense needed — the timing engine turns that into latency.
  SlotRead ReadSlot(Ppn ppn) const;

  /// Record a physical page read (for MediaCounters only; timing is the
  /// engine's job).
  void CountPageRead() {
    counters_.page_reads++;
    lifetime_.page_reads++;
  }

  /// Mark a previously valid slot invalid (host overwrite / zone reset /
  /// GC migration source).
  Status InvalidateSlot(Ppn ppn);

  /// With a fault model attached this may return MediaError: the erase
  /// count still accrues (wear happens), the block is retired, and its
  /// slots are left as-is; callers scrub via ScrubBlock.
  Status EraseBlock(BlockId block);

  // --- Reliability ---

  /// Force-retire a block (grown bad). Idempotent. Retired blocks refuse
  /// ProgramSlots/EraseBlock but stay readable.
  void RetireBlock(BlockId block);
  bool IsRetired(BlockId block) const;
  BlockHealth HealthOfBlock(BlockId block) const;
  /// Healthy (non-retired) blocks remaining in the SLC region — the input
  /// to the read-only spare-floor check.
  std::uint32_t HealthySlcBlocks() const;

  /// Drop every non-free slot of a retired block to kInvalid and zero its
  /// valid count, WITHOUT resetting the program cursor (the block was not
  /// erased — it just holds no live data any more). Used after an erase
  /// failure, once GC has migrated the block's live slots away.
  void ScrubBlock(BlockId block);

  const ReliabilityStats& reliability() const { return rel_; }
  ReliabilityStats& mutable_reliability() { return rel_; }

  // --- Power loss ---
  //
  // With the journal enabled the array records an undo entry for every
  // successful ProgramSlots / InvalidateSlot / EraseBlock (fault "burn"
  // paths are excluded: a burn always retires the block, so its cursor
  // and dead slots are never consulted again). Callers stamp each batch
  // with its media window [start, end); ApplyPowerCut(t) then rolls the
  // media back to what a cut at simulated time `t` would leave behind:
  //
  //   - A program whose window has ended (end <= t) is durable and kept.
  //     Any other journaled program — in flight or still queued — is
  //     past its point of no return: its target slots are indeterminate
  //     and are marked kInvalid (the batch is all-or-nothing; a torn
  //     superpage never surfaces partial data).
  //   - An invalidate is bound to the batch that superseded it; if that
  //     batch is not durable, the invalidated slot is resurrected
  //     (kValid again, OOB intact) so the old copy remains the one the
  //     recovery scan finds.
  //   - An erase that never started (start > t) is undone from a full
  //     pre-image; an erase in flight at the cut leaves the block's
  //     content untrusted — it stays erased here and is reported for a
  //     real re-erase during recovery.
  //
  // Entries are processed newest-first so chains (write A, supersede
  // with B, supersede with C, cut) resolve to exactly one surviving
  // copy. Entries not yet stamped at the cut are treated as never
  // issued (the conservative direction).

  /// Counters and work list produced by ApplyPowerCut. The journal is
  /// cleared afterwards; the report is the only record of what was lost.
  struct PowerCutReport {
    std::uint64_t torn_program_slots = 0;     ///< program started, incomplete at cut
    std::uint64_t unissued_program_slots = 0; ///< program queued, never started
    std::uint64_t resurrected_slots = 0;      ///< invalidates undone
    std::uint64_t restored_erases = 0;        ///< erase pre-images restored
    /// Blocks whose erase was in flight at the cut: content untrusted,
    /// recovery must EraseBlock them again (with real timing + faults).
    std::vector<BlockId> reerase;
    /// Blocks the undo pass made *older state visible* in — resurrected
    /// slots and restored erase pre-images. A checkpoint taken before the
    /// cut may map these blocks' lpns elsewhere (or not at all), so a
    /// checkpoint-bounded mount scan must rescan them even though their
    /// last program seq predates the checkpoint. May contain duplicates.
    std::vector<BlockId> rescan;
  };

  /// Turn undo journaling on. Off (default) costs nothing on the hot
  /// path; the owning device enables it when power-loss emulation is
  /// configured.
  void EnableJournal(bool on) { journal_on_ = on; }
  bool JournalEnabled() const { return journal_on_; }
  /// Suspend capture while recovery itself mutates the media (recovery
  /// writes become the new durable baseline, not undoable state).
  void PauseJournal(bool paused) { journal_paused_ = paused; }

  /// Opaque position in the journal's append order. Take one with
  /// MarkJournal() before a batch's first append; StampJournal then
  /// stamps only that batch's entries, so a nested batch (GC running
  /// mid-flush, say) can never capture its caller's still-unstamped
  /// entries under its own — typically earlier-closing — window.
  std::uint64_t MarkJournal() const { return journal_seq_; }

  /// Stamp every not-yet-stamped journal entry appended at or after
  /// `mark` with the media window [start, end). Call immediately after
  /// computing a batch's timing; entries a nested batch already stamped
  /// keep their window (stamping is first-stamp-wins per entry).
  void StampJournal(std::uint64_t mark, SimTime start, SimTime end);

  /// Drop stamped entries from the journal front whose window ended at
  /// or before `horizon`. Host ops call this with their submission time:
  /// a future cut can never be earlier, so those entries are durable.
  void PruneJournal(SimTime horizon);
  std::size_t JournalDepth() const { return journal_.size(); }

  /// Roll the media back to its durable state at cut time `cut` and
  /// clear the journal. Requires the journal enabled.
  PowerCutReport ApplyPowerCut(SimTime cut);

  /// Mount-time OOB scan read: state + OOB + payload like ReadSlot, but
  /// never consults the fault model — recovery charges scan timing (and
  /// draws nothing), so a cut+recover cycle does not perturb the fault
  /// RNG stream of subsequent host reads.
  SlotRead PeekSlot(Ppn ppn) const;

  // --- Inspectors ---
  SlotState StateOfSlot(Ppn ppn) const;
  std::uint32_t NextProgramSlot(BlockId block) const;
  /// Global program batch counter: incremented once per ProgramSlots call
  /// (success or fault burn) and stamped into the target block. A
  /// checkpoint records this watermark; at mount, blocks whose stamp is
  /// at or below the watermark held exactly the data the checkpoint saw.
  std::uint64_t program_seq() const { return program_seq_; }
  /// Stamp of the most recent program batch into `block` (0 = never
  /// programmed since its last successful erase). Inline: the recovery
  /// scan probes every block once per mapping run.
  std::uint64_t LastProgramSeq(BlockId block) const {
    return blocks_[static_cast<std::size_t>(block.value())].last_program_seq;
  }
  /// Stamp of the most recent slot-state change in `block` — programs,
  /// invalidations, erases and scrubs all count (same counter domain as
  /// program_seq()). A checkpoint image entry pointing into a block whose
  /// change stamp is at or below the image's watermark is still exactly
  /// what the snapshot saw, so mount may accept it without re-reading
  /// the slot. Never rolled back by power-cut undo (conservative: an
  /// undone block looks dirty, and the forced-rescan list covers it).
  std::uint64_t LastChangeSeq(BlockId block) const {
    return blocks_[static_cast<std::size_t>(block.value())].last_change_seq;
  }
  /// Usable slot capacity of the block (derated for SLC blocks).
  std::uint32_t UsableSlots(BlockId block) const;
  bool BlockFull(BlockId block) const;
  std::uint32_t ValidSlots(BlockId block) const;
  std::uint32_t EraseCount(BlockId block) const;
  const MediaCounters& counters() const { return counters_; }
  /// Monotone since-construction counters, unaffected by ResetCounters —
  /// take deltas with MediaCounters::Since when a phase may reset mid-run.
  const MediaCounters& lifetime_counters() const { return lifetime_; }
  /// Zero the phase counters (benchmark phase boundaries). `lifetime_`
  /// keeps counting so derived metrics can clamp instead of going negative.
  void ResetCounters() { counters_ = MediaCounters{}; }

 private:
  struct BlockMeta {
    std::uint32_t next_slot = 0;   // sequential-programming cursor
    std::uint32_t valid_slots = 0;
    std::uint32_t erase_count = 0;
    std::uint64_t last_program_seq = 0;  // global batch stamp, 0 after erase
    std::uint64_t last_change_seq = 0;   // any slot-state change (monotone)
    BlockHealth health = BlockHealth::kGood;
  };

  struct Slot {
    SlotState state = SlotState::kFree;
    Lpn lpn;
    std::uint64_t token = 0;
  };

  std::size_t SlotIndex(Ppn ppn) const { return static_cast<std::size_t>(ppn.value()); }

  struct JournalEntry {
    enum class Kind : std::uint8_t { kProgram, kInvalidate, kErase };
    Kind kind = Kind::kProgram;
    std::uint64_t seq = 0;  // append order, compared against batch marks
    bool stamped = false;
    SimTime start;  // media window [start, end); valid once stamped
    SimTime end;
    BlockId block;                 // program / erase
    std::uint32_t first_slot = 0;  // program: offset within block
    std::uint32_t count = 0;       // program: slots written
    Ppn ppn;                       // invalidate
    std::vector<Slot> image;       // erase: full pre-image of the block
    BlockMeta prior_meta;          // erase: meta before the erase
  };

  bool JournalActive() const { return journal_on_ && !journal_paused_; }
  void UndoProgram(const JournalEntry& e, SimTime cut, PowerCutReport& report);
  void UndoInvalidate(const JournalEntry& e, SimTime cut, PowerCutReport& report);
  void UndoErase(JournalEntry& e, SimTime cut, PowerCutReport& report);

  FlashGeometry geo_;
  std::vector<Slot> slots_;
  std::vector<BlockMeta> blocks_;
  MediaCounters counters_;
  MediaCounters lifetime_;
  // ReadSlot is const on every existing call path but must record retry
  // accounting; the fault draw mutates only these two members.
  mutable ReliabilityStats rel_;
  FaultModel* fault_ = nullptr;
  std::uint64_t program_seq_ = 0;
  std::uint64_t journal_seq_ = 0;  // next JournalEntry::seq; never reset
  bool journal_on_ = false;
  bool journal_paused_ = false;
  std::deque<JournalEntry> journal_;
};

}  // namespace conzone
