// Flash media state.
//
// `FlashArray` owns the logical state of every 4 KiB slot in the device:
// free / valid / invalid, the payload token stored there, and the OOB
// (out-of-band) back-pointer to the logical page that wrote it — which is
// what real FTLs use during GC to find the forward-map entry to fix up.
//
// It enforces the NAND programming contract:
//   - a block must be erased before it is reprogrammed;
//   - programming within a block is strictly sequential;
//   - normal (TLC/QLC) blocks program in whole one-shot units
//     (`program_unit`, §II-A) — partial programming is an error;
//   - SLC blocks may partial-program at slot (4 KiB) granularity, but
//     only their derated capacity (1/bits-per-cell of the block) is
//     usable.
//
// FlashArray is purely functional state — the time each operation takes
// is the job of FlashTimingEngine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"
#include "flash/geometry.hpp"

namespace conzone {

enum class SlotState : std::uint8_t { kFree = 0, kValid = 1, kInvalid = 2 };

/// One 4 KiB unit of data to program. `lpn` is recorded in the slot's OOB
/// area; padding slots (alignment filler) carry an invalid lpn.
struct SlotWrite {
  Lpn lpn;
  std::uint64_t token = 0;  ///< Payload fingerprint for integrity checks.
};

struct SlotRead {
  SlotState state = SlotState::kFree;
  Lpn lpn;
  std::uint64_t token = 0;
};

/// Cumulative media counters, split by cell type — the denominator and
/// numerator of write amplification live here.
struct MediaCounters {
  std::uint64_t slots_programmed_slc = 0;
  std::uint64_t slots_programmed_normal = 0;
  std::uint64_t page_reads = 0;
  std::uint64_t erases_slc = 0;
  std::uint64_t erases_normal = 0;

  std::uint64_t TotalSlotsProgrammed() const {
    return slots_programmed_slc + slots_programmed_normal;
  }
};

class FlashArray {
 public:
  explicit FlashArray(const FlashGeometry& geometry);

  const FlashGeometry& geometry() const { return geo_; }

  /// Program `writes.size()` consecutive slots of `block`, starting at the
  /// block's internal write position. Normal blocks additionally require
  /// the write to be a whole number of program units.
  Status ProgramSlots(BlockId block, std::span<const SlotWrite> writes);

  /// State + OOB + payload of one slot (any state; callers check).
  SlotRead ReadSlot(Ppn ppn) const;

  /// Record a physical page read (for MediaCounters only; timing is the
  /// engine's job).
  void CountPageRead() { counters_.page_reads++; }

  /// Mark a previously valid slot invalid (host overwrite / zone reset /
  /// GC migration source).
  Status InvalidateSlot(Ppn ppn);

  Status EraseBlock(BlockId block);

  // --- Inspectors ---
  SlotState StateOfSlot(Ppn ppn) const;
  std::uint32_t NextProgramSlot(BlockId block) const;
  /// Usable slot capacity of the block (derated for SLC blocks).
  std::uint32_t UsableSlots(BlockId block) const;
  bool BlockFull(BlockId block) const;
  std::uint32_t ValidSlots(BlockId block) const;
  std::uint32_t EraseCount(BlockId block) const;
  const MediaCounters& counters() const { return counters_; }
  /// Zero the cumulative counters (benchmark phase boundaries).
  void ResetCounters() { counters_ = MediaCounters{}; }

 private:
  struct BlockMeta {
    std::uint32_t next_slot = 0;   // sequential-programming cursor
    std::uint32_t valid_slots = 0;
    std::uint32_t erase_count = 0;
  };

  struct Slot {
    SlotState state = SlotState::kFree;
    Lpn lpn;
    std::uint64_t token = 0;
  };

  std::size_t SlotIndex(Ppn ppn) const { return static_cast<std::size_t>(ppn.value()); }

  FlashGeometry geo_;
  std::vector<Slot> slots_;
  std::vector<BlockMeta> blocks_;
  MediaCounters counters_;
};

}  // namespace conzone
