#include "flash/array.hpp"

#include <cassert>
#include <string>

namespace conzone {

namespace {
std::uint64_t SatSub(std::uint64_t a, std::uint64_t b) { return a > b ? a - b : 0; }
}  // namespace

MediaCounters MediaCounters::Since(const MediaCounters& base) const {
  MediaCounters d;
  d.slots_programmed_slc = SatSub(slots_programmed_slc, base.slots_programmed_slc);
  d.slots_programmed_normal =
      SatSub(slots_programmed_normal, base.slots_programmed_normal);
  d.page_reads = SatSub(page_reads, base.page_reads);
  d.erases_slc = SatSub(erases_slc, base.erases_slc);
  d.erases_normal = SatSub(erases_normal, base.erases_normal);
  return d;
}

FlashArray::FlashArray(const FlashGeometry& geometry) : geo_(geometry) {
  assert(geo_.Validate().ok());
  slots_.resize(static_cast<std::size_t>(geo_.TotalSlots()));
  blocks_.resize(static_cast<std::size_t>(geo_.TotalBlocks()));
}

std::uint32_t FlashArray::UsableSlots(BlockId block) const {
  const std::uint32_t full = geo_.pages_per_block * geo_.SlotsPerPage();
  return geo_.IsSlcBlock(block) ? geo_.SlcUsableSlotsPerBlock() : full;
}

Status FlashArray::ProgramSlots(BlockId block, std::span<const SlotWrite> writes) {
  if (block.value() >= geo_.TotalBlocks()) {
    return Status::OutOfRange("program: bad block id " + std::to_string(block.value()));
  }
  if (writes.empty()) {
    return Status::InvalidArgument("program: empty write");
  }
  BlockMeta& meta = blocks_[static_cast<std::size_t>(block.value())];
  if (meta.health == BlockHealth::kRetired) {
    return Status::FailedPrecondition("program: block " +
                                      std::to_string(block.value()) + " is retired");
  }
  const std::uint32_t usable = UsableSlots(block);
  if (meta.next_slot + writes.size() > usable) {
    return Status::FailedPrecondition(
        "program: block " + std::to_string(block.value()) + " overflow (next=" +
        std::to_string(meta.next_slot) + " +" + std::to_string(writes.size()) +
        " > usable=" + std::to_string(usable) + "); erase first");
  }
  const bool slc = geo_.IsSlcBlock(block);
  if (!slc) {
    // Normal blocks only accept whole one-shot program units.
    const std::uint64_t unit_slots = geo_.program_unit / geo_.slot_size;
    if (meta.next_slot % unit_slots != 0 || writes.size() % unit_slots != 0) {
      return Status::InvalidArgument(
          "program: normal block writes must be unit-aligned (unit=" +
          std::to_string(unit_slots) + " slots, got offset=" +
          std::to_string(meta.next_slot) + " count=" + std::to_string(writes.size()) + ")");
    }
  }

  const std::uint64_t slots_per_block =
      static_cast<std::uint64_t>(geo_.pages_per_block) * geo_.SlotsPerPage();
  const std::uint64_t base = block.value() * slots_per_block + meta.next_slot;

  // The block is stamped even on the burn path below: the cells were
  // pulsed, so a checkpoint-bounded mount scan must treat the block as
  // touched after the watermark.
  meta.last_program_seq = ++program_seq_;
  meta.last_change_seq = meta.last_program_seq;

  if (fault_ != nullptr && fault_->enabled() &&
      fault_->ProgramFails(slc, meta.erase_count)) {
    // The pulse failed mid-program: the attempted slots hold garbage and
    // the block has grown bad. Burn the slots (cursor advances, nothing
    // counts as programmed) and retire the block; the FTL re-drives the
    // payload elsewhere.
    for (std::size_t i = 0; i < writes.size(); ++i) {
      slots_[static_cast<std::size_t>(base + i)].state = SlotState::kInvalid;
    }
    meta.next_slot += static_cast<std::uint32_t>(writes.size());
    if (slc) {
      rel_.program_failures_slc++;
    } else {
      rel_.program_failures_normal++;
    }
    RetireBlock(block);
    return Status::MediaError("program failure on block " +
                              std::to_string(block.value()) + " (" +
                              (slc ? "slc" : "normal") + "); block retired");
  }

  if (JournalActive()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kProgram;
    e.seq = journal_seq_++;
    e.block = block;
    e.first_slot = meta.next_slot;
    e.count = static_cast<std::uint32_t>(writes.size());
    journal_.push_back(std::move(e));
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    Slot& s = slots_[static_cast<std::size_t>(base + i)];
    assert(s.state == SlotState::kFree && "sequential cursor points at non-free slot");
    s.state = SlotState::kValid;
    s.lpn = writes[i].lpn;
    s.token = writes[i].token;
  }
  meta.next_slot += static_cast<std::uint32_t>(writes.size());
  meta.valid_slots += static_cast<std::uint32_t>(writes.size());
  if (slc) {
    counters_.slots_programmed_slc += writes.size();
    lifetime_.slots_programmed_slc += writes.size();
  } else {
    counters_.slots_programmed_normal += writes.size();
    lifetime_.slots_programmed_normal += writes.size();
  }
  return Status::Ok();
}

SlotRead FlashArray::ReadSlot(Ppn ppn) const {
  SlotRead out;
  if (ppn.value() >= geo_.TotalSlots()) return out;
  const Slot& s = slots_[SlotIndex(ppn)];
  out.state = s.state;
  out.lpn = s.lpn;
  out.token = s.token;
  if (fault_ != nullptr && fault_->enabled() && s.state == SlotState::kValid) {
    const BlockId block = geo_.BlockOfSlot(ppn);
    const BlockMeta& meta = blocks_[static_cast<std::size_t>(block.value())];
    out.retry_level = fault_->ReadRetryLevel(geo_.IsSlcBlock(block), meta.erase_count);
    if (out.retry_level > 0) {
      rel_.reads_with_retry++;
      rel_.read_retries += out.retry_level;
    }
  }
  return out;
}

Status FlashArray::InvalidateSlot(Ppn ppn) {
  if (ppn.value() >= geo_.TotalSlots()) {
    return Status::OutOfRange("invalidate: bad ppn " + std::to_string(ppn.value()));
  }
  Slot& s = slots_[SlotIndex(ppn)];
  if (s.state != SlotState::kValid) {
    return Status::FailedPrecondition("invalidate: slot " + std::to_string(ppn.value()) +
                                      " is not valid");
  }
  if (JournalActive()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kInvalidate;
    e.seq = journal_seq_++;
    e.ppn = ppn;
    journal_.push_back(std::move(e));
  }
  s.state = SlotState::kInvalid;
  BlockMeta& meta = blocks_[static_cast<std::size_t>(geo_.BlockOfSlot(ppn).value())];
  assert(meta.valid_slots > 0);
  meta.valid_slots--;
  // Invalidation changes slot state without a program pulse: stamp the
  // change counter (not the program stamp — OOB senses stay skippable)
  // so checkpoint entries into this block are re-verified at mount.
  meta.last_change_seq = ++program_seq_;
  return Status::Ok();
}

Status FlashArray::EraseBlock(BlockId block) {
  if (block.value() >= geo_.TotalBlocks()) {
    return Status::OutOfRange("erase: bad block id " + std::to_string(block.value()));
  }
  BlockMeta& meta = blocks_[static_cast<std::size_t>(block.value())];
  if (meta.health == BlockHealth::kRetired) {
    return Status::FailedPrecondition("erase: block " +
                                      std::to_string(block.value()) + " is retired");
  }
  const bool slc = geo_.IsSlcBlock(block);
  if (fault_ != nullptr && fault_->enabled() &&
      fault_->EraseFails(slc, meta.erase_count)) {
    // The erase pulse wore the oxide but failed to verify: wear accrues,
    // the slots keep their (now untrusted) content, and the block is
    // retired. Callers scrub the leftover state via ScrubBlock.
    meta.erase_count++;
    if (slc) {
      rel_.erase_failures_slc++;
    } else {
      rel_.erase_failures_normal++;
    }
    RetireBlock(block);
    return Status::MediaError("erase failure on block " +
                              std::to_string(block.value()) + " (" +
                              (slc ? "slc" : "normal") + "); block retired");
  }
  const std::uint64_t slots_per_block =
      static_cast<std::uint64_t>(geo_.pages_per_block) * geo_.SlotsPerPage();
  const std::uint64_t base = block.value() * slots_per_block;
  if (JournalActive()) {
    JournalEntry e;
    e.kind = JournalEntry::Kind::kErase;
    e.seq = journal_seq_++;
    e.block = block;
    e.prior_meta = meta;
    e.image.assign(slots_.begin() + static_cast<std::ptrdiff_t>(base),
                   slots_.begin() + static_cast<std::ptrdiff_t>(base + slots_per_block));
    journal_.push_back(std::move(e));
  }
  for (std::uint64_t i = 0; i < slots_per_block; ++i) {
    slots_[static_cast<std::size_t>(base + i)] = Slot{};
  }
  meta.next_slot = 0;
  meta.valid_slots = 0;
  meta.last_program_seq = 0;
  meta.last_change_seq = ++program_seq_;
  meta.erase_count++;
  if (slc) {
    counters_.erases_slc++;
    lifetime_.erases_slc++;
  } else {
    counters_.erases_normal++;
    lifetime_.erases_normal++;
  }
  return Status::Ok();
}

void FlashArray::RetireBlock(BlockId block) {
  BlockMeta& meta = blocks_[static_cast<std::size_t>(block.value())];
  if (meta.health == BlockHealth::kRetired) return;
  meta.health = BlockHealth::kRetired;
  if (geo_.IsSlcBlock(block)) {
    rel_.retired_blocks_slc++;
  } else {
    rel_.retired_blocks_normal++;
  }
}

bool FlashArray::IsRetired(BlockId block) const {
  return HealthOfBlock(block) == BlockHealth::kRetired;
}

BlockHealth FlashArray::HealthOfBlock(BlockId block) const {
  return blocks_[static_cast<std::size_t>(block.value())].health;
}

std::uint32_t FlashArray::HealthySlcBlocks() const {
  const std::uint64_t total =
      static_cast<std::uint64_t>(geo_.slc_blocks_per_chip) * geo_.NumChips();
  const std::uint64_t retired = rel_.retired_blocks_slc;
  return retired >= total ? 0 : static_cast<std::uint32_t>(total - retired);
}

void FlashArray::ScrubBlock(BlockId block) {
  BlockMeta& meta = blocks_[static_cast<std::size_t>(block.value())];
  const std::uint64_t slots_per_block =
      static_cast<std::uint64_t>(geo_.pages_per_block) * geo_.SlotsPerPage();
  const std::uint64_t base = block.value() * slots_per_block;
  for (std::uint64_t i = 0; i < slots_per_block; ++i) {
    Slot& s = slots_[static_cast<std::size_t>(base + i)];
    if (s.state != SlotState::kFree) s.state = SlotState::kInvalid;
  }
  meta.valid_slots = 0;
  meta.last_change_seq = ++program_seq_;
}

SlotState FlashArray::StateOfSlot(Ppn ppn) const {
  if (ppn.value() >= geo_.TotalSlots()) return SlotState::kFree;
  return slots_[SlotIndex(ppn)].state;
}

std::uint32_t FlashArray::NextProgramSlot(BlockId block) const {
  return blocks_[static_cast<std::size_t>(block.value())].next_slot;
}

bool FlashArray::BlockFull(BlockId block) const {
  return NextProgramSlot(block) >= UsableSlots(block);
}

std::uint32_t FlashArray::ValidSlots(BlockId block) const {
  return blocks_[static_cast<std::size_t>(block.value())].valid_slots;
}

std::uint32_t FlashArray::EraseCount(BlockId block) const {
  return blocks_[static_cast<std::size_t>(block.value())].erase_count;
}

SlotRead FlashArray::PeekSlot(Ppn ppn) const {
  SlotRead out;
  if (ppn.value() >= geo_.TotalSlots()) return out;
  const Slot& s = slots_[SlotIndex(ppn)];
  out.state = s.state;
  out.lpn = s.lpn;
  out.token = s.token;
  return out;
}

void FlashArray::StampJournal(std::uint64_t mark, SimTime start, SimTime end) {
  // Only the calling batch's entries (seq >= its mark) are stamped. A
  // plain unstamped-suffix walk would let a nested batch — GC invoked
  // mid-flush — capture its caller's pending entries under the nested
  // window; if that window closed before a cut while the caller's
  // superseding program was torn, acknowledged data would be lost.
  for (auto it = journal_.rbegin(); it != journal_.rend() && it->seq >= mark; ++it) {
    if (it->stamped) continue;  // a nested batch stamped its own entries
    it->stamped = true;
    it->start = start;
    it->end = end;
  }
}

void FlashArray::PruneJournal(SimTime horizon) {
  while (!journal_.empty() && journal_.front().stamped &&
         journal_.front().end <= horizon) {
    journal_.pop_front();
  }
}

void FlashArray::UndoProgram(const JournalEntry& e, SimTime cut,
                             PowerCutReport& report) {
  if (e.stamped && e.end <= cut) return;  // durable
  const std::uint64_t slots_per_block =
      static_cast<std::uint64_t>(geo_.pages_per_block) * geo_.SlotsPerPage();
  const std::uint64_t base = e.block.value() * slots_per_block + e.first_slot;
  BlockMeta& meta = blocks_[static_cast<std::size_t>(e.block.value())];
  for (std::uint32_t i = 0; i < e.count; ++i) {
    Slot& s = slots_[static_cast<std::size_t>(base + i)];
    if (s.state == SlotState::kValid) {
      s.state = SlotState::kInvalid;
      assert(meta.valid_slots > 0);
      meta.valid_slots--;
    }
  }
  if (e.stamped && e.start <= cut) {
    report.torn_program_slots += e.count;
  } else {
    report.unissued_program_slots += e.count;
  }
}

void FlashArray::UndoInvalidate(const JournalEntry& e, SimTime cut,
                                PowerCutReport& report) {
  if (e.stamped && e.end <= cut) return;  // the superseding batch is durable
  Slot& s = slots_[SlotIndex(e.ppn)];
  // The slot may no longer be kInvalid: a durable erase of its block
  // implies the superseding batch was durable too, so we never get here
  // with a freed slot; a restored erase pre-image puts it back kInvalid.
  if (s.state != SlotState::kInvalid) return;
  s.state = SlotState::kValid;
  const BlockId block = geo_.BlockOfSlot(e.ppn);
  blocks_[static_cast<std::size_t>(block.value())].valid_slots++;
  report.resurrected_slots++;
  // The revived copy may live in a block older than any checkpoint
  // watermark while the checkpoint maps its lpn elsewhere.
  report.rescan.push_back(block);
}

void FlashArray::UndoErase(JournalEntry& e, SimTime cut, PowerCutReport& report) {
  if (e.stamped && e.end <= cut) return;  // durable
  if (e.stamped && e.start <= cut) {
    // In flight at the cut: the cells are half-erased and untrusted.
    // The block stays erased in the model; recovery must run a real
    // erase (wear + possible fault) before reuse.
    report.reerase.push_back(e.block);
    return;
  }
  const std::uint64_t slots_per_block =
      static_cast<std::uint64_t>(geo_.pages_per_block) * geo_.SlotsPerPage();
  const std::uint64_t base = e.block.value() * slots_per_block;
  for (std::uint64_t i = 0; i < slots_per_block; ++i) {
    slots_[static_cast<std::size_t>(base + i)] = e.image[static_cast<std::size_t>(i)];
  }
  BlockMeta& meta = blocks_[static_cast<std::size_t>(e.block.value())];
  // Keep the change stamp monotone across the undo: the pre-image block
  // must look dirty to a checkpoint older than the undone erase.
  const std::uint64_t change = std::max(meta.last_change_seq, e.prior_meta.last_change_seq);
  meta = e.prior_meta;
  meta.last_change_seq = change;
  report.restored_erases++;
  // The pre-image (with prior_meta's old program stamp) is back on the
  // media; a checkpoint taken after the erase knows nothing about it.
  report.rescan.push_back(e.block);
}

FlashArray::PowerCutReport FlashArray::ApplyPowerCut(SimTime cut) {
  PowerCutReport report;
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    switch (it->kind) {
      case JournalEntry::Kind::kProgram:
        UndoProgram(*it, cut, report);
        break;
      case JournalEntry::Kind::kInvalidate:
        UndoInvalidate(*it, cut, report);
        break;
      case JournalEntry::Kind::kErase:
        UndoErase(*it, cut, report);
        break;
    }
  }
  journal_.clear();
  return report;
}

}  // namespace conzone
