#include "flash/normal_allocator.hpp"

#include <string>

namespace conzone {

NormalAllocator::NormalAllocator(FlashArray& array, SuperblockPool& pool)
    : array_(array), pool_(pool), geo_(array.geometry()) {}

Status NormalAllocator::BindNextSuperblock() {
  auto sb = pool_.AllocateNormal();
  if (!sb.ok()) return sb.status();
  current_ = sb.value();
  row_ = 0;
  chip_off_ = 0;
  return Status::Ok();
}

Result<NormalAllocator::UnitResult> NormalAllocator::ProgramUnit(
    std::span<const SlotWrite> writes) {
  const std::uint64_t unit_slots = geo_.program_unit / geo_.slot_size;
  if (writes.size() != unit_slots) {
    return Status::InvalidArgument("ProgramUnit needs exactly " +
                                   std::to_string(unit_slots) + " slots");
  }
  failed_chips_.clear();
  // Retry until the unit lands on a healthy block: retired blocks are
  // skipped, a fresh program failure burns the pulse (chip recorded for
  // timing) and the unit is re-driven at the next position. Terminates:
  // the (row, chip) cursor strictly advances and pool exhaustion surfaces
  // as kResourceExhausted.
  for (;;) {
    if (!current_.valid() || row_ >= geo_.UnitsPerBlock()) {
      if (Status st = BindNextSuperblock(); !st.ok()) return st;
    }
    const ChipId chip{chip_off_};
    const BlockId block = geo_.BlockOfSuperblock(current_, chip);
    const std::uint32_t first_page = row_ * geo_.PagesPerProgramUnit();
    if (++chip_off_ == geo_.NumChips()) {
      chip_off_ = 0;
      ++row_;
    }
    if (array_.IsRetired(block)) continue;

    Status st = array_.ProgramSlots(block, writes);
    if (!st.ok()) {
      if (st.code() == StatusCode::kMediaError) {
        failed_chips_.push_back(chip);
        continue;
      }
      return st;
    }
    UnitResult out;
    out.chip = chip;
    out.ppns.reserve(writes.size());
    for (std::uint64_t k = 0; k < unit_slots; ++k) {
      const std::uint32_t page =
          first_page + static_cast<std::uint32_t>(k / geo_.SlotsPerPage());
      const std::uint32_t slot = static_cast<std::uint32_t>(k % geo_.SlotsPerPage());
      out.ppns.push_back(geo_.SlotAt(geo_.PageAt(block, page), slot));
    }
    return out;
  }
}

}  // namespace conzone
