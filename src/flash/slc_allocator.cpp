#include "flash/slc_allocator.hpp"

namespace conzone {

SlcAllocator::SlcAllocator(FlashArray& array, SuperblockPool& pool)
    : array_(array), pool_(pool), geo_(array.geometry()) {}

Status SlcAllocator::BindNextSuperblock() {
  auto sb = pool_.AllocateSlc();
  if (!sb.ok()) return sb.status();
  current_ = sb.value();
  index_ = 0;
  return Status::Ok();
}

std::uint64_t SlcAllocator::SlotsLeftInCurrent() const {
  if (!current_.valid()) return 0;
  const std::uint64_t total =
      static_cast<std::uint64_t>(geo_.SlcUsableSlotsPerBlock()) * geo_.NumChips();
  return total - index_;
}

Result<std::vector<Ppn>> SlcAllocator::Program(std::span<const SlotWrite> writes) {
  // Page-fill stripe order within the superblock: flat index i maps to
  //   page row  = i / (slots_per_page * chips)
  //   chip      = (i / slots_per_page) % chips
  //   slot      = i % slots_per_page
  const std::uint32_t spp = geo_.SlotsPerPage();
  const std::uint64_t total =
      static_cast<std::uint64_t>(geo_.SlcUsableSlotsPerBlock()) * geo_.NumChips();
  failed_.clear();

  std::vector<Ppn> ppns;
  ppns.reserve(writes.size());
  for (const SlotWrite& w : writes) {
    // Each write retries until it lands: retired blocks are skipped, and a
    // fresh program failure burns its slot (recorded in failed_) before the
    // write is re-driven at the next position. Termination: index_ strictly
    // advances, and pool exhaustion surfaces as kResourceExhausted.
    for (;;) {
      if (!current_.valid() || index_ >= total) {
        Status st = BindNextSuperblock();
        if (!st.ok()) return st;
      }
      const std::uint32_t page_row = static_cast<std::uint32_t>(index_ / (spp * geo_.NumChips()));
      const std::uint32_t chip = static_cast<std::uint32_t>((index_ / spp) % geo_.NumChips());
      const std::uint32_t slot = static_cast<std::uint32_t>(index_ % spp);
      const BlockId block = geo_.BlockOfSuperblock(current_, ChipId{chip});
      if (array_.IsRetired(block)) {
        ++index_;
        continue;
      }
      // In this order each block's sequential cursor is page_row*spp + slot.
      const SlotWrite one[] = {w};
      Status st = array_.ProgramSlots(block, one);
      if (st.ok()) {
        ppns.push_back(geo_.SlotAt(geo_.PageAt(block, page_row), slot));
        ++index_;
        break;
      }
      if (st.code() == StatusCode::kMediaError) {
        failed_.push_back(geo_.SlotAt(geo_.PageAt(block, page_row), slot));
        ++index_;
        continue;
      }
      return st;
    }
  }
  return ppns;
}

}  // namespace conzone
