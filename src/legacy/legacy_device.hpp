// Legacy baseline — traditional consumer-grade flash storage (§II-A,
// §IV-A).
//
// The paper's evaluation re-implements the conventional device described
// by ZMS to quantify what the zone abstraction buys. Differences from
// ConZone:
//
//   - no zones: the host may update any 4 KiB page in place; the FTL is
//     a pure page-mapping table over a log-structured normal region;
//   - the L2P cache holds only page-granularity entries, with a
//     sequential prefetch window (1023 entries, §IV-C) to help streaming
//     reads;
//   - the device runs full garbage collection over BOTH regions: valid
//     data must be migrated before any block is erased — the lifetime
//     cost the zone abstraction eliminates (§I, Fig. 1 E.1/E.2);
//   - over-provisioning: only part of the normal region is host-visible,
//     the rest is GC headroom.
//
// The write buffer, SLC secondary buffer, media, and timing model are
// identical to ConZone's, as in the paper's comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "buffer/write_buffer.hpp"
#include "core/storage_device.hpp"
#include "flash/array.hpp"
#include "flash/slc_allocator.hpp"
#include "flash/superblock.hpp"
#include "flash/timing_engine.hpp"
#include "ftl/l2p_cache.hpp"
#include "ftl/mapping.hpp"
#include "ftl/translator.hpp"
#include "flash/normal_allocator.hpp"
#include "sim/resource.hpp"

namespace conzone {

struct LegacyConfig {
  FlashGeometry geometry;
  TimingConfig timing;
  /// Same buffer SRAM budget as ConZone (two superpage buffers); the
  /// Legacy controller assigns them to detected write streams.
  WriteBufferConfig buffers{/*num_buffers=*/2, /*buffer_bytes=*/384 * kKiB,
                            /*slot_bytes=*/4 * kKiB};
  /// Fraction of the normal region hidden from the host as GC headroom.
  double over_provision = 0.07;
  L2pCacheConfig l2p;
  /// §IV-C: prefetch window of 1023 entries (one chunk per miss).
  std::uint32_t prefetch_window = 1023;
  CellType map_media = CellType::kTlc;
  std::uint32_t gc_low_watermark = 2;
  std::uint32_t gc_reclaim_target = 3;
  std::uint64_t host_link_bandwidth_bps = 4200 * kMiB;
  SimDuration request_overhead = SimDuration::Micros(15);

  Status Validate() const;
};

struct LegacyStats {
  std::uint64_t host_bytes_written = 0;
  std::uint64_t host_bytes_read = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t flushes = 0;
  std::uint64_t premature_flushes = 0;
  std::uint64_t buffer_ram_reads = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_slots_migrated = 0;
  std::uint64_t overwrites = 0;  ///< In-place updates (invalidations).
};

class LegacyDevice final : public StorageDevice {
 public:
  static Result<std::unique_ptr<LegacyDevice>> Create(const LegacyConfig& config);

  DeviceInfo info() const override;
  Result<IoResult> Write(const IoRequest& req) override;
  Result<IoResult> Read(const IoRequest& req) override;
  Result<SimTime> Flush(SimTime now) override;
  StatsSnapshot Stats() const override;
  ReliabilityStats Reliability() const override { return array_.reliability(); }

  const LegacyConfig& config() const { return cfg_; }
  const LegacyStats& stats() const { return stats_; }
  const MediaCounters& media_counters() const { return array_.counters(); }
  const Translator& translator() const { return translator_; }
  const L2PCache& l2p_cache() const { return cache_; }
  void ResetStats();

 private:
  explicit LegacyDevice(const LegacyConfig& config);

  /// The pre-IoRequest write/read bodies; the virtual overrides unpack
  /// the request and delegate here.
  Result<SimTime> WriteImpl(std::uint64_t offset, std::uint64_t len, SimTime now,
                            std::span<const std::uint64_t> tokens);
  Result<SimTime> ReadImpl(std::uint64_t offset, std::uint64_t len, SimTime now,
                           std::vector<std::uint64_t>* tokens_out);

  /// Point `lpn` at `ppn`, invalidating any previous copy (in-place
  /// update semantics).
  Status SetMapping(Lpn lpn, Ppn ppn);

  /// Returns {sram_free, media_done}: the buffer accepts new data once
  /// transfers drain; durability waits for the program pulses.
  struct FlushResult {
    SimTime sram_free;
    SimTime media_done;
  };
  Result<FlushResult> FlushExtent(BufferedExtent extent, SimTime now);

  /// Greedy full GC over one region; returns completion time.
  Result<SimTime> CollectRegion(bool slc_region, SimTime now);
  Result<SimTime> MaybeRunGc(SimTime now);
  SuperblockId SelectVictim(bool slc_region) const;

  /// Migrate a batch of live slots into the normal write stream (units
  /// padded at the tail).
  Result<SimTime> MigrateToNormal(std::vector<SlotWrite> live, SimTime reads_done);

  /// No aggregated entries exist under page mapping.
  class NullResolver : public PhysicalResolver {
   public:
    std::optional<Ppn> ResolveAggregated(MapGranularity, std::uint64_t,
                                         Lpn) const override {
      return std::nullopt;
    }
  };

  LegacyConfig cfg_;
  std::uint64_t usable_bytes_;
  FlashArray array_;
  FlashTimingEngine engine_;
  SuperblockPool pool_;
  SlcAllocator slc_alloc_;
  NormalAllocator normal_alloc_;
  WriteBufferPool buffers_;
  MappingTable table_;
  L2PCache cache_;
  NullResolver resolver_;
  Translator translator_;
  ResourceTimeline host_link_;
  std::vector<SimTime> buffer_ready_;
  LegacyStats stats_;
  /// Successful reads/writes bucketed by IoRequest::io_class.
  std::array<std::uint64_t, kNumIoClasses> class_reads_{};
  std::array<std::uint64_t, kNumIoClasses> class_writes_{};
};

}  // namespace conzone
