#include "legacy/legacy_device.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>
#include <unordered_map>

namespace conzone {

namespace {
std::uint64_t DefaultToken(Lpn lpn) { return 0x1E6AC700ull ^ lpn.value(); }
}  // namespace

Status LegacyConfig::Validate() const {
  if (Status st = geometry.Validate(); !st.ok()) return st;
  if (Status st = buffers.Validate(); !st.ok()) return st;
  if (over_provision < 0.0 || over_provision >= 0.5) {
    return Status::InvalidArgument("legacy: over-provision must be in [0, 0.5)");
  }
  if (gc_low_watermark == 0 || gc_reclaim_target < gc_low_watermark) {
    return Status::InvalidArgument("legacy: bad GC watermarks");
  }
  if (host_link_bandwidth_bps == 0) {
    return Status::InvalidArgument("legacy: host link bandwidth must be > 0");
  }
  return Status::Ok();
}

Result<std::unique_ptr<LegacyDevice>> LegacyDevice::Create(const LegacyConfig& config) {
  if (Status st = config.Validate(); !st.ok()) return st;
  return std::unique_ptr<LegacyDevice>(new LegacyDevice(config));
}

LegacyDevice::LegacyDevice(const LegacyConfig& config)
    : cfg_([&] {
        LegacyConfig c = config;
        c.buffers.slot_bytes = c.geometry.slot_size;
        return c;
      }()),
      usable_bytes_(RoundDown(
          static_cast<std::uint64_t>(
              static_cast<double>(cfg_.geometry.NormalRegionBytes()) *
              (1.0 - cfg_.over_provision)),
          cfg_.geometry.program_unit)),
      array_(cfg_.geometry),
      engine_(cfg_.geometry, cfg_.timing),
      pool_(cfg_.geometry),
      slc_alloc_(array_, pool_),
      normal_alloc_(array_, pool_),
      buffers_(cfg_.buffers),
      table_(MappingGeometry{
          usable_bytes_ / cfg_.geometry.slot_size, cfg_.l2p.lpns_per_chunk,
          cfg_.l2p.lpns_per_zone,
          static_cast<std::uint32_t>(cfg_.geometry.page_size / 4)}),
      cache_(cfg_.l2p),
      translator_(table_, cache_, resolver_,
                  TranslatorConfig{L2pSearchStrategy::kBitmap, /*hybrid=*/false,
                                   cfg_.prefetch_window}) {
  buffer_ready_.resize(cfg_.buffers.num_buffers, SimTime::Zero());
}

DeviceInfo LegacyDevice::info() const {
  DeviceInfo di;
  di.name = "Legacy";
  di.capacity_bytes = usable_bytes_;
  di.zone_size_bytes = 0;
  di.num_zones = 0;
  di.slc_bytes = cfg_.geometry.SlcUsableBytesPerSuperblock() *
                 cfg_.geometry.NumSlcSuperblocks();
  di.io_alignment = cfg_.geometry.slot_size;
  return di;
}

Result<IoResult> LegacyDevice::Write(const IoRequest& req) {
  auto done = WriteImpl(req.offset, req.len, req.now, req.tokens);
  if (!done.ok()) return done.status();
  ++class_writes_[static_cast<std::size_t>(req.io_class)];
  return IoResult{done.value(), {}};
}

Result<IoResult> LegacyDevice::Read(const IoRequest& req) {
  IoResult res;
  auto done =
      ReadImpl(req.offset, req.len, req.now, req.want_tokens ? &res.tokens : nullptr);
  if (!done.ok()) return done.status();
  ++class_reads_[static_cast<std::size_t>(req.io_class)];
  res.done = done.value();
  return res;
}

StatsSnapshot LegacyDevice::Stats() const {
  StatsSnapshot s;
  s.host_bytes_written = stats_.host_bytes_written;
  s.host_bytes_read = stats_.host_bytes_read;
  s.flash_bytes_written =
      array_.counters().TotalSlotsProgrammed() * cfg_.geometry.slot_size;
  s.writes = stats_.writes;
  s.reads = stats_.reads;
  s.buffer_flushes = stats_.flushes;
  s.premature_flushes = stats_.premature_flushes;
  s.overwrites = stats_.overwrites;
  s.gc_runs = stats_.gc_runs;
  s.gc_slots_migrated = stats_.gc_slots_migrated;
  s.class_reads = class_reads_;
  s.class_writes = class_writes_;
  return s;
}

void LegacyDevice::ResetStats() {
  stats_ = LegacyStats{};
  class_reads_ = {};
  class_writes_ = {};
  translator_.ResetStats();
  cache_.ResetStats();
  array_.ResetCounters();
}

Status LegacyDevice::SetMapping(Lpn lpn, Ppn ppn) {
  const MapEntry old = table_.Get(lpn);
  if (old.mapped() && array_.StateOfSlot(old.ppn) == SlotState::kValid) {
    if (Status st = array_.InvalidateSlot(old.ppn); !st.ok()) return st;
    ++stats_.overwrites;
  }
  table_.Set(lpn, ppn);
  cache_.Erase(L2pKey{MapGranularity::kPage, lpn.value()});
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Result<SimTime> LegacyDevice::WriteImpl(std::uint64_t offset, std::uint64_t len,
                                        SimTime now,
                                    std::span<const std::uint64_t> tokens) {
  const std::uint64_t slot = cfg_.geometry.slot_size;
  if (offset % slot != 0 || len % slot != 0 || len == 0) {
    return Status::InvalidArgument("write must be 4 KiB aligned and non-empty");
  }
  if (offset + len > usable_bytes_) {
    return Status::OutOfRange("write beyond device capacity");
  }
  if (!tokens.empty() && tokens.size() != len / slot) {
    return Status::InvalidArgument("token count != written 4 KiB pages");
  }
  ++stats_.writes;
  stats_.host_bytes_written += len;

  SimTime t = now + cfg_.request_overhead;
  const unsigned __int128 xfer_ns = static_cast<unsigned __int128>(len) * 1000000000ull /
                                    cfg_.host_link_bandwidth_bps;
  t = host_link_.Reserve(t, SimDuration::Nanos(static_cast<std::uint64_t>(xfer_ns))).end;

  const std::uint64_t nslots = len / slot;
  const Lpn first_lpn = Lpn(offset / slot);
  // Streams have no zone identity; extents are keyed by contiguity only.
  const ZoneId stream{0};

  std::uint64_t i = 0;
  while (i < nslots) {
    const Lpn next = Lpn(first_lpn.value() + i);
    // The controller detects write streams: continue a matching extent,
    // otherwise take an empty buffer, otherwise evict the coldest one.
    const WriteBufferId buf = buffers_.PickBufferForStream(next);
    t = Later(t, buffer_ready_[static_cast<std::size_t>(buf.value())]);

    const BufferedExtent& cur = buffers_.Contents(buf);
    const bool contiguous =
        cur.empty() || Lpn(cur.first_lpn.value() + cur.slot_count()) == next;
    const bool overlaps =
        !cur.empty() && next.value() < cur.first_lpn.value() + cur.slot_count() &&
        next.value() + (nslots - i) > cur.first_lpn.value();
    if (!contiguous || overlaps) {
      // Stream break (random write, rewrite of buffered data, or buffer
      // steal): flush and start a fresh extent.
      auto done = FlushExtent(buffers_.Take(buf, /*conflict=*/true), t);
      if (!done.ok()) return done.status();
      buffer_ready_[static_cast<std::size_t>(buf.value())] = done.value().sram_free;
      t = done.value().sram_free;
    }

    const std::uint64_t free = buffers_.FreeSlots(buf);
    const std::uint64_t n = std::min(free, nslots - i);
    std::vector<SlotWrite> chunk;
    chunk.reserve(n);
    for (std::uint64_t k = 0; k < n; ++k) {
      const Lpn lpn = Lpn(first_lpn.value() + i + k);
      chunk.push_back(
          SlotWrite{lpn, tokens.empty() ? DefaultToken(lpn) : tokens[i + k]});
    }
    if (Status st = buffers_.AppendTo(buf, stream, next, chunk); !st.ok()) return st;
    i += n;

    if (buffers_.FreeSlots(buf) == 0) {
      auto done = FlushExtent(buffers_.Take(buf, /*conflict=*/false), t);
      if (!done.ok()) return done.status();
      buffer_ready_[static_cast<std::size_t>(buf.value())] = done.value().sram_free;
    }
  }
  return t;
}

Result<LegacyDevice::FlushResult> LegacyDevice::FlushExtent(BufferedExtent extent,
                                                            SimTime now) {
  if (extent.empty()) return FlushResult{now, now};
  ++stats_.flushes;
  const FlashGeometry& geo = cfg_.geometry;
  const std::uint64_t unit_slots = geo.program_unit / geo.slot_size;
  SimTime done = now;
  SimTime sram_free = now;

  std::size_t i = 0;
  // Whole one-shot units to the normal log.
  while (extent.slot_count() - i >= unit_slots) {
    auto unit = normal_alloc_.ProgramUnit(
        std::span<const SlotWrite>(extent.slots).subspan(i, unit_slots));
    if (!unit.ok()) return unit.status();
    const auto prog =
        engine_.Program(unit.value().chip, geo.normal_cell, geo.program_unit, now);
    sram_free = Later(sram_free, prog.data_in);
    done = Later(done, prog.end);
    for (std::size_t k = 0; k < unit_slots; ++k) {
      if (Status st = SetMapping(extent.slots[i + k].lpn, unit.value().ppns[k]);
          !st.ok()) {
        return st;
      }
    }
    i += unit_slots;
  }
  // Sub-unit remainder: partial-program into SLC (same secondary-buffer
  // role as in ConZone; under page mapping the data can simply stay there
  // until GC migrates it).
  if (i < extent.slot_count()) {
    ++stats_.premature_flushes;
    std::vector<SlotWrite> rest(extent.slots.begin() + static_cast<std::ptrdiff_t>(i),
                                extent.slots.end());
    auto ppns = slc_alloc_.Program(rest);
    if (!ppns.ok()) return ppns.status();
    const auto prog = ProgramSlcSlots(engine_, geo, ppns.value(), now);
    sram_free = Later(sram_free, prog.data_in);
    done = Later(done, prog.end);
    for (std::size_t k = 0; k < rest.size(); ++k) {
      if (Status st = SetMapping(rest[k].lpn, ppns.value()[k]); !st.ok()) return st;
    }
  }

  auto gc_done = MaybeRunGc(done);
  if (!gc_done.ok()) return gc_done.status();
  done = Later(done, gc_done.value());
  sram_free = Later(sram_free, gc_done.value());
  return FlushResult{sram_free, done};
}

// ---------------------------------------------------------------------------
// Garbage collection (full GC over both regions, Fig. 1 E.1/E.2)
// ---------------------------------------------------------------------------

SuperblockId LegacyDevice::SelectVictim(bool slc_region) const {
  const FlashGeometry& geo = cfg_.geometry;
  const std::uint32_t begin = slc_region ? 0 : geo.NumSlcSuperblocks();
  const std::uint32_t end =
      slc_region ? geo.NumSlcSuperblocks() : geo.NumSuperblocks();
  SuperblockId best;
  std::uint64_t best_valid = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t s = begin; s < end; ++s) {
    const SuperblockId sb{s};
    if (sb == slc_alloc_.current_superblock() ||
        sb == normal_alloc_.current_superblock()) {
      continue;
    }
    std::uint64_t valid = 0, used = 0;
    for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
      const BlockId b = geo.BlockOfSuperblock(sb, ChipId{c});
      valid += array_.ValidSlots(b);
      used += array_.NextProgramSlot(b);
    }
    if (used == 0) continue;
    if (valid < best_valid) {
      best_valid = valid;
      best = sb;
    }
  }
  return best;
}

Result<SimTime> LegacyDevice::MigrateToNormal(std::vector<SlotWrite> live,
                                              SimTime reads_done) {
  const FlashGeometry& geo = cfg_.geometry;
  const std::uint64_t unit_slots = geo.program_unit / geo.slot_size;
  SimTime done = reads_done;
  std::size_t i = 0;
  while (i < live.size()) {
    std::vector<SlotWrite> unit(live.begin() + static_cast<std::ptrdiff_t>(i),
                                live.begin() + static_cast<std::ptrdiff_t>(std::min(
                                                   i + unit_slots, live.size())));
    const std::size_t data_count = unit.size();
    unit.resize(unit_slots, SlotWrite{Lpn::Invalid(), 0});  // tail padding
    auto res = normal_alloc_.ProgramUnit(unit);
    if (!res.ok()) return res.status();
    done = Later(done, engine_.Program(res.value().chip, geo.normal_cell,
                                       geo.program_unit, reads_done)
                           .end);
    for (std::size_t k = 0; k < unit_slots; ++k) {
      const Ppn ppn = res.value().ppns[k];
      if (k < data_count) {
        if (Status st = SetMapping(unit[k].lpn, ppn); !st.ok()) return st;
      } else {
        // Padding carries no data; retire it instantly.
        if (Status st = array_.InvalidateSlot(ppn); !st.ok()) return st;
      }
    }
    i += data_count;
    stats_.gc_slots_migrated += data_count;
  }
  return done;
}

Result<SimTime> LegacyDevice::CollectRegion(bool slc_region, SimTime now) {
  const FlashGeometry& geo = cfg_.geometry;
  ++stats_.gc_runs;
  SimTime t = now;
  auto free_count = [&] {
    return slc_region ? pool_.FreeSlcCount() : pool_.FreeNormalCount();
  };
  std::size_t last_free = free_count();
  int stalled_rounds = 0;
  while (free_count() < cfg_.gc_reclaim_target) {
    const SuperblockId victim = SelectVictim(slc_region);
    if (!victim.valid()) {
      if (free_count() == 0) {
        return Status::ResourceExhausted("legacy GC: region exhausted, no victim");
      }
      break;
    }
    // Migrating SLC victims into the normal log always makes SLC
    // progress, but an all-valid normal region can only churn; bail out
    // when a pass reclaims nothing.
    if (!slc_region && free_count() <= last_free && ++stalled_rounds > 1) break;
    last_free = free_count();
    // Read the live slots (grouped per flash page).
    std::vector<SlotWrite> live;
    SimTime reads_done = t;
    for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
      const BlockId b = geo.BlockOfSuperblock(victim, ChipId{c});
      const std::uint32_t used = array_.NextProgramSlot(b);
      std::uint32_t page_live = 0;
      std::uint32_t current_page = std::numeric_limits<std::uint32_t>::max();
      auto flush_page = [&] {
        if (page_live == 0) return;
        array_.CountPageRead();
        reads_done = Later(reads_done,
                           engine_.ReadPage(ChipId{c}, geo.CellOfBlock(b),
                                            page_live * geo.slot_size, t));
        page_live = 0;
      };
      for (std::uint32_t s = 0; s < used; ++s) {
        const std::uint32_t page = s / geo.SlotsPerPage();
        const Ppn ppn = geo.SlotAt(geo.PageAt(b, page), s % geo.SlotsPerPage());
        if (array_.StateOfSlot(ppn) != SlotState::kValid) continue;
        if (page != current_page) {
          flush_page();
          current_page = page;
        }
        ++page_live;
        const SlotRead r = array_.ReadSlot(ppn);
        live.push_back(SlotWrite{r.lpn, r.token});
        if (Status st = array_.InvalidateSlot(ppn); !st.ok()) return st;
      }
      flush_page();
    }
    // Migrate into the normal log, erase, release.
    auto mig = MigrateToNormal(std::move(live), reads_done);
    if (!mig.ok()) return mig.status();
    t = mig.value();
    SimTime erases = t;
    for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
      const BlockId b = geo.BlockOfSuperblock(victim, ChipId{c});
      if (Status st = array_.EraseBlock(b); !st.ok()) return st;
      erases = Later(erases, engine_.Erase(ChipId{c}, geo.CellOfBlock(b), t));
    }
    t = erases;
    Status rel = slc_region ? pool_.ReleaseSlc(victim) : pool_.ReleaseNormal(victim);
    if (!rel.ok()) return rel;
  }
  return t;
}

Result<SimTime> LegacyDevice::MaybeRunGc(SimTime now) {
  SimTime t = now;
  if (pool_.FreeNormalCount() < cfg_.gc_low_watermark) {
    auto r = CollectRegion(/*slc_region=*/false, t);
    if (!r.ok()) return r.status();
    t = r.value();
  }
  if (pool_.FreeSlcCount() < cfg_.gc_low_watermark) {
    auto r = CollectRegion(/*slc_region=*/true, t);
    if (!r.ok()) return r.status();
    t = r.value();
  }
  return t;
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

Result<SimTime> LegacyDevice::ReadImpl(std::uint64_t offset, std::uint64_t len,
                                       SimTime now,
                                   std::vector<std::uint64_t>* tokens_out) {
  const FlashGeometry& geo = cfg_.geometry;
  const std::uint64_t slot = geo.slot_size;
  if (offset % slot != 0 || len % slot != 0 || len == 0) {
    return Status::InvalidArgument("read must be 4 KiB aligned and non-empty");
  }
  if (offset + len > usable_bytes_) {
    return Status::OutOfRange("read beyond device capacity");
  }
  ++stats_.reads;
  stats_.host_bytes_read += len;
  const SimTime t0 = now + cfg_.request_overhead;
  SimTime data_done = t0;

  struct PageGroup {
    FlashPageId page;
    std::uint32_t slots = 0;
    SimTime dep;
  };
  std::vector<PageGroup> groups;
  auto add_to_group = [&](FlashPageId page, SimTime dep) {
    for (PageGroup& g : groups) {
      if (g.page == page) {
        ++g.slots;
        g.dep = Later(g.dep, dep);
        return;
      }
    }
    groups.push_back(PageGroup{page, 1, dep});
  };

  auto buffered_token = [&](Lpn lpn) -> const std::uint64_t* {
    for (std::uint32_t b = 0; b < cfg_.buffers.num_buffers; ++b) {
      const BufferedExtent& e = buffers_.Contents(WriteBufferId{b});
      if (!e.empty() && lpn >= e.first_lpn &&
          lpn.value() < e.first_lpn.value() + e.slot_count()) {
        return &e.slots[static_cast<std::size_t>(lpn.value() - e.first_lpn.value())]
                    .token;
      }
    }
    return nullptr;
  };
  for (std::uint64_t off = offset; off < offset + len; off += slot) {
    const Lpn lpn = Lpn(off / slot);
    if (const std::uint64_t* tok = buffered_token(lpn)) {
      if (tokens_out) tokens_out->push_back(*tok);
      ++stats_.buffer_ram_reads;
      continue;
    }
    auto tr = translator_.Translate(lpn);
    if (!tr.ok()) return tr.status();
    SimTime dep = t0;
    for (std::uint64_t map_page : tr.value().map_pages_fetched) {
      const ChipId chip{map_page % geo.NumChips()};
      array_.CountPageRead();
      dep = engine_.ReadPage(chip, cfg_.map_media, geo.page_size, dep);
    }
    const Ppn ppn = tr.value().ppn;
    const SlotRead r = array_.ReadSlot(ppn);
    if (r.state != SlotState::kValid || r.lpn != lpn) {
      return Status::Internal("legacy mapping points at stale slot (lpn " +
                              std::to_string(lpn.value()) + ")");
    }
    if (tokens_out) tokens_out->push_back(r.token);
    add_to_group(geo.PageOfSlot(ppn), dep);
  }
  for (const PageGroup& g : groups) {
    const BlockId b = geo.BlockOfPage(g.page);
    array_.CountPageRead();
    data_done = Later(data_done, engine_.ReadPage(geo.ChipOfBlock(b), geo.CellOfBlock(b),
                                                  g.slots * slot, g.dep));
  }

  const unsigned __int128 xfer_ns = static_cast<unsigned __int128>(len) * 1000000000ull /
                                    cfg_.host_link_bandwidth_bps;
  return host_link_
      .Reserve(data_done, SimDuration::Nanos(static_cast<std::uint64_t>(xfer_ns)))
      .end;
}

Result<SimTime> LegacyDevice::Flush(SimTime now) {
  SimTime done = now;
  for (std::uint32_t b = 0; b < cfg_.buffers.num_buffers; ++b) {
    const WriteBufferId id{b};
    if (buffers_.Contents(id).empty()) continue;
    const SimTime start = Later(now, buffer_ready_[b]);
    auto res = FlushExtent(buffers_.Take(id, /*conflict=*/false), start);
    if (!res.ok()) return res.status();
    buffer_ready_[b] = res.value().sram_free;
    done = Later(done, res.value().media_done);
  }
  return done;
}

}  // namespace conzone
