#include "cache/zone_cache_fsck.hpp"

#include <algorithm>
#include <unordered_map>

namespace conzone {

namespace {

constexpr std::uint64_t kFsckFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFsckFnvPrime = 0x100000001B3ull;

std::uint64_t Mix(std::uint64_t h, std::uint64_t x) {
  return (h ^ x) * kFsckFnvPrime;
}

}  // namespace

ZoneCacheFsck::Report ZoneCacheFsck::Check(const ZoneCache& cache, SimTime now) {
  Report rep;
  StorageDevice* dev = cache.device();
  const std::uint64_t slot = cache.slot_bytes();
  const std::uint64_t zone_slots = cache.zone_slots();
  const auto entries = cache.IndexSnapshot();  // sorted by key

  const auto flag = [&rep](std::string what) {
    ++rep.inconsistencies;
    rep.problems.push_back(std::move(what));
  };

  if (entries.size() > cache.max_entries()) {
    flag("index holds " + std::to_string(entries.size()) +
         " entries, journal snapshot bound is " +
         std::to_string(cache.max_entries()));
  }

  // Invariant 1: every entry's header token must be recomputable from
  // the durable value pages behind it.
  std::uint64_t fp = kFsckFnvOffset;
  std::unordered_map<std::uint32_t, std::uint64_t> zone_live;
  struct Extent {
    std::uint32_t zone;
    std::uint32_t first;
    std::uint32_t last;  // inclusive
    std::uint64_t key;
  };
  std::vector<Extent> extents;
  extents.reserve(entries.size());

  for (const auto& e : entries) {
    ++rep.entries_checked;
    const std::uint64_t span_slots = 1ull + e.value_slots;
    if (!cache.IsDataZone(e.zone) || e.value_slots == 0 ||
        e.slot + span_slots > zone_slots) {
      flag("key " + std::to_string(e.key) + ": location (zone " +
           std::to_string(e.zone) + ", slot " + std::to_string(e.slot) +
           ", +" + std::to_string(span_slots) + ") outside the data space");
      continue;
    }
    zone_live[e.zone] += span_slots;
    extents.push_back(Extent{e.zone, e.slot,
                             static_cast<std::uint32_t>(e.slot + span_slots - 1),
                             e.key});

    const std::uint64_t base =
        static_cast<std::uint64_t>(e.zone) * zone_slots * slot +
        static_cast<std::uint64_t>(e.slot) * slot;
    auto rd = dev->Read(IoRequest{base, span_slots * slot, now, {},
                                  /*want_tokens=*/true, IoClass::kMaintenance});
    if (!rd.ok()) {
      flag("key " + std::to_string(e.key) + ": live entry unreadable: " +
           std::string(rd.status().message()));
      continue;
    }
    const auto& t = rd.value().tokens;
    const std::span<const std::uint64_t> value(t.data() + 1, t.size() - 1);
    const std::uint64_t want = ZoneCache::HeaderToken(e.key, e.value_slots, value);
    if (t[0] != want) {
      flag("key " + std::to_string(e.key) + ": header token mismatch at zone " +
           std::to_string(e.zone) + " slot " + std::to_string(e.slot));
      continue;
    }
    rep.live_slots += span_slots;
    fp = Mix(fp, e.key);
    fp = Mix(fp, (static_cast<std::uint64_t>(e.zone) << 32) | e.slot);
    for (std::uint64_t v : t) fp = Mix(fp, v);
  }

  // Invariant 2: live extents are pairwise disjoint.
  std::sort(extents.begin(), extents.end(), [](const Extent& a, const Extent& b) {
    return a.zone != b.zone ? a.zone < b.zone : a.first < b.first;
  });
  for (std::size_t i = 1; i < extents.size(); ++i) {
    const Extent& p = extents[i - 1];
    const Extent& c = extents[i];
    if (p.zone == c.zone && c.first <= p.last) {
      flag("keys " + std::to_string(p.key) + " and " + std::to_string(c.key) +
           " overlap in zone " + std::to_string(p.zone));
    }
  }

  // Invariant 3: the cache's per-zone live accounting matches the index.
  const std::uint32_t num_zones =
      static_cast<std::uint32_t>(dev->info().num_zones);
  for (std::uint32_t z = 0; z < num_zones; ++z) {
    if (!cache.IsDataZone(z)) continue;
    const std::uint64_t want = [&] {
      auto it = zone_live.find(z);
      return it == zone_live.end() ? 0ull : it->second;
    }();
    const std::uint64_t have = cache.LiveSlotsOfZone(z);
    if (want != have) {
      flag("zone " + std::to_string(z) + ": live-slot count " +
           std::to_string(have) + " disagrees with index total " +
           std::to_string(want));
    }
  }

  rep.fingerprint = rep.ok() ? fp : 0;
  return rep;
}

}  // namespace conzone
