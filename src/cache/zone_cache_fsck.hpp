// ZoneCacheFsck — offline verifier for a mounted ZoneCache (DESIGN.md
// §14e), in the spirit of btrfs-progs `check/`: walk the on-flash state
// a Mount() produced and prove the semantic invariants hold:
//
//   1. every index entry points at durable media whose header token
//      matches the key, length, and value content actually stored;
//   2. no two live entries overlap, and every entry lies inside one
//      data zone;
//   3. per-zone live-slot accounting matches the index exactly;
//   4. the index respects the journal's snapshot bound (max_entries).
//
// Fsck never mutates anything — reads are tagged IoClass::kMaintenance
// — and it reports every violation it finds rather than stopping at the
// first, so a crash-sweep failure names all the damage at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/zone_cache.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace conzone {

class ZoneCacheFsck {
 public:
  struct Report {
    std::uint64_t entries_checked = 0;
    std::uint64_t live_slots = 0;      ///< Header+value slots verified.
    std::uint32_t inconsistencies = 0;
    std::vector<std::string> problems;  ///< One line per violation.
    /// Order-independent digest of the verified state (keys, locations,
    /// value content) — equal across two mounts iff the caches agree.
    std::uint64_t fingerprint = 0;

    bool ok() const { return inconsistencies == 0; }
  };

  /// Verify `cache` (already mounted) against its device's media at
  /// simulated time `now`. I/O failures on claimed-live entries count
  /// as inconsistencies, not hard errors.
  static Report Check(const ZoneCache& cache, SimTime now);
};

}  // namespace conzone
