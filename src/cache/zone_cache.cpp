#include "cache/zone_cache.hpp"

#include <algorithm>
#include <limits>

namespace conzone {

namespace {

constexpr std::uint32_t kNoZone = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;
constexpr std::uint64_t kHeaderMagic = 0x5A43414348453031ull;  // "ZCACHE01"
constexpr std::uint64_t kJournalMagic = 0x5A434A4F55524E31ull;  // "ZCJOURN1"

/// FNV-1a folded a 64-bit word at a time; the multiply diffuses each
/// word across the state, which is all the stand-in data channel needs.
std::uint64_t FnvMix(std::uint64_t h, std::uint64_t x) {
  return (h ^ x) * kFnvPrime;
}

}  // namespace

std::uint64_t ZoneCache::HeaderToken(std::uint64_t key, std::uint32_t value_slots,
                                     std::span<const std::uint64_t> value_tokens) {
  std::uint64_t h = kFnvOffset;
  h = FnvMix(h, kHeaderMagic);
  h = FnvMix(h, key);
  h = FnvMix(h, value_slots);
  for (std::uint64_t t : value_tokens) h = FnvMix(h, t);
  return h;
}

// ---------------------------------------------------------------------------
// Journal record codec: 3 slots (one token each).
//   t0 = key                  (kSnapEnd: seq of the snapshot's first record)
//   t1 = op:4 | group:8 | value_slots:12 | zone:20 | slot:20
//   t2 = seq32 << 32 | FNV32(magic, seq32, t0, t1)
// A torn record (slots from different epochs, or a half-durable write)
// fails the checksum and is dropped at replay.
// ---------------------------------------------------------------------------

void ZoneCache::EncodeRecord(const JournalRecord& r, std::uint64_t out[3]) {
  out[0] = r.key;
  out[1] = static_cast<std::uint64_t>(r.op) |
           (static_cast<std::uint64_t>(r.group & 0xFFu) << 4) |
           (static_cast<std::uint64_t>(r.value_slots & 0xFFFu) << 12) |
           (static_cast<std::uint64_t>(r.zone & 0xFFFFFu) << 24) |
           (static_cast<std::uint64_t>(r.slot & 0xFFFFFu) << 44);
  const std::uint64_t seq32 = r.seq & 0xFFFFFFFFull;
  std::uint64_t h = kFnvOffset;
  h = FnvMix(h, kJournalMagic);
  h = FnvMix(h, seq32);
  h = FnvMix(h, out[0]);
  h = FnvMix(h, out[1]);
  out[2] = (seq32 << 32) | (h & 0xFFFFFFFFull);
}

bool ZoneCache::DecodeRecord(const std::uint64_t in[3], JournalRecord* r) {
  const std::uint64_t seq32 = in[2] >> 32;
  std::uint64_t h = kFnvOffset;
  h = FnvMix(h, kJournalMagic);
  h = FnvMix(h, seq32);
  h = FnvMix(h, in[0]);
  h = FnvMix(h, in[1]);
  if ((h & 0xFFFFFFFFull) != (in[2] & 0xFFFFFFFFull)) return false;
  const std::uint64_t op = in[1] & 0xFu;
  if (op < static_cast<std::uint64_t>(JOp::kPut) ||
      op > static_cast<std::uint64_t>(JOp::kSnapEnd)) {
    return false;
  }
  r->op = static_cast<JOp>(op);
  r->key = in[0];
  r->group = static_cast<std::uint32_t>((in[1] >> 4) & 0xFFu);
  r->value_slots = static_cast<std::uint32_t>((in[1] >> 12) & 0xFFFu);
  r->zone = static_cast<std::uint32_t>((in[1] >> 24) & 0xFFFFFu);
  r->slot = static_cast<std::uint32_t>((in[1] >> 44) & 0xFFFFFu);
  r->seq = seq32;
  return true;
}

std::uint64_t ZoneCache::RecordOffset(const JournalArea& a, std::uint32_t idx) const {
  for (const auto& [base, cap] : a.extents) {
    if (idx < cap) return base + static_cast<std::uint64_t>(idx) * 3 * slot_;
    idx -= cap;
  }
  return ~0ull;  // unreachable for idx < a.records
}

// ---------------------------------------------------------------------------
// Construction / mount
// ---------------------------------------------------------------------------

ZoneCache::ZoneCache(StorageDevice* dev, const ZoneCacheOptions& options)
    : dev_(dev), opt_(options) {}

Status ZoneCache::Init(SimTime now) {
  (void)now;
  const DeviceInfo di = dev_->info();
  if (!di.zoned()) {
    return Status::InvalidArgument("ZoneCache needs a zoned device");
  }
  if (opt_.num_groups == 0 || opt_.num_groups > 8) {
    return Status::InvalidArgument("num_groups must be in [1, 8]");
  }
  if (opt_.reserve_free_zones == 0) {
    return Status::InvalidArgument("reserve_free_zones must be >= 1");
  }
  slot_ = di.io_alignment;
  zone_bytes_ = di.zone_size_bytes;
  zone_slots_ = zone_bytes_ / slot_;
  num_zones_ = di.num_zones;
  if (zone_slots_ < 12) {
    return Status::InvalidArgument("zones too small for the cache journal");
  }

  const std::uint32_t conv = di.num_conventional_zones;
  const auto zone_records = [&](std::uint64_t slots) {
    return static_cast<std::uint32_t>(slots / 3);
  };
  if (conv >= 2) {
    // Ping-pong areas over the conventional zones, split at zone
    // granularity so records never straddle a zone boundary.
    const std::uint32_t half = conv / 2 + (conv % 2);
    for (std::uint32_t z = 0; z < conv; ++z) {
      JournalArea& a = areas_[z < half ? 0 : 1];
      a.extents.emplace_back(ZoneBase(z), zone_records(zone_slots_));
      a.records += zone_records(zone_slots_);
    }
    first_data_zone_ = conv;
    sequential_journal_ = false;
  } else if (conv == 1) {
    // One conventional zone: half-zone areas.
    const std::uint64_t half_slots = zone_slots_ / 2;
    areas_[0].extents.emplace_back(0, zone_records(half_slots));
    areas_[0].records = zone_records(half_slots);
    areas_[1].extents.emplace_back(half_slots * slot_, zone_records(half_slots));
    areas_[1].records = zone_records(half_slots);
    first_data_zone_ = 1;
    sequential_journal_ = false;
  } else {
    // No conventional space: dedicate sequential zones 0 and 1 and
    // reset-before-rewrite on each epoch switch.
    if (num_zones_ < 3) {
      return Status::InvalidArgument("too few zones for a sequential journal");
    }
    for (std::uint32_t z = 0; z < 2; ++z) {
      areas_[z].extents.emplace_back(ZoneBase(z), zone_records(zone_slots_));
      areas_[z].records = zone_records(zone_slots_);
      areas_[z].reset_zones.push_back(z);
    }
    first_data_zone_ = 2;
    sequential_journal_ = true;
  }
  const std::uint32_t min_records = std::min(areas_[0].records, areas_[1].records);
  if (min_records < 8) {
    return Status::InvalidArgument("journal area too small");
  }
  max_entries_ = min_records / 2 - 1;

  if (num_zones_ <= first_data_zone_ ||
      num_zones_ - first_data_zone_ < opt_.reserve_free_zones + opt_.num_groups + 2) {
    return Status::InvalidArgument("too few data zones for the cache");
  }
  zones_.assign(num_zones_ - first_data_zone_, DataZone{});
  open_zone_.assign(opt_.num_groups + 1, kNoZone);
  return Status::Ok();
}

Result<std::unique_ptr<ZoneCache>> ZoneCache::Mount(StorageDevice* dev,
                                                    const ZoneCacheOptions& options,
                                                    SimTime now) {
  if (dev == nullptr) return Status::InvalidArgument("null device");
  std::unique_ptr<ZoneCache> c(new ZoneCache(dev, options));
  if (Status st = c->Init(now); !st.ok()) return st;
  if (Status st = c->Replay(now); !st.ok()) return st;
  if (Status st = c->VerifyAndSeal(now); !st.ok()) return st;
  // Start a fresh epoch: a complete snapshot of the verified index into
  // the area that did NOT hold the replayed base (so a cut mid-snapshot
  // falls back to the old base), then make it durable.
  auto snap = c->WriteSnapshot(1 - c->active_area_, now);
  if (!snap.ok()) return snap.status();
  auto f = dev->Flush(snap.value());
  if (!f.ok()) return f.status();
  return c;
}

Status ZoneCache::Replay(SimTime now) {
  struct Seen {
    JournalRecord rec;
    std::uint32_t area;
  };
  std::vector<Seen> records;
  std::vector<std::uint64_t> buf(3);
  for (std::uint32_t a = 0; a < 2; ++a) {
    bool stop_area = false;
    for (std::uint32_t i = 0; i < areas_[a].records && !stop_area; ++i) {
      auto rd = dev_->Read(IoRequest{RecordOffset(areas_[a], i), 3 * slot_, now, {},
                                     /*want_tokens=*/true, IoClass::kMaintenance});
      if (!rd.ok()) {
        // Sequential journal: reads fail past the recovered write
        // pointer — the rest of the area holds nothing. Conventional
        // journal: an unwritten record position; later positions may
        // still hold records from an earlier epoch, keep scanning.
        if (sequential_journal_) stop_area = true;
        continue;
      }
      JournalRecord r;
      if (DecodeRecord(rd.value().tokens.data(), &r)) {
        records.push_back(Seen{r, a});
      }
    }
  }
  std::sort(records.begin(), records.end(),
            [](const Seen& x, const Seen& y) { return x.rec.seq < y.rec.seq; });

  // Find the newest COMPLETE snapshot: a kSnapEnd whose [first, end)
  // seq range is fully present as kSnapPut records. It is the replay
  // base; records older than its first seq may be resurrected stale
  // state from a recycled area and must be ignored.
  std::uint64_t base_first = 0;
  bool have_base = false;
  std::uint32_t base_area = 0;
  for (std::size_t i = records.size(); i-- > 0;) {
    const JournalRecord& e = records[i].rec;
    if (e.op != JOp::kSnapEnd) continue;
    const std::uint64_t first = e.key;
    if (first > e.seq) continue;  // nonsense record
    std::uint64_t present = 0;
    for (const Seen& s : records) {
      if (s.rec.op == JOp::kSnapPut && s.rec.seq >= first && s.rec.seq < e.seq) {
        ++present;
      }
    }
    if (present == e.seq - first) {
      base_first = first;
      have_base = true;
      base_area = records[i].area;
      break;
    }
  }

  std::uint64_t max_seq = 0;
  for (const Seen& s : records) {
    const JournalRecord& r = s.rec;
    max_seq = std::max(max_seq, r.seq);
    if (have_base && r.seq < base_first) continue;
    ++stats_.mount_replayed;
    switch (r.op) {
      case JOp::kPut:
      case JOp::kSnapPut:
        index_[r.key] = Entry{r.zone, r.slot, r.value_slots, r.group, 0, r.seq};
        break;
      case JOp::kDelete:
        index_.erase(r.key);
        break;
      case JOp::kReset: {
        for (auto it = index_.begin(); it != index_.end();) {
          it = it->second.zone == r.zone ? index_.erase(it) : std::next(it);
        }
        break;
      }
      case JOp::kSnapEnd:
        break;
    }
  }
  next_seq_ = max_seq + 1;
  active_area_ = have_base ? base_area : 0;
  next_record_ = 0;  // Mount() writes a fresh snapshot into the other area.
  return Status::Ok();
}

Status ZoneCache::VerifyAndSeal(SimTime now) {
  // Deterministic order: sorted keys.
  std::vector<std::uint64_t> keys;
  keys.reserve(index_.size());
  for (const auto& [k, e] : index_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());

  std::vector<std::uint64_t> vtok;
  for (std::uint64_t k : keys) {
    const Entry e = index_[k];
    bool ok = e.zone >= first_data_zone_ && e.zone < num_zones_ &&
              e.value_slots >= 1 &&
              static_cast<std::uint64_t>(e.slot) + 1 + e.value_slots <= zone_slots_;
    if (ok) {
      auto rd = dev_->Read(IoRequest{
          ZoneBase(e.zone) + static_cast<std::uint64_t>(e.slot) * slot_,
          (1ull + e.value_slots) * slot_, now, {}, /*want_tokens=*/true,
          IoClass::kMaintenance});
      if (!rd.ok()) {
        ok = false;
      } else {
        const auto& t = rd.value().tokens;
        vtok.assign(t.begin() + 1, t.end());
        ok = t[0] == HeaderToken(k, e.value_slots, vtok);
      }
    }
    if (!ok) {
      index_.erase(k);
      ++stats_.mount_dropped;
    }
  }
  stats_.mount_entries = index_.size();

  // Rebuild per-zone state. Zones with live entries are sealed: probed
  // to their durable write pointer and padded to capacity so they stop
  // holding one of the device's active-zone slots; the cache never
  // appends into a recovered zone again (it has no other way to learn a
  // write pointer through StorageDevice). Entry-free zones are reset
  // into the free pool.
  for (const auto& [k, e] : index_) {
    DataZone& z = zones_[e.zone - first_data_zone_];
    z.state = ZoneState::kClosed;
    z.live_slots += 1 + e.value_slots;
    z.keys.emplace_back(k, e.slot);
  }
  free_zones_.clear();
  for (std::uint32_t zi = 0; zi < zones_.size(); ++zi) {
    DataZone& z = zones_[zi];
    const std::uint32_t zone = first_data_zone_ + zi;
    if (z.state == ZoneState::kClosed) {
      std::sort(z.keys.begin(), z.keys.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      // Probe the recovered write pointer (reads past it fail), then
      // pad to capacity.
      std::uint64_t lo = 0;
      for (const auto& [key, slotpos] : z.keys) {
        lo = std::max(lo, static_cast<std::uint64_t>(slotpos) + 1 +
                              index_[key].value_slots);
      }
      std::uint64_t hi = zone_slots_;
      while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo + 1) / 2;
        auto rd = dev_->Read(IoRequest{ZoneBase(zone) + (mid - 1) * slot_, slot_,
                                       now, {}, /*want_tokens=*/false,
                                       IoClass::kMaintenance});
        if (rd.ok()) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      if (lo < zone_slots_) {
        auto w = dev_->Write(IoRequest{ZoneBase(zone) + lo * slot_,
                                       (zone_slots_ - lo) * slot_, now, {},
                                       /*want_tokens=*/false, IoClass::kMaintenance});
        if (!w.ok()) return w.status();
      }
      z.wp_slots = static_cast<std::uint32_t>(zone_slots_);
    } else {
      auto r = dev_->ResetZone(ZoneId{zone}, now);
      if (!r.ok()) return r.status();
      z = DataZone{};
      free_zones_.push_back(zone);
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Journal runtime
// ---------------------------------------------------------------------------

Result<SimTime> ZoneCache::AppendRecord(const JournalRecord& r, SimTime now) {
  std::uint64_t enc[3];
  EncodeRecord(r, enc);
  auto w = dev_->Write(IoRequest{RecordOffset(areas_[active_area_], next_record_),
                                 3 * slot_, now, std::span<const std::uint64_t>(enc, 3),
                                 /*want_tokens=*/false, IoClass::kMaintenance});
  if (!w.ok()) return w.status();
  ++next_record_;
  ++stats_.journal_records;
  SimTime done = w.value().done;
  if (next_record_ == areas_[active_area_].records) {
    auto s = WriteSnapshot(1 - active_area_, now);
    if (!s.ok()) return s.status();
    done = Later(done, s.value());
    auto f = dev_->Flush(done);
    if (!f.ok()) return f.status();
    done = f.value();
  }
  return done;
}

Result<SimTime> ZoneCache::WriteSnapshot(std::uint32_t into_area, SimTime now) {
  JournalArea& area = areas_[into_area];
  SimTime done = now;
  for (std::uint32_t z : area.reset_zones) {
    auto r = dev_->ResetZone(ZoneId{z}, now);
    if (!r.ok()) return r.status();
    done = Later(done, r.value());
  }
  const std::uint64_t first = next_seq_;
  std::uint32_t idx = 0;
  std::uint64_t enc[3];
  for (std::uint32_t zi = 0; zi < zones_.size(); ++zi) {
    const DataZone& z = zones_[zi];
    const std::uint32_t zone = first_data_zone_ + zi;
    for (const auto& [key, slotpos] : z.keys) {
      auto it = index_.find(key);
      if (it == index_.end() || it->second.zone != zone ||
          it->second.slot != slotpos) {
        continue;  // superseded admission; the entry lives elsewhere now
      }
      const Entry& e = it->second;
      EncodeRecord(JournalRecord{JOp::kSnapPut, key, e.group, e.value_slots, e.zone,
                                 e.slot, next_seq_++},
                   enc);
      auto w = dev_->Write(IoRequest{RecordOffset(area, idx++), 3 * slot_, now,
                                     std::span<const std::uint64_t>(enc, 3),
                                     /*want_tokens=*/false, IoClass::kMaintenance});
      if (!w.ok()) return w.status();
      done = Later(done, w.value().done);
    }
  }
  EncodeRecord(JournalRecord{JOp::kSnapEnd, first, 0, 0, 0, 0, next_seq_++}, enc);
  auto w = dev_->Write(IoRequest{RecordOffset(area, idx++), 3 * slot_, now,
                                 std::span<const std::uint64_t>(enc, 3),
                                 /*want_tokens=*/false, IoClass::kMaintenance});
  if (!w.ok()) return w.status();
  done = Later(done, w.value().done);
  active_area_ = into_area;
  next_record_ = idx;
  ++stats_.journal_snapshots;
  return done;
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

Result<ZoneCache::GetResult> ZoneCache::Get(std::uint64_t key, SimTime now) {
  ++stats_.gets;
  auto it = index_.find(key);
  if (it == index_.end()) return GetResult{false, now, {}};
  Entry& e = it->second;
  auto rd = dev_->Read(IoRequest{
      ZoneBase(e.zone) + (static_cast<std::uint64_t>(e.slot) + 1) * slot_,
      static_cast<std::uint64_t>(e.value_slots) * slot_, now, {},
      /*want_tokens=*/true, IoClass::kHostForeground});
  if (!rd.ok()) return rd.status();
  ++stats_.hits;
  ++e.hits;
  return GetResult{true, rd.value().done, std::move(rd.value().tokens)};
}

Status ZoneCache::DropIndexEntry(std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return Status::Ok();
  zones_[it->second.zone - first_data_zone_].live_slots -=
      1 + it->second.value_slots;
  index_.erase(it);
  return Status::Ok();
}

Result<SimTime> ZoneCache::OpenZoneFor(std::uint32_t stream, SimTime now) {
  SimTime done = now;
  if (free_zones_.empty()) {
    auto ev = EvictOne(/*allow_migration=*/false, now);
    if (!ev.ok()) return ev.status();
    done = Later(done, ev.value());
  }
  if (free_zones_.empty()) {
    return Status::ResourceExhausted("no free zone for cache stream");
  }
  const std::uint32_t zone = free_zones_.front();
  free_zones_.erase(free_zones_.begin());
  DataZone& z = zones_[zone - first_data_zone_];
  z = DataZone{};
  z.state = ZoneState::kOpen;
  open_zone_[stream] = zone;
  return done;
}

Result<SimTime> ZoneCache::EvictOne(bool allow_migration, SimTime now) {
  // Victim: the closed zone with the fewest live slots (pure-garbage
  // zones first), lowest id on ties.
  std::uint32_t victim = kNoZone;
  std::uint32_t best_live = 0;
  for (std::uint32_t zi = 0; zi < zones_.size(); ++zi) {
    const DataZone& z = zones_[zi];
    if (z.state != ZoneState::kClosed) continue;
    if (victim == kNoZone || z.live_slots < best_live) {
      victim = first_data_zone_ + zi;
      best_live = z.live_slots;
    }
  }
  if (victim == kNoZone) {
    return Status::FailedPrecondition("no closed zone to evict");
  }
  DataZone& vz = zones_[victim - first_data_zone_];
  SimTime done = now;

  const bool migrate = allow_migration && !free_zones_.empty();
  std::vector<std::uint64_t> vtok;
  for (const auto& [key, slotpos] : vz.keys) {
    auto it = index_.find(key);
    if (it == index_.end() || it->second.zone != victim ||
        it->second.slot != slotpos) {
      continue;
    }
    Entry e = it->second;
    bool moved = false;
    if (migrate && e.hits >= opt_.migrate_min_hits) {
      // Read the live value out of the victim and re-admit it through
      // the internal migration stream, tagged kCacheMigration so device
      // stats attribute the rewrite to eviction, not to the host.
      auto rd = dev_->Read(IoRequest{
          ZoneBase(victim) + (static_cast<std::uint64_t>(e.slot) + 1) * slot_,
          static_cast<std::uint64_t>(e.value_slots) * slot_, now, {},
          /*want_tokens=*/true, IoClass::kCacheMigration});
      if (!rd.ok()) return rd.status();
      done = Later(done, rd.value().done);
      vtok = std::move(rd.value().tokens);

      const std::uint32_t need = 1 + e.value_slots;
      const std::uint32_t stream = opt_.num_groups;  // migration stream
      std::uint32_t tz = open_zone_[stream];
      if (tz != kNoZone &&
          zones_[tz - first_data_zone_].wp_slots + need > zone_slots_) {
        // Pad the full migration zone to capacity (releases its
        // active-zone slot) and close it.
        DataZone& oz = zones_[tz - first_data_zone_];
        if (oz.wp_slots < zone_slots_) {
          auto pw = dev_->Write(IoRequest{
              ZoneBase(tz) + oz.wp_slots * slot_,
              (zone_slots_ - oz.wp_slots) * slot_, now, {},
              /*want_tokens=*/false, IoClass::kCacheMigration});
          if (!pw.ok()) return pw.status();
          done = Later(done, pw.value().done);
          oz.wp_slots = static_cast<std::uint32_t>(zone_slots_);
        }
        oz.state = ZoneState::kClosed;
        open_zone_[stream] = kNoZone;
        tz = kNoZone;
      }
      if (tz == kNoZone && !free_zones_.empty()) {
        auto o = OpenZoneFor(stream, now);
        if (o.ok()) {
          tz = open_zone_[stream];
          done = Later(done, o.value());
        }
      }
      if (tz != kNoZone) {
        DataZone& oz = zones_[tz - first_data_zone_];
        std::vector<std::uint64_t> wtok;
        wtok.reserve(need);
        wtok.push_back(HeaderToken(key, e.value_slots, vtok));
        wtok.insert(wtok.end(), vtok.begin(), vtok.end());
        auto w = dev_->Write(IoRequest{
            ZoneBase(tz) + oz.wp_slots * slot_,
            static_cast<std::uint64_t>(need) * slot_, now,
            std::span<const std::uint64_t>(wtok), /*want_tokens=*/false,
            IoClass::kCacheMigration});
        if (!w.ok()) return w.status();
        done = Later(done, w.value().done);

        const std::uint32_t new_slot = oz.wp_slots;
        oz.wp_slots += need;
        oz.live_slots += need;
        oz.keys.emplace_back(key, new_slot);
        vz.live_slots -= need;
        const std::uint64_t seq = next_seq_++;
        // Migration ages the entry back to cold: it must re-earn a hit
        // to survive the next eviction.
        index_[key] = Entry{tz, new_slot, e.value_slots, e.group, 0, seq};
        auto j = AppendRecord(
            JournalRecord{JOp::kPut, key, e.group, e.value_slots, tz, new_slot, seq},
            now);
        if (!j.ok()) return j.status();
        done = Later(done, j.value());
        ++stats_.migrated_entries;
        stats_.migrated_slots += need;
        moved = true;
      }
    }
    if (!moved) {
      DropIndexEntry(key);
      ++stats_.dropped_entries;
    }
  }

  // Journal the reclaim, then reset on-device. A cut between the two
  // replays the reset record (index entries dropped) against a
  // not-yet-reset zone — Mount's entry-free-zone reset squares it.
  const std::uint64_t seq = next_seq_++;
  auto j = AppendRecord(JournalRecord{JOp::kReset, 0, 0, 0, victim, 0, seq}, now);
  if (!j.ok()) return j.status();
  done = Later(done, j.value());
  auto r = dev_->ResetZone(ZoneId{victim}, now);
  if (!r.ok()) return r.status();
  done = Later(done, r.value());

  vz = DataZone{};
  free_zones_.insert(
      std::lower_bound(free_zones_.begin(), free_zones_.end(), victim), victim);
  ++stats_.evictions;
  return done;
}

Result<SimTime> ZoneCache::Put(std::uint64_t key, std::uint32_t group,
                               std::span<const std::uint64_t> value_tokens,
                               SimTime now) {
  if (group >= opt_.num_groups) {
    return Status::InvalidArgument("put group out of range");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(value_tokens.size());
  const std::uint32_t need = 1 + n;
  if (n == 0 || n > 0xFFFu || need > zone_slots_) {
    return Status::InvalidArgument("value size unsupported");
  }
  SimTime done = now;

  // Index-capacity pressure: the journal snapshot must always fit one
  // area, so the index is bounded. Drop-evict (no migration — it would
  // not shrink the index) until a new key fits.
  const bool is_new = index_.find(key) == index_.end();
  if (is_new) {
    std::uint32_t guard = static_cast<std::uint32_t>(zones_.size()) + 1;
    while (index_.size() >= max_entries_ && guard-- > 0) {
      bool any_closed_live = false;
      for (const DataZone& z : zones_) {
        if (z.state == ZoneState::kClosed && z.live_slots > 0) {
          any_closed_live = true;
          break;
        }
      }
      if (!any_closed_live) {
        // All live entries sit in open zones; seal them so eviction can
        // reach them.
        for (std::uint32_t s = 0; s < open_zone_.size(); ++s) {
          const std::uint32_t oz = open_zone_[s];
          if (oz == kNoZone) continue;
          DataZone& z = zones_[oz - first_data_zone_];
          if (z.wp_slots < zone_slots_) {
            auto pw = dev_->Write(IoRequest{
                ZoneBase(oz) + z.wp_slots * slot_,
                (zone_slots_ - z.wp_slots) * slot_, now, {},
                /*want_tokens=*/false, IoClass::kMaintenance});
            if (!pw.ok()) return pw.status();
            done = Later(done, pw.value().done);
            z.wp_slots = static_cast<std::uint32_t>(zone_slots_);
          }
          z.state = ZoneState::kClosed;
          open_zone_[s] = kNoZone;
        }
      }
      auto ev = EvictOne(/*allow_migration=*/false, now);
      if (!ev.ok()) return ev.status();
      done = Later(done, ev.value());
    }
    if (index_.size() >= max_entries_) {
      return Status::ResourceExhausted("cache index full");
    }
  }

  // Keep the free pool at the reserve so eviction can always open a
  // migration target.
  std::uint32_t guard = static_cast<std::uint32_t>(zones_.size()) + 1;
  while (free_zones_.size() < opt_.reserve_free_zones && guard-- > 0) {
    auto ev = EvictOne(/*allow_migration=*/true, now);
    if (!ev.ok()) {
      if (ev.status().code() == StatusCode::kFailedPrecondition) {
        break;  // nothing closed yet — all zones open or free
      }
      return ev.status();
    }
    done = Later(done, ev.value());
  }

  // Admission: the group's open zone, rolled over when the entry does
  // not fit (the remainder is padded so the device zone goes FULL and
  // releases its active slot).
  std::uint32_t zone = open_zone_[group];
  if (zone != kNoZone &&
      zones_[zone - first_data_zone_].wp_slots + need > zone_slots_) {
    DataZone& z = zones_[zone - first_data_zone_];
    if (z.wp_slots < zone_slots_) {
      auto pw = dev_->Write(IoRequest{ZoneBase(zone) + z.wp_slots * slot_,
                                      (zone_slots_ - z.wp_slots) * slot_, now, {},
                                      /*want_tokens=*/false, IoClass::kMaintenance});
      if (!pw.ok()) return pw.status();
      done = Later(done, pw.value().done);
      z.wp_slots = static_cast<std::uint32_t>(zone_slots_);
    }
    z.state = ZoneState::kClosed;
    open_zone_[group] = kNoZone;
    zone = kNoZone;
  }
  if (zone == kNoZone) {
    auto o = OpenZoneFor(group, now);
    if (!o.ok()) return o.status();
    done = Later(done, o.value());
    zone = open_zone_[group];
  }

  DataZone& z = zones_[zone - first_data_zone_];
  std::vector<std::uint64_t> wtok;
  wtok.reserve(need);
  wtok.push_back(HeaderToken(key, n, value_tokens));
  wtok.insert(wtok.end(), value_tokens.begin(), value_tokens.end());
  auto w = dev_->Write(IoRequest{ZoneBase(zone) + z.wp_slots * slot_,
                                 static_cast<std::uint64_t>(need) * slot_, now,
                                 std::span<const std::uint64_t>(wtok),
                                 /*want_tokens=*/false, IoClass::kHostForeground});
  if (!w.ok()) return w.status();
  done = Later(done, w.value().done);

  const std::uint32_t new_slot = z.wp_slots;
  z.wp_slots += need;
  z.live_slots += need;
  z.keys.emplace_back(key, new_slot);
  if (z.wp_slots == zone_slots_) {
    z.state = ZoneState::kClosed;
    open_zone_[group] = kNoZone;
  }

  DropIndexEntry(key);  // overwrite: release the old location's slots
  const std::uint64_t seq = next_seq_++;
  index_[key] = Entry{zone, new_slot, n, group, 0, seq};
  auto j = AppendRecord(JournalRecord{JOp::kPut, key, group, n, zone, new_slot, seq},
                        now);
  if (!j.ok()) return j.status();
  done = Later(done, j.value());

  ++stats_.puts;
  stats_.admitted_slots += need;
  ++puts_since_sync_;
  if (puts_since_sync_ > opt_.sync_every_puts) {
    auto s = Sync(done);
    if (!s.ok()) return s.status();
    done = Later(done, s.value());
  }
  return done;
}

Result<SimTime> ZoneCache::Delete(std::uint64_t key, SimTime now) {
  ++stats_.deletes;
  if (index_.find(key) == index_.end()) return now;
  DropIndexEntry(key);
  const std::uint64_t seq = next_seq_++;
  auto j = AppendRecord(JournalRecord{JOp::kDelete, key, 0, 0, 0, 0, seq}, now);
  if (!j.ok()) return j.status();
  return j.value();
}

Result<SimTime> ZoneCache::Sync(SimTime now) {
  auto f = dev_->Flush(now);
  if (!f.ok()) return f.status();
  puts_since_sync_ = 0;
  ++stats_.syncs;
  return f.value();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::vector<ZoneCache::EntryView> ZoneCache::IndexSnapshot() const {
  std::vector<EntryView> out;
  out.reserve(index_.size());
  for (const auto& [k, e] : index_) {
    out.push_back(EntryView{k, e.zone, e.slot, e.value_slots, e.group, e.seq});
  }
  std::sort(out.begin(), out.end(),
            [](const EntryView& a, const EntryView& b) { return a.key < b.key; });
  return out;
}

std::uint64_t ZoneCache::LiveSlotsOfZone(std::uint32_t zone) const {
  if (zone < first_data_zone_ || zone >= num_zones_) return 0;
  return zones_[zone - first_data_zone_].live_slots;
}

bool ZoneCache::IsDataZone(std::uint32_t zone) const {
  return zone >= first_data_zone_ && zone < num_zones_;
}

std::uint32_t ZoneCache::num_data_zones() const {
  return num_zones_ - first_data_zone_;
}

std::uint32_t ZoneCache::free_data_zones() const {
  return static_cast<std::uint32_t>(free_zones_.size());
}

}  // namespace conzone
