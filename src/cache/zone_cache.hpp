// ZoneCache — a log-structured, zone-aware flash cache on the logical
// zoned address space (DESIGN.md §14).
//
// The cache layers on any StorageDevice (bare ConZone device,
// StripedVolume, RedundantVolume): an in-memory key→(zone,slot,len)
// index, admission into per-group open zones (group = hotness/stream
// class so co-placed entries expire together), and eviction by whole-
// zone reset — pick the closed zone with the fewest live slots, migrate
// entries that earned a hit to a dedicated migration stream, drop the
// rest, reset the zone. A persistent index journal (ping-pong snapshot
// epochs in the conventional zones, or two dedicated sequential zones
// when the device has none) lets Mount() rebuild the index after a
// power cut; every recovered entry is verified against media before it
// is trusted.
//
// Crash contract: a remounted cache may have lost recently acknowledged
// puts, reverted a key to an older acknowledged value, or resurrected a
// recently deleted key — it never serves wrong bytes. ZoneCacheFsck
// proves the structural half of that contract offline.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "core/storage_device.hpp"

namespace conzone {

struct ZoneCacheOptions {
  /// Host-visible placement groups (hotness/stream classes). Group g of
  /// a Put must be < num_groups; eviction migration uses one extra
  /// internal stream, so the cache keeps num_groups+1 zones open at
  /// peak — keep this under the device's open-zone budget.
  std::uint32_t num_groups = 2;
  /// Eviction triggers when the free-zone pool would drop below this.
  /// Must be >= 1 so a migration target zone can always be opened
  /// mid-eviction.
  std::uint32_t reserve_free_zones = 2;
  /// Entries with at least this many Get hits since admission are
  /// migrated on eviction; colder entries are dropped with the zone.
  std::uint32_t migrate_min_hits = 1;
  /// Journal + device flush cadence in Puts (0 = flush on every Put).
  /// Between flushes, acknowledged puts may be lost by a power cut —
  /// allowed by the crash contract.
  std::uint64_t sync_every_puts = 64;
};

struct ZoneCacheStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t admitted_slots = 0;   ///< Header+value slots written by puts.
  std::uint64_t evictions = 0;        ///< Zones reclaimed by reset.
  std::uint64_t migrated_entries = 0;
  std::uint64_t migrated_slots = 0;
  std::uint64_t dropped_entries = 0;  ///< Evicted without migration.
  std::uint64_t journal_records = 0;
  std::uint64_t journal_snapshots = 0;
  std::uint64_t syncs = 0;
  // Mount-side counters (set by the Mount() that created this cache).
  std::uint64_t mount_replayed = 0;   ///< Valid journal records replayed.
  std::uint64_t mount_entries = 0;    ///< Entries surviving media verify.
  std::uint64_t mount_dropped = 0;    ///< Replayed entries that failed verify.

  double HitRatio() const {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
  }
};

class ZoneCache {
 public:
  /// One cached object as the index sees it (introspection for fsck and
  /// tests; `slot` is the header slot, the value occupies
  /// [slot+1, slot+1+value_slots) of the same zone).
  struct EntryView {
    std::uint64_t key = 0;
    std::uint32_t zone = 0;
    std::uint32_t slot = 0;
    std::uint32_t value_slots = 0;
    std::uint32_t group = 0;
    std::uint64_t seq = 0;  ///< Journal seq of the admitting record.
  };

  struct GetResult {
    bool hit = false;
    SimTime done;
    std::vector<std::uint64_t> tokens;  ///< Value tokens on a hit.
  };

  /// Mount a cache on `dev`: replay the journal, verify every candidate
  /// entry against media (unverifiable entries are dropped, counted in
  /// stats().mount_dropped), seal recovered data zones, and reset
  /// entry-free ones into the free pool. On a fresh device this formats
  /// the journal and starts empty.
  static Result<std::unique_ptr<ZoneCache>> Mount(StorageDevice* dev,
                                                  const ZoneCacheOptions& options,
                                                  SimTime now);

  /// Look `key` up; on a hit reads the value pages and returns their
  /// tokens. A miss is not an error (hit=false).
  Result<GetResult> Get(std::uint64_t key, SimTime now);

  /// Admit (or overwrite) `key` with one token per 4 KiB value page
  /// into placement group `group`. May evict (reset) a zone to make
  /// room. Returns the completion time of the slowest I/O issued.
  Result<SimTime> Put(std::uint64_t key, std::uint32_t group,
                      std::span<const std::uint64_t> value_tokens, SimTime now);

  /// Drop `key` if present (journaled, so the drop survives remount).
  Result<SimTime> Delete(std::uint64_t key, SimTime now);

  /// Flush the journal and device write buffers; after Sync returns,
  /// every acknowledged put is remount-durable.
  Result<SimTime> Sync(SimTime now);

  const ZoneCacheStats& stats() const { return stats_; }

  // --- Introspection (fsck, tests) ---
  /// Index snapshot sorted by key — deterministic for fingerprinting.
  std::vector<EntryView> IndexSnapshot() const;
  std::uint64_t LiveSlotsOfZone(std::uint32_t zone) const;
  bool IsDataZone(std::uint32_t zone) const;
  std::uint64_t entries() const { return index_.size(); }
  std::uint64_t max_entries() const { return max_entries_; }
  std::uint32_t num_data_zones() const;
  std::uint32_t free_data_zones() const;
  std::uint64_t slot_bytes() const { return slot_; }
  std::uint64_t zone_slots() const { return zone_slots_; }
  StorageDevice* device() const { return dev_; }

  /// Expected header-page token for an entry: what Put programs and
  /// what mount/fsck recompute from the value pages read off media.
  static std::uint64_t HeaderToken(std::uint64_t key, std::uint32_t value_slots,
                                   std::span<const std::uint64_t> value_tokens);

 private:
  struct Entry {
    std::uint32_t zone = 0;
    std::uint32_t slot = 0;
    std::uint32_t value_slots = 0;
    std::uint32_t group = 0;
    std::uint32_t hits = 0;
    std::uint64_t seq = 0;
  };

  enum class ZoneState : std::uint8_t { kFree, kOpen, kClosed };

  struct DataZone {
    ZoneState state = ZoneState::kFree;
    std::uint32_t wp_slots = 0;
    std::uint32_t live_slots = 0;
    /// Admission log ((key, header slot) per entry written here since
    /// the last reset); stale keys are filtered against the index when
    /// read.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> keys;
  };

  /// One journal half (ping-pong area): a run of whole zones (or half a
  /// zone when only one conventional zone exists). Records never
  /// straddle a zone boundary.
  struct JournalArea {
    /// (byte base, record capacity) extents, written in order.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> extents;
    std::uint32_t records = 0;  ///< Total capacity.
    /// Zones to reset before reuse (sequential-journal mode only).
    std::vector<std::uint32_t> reset_zones;
  };

  enum class JOp : std::uint8_t {
    kPut = 1,      ///< key admitted/overwritten at (zone,slot,len)
    kDelete = 2,   ///< key dropped
    kReset = 3,    ///< zone reclaimed: drop every entry still in it
    kSnapPut = 4,  ///< snapshot copy of a live entry
    kSnapEnd = 5,  ///< snapshot complete; t0 = seq of its first record
  };

  struct JournalRecord {
    JOp op = JOp::kPut;
    std::uint64_t key = 0;      // kReset: unused; kSnapEnd: first snap seq
    std::uint32_t group = 0;
    std::uint32_t value_slots = 0;
    std::uint32_t zone = 0;
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
  };

  ZoneCache(StorageDevice* dev, const ZoneCacheOptions& options);

  Status Init(SimTime now);                // geometry + journal layout
  Status Replay(SimTime now);              // journal → candidate index
  Status VerifyAndSeal(SimTime now);       // media verify + zone sealing

  // Journal plumbing.
  static void EncodeRecord(const JournalRecord& r, std::uint64_t out[3]);
  static bool DecodeRecord(const std::uint64_t in[3], JournalRecord* r);
  std::uint64_t RecordOffset(const JournalArea& a, std::uint32_t idx) const;
  Result<SimTime> AppendRecord(const JournalRecord& r, SimTime now);
  Result<SimTime> WriteSnapshot(std::uint32_t into_area, SimTime now);

  // Data-path helpers.
  Result<SimTime> EvictOne(bool allow_migration, SimTime now);
  Result<SimTime> OpenZoneFor(std::uint32_t stream, SimTime now);
  Status DropIndexEntry(std::uint64_t key);  // live-count bookkeeping
  std::uint64_t ZoneBase(std::uint32_t zone) const {
    return static_cast<std::uint64_t>(zone) * zone_bytes_;
  }

  StorageDevice* dev_;
  ZoneCacheOptions opt_;

  // Geometry.
  std::uint64_t slot_ = 4096;
  std::uint64_t zone_bytes_ = 0;
  std::uint64_t zone_slots_ = 0;
  std::uint32_t num_zones_ = 0;
  std::uint32_t first_data_zone_ = 0;
  bool sequential_journal_ = false;

  JournalArea areas_[2];
  std::uint32_t active_area_ = 0;
  std::uint32_t next_record_ = 0;  ///< Next record index in active area.
  std::uint64_t next_seq_ = 1;
  std::uint64_t max_entries_ = 0;
  std::uint64_t puts_since_sync_ = 0;

  std::unordered_map<std::uint64_t, Entry> index_;
  /// Data zones, indexed by `zone - first_data_zone_`.
  std::vector<DataZone> zones_;
  /// Free pool kept sorted ascending; allocation takes the lowest id so
  /// placement is deterministic.
  std::vector<std::uint32_t> free_zones_;
  /// Open zone per stream (groups 0..num_groups-1, migration stream at
  /// index num_groups); UINT32_MAX = none open.
  std::vector<std::uint32_t> open_zone_;

  ZoneCacheStats stats_;
};

}  // namespace conzone
