// FEMU-model baseline (paper §II-C, §IV-B).
//
// FEMU emulates a ZNS SSD inside a QEMU/KVM guest. The paper uses it to
// show why virtualization-based emulators cannot model consumer-grade
// zoned storage; this device reproduces FEMU's *behavioral profile*
// rather than its implementation:
//
//   - no channel-bandwidth model: data transfer over the flash bus is
//     free, so sequential writes come out slightly faster than the real
//     device (§IV-B);
//   - no FTL, L2P cache, or heterogeneous media in ZNS mode (Table I):
//     zones map directly onto flash, every read costs one uniform
//     multi-level-cell page sense;
//   - KVM host/guest switching injects tens of microseconds of latency
//     fluctuation on every I/O, which swamps flash-read-scale latencies
//     and makes low-latency (SLC) media impossible to emulate.
//
// It still keeps per-zone write buffers (Table I: FEMU supports write
// buffers) and honors ZNS write-pointer semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/storage_device.hpp"
#include "flash/geometry.hpp"
#include "flash/timing.hpp"
#include "flash/timing_engine.hpp"
#include "zns/zone.hpp"

namespace conzone {

struct FemuConfig {
  FlashGeometry geometry;
  TimingConfig timing;  ///< channel_bandwidth is forced to 0 (unmodeled).
  std::uint32_t max_open_zones = 6;
  std::uint32_t max_active_zones = 12;
  /// KVM exit latency fluctuation, uniform in [min, max], per request.
  SimDuration kvm_jitter_min = SimDuration::Micros(20);
  SimDuration kvm_jitter_max = SimDuration::Micros(80);
  /// Virtio/NVMe-over-QEMU software stack overhead per request.
  SimDuration request_overhead = SimDuration::Micros(25);
  std::uint64_t seed = 42;

  Status Validate() const;
};

struct FemuStats {
  std::uint64_t host_bytes_written = 0;
  std::uint64_t host_bytes_read = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t superpage_programs = 0;
};

class FemuModelDevice final : public StorageDevice {
 public:
  static Result<std::unique_ptr<FemuModelDevice>> Create(const FemuConfig& config);

  DeviceInfo info() const override;
  Result<IoResult> Write(const IoRequest& req) override;
  Result<IoResult> Read(const IoRequest& req) override;
  Result<SimTime> ResetZone(ZoneId zone, SimTime now) override;
  Result<SimTime> Flush(SimTime now) override;
  StatsSnapshot Stats() const override;

  const FemuStats& stats() const { return stats_; }
  const FemuConfig& config() const { return cfg_; }

 private:
  explicit FemuModelDevice(const FemuConfig& config);

  /// The pre-IoRequest write/read bodies; the virtual overrides unpack
  /// the request and delegate here.
  Result<SimTime> WriteImpl(std::uint64_t offset, std::uint64_t len, SimTime now,
                            std::span<const std::uint64_t> tokens);
  Result<SimTime> ReadImpl(std::uint64_t offset, std::uint64_t len, SimTime now,
                           std::vector<std::uint64_t>* tokens_out);

  SimDuration Jitter();
  std::uint64_t zone_bytes() const { return zone_bytes_; }

  FemuConfig cfg_;
  std::uint64_t zone_bytes_;
  std::uint32_t num_zones_;
  FlashTimingEngine engine_;
  ZoneManager zones_;
  Rng rng_;
  std::vector<std::uint64_t> tokens_;    ///< Flat per-LPN payload store.
  std::vector<std::uint64_t> buffered_;  ///< Per-zone bytes not yet programmed.
  std::vector<SimTime> buffer_ready_;    ///< Per-zone flush completion.
  FemuStats stats_;
  /// Successful reads/writes bucketed by IoRequest::io_class.
  std::array<std::uint64_t, kNumIoClasses> class_reads_{};
  std::array<std::uint64_t, kNumIoClasses> class_writes_{};
};

}  // namespace conzone
