#include "femu/femu_device.hpp"

#include <string>

namespace conzone {

Status FemuConfig::Validate() const {
  if (Status st = geometry.Validate(); !st.ok()) return st;
  if (kvm_jitter_max < kvm_jitter_min) {
    return Status::InvalidArgument("femu: jitter max below min");
  }
  if (max_open_zones == 0 || max_active_zones < max_open_zones) {
    return Status::InvalidArgument("femu: bad zone limits");
  }
  return Status::Ok();
}

Result<std::unique_ptr<FemuModelDevice>> FemuModelDevice::Create(
    const FemuConfig& config) {
  if (Status st = config.Validate(); !st.ok()) return st;
  return std::unique_ptr<FemuModelDevice>(new FemuModelDevice(config));
}

FemuModelDevice::FemuModelDevice(const FemuConfig& config)
    : cfg_([&] {
        FemuConfig c = config;
        // FEMU does not model the flash-bus bandwidth (§IV-B).
        c.timing.channel_bandwidth_bps = 0;
        return c;
      }()),
      zone_bytes_(cfg_.geometry.NormalSuperblockBytes()),
      num_zones_(cfg_.geometry.NumNormalSuperblocks()),
      engine_(cfg_.geometry, cfg_.timing),
      zones_(ZoneLimitsConfig{zone_bytes_, zone_bytes_, num_zones_, cfg_.max_open_zones,
                              cfg_.max_active_zones}),
      rng_(cfg_.seed) {
  tokens_.resize(static_cast<std::size_t>(zone_bytes_ / cfg_.geometry.slot_size) *
                 num_zones_);
  buffered_.resize(num_zones_, 0);
  buffer_ready_.resize(num_zones_, SimTime::Zero());
}

DeviceInfo FemuModelDevice::info() const {
  DeviceInfo di;
  di.name = "FEMU";
  di.capacity_bytes = zone_bytes_ * num_zones_;
  di.zone_size_bytes = zone_bytes_;
  di.num_zones = num_zones_;
  di.max_open_zones = cfg_.max_open_zones;
  di.max_active_zones = cfg_.max_active_zones;
  di.io_alignment = cfg_.geometry.slot_size;
  return di;
}

Result<IoResult> FemuModelDevice::Write(const IoRequest& req) {
  auto done = WriteImpl(req.offset, req.len, req.now, req.tokens);
  if (!done.ok()) return done.status();
  ++class_writes_[static_cast<std::size_t>(req.io_class)];
  return IoResult{done.value(), {}};
}

Result<IoResult> FemuModelDevice::Read(const IoRequest& req) {
  IoResult res;
  auto done =
      ReadImpl(req.offset, req.len, req.now, req.want_tokens ? &res.tokens : nullptr);
  if (!done.ok()) return done.status();
  ++class_reads_[static_cast<std::size_t>(req.io_class)];
  res.done = done.value();
  return res;
}

StatsSnapshot FemuModelDevice::Stats() const {
  StatsSnapshot s;
  s.host_bytes_written = stats_.host_bytes_written;
  s.host_bytes_read = stats_.host_bytes_read;
  // FEMU's behavioral model has no media-byte accounting beyond whole
  // superpage programs; charge them at superpage granularity.
  s.flash_bytes_written = stats_.superpage_programs * cfg_.geometry.SuperpageBytes();
  s.writes = stats_.writes;
  s.reads = stats_.reads;
  s.class_reads = class_reads_;
  s.class_writes = class_writes_;
  return s;
}

SimDuration FemuModelDevice::Jitter() {
  const std::uint64_t lo = cfg_.kvm_jitter_min.ns();
  const std::uint64_t hi = cfg_.kvm_jitter_max.ns();
  return SimDuration::Nanos(rng_.NextInRange(lo, hi));
}

Result<SimTime> FemuModelDevice::WriteImpl(std::uint64_t offset, std::uint64_t len,
                                       SimTime now,
                                       std::span<const std::uint64_t> tokens) {
  const std::uint64_t slot = cfg_.geometry.slot_size;
  if (offset % slot != 0 || len % slot != 0 || len == 0) {
    return Status::InvalidArgument("write must be aligned and non-empty");
  }
  const ZoneId zone{offset / zone_bytes_};
  if (zone.value() >= num_zones_) return Status::OutOfRange("write beyond capacity");
  const std::uint64_t off_in_zone = offset % zone_bytes_;
  if (off_in_zone + len > zone_bytes_) {
    return Status::InvalidArgument("write crosses a zone boundary");
  }
  if (!tokens.empty() && tokens.size() != len / slot) {
    return Status::InvalidArgument("token count mismatch");
  }
  if (Status st = zones_.BeginWrite(zone, off_in_zone, len); !st.ok()) return st;

  ++stats_.writes;
  stats_.host_bytes_written += len;
  for (std::uint64_t i = 0; i < len / slot; ++i) {
    const std::uint64_t lpn = offset / slot + i;
    tokens_[static_cast<std::size_t>(lpn)] =
        tokens.empty() ? (0xFE40ull << 32 | lpn) : tokens[i];
  }

  // QEMU stack + KVM exit, then wait for any in-flight flush of this
  // zone's buffer.
  SimTime t = now + cfg_.request_overhead + Jitter();
  t = Later(t, buffer_ready_[static_cast<std::size_t>(zone.value())]);

  // Program a superpage (all chips in parallel, no bus transfer cost)
  // every time the accumulated data covers one.
  std::uint64_t& pending = buffered_[static_cast<std::size_t>(zone.value())];
  pending += len;
  const std::uint64_t superpage = cfg_.geometry.SuperpageBytes();
  while (pending >= superpage) {
    SimTime prog_done = t;
    for (std::uint32_t c = 0; c < cfg_.geometry.NumChips(); ++c) {
      prog_done = Later(prog_done, engine_.Program(ChipId{c}, cfg_.geometry.normal_cell,
                                                   cfg_.geometry.program_unit, t)
                                       .end);
    }
    buffer_ready_[static_cast<std::size_t>(zone.value())] = prog_done;
    pending -= superpage;
    ++stats_.superpage_programs;
    if (pending >= superpage) t = prog_done;  // back-to-back programs serialize
  }
  return t;
}

Result<SimTime> FemuModelDevice::ReadImpl(std::uint64_t offset, std::uint64_t len,
                                      SimTime now,
                                      std::vector<std::uint64_t>* tokens_out) {
  const FlashGeometry& geo = cfg_.geometry;
  const std::uint64_t slot = geo.slot_size;
  if (offset % slot != 0 || len % slot != 0 || len == 0) {
    return Status::InvalidArgument("read must be aligned and non-empty");
  }
  if (offset + len > info().capacity_bytes) {
    return Status::OutOfRange("read beyond capacity");
  }
  // Validate against write pointers zone by zone.
  std::uint64_t off = offset;
  while (off < offset + len) {
    const ZoneId zone{off / zone_bytes_};
    const std::uint64_t in_zone = off % zone_bytes_;
    const std::uint64_t n = std::min(len - (off - offset), zone_bytes_ - in_zone);
    if (Status st = zones_.CheckRead(zone, in_zone, n); !st.ok()) return st;
    off += n;
  }

  ++stats_.reads;
  stats_.host_bytes_read += len;
  if (tokens_out) {
    for (std::uint64_t i = 0; i < len / slot; ++i) {
      tokens_out->push_back(tokens_[static_cast<std::size_t>(offset / slot + i)]);
    }
  }

  const SimTime t0 = now + cfg_.request_overhead + Jitter();
  // One uniform multi-level-cell sense per flash page. FEMU's QEMU I/O
  // thread walks the pages of a request serially and every page-sized
  // DMA crosses the host/guest boundary, so each sense picks up its own
  // KVM-exit jitter — this is exactly why §IV-B finds FEMU unable to
  // emulate latencies in the tens of microseconds.
  SimTime done = t0;
  const std::uint64_t first_page = offset / geo.page_size;
  const std::uint64_t last_page = (offset + len - 1) / geo.page_size;
  for (std::uint64_t p = first_page; p <= last_page; ++p) {
    const std::uint64_t unit = p * geo.page_size % zone_bytes_ / geo.program_unit;
    const ChipId chip{unit % geo.NumChips()};
    done = engine_.ReadPage(chip, geo.normal_cell, geo.page_size, done) + Jitter();
  }
  return done;
}

Result<SimTime> FemuModelDevice::ResetZone(ZoneId zone, SimTime now) {
  if (!zone.valid() || zone.value() >= num_zones_) {
    return Status::OutOfRange("reset of invalid zone");
  }
  if (Status st = zones_.Reset(zone); !st.ok()) return st;
  buffered_[static_cast<std::size_t>(zone.value())] = 0;
  SimTime done = now + cfg_.request_overhead + Jitter();
  for (std::uint32_t c = 0; c < cfg_.geometry.NumChips(); ++c) {
    done = Later(done, engine_.Erase(ChipId{c}, cfg_.geometry.normal_cell,
                                     now + cfg_.request_overhead));
  }
  return done;
}

Result<SimTime> FemuModelDevice::Flush(SimTime now) {
  // Partial buffers program a (padded) superpage.
  SimTime done = now;
  for (std::uint32_t z = 0; z < num_zones_; ++z) {
    if (buffered_[z] == 0) continue;
    SimTime t = Later(now, buffer_ready_[z]);
    for (std::uint32_t c = 0; c < cfg_.geometry.NumChips(); ++c) {
      t = Later(t, engine_.Program(ChipId{c}, cfg_.geometry.normal_cell,
                                   cfg_.geometry.program_unit,
                                   Later(now, buffer_ready_[z]))
                       .end);
    }
    buffered_[z] = 0;
    buffer_ready_[z] = t;
    ++stats_.superpage_programs;
    done = Later(done, t);
  }
  return done;
}

}  // namespace conzone
