// Small-buffer-optimized, move-only callable — the event queue's
// callback type.
//
// `std::function` pays a heap allocation for any callable larger than
// its tiny internal buffer and drags in copy semantics the simulator
// never uses. Every hot-path event in this codebase is a lambda of a
// couple of pointers, so `InlineFunction` stores callables up to
// `InlineBytes` directly inside the object (no allocation, no pointer
// chase) and only falls back to the heap for oversized captures. It is
// move-only: events are scheduled once, moved into the queue's slot
// pool, and invoked once.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace conzone {

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::table;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::table;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept {
    if (other.ops_) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      if (other.ops_) {
        other.ops_->relocate(buf_, other.buf_);
        ops_ = std::exchange(other.ops_, nullptr);
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-construct the stored callable into `dst` and destroy the
    /// source — the queue relocates events between slots this way.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct InlineOps {
    static R Invoke(void* p, Args&&... args) {
      return (*std::launder(reinterpret_cast<Fn*>(p)))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      Fn* s = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void Destroy(void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }
    static constexpr Ops table{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Get(void* p) { return *std::launder(reinterpret_cast<Fn**>(p)); }
    static R Invoke(void* p, Args&&... args) {
      return (*Get(p))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) {
      ::new (dst) Fn*(Get(src));
    }
    static void Destroy(void* p) { delete Get(p); }
    static constexpr Ops table{&Invoke, &Relocate, &Destroy};
  };

  void Reset() {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace conzone
