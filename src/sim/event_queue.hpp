// Discrete-event queue.
//
// Drives the multi-job workload runner: each simulated job is a chain of
// events ("issue next request at time t"). Events at equal timestamps run
// in FIFO order of scheduling, which keeps runs deterministic.
//
// Hot-path layout: callbacks live in a recycling slot pool of
// small-buffer-optimized `InlineFunction`s, and the heap orders 24-byte
// {when, seq, slot} entries in a flat vector. On the steady-state path
// (schedule/run/schedule...) nothing allocates: slots are recycled
// through a free list and the heap/pool vectors only grow to the
// high-water mark of simultaneously pending events.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/inline_function.hpp"

namespace conzone {

class EventQueue {
 public:
  using Callback = InlineFunction<void(SimTime), 48>;

  /// What Schedule does when asked for a time earlier than `now()` —
  /// which the API forbids (an event cannot run in the simulated past).
  enum class PastPolicy : std::uint8_t {
    kClampToNow,  ///< Run the event at now(); count it in clamped_schedules().
    kAbort,       ///< Treat as a fatal logic error (all build types).
  };

  /// Schedule `cb` to run at simulated time `t`. `t` may not be earlier
  /// than the current time of the queue; violations are resolved by the
  /// configured PastPolicy (default: clamp to now()).
  void Schedule(SimTime t, Callback cb);

  /// Pop and run the earliest event. Returns false if the queue is empty.
  bool RunNext();

  /// Run events until the queue drains or `deadline` is passed.
  void RunUntil(SimTime deadline);

  /// Drain the queue completely.
  void RunAll();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the most recently executed event.
  SimTime now() const { return now_; }

  /// Total events executed so far (wall-clock benchmarking: events/s).
  std::uint64_t executed() const { return executed_; }

  void set_past_policy(PastPolicy p) { past_policy_ = p; }
  PastPolicy past_policy() const { return past_policy_; }
  /// Schedules whose timestamp was clamped forward to now().
  std::uint64_t clamped_schedules() const { return clamped_schedules_; }

 private:
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;   // tie-break: FIFO among equal timestamps
    std::uint32_t slot;  // index into the callback pool
  };

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  std::vector<HeapEntry> heap_;       // binary min-heap over (when, seq)
  std::vector<Callback> pool_;        // slot storage, recycled via free_slots_
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t clamped_schedules_ = 0;
  SimTime now_;
  PastPolicy past_policy_ = PastPolicy::kClampToNow;
};

}  // namespace conzone
