// Discrete-event queue.
//
// Drives the multi-job workload runner: each simulated job is a chain of
// events ("issue next request at time t"). Events at equal timestamps run
// in FIFO order of scheduling, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace conzone {

class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedule `cb` to run at simulated time `t`. `t` may not be earlier
  /// than the current time of the queue.
  void Schedule(SimTime t, Callback cb);

  /// Pop and run the earliest event. Returns false if the queue is empty.
  bool RunNext();

  /// Run events until the queue drains or `deadline` is passed.
  void RunUntil(SimTime deadline);

  /// Drain the queue completely.
  void RunAll();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Timestamp of the most recently executed event.
  SimTime now() const { return now_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime now_;
};

}  // namespace conzone
