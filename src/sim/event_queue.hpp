// Discrete-event queue.
//
// Drives the multi-job workload runner: each simulated job is a chain of
// events ("issue next request at time t"). Events at equal timestamps run
// in FIFO order of scheduling, which keeps runs deterministic.
//
// Two interchangeable backends sit behind one API:
//
//   kBinaryHeap — a flat-vector binary min-heap over 24-byte
//   {when, seq, slot} entries. O(log n) schedule/pop. The original
//   backend, kept as the reference implementation the property tests
//   cross-check against.
//
//   kTimingWheel — a hierarchical timing wheel: kLevels levels of
//   kSlots slots each, level l covering an aligned 2^(kSlotBits*(l+1)) ns
//   window around the wheel cursor, plus an overflow min-heap for events
//   beyond the top level's horizon (~4.3 s). Schedule and pop are O(1)
//   amortized for the near-future horizon where virtually all simulator
//   events live (inter-event gaps are micro- to milliseconds). Event
//   execution order is bit-identical to the heap backend — including the
//   FIFO tie-break among equal timestamps — which the property tests in
//   tests/property_test.cpp verify over randomized schedules.
//
// Hot-path layout (both backends): callbacks live in a recycling slot
// pool of small-buffer-optimized `InlineFunction`s; wheel nodes, heap
// entries and the expiry batch are recycled flat vectors. On the
// steady-state path (schedule/run/schedule...) nothing allocates: the
// containers only grow to the high-water mark of simultaneously pending
// events.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/inline_function.hpp"

namespace conzone {

class EventQueue {
 public:
  using Callback = InlineFunction<void(SimTime), 48>;

  enum class Backend : std::uint8_t {
    kBinaryHeap,   ///< Reference O(log n) implementation.
    kTimingWheel,  ///< O(1) near-horizon schedule/pop (the default).
  };

  /// What Schedule does when asked for a time earlier than `now()` —
  /// which the API forbids (an event cannot run in the simulated past).
  enum class PastPolicy : std::uint8_t {
    kClampToNow,  ///< Run the event at now(); count it in clamped_schedules().
    kAbort,       ///< Treat as a fatal logic error (all build types).
  };

  explicit EventQueue(Backend backend = Backend::kTimingWheel);

  /// Schedule `cb` to run at simulated time `t`. `t` may not be earlier
  /// than the current time of the queue; violations are resolved by the
  /// configured PastPolicy (default: clamp to now()).
  void Schedule(SimTime t, Callback cb);

  /// Pop and run the earliest event. Returns false if the queue is empty.
  bool RunNext();

  /// Run events until the queue drains or `deadline` is passed. Events
  /// scheduled exactly at `deadline` run.
  void RunUntil(SimTime deadline);

  /// Drain the queue completely.
  void RunAll();

  bool empty() const { return pending_ == 0; }
  std::size_t size() const { return pending_; }

  /// Timestamp of the most recently executed event.
  SimTime now() const { return now_; }

  /// Total events executed so far (wall-clock benchmarking: events/s).
  std::uint64_t executed() const { return executed_; }

  Backend backend() const { return backend_; }
  void set_past_policy(PastPolicy p) { past_policy_ = p; }
  PastPolicy past_policy() const { return past_policy_; }
  /// Schedules whose timestamp was clamped forward to now().
  std::uint64_t clamped_schedules() const { return clamped_schedules_; }

 private:
  // --- Timing-wheel geometry ---
  static constexpr std::size_t kSlotBits = 8;
  static constexpr std::size_t kSlots = 1 << kSlotBits;  // 256 slots per level
  static constexpr std::size_t kLevels = 4;              // horizon 2^32 ns
  static constexpr std::uint64_t kHorizonNs = 1ull << (kSlotBits * kLevels);
  static constexpr std::uint32_t kNil = ~0u;

  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;   // tie-break: FIFO among equal timestamps
    std::uint32_t slot;  // index into the callback pool
  };

  /// Intrusive singly-linked node of one pending wheel event.
  struct WheelNode {
    std::uint64_t when_ns;
    std::uint64_t seq;
    std::uint32_t cb;    // index into the callback pool
    std::uint32_t next;  // next node in the slot list, kNil at tail
  };

  struct SlotList {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  /// One expiring event: all entries of a batch share `batch_when_`.
  struct BatchEntry {
    std::uint64_t seq;
    std::uint32_t cb;
  };

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  static void SiftUp(std::vector<HeapEntry>& heap, std::size_t i);
  static void SiftDown(std::vector<HeapEntry>& heap, std::size_t i);

  std::uint32_t AcquireCallbackSlot(Callback cb);
  void RunCallback(std::uint32_t cb_slot, SimTime when);

  // --- Wheel internals ---
  std::uint32_t AcquireNode(std::uint64_t when_ns, std::uint64_t seq, std::uint32_t cb);
  void PushSlot(std::size_t level, std::size_t slot, std::uint32_t node);
  /// Place one pending event at the level its distance from the wheel
  /// cursor dictates, or in the overflow heap past the horizon.
  void InsertEvent(std::uint64_t when_ns, std::uint64_t seq, std::uint32_t cb);
  /// Pull overflow events whose aligned top-level window the cursor has
  /// reached down into the wheel.
  void PromoteOverflow();
  /// Re-anchor the wheel at an earlier cursor (only reachable when a
  /// RunUntil peek advanced the cursor past `t` without executing; rare).
  void Resync(std::uint64_t t_ns);
  /// Advance the cursor to the next pending event and stage its
  /// timestamp's events into the sorted expiry batch. False = empty.
  bool WheelAdvance();
  /// Timestamp of the next pending event without executing anything
  /// user-visible (may advance the wheel cursor). False = queue empty.
  bool PeekNextTime(SimTime* out);
  /// Lowest occupied slot index >= `from` at `level`, or kSlots if none.
  std::size_t NextOccupied(std::size_t level, std::size_t from) const;

  // --- Shared state ---
  std::vector<Callback> pool_;  // slot storage, recycled via free_slots_
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t clamped_schedules_ = 0;
  std::size_t pending_ = 0;
  SimTime now_;
  PastPolicy past_policy_ = PastPolicy::kClampToNow;
  Backend backend_;

  // --- Binary-heap backend ---
  std::vector<HeapEntry> heap_;  // binary min-heap over (when, seq)

  // --- Timing-wheel backend ---
  std::uint64_t wheel_time_ns_ = 0;  ///< Cursor: <= every pending `when`.
  std::array<std::array<SlotList, kSlots>, kLevels> slots_{};
  std::array<std::array<std::uint64_t, kSlots / 64>, kLevels> occupied_{};
  std::vector<WheelNode> nodes_;
  std::vector<std::uint32_t> free_nodes_;
  std::vector<HeapEntry> overflow_;  // min-heap for events past the horizon
  /// Events expiring at batch_when_, sorted by seq; batch_pos_ consumed.
  std::vector<BatchEntry> batch_;
  std::size_t batch_pos_ = 0;
  std::uint64_t batch_when_ns_ = 0;
};

}  // namespace conzone
