// Busy-until resource timelines.
//
// Every contended hardware unit in the emulator — a flash die, a channel
// bus, the host interface — is modeled as a `ResourceTimeline`: a single
// server that executes reservations back-to-back in arrival order. A
// reservation made at `earliest` starts at max(earliest, busy_until) and
// occupies the resource for its duration. This is the same scheduling
// model NVMeVirt/FEMU use for their delay emulation, reproduced here in
// simulated time.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace conzone {

class ResourceTimeline {
 public:
  struct Reservation {
    SimTime start;
    SimTime end;
  };

  /// Reserve the resource for `dur` no earlier than `earliest`.
  Reservation Reserve(SimTime earliest, SimDuration dur) {
    const SimTime start = Later(earliest, busy_until_);
    const SimTime end = start + dur;
    busy_until_ = end;
    busy_time_ += dur;
    ++reservations_;
    return {start, end};
  }

  /// When the resource next becomes idle.
  SimTime busy_until() const { return busy_until_; }

  /// Total time the resource has been occupied (utilization numerator).
  SimDuration busy_time() const { return busy_time_; }
  std::uint64_t reservations() const { return reservations_; }

  void Reset() {
    busy_until_ = SimTime::Zero();
    busy_time_ = SimDuration();
    reservations_ = 0;
  }

 private:
  SimTime busy_until_;
  SimDuration busy_time_;
  std::uint64_t reservations_ = 0;
};

}  // namespace conzone
