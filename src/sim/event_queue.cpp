#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace conzone {

EventQueue::EventQueue(Backend backend) : backend_(backend) {}

// --- Heap primitives (used by heap_ and by the wheel's overflow_) ---

void EventQueue::SiftUp(std::vector<HeapEntry>& heap, std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Earlier(heap[i], heap[parent])) break;
    std::swap(heap[i], heap[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(std::vector<HeapEntry>& heap, std::size_t i) {
  const std::size_t n = heap.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    std::size_t best = (r < n && Earlier(heap[r], heap[l])) ? r : l;
    if (!Earlier(heap[best], heap[i])) break;
    std::swap(heap[i], heap[best]);
    i = best;
  }
}

// --- Callback pool ---

std::uint32_t EventQueue::AcquireCallbackSlot(Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    pool_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(std::move(cb));
  }
  return slot;
}

void EventQueue::RunCallback(std::uint32_t cb_slot, SimTime when) {
  // Move the callback out of its slot and recycle the slot *before*
  // running: the callback may schedule new events.
  Callback cb = std::move(pool_[cb_slot]);
  free_slots_.push_back(cb_slot);
  now_ = when;
  ++executed_;
  --pending_;
  cb(now_);
}

// --- Wheel node pool / slot lists ---

std::uint32_t EventQueue::AcquireNode(std::uint64_t when_ns, std::uint64_t seq,
                                      std::uint32_t cb) {
  std::uint32_t n;
  if (!free_nodes_.empty()) {
    n = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[n] = WheelNode{when_ns, seq, cb, kNil};
  } else {
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(WheelNode{when_ns, seq, cb, kNil});
  }
  return n;
}

void EventQueue::PushSlot(std::size_t level, std::size_t slot, std::uint32_t node) {
  SlotList& list = slots_[level][slot];
  if (list.head == kNil) {
    list.head = list.tail = node;
    occupied_[level][slot >> 6] |= 1ull << (slot & 63);
  } else {
    nodes_[list.tail].next = node;
    list.tail = node;
  }
}

std::size_t EventQueue::NextOccupied(std::size_t level, std::size_t from) const {
  if (from >= kSlots) return kSlots;
  std::size_t word = from >> 6;
  std::uint64_t bits = occupied_[level][word] & (~0ull << (from & 63));
  while (true) {
    if (bits != 0) {
      return word * 64 + static_cast<std::size_t>(std::countr_zero(bits));
    }
    if (++word >= kSlots / 64) return kSlots;
    bits = occupied_[level][word];
  }
}

// Place one event relative to the current cursor. d == 0 means "due
// exactly at the cursor": it joins the expiry batch (callers keep the
// batch seq-sorted — Schedule appends a max seq; WheelAdvance/Resync
// sort after bulk inserts).
void EventQueue::InsertEvent(std::uint64_t when_ns, std::uint64_t seq,
                             std::uint32_t cb) {
  const std::uint64_t d = when_ns ^ wheel_time_ns_;
  if (d == 0) {
    batch_.push_back(BatchEntry{seq, cb});
    batch_when_ns_ = when_ns;
    return;
  }
  if (d >= kHorizonNs) {
    // `when` lies in a later 2^32-aligned window than the cursor: the
    // wheel cannot index it yet. Strictly later than every wheel event
    // (which all share the cursor's window), so a min-heap suffices.
    overflow_.push_back(HeapEntry{SimTime::FromNanos(when_ns), seq, cb});
    SiftUp(overflow_, overflow_.size() - 1);
    return;
  }
  const std::size_t level = static_cast<std::size_t>(63 - std::countl_zero(d)) >> 3;
  const std::size_t slot =
      static_cast<std::size_t>((when_ns >> (level * kSlotBits)) & (kSlots - 1));
  PushSlot(level, slot, AcquireNode(when_ns, seq, cb));
}

void EventQueue::PromoteOverflow() {
  while (!overflow_.empty() &&
         (overflow_.front().when.ns() ^ wheel_time_ns_) < kHorizonNs) {
    const HeapEntry top = overflow_.front();
    overflow_.front() = overflow_.back();
    overflow_.pop_back();
    if (!overflow_.empty()) SiftDown(overflow_, 0);
    InsertEvent(top.when.ns(), top.seq, top.slot);
  }
}

// The cursor only moves forward, and Schedule only ever targets
// t >= now(). The one way those can disagree: RunUntil peeks the next
// event (advancing the cursor to its timestamp) and finds it beyond the
// deadline — then a later Schedule lands in [now, cursor). Re-anchor the
// wheel at t and re-place everything pending. Rare, O(pending).
void EventQueue::Resync(std::uint64_t t_ns) {
  std::vector<HeapEntry> moved;
  moved.reserve(pending_);
  for (std::size_t level = 0; level < kLevels; ++level) {
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      std::uint32_t n = slots_[level][slot].head;
      while (n != kNil) {
        const WheelNode& node = nodes_[n];
        moved.push_back(
            HeapEntry{SimTime::FromNanos(node.when_ns), node.seq, node.cb});
        const std::uint32_t next = node.next;
        free_nodes_.push_back(n);
        n = next;
      }
      slots_[level][slot] = SlotList{};
    }
    occupied_[level].fill(0);
  }
  for (std::size_t i = batch_pos_; i < batch_.size(); ++i) {
    moved.push_back(HeapEntry{SimTime::FromNanos(batch_when_ns_),
                              batch_[i].seq, batch_[i].cb});
  }
  batch_.clear();
  batch_pos_ = 0;
  wheel_time_ns_ = t_ns;
  batch_when_ns_ = t_ns;
  for (const HeapEntry& e : moved) InsertEvent(e.when.ns(), e.seq, e.slot);
  std::sort(batch_.begin(), batch_.end(),
            [](const BatchEntry& a, const BatchEntry& b) { return a.seq < b.seq; });
}

// Advance the cursor to the earliest pending timestamp and stage every
// event due at it into batch_ (sorted by seq). Precondition: the current
// batch is fully consumed.
bool EventQueue::WheelAdvance() {
  batch_.clear();
  batch_pos_ = 0;
  if (pending_ == 0) return false;
  while (true) {
    // Events placed at the cursor itself (by a cascade or an overflow
    // promotion below) are the earliest pending: finalize them.
    if (!batch_.empty()) {
      std::sort(
          batch_.begin(), batch_.end(),
          [](const BatchEntry& a, const BatchEntry& b) { return a.seq < b.seq; });
      batch_when_ns_ = wheel_time_ns_;
      return true;
    }
    // Level 0: each occupied slot holds one exact timestamp; the nearest
    // occupied slot above the cursor's own index is the next due time.
    // (Occupied indexes are strictly above the cursor byte at every
    // level — an event equal at that byte would have sat a level lower.)
    const std::size_t cur0 = static_cast<std::size_t>(wheel_time_ns_ & (kSlots - 1));
    const std::size_t s0 = NextOccupied(0, cur0 + 1);
    if (s0 < kSlots) {
      wheel_time_ns_ = (wheel_time_ns_ & ~static_cast<std::uint64_t>(kSlots - 1)) |
                       static_cast<std::uint64_t>(s0);
      std::uint32_t n = slots_[0][s0].head;
      while (n != kNil) {
        batch_.push_back(BatchEntry{nodes_[n].seq, nodes_[n].cb});
        const std::uint32_t next = nodes_[n].next;
        free_nodes_.push_back(n);
        n = next;
      }
      slots_[0][s0] = SlotList{};
      occupied_[0][s0 >> 6] &= ~(1ull << (s0 & 63));
      continue;  // finalized at loop top
    }
    // Levels 1..k: advance to the nearest occupied slot's window start
    // and cascade its events down (they re-insert at lower levels or,
    // if due exactly at the new cursor, into the batch).
    bool cascaded = false;
    for (std::size_t level = 1; level < kLevels; ++level) {
      const std::size_t shift = level * kSlotBits;
      const std::size_t cur =
          static_cast<std::size_t>((wheel_time_ns_ >> shift) & (kSlots - 1));
      const std::size_t s = NextOccupied(level, cur + 1);
      if (s == kSlots) continue;
      const std::uint64_t window = (1ull << (shift + kSlotBits)) - 1;
      wheel_time_ns_ = (wheel_time_ns_ & ~window) |
                       (static_cast<std::uint64_t>(s) << shift);
      std::uint32_t n = slots_[level][s].head;
      slots_[level][s] = SlotList{};
      occupied_[level][s >> 6] &= ~(1ull << (s & 63));
      while (n != kNil) {
        const WheelNode node = nodes_[n];
        free_nodes_.push_back(n);
        InsertEvent(node.when_ns, node.seq, node.cb);
        n = node.next;
      }
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    // Wheel empty: jump to the earliest overflow event's timestamp and
    // pull its whole 2^32 window in. pending_ > 0 guarantees non-empty.
    wheel_time_ns_ = overflow_.front().when.ns();
    PromoteOverflow();
  }
}

bool EventQueue::PeekNextTime(SimTime* out) {
  if (backend_ == Backend::kBinaryHeap) {
    if (heap_.empty()) return false;
    *out = heap_.front().when;
    return true;
  }
  if (batch_pos_ >= batch_.size() && !WheelAdvance()) return false;
  *out = SimTime::FromNanos(batch_when_ns_);
  return true;
}

// --- Public API ---

void EventQueue::Schedule(SimTime t, Callback cb) {
  if (t < now_) {
    if (past_policy_ == PastPolicy::kAbort) {
      std::fprintf(stderr,
                   "EventQueue::Schedule: t=%llu ns is earlier than now=%llu ns\n",
                   static_cast<unsigned long long>(t.ns()),
                   static_cast<unsigned long long>(now_.ns()));
      std::abort();
    }
    t = now_;
    ++clamped_schedules_;
  }
  const std::uint32_t slot = AcquireCallbackSlot(std::move(cb));
  const std::uint64_t seq = next_seq_++;
  ++pending_;
  if (backend_ == Backend::kBinaryHeap) {
    heap_.push_back(HeapEntry{t, seq, slot});
    SiftUp(heap_, heap_.size() - 1);
    return;
  }
  if (t.ns() < wheel_time_ns_) Resync(t.ns());
  InsertEvent(t.ns(), seq, slot);
}

bool EventQueue::RunNext() {
  if (backend_ == Backend::kBinaryHeap) {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(heap_, 0);
    RunCallback(top.slot, top.when);
    return true;
  }
  if (batch_pos_ >= batch_.size() && !WheelAdvance()) return false;
  const BatchEntry e = batch_[batch_pos_++];
  RunCallback(e.cb, SimTime::FromNanos(batch_when_ns_));
  return true;
}

void EventQueue::RunUntil(SimTime deadline) {
  SimTime t;
  while (PeekNextTime(&t) && t <= deadline) RunNext();
}

void EventQueue::RunAll() {
  while (RunNext()) {
  }
}

}  // namespace conzone
