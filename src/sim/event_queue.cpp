#include "sim/event_queue.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace conzone {

void EventQueue::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    std::size_t best = (r < n && Earlier(heap_[r], heap_[l])) ? r : l;
    if (!Earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void EventQueue::Schedule(SimTime t, Callback cb) {
  if (t < now_) {
    if (past_policy_ == PastPolicy::kAbort) {
      std::fprintf(stderr,
                   "EventQueue::Schedule: t=%llu ns is earlier than now=%llu ns\n",
                   static_cast<unsigned long long>(t.ns()),
                   static_cast<unsigned long long>(now_.ns()));
      std::abort();
    }
    t = now_;
    ++clamped_schedules_;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    pool_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(std::move(cb));
  }
  heap_.push_back(HeapEntry{t, next_seq_++, slot});
  SiftUp(heap_.size() - 1);
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);

  // Move the callback out of its slot and recycle the slot *before*
  // running: the callback may schedule new events.
  Callback cb = std::move(pool_[top.slot]);
  free_slots_.push_back(top.slot);

  now_ = top.when;
  ++executed_;
  cb(now_);
  return true;
}

void EventQueue::RunUntil(SimTime deadline) {
  while (!heap_.empty() && heap_.front().when <= deadline) RunNext();
}

void EventQueue::RunAll() {
  while (RunNext()) {
  }
}

}  // namespace conzone
