#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace conzone {

void EventQueue::Schedule(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the simulated past");
  heap_.push(Event{t, next_seq_++, std::move(cb)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the callback is moved out via const_cast,
  // which is safe because the element is popped before the callback runs.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.when;
  ev.cb(now_);
  return true;
}

void EventQueue::RunUntil(SimTime deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) RunNext();
}

void EventQueue::RunAll() {
  while (RunNext()) {
  }
}

}  // namespace conzone
