// FIO-like micro-benchmark workload runner (paper §IV-A).
//
// The evaluation drives every device with flexible-I/O-tester style jobs:
// sequential or random, read or write, fixed block size, one or more
// simulated threads. At the default iodepth=1 a job is synchronous — the
// next request issues when the previous one completes — which is how
// consumer I/O stacks behave (§II-A: frequent synchronous writes). With
// iodepth=N a job keeps up to N requests outstanding: N independent
// self-pacing submission chains share the job's cursor/RNG/stop state,
// and the event queue interleaves their submissions in simulated-time
// order. Concurrency (across chains and across jobs) is resolved by the
// device's internal resource model, which serializes contended hardware.
// iodepth=1 reduces exactly to the synchronous behavior.
//
// Submission is batched, io_uring-style: a chain whose next issue falls
// due at simulated tick T does not get its own dispatch event. Instead
// the job collects up to iodepth ready chains in a submission ring and
// the event queue carries at most one flush event per (job, tick),
// which issues every ready chain of that tick back to back in arrival
// order. iodepth=1 has a single chain — the ring could never batch —
// and dispatches directly with zero batching overhead; at higher
// depths same-tick chains collapse into one event per tick. Chains
// of one job keep their exact relative order; distinct jobs colliding
// on the same tick coarsen from per-chain to per-job interleaving —
// still fully deterministic, which is what the contract requires.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fastdiv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "core/storage_device.hpp"
#include "sim/event_queue.hpp"

namespace conzone {

enum class IoPattern : std::uint8_t { kSequential = 0, kRandom = 1 };
enum class IoDirection : std::uint8_t { kRead = 0, kWrite = 1 };

struct JobSpec {
  std::string name = "job";
  IoPattern pattern = IoPattern::kSequential;
  IoDirection direction = IoDirection::kRead;
  std::uint64_t block_size = 4096;
  /// Byte range the job operates on: [region_offset, region_offset+region_size).
  std::uint64_t region_offset = 0;
  std::uint64_t region_size = 0;
  /// Zoned devices only: operate on exactly these zones, in order — the
  /// job's address space is their concatenation (region_offset/size are
  /// then derived, not read). This is how consumer stacks present work to
  /// the device: F2FS allocates whole segments/zones per log, so a
  /// writer's stream hops zones in allocation order, not LBA order. The
  /// Fig. 6b conflict experiment uses this to pin two writers to zones of
  /// equal or opposite parity.
  std::vector<std::uint64_t> zone_list;
  /// With zone_list: operate only on the first `zone_span_bytes` of each
  /// listed zone (0 = the whole zone). Lets read jobs target the written
  /// prefix of partially-filled zones.
  std::uint64_t zone_span_bytes = 0;
  /// Stop conditions (at least one must be set; both = whichever first).
  std::uint64_t io_count = 0;
  SimDuration runtime;
  /// Sequential jobs wrap to the region start when they reach the end;
  /// zoned write jobs must reset the zones they wrap into.
  bool reset_zones_on_wrap = false;
  SimDuration think_time;
  std::uint64_t seed = 1;
  /// Outstanding requests the job keeps in flight (fio's iodepth). 1 =
  /// fully synchronous; N>1 runs N submission chains that each issue the
  /// job's next IO as soon as their previous one completes.
  std::uint32_t iodepth = 1;
};

struct JobResult {
  std::string name;
  Throughput throughput;
  LatencyHistogram latency;
  SimTime first_issue;
  SimTime last_completion;
  /// IOs that failed with a per-IO condition (media error, device gone
  /// read-only). Such failures end the job but not the run: a real fio
  /// job reports the error and the remaining jobs keep running.
  std::uint64_t io_errors = 0;
  Status first_error;  ///< First per-IO failure (Ok when io_errors == 0).
};

/// Aggregate over all jobs of a run (the "MT" rows of the paper).
struct RunResult {
  std::vector<JobResult> jobs;
  Throughput total;           ///< Sum of bytes/ops over the wall-clock span.
  LatencyHistogram latency;   ///< Merged across jobs.
  SimTime end_time;           ///< Completion of the last job — pass as the
                              ///< `start` of the next phase so a fresh run
                              ///< does not queue behind still-busy media.
  std::uint64_t events = 0;   ///< Simulator events executed by the run
                              ///< (wall-clock benchmarking: events/s).
  std::uint64_t io_errors = 0;  ///< Sum of per-IO failures across jobs.

  double MiBps() const { return total.MiBps(); }
  double Kiops() const { return total.Kiops(); }
};

class FioRunner {
 public:
  /// `backend` selects the event-queue implementation driving the run;
  /// results are bit-identical across backends (the scheduler contract),
  /// so this only matters for wall-clock speed and for cross-checking.
  explicit FioRunner(StorageDevice& device,
                     EventQueue::Backend backend = EventQueue::Backend::kTimingWheel)
      : device_(device),
        info_(device.info()),
        div_zone_(info_.zone_size_bytes),
        backend_(backend) {}

  /// Run all jobs concurrently starting at simulated time `start`.
  Result<RunResult> Run(const std::vector<JobSpec>& jobs,
                        SimTime start = SimTime::Zero());

  /// Sequentially fill [offset, offset+size) with `block_size` writes and
  /// flush — the preconditioning step before read experiments.
  static Status Precondition(StorageDevice& device, std::uint64_t offset,
                             std::uint64_t size, std::uint64_t block_size = 512 * kKiB,
                             SimTime* end_time = nullptr);

 private:
  struct JobState {
    JobSpec spec;
    Rng rng;
    std::uint64_t virtual_size = 0;  // region_size or zone_list span
    std::uint64_t position = 0;      // sequential cursor
    std::uint64_t ios_done = 0;
    SimTime deadline = SimTime::Max();
    JobResult result;
    bool done = false;
    // Per-IO constants hoisted out of PickOffset (random jobs draw one
    // offset per IO; the divisions would otherwise dominate the draw).
    std::uint64_t rand_slots = 0;      // virtual_size / block_size
    std::uint64_t rand_threshold = 0;  // Rng::RejectionThreshold(rand_slots)
    FastDiv div_span_;                 // zone_list span (zone_span_bytes or zone size)
    // Submission ring: chains awaiting their next issue, run-length
    // packed as (tick, chains) — chains are interchangeable, so a ring
    // entry is just its tick and a count. A chain arming at the tick
    // the ring's back entry holds merges into it in O(1) and rides
    // that entry's already-scheduled flush event (same-tick arms are
    // consecutive: the event queue drains equal timestamps FIFO);
    // otherwise it pushes a new entry and schedules the tick's flush.
    // Entries never outlive their flush (the flush drains every entry
    // of its tick), so the merge is always into a pending flush. The
    // vector stays allocation-free after the reserve in Run() and is
    // unused at iodepth 1 (a single chain dispatches directly).
    struct ReadySlot {
      SimTime tick;
      std::uint32_t chains;
    };
    std::vector<ReadySlot> ready;
  };

  struct RunCtx;
  /// Enqueue a chain's next issue at `at`, scheduling the tick's flush
  /// event if this is its first ring entry.
  void ArmChain(RunCtx& ctx, std::size_t idx, SimTime at);
  /// Flush event body: issue every ring entry of `job` due at `when`.
  void FlushSubmissions(RunCtx& ctx, std::size_t idx, SimTime when);

  Status ValidateSpec(const JobSpec& spec) const;
  /// Issue one IO for `job` at time `t`; returns completion time or the
  /// error that aborted the run.
  Result<SimTime> IssueOne(JobState& job, SimTime t);
  std::uint64_t PickOffset(JobState& job, std::uint64_t* len);
  /// One step of a job's submission chain: issue the next IO and re-arm
  /// the chain in the submission ring at its completion. Direct member
  /// dispatch — runs once per simulated IO, so no std::function
  /// indirection.
  void IssueLoop(RunCtx& ctx, std::size_t idx, SimTime t);

  StorageDevice& device_;
  /// Cached at construction: info() builds a fresh DeviceInfo (including
  /// a std::string) per call, which is too expensive for the issue path.
  DeviceInfo info_;
  FastDiv div_zone_;  ///< info_.zone_size_bytes (hardware div when 0)
  EventQueue::Backend backend_;
  Status run_error_;

 public:
  /// A resumable run — the same jobs, states and event stream Run()
  /// drives, but pausable at an arbitrary simulated time so a caller can
  /// power-cut the device mid-workload, recover it, and continue the
  /// surviving jobs (the sharded runner's cut schedule and the fleet
  /// soak ride on this). Begin(); RunUntil(cut) as many times as needed,
  /// with Resume(recover_time, wp) after each cut; Finish() collects the
  /// RunResult. Run() itself is Begin + RunAll + Finish, so a session
  /// with no cuts is bit-identical to the one-shot path. One session per
  /// runner at a time (they share run_error_).
  class Session {
   public:
    /// Recovered write pointer of `zone` — byte offset within the zone —
    /// queried by Resume() to resync sequential write cursors with what
    /// the remount actually made durable. Callers with a concrete device
    /// adapt their zone introspection; StorageDevice itself exposes no
    /// WP query.
    using ZoneWpFn = std::function<Result<std::uint64_t>(std::uint64_t)>;

    Session(FioRunner& runner, std::vector<JobSpec> jobs, SimTime start);
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Validate the jobs and arm every submission chain at `start`.
    Status Begin();

    /// Run every scheduled event with timestamp <= `until`, then pause.
    /// All submissions through `until` have been issued; events past it
    /// (in-flight completions) stay queued. Returns the run-aborting
    /// error, if any (per-IO failures stay per-job, as in Run()).
    Status RunUntil(SimTime until);

    /// Run to completion (no further cuts).
    Status RunAll();

    /// True once every job has hit its stop condition or failed.
    bool done() const;

    /// Continue after a PowerCut()/Recover() cycle completed at `at`.
    /// Discards the dead event stream (queued completions of in-flight
    /// IOs died with the power), resyncs each live sequential zoned
    /// write job's cursor against the recovered write pointers — rewind
    /// to the WP when the cut ate a buffered tail; reset the zone and
    /// restart it when recovery resurrected data past the cursor (a torn
    /// reset undone) — resets any resurrected zone ahead of a cursor,
    /// and re-arms every live job's chains. Conventional zones accept
    /// in-place writes and never resync. Returns the simulated time the
    /// chains were re-armed at (>= `at`; later when resyncing resets
    /// zones).
    Result<SimTime> Resume(SimTime at, const ZoneWpFn& zone_wp);

    /// Collect the RunResult (same shape Run() returns). Call once,
    /// after the final RunAll()/RunUntil().
    Result<RunResult> Finish();

   private:
    Status ResyncJob(JobState& job, const ZoneWpFn& zone_wp, SimTime* t);

    FioRunner& runner_;
    std::vector<JobSpec> jobs_;
    SimTime start_;
    /// Heap-held so the scheduled lambdas' captured references stay
    /// stable; queue+ctx are rebuilt per segment by Resume().
    std::unique_ptr<std::vector<JobState>> states_;
    std::unique_ptr<EventQueue> q_;
    std::unique_ptr<RunCtx> ctx_;
    /// executed() of queues already torn down by Resume().
    std::uint64_t events_base_ = 0;
    bool begun_ = false;
  };
};

}  // namespace conzone
