// Cache workload generator: a zipfian get/put mix driven against a
// ZoneCache (cache-aside pattern), so GC-pressure and zone-interference
// patterns earlier studies approximated from below are generated
// organically by a real consumer of the logical zoned space.
//
// Determinism contract: the same spec and seed produce the same request
// stream, the same hit/miss sequence, the same simulated timeline, and
// the same fingerprint — on any executor thread count (the cache issues
// I/O single-threaded; parallelism lives below, inside volumes).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/zone_cache.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace conzone {

/// Zipfian item sampler (Gray et al.'s incremental method, as used by
/// YCSB): item 0 is the most popular, frequency ∝ 1/rank^theta.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t items, double theta);

  /// Draw the next item in [0, items) from `rng`.
  std::uint64_t Next(Rng& rng) const;

 private:
  std::uint64_t items_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double half_pow_;  // 1 + 0.5^theta
};

struct CacheJobSpec {
  std::uint64_t keys = 4096;       ///< Key-space size.
  double zipf_theta = 0.99;        ///< 0 = uniform; YCSB default 0.99.
  double get_ratio = 0.9;          ///< P(op is a Get); rest are Puts.
  std::uint32_t min_value_slots = 1;
  std::uint32_t max_value_slots = 4;
  std::uint64_t ops = 10000;
  std::uint64_t seed = 1;
  /// Hot-group threshold: keys below keys/hot_divisor go to group 0,
  /// the rest to group 1 (with num_groups >= 2).
  std::uint64_t hot_divisor = 10;
  /// A hit must serve exactly the latest acknowledged generation. True
  /// for uncut runs; a crash harness relaxes this to "any acknowledged
  /// generation" (the crash contract) and sets it false.
  bool require_latest = true;
};

struct CacheRunResult {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t puts = 0;       ///< Explicit puts (new generations).
  std::uint64_t fills = 0;      ///< Miss-path cache-aside fills.
  SimTime end;                  ///< Simulated completion of the last op.
  /// FNV digest of the (op, outcome, completion-time) stream.
  std::uint64_t fingerprint = 0;
  /// Per-key value generation counter after the run — lets a crash
  /// harness re-derive every acknowledged value for semantic checks.
  std::vector<std::uint32_t> generations;
};

class CacheWorkloadRunner {
 public:
  /// Value tokens are a pure function of (seed, key, generation) so any
  /// observer can recompute what a Get must return.
  static std::uint64_t ValueToken(std::uint64_t seed, std::uint64_t key,
                                  std::uint32_t generation, std::uint32_t i) {
    return MixSeeds(seed ^ (key * 0x9E3779B97F4A7C15ull), generation, i) | 1ull;
  }
  /// Value length is derived from (seed, key, generation) too, so a
  /// miss-path fill of the same generation reproduces the same object.
  static std::uint32_t ValueSlots(const CacheJobSpec& spec, std::uint64_t key,
                                  std::uint32_t generation) {
    const std::uint32_t range = spec.max_value_slots - spec.min_value_slots + 1;
    return spec.min_value_slots +
           static_cast<std::uint32_t>(
               MixSeeds(spec.seed, key * 2654435761ull, generation) % range);
  }
  static std::uint32_t GroupOf(const CacheJobSpec& spec, std::uint64_t key) {
    return key < spec.keys / spec.hot_divisor ? 0u : 1u;
  }

  /// Run the mix against `cache` starting at simulated time `start`.
  /// `start_generations` (optional) resumes per-key generations from a
  /// previous run segment — the crash harness uses this to keep the
  /// value history consistent across power cuts.
  static Result<CacheRunResult> Run(ZoneCache& cache, const CacheJobSpec& spec,
                                    SimTime start,
                                    const std::vector<std::uint32_t>*
                                        start_generations = nullptr);
};

}  // namespace conzone
