#include "workload/fio.hpp"

#include <algorithm>
#include <memory>

namespace conzone {

Status FioRunner::ValidateSpec(const JobSpec& spec) const {
  const DeviceInfo& di = info_;
  if (spec.iodepth == 0) {
    return Status::InvalidArgument(spec.name + ": iodepth must be >= 1");
  }
  if (!spec.zone_list.empty()) {
    if (di.zone_size_bytes == 0) {
      return Status::InvalidArgument(spec.name + ": zone_list on a non-zoned device");
    }
    for (std::uint64_t z : spec.zone_list) {
      if (z >= di.num_zones) {
        return Status::OutOfRange(spec.name + ": zone " + std::to_string(z) +
                                  " out of range");
      }
    }
    if (spec.io_count == 0 && spec.runtime == SimDuration()) {
      return Status::InvalidArgument(spec.name + ": need io_count or runtime");
    }
    return Status::Ok();
  }
  if (spec.region_size == 0) return Status::InvalidArgument(spec.name + ": empty region");
  if (spec.block_size == 0 || spec.block_size % di.io_alignment != 0) {
    return Status::InvalidArgument(spec.name + ": block size must be a multiple of " +
                                   std::to_string(di.io_alignment));
  }
  if (spec.region_offset % di.io_alignment != 0 ||
      spec.region_size % di.io_alignment != 0) {
    return Status::InvalidArgument(spec.name + ": region must be aligned");
  }
  if (spec.region_offset + spec.region_size > di.capacity_bytes) {
    return Status::OutOfRange(spec.name + ": region beyond device capacity");
  }
  if (spec.block_size > spec.region_size) {
    return Status::InvalidArgument(spec.name + ": block larger than region");
  }
  if (spec.io_count == 0 && spec.runtime == SimDuration()) {
    return Status::InvalidArgument(spec.name + ": need io_count or runtime");
  }
  return Status::Ok();
}

std::uint64_t FioRunner::PickOffset(JobState& job, std::uint64_t* len) {
  const JobSpec& s = job.spec;
  const std::uint64_t zs = info_.zone_size_bytes;
  *len = s.block_size;

  // Virtual position within the job's address space.
  std::uint64_t vpos;
  if (s.pattern == IoPattern::kRandom) {
    vpos = job.rng.NextBelow(job.rand_slots, job.rand_threshold) * s.block_size;
  } else {
    vpos = job.position;
    *len = std::min(*len, job.virtual_size - vpos);
  }

  // Map the virtual position to a device offset.
  std::uint64_t off;
  if (!s.zone_list.empty()) {
    const std::uint64_t zi = job.div_span_.Div(vpos);
    const std::uint64_t in_zone = vpos - zi * job.div_span_.value();
    off = s.zone_list[static_cast<std::size_t>(zi)] * zs + in_zone;
    // Stay within the written span.
    *len = std::min(*len, job.div_span_.value() - in_zone);
  } else {
    off = s.region_offset + vpos;
    if (zs != 0) *len = std::min(*len, zs - div_zone_.Mod(off));
  }

  if (s.pattern == IoPattern::kSequential) {
    job.position += *len;
    if (job.position >= job.virtual_size) job.position = 0;
  }
  return off;
}

Result<SimTime> FioRunner::IssueOne(JobState& job, SimTime t) {
  std::uint64_t len = 0;
  const bool wrapped = (job.spec.pattern == IoPattern::kSequential &&
                        job.position == 0 && job.ios_done > 0);
  if (wrapped && job.spec.direction == IoDirection::kWrite &&
      job.spec.reset_zones_on_wrap) {
    // Rewriting a zoned region requires resetting its zones first. The
    // zone set is iterated in place (no temporary list) — this runs on
    // the issue path.
    const std::uint64_t zs = info_.zone_size_bytes;
    if (zs != 0) {
      auto reset = [&](std::uint64_t z) -> Status {
        auto r = device_.ResetZone(ZoneId{z}, t);
        if (!r.ok()) return r.status();
        t = r.value();
        return Status::Ok();
      };
      if (!job.spec.zone_list.empty()) {
        for (std::uint64_t z : job.spec.zone_list) {
          if (Status st = reset(z); !st.ok()) return st;
        }
      } else {
        const std::uint64_t z0 = job.spec.region_offset / zs;
        const std::uint64_t z1 =
            (job.spec.region_offset + job.spec.region_size + zs - 1) / zs;
        for (std::uint64_t z = z0; z < z1; ++z) {
          if (Status st = reset(z); !st.ok()) return st;
        }
      }
    }
  }
  const std::uint64_t off = PickOffset(job, &len);
  // IoRequest form: no token traffic on the issue path, so the returned
  // IoResult never allocates.
  auto r = job.spec.direction == IoDirection::kWrite
               ? device_.Write(IoRequest{off, len, t})
               : device_.Read(IoRequest{off, len, t});
  if (!r.ok()) return r.status();
  return r.value().done;
}

struct FioRunner::RunCtx {
  std::vector<JobState>& states;
  EventQueue& q;
};

// Batched submission (see header): a chain that becomes ready at tick
// `at` joins the job's submission ring. Same-tick arms are consecutive
// (the event queue drains equal timestamps FIFO), so merging into the
// ring's back entry catches them in O(1); a rare non-consecutive
// same-tick arm pushes a second entry for the tick, whose flush event
// fires after the first has already drained it — a no-op. iodepth 1
// has exactly one chain — the ring can never batch — so it dispatches
// directly, keeping the synchronous path at zero batching overhead.
void FioRunner::ArmChain(RunCtx& ctx, std::size_t idx, SimTime at) {
  JobState& job = ctx.states[idx];
  if (job.spec.iodepth == 1) {
    ctx.q.Schedule(at, [this, &ctx, idx](SimTime when) { IssueLoop(ctx, idx, when); });
    return;
  }
  if (!job.ready.empty() && job.ready.back().tick == at) {
    ++job.ready.back().chains;  // rides that entry's pending flush event
    return;
  }
  job.ready.push_back({at, 1});
  ctx.q.Schedule(at,
                 [this, &ctx, idx](SimTime when) { FlushSubmissions(ctx, idx, when); });
}

void FioRunner::FlushSubmissions(RunCtx& ctx, std::size_t idx, SimTime when) {
  JobState& job = ctx.states[idx];
  // Drain this tick's entries before issuing: a zero-latency chain that
  // re-arms at the same tick then finds no entry for `when` and
  // schedules a fresh flush event (FIFO after the current one — exactly
  // where its per-chain event used to land). Chains share all job
  // state, so entries are interchangeable: count and drop.
  std::uint32_t due = 0;
  if (job.ready.size() == 1 && job.ready[0].tick == when) {
    due = job.ready[0].chains;  // the common shape: one outstanding tick
    job.ready.clear();
  } else {
    for (std::size_t i = 0; i < job.ready.size();) {
      if (job.ready[i].tick == when) {
        due += job.ready[i].chains;
        job.ready[i] = job.ready.back();
        job.ready.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (std::uint32_t k = 0; k < due; ++k) IssueLoop(ctx, idx, when);
}

// Self-scheduling issue loops: each job runs `iodepth` independent
// submission chains. A chain issues the job's next IO and re-arms itself
// at that IO's completion (+think time); the chains share the job's
// cursor, RNG and stop state, so outstanding-IO count never exceeds
// iodepth and the issue order stays deterministic (events run one at a
// time, FIFO at equal timestamps). iodepth=1 is exactly the synchronous
// loop.
void FioRunner::IssueLoop(RunCtx& ctx, std::size_t idx, SimTime t) {
  JobState& job = ctx.states[idx];
  if (job.done || !run_error_.ok()) return;
  if (t >= job.deadline ||
      (job.spec.io_count != 0 && job.ios_done >= job.spec.io_count)) {
    job.done = true;
    return;
  }
  const std::uint64_t pos_before = job.position;
  auto comp = IssueOne(job, t);
  if (!comp.ok()) {
    // Media errors and read-only rejection are per-IO conditions: the job
    // records them and stops, the other jobs keep running (fio semantics).
    // Anything else is a runner/device bug and aborts the whole run.
    const StatusCode code = comp.status().code();
    if (code == StatusCode::kMediaError || code == StatusCode::kResourceExhausted) {
      if (job.result.io_errors == 0) job.result.first_error = comp.status();
      job.result.io_errors++;
      job.done = true;
      return;
    }
    run_error_ = comp.status();
    job.done = true;
    return;
  }
  // Reconstruct the issued length for accounting.
  std::uint64_t len = job.spec.block_size;
  if (job.spec.pattern == IoPattern::kSequential) {
    len = (job.position == 0 ? job.virtual_size : job.position) - pos_before;
  }
  job.ios_done++;
  job.result.throughput.bytes += len;
  job.result.throughput.ops += 1;
  job.result.latency.Record(comp.value() - t);
  // Chains can complete out of order; keep the latest completion.
  if (comp.value() > job.result.last_completion) {
    job.result.last_completion = comp.value();
  }
  // Re-arm this chain at its completion. This is ArmChain() by hand:
  // the tail runs once per simulated IO — the hottest line in the
  // runner — so the ring merge stays inline rather than paying an
  // out-of-line call per IO.
  const SimTime next = comp.value() + job.spec.think_time;
  if (job.spec.iodepth == 1) {
    ctx.q.Schedule(next, [this, &ctx, idx](SimTime when) { IssueLoop(ctx, idx, when); });
    return;
  }
  if (!job.ready.empty() && job.ready.back().tick == next) {
    ++job.ready.back().chains;  // rides that entry's pending flush event
    return;
  }
  job.ready.push_back({next, 1});
  ctx.q.Schedule(next,
                 [this, &ctx, idx](SimTime when) { FlushSubmissions(ctx, idx, when); });
}

Result<RunResult> FioRunner::Run(const std::vector<JobSpec>& jobs, SimTime start) {
  // One uninterrupted session — Begin + RunAll + Finish is the exact
  // event stream the pre-session Run() drove, bit for bit.
  Session session(*this, jobs, start);
  if (Status st = session.Begin(); !st.ok()) return st;
  if (Status st = session.RunAll(); !st.ok()) return st;
  return session.Finish();
}

FioRunner::Session::Session(FioRunner& runner, std::vector<JobSpec> jobs,
                            SimTime start)
    : runner_(runner), jobs_(std::move(jobs)), start_(start) {}

FioRunner::Session::~Session() = default;

Status FioRunner::Session::Begin() {
  if (begun_) return Status::FailedPrecondition("session already begun");
  for (const JobSpec& s : jobs_) {
    if (Status st = runner_.ValidateSpec(s); !st.ok()) return st;
  }
  runner_.run_error_ = Status::Ok();

  states_ = std::make_unique<std::vector<JobState>>();
  states_->reserve(jobs_.size());
  const std::uint64_t zs = runner_.info_.zone_size_bytes;
  for (const JobSpec& s : jobs_) {
    JobState js;
    js.spec = s;
    js.virtual_size =
        s.zone_list.empty()
            ? s.region_size
            : s.zone_list.size() * (s.zone_span_bytes ? s.zone_span_bytes : zs);
    js.rng.Seed(s.seed * 0x9E3779B97F4A7C15ull + 1);
    js.rand_slots = s.block_size ? js.virtual_size / s.block_size : 0;
    js.rand_threshold = Rng::RejectionThreshold(js.rand_slots);
    js.div_span_ = FastDiv(s.zone_span_bytes ? s.zone_span_bytes : zs);
    js.result.name = s.name;
    js.result.first_issue = start_;
    if (s.runtime != SimDuration()) js.deadline = start_ + s.runtime;
    js.ready.reserve(s.iodepth);
    states_->push_back(std::move(js));
  }

  q_ = std::make_unique<EventQueue>(runner_.backend_);
  ctx_ = std::make_unique<RunCtx>(RunCtx{*states_, *q_});
  // The initial burst rides the submission ring too: all iodepth chains
  // of a job are ready at `start`, so each job costs one flush event —
  // not iodepth dispatch events — to get airborne.
  for (std::size_t i = 0; i < states_->size(); ++i) {
    const std::uint32_t depth = (*states_)[i].spec.iodepth;
    for (std::uint32_t d = 0; d < depth; ++d) runner_.ArmChain(*ctx_, i, start_);
  }
  begun_ = true;
  return Status::Ok();
}

Status FioRunner::Session::RunUntil(SimTime until) {
  if (!begun_) return Status::FailedPrecondition("session not begun");
  q_->RunUntil(until);
  return runner_.run_error_;
}

Status FioRunner::Session::RunAll() {
  if (!begun_) return Status::FailedPrecondition("session not begun");
  q_->RunAll();
  return runner_.run_error_;
}

bool FioRunner::Session::done() const {
  if (!begun_) return false;
  for (const JobState& js : *states_) {
    if (!js.done) return false;
  }
  return true;
}

Result<SimTime> FioRunner::Session::Resume(SimTime at, const ZoneWpFn& zone_wp) {
  if (!begun_) return Status::FailedPrecondition("session not begun");
  if (!runner_.run_error_.ok()) return runner_.run_error_;
  // The old queue holds completions of IOs that were in flight at the
  // cut and stale submission flushes; all of it died with the power.
  // Bank the executed-event count and rebuild queue + context.
  events_base_ += q_->executed();
  q_ = std::make_unique<EventQueue>(runner_.backend_);
  ctx_ = std::make_unique<RunCtx>(RunCtx{*states_, *q_});

  SimTime t = at;
  const std::uint64_t zs = runner_.info_.zone_size_bytes;
  for (JobState& js : *states_) {
    js.ready.clear();
    if (js.done) continue;
    if (zs != 0 && zone_wp && js.spec.direction == IoDirection::kWrite &&
        js.spec.pattern == IoPattern::kSequential) {
      if (Status st = ResyncJob(js, zone_wp, &t); !st.ok()) return st;
    }
  }
  for (std::size_t i = 0; i < states_->size(); ++i) {
    JobState& js = (*states_)[i];
    if (js.done) continue;
    for (std::uint32_t d = 0; d < js.spec.iodepth; ++d) {
      runner_.ArmChain(*ctx_, i, t);
    }
  }
  return t;
}

// Reconcile one sequential zoned write job with the recovered device:
// its cursor must land exactly on the write pointer of the zone it is
// in, and every zone ahead of it must be appendable from the start.
Status FioRunner::Session::ResyncJob(JobState& js, const ZoneWpFn& zone_wp,
                                     SimTime* t) {
  const JobSpec& s = js.spec;
  const std::uint64_t zs = runner_.info_.zone_size_bytes;
  const std::uint32_t conv = runner_.info_.num_conventional_zones;
  // The job's zones in virtual-address order, and the cursor's index in
  // that order (PickOffset's mapping, inverted).
  const bool listed = !s.zone_list.empty();
  const std::uint64_t span =
      listed ? (s.zone_span_bytes ? s.zone_span_bytes : zs) : 0;
  const std::uint64_t z0 = listed ? 0 : s.region_offset / zs;
  const std::size_t nzones =
      listed ? s.zone_list.size()
             : static_cast<std::size_t>(
                   (s.region_offset + s.region_size + zs - 1) / zs - z0);
  auto zone_at = [&](std::size_t k) {
    return listed ? s.zone_list[k] : z0 + static_cast<std::uint64_t>(k);
  };
  auto reset = [&](std::uint64_t z) -> Status {
    auto r = runner_.device_.ResetZone(ZoneId{z}, *t);
    if (!r.ok()) return r.status();
    *t = Later(*t, r.value());
    return Status::Ok();
  };

  const std::uint64_t vpos = js.position;
  const std::size_t zi =
      listed ? static_cast<std::size_t>(vpos / span)
             : static_cast<std::size_t>((s.region_offset + vpos) / zs - z0);
  const std::uint64_t zone = zone_at(zi);
  if (zone >= conv) {  // conventional zones update in place: no resync
    auto wpr = zone_wp(zone);
    if (!wpr.ok()) return wpr.status();
    const std::uint64_t wp = wpr.value();
    const std::uint64_t in_zone =
        listed ? vpos - static_cast<std::uint64_t>(zi) * span
               : (s.region_offset + vpos) - zone * zs;
    if (wp < in_zone) {
      // The cut ate a buffered/in-flight tail; back up to what survived.
      const std::uint64_t back = in_zone - wp;
      js.position = back >= vpos ? 0 : vpos - back;
    } else if (wp > in_zone) {
      // Recovery resurrected durable data past the cursor (a torn reset
      // undone). The zone cannot be appended mid-way; restart it.
      if (Status st = reset(zone); !st.ok()) return st;
      js.position = vpos - in_zone;
    }
  }
  // Zones ahead of the cursor must be empty for the pass to append into
  // them; reset any resurrected one now instead of failing the job when
  // the cursor arrives.
  for (std::size_t k = zi + 1; k < nzones; ++k) {
    const std::uint64_t z = zone_at(k);
    if (z < conv) continue;
    auto wpr = zone_wp(z);
    if (!wpr.ok()) return wpr.status();
    if (wpr.value() == 0) continue;
    if (Status st = reset(z); !st.ok()) return st;
  }
  return Status::Ok();
}

Result<RunResult> FioRunner::Session::Finish() {
  if (!begun_) return Status::FailedPrecondition("session not begun");
  if (!runner_.run_error_.ok()) return runner_.run_error_;

  RunResult out;
  out.events = events_base_ + q_->executed();
  SimTime span_start = SimTime::Max();
  SimTime span_end = start_;
  for (JobState& js : *states_) {
    // A job that failed on its first IO has no completions; guard the span.
    js.result.throughput.elapsed =
        js.result.last_completion > js.result.first_issue
            ? js.result.last_completion - js.result.first_issue
            : SimDuration();
    out.total.bytes += js.result.throughput.bytes;
    out.total.ops += js.result.throughput.ops;
    out.latency.Merge(js.result.latency);
    out.io_errors += js.result.io_errors;
    span_start = std::min(span_start, js.result.first_issue);
    span_end = std::max(span_end, js.result.last_completion);
    out.jobs.push_back(std::move(js.result));
  }
  out.total.elapsed = span_end - span_start;
  out.end_time = span_end;
  return out;
}

Status FioRunner::Precondition(StorageDevice& device, std::uint64_t offset,
                               std::uint64_t size, std::uint64_t block_size,
                               SimTime* end_time) {
  const std::uint64_t zs = device.info().zone_size_bytes;
  SimTime t = end_time ? *end_time : SimTime::Zero();
  std::uint64_t off = offset;
  const std::uint64_t end = offset + size;
  while (off < end) {
    std::uint64_t len = std::min(block_size, end - off);
    if (zs != 0) len = std::min(len, zs - (off % zs));
    auto r = device.Write(IoRequest{off, len, t});
    if (!r.ok()) return r.status();
    t = r.value().done;
    off += len;
  }
  auto f = device.Flush(t);
  if (!f.ok()) return f.status();
  if (end_time) *end_time = f.value();
  return Status::Ok();
}

}  // namespace conzone
