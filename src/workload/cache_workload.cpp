#include "workload/cache_workload.hpp"

#include <cmath>
#include <string>

namespace conzone {

namespace {

constexpr std::uint64_t kCwFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kCwFnvPrime = 0x100000001B3ull;

std::uint64_t Mix(std::uint64_t h, std::uint64_t x) {
  return (h ^ x) * kCwFnvPrime;
}

double Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t items, double theta)
    : items_(items), theta_(theta) {
  if (items_ == 0) items_ = 1;
  if (theta_ <= 0.0 || theta_ >= 1.0) {
    // Degenerate to uniform; Next() special-cases theta_ <= 0.
    theta_ = 0.0;
    zetan_ = alpha_ = eta_ = half_pow_ = 0.0;
    return;
  }
  zetan_ = Zeta(items_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_ = 1.0 + std::pow(0.5, theta_);
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) const {
  if (theta_ <= 0.0) return rng.NextBelow(items_);
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_) return 1;
  const auto item = static_cast<std::uint64_t>(
      static_cast<double>(items_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return item >= items_ ? items_ - 1 : item;
}

Result<CacheRunResult> CacheWorkloadRunner::Run(
    ZoneCache& cache, const CacheJobSpec& spec, SimTime start,
    const std::vector<std::uint32_t>* start_generations) {
  if (spec.keys == 0) return Status::InvalidArgument("keys must be > 0");
  if (spec.min_value_slots == 0 || spec.max_value_slots < spec.min_value_slots) {
    return Status::InvalidArgument("bad value-slot range");
  }
  if (spec.hot_divisor == 0) {
    return Status::InvalidArgument("hot_divisor must be > 0");
  }

  CacheRunResult res;
  res.end = start;
  res.generations.assign(spec.keys, 0);
  if (start_generations != nullptr) {
    if (start_generations->size() != spec.keys) {
      return Status::InvalidArgument("start_generations size mismatch");
    }
    res.generations = *start_generations;
  }

  Rng rng(MixSeeds(spec.seed, 0x63616368u /*"cach"*/, spec.ops));
  const ZipfianGenerator zipf(spec.keys, spec.zipf_theta);
  std::uint64_t fp = kCwFnvOffset;
  SimTime now = start;

  std::vector<std::uint64_t> value;
  for (std::uint64_t op = 0; op < spec.ops; ++op) {
    const std::uint64_t key = zipf.Next(rng);
    const bool is_get = rng.NextBool(spec.get_ratio);
    const std::uint32_t gen = res.generations[key];
    const std::uint32_t group = GroupOf(spec, key);

    if (is_get) {
      ++res.gets;
      auto g = cache.Get(key, now);
      if (!g.ok()) return g.status();
      now = Later(now, g.value().done);
      if (g.value().hit) {
        ++res.hits;
        // The served value must be one the workload acknowledged: some
        // generation in [0, gen] — exactly `gen` unless a crash harness
        // relaxed the check.
        const auto& got = g.value().tokens;
        bool matched = false;
        std::uint32_t matched_gen = 0;
        const std::uint32_t lo = spec.require_latest ? gen : 0;
        for (std::uint32_t cand = gen + 1; cand-- > lo;) {
          if (got.size() != ValueSlots(spec, key, cand)) continue;
          bool eq = true;
          for (std::uint32_t i = 0; i < got.size(); ++i) {
            if (got[i] != ValueToken(spec.seed, key, cand, i)) {
              eq = false;
              break;
            }
          }
          if (eq) {
            matched = true;
            matched_gen = cand;
            break;
          }
        }
        if (!matched) {
          return Status::Internal("cache served wrong bytes for key " +
                                  std::to_string(key));
        }
        fp = Mix(fp, 0x48495400ull /*HIT*/ | matched_gen);
      } else {
        ++res.misses;
        // Cache-aside fill: fetch the current generation from the
        // (simulated) backing store and admit it.
        const std::uint32_t n = ValueSlots(spec, key, gen);
        value.clear();
        for (std::uint32_t i = 0; i < n; ++i) {
          value.push_back(ValueToken(spec.seed, key, gen, i));
        }
        auto p = cache.Put(key, group, value, now);
        if (!p.ok()) return p.status();
        now = Later(now, p.value());
        ++res.fills;
        fp = Mix(fp, 0x4D495300ull /*MIS*/);
      }
    } else {
      // Explicit put: the object changed upstream — new generation.
      const std::uint32_t ngen = gen + 1;
      const std::uint32_t n = ValueSlots(spec, key, ngen);
      value.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        value.push_back(ValueToken(spec.seed, key, ngen, i));
      }
      auto p = cache.Put(key, group, value, now);
      if (!p.ok()) return p.status();
      now = Later(now, p.value());
      res.generations[key] = ngen;
      ++res.puts;
      fp = Mix(fp, 0x50555400ull /*PUT*/ | ngen);
    }
    fp = Mix(fp, key);
    fp = Mix(fp, now.ns());
  }

  res.end = now;
  res.fingerprint = fp;
  return res;
}

}  // namespace conzone
