// Umbrella header: everything a downstream user of the ConZone emulator
// needs.
//
//   #include "conzone/conzone.hpp"
//
//   auto dev = conzone::ConZoneDevice::Create(
//       conzone::ConZoneConfig::PaperConfig());
//   conzone::FioRunner fio(**dev);
//   ...
#pragma once

#include "buffer/write_buffer.hpp"     // IWYU pragma: export
#include "cache/zone_cache.hpp"        // IWYU pragma: export
#include "cache/zone_cache_fsck.hpp"   // IWYU pragma: export
#include "common/ids.hpp"              // IWYU pragma: export
#include "common/rng.hpp"              // IWYU pragma: export
#include "common/stats.hpp"            // IWYU pragma: export
#include "common/status.hpp"           // IWYU pragma: export
#include "common/time.hpp"             // IWYU pragma: export
#include "common/units.hpp"            // IWYU pragma: export
#include "core/config.hpp"             // IWYU pragma: export
#include "core/crash_checker.hpp"      // IWYU pragma: export
#include "core/device.hpp"             // IWYU pragma: export
#include "core/storage_device.hpp"     // IWYU pragma: export
#include "core/zone_layout.hpp"        // IWYU pragma: export
#include "exec/executor.hpp"           // IWYU pragma: export
#include "fault/fault_model.hpp"       // IWYU pragma: export
#include "femu/femu_device.hpp"        // IWYU pragma: export
#include "flash/array.hpp"             // IWYU pragma: export
#include "flash/checkpoint_store.hpp"  // IWYU pragma: export
#include "flash/geometry.hpp"          // IWYU pragma: export
#include "flash/timing.hpp"            // IWYU pragma: export
#include "ftl/l2p_cache.hpp"           // IWYU pragma: export
#include "ftl/mapping.hpp"             // IWYU pragma: export
#include "ftl/translator.hpp"          // IWYU pragma: export
#include "gc/slc_gc.hpp"               // IWYU pragma: export
#include "host/redundant_volume.hpp"   // IWYU pragma: export
#include "host/striped_volume.hpp"     // IWYU pragma: export
#include "legacy/legacy_device.hpp"    // IWYU pragma: export
#include "shard/sharded_runner.hpp"    // IWYU pragma: export
#include "soak/fleet_soak.hpp"         // IWYU pragma: export
#include "workload/cache_workload.hpp" // IWYU pragma: export
#include "workload/fio.hpp"            // IWYU pragma: export
#include "zns/zone.hpp"                // IWYU pragma: export
