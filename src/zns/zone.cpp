#include "zns/zone.hpp"

#include <string>

namespace conzone {

std::string_view ZoneStateName(ZoneState s) {
  switch (s) {
    case ZoneState::kEmpty: return "EMPTY";
    case ZoneState::kImplicitOpen: return "IMPLICIT_OPEN";
    case ZoneState::kExplicitOpen: return "EXPLICIT_OPEN";
    case ZoneState::kClosed: return "CLOSED";
    case ZoneState::kFull: return "FULL";
  }
  return "?";
}

Status ZoneLimitsConfig::Validate() const {
  if (num_zones == 0) return Status::InvalidArgument("zones: need at least one zone");
  if (zone_size_bytes == 0) return Status::InvalidArgument("zones: zero zone size");
  if (zone_capacity_bytes == 0 || zone_capacity_bytes > zone_size_bytes) {
    return Status::InvalidArgument("zones: capacity must be in (0, size]");
  }
  if (max_open_zones == 0 || max_active_zones < max_open_zones) {
    return Status::InvalidArgument("zones: need max_active >= max_open >= 1");
  }
  return Status::Ok();
}

ZoneManager::ZoneManager(const ZoneLimitsConfig& config) : cfg_(config) {
  zones_.resize(cfg_.num_zones);
}

Status ZoneManager::CheckId(ZoneId zone) const {
  if (!zone.valid() || zone.value() >= zones_.size()) {
    return Status::OutOfRange("zone id " + std::to_string(zone.value()) +
                              " out of range");
  }
  return Status::Ok();
}

Status ZoneManager::EnsureOpenSlot() {
  if (open_ < cfg_.max_open_zones) return Status::Ok();
  // Implicitly close the least-indexed implicitly open zone, as real
  // controllers do when the host exceeds the open limit with implicit
  // opens.
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (zones_[i].state == ZoneState::kImplicitOpen) {
      zones_[i].state = ZoneState::kClosed;
      --open_;
      return Status::Ok();
    }
  }
  return Status::ResourceExhausted("all open-zone slots held by explicitly open zones");
}

Status ZoneManager::BeginWrite(ZoneId zone, std::uint64_t offset_in_zone,
                               std::uint64_t len) {
  if (Status st = CheckId(zone); !st.ok()) return st;
  ZoneInfo& z = zones_[static_cast<std::size_t>(zone.value())];
  if (z.state == ZoneState::kFull) {
    return Status::FailedPrecondition("write to FULL zone " + std::to_string(zone.value()));
  }
  if (len == 0) return Status::InvalidArgument("zero-length write");
  if (offset_in_zone != z.write_pointer) {
    return Status::InvalidArgument(
        "non-sequential write to zone " + std::to_string(zone.value()) + ": offset " +
        std::to_string(offset_in_zone) + " != wp " + std::to_string(z.write_pointer));
  }
  if (offset_in_zone + len > cfg_.zone_capacity_bytes) {
    return Status::OutOfRange("write beyond zone capacity");
  }

  if (z.state == ZoneState::kEmpty || z.state == ZoneState::kClosed) {
    const bool was_active = (z.state == ZoneState::kClosed);
    if (!was_active && active_ >= cfg_.max_active_zones) {
      return Status::ResourceExhausted("max active zones reached");
    }
    if (Status st = EnsureOpenSlot(); !st.ok()) return st;
    z.state = ZoneState::kImplicitOpen;
    ++open_;
    if (!was_active) ++active_;
  }

  z.write_pointer += len;
  if (z.write_pointer == cfg_.zone_capacity_bytes) {
    // Transition to FULL releases the open and active slots.
    --open_;
    --active_;
    z.state = ZoneState::kFull;
  }
  return Status::Ok();
}

Status ZoneManager::CheckRead(ZoneId zone, std::uint64_t offset_in_zone,
                              std::uint64_t len) const {
  if (Status st = CheckId(zone); !st.ok()) return st;
  const ZoneInfo& z = zones_[static_cast<std::size_t>(zone.value())];
  if (len == 0) return Status::InvalidArgument("zero-length read");
  if (offset_in_zone + len > z.write_pointer) {
    return Status::OutOfRange("read beyond write pointer of zone " +
                              std::to_string(zone.value()));
  }
  return Status::Ok();
}

Status ZoneManager::ExplicitOpen(ZoneId zone) {
  if (Status st = CheckId(zone); !st.ok()) return st;
  ZoneInfo& z = zones_[static_cast<std::size_t>(zone.value())];
  switch (z.state) {
    case ZoneState::kExplicitOpen:
      return Status::Ok();
    case ZoneState::kImplicitOpen:
      z.state = ZoneState::kExplicitOpen;
      return Status::Ok();
    case ZoneState::kEmpty:
    case ZoneState::kClosed: {
      const bool was_active = (z.state == ZoneState::kClosed);
      if (!was_active && active_ >= cfg_.max_active_zones) {
        return Status::ResourceExhausted("max active zones reached");
      }
      if (Status st = EnsureOpenSlot(); !st.ok()) return st;
      z.state = ZoneState::kExplicitOpen;
      ++open_;
      if (!was_active) ++active_;
      return Status::Ok();
    }
    case ZoneState::kFull:
      return Status::FailedPrecondition("cannot open FULL zone");
  }
  return Status::Internal("bad zone state");
}

Status ZoneManager::Close(ZoneId zone) {
  if (Status st = CheckId(zone); !st.ok()) return st;
  ZoneInfo& z = zones_[static_cast<std::size_t>(zone.value())];
  if (!IsOpen(z.state)) {
    return Status::FailedPrecondition("close of non-open zone " +
                                      std::to_string(zone.value()));
  }
  // A zone with no written data returns to EMPTY per the ZNS spec.
  if (z.write_pointer == 0) {
    z.state = ZoneState::kEmpty;
    --open_;
    --active_;
  } else {
    z.state = ZoneState::kClosed;
    --open_;
  }
  return Status::Ok();
}

Status ZoneManager::Finish(ZoneId zone) {
  if (Status st = CheckId(zone); !st.ok()) return st;
  ZoneInfo& z = zones_[static_cast<std::size_t>(zone.value())];
  if (z.state == ZoneState::kFull) return Status::Ok();
  if (IsOpen(z.state)) --open_;
  if (IsActive(z.state)) --active_;
  else if (z.state == ZoneState::kEmpty) {
    // Finishing an empty zone makes it FULL with wp pinned at capacity.
  }
  z.state = ZoneState::kFull;
  z.write_pointer = cfg_.zone_capacity_bytes;
  return Status::Ok();
}

Status ZoneManager::Reset(ZoneId zone) {
  if (Status st = CheckId(zone); !st.ok()) return st;
  ZoneInfo& z = zones_[static_cast<std::size_t>(zone.value())];
  if (IsOpen(z.state)) --open_;
  if (IsActive(z.state)) --active_;
  z.state = ZoneState::kEmpty;
  z.write_pointer = 0;
  z.resets++;
  return Status::Ok();
}

const ZoneInfo& ZoneManager::Info(ZoneId zone) const {
  return zones_[static_cast<std::size_t>(zone.value())];
}

void ZoneManager::RestoreAtMount(ZoneId zone, std::uint64_t write_pointer) {
  ZoneInfo& z = zones_[static_cast<std::size_t>(zone.value())];
  z.write_pointer = write_pointer;
  if (write_pointer == 0) {
    z.state = ZoneState::kEmpty;
  } else if (write_pointer >= cfg_.zone_capacity_bytes) {
    z.state = ZoneState::kFull;
  } else {
    z.state = ZoneState::kClosed;
  }
}

void ZoneManager::RecountAfterMount() {
  open_ = 0;
  active_ = 0;
  for (const ZoneInfo& z : zones_) {
    if (IsOpen(z.state)) ++open_;
    if (IsActive(z.state)) ++active_;
  }
}

}  // namespace conzone
