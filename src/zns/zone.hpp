// Host-visible zone model (zoned-namespace semantics).
//
// ConZone exposes the storage as a zoned block device: writes inside a
// zone must land exactly at the zone's write pointer, a full zone rejects
// writes until the host resets it, and the number of simultaneously open
// / active zones is bounded (F2FS keeps up to 6 zones open, §II-B). The
// state machine is the standard ZNS one, minus the states that need
// power-loss handling:
//
//            Reset                    write @ wp
//   EMPTY ----------> (stays EMPTY) -------------> IMPLICIT_OPEN
//   IMPLICIT_OPEN/EXPLICIT_OPEN --Close--> CLOSED --write--> IMPLICIT_OPEN
//   any open/closed --Finish or wp==capacity--> FULL --Reset--> EMPTY
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/status.hpp"

namespace conzone {

enum class ZoneState : std::uint8_t {
  kEmpty = 0,
  kImplicitOpen,
  kExplicitOpen,
  kClosed,
  kFull,
};

std::string_view ZoneStateName(ZoneState s);

struct ZoneLimitsConfig {
  std::uint64_t zone_size_bytes = 0;      ///< LBA-space span of one zone.
  std::uint64_t zone_capacity_bytes = 0;  ///< Writable bytes (<= size).
  std::uint32_t num_zones = 0;
  std::uint32_t max_open_zones = 6;
  std::uint32_t max_active_zones = 12;

  Status Validate() const;
};

struct ZoneInfo {
  ZoneState state = ZoneState::kEmpty;
  std::uint64_t write_pointer = 0;  ///< Byte offset within the zone.
  std::uint64_t resets = 0;
};

class ZoneManager {
 public:
  explicit ZoneManager(const ZoneLimitsConfig& config);

  const ZoneLimitsConfig& config() const { return cfg_; }

  /// Validate and account a write of `len` bytes at byte `offset_in_zone`.
  /// Must start exactly at the write pointer and fit the capacity;
  /// implicitly opens the zone (honoring open/active limits) and
  /// transitions to FULL when the capacity is reached.
  Status BeginWrite(ZoneId zone, std::uint64_t offset_in_zone, std::uint64_t len);

  /// Validate a read: [offset, offset+len) must lie below the write
  /// pointer (reading unwritten space is an error in ConZone, as in
  /// NVMeVirt's ZNS mode).
  Status CheckRead(ZoneId zone, std::uint64_t offset_in_zone, std::uint64_t len) const;

  Status ExplicitOpen(ZoneId zone);
  Status Close(ZoneId zone);
  Status Finish(ZoneId zone);
  Status Reset(ZoneId zone);

  const ZoneInfo& Info(ZoneId zone) const;
  std::uint32_t open_count() const { return open_; }
  std::uint32_t active_count() const { return active_; }

  /// All zones, for zone-report style listings.
  const std::vector<ZoneInfo>& zones() const { return zones_; }

  // --- Power-loss remount ---
  //
  // After a cut, open/closed distinctions are gone (they lived in
  // volatile controller state); zones come back EMPTY, CLOSED or FULL
  // from the durable write pointer alone, as ZNS mandates after an
  // unexpected power off.

  /// Overwrite one zone's host-visible state from the write pointer the
  /// recovery scan reconciled. Keeps the reset counter.
  void RestoreAtMount(ZoneId zone, std::uint64_t write_pointer);

  /// Recompute the open/active accounting after a batch of
  /// RestoreAtMount calls. Active zones may transiently exceed
  /// max_active_zones at mount; BeginWrite enforces the limit for any
  /// zone opened afterwards.
  void RecountAfterMount();

 private:
  Status CheckId(ZoneId zone) const;
  bool IsOpen(ZoneState s) const {
    return s == ZoneState::kImplicitOpen || s == ZoneState::kExplicitOpen;
  }
  bool IsActive(ZoneState s) const { return IsOpen(s) || s == ZoneState::kClosed; }
  /// Make room for opening one more zone, closing an implicitly open zone
  /// if allowed. Fails when limits are pinned by explicitly open zones.
  Status EnsureOpenSlot();

  ZoneLimitsConfig cfg_;
  std::vector<ZoneInfo> zones_;
  std::uint32_t open_ = 0;
  std::uint32_t active_ = 0;
};

}  // namespace conzone
