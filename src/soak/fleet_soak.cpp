#include "soak/fleet_soak.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "exec/executor.hpp"

namespace conzone {

namespace {

/// Per-shard slot a worker fills in; merged only after the join.
struct FleetShardOutcome {
  Status status = Status::Ok();
  FleetShardResult result;
};

/// One shard's whole soak: workload slices between scheduled cuts, each
/// cut followed by the full remount pipeline and the consistency
/// checker. The loop is the same shape examples/crash_study drives on a
/// single device — that is the identity the shard-0 test pins down.
FleetShardOutcome SoakOneShard(const FleetSoakPlan& plan,
                               std::uint32_t shard_id) {
  FleetShardOutcome out;
  FleetShardResult& r = out.result;
  r.shard_id = shard_id;

  const ConZoneConfig cfg = FleetSoakRunner::ConfigForShard(plan, shard_id);
  CrashHarness h(cfg, FleetSoakRunner::WorkloadForShard(plan, shard_id));
  if (Status st = h.Init(); !st.ok()) {
    out.status = std::move(st);
    return out;
  }

  // The cut stream is a pure function of the shard's derived fault seed
  // and draws from FaultModel's private decorrelated stream, so it
  // never shifts a fault draw of an otherwise identical run.
  FaultModel schedule;
  if (plan.schedule == CutScheduleKind::kRandomInterval) {
    FaultConfig sc;
    sc.seed = cfg.fault.seed;
    sc.power_cut_mean_interval_ns = plan.cut_interval_ns;
    schedule = FaultModel(sc);
  }
  auto next_cut_after = [&](SimTime t) {
    return plan.schedule == CutScheduleKind::kRandomInterval
               ? schedule.NextCutAfter(t)
               : t + SimDuration::Nanos(plan.cut_interval_ns);
  };

  const std::size_t slice = plan.ops_per_slice == 0 ? 1 : plan.ops_per_slice;
  SimTime next_cut = next_cut_after(h.now());
  while (r.cuts < plan.cuts_per_shard) {
    if (Status st = h.RunOps(slice); !st.ok()) {
      // Degraded-shard policy: a device that latched read-only cannot
      // run the write-heavy stream any further — a survivor, not a
      // failure. Anything else is genuine.
      if (h.device().read_only()) break;
      out.status = std::move(st);
      return out;
    }
    r.ops += slice;
    if (h.now() < next_cut) continue;  // keep running until the alarm
    // The alarm can land inside an idle gap that ended before the last
    // submission; PowerCut refuses to rewind, so clamp forward.
    const SimTime at = Later(next_cut, h.last_submit());
    if (Status st = h.CutAt(at); !st.ok()) {
      out.status = std::move(st);
      return out;
    }
    ++r.cuts;
    // Remount + full crash-consistency verification before the shard
    // resumes. A violation here is the soak's whole point of failure.
    if (Status st = h.RecoverAndVerify(); !st.ok()) {
      out.status = std::move(st);
      return out;
    }
    ++r.remounts;
    ++r.checker_passes;
    next_cut = next_cut_after(h.now());
  }

  r.read_only = h.device().read_only();
  r.fingerprint = h.fingerprint();
  r.end_time = h.now();
  r.recovery = h.device().Recovery();
  r.reliability = h.device().Reliability();
  r.device = h.device().Stats();
  return out;
}

}  // namespace

FleetSoakRunner::FleetSoakRunner(FleetSoakPlan plan) : plan_(std::move(plan)) {}

ConZoneConfig FleetSoakRunner::ConfigForShard(const FleetSoakPlan& plan,
                                              std::uint32_t shard_id) {
  ConZoneConfig cfg = plan.config;
  if (plan.consumer_faults) {
    // ConsumerDefaults rates; everything the template already decided —
    // seed, spare floor, wear coupling, power-loss knobs — survives.
    FaultConfig fc = FaultConfig::ConsumerDefaults();
    fc.seed = cfg.fault.seed;
    fc.read_only_spare_floor_blocks = cfg.fault.read_only_spare_floor_blocks;
    fc.rated_endurance = cfg.fault.rated_endurance;
    fc.wear_slope = cfg.fault.wear_slope;
    fc.power_loss = cfg.fault.power_loss;
    fc.power_cut_mean_interval_ns = cfg.fault.power_cut_mean_interval_ns;
    cfg.fault = fc;
  }
  if (plan.wear_ramp_endurance > 0) {
    cfg.fault.rated_endurance = plan.wear_ramp_endurance;
    cfg.fault.wear_slope = plan.wear_ramp_slope;
  }
  // The harness forces journaling on anyway; bake it in so the derived
  // config reproduces the shard standalone.
  cfg.fault.power_loss = true;
  if (plan.checkpoint_interval_entries > 0) {
    cfg.l2p_log.enabled = true;
    cfg.checkpoint.enabled = true;
    const std::uint32_t levels =
        plan.checkpoint_stagger_levels == 0 ? 1 : plan.checkpoint_stagger_levels;
    cfg.checkpoint.interval_entries = plan.checkpoint_interval_entries
                                      << (shard_id % levels);
  }
  // Seed derivation last: identity at shard 0, decorrelated fault
  // stream elsewhere — the same contract ShardedRunner runs under.
  return cfg.ForShard(shard_id, plan.master_seed);
}

CrashHarness::Options FleetSoakRunner::WorkloadForShard(
    const FleetSoakPlan& plan, std::uint32_t shard_id) {
  CrashHarness::Options o = plan.workload;
  if (shard_id != 0) {  // identity: shard 0 == the single-device soak
    o.seed = MixSeeds(o.seed, plan.master_seed, shard_id);
  }
  return o;
}

Result<FleetSoakResult> FleetSoakRunner::Run() {
  if (plan_.shards == 0) {
    return Status::InvalidArgument("fleet soak: need at least one shard");
  }
  if (plan_.cut_interval_ns == 0) {
    return Status::InvalidArgument("fleet soak: cut interval must be > 0");
  }
  const std::uint32_t shards = plan_.shards;
  std::uint32_t threads = plan_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min(shards, hw == 0 ? 1u : static_cast<std::uint32_t>(hw));
  }
  threads = std::min(threads, shards);

  std::vector<FleetShardOutcome> outcomes(shards);
  // Shard ids are the executor's task ids; each outcome lands in its own
  // preallocated slot and the merge below runs after the join barrier,
  // in shard-id order — thread count cannot change any output bit.
  auto shard_task = [&](std::size_t id) {
    outcomes[id] = SoakOneShard(plan_, static_cast<std::uint32_t>(id));
  };
  if (plan_.executor != nullptr) {
    plan_.executor->Run(shards, shard_task);
  } else if (threads <= 1) {
    SerialExecutor().Run(shards, shard_task);
  } else {
    WorkStealingExecutor(threads).Run(shards, shard_task);
  }

  // Lowest failing shard wins — deterministic, unlike first-to-fail.
  for (std::uint32_t i = 0; i < shards; ++i) {
    if (!outcomes[i].status.ok()) return std::move(outcomes[i].status);
  }

  FleetSoakResult merged;
  merged.shards.reserve(shards);
  std::uint64_t fp = 0xCBF29CE484222325ull;
  auto mix = [&fp](std::uint64_t v) { fp = (fp ^ v) * 0x100000001B3ull; };
  for (std::uint32_t i = 0; i < shards; ++i) {
    FleetShardResult& s = outcomes[i].result;
    merged.recovery.Merge(s.recovery);
    merged.reliability.Merge(s.reliability);
    merged.redundancy.Merge(s.redundancy);
    merged.device.Merge(s.device);
    merged.total_ops += s.ops;
    merged.total_cuts += s.cuts;
    merged.total_remounts += s.remounts;
    merged.read_only_shards += s.read_only ? 1u : 0u;
    merged.end_time = std::max(merged.end_time, s.end_time);
    mix(s.shard_id);
    mix(s.fingerprint);
    mix(s.cuts);
    mix(s.end_time.ns());
    merged.shards.push_back(std::move(s));
  }
  merged.fleet_fingerprint = fp;
  return merged;
}

}  // namespace conzone
