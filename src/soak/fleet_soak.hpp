// Fleet-scale crash/recovery soak (DESIGN.md §13).
//
// ConZone's consumer premise is that failures are the steady state: worn
// media faults, abrupt power cuts, and constrained resources interact.
// This subsystem proves the whole reliability stack holds at fleet
// scale: N independent device shards run the crash harness's mixed op
// stream (writes/flushes/resets/finishes/conventional overwrites) under
// ConsumerDefaults() fault rates with a wear ramp — fault probabilities
// escalate as erase counts climb past the rated endurance — while a
// deterministic per-shard power-cut schedule cuts power mid-workload.
// Every cut runs the full PowerCut/Recover pipeline and then the
// crash-consistency checker before the shard's workload resumes; a
// shard that degrades to read-only is recorded as a survivor, not a
// fatal error.
//
// Determinism contract (same as ShardedRunner, DESIGN.md §7):
//   * A shard's entire soak is a pure function of
//     (plan, shard_id): its config, fault stream, cut schedule,
//     checkpoint cadence and op stream all derive from the plan via
//     MixSeeds. Shard 0 is the identity derivation — bit-identical to a
//     single-device soak of ConfigForShard(plan, 0) under
//     WorkloadForShard(plan, 0).
//   * Shard tasks run on the shared work-stealing executor; results
//     land in preallocated slots and merge after the join in shard-id
//     order, so merged fleet stats are bit-identical at any thread
//     count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "core/config.hpp"
#include "core/crash_checker.hpp"
#include "fault/fault_model.hpp"

namespace conzone {

class Executor;

/// Everything needed to reproduce a fleet soak.
struct FleetSoakPlan {
  /// Template device configuration; shard i runs
  /// FleetSoakRunner::ConfigForShard(plan, i): ForShard seed
  /// derivation plus the fault/wear/checkpoint policy below.
  ConZoneConfig config;
  std::uint32_t shards = 8;
  /// Scheduled power cuts each shard must take (its workload keeps
  /// running between cuts; a read-only degradation ends the shard's
  /// soak early as a survivor).
  std::uint32_t cuts_per_shard = 100;
  CutScheduleKind schedule = CutScheduleKind::kRandomInterval;
  /// Fixed: exact simulated-time gap between a recovery and the next
  /// cut. Random: mean of the exponential gap, drawn from the shard's
  /// decorrelated FaultModel cut stream.
  std::uint64_t cut_interval_ns = 10'000'000;
  /// Workload ops per scheduling slice: the shard runs this many ops,
  /// then checks whether the cut alarm has fired. Granularity only —
  /// the cut lands at the scheduled time either way.
  std::size_t ops_per_slice = 16;
  /// Per-shard op mix (CrashHarness). The seed is re-derived per shard
  /// (shard 0 keeps it — the identity contract).
  CrashHarness::Options workload;

  /// Overwrite the template's fault rates with ConsumerDefaults()
  /// (keeping the template's seed and read-only floor) — the soak's
  /// documented regime. Off = the template's own rates run unmodified.
  bool consumer_faults = true;
  /// Wear ramp: past this many erases every fault probability grows by
  /// `wear_ramp_slope` per extra erase (FaultConfig wear coupling).
  /// 0 = leave the template's own endurance/slope untouched.
  std::uint32_t wear_ramp_endurance = 16;
  double wear_ramp_slope = 0.02;

  /// Per-shard checkpoint cadence: shard i checkpoints every
  /// (checkpoint_interval_entries << (i % checkpoint_stagger_levels))
  /// flushed L2P-log entries, so the fleet covers a cadence spread in
  /// one soak. Enables the L2P log + checkpointing on every shard;
  /// 0 = leave the template's checkpoint config untouched.
  std::uint64_t checkpoint_interval_entries = 1024;
  std::uint32_t checkpoint_stagger_levels = 4;

  /// Worker threads; 0 = min(shards, hardware_concurrency). Ignored
  /// when `executor` is set.
  std::uint32_t threads = 0;
  /// Run shard tasks on this shared executor (non-owning). Null = the
  /// runner constructs a WorkStealingExecutor with `threads` lanes.
  Executor* executor = nullptr;
  std::uint64_t master_seed = 1;
};

/// One shard's soak outcome, kept per shard for variance analysis
/// (remount-latency spread, fault-rate spread, checkpoint ages).
struct FleetShardResult {
  std::uint32_t shard_id = 0;
  std::uint64_t ops = 0;        ///< Workload ops completed.
  std::uint32_t cuts = 0;       ///< Scheduled cuts taken.
  std::uint32_t remounts = 0;   ///< Recover() remounts completed.
  /// Remounts the crash-consistency checker verified (== remounts on a
  /// passing soak; a violation fails the run, not this counter).
  std::uint32_t checker_passes = 0;
  /// Survivor flag: the shard degraded to read-only (healthy spare
  /// floor) and ended its soak early. Reported, never fatal.
  bool read_only = false;
  /// Checker FNV over every recovered state this shard verified.
  std::uint64_t fingerprint = 0;
  SimTime end_time;
  RecoveryStats recovery;
  ReliabilityStats reliability;
  /// Volume-level redundancy counters; zero on the bare ConZone shards
  /// this soak drives today (kept in the result so volume-backed shards
  /// can aggregate through the same path).
  RedundancyStats redundancy;
  StatsSnapshot device;
};

/// Merge of the whole fleet, in fixed shard-id order.
struct FleetSoakResult {
  std::vector<FleetShardResult> shards;
  RecoveryStats recovery;        ///< Merged remount/checkpoint counters.
  ReliabilityStats reliability;  ///< Merged fault/recovery counters.
  RedundancyStats redundancy;    ///< Merged (zero for bare shards).
  StatsSnapshot device;          ///< Merged device counters.
  std::uint64_t total_ops = 0;
  std::uint64_t total_cuts = 0;
  std::uint64_t total_remounts = 0;
  std::uint32_t read_only_shards = 0;  ///< Survivors, not failures.
  /// Order-sensitive FNV over every shard's (id, fingerprint, cuts,
  /// end time) — one number two fleet runs can be compared by.
  std::uint64_t fleet_fingerprint = 0;
  SimTime end_time;  ///< Max over shards.
};

class FleetSoakRunner {
 public:
  explicit FleetSoakRunner(FleetSoakPlan plan);

  /// Run every shard and merge. Only genuine failures (a consistency
  /// violation, a device error that is not the read-only latch) fail
  /// the run; the lowest-numbered failing shard's status is returned.
  Result<FleetSoakResult> Run();

  const FleetSoakPlan& plan() const { return plan_; }

  /// The exact device configuration shard `shard_id` soaks: ForShard
  /// seed derivation + ConsumerDefaults rates + wear ramp + the shard's
  /// staggered checkpoint cadence + power-loss journaling. Exposed so
  /// tests can replay one shard as a plain single-device soak.
  static ConZoneConfig ConfigForShard(const FleetSoakPlan& plan,
                                      std::uint32_t shard_id);

  /// The op-mix options shard `shard_id` runs (seed re-derived via
  /// MixSeeds; shard 0 keeps the template seed).
  static CrashHarness::Options WorkloadForShard(const FleetSoakPlan& plan,
                                                std::uint32_t shard_id);

 private:
  FleetSoakPlan plan_;
};

}  // namespace conzone
