# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/flash_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_zns_test[1]_include.cmake")
include("/root/repo/build/tests/gc_layout_test[1]_include.cmake")
include("/root/repo/build/tests/legacy_femu_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/device_core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/conventional_zone_test[1]_include.cmake")
include("/root/repo/build/tests/device_param_test[1]_include.cmake")
include("/root/repo/build/tests/read_path_test[1]_include.cmake")
