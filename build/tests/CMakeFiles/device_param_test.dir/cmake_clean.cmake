file(REMOVE_RECURSE
  "CMakeFiles/device_param_test.dir/device_param_test.cpp.o"
  "CMakeFiles/device_param_test.dir/device_param_test.cpp.o.d"
  "device_param_test"
  "device_param_test.pdb"
  "device_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
