# Empty compiler generated dependencies file for device_param_test.
# This may be replaced when dependencies are built.
