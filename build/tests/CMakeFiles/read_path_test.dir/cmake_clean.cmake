file(REMOVE_RECURSE
  "CMakeFiles/read_path_test.dir/read_path_test.cpp.o"
  "CMakeFiles/read_path_test.dir/read_path_test.cpp.o.d"
  "read_path_test"
  "read_path_test.pdb"
  "read_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
