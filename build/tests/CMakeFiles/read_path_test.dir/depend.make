# Empty dependencies file for read_path_test.
# This may be replaced when dependencies are built.
