# Empty compiler generated dependencies file for device_core_test.
# This may be replaced when dependencies are built.
