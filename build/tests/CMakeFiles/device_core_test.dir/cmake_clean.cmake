file(REMOVE_RECURSE
  "CMakeFiles/device_core_test.dir/device_core_test.cpp.o"
  "CMakeFiles/device_core_test.dir/device_core_test.cpp.o.d"
  "device_core_test"
  "device_core_test.pdb"
  "device_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
