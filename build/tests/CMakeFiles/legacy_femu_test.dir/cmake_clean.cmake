file(REMOVE_RECURSE
  "CMakeFiles/legacy_femu_test.dir/legacy_femu_test.cpp.o"
  "CMakeFiles/legacy_femu_test.dir/legacy_femu_test.cpp.o.d"
  "legacy_femu_test"
  "legacy_femu_test.pdb"
  "legacy_femu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_femu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
