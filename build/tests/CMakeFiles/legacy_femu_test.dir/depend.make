# Empty dependencies file for legacy_femu_test.
# This may be replaced when dependencies are built.
