# Empty dependencies file for buffer_zns_test.
# This may be replaced when dependencies are built.
