file(REMOVE_RECURSE
  "CMakeFiles/buffer_zns_test.dir/buffer_zns_test.cpp.o"
  "CMakeFiles/buffer_zns_test.dir/buffer_zns_test.cpp.o.d"
  "buffer_zns_test"
  "buffer_zns_test.pdb"
  "buffer_zns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_zns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
