# Empty dependencies file for conventional_zone_test.
# This may be replaced when dependencies are built.
