file(REMOVE_RECURSE
  "CMakeFiles/conventional_zone_test.dir/conventional_zone_test.cpp.o"
  "CMakeFiles/conventional_zone_test.dir/conventional_zone_test.cpp.o.d"
  "conventional_zone_test"
  "conventional_zone_test.pdb"
  "conventional_zone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conventional_zone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
