file(REMOVE_RECURSE
  "CMakeFiles/gc_layout_test.dir/gc_layout_test.cpp.o"
  "CMakeFiles/gc_layout_test.dir/gc_layout_test.cpp.o.d"
  "gc_layout_test"
  "gc_layout_test.pdb"
  "gc_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
