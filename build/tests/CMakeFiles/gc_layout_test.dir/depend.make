# Empty dependencies file for gc_layout_test.
# This may be replaced when dependencies are built.
