file(REMOVE_RECURSE
  "CMakeFiles/f2fs_metadata_study.dir/f2fs_metadata_study.cpp.o"
  "CMakeFiles/f2fs_metadata_study.dir/f2fs_metadata_study.cpp.o.d"
  "f2fs_metadata_study"
  "f2fs_metadata_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2fs_metadata_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
