# Empty dependencies file for f2fs_metadata_study.
# This may be replaced when dependencies are built.
