file(REMOVE_RECURSE
  "CMakeFiles/gc_pressure_study.dir/gc_pressure_study.cpp.o"
  "CMakeFiles/gc_pressure_study.dir/gc_pressure_study.cpp.o.d"
  "gc_pressure_study"
  "gc_pressure_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_pressure_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
