# Empty dependencies file for gc_pressure_study.
# This may be replaced when dependencies are built.
