# Empty compiler generated dependencies file for read_range_study.
# This may be replaced when dependencies are built.
