file(REMOVE_RECURSE
  "CMakeFiles/read_range_study.dir/read_range_study.cpp.o"
  "CMakeFiles/read_range_study.dir/read_range_study.cpp.o.d"
  "read_range_study"
  "read_range_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_range_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
