# Empty dependencies file for zone_switch_study.
# This may be replaced when dependencies are built.
