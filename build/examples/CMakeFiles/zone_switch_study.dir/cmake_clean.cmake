file(REMOVE_RECURSE
  "CMakeFiles/zone_switch_study.dir/zone_switch_study.cpp.o"
  "CMakeFiles/zone_switch_study.dir/zone_switch_study.cpp.o.d"
  "zone_switch_study"
  "zone_switch_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_switch_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
