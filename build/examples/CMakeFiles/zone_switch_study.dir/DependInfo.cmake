
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/zone_switch_study.cpp" "examples/CMakeFiles/zone_switch_study.dir/zone_switch_study.cpp.o" "gcc" "examples/CMakeFiles/zone_switch_study.dir/zone_switch_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/legacy/CMakeFiles/conzone_legacy.dir/DependInfo.cmake"
  "/root/repo/build/src/femu/CMakeFiles/conzone_femu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/conzone_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/conzone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/conzone_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/conzone_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/conzone_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/conzone_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/conzone_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/zns/CMakeFiles/conzone_zns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/conzone_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
