# Empty dependencies file for bench_ablation_write_path.
# This may be replaced when dependencies are built.
