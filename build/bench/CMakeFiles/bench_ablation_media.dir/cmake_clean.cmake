file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_media.dir/bench_ablation_media.cpp.o"
  "CMakeFiles/bench_ablation_media.dir/bench_ablation_media.cpp.o.d"
  "bench_ablation_media"
  "bench_ablation_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
