# Empty dependencies file for bench_ablation_media.
# This may be replaced when dependencies are built.
