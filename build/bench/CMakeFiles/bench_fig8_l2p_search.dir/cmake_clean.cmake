file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_l2p_search.dir/bench_fig8_l2p_search.cpp.o"
  "CMakeFiles/bench_fig8_l2p_search.dir/bench_fig8_l2p_search.cpp.o.d"
  "bench_fig8_l2p_search"
  "bench_fig8_l2p_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_l2p_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
