# Empty dependencies file for bench_fig8_l2p_search.
# This may be replaced when dependencies are built.
