file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_buffer_conflict.dir/bench_fig6b_buffer_conflict.cpp.o"
  "CMakeFiles/bench_fig6b_buffer_conflict.dir/bench_fig6b_buffer_conflict.cpp.o.d"
  "bench_fig6b_buffer_conflict"
  "bench_fig6b_buffer_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_buffer_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
