# Empty dependencies file for bench_fig6b_buffer_conflict.
# This may be replaced when dependencies are built.
