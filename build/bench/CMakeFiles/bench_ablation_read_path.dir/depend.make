# Empty dependencies file for bench_ablation_read_path.
# This may be replaced when dependencies are built.
