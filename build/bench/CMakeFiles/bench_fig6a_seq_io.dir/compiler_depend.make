# Empty compiler generated dependencies file for bench_fig6a_seq_io.
# This may be replaced when dependencies are built.
