file(REMOVE_RECURSE
  "libconzone_common.a"
)
