file(REMOVE_RECURSE
  "CMakeFiles/conzone_common.dir/rng.cpp.o"
  "CMakeFiles/conzone_common.dir/rng.cpp.o.d"
  "CMakeFiles/conzone_common.dir/stats.cpp.o"
  "CMakeFiles/conzone_common.dir/stats.cpp.o.d"
  "CMakeFiles/conzone_common.dir/status.cpp.o"
  "CMakeFiles/conzone_common.dir/status.cpp.o.d"
  "CMakeFiles/conzone_common.dir/time.cpp.o"
  "CMakeFiles/conzone_common.dir/time.cpp.o.d"
  "libconzone_common.a"
  "libconzone_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
