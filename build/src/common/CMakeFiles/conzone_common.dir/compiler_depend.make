# Empty compiler generated dependencies file for conzone_common.
# This may be replaced when dependencies are built.
