# Empty compiler generated dependencies file for conzone_gc.
# This may be replaced when dependencies are built.
