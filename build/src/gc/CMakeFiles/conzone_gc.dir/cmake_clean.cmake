file(REMOVE_RECURSE
  "CMakeFiles/conzone_gc.dir/slc_gc.cpp.o"
  "CMakeFiles/conzone_gc.dir/slc_gc.cpp.o.d"
  "libconzone_gc.a"
  "libconzone_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
