file(REMOVE_RECURSE
  "libconzone_gc.a"
)
