file(REMOVE_RECURSE
  "CMakeFiles/conzone_sim.dir/event_queue.cpp.o"
  "CMakeFiles/conzone_sim.dir/event_queue.cpp.o.d"
  "libconzone_sim.a"
  "libconzone_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
