file(REMOVE_RECURSE
  "libconzone_sim.a"
)
