# Empty dependencies file for conzone_sim.
# This may be replaced when dependencies are built.
