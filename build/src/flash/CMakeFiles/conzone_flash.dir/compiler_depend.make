# Empty compiler generated dependencies file for conzone_flash.
# This may be replaced when dependencies are built.
