file(REMOVE_RECURSE
  "CMakeFiles/conzone_flash.dir/array.cpp.o"
  "CMakeFiles/conzone_flash.dir/array.cpp.o.d"
  "CMakeFiles/conzone_flash.dir/geometry.cpp.o"
  "CMakeFiles/conzone_flash.dir/geometry.cpp.o.d"
  "CMakeFiles/conzone_flash.dir/normal_allocator.cpp.o"
  "CMakeFiles/conzone_flash.dir/normal_allocator.cpp.o.d"
  "CMakeFiles/conzone_flash.dir/slc_allocator.cpp.o"
  "CMakeFiles/conzone_flash.dir/slc_allocator.cpp.o.d"
  "CMakeFiles/conzone_flash.dir/superblock.cpp.o"
  "CMakeFiles/conzone_flash.dir/superblock.cpp.o.d"
  "CMakeFiles/conzone_flash.dir/timing_engine.cpp.o"
  "CMakeFiles/conzone_flash.dir/timing_engine.cpp.o.d"
  "libconzone_flash.a"
  "libconzone_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
