
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flash/array.cpp" "src/flash/CMakeFiles/conzone_flash.dir/array.cpp.o" "gcc" "src/flash/CMakeFiles/conzone_flash.dir/array.cpp.o.d"
  "/root/repo/src/flash/geometry.cpp" "src/flash/CMakeFiles/conzone_flash.dir/geometry.cpp.o" "gcc" "src/flash/CMakeFiles/conzone_flash.dir/geometry.cpp.o.d"
  "/root/repo/src/flash/normal_allocator.cpp" "src/flash/CMakeFiles/conzone_flash.dir/normal_allocator.cpp.o" "gcc" "src/flash/CMakeFiles/conzone_flash.dir/normal_allocator.cpp.o.d"
  "/root/repo/src/flash/slc_allocator.cpp" "src/flash/CMakeFiles/conzone_flash.dir/slc_allocator.cpp.o" "gcc" "src/flash/CMakeFiles/conzone_flash.dir/slc_allocator.cpp.o.d"
  "/root/repo/src/flash/superblock.cpp" "src/flash/CMakeFiles/conzone_flash.dir/superblock.cpp.o" "gcc" "src/flash/CMakeFiles/conzone_flash.dir/superblock.cpp.o.d"
  "/root/repo/src/flash/timing_engine.cpp" "src/flash/CMakeFiles/conzone_flash.dir/timing_engine.cpp.o" "gcc" "src/flash/CMakeFiles/conzone_flash.dir/timing_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/conzone_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/conzone_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
