file(REMOVE_RECURSE
  "libconzone_flash.a"
)
