file(REMOVE_RECURSE
  "libconzone_zns.a"
)
