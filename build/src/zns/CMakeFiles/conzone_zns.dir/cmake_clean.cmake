file(REMOVE_RECURSE
  "CMakeFiles/conzone_zns.dir/zone.cpp.o"
  "CMakeFiles/conzone_zns.dir/zone.cpp.o.d"
  "libconzone_zns.a"
  "libconzone_zns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_zns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
