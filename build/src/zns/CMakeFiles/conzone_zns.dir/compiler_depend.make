# Empty compiler generated dependencies file for conzone_zns.
# This may be replaced when dependencies are built.
