file(REMOVE_RECURSE
  "libconzone_workload.a"
)
