# Empty compiler generated dependencies file for conzone_workload.
# This may be replaced when dependencies are built.
