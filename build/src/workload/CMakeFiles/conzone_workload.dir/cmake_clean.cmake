file(REMOVE_RECURSE
  "CMakeFiles/conzone_workload.dir/fio.cpp.o"
  "CMakeFiles/conzone_workload.dir/fio.cpp.o.d"
  "libconzone_workload.a"
  "libconzone_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
