# Empty dependencies file for conzone_legacy.
# This may be replaced when dependencies are built.
