
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legacy/legacy_device.cpp" "src/legacy/CMakeFiles/conzone_legacy.dir/legacy_device.cpp.o" "gcc" "src/legacy/CMakeFiles/conzone_legacy.dir/legacy_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/conzone_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/conzone_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/conzone_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/conzone_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/conzone_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/conzone_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/conzone_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/zns/CMakeFiles/conzone_zns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
