file(REMOVE_RECURSE
  "CMakeFiles/conzone_legacy.dir/legacy_device.cpp.o"
  "CMakeFiles/conzone_legacy.dir/legacy_device.cpp.o.d"
  "libconzone_legacy.a"
  "libconzone_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
