file(REMOVE_RECURSE
  "libconzone_legacy.a"
)
