file(REMOVE_RECURSE
  "libconzone_core.a"
)
