# Empty dependencies file for conzone_core.
# This may be replaced when dependencies are built.
