file(REMOVE_RECURSE
  "CMakeFiles/conzone_core.dir/config.cpp.o"
  "CMakeFiles/conzone_core.dir/config.cpp.o.d"
  "CMakeFiles/conzone_core.dir/device.cpp.o"
  "CMakeFiles/conzone_core.dir/device.cpp.o.d"
  "CMakeFiles/conzone_core.dir/zone_layout.cpp.o"
  "CMakeFiles/conzone_core.dir/zone_layout.cpp.o.d"
  "libconzone_core.a"
  "libconzone_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
