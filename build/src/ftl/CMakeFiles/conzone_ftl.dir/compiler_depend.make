# Empty compiler generated dependencies file for conzone_ftl.
# This may be replaced when dependencies are built.
