file(REMOVE_RECURSE
  "CMakeFiles/conzone_ftl.dir/l2p_cache.cpp.o"
  "CMakeFiles/conzone_ftl.dir/l2p_cache.cpp.o.d"
  "CMakeFiles/conzone_ftl.dir/mapping.cpp.o"
  "CMakeFiles/conzone_ftl.dir/mapping.cpp.o.d"
  "CMakeFiles/conzone_ftl.dir/translator.cpp.o"
  "CMakeFiles/conzone_ftl.dir/translator.cpp.o.d"
  "libconzone_ftl.a"
  "libconzone_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
