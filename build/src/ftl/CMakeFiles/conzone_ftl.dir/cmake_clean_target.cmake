file(REMOVE_RECURSE
  "libconzone_ftl.a"
)
