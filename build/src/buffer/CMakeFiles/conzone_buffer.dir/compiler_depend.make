# Empty compiler generated dependencies file for conzone_buffer.
# This may be replaced when dependencies are built.
