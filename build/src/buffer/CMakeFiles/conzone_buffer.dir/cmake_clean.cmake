file(REMOVE_RECURSE
  "CMakeFiles/conzone_buffer.dir/write_buffer.cpp.o"
  "CMakeFiles/conzone_buffer.dir/write_buffer.cpp.o.d"
  "libconzone_buffer.a"
  "libconzone_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
