file(REMOVE_RECURSE
  "libconzone_buffer.a"
)
