file(REMOVE_RECURSE
  "libconzone_femu.a"
)
