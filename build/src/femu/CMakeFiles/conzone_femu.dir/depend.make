# Empty dependencies file for conzone_femu.
# This may be replaced when dependencies are built.
