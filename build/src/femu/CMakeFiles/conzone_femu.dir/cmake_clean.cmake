file(REMOVE_RECURSE
  "CMakeFiles/conzone_femu.dir/femu_device.cpp.o"
  "CMakeFiles/conzone_femu.dir/femu_device.cpp.o.d"
  "libconzone_femu.a"
  "libconzone_femu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conzone_femu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
