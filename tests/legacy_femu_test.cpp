// Tests for the two baseline devices: the Legacy traditional FTL and the
// FEMU behavioral model.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "femu/femu_device.hpp"
#include "legacy/legacy_device.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

LegacyConfig SmallLegacyCfg() {
  LegacyConfig cfg;
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

std::vector<std::uint64_t> Tokens(std::uint64_t first, std::uint64_t n,
                                  std::uint64_t salt = 0) {
  std::vector<std::uint64_t> t(n);
  for (std::uint64_t i = 0; i < n; ++i) t[i] = (first + i) * 7919 + salt;
  return t;
}

class LegacyDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dev = LegacyDevice::Create(SmallLegacyCfg());
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    dev_ = std::move(dev).value();
  }

  void WriteAt(std::uint64_t off, std::uint64_t len, SimTime& t, std::uint64_t salt = 0) {
    auto r = TestWrite(*dev_, off, len, t, Tokens(off / 4096, len / 4096, salt));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value();
  }

  void VerifyRead(std::uint64_t off, std::uint64_t len, SimTime& t,
                  std::uint64_t salt = 0) {
    std::vector<std::uint64_t> got;
    auto r = TestRead(*dev_, off, len, t, &got);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value();
    EXPECT_EQ(got, Tokens(off / 4096, len / 4096, salt));
  }

  std::unique_ptr<LegacyDevice> dev_;
};

TEST_F(LegacyDeviceTest, InfoExposesOverProvisionedCapacity) {
  const DeviceInfo di = dev_->info();
  EXPECT_EQ(di.zone_size_bytes, 0u);  // conventional device
  EXPECT_LT(di.capacity_bytes, dev_->config().geometry.NormalRegionBytes());
  EXPECT_GT(di.capacity_bytes, 0u);
}

TEST_F(LegacyDeviceTest, SequentialWriteReadRoundTrip) {
  SimTime t;
  WriteAt(0, 4 * kMiB, t);
  VerifyRead(0, 4 * kMiB, t);
}

TEST_F(LegacyDeviceTest, InPlaceUpdateInvalidatesOldCopy) {
  SimTime t;
  WriteAt(0, 512 * kKiB, t, 1);
  auto f1 = dev_->Flush(t);
  ASSERT_TRUE(f1.ok());
  t = f1.value();
  WriteAt(0, 512 * kKiB, t, 2);  // overwrite — legal on Legacy
  auto f2 = dev_->Flush(t);
  ASSERT_TRUE(f2.ok());
  t = f2.value();
  VerifyRead(0, 512 * kKiB, t, 2);
  EXPECT_GT(dev_->stats().overwrites, 0u);
}

TEST_F(LegacyDeviceTest, RandomSmallWritesLandInSlcAndReadBack) {
  SimTime t;
  // Non-contiguous 4 KiB writes break the aggregation stream; most land
  // in SLC after premature flushes.
  for (std::uint64_t i = 0; i < 32; ++i) {
    WriteAt((i * 37 % 64) * 64 * kKiB, 4096, t, 3);
  }
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok());
  t = f.value();
  EXPECT_GT(dev_->media_counters().slots_programmed_slc, 0u);
  for (std::uint64_t i = 0; i < 32; ++i) {
    VerifyRead((i * 37 % 64) * 64 * kKiB, 4096, t, 3);
  }
}

TEST_F(LegacyDeviceTest, GcMigratesLiveDataUnderRandomOverwrites) {
  SimTime t;
  // Random overwrites leave superblocks partially valid, so device-side
  // GC must move live data before erasing (Fig. 1 E.1 — the lifetime
  // cost the zone abstraction removes).
  const std::uint64_t region = 64 * kMiB;
  const std::uint64_t block = 512 * kKiB;
  std::map<std::uint64_t, std::uint64_t> last_salt;
  Rng rng(42);
  for (int i = 0; i < 900; ++i) {
    const std::uint64_t off = rng.NextBelow(region / block) * block;
    WriteAt(off, block, t, static_cast<std::uint64_t>(i));
    last_salt[off] = static_cast<std::uint64_t>(i);
  }
  EXPECT_GT(dev_->stats().gc_runs, 0u);
  EXPECT_GT(dev_->stats().gc_slots_migrated, 0u);
  // Every surviving version reads back intact.
  for (const auto& [off, salt] : last_salt) VerifyRead(off, block, t, salt);
}

TEST_F(LegacyDeviceTest, ReadOfUnwrittenFails) {
  SimTime t;
  auto r = TestRead(*dev_, 0, 4096, t);
  EXPECT_FALSE(r.ok());
}

TEST_F(LegacyDeviceTest, AlignmentEnforced) {
  SimTime t;
  EXPECT_FALSE(TestWrite(*dev_, 100, 4096, t).ok());
  EXPECT_FALSE(TestWrite(*dev_, 0, 100, t).ok());
  EXPECT_FALSE(TestWrite(*dev_, dev_->info().capacity_bytes, 4096, t).ok());
}

TEST_F(LegacyDeviceTest, PrefetchServesSequentialReads) {
  SimTime t;
  WriteAt(0, 8 * kMiB, t);
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok());
  t = f.value();
  dev_->ResetStats();
  VerifyRead(0, 8 * kMiB, t);
  // 2048 translations; the 1023-entry prefetch window keeps misses to a
  // handful per map page.
  EXPECT_LT(dev_->translator().stats().MissRate(), 0.01);
}

// --- FEMU model ---

class FemuDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dev = FemuModelDevice::Create(FemuConfig{});
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    dev_ = std::move(dev).value();
  }
  std::unique_ptr<FemuModelDevice> dev_;
};

TEST_F(FemuDeviceTest, InfoUsesNaturalZoneSize) {
  const DeviceInfo di = dev_->info();
  EXPECT_EQ(di.zone_size_bytes, 16128 * kKiB);  // no SLC patching in FEMU
  EXPECT_EQ(di.num_zones, 96u);
}

TEST_F(FemuDeviceTest, WriteReadRoundTrip) {
  SimTime t;
  auto w = TestWrite(*dev_, 0, 1 * kMiB, t, Tokens(0, 256));
  ASSERT_TRUE(w.ok());
  std::vector<std::uint64_t> got;
  auto r = TestRead(*dev_, 0, 1 * kMiB, w.value(), &got);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(got, Tokens(0, 256));
}

TEST_F(FemuDeviceTest, ZoneSemanticsEnforced) {
  SimTime t;
  ASSERT_TRUE(TestWrite(*dev_, 0, 4096, t).ok());
  EXPECT_FALSE(TestWrite(*dev_, 8192, 4096, t).ok());         // skips wp
  EXPECT_FALSE(TestRead(*dev_, 8192, 4096, t).ok());          // beyond wp
  ASSERT_TRUE(dev_->ResetZone(ZoneId{0}, t).ok());
  EXPECT_FALSE(TestRead(*dev_, 0, 4096, t).ok());              // reset zone
  EXPECT_TRUE(TestWrite(*dev_, 0, 4096, t).ok());              // wp rewound
}

TEST_F(FemuDeviceTest, KvmJitterDominatesSmallReads) {
  SimTime t;
  t = TestWrite(*dev_, 0, 1 * kMiB, t).value();
  LatencyHistogram lat;
  SimTime now = t + SimDuration::Millis(10);
  for (int i = 0; i < 200; ++i) {
    const SimTime end = TestRead(*dev_, 0, 4096, now).value();
    lat.Record(end - now);
    now = end;
  }
  // Base cost is overhead(25) + sense(32); jitter adds U(20,80) so the
  // mean sits near 107us and the spread is tens of microseconds — the
  // §IV-B "indispensable latency fluctuations".
  EXPECT_GT(lat.mean().us(), 85.0);
  EXPECT_GT(lat.max().us() - lat.min().us(), 30.0);
}

TEST_F(FemuDeviceTest, DeterministicAcrossRuns) {
  auto dev2 = FemuModelDevice::Create(FemuConfig{});
  ASSERT_TRUE(dev2.ok());
  SimTime a, b;
  a = TestWrite(*dev_, 0, 64 * kKiB, a).value();
  b = TestWrite(**dev2, 0, 64 * kKiB, b).value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(TestRead(*dev_, 0, 64 * kKiB, a).value(), TestRead(**dev2, 0, 64 * kKiB, b).value());
}

TEST_F(FemuDeviceTest, SequentialReadsSerializePages) {
  SimTime t;
  t = TestWrite(*dev_, 0, 1 * kMiB, t).value();
  const SimTime start = t + SimDuration::Millis(5);
  const SimTime small = TestRead(*dev_, 0, 16 * kKiB, start).value();
  const SimTime big = TestRead(*dev_, 0, 512 * kKiB, small).value();
  // 32 pages serially (sense + jitter each) dwarf a single page read.
  EXPECT_GT((big - small).us(), 10.0 * (small - start).us());
}

}  // namespace
}  // namespace conzone
