// Focused read-path tests: page-read coalescing and accounting, media
// visibility (SLC vs TLC latency through the full device), cross-zone
// reads, and host-link behavior.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "workload/fio.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

ConZoneConfig Cfg() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

class ReadPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dev = ConZoneDevice::Create(Cfg());
    ASSERT_TRUE(dev.ok());
    dev_ = std::move(dev).value();
  }
  std::unique_ptr<ConZoneDevice> dev_;
};

TEST_F(ReadPathTest, SequentialReadCoalescesSlotsIntoPageReads) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 0, 1 * kMiB, 384 * kKiB, &t).ok());
  t = TestRead(*dev_, 0, 512 * kKiB, t).value();  // warm the translations
  const std::uint64_t before = dev_->media_counters().page_reads;
  auto r = TestRead(*dev_, 0, 512 * kKiB, t, nullptr);
  ASSERT_TRUE(r.ok());
  // 512 KiB = 128 slots = exactly 32 flash pages, no metadata fetches
  // once the L2P entries are resident.
  EXPECT_EQ(dev_->media_counters().page_reads - before, 32u);
}

TEST_F(ReadPathTest, SingleSlotReadCostsOnePageRead) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 0, 1 * kMiB, 384 * kKiB, &t).ok());
  // Warm the translation.
  t = TestRead(*dev_, 0, 4096, t).value();
  const std::uint64_t before = dev_->media_counters().page_reads;
  ASSERT_TRUE(TestRead(*dev_, 0, 4096, t).ok());
  EXPECT_EQ(dev_->media_counters().page_reads - before, 1u);
}

TEST_F(ReadPathTest, SlcResidentDataReadsFasterThanTlc) {
  SimTime t;
  // 4 KiB flushed alone lands in SLC; a full superpage lands in TLC.
  t = TestWrite(*dev_, 0, 4096, t).value();
  t = dev_->Flush(t).value();
  t = TestWrite(*dev_, 2 * dev_->info().zone_size_bytes, 384 * kKiB, t).value();
  t = dev_->Flush(t).value();
  // Warm translations so only media latency differs.
  t = TestRead(*dev_, 0, 4096, t).value();
  t = TestRead(*dev_, 2 * dev_->info().zone_size_bytes, 4096, t).value();

  const SimTime s0 = t;
  const SimTime s1 = TestRead(*dev_, 0, 4096, s0).value();                      // SLC
  const SimTime t1 = TestRead(*dev_, 2 * dev_->info().zone_size_bytes, 4096, s1).value();
  const double slc_us = (s1 - s0).us();
  const double tlc_us = (t1 - s1).us();
  // Table II: 20us vs 32us sense; everything else is identical.
  EXPECT_NEAR(tlc_us - slc_us, 12.0, 2.0);
}

TEST_F(ReadPathTest, ReadMaySpanZoneBoundary) {
  SimTime t;
  const std::uint64_t zb = dev_->info().zone_size_bytes;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 0, zb, 512 * kKiB, &t).ok());
  ASSERT_TRUE(FioRunner::Precondition(*dev_, zb, 512 * kKiB, 512 * kKiB, &t).ok());
  std::vector<std::uint64_t> got;
  auto r = TestRead(*dev_, zb - 64 * kKiB, 128 * kKiB, t, &got);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(got.size(), 32u);
}

TEST_F(ReadPathTest, HostCountersTrackBytes) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 0, 2 * kMiB, 512 * kKiB, &t).ok());
  dev_->ResetStats();
  t = TestRead(*dev_, 0, 1 * kMiB, t).value();
  t = TestRead(*dev_, 0, 4096, t).value();
  EXPECT_EQ(dev_->stats().reads, 2u);
  EXPECT_EQ(dev_->stats().host_bytes_read, 1 * kMiB + 4096);
}

TEST_F(ReadPathTest, LargerReadsTakeLonger) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 0, 4 * kMiB, 512 * kKiB, &t).ok());
  t = TestRead(*dev_, 0, 4 * kMiB, t).value();  // warm everything
  const SimTime a0 = t;
  const SimTime a1 = TestRead(*dev_, 0, 16 * kKiB, a0).value();
  const SimTime b1 = TestRead(*dev_, 0, 1 * kMiB, a1).value();
  EXPECT_GT((b1 - a1).us(), (a1 - a0).us());
}

TEST_F(ReadPathTest, MultipleStrategyUnstableTailVisibleThroughDevice) {
  // §III-C R.2: "multiple flash reads for the mapping table ... may lead
  // to unstable read performance". Measure the same cold miss under
  // BITMAP and MULTIPLE: the page-mapped target costs 3 dependent
  // fetches under MULTIPLE.
  auto miss_cost = [&](L2pSearchStrategy s) {
    ConZoneConfig cfg = Cfg();
    cfg.translator.strategy = s;
    auto dev = ConZoneDevice::Create(cfg);
    EXPECT_TRUE(dev.ok());
    SimTime t;
    // Partially fill the *second* chunk of zone 0 so the data stays
    // page-mapped and sits away from the zone/chunk base entries.
    EXPECT_TRUE(
        FioRunner::Precondition(**dev, 0, 5 * kMiB, 512 * kKiB, &t).ok());
    const std::uint64_t target = 4 * kMiB + 512 * kKiB;  // chunk 1, page-mapped
    const SimTime start = t;
    const SimTime end = TestRead(**dev, target, 4096, start).value();
    return (end - start).us();
  };
  const double bitmap = miss_cost(L2pSearchStrategy::kBitmap);
  const double multiple = miss_cost(L2pSearchStrategy::kMultiple);
  EXPECT_GT(multiple, bitmap + 50.0);  // ≥ 2 extra dependent map fetches
}

TEST_F(ReadPathTest, PinnedKeepsZoneEntriesAcrossCachePressure) {
  ConZoneConfig cfg = Cfg();
  cfg.translator.strategy = L2pSearchStrategy::kPinned;
  cfg.l2p.capacity_bytes = 1 * kKiB;  // only 256 entries
  auto dev = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(dev.ok());
  SimTime t;
  const std::uint64_t zb = (*dev)->info().zone_size_bytes;
  ASSERT_TRUE(FioRunner::Precondition(**dev, 0, zb, 512 * kKiB, &t).ok());
  // The zone aggregate was pinned at generation; hammer unrelated
  // page-mapped data to thrash the cache...
  ASSERT_TRUE(FioRunner::Precondition(**dev, 2 * zb, 2 * kMiB, 512 * kKiB, &t).ok());
  Rng rng(3);
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t off = 2 * zb + rng.NextBelow(2 * kMiB / 4096) * 4096;
    t = TestRead(**dev, off, 4096, t).value();
  }
  // ...then zone 0 must still hit through its pinned entry.
  (*dev)->ResetStats();
  t = TestRead(**dev, 1 * kMiB, 4096, t).value();
  EXPECT_EQ((*dev)->translator().stats().cache_hits, 1u);
}

}  // namespace
}  // namespace conzone
