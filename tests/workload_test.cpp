// Tests for the FIO-like workload runner against the real ConZone device.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "workload/fio.hpp"

namespace conzone {
namespace {

ConZoneConfig SmallCfg() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

class FioRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dev = ConZoneDevice::Create(SmallCfg());
    ASSERT_TRUE(dev.ok());
    dev_ = std::move(dev).value();
  }
  std::unique_ptr<ConZoneDevice> dev_;
};

TEST_F(FioRunnerTest, IoCountStopsTheJob) {
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 128 * kKiB;
  w.region_size = 16 * kMiB;
  w.io_count = 10;
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().total.ops, 10u);
  EXPECT_EQ(r.value().total.bytes, 10 * 128 * kKiB);
  EXPECT_EQ(r.value().latency.count(), 10u);
}

TEST_F(FioRunnerTest, RuntimeStopsTheJob) {
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 384 * kKiB;
  w.region_size = 16 * kMiB;
  w.runtime = SimDuration::Millis(20);
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().total.ops, 0u);
  EXPECT_LE(r.value().end_time.ns(), SimDuration::Millis(25).ns() +
                                         SimDuration::Millis(20).ns());
}

TEST_F(FioRunnerTest, SequentialWritesAreZoneLegal) {
  // 48 KiB writes do not divide the zone size; the runner must clamp at
  // zone boundaries instead of issuing a crossing write.
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 48 * kKiB;
  w.region_size = 2 * 16 * kMiB;
  w.io_count = 684;  // 342 clamped IOs fill each 16 MiB zone exactly
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(dev_->zones().Info(ZoneId{0}).state, ZoneState::kFull);
  EXPECT_EQ(dev_->zones().Info(ZoneId{1}).state, ZoneState::kFull);
}

TEST_F(FioRunnerTest, RandomReadsStayInRegion) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 16 * kMiB, 16 * kMiB, 512 * kKiB, &t).ok());
  FioRunner fio(*dev_);
  JobSpec rd;
  rd.direction = IoDirection::kRead;
  rd.pattern = IoPattern::kRandom;
  rd.block_size = 4096;
  rd.region_offset = 16 * kMiB;
  rd.region_size = 16 * kMiB;
  rd.io_count = 500;
  auto r = fio.Run({rd}, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // any out-of-region read would fail
  EXPECT_EQ(r.value().total.ops, 500u);
}

TEST_F(FioRunnerTest, ZoneListConcatenatesZones) {
  SimTime t;
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 512 * kKiB;
  w.zone_list = {1, 3};
  w.io_count = 64;  // exactly two zones' worth
  auto r = fio.Run({w}, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(dev_->zones().Info(ZoneId{1}).state, ZoneState::kFull);
  EXPECT_EQ(dev_->zones().Info(ZoneId{3}).state, ZoneState::kFull);
  EXPECT_EQ(dev_->zones().Info(ZoneId{2}).state, ZoneState::kEmpty);
}

TEST_F(FioRunnerTest, ZoneSpanLimitsAccessWindow) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 0, 2 * kMiB, 512 * kKiB, &t).ok());
  FioRunner fio(*dev_);
  JobSpec rd;
  rd.direction = IoDirection::kRead;
  rd.pattern = IoPattern::kRandom;
  rd.block_size = 4096;
  rd.zone_list = {0};
  rd.zone_span_bytes = 2 * kMiB;
  rd.io_count = 300;
  auto r = fio.Run({rd}, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST_F(FioRunnerTest, WrapWithResetRewritesZones) {
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 512 * kKiB;
  w.zone_list = {0};
  w.io_count = 80;  // 2.5 passes over one 16 MiB zone
  w.reset_zones_on_wrap = true;
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(dev_->zones().Info(ZoneId{0}).resets, 2u);
}

TEST_F(FioRunnerTest, MultipleJobsInterleave) {
  FioRunner fio(*dev_);
  std::vector<JobSpec> jobs;
  for (int j = 0; j < 2; ++j) {
    JobSpec w;
    w.name = "j" + std::to_string(j);
    w.direction = IoDirection::kWrite;
    w.block_size = 384 * kKiB;
    w.zone_list = {static_cast<std::uint64_t>(j)};  // opposite buffers
    w.io_count = 20;
    jobs.push_back(w);
  }
  auto r = fio.Run(jobs);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().jobs.size(), 2u);
  // Concurrency: the two jobs' spans overlap rather than run back-to-back.
  const auto& a = r.value().jobs[0];
  const auto& b = r.value().jobs[1];
  EXPECT_LT(a.first_issue, b.last_completion);
  EXPECT_LT(b.first_issue, a.last_completion);
  const double serial =
      a.throughput.elapsed.seconds() + b.throughput.elapsed.seconds();
  EXPECT_LT(r.value().total.elapsed.seconds(), serial);
}

TEST_F(FioRunnerTest, ValidationRejectsBadSpecs) {
  FioRunner fio(*dev_);
  JobSpec w;  // empty region
  EXPECT_FALSE(fio.Run({w}).ok());
  w.region_size = 1 * kMiB;
  EXPECT_FALSE(fio.Run({w}).ok());  // no stop condition
  w.io_count = 1;
  w.block_size = 100;  // misaligned
  EXPECT_FALSE(fio.Run({w}).ok());
  w.block_size = 4096;
  w.region_offset = dev_->info().capacity_bytes;
  EXPECT_FALSE(fio.Run({w}).ok());  // beyond capacity
  JobSpec z;
  z.zone_list = {999};  // no such zone
  z.io_count = 1;
  EXPECT_FALSE(fio.Run({z}).ok());
}

TEST_F(FioRunnerTest, DeviceErrorsAbortTheRun) {
  FioRunner fio(*dev_);
  JobSpec rd;  // reading unwritten space fails inside the device
  rd.direction = IoDirection::kRead;
  rd.block_size = 4096;
  rd.region_size = 1 * kMiB;
  rd.io_count = 5;
  auto r = fio.Run({rd});
  EXPECT_FALSE(r.ok());
}

TEST_F(FioRunnerTest, PreconditionFillsAndFlushes) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 0, 16 * kMiB, 512 * kKiB, &t).ok());
  EXPECT_GT(t.ns(), 0u);
  EXPECT_EQ(dev_->zones().Info(ZoneId{0}).state, ZoneState::kFull);
  // Everything durable: no buffer-RAM reads afterwards.
  std::vector<std::uint64_t> got;
  auto r = dev_->Read(0, 16 * kMiB, t, &got);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(dev_->stats().buffer_ram_reads, 0u);
}

TEST_F(FioRunnerTest, ThinkTimeSpacesRequests) {
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 4096;
  w.region_size = 1 * kMiB;
  w.io_count = 10;
  w.think_time = SimDuration::Millis(1);
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().total.elapsed.ms(), 9.0);
}

}  // namespace
}  // namespace conzone
