// Tests for the FIO-like workload runner against the real ConZone device.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "workload/fio.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

ConZoneConfig SmallCfg() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

class FioRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dev = ConZoneDevice::Create(SmallCfg());
    ASSERT_TRUE(dev.ok());
    dev_ = std::move(dev).value();
  }
  std::unique_ptr<ConZoneDevice> dev_;
};

TEST_F(FioRunnerTest, IoCountStopsTheJob) {
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 128 * kKiB;
  w.region_size = 16 * kMiB;
  w.io_count = 10;
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().total.ops, 10u);
  EXPECT_EQ(r.value().total.bytes, 10 * 128 * kKiB);
  EXPECT_EQ(r.value().latency.count(), 10u);
}

TEST_F(FioRunnerTest, RuntimeStopsTheJob) {
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 384 * kKiB;
  w.region_size = 16 * kMiB;
  w.runtime = SimDuration::Millis(20);
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().total.ops, 0u);
  EXPECT_LE(r.value().end_time.ns(), SimDuration::Millis(25).ns() +
                                         SimDuration::Millis(20).ns());
}

TEST_F(FioRunnerTest, SequentialWritesAreZoneLegal) {
  // 48 KiB writes do not divide the zone size; the runner must clamp at
  // zone boundaries instead of issuing a crossing write.
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 48 * kKiB;
  w.region_size = 2 * 16 * kMiB;
  w.io_count = 684;  // 342 clamped IOs fill each 16 MiB zone exactly
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(dev_->zones().Info(ZoneId{0}).state, ZoneState::kFull);
  EXPECT_EQ(dev_->zones().Info(ZoneId{1}).state, ZoneState::kFull);
}

TEST_F(FioRunnerTest, RandomReadsStayInRegion) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 16 * kMiB, 16 * kMiB, 512 * kKiB, &t).ok());
  FioRunner fio(*dev_);
  JobSpec rd;
  rd.direction = IoDirection::kRead;
  rd.pattern = IoPattern::kRandom;
  rd.block_size = 4096;
  rd.region_offset = 16 * kMiB;
  rd.region_size = 16 * kMiB;
  rd.io_count = 500;
  auto r = fio.Run({rd}, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // any out-of-region read would fail
  EXPECT_EQ(r.value().total.ops, 500u);
}

TEST_F(FioRunnerTest, ZoneListConcatenatesZones) {
  SimTime t;
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 512 * kKiB;
  w.zone_list = {1, 3};
  w.io_count = 64;  // exactly two zones' worth
  auto r = fio.Run({w}, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(dev_->zones().Info(ZoneId{1}).state, ZoneState::kFull);
  EXPECT_EQ(dev_->zones().Info(ZoneId{3}).state, ZoneState::kFull);
  EXPECT_EQ(dev_->zones().Info(ZoneId{2}).state, ZoneState::kEmpty);
}

TEST_F(FioRunnerTest, ZoneSpanLimitsAccessWindow) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 0, 2 * kMiB, 512 * kKiB, &t).ok());
  FioRunner fio(*dev_);
  JobSpec rd;
  rd.direction = IoDirection::kRead;
  rd.pattern = IoPattern::kRandom;
  rd.block_size = 4096;
  rd.zone_list = {0};
  rd.zone_span_bytes = 2 * kMiB;
  rd.io_count = 300;
  auto r = fio.Run({rd}, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST_F(FioRunnerTest, WrapWithResetRewritesZones) {
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 512 * kKiB;
  w.zone_list = {0};
  w.io_count = 80;  // 2.5 passes over one 16 MiB zone
  w.reset_zones_on_wrap = true;
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(dev_->zones().Info(ZoneId{0}).resets, 2u);
}

TEST_F(FioRunnerTest, MultipleJobsInterleave) {
  FioRunner fio(*dev_);
  std::vector<JobSpec> jobs;
  for (int j = 0; j < 2; ++j) {
    JobSpec w;
    w.name = "j" + std::to_string(j);
    w.direction = IoDirection::kWrite;
    w.block_size = 384 * kKiB;
    w.zone_list = {static_cast<std::uint64_t>(j)};  // opposite buffers
    w.io_count = 20;
    jobs.push_back(w);
  }
  auto r = fio.Run(jobs);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().jobs.size(), 2u);
  // Concurrency: the two jobs' spans overlap rather than run back-to-back.
  const auto& a = r.value().jobs[0];
  const auto& b = r.value().jobs[1];
  EXPECT_LT(a.first_issue, b.last_completion);
  EXPECT_LT(b.first_issue, a.last_completion);
  const double serial =
      a.throughput.elapsed.seconds() + b.throughput.elapsed.seconds();
  EXPECT_LT(r.value().total.elapsed.seconds(), serial);
}

TEST_F(FioRunnerTest, ValidationRejectsBadSpecs) {
  FioRunner fio(*dev_);
  JobSpec w;  // empty region
  EXPECT_FALSE(fio.Run({w}).ok());
  w.region_size = 1 * kMiB;
  EXPECT_FALSE(fio.Run({w}).ok());  // no stop condition
  w.io_count = 1;
  w.block_size = 100;  // misaligned
  EXPECT_FALSE(fio.Run({w}).ok());
  w.block_size = 4096;
  w.region_offset = dev_->info().capacity_bytes;
  EXPECT_FALSE(fio.Run({w}).ok());  // beyond capacity
  JobSpec z;
  z.zone_list = {999};  // no such zone
  z.io_count = 1;
  EXPECT_FALSE(fio.Run({z}).ok());
}

TEST_F(FioRunnerTest, DeviceErrorsAbortTheRun) {
  FioRunner fio(*dev_);
  JobSpec rd;  // reading unwritten space fails inside the device
  rd.direction = IoDirection::kRead;
  rd.block_size = 4096;
  rd.region_size = 1 * kMiB;
  rd.io_count = 5;
  auto r = fio.Run({rd});
  EXPECT_FALSE(r.ok());
}

TEST_F(FioRunnerTest, PreconditionFillsAndFlushes) {
  SimTime t;
  ASSERT_TRUE(FioRunner::Precondition(*dev_, 0, 16 * kMiB, 512 * kKiB, &t).ok());
  EXPECT_GT(t.ns(), 0u);
  EXPECT_EQ(dev_->zones().Info(ZoneId{0}).state, ZoneState::kFull);
  // Everything durable: no buffer-RAM reads afterwards.
  std::vector<std::uint64_t> got;
  auto r = TestRead(*dev_, 0, 16 * kMiB, t, &got);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(dev_->stats().buffer_ram_reads, 0u);
}

// --- determinism & pipelining regressions ---

// Mixed random-read + sequential-write workload used by the determinism
// and iodepth tests below.
std::vector<JobSpec> MixedJobs(std::uint32_t iodepth) {
  JobSpec rd;
  rd.name = "randread";
  rd.pattern = IoPattern::kRandom;
  rd.direction = IoDirection::kRead;
  rd.block_size = 4096;
  rd.region_offset = 0;
  rd.region_size = 8 * kMiB;
  rd.io_count = 400;
  rd.seed = 7;
  rd.iodepth = iodepth;

  JobSpec wr;
  wr.name = "seqwrite";
  wr.pattern = IoPattern::kSequential;
  wr.direction = IoDirection::kWrite;
  wr.block_size = 4096;
  wr.region_offset = 8 * kMiB;
  wr.region_size = 8 * kMiB;
  wr.io_count = 300;
  wr.seed = 11;
  wr.iodepth = iodepth;
  return {rd, wr};
}

// Run MixedJobs at `iodepth` on a fresh device and return the result.
RunResult RunMixedOnFreshDevice(std::uint32_t iodepth) {
  auto dev = ConZoneDevice::Create(SmallCfg());
  EXPECT_TRUE(dev.ok());
  SimTime t;
  EXPECT_TRUE(
      FioRunner::Precondition(*dev.value(), 0, 8 * kMiB, 512 * kKiB, &t).ok());
  FioRunner fio(*dev.value());
  auto r = fio.Run(MixedJobs(iodepth), t);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

void ExpectBitIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.end_time.ns(), b.end_time.ns());
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.total.bytes, b.total.bytes);
  EXPECT_EQ(a.total.ops, b.total.ops);
  EXPECT_EQ(a.total.elapsed.ns(), b.total.elapsed.ns());
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.mean().ns(), b.latency.mean().ns());
  EXPECT_EQ(a.latency.min().ns(), b.latency.min().ns());
  EXPECT_EQ(a.latency.max().ns(), b.latency.max().ns());
  EXPECT_EQ(a.latency.Percentile(0.5).ns(), b.latency.Percentile(0.5).ns());
  EXPECT_EQ(a.latency.Percentile(0.99).ns(), b.latency.Percentile(0.99).ns());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].throughput.bytes, b.jobs[i].throughput.bytes);
    EXPECT_EQ(a.jobs[i].throughput.ops, b.jobs[i].throughput.ops);
    EXPECT_EQ(a.jobs[i].first_issue.ns(), b.jobs[i].first_issue.ns());
    EXPECT_EQ(a.jobs[i].last_completion.ns(), b.jobs[i].last_completion.ns());
  }
}

TEST(FioDeterminismTest, IdenticalRunsAreBitIdentical) {
  ExpectBitIdentical(RunMixedOnFreshDevice(1), RunMixedOnFreshDevice(1));
}

TEST(FioDeterminismTest, IdenticalPipelinedRunsAreBitIdentical) {
  ExpectBitIdentical(RunMixedOnFreshDevice(4), RunMixedOnFreshDevice(4));
}

TEST(FioDeterminismTest, IodepthMonotonicallyImprovesSimulatedIops) {
  double prev = 0.0;
  for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
    const RunResult r = RunMixedOnFreshDevice(depth);
    // More outstanding requests can only expose more device parallelism;
    // simulated throughput must never regress as iodepth grows.
    EXPECT_GE(r.Kiops(), prev) << "iodepth " << depth;
    prev = r.Kiops();
  }
}

TEST_F(FioRunnerTest, ThinkTimeSpacesRequests) {
  FioRunner fio(*dev_);
  JobSpec w;
  w.direction = IoDirection::kWrite;
  w.block_size = 4096;
  w.region_size = 1 * kMiB;
  w.io_count = 10;
  w.think_time = SimDuration::Millis(1);
  auto r = fio.Run({w});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().total.elapsed.ms(), 9.0);
}

}  // namespace
}  // namespace conzone
