// Unit tests for the flash substrate: geometry math, the media state
// machine, the timing engine, superblock pools and the SLC allocator.
#include <gtest/gtest.h>

#include "flash/array.hpp"
#include "flash/geometry.hpp"
#include "flash/slc_allocator.hpp"
#include "flash/superblock.hpp"
#include "flash/timing.hpp"
#include "flash/timing_engine.hpp"

namespace conzone {
namespace {

FlashGeometry SmallGeo() {
  FlashGeometry g;
  g.blocks_per_chip = 8;
  g.slc_blocks_per_chip = 2;
  g.pages_per_block = 12;  // divisible by 6 (TLC one-shot) and 3
  return g;
}

// --- geometry ---

TEST(GeometryTest, PaperDefaultsAreConsistent) {
  FlashGeometry g;
  ASSERT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.NumChips(), 4u);
  EXPECT_EQ(g.SlotsPerPage(), 4u);
  EXPECT_EQ(g.PagesPerProgramUnit(), 6u);
  EXPECT_EQ(g.UnitsPerBlock(), 42u);
  EXPECT_EQ(g.SuperpageBytes(), 384 * kKiB);  // §II-B
  // 252 pages x 16 KiB x 4 chips = 16128 KiB = 15.75 MiB.
  EXPECT_EQ(g.NormalSuperblockBytes(), 16128 * kKiB);
  EXPECT_EQ(g.NormalRegionBytes(), 96ull * g.NormalSuperblockBytes());
  EXPECT_EQ(g.SlcUsablePagesPerBlock(), 84u);  // 252 / 3 bits-per-cell
}

TEST(GeometryTest, AddressRoundTrips) {
  const FlashGeometry g = SmallGeo();
  for (std::uint64_t b = 0; b < g.TotalBlocks(); b += 3) {
    const BlockId block{b};
    EXPECT_EQ(g.BlockAt(g.ChipOfBlock(block), g.BlockIndexInChip(block)), block);
    const SuperblockId sb = g.SuperblockOfBlock(block);
    EXPECT_EQ(g.BlockOfSuperblock(sb, g.ChipOfBlock(block)), block);
  }
  for (std::uint64_t s = 0; s < g.TotalSlots(); s += 7) {
    const Ppn ppn{s};
    const FlashPageId page = g.PageOfSlot(ppn);
    EXPECT_EQ(g.SlotAt(page, g.SlotIndexInPage(ppn)), ppn);
    EXPECT_EQ(g.PageAt(g.BlockOfPage(page), g.PageIndexInBlock(page)), page);
  }
}

TEST(GeometryTest, SlcRegionIsBlockPrefix) {
  const FlashGeometry g = SmallGeo();
  for (std::uint32_t c = 0; c < g.NumChips(); ++c) {
    EXPECT_TRUE(g.IsSlcBlock(g.BlockAt(ChipId{c}, 0)));
    EXPECT_TRUE(g.IsSlcBlock(g.BlockAt(ChipId{c}, 1)));
    EXPECT_FALSE(g.IsSlcBlock(g.BlockAt(ChipId{c}, 2)));
    EXPECT_EQ(g.CellOfBlock(g.BlockAt(ChipId{c}, 0)), CellType::kSlc);
    EXPECT_EQ(g.CellOfBlock(g.BlockAt(ChipId{c}, 5)), CellType::kTlc);
  }
}

TEST(GeometryTest, ChannelOfChip) {
  FlashGeometry g;  // 2 channels x 2 chips
  EXPECT_EQ(g.ChannelOfChip(ChipId{0}).value(), 0u);
  EXPECT_EQ(g.ChannelOfChip(ChipId{1}).value(), 0u);
  EXPECT_EQ(g.ChannelOfChip(ChipId{2}).value(), 1u);
  EXPECT_EQ(g.ChannelOfChip(ChipId{3}).value(), 1u);
}

struct BadGeometryCase {
  const char* name;
  void (*mutate)(FlashGeometry&);
};

class GeometryValidationTest : public ::testing::TestWithParam<BadGeometryCase> {};

TEST_P(GeometryValidationTest, RejectsInvalidConfig) {
  FlashGeometry g = SmallGeo();
  GetParam().mutate(g);
  EXPECT_FALSE(g.Validate().ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    BadGeometries, GeometryValidationTest,
    ::testing::Values(
        BadGeometryCase{"no_channels", [](FlashGeometry& g) { g.channels = 0; }},
        BadGeometryCase{"no_chips", [](FlashGeometry& g) { g.chips_per_channel = 0; }},
        BadGeometryCase{"no_blocks", [](FlashGeometry& g) { g.blocks_per_chip = 0; }},
        BadGeometryCase{"slc_eats_all",
                        [](FlashGeometry& g) { g.slc_blocks_per_chip = g.blocks_per_chip; }},
        BadGeometryCase{"page_not_slot_multiple",
                        [](FlashGeometry& g) { g.slot_size = 3000; }},
        BadGeometryCase{"normal_is_slc",
                        [](FlashGeometry& g) { g.normal_cell = CellType::kSlc; }},
        BadGeometryCase{"unit_not_page_multiple",
                        [](FlashGeometry& g) { g.program_unit = 20 * kKiB; }},
        BadGeometryCase{"block_not_unit_multiple",
                        [](FlashGeometry& g) { g.pages_per_block = 10; }}),
    [](const auto& info) { return info.param.name; });

// --- array ---

TEST(FlashArrayTest, ProgramReadRoundTrip) {
  FlashArray a(SmallGeo());
  const BlockId slc = a.geometry().BlockAt(ChipId{0}, 0);
  const SlotWrite w[] = {{Lpn{7}, 111}, {Lpn{8}, 222}};
  ASSERT_TRUE(a.ProgramSlots(slc, w).ok());
  const Ppn p0 = a.geometry().SlotAt(a.geometry().PageAt(slc, 0), 0);
  const SlotRead r = a.ReadSlot(p0);
  EXPECT_EQ(r.state, SlotState::kValid);
  EXPECT_EQ(r.lpn, Lpn{7});
  EXPECT_EQ(r.token, 111u);
  EXPECT_EQ(a.ValidSlots(slc), 2u);
  EXPECT_EQ(a.NextProgramSlot(slc), 2u);
}

TEST(FlashArrayTest, NormalBlockRequiresUnitAlignment) {
  FlashArray a(SmallGeo());
  const BlockId normal = a.geometry().BlockAt(ChipId{0}, 3);
  const SlotWrite one[] = {{Lpn{1}, 1}};
  EXPECT_EQ(a.ProgramSlots(normal, one).code(), StatusCode::kInvalidArgument);
  // A whole unit works.
  std::vector<SlotWrite> unit(a.geometry().program_unit / a.geometry().slot_size,
                              SlotWrite{Lpn{1}, 1});
  EXPECT_TRUE(a.ProgramSlots(normal, unit).ok());
}

TEST(FlashArrayTest, SlcBlockDeratedCapacity) {
  FlashArray a(SmallGeo());
  const BlockId slc = a.geometry().BlockAt(ChipId{0}, 0);
  const std::uint32_t usable = a.UsableSlots(slc);
  EXPECT_EQ(usable, a.geometry().SlcUsableSlotsPerBlock());
  std::vector<SlotWrite> fill(usable, SlotWrite{Lpn{1}, 1});
  ASSERT_TRUE(a.ProgramSlots(slc, fill).ok());
  EXPECT_TRUE(a.BlockFull(slc));
  const SlotWrite one[] = {{Lpn{2}, 2}};
  EXPECT_EQ(a.ProgramSlots(slc, one).code(), StatusCode::kFailedPrecondition);
}

TEST(FlashArrayTest, InvalidateAndErase) {
  FlashArray a(SmallGeo());
  const BlockId slc = a.geometry().BlockAt(ChipId{1}, 0);
  const SlotWrite w[] = {{Lpn{1}, 1}};
  ASSERT_TRUE(a.ProgramSlots(slc, w).ok());
  const Ppn p = a.geometry().SlotAt(a.geometry().PageAt(slc, 0), 0);
  ASSERT_TRUE(a.InvalidateSlot(p).ok());
  EXPECT_EQ(a.StateOfSlot(p), SlotState::kInvalid);
  EXPECT_EQ(a.ValidSlots(slc), 0u);
  // Double invalidate is an error.
  EXPECT_FALSE(a.InvalidateSlot(p).ok());
  ASSERT_TRUE(a.EraseBlock(slc).ok());
  EXPECT_EQ(a.StateOfSlot(p), SlotState::kFree);
  EXPECT_EQ(a.NextProgramSlot(slc), 0u);
  EXPECT_EQ(a.EraseCount(slc), 1u);
}

TEST(FlashArrayTest, CountersTrackMedia) {
  FlashArray a(SmallGeo());
  const BlockId slc = a.geometry().BlockAt(ChipId{0}, 0);
  const BlockId normal = a.geometry().BlockAt(ChipId{0}, 4);
  const SlotWrite w[] = {{Lpn{1}, 1}};
  ASSERT_TRUE(a.ProgramSlots(slc, w).ok());
  std::vector<SlotWrite> unit(a.geometry().program_unit / a.geometry().slot_size,
                              SlotWrite{Lpn{2}, 2});
  ASSERT_TRUE(a.ProgramSlots(normal, unit).ok());
  EXPECT_EQ(a.counters().slots_programmed_slc, 1u);
  EXPECT_EQ(a.counters().slots_programmed_normal, unit.size());
  ASSERT_TRUE(a.EraseBlock(slc).ok());
  ASSERT_TRUE(a.EraseBlock(normal).ok());
  EXPECT_EQ(a.counters().erases_slc, 1u);
  EXPECT_EQ(a.counters().erases_normal, 1u);
}

// --- timing engine ---

TEST(TimingEngineTest, TableIILatencies) {
  const TimingConfig t;
  EXPECT_EQ(t.For(CellType::kSlc).program_latency.us(), 75.0);
  EXPECT_EQ(t.For(CellType::kTlc).program_latency.us(), 937.5);
  EXPECT_EQ(t.For(CellType::kQlc).program_latency.us(), 6400.0);
  EXPECT_EQ(t.For(CellType::kSlc).read_latency.us(), 20.0);
  EXPECT_EQ(t.For(CellType::kTlc).read_latency.us(), 32.0);
  EXPECT_EQ(t.For(CellType::kQlc).read_latency.us(), 85.0);
}

TEST(TimingEngineTest, TransferTimeMatchesBandwidth) {
  TimingConfig t;  // 3200 MiB/s
  // 16 KiB at 3200 MiB/s = 4.883 us.
  EXPECT_NEAR(t.TransferTime(16 * kKiB).us(), 4.883, 0.01);
  t.channel_bandwidth_bps = 0;
  EXPECT_EQ(t.TransferTime(1 * kMiB).ns(), 0u);
}

TEST(TimingEngineTest, ReadIsSensePlusTransfer) {
  FlashGeometry g;
  TimingConfig t;
  t.program_suspend_reads = false;
  FlashTimingEngine e(g, t);
  const SimTime end = e.ReadPage(ChipId{0}, CellType::kTlc, 16 * kKiB, SimTime::Zero());
  EXPECT_NEAR((end - SimTime::Zero()).us(), 32.0 + 4.883, 0.01);
}

TEST(TimingEngineTest, ChannelSharedBetweenChips) {
  FlashGeometry g;
  TimingConfig t;
  t.program_suspend_reads = false;
  FlashTimingEngine e(g, t);
  // Chips 0 and 1 share channel 0: their transfers serialize.
  const SimTime end0 = e.ReadPage(ChipId{0}, CellType::kTlc, 16 * kKiB, SimTime::Zero());
  const SimTime end1 = e.ReadPage(ChipId{1}, CellType::kTlc, 16 * kKiB, SimTime::Zero());
  EXPECT_GT(end1, end0);
  // Chip 2 is on channel 1: same finish time as chip 0.
  FlashTimingEngine e2(g, t);
  const SimTime endA = e2.ReadPage(ChipId{0}, CellType::kTlc, 16 * kKiB, SimTime::Zero());
  const SimTime endB = e2.ReadPage(ChipId{2}, CellType::kTlc, 16 * kKiB, SimTime::Zero());
  EXPECT_EQ(endA, endB);
}

TEST(TimingEngineTest, ProgramCadenceIsOneDeepPipelined) {
  FlashGeometry g;
  TimingConfig t;
  FlashTimingEngine e(g, t);
  // Back-to-back programs on one die: pulses serialize; data-in of the
  // second overlaps the first pulse (cache register).
  const auto p1 = e.Program(ChipId{0}, CellType::kTlc, 96 * kKiB, SimTime::Zero());
  const auto p2 = e.Program(ChipId{0}, CellType::kTlc, 96 * kKiB, SimTime::Zero());
  EXPECT_LT(p2.data_in, p1.end);              // transfer overlapped the pulse
  EXPECT_NEAR((p2.end - p1.end).us(), 937.5, 40.0);  // pulse cadence
}

TEST(TimingEngineTest, SuspendedReadPaysPenaltyNotPulse) {
  FlashGeometry g;
  TimingConfig t;  // suspend on by default
  FlashTimingEngine e(g, t);
  e.Program(ChipId{0}, CellType::kTlc, 96 * kKiB, SimTime::Zero());
  const SimTime issue = SimTime::FromNanos(100000);  // mid-pulse
  const SimTime end = e.ReadPage(ChipId{0}, CellType::kTlc, 16 * kKiB, issue);
  const double lat = (end - issue).us();
  EXPECT_LT(lat, 120.0);  // far below the 937.5us pulse remainder
  EXPECT_GT(lat, 32.0);   // but above the bare sense (penalty applied)
}

TEST(TimingEngineTest, EraseOccupiesDie) {
  FlashGeometry g;
  TimingConfig t;
  t.program_suspend_reads = false;
  FlashTimingEngine e(g, t);
  const SimTime end = e.Erase(ChipId{3}, CellType::kTlc, SimTime::Zero());
  EXPECT_NEAR((end - SimTime::Zero()).us(), 3500.0, 1.0);
  // A read behind the erase waits (no suspend path).
  const SimTime r = e.ReadPage(ChipId{3}, CellType::kTlc, 16 * kKiB, SimTime::Zero());
  EXPECT_GT(r, end);
}

// --- superblock pool ---

TEST(SuperblockPoolTest, SlcAllocateReleaseCycle) {
  SuperblockPool pool(SmallGeo());
  EXPECT_EQ(pool.FreeSlcCount(), 2u);
  auto a = pool.AllocateSlc();
  ASSERT_TRUE(a.ok());
  auto b = pool.AllocateSlc();
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(pool.AllocateSlc().status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(pool.ReleaseSlc(a.value()).ok());
  EXPECT_EQ(pool.FreeSlcCount(), 1u);
  // Double release rejected; non-SLC release rejected.
  EXPECT_FALSE(pool.ReleaseSlc(a.value()).ok());
  EXPECT_FALSE(pool.ReleaseSlc(SuperblockId{5}).ok());
}

TEST(SuperblockPoolTest, NormalPoolIndependent) {
  SuperblockPool pool(SmallGeo());
  EXPECT_EQ(pool.FreeNormalCount(), 6u);
  auto a = pool.AllocateNormal();
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(SmallGeo().IsSlcSuperblock(a.value()));
  ASSERT_TRUE(pool.ReleaseNormal(a.value()).ok());
  EXPECT_FALSE(pool.ReleaseNormal(SuperblockId{0}).ok());  // SLC id
}

// Wear-aware allocation: FIFO only levels wear the pool itself caused —
// a pre-worn superblock keeps its head start forever. With a wear source
// attached, allocation steers churn to the least-worn members until the
// imbalance closes.
TEST(SuperblockPoolTest, WearAwareAllocationNarrowsEraseSpread) {
  FlashGeometry geo = SmallGeo();
  geo.slc_blocks_per_chip = 4;  // 4 SLC superblocks to level across

  auto erase_superblock = [&](FlashArray& array, SuperblockId sb) {
    for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
      ASSERT_TRUE(array.EraseBlock(geo.BlockOfSuperblock(sb, ChipId{c})).ok());
    }
  };
  auto spread = [&](const FlashArray& array) {
    std::uint64_t lo = ~0ull, hi = 0;
    for (std::uint32_t s = 0; s < geo.NumSlcSuperblocks(); ++s) {
      std::uint64_t sum = 0;
      for (std::uint32_t c = 0; c < geo.NumChips(); ++c) {
        sum += array.EraseCount(geo.BlockOfSuperblock(SuperblockId{s}, ChipId{c}));
      }
      lo = std::min(lo, sum);
      hi = std::max(hi, sum);
    }
    return hi - lo;
  };

  // Identical scenario under both policies: superblock 0 starts 10
  // erases ahead (uneven history), then the pool churns 36 rounds of
  // allocate → erase → release.
  std::uint64_t final_spread[2];
  for (const bool wear_aware : {false, true}) {
    FlashArray array(geo);
    SuperblockPool pool(geo);
    if (wear_aware) pool.AttachWearSource(&array);
    for (int i = 0; i < 10; ++i) {
      erase_superblock(array, SuperblockId{0});
    }
    const std::uint64_t per_sb_wear = 10 * geo.NumChips();
    EXPECT_EQ(spread(array), per_sb_wear);
    for (int round = 0; round < 36; ++round) {
      auto sb = pool.AllocateSlc();
      ASSERT_TRUE(sb.ok());
      erase_superblock(array, sb.value());
      ASSERT_TRUE(pool.ReleaseSlc(sb.value()).ok());
    }
    final_spread[wear_aware ? 1 : 0] = spread(array);
  }
  // FIFO cycles everyone equally: the pre-worn head start survives
  // untouched. Min-wear closes it to at most one erase cycle.
  EXPECT_EQ(final_spread[0], 10 * geo.NumChips());
  EXPECT_LE(final_spread[1], geo.NumChips());
  EXPECT_LT(final_spread[1], final_spread[0]);
}

TEST(SuperblockPoolTest, WearTieBreaksByLowestIdNotReleaseOrder) {
  const FlashGeometry geo = SmallGeo();
  FlashArray array(geo);
  SuperblockPool pool(geo);
  pool.AttachWearSource(&array);
  auto a = pool.AllocateSlc();
  auto b = pool.AllocateSlc();
  ASSERT_TRUE(a.ok() && b.ok());
  // Release in reverse id order; equal wear must still allocate the
  // lowest id first (FIFO would hand back b).
  ASSERT_TRUE(pool.ReleaseSlc(b.value()).ok());
  ASSERT_TRUE(pool.ReleaseSlc(a.value()).ok());
  auto again = pool.AllocateSlc();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), a.value());
}

// --- slc allocator ---

TEST(SlcAllocatorTest, PageFillStripeOrder) {
  FlashArray array(SmallGeo());
  SuperblockPool pool(SmallGeo());
  SlcAllocator alloc(array, pool);
  std::vector<SlotWrite> w(10, SlotWrite{Lpn{1}, 1});
  auto ppns = alloc.Program(w);
  ASSERT_TRUE(ppns.ok());
  const FlashGeometry& g = array.geometry();
  // First 4 slots fill page 0 of chip 0; next 4 fill page 0 of chip 1...
  EXPECT_EQ(g.ChipOfSlot(ppns.value()[0]).value(), 0u);
  EXPECT_EQ(g.ChipOfSlot(ppns.value()[3]).value(), 0u);
  EXPECT_EQ(g.ChipOfSlot(ppns.value()[4]).value(), 1u);
  EXPECT_EQ(g.ChipOfSlot(ppns.value()[8]).value(), 2u);
  EXPECT_EQ(g.PageOfSlot(ppns.value()[0]), g.PageOfSlot(ppns.value()[3]));
  EXPECT_NE(g.PageOfSlot(ppns.value()[3]), g.PageOfSlot(ppns.value()[4]));
}

TEST(SlcAllocatorTest, RebindsAcrossSuperblocks) {
  const FlashGeometry g = SmallGeo();
  FlashArray array(g);
  SuperblockPool pool(g);
  SlcAllocator alloc(array, pool);
  const std::uint64_t per_sb =
      static_cast<std::uint64_t>(g.SlcUsableSlotsPerBlock()) * g.NumChips();
  std::vector<SlotWrite> w(per_sb + 4, SlotWrite{Lpn{1}, 1});
  auto ppns = alloc.Program(w);
  ASSERT_TRUE(ppns.ok());
  EXPECT_EQ(pool.FreeSlcCount(), 0u);  // both superblocks taken
  EXPECT_NE(g.SuperblockOfBlock(g.BlockOfSlot(ppns.value()[0])),
            g.SuperblockOfBlock(g.BlockOfSlot(ppns.value()[per_sb])));
}

TEST(SlcAllocatorTest, ExhaustionReported) {
  const FlashGeometry g = SmallGeo();
  FlashArray array(g);
  SuperblockPool pool(g);
  SlcAllocator alloc(array, pool);
  const std::uint64_t total =
      2ull * g.SlcUsableSlotsPerBlock() * g.NumChips();
  std::vector<SlotWrite> w(total, SlotWrite{Lpn{1}, 1});
  ASSERT_TRUE(alloc.Program(w).ok());
  std::vector<SlotWrite> one(1, SlotWrite{Lpn{2}, 2});
  EXPECT_EQ(alloc.Program(one).status().code(), StatusCode::kResourceExhausted);
}

TEST(FlashArrayTest, CounterSnapshotsClampAcrossMidRunReset) {
  FlashArray array(SmallGeo());
  const BlockId block{0};
  std::vector<SlotWrite> w(4, SlotWrite{Lpn{1}, 1});
  ASSERT_TRUE(array.ProgramSlots(block, w).ok());
  array.CountPageRead();

  // Snapshot taken, then someone resets the phase counters mid-run (a
  // benchmark phase boundary). Deltas against the stale snapshot must
  // clamp to zero, never wrap negative — write amplification and
  // friends divide by these.
  const MediaCounters stale = array.counters();
  array.ResetCounters();
  const MediaCounters delta = array.counters().Since(stale);
  EXPECT_EQ(delta.slots_programmed_slc, 0u);
  EXPECT_EQ(delta.page_reads, 0u);
  EXPECT_EQ(delta.erases_slc, 0u);

  // Forward deltas still work after the reset.
  ASSERT_TRUE(array.ProgramSlots(block, w).ok());
  EXPECT_EQ(array.counters().Since(MediaCounters{}).slots_programmed_slc, 4u);

  // The lifetime counters are monotone and survive the reset untouched.
  EXPECT_EQ(array.lifetime_counters().slots_programmed_slc, 8u);
  EXPECT_EQ(array.lifetime_counters().page_reads, 1u);
  EXPECT_EQ(array.lifetime_counters().Since(stale).slots_programmed_slc, 4u);
}

}  // namespace
}  // namespace conzone
