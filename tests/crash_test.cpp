// Power-loss emulation and crash-consistent recovery.
//
// Covers: the PowerCut()/Recover() API contract, durability of
// acknowledged flushes, the L2P-log flush/crash accounting race, a
// deterministic cut sweep over every op boundary of a scripted workload,
// randomized cut times across seeds, bit-identical same-seed recovery,
// interaction with NAND fault injection, conventional-zone recovery
// semantics, and an opt-in many-cut soak (CONZONE_CRASH_SOAK=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "core/crash_checker.hpp"
#include "core/device.hpp"
#include "flash/array.hpp"
#include "ftl/l2p_log.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

ConZoneConfig SmallConfig() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;  // 4 SLC + 16 normal => 16 zones
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

ConZoneConfig CrashConfig() {
  ConZoneConfig cfg = SmallConfig();
  cfg.fault.power_loss = true;
  cfg.l2p_log.enabled = true;  // Exercise the log's volatile tail too.
  return cfg;
}

// ---------------------------------------------------------------------------
// API contract
// ---------------------------------------------------------------------------

TEST(CrashApiTest, PowerCutRequiresPowerLossEnabled) {
  auto dev = ConZoneDevice::Create(SmallConfig());
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ((*dev)->PowerCut(SimTime::Zero()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CrashApiTest, OpsRejectedWhilePoweredOffAndRecoverRestoresService) {
  auto dev = ConZoneDevice::Create(CrashConfig());
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  const std::uint64_t zone_bytes = d.config().zone_size_bytes;
  auto w = TestWrite(d, 0, 8 * 4096, SimTime::Zero());
  ASSERT_TRUE(w.ok());

  ASSERT_TRUE(d.PowerCut(w.value()).ok());
  EXPECT_TRUE(d.powered_off());
  EXPECT_EQ(TestWrite(d, zone_bytes, 4096, w.value()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(TestRead(d, 0, 4096, w.value()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(d.Flush(w.value()).status().code(), StatusCode::kFailedPrecondition);
  // Recover on a powered-off device works; on a powered-on one it fails.
  auto r = d.Recover(w.value());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(d.powered_off());
  EXPECT_GE(r.value(), w.value());
  EXPECT_EQ(d.Recover(r.value()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(d.recovery_stats().power_cuts, 1u);
  EXPECT_EQ(d.recovery_stats().recoveries, 1u);
}

TEST(CrashApiTest, CutMayNotPrecedeLastSubmission) {
  auto dev = ConZoneDevice::Create(CrashConfig());
  ASSERT_TRUE(dev.ok());
  const SimTime t = SimTime::FromNanos(1000000);
  ASSERT_TRUE(TestWrite(**dev, 0, 4096, t).ok());
  EXPECT_EQ((*dev)->PowerCut(SimTime::Zero()).code(), StatusCode::kInvalidArgument);
}

TEST(CrashApiTest, AcknowledgedFlushSurvivesImmediateCut) {
  auto dev = ConZoneDevice::Create(CrashConfig());
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  // An unaligned tail keeps part of the data in SRAM and SLC staging —
  // the exact state a flush must force all the way to media.
  std::vector<std::uint64_t> tokens;
  for (std::uint64_t i = 0; i < 29; ++i) tokens.push_back(1000 + i);
  auto w = TestWrite(d, 0, tokens.size() * 4096, SimTime::Zero(), tokens);
  ASSERT_TRUE(w.ok());
  auto f = d.Flush(w.value());
  ASSERT_TRUE(f.ok());

  // Cut at the exact flush-completion instant: nothing acknowledged may
  // be lost, no matter how unlucky the timing.
  ASSERT_TRUE(d.PowerCut(f.value()).ok());
  auto r = d.Recover(f.value());
  ASSERT_TRUE(r.ok());

  std::vector<std::uint64_t> got;
  auto rd = TestRead(d, 0, tokens.size() * 4096, r.value(), &got);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(got, tokens);
  EXPECT_EQ(d.zones().Info(ZoneId{0}).write_pointer, tokens.size() * 4096);
}

TEST(CrashApiTest, UnflushedBufferContentIsLostButZoneStaysPrefixConsistent) {
  auto dev = ConZoneDevice::Create(CrashConfig());
  ASSERT_TRUE(dev.ok());
  ConZoneDevice& d = **dev;
  // 3 slots stay purely in SRAM (below any program threshold).
  std::vector<std::uint64_t> tokens{7, 8, 9};
  auto w = TestWrite(d, 0, 3 * 4096, SimTime::Zero(), tokens);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(d.PowerCut(w.value()).ok());
  auto r = d.Recover(w.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(d.zones().Info(ZoneId{0}).write_pointer, 0u);
  EXPECT_GE(d.recovery_stats().buffered_slots_lost, 3u);
  // The zone accepts writes from the reverted pointer again.
  EXPECT_TRUE(TestWrite(d, 0, 4096, r.value()).ok());
}

// ---------------------------------------------------------------------------
// L2P log flush accounting across a crash (satellite regression)
// ---------------------------------------------------------------------------

TEST(L2pLogCrashTest, FlushAtExactThresholdBoundaryKeepsAccountingConsistent) {
  L2pLogConfig cfg;
  cfg.enabled = true;
  cfg.entry_bytes = 8;
  cfg.flush_threshold_bytes = 64;
  L2pLog log(cfg);

  log.Append(8);  // Exactly one threshold worth.
  ASSERT_TRUE(log.NeedsFlush());
  const std::uint64_t bytes = log.BeginFlush();
  EXPECT_EQ(bytes, 64u);
  EXPECT_EQ(log.pending_bytes(), 0u);
  EXPECT_FALSE(log.NeedsFlush());
  log.CommitFlush(bytes, SimTime::FromNanos(500));

  // Crash-free invariant.
  EXPECT_EQ(log.stats().bytes_flushed + log.pending_bytes(),
            log.stats().entries_appended * cfg.entry_bytes);
}

TEST(L2pLogCrashTest, CrashDuringFlushNeverDoubleCountsBytes) {
  L2pLogConfig cfg;
  cfg.enabled = true;
  cfg.entry_bytes = 8;
  cfg.flush_threshold_bytes = 64;
  L2pLog log(cfg);

  log.Append(8);
  const std::uint64_t bytes = log.BeginFlush();
  log.CommitFlush(bytes, SimTime::FromNanos(500));
  log.Append(3);  // 24 pending bytes on top of the in-flight commit.

  // Cut lands before the flush program's media completion: the commit
  // must roll back exactly once, together with the pending tail.
  const std::uint64_t lost = log.DropVolatile(SimTime::FromNanos(100));
  EXPECT_EQ(lost, 64u + 24u);
  EXPECT_EQ(log.stats().bytes_flushed, 0u);
  EXPECT_EQ(log.stats().flushes, 0u);
  EXPECT_EQ(log.stats().flushes_lost, 1u);
  EXPECT_EQ(log.stats().bytes_lost, 88u);
  // Conservation: every appended byte is flushed, pending, or lost.
  EXPECT_EQ(log.stats().bytes_flushed + log.pending_bytes() + log.stats().bytes_lost,
            log.stats().entries_appended * cfg.entry_bytes);
}

TEST(L2pLogCrashTest, CompletedFlushSurvivesCutAndPruneForgetsOldCommits) {
  L2pLogConfig cfg;
  cfg.enabled = true;
  cfg.entry_bytes = 8;
  cfg.flush_threshold_bytes = 64;
  L2pLog log(cfg);

  log.Append(8);
  log.CommitFlush(log.BeginFlush(), SimTime::FromNanos(500));
  log.PruneCommits(SimTime::FromNanos(600));  // Commit is out of cut range.
  log.Append(2);
  const std::uint64_t lost = log.DropVolatile(SimTime::FromNanos(700));
  EXPECT_EQ(lost, 16u);  // Only the pending tail; the flush stands.
  EXPECT_EQ(log.stats().bytes_flushed, 64u);
  EXPECT_EQ(log.stats().flushes, 1u);
  EXPECT_EQ(log.stats().flushes_lost, 0u);
}

// ---------------------------------------------------------------------------
// Crash-point sweep (tier-1 property suite)
// ---------------------------------------------------------------------------

TEST(CrashSweepTest, EveryOpBoundaryRecoversConsistent) {
  // For a fixed scripted workload, cut at the submission boundary of
  // every op in turn (plus mid-window and completion variants) and run
  // the full consistency check each time.
  constexpr std::size_t kOps = 48;
  for (std::size_t k = 1; k <= kOps; ++k) {
    CrashHarness::Options opt;
    opt.seed = 42;
    CrashHarness h(CrashConfig(), opt);
    ASSERT_TRUE(h.Init().ok());
    ASSERT_TRUE(h.RunOps(k).ok()) << "ops=" << k;
    const double frac = (k % 3 == 0) ? 0.0 : (k % 3 == 1) ? 0.5 : 1.0;
    ASSERT_TRUE(h.Cut(frac).ok()) << "ops=" << k;
    Status st = h.RecoverAndVerify();
    ASSERT_TRUE(st.ok()) << "cut after op " << k << " (frac " << frac
                         << "): " << st.message();
  }
}

TEST(CrashSweepTest, RandomCutTimesAcrossSeedsRecoverConsistent) {
  Rng pick(0xD00DF00Dull);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    CrashHarness::Options opt;
    opt.seed = seed;
    CrashHarness h(CrashConfig(), opt);
    ASSERT_TRUE(h.Init().ok());
    ASSERT_TRUE(h.RunOps(10 + pick.NextBelow(40)).ok()) << "seed=" << seed;
    // Reach up to 1.5x past the last op's completion: background program
    // pulses (premature flushes, folds, GC) extend beyond it and must
    // tear cleanly too.
    ASSERT_TRUE(h.Cut(pick.NextDouble() * 1.5).ok()) << "seed=" << seed;
    Status st = h.RecoverAndVerify();
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.message();
  }
}

TEST(CrashSweepTest, RepeatedCutsOnOneDeviceStayConsistent) {
  // The checker re-baselines after each verified recovery, so one device
  // can survive many cut/recover rounds with full verification each time.
  CrashHarness::Options opt;
  opt.seed = 7;
  CrashHarness h(CrashConfig(), opt);
  ASSERT_TRUE(h.Init().ok());
  Rng pick(0xBEEFull);
  for (int round = 0; round < 12; ++round) {
    ASSERT_TRUE(h.RunOps(8 + pick.NextBelow(24)).ok()) << "round=" << round;
    ASSERT_TRUE(h.Cut(pick.NextDouble() * 1.2).ok()) << "round=" << round;
    Status st = h.RecoverAndVerify();
    ASSERT_TRUE(st.ok()) << "round " << round << ": " << st.message();
  }
  EXPECT_EQ(h.device().recovery_stats().recoveries, 12u);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(CrashDeterminismTest, SameSeedAndCutReproduceBitIdenticalRecovery) {
  auto run = [](std::uint64_t* fp1, std::uint64_t* fp2) {
    CrashHarness::Options opt;
    opt.seed = 99;
    CrashHarness h(CrashConfig(), opt);
    ASSERT_TRUE(h.Init().ok());
    ASSERT_TRUE(h.RunOps(40).ok());
    ASSERT_TRUE(h.Cut(0.37).ok());
    ASSERT_TRUE(h.RecoverAndVerify().ok());
    *fp1 = h.fingerprint();
    // A second cut/recover round must also replay identically.
    ASSERT_TRUE(h.RunOps(20).ok());
    ASSERT_TRUE(h.Cut(0.81).ok());
    ASSERT_TRUE(h.RecoverAndVerify().ok());
    *fp2 = h.fingerprint();
  };
  std::uint64_t a1 = 0, a2 = 0, b1 = 0, b2 = 0;
  run(&a1, &a2);
  run(&b1, &b2);
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a2, b2);
  EXPECT_NE(a1, a2);  // Different rounds observe different state.
}

// ---------------------------------------------------------------------------
// Interactions
// ---------------------------------------------------------------------------

TEST(CrashFaultInteropTest, CutsWithNandFaultInjectionStayConsistent) {
  ConZoneConfig cfg = CrashConfig();
  // Low rates: recovery paths fire occasionally without tripping the
  // read-only floor in a short run.
  cfg.fault.slc.program_fail = 5e-3;
  cfg.fault.slc.erase_fail = 5e-3;
  cfg.fault.normal.program_fail = 2e-3;
  cfg.fault.normal.erase_fail = 2e-3;
  cfg.fault.seed = 4242;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    CrashHarness::Options opt;
    opt.seed = seed;
    CrashHarness h(cfg, opt);
    ASSERT_TRUE(h.Init().ok());
    ASSERT_TRUE(h.RunOps(40).ok()) << "seed=" << seed;
    ASSERT_TRUE(h.Cut(0.6).ok());
    Status st = h.RecoverAndVerify();
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.message();
  }
}

TEST(CrashConventionalTest, ConventionalZonesRecoverDurableOrLaterValues) {
  ConZoneConfig cfg = CrashConfig();
  cfg.num_conventional_zones = 2;
  CrashHarness::Options opt;
  opt.seed = 11;
  opt.conv_prob = 0.5;  // Hammer the in-place region.
  CrashHarness h(cfg, opt);
  ASSERT_TRUE(h.Init().ok());
  Rng pick(0xC0FFEEull);
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(h.RunOps(25).ok()) << "round=" << round;
    ASSERT_TRUE(h.Cut(pick.NextDouble() * 1.2).ok());
    Status st = h.RecoverAndVerify();
    ASSERT_TRUE(st.ok()) << "round " << round << ": " << st.message();
  }
}

// ---------------------------------------------------------------------------
// Undo-journal stamping scope
// ---------------------------------------------------------------------------

// A nested batch (GC running mid-flush) stamps only its own journal
// entries: the caller's pending invalidates keep the caller's window.
// Before mark-scoped stamping, the nested stamp captured the caller's
// unstamped suffix under its own earlier-closing window, so a cut
// between the two windows durably discarded the invalidated source
// copies while the superseding program was torn — acknowledged data
// lost. Caught by the fleet soak (shard 0, cut 47 of its schedule).
TEST(CrashJournalTest, NestedBatchStampCannotCaptureCallersPendingEntries) {
  FlashArray a(SmallConfig().geometry);
  a.EnableJournal(true);
  const FlashGeometry& geo = a.geometry();
  const BlockId src = geo.BlockAt(ChipId{0}, 0);    // SLC: holds the old copy
  const BlockId other = geo.BlockAt(ChipId{1}, 0);  // SLC: the nested batch's target
  const Ppn src_slot = geo.SlotAt(geo.PageAt(src, 0), 0);

  // Durable baseline: the source copy is on media, window long closed.
  const SlotWrite w[] = {{Lpn{7}, 111}};
  const std::uint64_t base_mark = a.MarkJournal();
  ASSERT_TRUE(a.ProgramSlots(src, w).ok());
  a.StampJournal(base_mark, SimTime::FromNanos(0), SimTime::FromNanos(10));
  a.PruneJournal(SimTime::FromNanos(10));

  // Outer batch begins: a fold invalidates the source copy, intending to
  // supersede it...
  const std::uint64_t outer_mark = a.MarkJournal();
  ASSERT_TRUE(a.InvalidateSlot(src_slot).ok());

  // ...but a nested batch runs first and stamps a window closing at 100.
  const std::uint64_t nested_mark = a.MarkJournal();
  const SlotWrite nested[] = {{Lpn{9}, 222}};
  ASSERT_TRUE(a.ProgramSlots(other, nested).ok());
  a.StampJournal(nested_mark, SimTime::FromNanos(50), SimTime::FromNanos(100));

  // The outer batch's superseding program closes only at 500; its stamp
  // must reach back past the nested (already stamped) entries to cover
  // the invalidate with the same window.
  const SlotWrite sup[] = {{Lpn{7}, 333}};
  ASSERT_TRUE(a.ProgramSlots(src, sup).ok());
  a.StampJournal(outer_mark, SimTime::FromNanos(50), SimTime::FromNanos(500));

  // Cut between the nested end (100) and the outer end (500): the nested
  // program is durable, the outer program is torn, and the source copy
  // it superseded must come back.
  const FlashArray::PowerCutReport rep = a.ApplyPowerCut(SimTime::FromNanos(200));
  EXPECT_EQ(rep.torn_program_slots, 1u);
  EXPECT_EQ(rep.resurrected_slots, 1u);
  EXPECT_EQ(a.StateOfSlot(src_slot), SlotState::kValid);
  EXPECT_EQ(a.ReadSlot(src_slot).token, 111u);
  EXPECT_EQ(a.StateOfSlot(geo.SlotAt(geo.PageAt(other, 0), 0)), SlotState::kValid);
}

// ---------------------------------------------------------------------------
// Opt-in soak (CI crash-matrix label / CONZONE_CRASH_SOAK=1)
// ---------------------------------------------------------------------------

TEST(CrashSoakTest, ManyRandomCutsSoak) {
  if (std::getenv("CONZONE_CRASH_SOAK") == nullptr) {
    GTEST_SKIP() << "set CONZONE_CRASH_SOAK=1 to run the 10k-cut soak";
  }
  CrashHarness::Options opt;
  opt.seed = 0x50A7ull;
  CrashHarness h(CrashConfig(), opt);
  ASSERT_TRUE(h.Init().ok());
  Rng pick(0x10000ull);
  constexpr int kCuts = 10000;
  for (int round = 0; round < kCuts; ++round) {
    ASSERT_TRUE(h.RunOps(3 + pick.NextBelow(15)).ok()) << "round=" << round;
    ASSERT_TRUE(h.Cut(pick.NextDouble() * 1.5).ok()) << "round=" << round;
    Status st = h.RecoverAndVerify();
    ASSERT_TRUE(st.ok()) << "round " << round << ": " << st.message();
  }
  EXPECT_EQ(h.device().recovery_stats().recoveries,
            static_cast<std::uint64_t>(kCuts));
}

}  // namespace
}  // namespace conzone
