// Sharded-runner tests: the determinism contract of scale-out.
//
//   * Thread-count invariance: the same plan merged from any number of
//     worker threads is bit-identical (shard isolation + merge-after-
//     join, never first-to-finish).
//   * 1-shard identity: a 1-shard, 1-thread plan reproduces the plain
//     single-device FioRunner run bit for bit (ForShard(0)/JobsForShard
//     are identity derivations).
//   * Backend invariance at the device level: a full FioRunner run over
//     a real device — faults enabled and faults disabled — produces
//     identical results under the binary-heap and timing-wheel event
//     queues. (The event-order property test lives in sim_test.cpp;
//     this closes the loop end to end.)
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "conzone/conzone.hpp"

namespace conzone {
namespace {

ConZoneConfig SmallConfig(bool faults) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;  // 4 SLC + 16 normal => small device
  cfg.geometry.slc_blocks_per_chip = 4;
  if (faults) {
    cfg.fault = FaultConfig::ConsumerDefaults();
    cfg.fault.read_only_spare_floor_blocks = 0;
  }
  return cfg;
}

std::vector<JobSpec> MixedJobs() {
  JobSpec rd;
  rd.name = "randread";
  rd.pattern = IoPattern::kRandom;
  rd.direction = IoDirection::kRead;
  rd.block_size = 4096;
  rd.region_offset = 0;
  rd.region_size = 8 * kMiB;
  rd.io_count = 1200;
  rd.iodepth = 2;
  rd.seed = 7;

  JobSpec wr;
  wr.name = "seqwrite";
  wr.pattern = IoPattern::kSequential;
  wr.direction = IoDirection::kWrite;
  wr.block_size = 64 * kKiB;
  wr.region_offset = 32 * kMiB;  // own zones, after the preconditioned read region
  wr.region_size = 16 * kMiB;
  wr.io_count = 400;
  wr.reset_zones_on_wrap = true;
  wr.seed = 11;
  return {rd, wr};
}

ShardPlan MakePlan(bool faults, std::uint32_t shards, std::uint32_t threads,
                   EventQueue::Backend backend = EventQueue::Backend::kTimingWheel) {
  ShardPlan plan;
  plan.config = SmallConfig(faults);
  plan.jobs = MixedJobs();
  plan.shards = shards;
  plan.threads = threads;
  plan.master_seed = 42;
  plan.precondition_bytes = 16 * kMiB;
  plan.backend = backend;
  return plan;
}

// Every simulated quantity that could expose a determinism leak, as one
// comparable string. Timestamps in exact nanoseconds — "bit-identical"
// means bit-identical.
std::string Fingerprint(const ShardResult& s) {
  std::ostringstream os;
  os << "shard=" << s.shard_id;
  for (const JobResult& j : s.run.jobs) {
    os << " job{" << j.name << " bytes=" << j.throughput.bytes
       << " ops=" << j.throughput.ops << " last=" << j.last_completion.ns()
       << " errs=" << j.io_errors << " lat=" << j.latency.Summary() << "}";
  }
  os << " events=" << s.run.events << " end=" << s.run.end_time.ns()
     << " rel={" << s.reliability.Summary() << "}"
     << " retry_hist={" << s.reliability.read_retry_hist.Summary() << "}"
     << " redrive_hist={" << s.reliability.redrive_hist.Summary() << "}"
     << " rec={" << s.recovery.Summary() << "}"
     << " remount_hist={" << s.recovery.remount_hist.Summary() << "}"
     << " waf=" << s.device.WriteAmplification()
     << " flash=" << s.device.flash_bytes_written
     << " resets=" << s.device.zone_resets;
  return os.str();
}

std::string Fingerprint(const ShardedResult& r) {
  std::ostringstream os;
  for (const ShardResult& s : r.shards) os << Fingerprint(s) << "\n";
  os << "total bytes=" << r.total.bytes << " ops=" << r.total.ops
     << " elapsed=" << r.total.elapsed.ns() << " events=" << r.events
     << " errs=" << r.io_errors << " end=" << r.end_time.ns()
     << " lat=" << r.latency.Summary() << " rel={" << r.reliability.Summary()
     << "}" << " rec={" << r.recovery.Summary() << "}";
  return os.str();
}

TEST(ShardedRunnerTest, MergedStatsIdenticalForAnyThreadCount) {
  for (const bool faults : {false, true}) {
    std::string reference;
    for (const std::uint32_t threads : {1u, 3u, 8u}) {
      auto res = ShardedRunner(MakePlan(faults, /*shards=*/4, threads)).Run();
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      const std::string fp = Fingerprint(res.value());
      if (reference.empty()) {
        reference = fp;
      } else {
        EXPECT_EQ(fp, reference) << "faults=" << faults << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedRunnerTest, OneShardMatchesSingleDevicePathBitForBit) {
  for (const bool faults : {false, true}) {
    const ShardPlan plan = MakePlan(faults, /*shards=*/1, /*threads=*/1);
    auto sharded = ShardedRunner(plan).Run();
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    // The plain single-device path, by hand.
    auto devr = ConZoneDevice::Create(plan.config);
    ASSERT_TRUE(devr.ok());
    ConZoneDevice& dev = **devr;
    SimTime start;
    ASSERT_TRUE(FioRunner::Precondition(dev, 0, plan.precondition_bytes,
                                        512 * kKiB, &start)
                    .ok());
    FioRunner fio(dev, plan.backend);
    auto direct = fio.Run(plan.jobs, start);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();

    ShardResult manual;
    manual.shard_id = 0;
    manual.run = std::move(direct).value();
    manual.reliability = dev.Reliability();
    manual.device = dev.Stats();

    ASSERT_EQ(sharded.value().shards.size(), 1u);
    EXPECT_EQ(Fingerprint(sharded.value().shards[0]), Fingerprint(manual))
        << "faults=" << faults;
  }
}

TEST(ShardedRunnerTest, ShardsBeyondZeroGetDecorrelatedSeeds) {
  const ShardPlan plan = MakePlan(false, 4, 1);
  const auto shard0 = ShardedRunner::JobsForShard(plan, 0);
  ASSERT_EQ(shard0.size(), plan.jobs.size());
  for (std::size_t j = 0; j < shard0.size(); ++j) {
    EXPECT_EQ(shard0[j].seed, plan.jobs[j].seed);  // identity for shard 0
  }
  const auto shard1 = ShardedRunner::JobsForShard(plan, 1);
  const auto shard2 = ShardedRunner::JobsForShard(plan, 2);
  for (std::size_t j = 0; j < shard1.size(); ++j) {
    EXPECT_NE(shard1[j].seed, plan.jobs[j].seed);
    EXPECT_NE(shard1[j].seed, shard2[j].seed);
  }
  // Config derivation mirrors the job derivation.
  EXPECT_EQ(plan.config.ForShard(0, plan.master_seed).fault.seed,
            plan.config.fault.seed);
  EXPECT_NE(plan.config.ForShard(1, plan.master_seed).fault.seed,
            plan.config.fault.seed);
  EXPECT_NE(plan.config.ForShard(1, plan.master_seed).fault.seed,
            plan.config.ForShard(2, plan.master_seed).fault.seed);
}

// Shards whose device is a striped volume (members > 1) keep the whole
// determinism contract: thread-count invariance and run-to-run
// bit-identity, with member configs derived as shard*members+j.
TEST(ShardedRunnerTest, StripedMemberShardsStayDeterministic) {
  ShardPlan plan = MakePlan(false, /*shards=*/2, /*threads=*/1);
  plan.members = 2;
  std::string reference;
  for (const std::uint32_t threads : {1u, 2u}) {
    plan.threads = threads;
    auto res = ShardedRunner(plan).Run();
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    // Volume-backed shards actually spread the work over both members.
    for (const ShardResult& s : res.value().shards) {
      EXPECT_GT(s.device.host_bytes_written, 0u);
    }
    const std::string fp = Fingerprint(res.value());
    if (reference.empty()) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference) << "threads=" << threads;
    }
  }
}

// A plan with a per-shard power-cut schedule keeps the full determinism
// contract: mid-run cuts, remounts, and workload resume do not leak
// thread-count dependence into any merged counter. Both schedule kinds.
TEST(ShardedRunnerTest, CutScheduleStaysDeterministicAcrossThreads) {
  for (const auto kind :
       {CutScheduleKind::kFixedInterval, CutScheduleKind::kRandomInterval}) {
    std::string reference;
    for (const std::uint32_t threads : {1u, 3u}) {
      ShardPlan plan = MakePlan(/*faults=*/true, /*shards=*/3, threads);
      plan.cut_schedule.cuts = 4;
      plan.cut_schedule.kind = kind;
      plan.cut_schedule.interval_ns = 300'000;  // well inside the run
      auto res = ShardedRunner(plan).Run();
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      // The schedule must actually fire, and every cut must remount.
      EXPECT_GT(res.value().recovery.power_cuts, 0u);
      EXPECT_EQ(res.value().recovery.recoveries,
                res.value().recovery.power_cuts);
      std::uint64_t per_shard_cuts = 0;
      for (const ShardResult& s : res.value().shards) {
        per_shard_cuts += s.recovery.power_cuts;
      }
      EXPECT_EQ(per_shard_cuts, res.value().recovery.power_cuts);
      const std::string fp = Fingerprint(res.value());
      if (reference.empty()) {
        reference = fp;
      } else {
        EXPECT_EQ(fp, reference) << "threads=" << threads;
      }
    }
  }
}

TEST(ShardedRunnerTest, CutScheduleRejectsMultiMemberShards) {
  ShardPlan plan = MakePlan(false, 1, 1);
  plan.members = 2;
  plan.cut_schedule.cuts = 1;
  auto res = ShardedRunner(plan).Run();
  EXPECT_FALSE(res.ok());
}

TEST(ShardedRunnerTest, ZeroShardsIsAnError) {
  ShardPlan plan = MakePlan(false, 1, 1);
  plan.shards = 0;
  auto res = ShardedRunner(plan).Run();
  EXPECT_FALSE(res.ok());
}

// Device-level wheel-vs-heap cross-check (faults on and off): the whole
// simulated run — timestamps, latency distribution, fault stream,
// recovery work — must not depend on the event-queue backend.
TEST(BackendEquivalenceTest, FullDeviceRunIdenticalUnderHeapAndWheel) {
  for (const bool faults : {false, true}) {
    std::string fingerprints[2];
    int i = 0;
    for (const auto backend : {EventQueue::Backend::kBinaryHeap,
                               EventQueue::Backend::kTimingWheel}) {
      auto res = ShardedRunner(MakePlan(faults, /*shards=*/2, /*threads=*/1,
                                        backend))
                     .Run();
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      // The fault flavor must actually exercise the recovery machinery,
      // or the cross-check proves less than it claims.
      if (faults) {
        EXPECT_GT(res.value().reliability.TotalFaults(), 0u);
      }
      fingerprints[i++] = Fingerprint(res.value());
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]) << "faults=" << faults;
  }
}

}  // namespace
}  // namespace conzone
