// Parameterized whole-device sweeps: the full write→flush→read→reset
// cycle must hold across geometries (channel/chip counts, block sizes,
// media types, buffer pools, strategies) — the configuration space a
// ConZone user explores — plus bit-exact determinism of the simulation.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "workload/fio.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

struct GeometryCase {
  const char* name;
  std::uint32_t channels;
  std::uint32_t chips_per_channel;
  std::uint32_t pages_per_block;
  CellType cell;
  std::uint64_t program_unit;
  std::uint64_t zone_size;
  std::uint32_t num_buffers;
  L2pSearchStrategy strategy;
};

ConZoneConfig MakeConfig(const GeometryCase& p) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.channels = p.channels;
  cfg.geometry.chips_per_channel = p.chips_per_channel;
  cfg.geometry.pages_per_block = p.pages_per_block;
  cfg.geometry.normal_cell = p.cell;
  cfg.geometry.program_unit = p.program_unit;
  cfg.geometry.blocks_per_chip = 16;
  cfg.geometry.slc_blocks_per_chip = 4;
  cfg.zone_size_bytes = p.zone_size;
  cfg.buffers.num_buffers = p.num_buffers;
  cfg.translator.strategy = p.strategy;
  return cfg;
}

class DeviceGeometrySweep : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(DeviceGeometrySweep, FullCycleRoundTrips) {
  auto devr = ConZoneDevice::Create(MakeConfig(GetParam()));
  ASSERT_TRUE(devr.ok()) << devr.status().ToString();
  ConZoneDevice& dev = **devr;
  const std::uint64_t zb = dev.info().zone_size_bytes;
  ASSERT_GE(dev.info().num_zones, 2u);

  // Fill zone 0 with a mix of large and small writes (provoking both the
  // direct and the SLC-staged flush paths), verify, reset, rewrite.
  SimTime t;
  std::vector<std::uint64_t> tokens;
  std::uint64_t pos = 0;
  Rng rng(GetParam().zone_size);
  while (pos < zb) {
    const std::uint64_t len =
        std::min<std::uint64_t>((1 + rng.NextBelow(64)) * 4096, zb - pos);
    std::vector<std::uint64_t> tk(len / 4096);
    for (auto& v : tk) v = pos / 4096 + (&v - tk.data()) + 1000000;
    auto r = TestWrite(dev, pos, len, t, tk);
    ASSERT_TRUE(r.ok()) << "pos " << pos << ": " << r.status().ToString();
    t = r.value();
    tokens.insert(tokens.end(), tk.begin(), tk.end());
    pos += len;
  }
  EXPECT_EQ(dev.zones().Info(ZoneId{0}).state, ZoneState::kFull);

  std::vector<std::uint64_t> got;
  auto rr = TestRead(dev, 0, zb, t, &got);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  EXPECT_EQ(got, tokens);

  auto rs = dev.ResetZone(ZoneId{0}, rr.value());
  ASSERT_TRUE(rs.ok());
  auto w2 = TestWrite(dev, 0, 4096, rs.value());
  ASSERT_TRUE(w2.ok());
  std::vector<std::uint64_t> got2;
  ASSERT_TRUE(TestRead(dev, 0, 4096, w2.value(), &got2).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DeviceGeometrySweep,
    ::testing::Values(
        // Paper configuration, all three strategies.
        GeometryCase{"paper_bitmap", 2, 2, 252, CellType::kTlc, 96 * kKiB, 16 * kMiB,
                     2, L2pSearchStrategy::kBitmap},
        GeometryCase{"paper_multiple", 2, 2, 252, CellType::kTlc, 96 * kKiB, 16 * kMiB,
                     2, L2pSearchStrategy::kMultiple},
        GeometryCase{"paper_pinned", 2, 2, 252, CellType::kTlc, 96 * kKiB, 16 * kMiB,
                     2, L2pSearchStrategy::kPinned},
        // QLC with its 64 KiB one-shot unit (no alignment patch).
        GeometryCase{"qlc", 2, 2, 256, CellType::kQlc, 64 * kKiB, 16 * kMiB, 2,
                     L2pSearchStrategy::kBitmap},
        // Wider and narrower topologies.
        GeometryCase{"one_channel", 1, 2, 252, CellType::kTlc, 96 * kKiB, 8 * kMiB, 2,
                     L2pSearchStrategy::kBitmap},
        GeometryCase{"four_channels", 4, 2, 252, CellType::kTlc, 96 * kKiB, 32 * kMiB,
                     2, L2pSearchStrategy::kBitmap},
        GeometryCase{"single_chip", 1, 1, 252, CellType::kTlc, 96 * kKiB, 4 * kMiB, 1,
                     L2pSearchStrategy::kBitmap},
        // Tiny buffers stress the premature-flush path on every write.
        GeometryCase{"one_buffer", 2, 2, 252, CellType::kTlc, 96 * kKiB, 16 * kMiB, 1,
                     L2pSearchStrategy::kMultiple},
        GeometryCase{"six_buffers", 2, 2, 252, CellType::kTlc, 96 * kKiB, 16 * kMiB, 6,
                     L2pSearchStrategy::kBitmap}),
    [](const auto& info) { return std::string(info.param.name); });

// --- determinism ---

struct DeterminismCase {
  const char* name;
  IoPattern pattern;
  IoDirection direction;
  std::uint64_t block;
};

class DeterminismTest : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalTimelines) {
  auto run = [&]() -> std::pair<double, std::uint64_t> {
    ConZoneConfig cfg = ConZoneConfig::PaperConfig();
    cfg.geometry.blocks_per_chip = 16;
    cfg.geometry.slc_blocks_per_chip = 4;
    auto dev = ConZoneDevice::Create(cfg);
    EXPECT_TRUE(dev.ok());
    SimTime t;
    if (GetParam().direction == IoDirection::kRead) {
      EXPECT_TRUE(FioRunner::Precondition(**dev, 0, 32 * kMiB, 512 * kKiB, &t).ok());
    }
    FioRunner fio(**dev);
    JobSpec job;
    job.pattern = GetParam().pattern;
    job.direction = GetParam().direction;
    job.block_size = GetParam().block;
    job.region_size = 32 * kMiB;
    job.io_count = 300;
    job.reset_zones_on_wrap = true;  // sequential writes may lap the region
    job.seed = 12345;
    auto r = fio.Run({job}, t);
    EXPECT_TRUE(r.ok());
    return {r.value().latency.mean().us(), r.value().end_time.ns()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DeterminismTest,
    ::testing::Values(
        DeterminismCase{"seq_write", IoPattern::kSequential, IoDirection::kWrite,
                        512 * kKiB},
        DeterminismCase{"rand_write_small", IoPattern::kSequential, IoDirection::kWrite,
                        48 * kKiB},
        DeterminismCase{"seq_read", IoPattern::kSequential, IoDirection::kRead,
                        512 * kKiB},
        DeterminismCase{"rand_read", IoPattern::kRandom, IoDirection::kRead, 4096}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace conzone
