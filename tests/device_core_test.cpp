// End-to-end tests of ConZoneDevice: the write path (buffering, premature
// flush, SLC staging, fold-back, the alignment patch), the read path
// (buffer hits, hybrid translation), the erase path (zone reset), and the
// statistics the paper's experiments rely on.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "workload/fio.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

ConZoneConfig SmallConfig() {
  // Paper geometry shrunk for fast tests: 2ch x 2chips, TLC, 96 KiB
  // units, 16 MiB zones with a 256 KiB SLC patch — but fewer blocks.
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;  // 4 SLC + 16 normal => 16 zones
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

std::vector<std::uint64_t> Tokens(std::uint64_t first_lpn, std::uint64_t count,
                                  std::uint64_t salt = 0) {
  std::vector<std::uint64_t> t(count);
  for (std::uint64_t i = 0; i < count; ++i) t[i] = (first_lpn + i) * 1000003 + salt;
  return t;
}

class ConZoneDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dev = ConZoneDevice::Create(SmallConfig());
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    dev_ = std::move(dev).value();
    zone_bytes_ = dev_->config().zone_size_bytes;
  }

  /// Write with integrity tokens and verify a later read returns them.
  void WriteAt(std::uint64_t off, std::uint64_t len, SimTime& t, std::uint64_t salt = 0) {
    auto tokens = Tokens(off / 4096, len / 4096, salt);
    auto r = TestWrite(*dev_, off, len, t, tokens);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value();
  }

  void VerifyRead(std::uint64_t off, std::uint64_t len, SimTime& t,
                  std::uint64_t salt = 0) {
    std::vector<std::uint64_t> got;
    auto r = TestRead(*dev_, off, len, t, &got);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    t = r.value();
    auto want = Tokens(off / 4096, len / 4096, salt);
    ASSERT_EQ(got, want) << "payload mismatch at offset " << off;
  }

  std::unique_ptr<ConZoneDevice> dev_;
  std::uint64_t zone_bytes_ = 0;
};

TEST_F(ConZoneDeviceTest, InfoMatchesConfig) {
  const DeviceInfo di = dev_->info();
  EXPECT_EQ(di.zone_size_bytes, 16 * kMiB);
  EXPECT_EQ(di.num_zones, 16u);
  EXPECT_EQ(di.capacity_bytes, 16 * 16 * kMiB);
  EXPECT_EQ(di.io_alignment, 4096u);
}

TEST_F(ConZoneDeviceTest, SmallWriteStaysInBufferAndReadsBack) {
  SimTime t;
  WriteAt(0, 8 * 4096, t);
  // Nothing flushed yet: all data still in the volatile buffer.
  EXPECT_EQ(dev_->stats().flushes, 0u);
  EXPECT_EQ(dev_->media_counters().TotalSlotsProgrammed(), 0u);
  VerifyRead(0, 8 * 4096, t);
  EXPECT_EQ(dev_->stats().buffer_ram_reads, 8u);
}

TEST_F(ConZoneDeviceTest, FullBufferFlushProgramsSuperpage) {
  SimTime t;
  const std::uint64_t superpage = dev_->config().geometry.SuperpageBytes();
  WriteAt(0, superpage, t);
  EXPECT_EQ(dev_->stats().flushes, 1u);
  // A full superpage goes straight to normal blocks: no SLC staging.
  EXPECT_EQ(dev_->stats().premature_flushes, 0u);
  EXPECT_EQ(dev_->media_counters().slots_programmed_slc, 0u);
  EXPECT_EQ(dev_->media_counters().slots_programmed_normal, superpage / 4096);
  VerifyRead(0, superpage, t);
}

TEST_F(ConZoneDeviceTest, PrematureFlushStagesToSlc) {
  SimTime t;
  // 48 KiB into zone 0, then a write to zone 2 (same buffer, 2 buffers:
  // zones 0 and 2 are both even) forces a premature flush.
  WriteAt(0, 48 * kKiB, t);
  WriteAt(2 * zone_bytes_, 4096, t);
  EXPECT_EQ(dev_->stats().conflict_flushes, 1u);
  EXPECT_EQ(dev_->stats().premature_flushes, 1u);
  // 48 KiB < 96 KiB program unit: all 12 slots partial-programmed to SLC.
  EXPECT_EQ(dev_->media_counters().slots_programmed_slc, 12u);
  EXPECT_EQ(dev_->media_counters().slots_programmed_normal, 0u);
  VerifyRead(0, 48 * kKiB, t);
}

TEST_F(ConZoneDeviceTest, FoldReadsBackSlcAndProgramsNormal) {
  SimTime t;
  WriteAt(0, 48 * kKiB, t);                    // zone 0, buffered
  WriteAt(2 * zone_bytes_, 4096, t);           // conflict: 48 KiB staged to SLC
  WriteAt(48 * kKiB, 48 * kKiB, t);            // zone 0 again: 48 staged + 48 new
  WriteAt(2 * zone_bytes_ + 4096, 4096, t);    // conflict: fold 96 KiB to normal
  EXPECT_EQ(dev_->stats().folds, 1u);
  EXPECT_EQ(dev_->stats().fold_slots_read, 12u);  // the staged 48 KiB
  EXPECT_EQ(dev_->media_counters().slots_programmed_normal, 24u);  // one unit
  VerifyRead(0, 96 * kKiB, t);
}

TEST_F(ConZoneDeviceTest, FullZoneWriteAggregatesAndPatches) {
  SimTime t;
  // Fill zone 0 completely with 512 KiB writes.
  for (std::uint64_t off = 0; off < zone_bytes_; off += 512 * kKiB) {
    WriteAt(off, 512 * kKiB, t);
  }
  EXPECT_EQ(dev_->zones().Info(ZoneId{0}).state, ZoneState::kFull);
  // The 256 KiB tail beyond the 15.75 MiB reserved capacity went to SLC
  // as one contiguous patch run (§III-E).
  EXPECT_EQ(dev_->stats().patch_runs, 1u);
  const std::uint64_t patch_slots = dev_->layout().patch_bytes() / 4096;
  EXPECT_EQ(dev_->media_counters().slots_programmed_slc, patch_slots);
  // Zone-level aggregation happened (Fig. 5): one zone aggregate stamped.
  EXPECT_EQ(dev_->stats().aggregates_zone, 1u);
  EXPECT_EQ(dev_->mapping().Get(Lpn{0}).gran, MapGranularity::kZone);
  // Reads across the whole zone (including the patch) verify.
  VerifyRead(0, zone_bytes_, t);
}

TEST_F(ConZoneDeviceTest, ChunkAggregationHappensAsChunksComplete) {
  SimTime t;
  // Write 8.25 MiB = 22 full superpages, so flushes land exactly on the
  // 384 KiB buffer boundary and the first two 4 MiB chunks are durable in
  // the normal region.
  for (std::uint64_t off = 0; off < 8448 * kKiB; off += 384 * kKiB) {
    WriteAt(off, 384 * kKiB, t);
  }
  EXPECT_GE(dev_->stats().aggregates_chunk, 2u);
  EXPECT_EQ(dev_->mapping().Get(Lpn{0}).gran, MapGranularity::kChunk);
  EXPECT_EQ(dev_->mapping().Get(Lpn{1024}).gran, MapGranularity::kChunk);
  EXPECT_EQ(dev_->mapping().Get(Lpn{2048}).gran, MapGranularity::kPage);
}

TEST_F(ConZoneDeviceTest, ChunkTailStagedInSlcBlocksAggregation) {
  SimTime t;
  // 8 MiB written but the last 128 KiB (8 MiB % 384 KiB) is still
  // buffered; an explicit flush stages it to SLC — so chunk 1 is NOT
  // physically contiguous and must stay page-mapped (§III-C: "data
  // temporarily written to SLC cannot be aggregated").
  for (std::uint64_t off = 0; off < 8 * kMiB; off += 512 * kKiB) {
    WriteAt(off, 512 * kKiB, t);
  }
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(dev_->mapping().Get(Lpn{0}).gran, MapGranularity::kChunk);
  EXPECT_EQ(dev_->mapping().Get(Lpn{1024}).gran, MapGranularity::kPage);
}

TEST_F(ConZoneDeviceTest, ZoneResetErasesAndUnmaps) {
  SimTime t;
  for (std::uint64_t off = 0; off < zone_bytes_; off += 512 * kKiB) {
    WriteAt(off, 512 * kKiB, t);
  }
  auto r = dev_->ResetZone(ZoneId{0}, t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  t = r.value();
  EXPECT_EQ(dev_->zones().Info(ZoneId{0}).state, ZoneState::kEmpty);
  EXPECT_FALSE(dev_->mapping().Get(Lpn{0}).mapped());
  // Reads of a reset zone fail.
  auto bad = TestRead(*dev_, 0, 4096, t);
  EXPECT_FALSE(bad.ok());
  // The zone is writable again and data verifies with fresh payloads.
  WriteAt(0, 512 * kKiB, t, /*salt=*/7);
  VerifyRead(0, 512 * kKiB, t, /*salt=*/7);
}

TEST_F(ConZoneDeviceTest, NonSequentialWriteRejected) {
  SimTime t;
  WriteAt(0, 4096, t);
  auto r = TestWrite(*dev_, 8192, 4096, t);  // skips the write pointer
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ConZoneDeviceTest, WriteCrossingZoneBoundaryRejected) {
  SimTime t;
  for (std::uint64_t off = 0; off < zone_bytes_ - 512 * kKiB; off += 512 * kKiB) {
    WriteAt(off, 512 * kKiB, t);
  }
  auto r = TestWrite(*dev_, zone_bytes_ - 4096, 8192, t);
  EXPECT_FALSE(r.ok());
}

TEST_F(ConZoneDeviceTest, ReadBeyondWritePointerRejected) {
  SimTime t;
  WriteAt(0, 4096, t);
  auto r = TestRead(*dev_, 4096, 4096, t);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ConZoneDeviceTest, WriteAmplificationAccountsSlcDetour) {
  SimTime t;
  // Zone-switching 48 KiB writes between two same-parity zones: every
  // flush is premature, so data is written twice (SLC then normal).
  std::uint64_t off0 = 0, off2 = 2 * zone_bytes_;
  for (int i = 0; i < 32; ++i) {
    WriteAt(off0, 48 * kKiB, t);
    off0 += 48 * kKiB;
    WriteAt(off2, 48 * kKiB, t, 1);
    off2 += 48 * kKiB;
  }
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok());
  EXPECT_GT(dev_->Stats().WriteAmplification(), 1.2);
  EXPECT_GT(dev_->stats().premature_flushes, 10u);
}

TEST_F(ConZoneDeviceTest, FlushAllMakesDataDurable) {
  SimTime t;
  WriteAt(0, 12 * kKiB, t);
  auto f = dev_->Flush(t);
  ASSERT_TRUE(f.ok());
  t = f.value();
  EXPECT_EQ(dev_->stats().buffer_ram_reads, 0u);
  VerifyRead(0, 12 * kKiB, t);
  EXPECT_EQ(dev_->stats().buffer_ram_reads, 0u);  // served from SLC, not RAM
}

TEST_F(ConZoneDeviceTest, TimingLatenciesAreSane) {
  SimTime t;
  // A buffered 4 KiB write completes in microseconds (RAM, no flash).
  auto w = TestWrite(*dev_, 0, 4096, t);
  ASSERT_TRUE(w.ok());
  EXPECT_LT((w.value() - t).us(), 100.0);
  // Reading it back from the buffer is also fast.
  auto r = TestRead(*dev_, 0, 4096, w.value());
  ASSERT_TRUE(r.ok());
  EXPECT_LT((r.value() - w.value()).us(), 100.0);
}

TEST_F(ConZoneDeviceTest, L2pLogDisabledByDefault) {
  SimTime t;
  WriteAt(0, 512 * kKiB, t);
  EXPECT_EQ(dev_->l2p_log().stats().entries_appended, 0u);
  EXPECT_EQ(dev_->l2p_log().stats().flushes, 0u);
}

TEST(ConZoneL2pLogTest, LogAccumulatesAndFlushesBlocking) {
  ConZoneConfig cfg = SmallConfig();
  cfg.l2p_log.enabled = true;
  cfg.l2p_log.entry_bytes = 8;
  cfg.l2p_log.flush_threshold_bytes = 16 * kKiB;  // 2048 updates
  auto devr = ConZoneDevice::Create(cfg);
  ASSERT_TRUE(devr.ok());
  ConZoneDevice& d = **devr;
  SimTime t;
  // 16 MiB of writes = 4096 mapping updates = 2 log flushes.
  for (std::uint64_t off = 0; off < 16 * kMiB; off += 512 * kKiB) {
    auto r = TestWrite(d, off, 512 * kKiB, t);
    ASSERT_TRUE(r.ok());
    t = r.value();
  }
  EXPECT_GE(d.l2p_log().stats().entries_appended, 4096u);
  // Each flush drains everything pending at the crossing.
  EXPECT_GE(d.l2p_log().stats().flushes, 1u);
  EXPECT_GE(d.l2p_log().stats().bytes_flushed, 16 * kKiB);
  // Remainder stays pending until the next threshold crossing.
  EXPECT_LT(d.l2p_log().pending_bytes(), 16 * kKiB);
  EXPECT_EQ(d.l2p_log().stats().bytes_flushed + d.l2p_log().pending_bytes(),
            d.l2p_log().stats().entries_appended * 8);
}

TEST(ConZoneL2pLogTest, LogFlushCostsWriteTime) {
  auto run = [](bool log_on) {
    ConZoneConfig cfg = SmallConfig();
    cfg.l2p_log.enabled = log_on;
    cfg.l2p_log.flush_threshold_bytes = 4 * kKiB;  // aggressive, every 512 updates
    auto devr = ConZoneDevice::Create(cfg);
    EXPECT_TRUE(devr.ok());
    SimTime t;
    for (std::uint64_t off = 0; off < 16 * kMiB; off += 512 * kKiB) {
      t = TestWrite(**devr, off, 512 * kKiB, t).value();
    }
    auto f = (*devr)->Flush(t);
    EXPECT_TRUE(f.ok());
    return f.value();
  };
  EXPECT_GT(run(true), run(false));
}

TEST(ConZoneL2pLogTest, ConfigValidated) {
  ConZoneConfig cfg = SmallConfig();
  cfg.l2p_log.enabled = true;
  cfg.l2p_log.entry_bytes = 8;
  cfg.l2p_log.flush_threshold_bytes = 4;  // below entry size
  EXPECT_FALSE(ConZoneDevice::Create(cfg).ok());
}

TEST_F(ConZoneDeviceTest, SequentialFillWholeDeviceAndVerify) {
  // Fill 4 zones, read everything back — integrity across buffer, SLC
  // staging, fold-back and the patch path.
  SimTime t;
  for (std::uint64_t z = 0; z < 4; ++z) {
    for (std::uint64_t off = 0; off < zone_bytes_; off += 512 * kKiB) {
      WriteAt(z * zone_bytes_ + off, 512 * kKiB, t, z);
    }
  }
  for (std::uint64_t z = 0; z < 4; ++z) {
    VerifyRead(z * zone_bytes_, zone_bytes_, t, z);
  }
  EXPECT_EQ(dev_->stats().aggregates_zone, 4u);
}

}  // namespace
}  // namespace conzone
