// RedundantVolume tests: the robustness contract over member devices.
//
//   * Geometry validation: mixed zonedness, bad replica/width arithmetic
//     and conventional parity are rejected at Create().
//   * Data path: mirror and parity layouts round-trip integrity tokens,
//     with and without host-supplied tokens, at sub-unit granularity.
//   * Degraded service: a failed member (MarkFailed, power cut, or a
//     failed write leg) does not fail foreground reads — mirrors fail
//     over, parity XOR-reconstructs — and the per-IO and aggregate
//     counters attribute the work.
//   * Online scrub: a power-cut replica is re-completed from its peers
//     at the write pointer, divergent conventional replicas are repaired
//     by overwrite, and a failed member that ends a clean pass is
//     readmitted to service.
//   * Live rebuild: ReplaceMember converges the fresh member to the
//     byte-identical durable content of its sources while foreground
//     traffic keeps flowing — including across a power cut of the fresh
//     member mid-rebuild.
//   * Determinism: same-seed reruns and executor thread counts
//     {serial,2,4,8} produce bit-identical completions, tokens and
//     RedundancyStats.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "conzone/conzone.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

std::vector<std::uint64_t> Tokens(std::uint64_t first, std::uint64_t n,
                                  std::uint64_t salt = 0) {
  std::vector<std::uint64_t> t(n);
  for (std::uint64_t i = 0; i < n; ++i) t[i] = (first + i) * 7919 + salt + 1;
  return t;
}

std::unique_ptr<StorageDevice> MakeFemu(std::uint64_t seed) {
  FemuConfig cfg;
  cfg.seed = seed;
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  auto dev = FemuModelDevice::Create(cfg);
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

std::unique_ptr<StorageDevice> MakeLegacy(std::uint64_t seed) {
  LegacyConfig cfg;
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  (void)seed;
  auto dev = LegacyDevice::Create(cfg);
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

ConZoneConfig SmallConZoneCfg() {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  return cfg;
}

Result<std::unique_ptr<RedundantVolume>> MakeFemuMirror(
    std::uint32_t members, std::uint32_t replicas = 0,
    std::uint64_t stripe = 64 * kKiB) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < members; ++i) devs.push_back(MakeFemu(i + 1));
  RedundantVolumeOptions opt;
  opt.layout = RedundancyLayout::kMirror;
  opt.stripe_bytes = stripe;
  opt.replicas = replicas;
  return RedundantVolume::Create(std::move(devs), opt);
}

Result<std::unique_ptr<RedundantVolume>> MakeFemuParity(
    std::uint32_t members, std::uint32_t width = 0,
    std::uint64_t stripe = 64 * kKiB) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < members; ++i) devs.push_back(MakeFemu(i + 1));
  RedundantVolumeOptions opt;
  opt.layout = RedundancyLayout::kParity;
  opt.stripe_bytes = stripe;
  opt.stripe_width = width;
  return RedundantVolume::Create(std::move(devs), opt);
}

/// The durable readable prefix of one member zone, 4 KiB slot by slot
/// (test-side linear reference for the volume's binary-search probe).
std::vector<std::uint64_t> MemberZonePrefix(StorageDevice& dev,
                                            std::uint64_t zone, SimTime now) {
  const DeviceInfo di = dev.info();
  const std::uint64_t mzs = di.zone_size_bytes;
  std::vector<std::uint64_t> out;
  for (std::uint64_t off = 0; off < mzs; off += di.io_alignment) {
    auto r = dev.Read(IoRequest{zone * mzs + off, di.io_alignment, now, {},
                                /*want_tokens=*/true});
    if (!r.ok()) break;
    out.push_back(r.value().tokens[0]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Create() validation
// ---------------------------------------------------------------------------

TEST(RedundantVolumeCreateTest, RejectsBadGeometry) {
  // Mixed zonedness.
  {
    std::vector<std::unique_ptr<StorageDevice>> devs;
    devs.push_back(MakeFemu(1));
    devs.push_back(MakeLegacy(2));
    auto r = RedundantVolume::Create(std::move(devs), {});
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Mirror replicas must divide the member count and be >= 2.
  {
    auto r = MakeFemuMirror(4, /*replicas=*/3);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Parity needs at least 3 lanes per set.
  {
    auto r = MakeFemuParity(4, /*width=*/2);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Parity over conventional members is rejected.
  {
    std::vector<std::unique_ptr<StorageDevice>> devs;
    for (int i = 0; i < 3; ++i) devs.push_back(MakeLegacy(i + 1));
    RedundantVolumeOptions opt;
    opt.layout = RedundancyLayout::kParity;
    auto r = RedundantVolume::Create(std::move(devs), opt);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Conventional mirrors replicate across all members.
  {
    std::vector<std::unique_ptr<StorageDevice>> devs;
    for (int i = 0; i < 4; ++i) devs.push_back(MakeLegacy(i + 1));
    RedundantVolumeOptions opt;
    opt.replicas = 2;
    auto r = RedundantVolume::Create(std::move(devs), opt);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Stripe unit must divide the member zone size.
  {
    auto r = MakeFemuMirror(2, /*replicas=*/0, /*stripe=*/40 * kKiB);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // A single member is not a redundant volume.
  {
    std::vector<std::unique_ptr<StorageDevice>> devs;
    devs.push_back(MakeFemu(1));
    auto r = RedundantVolume::Create(std::move(devs), {});
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(RedundantVolumeCreateTest, GeometryAndZoneMapping) {
  auto volr = MakeFemuMirror(4, /*replicas=*/2);
  ASSERT_TRUE(volr.ok()) << volr.status().ToString();
  RedundantVolume& v = **volr;
  const DeviceInfo mi = v.member(0).info();

  // Two groups of two replicas: logical zones interleave across groups,
  // each the size of one member zone.
  EXPECT_EQ(v.group_size(), 2u);
  EXPECT_EQ(v.info().zone_size_bytes, mi.zone_size_bytes);
  EXPECT_EQ(v.info().num_zones, 2 * mi.num_zones);
  EXPECT_EQ(v.info().health, DeviceHealth::kHealthy);

  // ToMemberZone/ToLogicalZone are inverse: logical zone 3 is group 1,
  // member zone row 1 — members 2 and 3.
  const MemberZone mz = v.ToMemberZone(ZoneId{3}, /*lane=*/1);
  EXPECT_EQ(mz.member, 3u);
  EXPECT_EQ(mz.zone.value(), 1u);
  EXPECT_EQ(v.ToLogicalZone(mz).value(), 3u);

  // Parity: a W-lane set exposes (W-1) member zones of data per logical
  // zone, and the parity lane rotates per row.
  auto pr = MakeFemuParity(3);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  RedundantVolume& p = **pr;
  EXPECT_EQ(p.info().zone_size_bytes, 2 * mi.zone_size_bytes);
  EXPECT_EQ(p.ParityLane(0), 2u);
  EXPECT_EQ(p.ParityLane(1), 1u);
  EXPECT_EQ(p.ParityLane(2), 0u);
  EXPECT_EQ(p.ParityLane(3), 2u);
}

// ---------------------------------------------------------------------------
// Data path round trips
// ---------------------------------------------------------------------------

TEST(RedundantVolumeTest, MirrorRoundTripAndReplicaAgreement) {
  auto volr = MakeFemuMirror(2);
  ASSERT_TRUE(volr.ok()) << volr.status().ToString();
  RedundantVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();

  SimTime t;
  const auto toks = Tokens(0, 3 * stripe / 4096);
  auto w = v.Write(IoRequest{0, 3 * stripe, t, toks});
  ASSERT_TRUE(w.ok()) << w.status().ToString();

  // Through the volume, at sub-unit granularity.
  auto r = v.Read(IoRequest{4096, stripe, w.value().done, {}, true});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tokens, Tokens(1, stripe / 4096));
  EXPECT_EQ(r.value().reconstructed_units, 0u);

  // Both replicas hold identical content at identical member offsets.
  for (std::uint32_t m = 0; m < 2; ++m) {
    auto mr = v.member(m).Read(
        IoRequest{0, 3 * stripe, r.value().done, {}, true});
    ASSERT_TRUE(mr.ok()) << mr.status().ToString();
    EXPECT_EQ(mr.value().tokens, toks) << "member " << m;
  }

  // Token-less host writes materialize the volume token on every
  // replica, so replica comparison stays well-defined.
  auto w2 = v.Write(IoRequest{3 * stripe, stripe, r.value().done});
  ASSERT_TRUE(w2.ok()) << w2.status().ToString();
  auto a = v.member(0).Read(IoRequest{3 * stripe, stripe, w2.value().done, {}, true});
  auto b = v.member(1).Read(IoRequest{3 * stripe, stripe, w2.value().done, {}, true});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().tokens, b.value().tokens);

  EXPECT_EQ(v.Redundancy().degraded_reads, 0u);
  EXPECT_EQ(v.Redundancy().degraded_writes, 0u);
}

TEST(RedundantVolumeTest, ParityRoundTripRequiresWholeRows) {
  auto volr = MakeFemuParity(3, /*width=*/0, /*stripe=*/16 * kKiB);
  ASSERT_TRUE(volr.ok()) << volr.status().ToString();
  RedundantVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();
  const std::uint64_t row = 2 * stripe;  // W-1 data units per row.

  SimTime t;
  // Sub-row writes are rejected (full-stripe writes only).
  EXPECT_EQ(v.Write(IoRequest{0, stripe, t, Tokens(0, stripe / 4096)})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const auto toks = Tokens(0, 6 * row / 4096);
  auto w = v.Write(IoRequest{0, 6 * row, t, toks});
  ASSERT_TRUE(w.ok()) << w.status().ToString();

  // Reads are unconstrained: whole range, one unit, and an unaligned-
  // to-unit span crossing rows all round-trip.
  auto r1 = v.Read(IoRequest{0, 6 * row, w.value().done, {}, true});
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1.value().tokens, toks);
  auto r2 = v.Read(IoRequest{3 * stripe, stripe, r1.value().done, {}, true});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().tokens, Tokens(3 * stripe / 4096, stripe / 4096));
  auto r3 = v.Read(IoRequest{stripe + 8192, row, r2.value().done, {}, true});
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value().tokens, Tokens((stripe + 8192) / 4096, row / 4096));

  // Every row's lanes XOR to zero on the members (rotating parity).
  for (std::uint64_t k = 0; k < 6; ++k) {
    for (std::uint64_t j = 0; j < stripe / 4096; ++j) {
      std::uint64_t acc = 0;
      for (std::uint32_t m = 0; m < 3; ++m) {
        auto mr = v.member(m).Read(
            IoRequest{k * stripe + j * 4096, 4096, r3.value().done, {}, true});
        ASSERT_TRUE(mr.ok());
        acc ^= mr.value().tokens[0];
      }
      EXPECT_EQ(acc, 0u) << "row " << k << " slot " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Degraded service
// ---------------------------------------------------------------------------

TEST(RedundantVolumeTest, MirrorDegradedReadAfterMemberFailure) {
  auto volr = MakeFemuMirror(2);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();

  SimTime t;
  const auto toks = Tokens(0, 4 * stripe / 4096);
  auto w = v.Write(IoRequest{0, 4 * stripe, t, toks});
  ASSERT_TRUE(w.ok());

  ASSERT_TRUE(v.MarkFailed(0).ok());
  EXPECT_EQ(v.member_state(0), MemberState::kFailed);

  // Reads still succeed, attributed as degraded with per-IO unit counts.
  auto r = v.Read(IoRequest{0, 4 * stripe, w.value().done, {}, true});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tokens, toks);
  auto one = v.Read(IoRequest{stripe, stripe, r.value().done, {}, true});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().tokens, Tokens(stripe / 4096, stripe / 4096));

  // Some of those reads had replica 0 as primary and failed over.
  EXPECT_GT(v.Redundancy().degraded_reads, 0u);
  EXPECT_GT(v.Redundancy().reconstructed_units, 0u);
  EXPECT_EQ(v.Redundancy().member_failures, 1u);

  // Writes keep landing on the survivor, counted degraded.
  auto w2 = v.Write(IoRequest{4 * stripe, stripe, one.value().done,
                              Tokens(4 * stripe / 4096, stripe / 4096)});
  ASSERT_TRUE(w2.ok()) << w2.status().ToString();
  EXPECT_GT(v.Redundancy().degraded_writes, 0u);
  auto r2 = v.Read(IoRequest{4 * stripe, stripe, w2.value().done, {}, true});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().tokens, Tokens(4 * stripe / 4096, stripe / 4096));
}

TEST(RedundantVolumeTest, ParityDegradedReadReconstructsLostLane) {
  auto volr = MakeFemuParity(3, /*width=*/0, /*stripe=*/16 * kKiB);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t row = 2 * v.stripe_bytes();

  SimTime t;
  const auto toks = Tokens(0, 8 * row / 4096);
  auto w = v.Write(IoRequest{0, 8 * row, t, toks});
  ASSERT_TRUE(w.ok());

  ASSERT_TRUE(v.MarkFailed(1).ok());
  auto r = v.Read(IoRequest{0, 8 * row, w.value().done, {}, true});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tokens, toks);
  EXPECT_GT(r.value().reconstructed_units, 0u);
  EXPECT_GT(v.Redundancy().degraded_reads, 0u);
  EXPECT_GT(v.Redundancy().reconstructed_units, 0u);

  // A second lane loss exceeds single-parity tolerance: reads fail and
  // the volume reports itself offline.
  ASSERT_TRUE(v.MarkFailed(2).ok());
  EXPECT_FALSE(v.Read(IoRequest{0, row, r.value().done, {}, true}).ok());
  EXPECT_EQ(v.info().health, DeviceHealth::kOffline);
}

TEST(RedundantVolumeTest, PowerCutMemberServedDegradedThenLatched) {
  ConZoneConfig cfg = SmallConZoneCfg();
  cfg.fault.power_loss = true;

  std::vector<ConZoneDevice*> raw;
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto dev = ConZoneDevice::Create(cfg.ForShard(i, 42));
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    raw.push_back(dev.value().get());
    devs.push_back(std::move(dev).value());
  }
  RedundantVolumeOptions opt;
  opt.stripe_bytes = 16 * kKiB;
  auto volr = RedundantVolume::Create(std::move(devs), opt);
  ASSERT_TRUE(volr.ok()) << volr.status().ToString();
  RedundantVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();

  SimTime t;
  auto w = v.Write(IoRequest{0, 8 * stripe, t, Tokens(0, 8 * stripe / 4096)});
  ASSERT_TRUE(w.ok());
  auto f = v.Flush(w.value().done);
  ASSERT_TRUE(f.ok());

  // Cut one replica. Reads fail over transparently; the first write
  // that hits the dead replica latches it failed.
  ASSERT_TRUE(raw[1]->PowerCut(f.value()).ok());
  auto r = v.Read(IoRequest{0, 8 * stripe, f.value(), {}, true});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tokens, Tokens(0, 8 * stripe / 4096));
  EXPECT_EQ(v.member_state(1), MemberState::kActive);

  auto w2 = v.Write(IoRequest{8 * stripe, stripe, r.value().done,
                              Tokens(8 * stripe / 4096, stripe / 4096)});
  ASSERT_TRUE(w2.ok()) << w2.status().ToString();
  EXPECT_EQ(v.member_state(1), MemberState::kFailed);
  EXPECT_EQ(v.Redundancy().member_failures, 1u);
}

// ---------------------------------------------------------------------------
// Online scrub
// ---------------------------------------------------------------------------

TEST(RedundantVolumeTest, ScrubRepairsCutReplicaAndReadmitsIt) {
  ConZoneConfig cfg = SmallConZoneCfg();
  cfg.fault.power_loss = true;

  std::vector<ConZoneDevice*> raw;
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto dev = ConZoneDevice::Create(cfg.ForShard(i, 7));
    ASSERT_TRUE(dev.ok());
    raw.push_back(dev.value().get());
    devs.push_back(std::move(dev).value());
  }
  RedundantVolumeOptions opt;
  opt.stripe_bytes = 16 * kKiB;
  auto volr = RedundantVolume::Create(std::move(devs), opt);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();

  // Durable ground, then a torn tail, then cut + remount replica 1: its
  // content regresses to a durable prefix while replica 0 keeps all.
  SimTime t;
  auto w = v.Write(IoRequest{0, 12 * stripe, t, Tokens(0, 12 * stripe / 4096)});
  ASSERT_TRUE(w.ok());
  auto f = v.Flush(w.value().done);
  ASSERT_TRUE(f.ok());
  auto wt = v.Write(IoRequest{12 * stripe, 5 * stripe, f.value(),
                              Tokens(12 * stripe / 4096, 5 * stripe / 4096)});
  ASSERT_TRUE(wt.ok());
  ASSERT_TRUE(raw[1]->PowerCut(wt.value().done).ok());
  auto rec = raw[1]->Recover(wt.value().done);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  SimTime now = rec.value();

  ASSERT_TRUE(v.MarkFailed(1).ok());
  const auto before = MemberZonePrefix(v.member(1), 0, now);
  const auto full = MemberZonePrefix(v.member(0), 0, now);
  ASSERT_EQ(full.size(), 17 * stripe / 4096);

  // One full scrub pass re-completes the lagging replica at its write
  // pointer and readmits the failed member.
  ASSERT_TRUE(v.StartScrub(now).ok());
  for (int i = 0; i < 10000 && v.scrub_active(); ++i) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_FALSE(v.scrub_active());

  EXPECT_EQ(v.Redundancy().scrubs_completed, 1u);
  if (before.size() < full.size()) {
    EXPECT_GE(v.Redundancy().scrub_repaired_slots, full.size() - before.size());
  }
  EXPECT_EQ(v.Redundancy().scrub_mismatches, 0u);
  EXPECT_TRUE(v.scrub_log().empty());
  EXPECT_EQ(v.member_state(1), MemberState::kActive);
  EXPECT_EQ(v.Redundancy().members_readmitted, 1u);
  EXPECT_EQ(MemberZonePrefix(v.member(1), 0, now), full);
}

TEST(RedundantVolumeTest, ConventionalScrubRepairsDivergentReplica) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (int i = 0; i < 2; ++i) devs.push_back(MakeLegacy(i + 1));
  auto volr = RedundantVolume::Create(std::move(devs), {});
  ASSERT_TRUE(volr.ok()) << volr.status().ToString();
  RedundantVolume& v = **volr;
  EXPECT_EQ(v.info().zone_size_bytes, 0u);

  SimTime t;
  const auto toks = Tokens(0, 64);
  auto w = v.Write(IoRequest{0, 64 * 4096, t, toks});
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  auto f = v.Flush(w.value().done);
  ASSERT_TRUE(f.ok());
  SimTime now = f.value();

  // Diverge replica 1 behind the volume's back (conventional media
  // overwrites in place, so scrub can repair it the same way). Flushed
  // so the divergent token is durable, not shadowed by an older extent.
  const std::uint64_t evil = 0xBAADF00Dull;
  auto dw = v.member(1).Write(
      IoRequest{5 * 4096, 4096, now, std::span<const std::uint64_t>(&evil, 1)});
  ASSERT_TRUE(dw.ok());
  auto df = v.member(1).Flush(dw.value().done);
  ASSERT_TRUE(df.ok());
  now = df.value();

  ASSERT_TRUE(v.StartScrub(now).ok());
  for (int i = 0; i < 100000 && v.scrub_active(); ++i) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_FALSE(v.scrub_active());

  // The divergence was found, logged, and repaired from replica 0.
  EXPECT_EQ(v.Redundancy().scrub_mismatches, 1u);
  ASSERT_EQ(v.scrub_log().size(), 1u);
  EXPECT_EQ(v.scrub_log()[0].member, 1u);
  EXPECT_GE(v.Redundancy().scrub_repaired_slots, 1u);
  auto r = v.member(1).Read(IoRequest{5 * 4096, 4096, now, {}, true});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tokens[0], toks[5]);
}

// Regression: the conventional scrub must never treat a failed member
// as the slot authority. Member 0 (lowest index) fails, degraded-mode
// writes land on member 1 only — a scrub pass must repair member 0 from
// member 1, not overwrite member 1's acknowledged writes with member
// 0's stale tokens.
TEST(RedundantVolumeTest, ConventionalScrubPrefersActiveSourceOverFailed) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (int i = 0; i < 2; ++i) devs.push_back(MakeLegacy(i + 1));
  auto volr = RedundantVolume::Create(std::move(devs), {});
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;

  SimTime t;
  const auto old_toks = Tokens(0, 64);
  auto w = v.Write(IoRequest{0, 64 * 4096, t, old_toks});
  ASSERT_TRUE(w.ok());
  auto f = v.Flush(w.value().done);
  ASSERT_TRUE(f.ok());
  SimTime now = f.value();

  // Degraded-mode overwrite of slots 3..10: acknowledged by member 1
  // alone while member 0 keeps the stale tokens at the same offsets.
  ASSERT_TRUE(v.MarkFailed(0).ok());
  const auto new_toks = Tokens(100, 8, /*salt=*/0xD1FF);
  auto dw = v.Write(IoRequest{3 * 4096, 8 * 4096, now, new_toks});
  ASSERT_TRUE(dw.ok()) << dw.status().ToString();
  auto df = v.Flush(dw.value().done);
  ASSERT_TRUE(df.ok());
  now = df.value();

  ASSERT_TRUE(v.StartScrub(now).ok());
  for (int i = 0; i < 100000 && v.scrub_active(); ++i) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_FALSE(v.scrub_active());

  // The acknowledged (degraded) writes survived on the active replica,
  // the failed member was repaired to match them and readmitted.
  EXPECT_EQ(v.Redundancy().scrub_mismatches, 8u);
  for (std::uint32_t m = 0; m < 2; ++m) {
    auto r = v.member(m).Read(IoRequest{3 * 4096, 8 * 4096, now, {}, true});
    ASSERT_TRUE(r.ok()) << "member " << m;
    EXPECT_EQ(r.value().tokens, new_toks) << "member " << m;
  }
  EXPECT_EQ(v.member_state(0), MemberState::kActive);
  EXPECT_EQ(v.Redundancy().members_readmitted, 1u);
}

// Regression: a zone reset issued while a member was failed AND offline
// cannot reach it; once it is back online, a scrub must not "repair" the
// freshly-reset active replica by re-appending the stale member's old
// tokens (resurrecting deleted data and skewing the active replica's
// write pointer), and must not readmit the stale member.
TEST(RedundantVolumeTest, MirrorScrubDoesNotResurrectZoneResetContent) {
  ConZoneConfig cfg = SmallConZoneCfg();
  cfg.fault.power_loss = true;

  std::vector<ConZoneDevice*> raw;
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto dev = ConZoneDevice::Create(cfg.ForShard(i, 21));
    ASSERT_TRUE(dev.ok());
    raw.push_back(dev.value().get());
    devs.push_back(std::move(dev).value());
  }
  RedundantVolumeOptions opt;
  opt.stripe_bytes = 16 * kKiB;
  auto volr = RedundantVolume::Create(std::move(devs), opt);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();

  SimTime t;
  auto w = v.Write(IoRequest{0, 8 * stripe, t, Tokens(0, 8 * stripe / 4096)});
  ASSERT_TRUE(w.ok());
  auto f = v.Flush(w.value().done);
  ASSERT_TRUE(f.ok());
  SimTime now = f.value();

  // Member 1 goes dark, then the host deletes the zone: the reset lands
  // on member 0 only; member 1 still holds the old content when it
  // returns (still latched failed).
  ASSERT_TRUE(raw[1]->PowerCut(now).ok());
  ASSERT_TRUE(v.MarkFailed(1).ok());
  auto rz = v.ResetZone(ZoneId{0}, now);
  ASSERT_TRUE(rz.ok()) << rz.status().ToString();
  auto rec = raw[1]->Recover(rz.value());
  ASSERT_TRUE(rec.ok());
  now = rec.value();
  ASSERT_FALSE(MemberZonePrefix(v.member(1), 0, now).empty());

  ASSERT_TRUE(v.StartScrub(now).ok());
  for (int i = 0; i < 10000 && v.scrub_active(); ++i) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_FALSE(v.scrub_active());

  // The stale member was flagged, not used as a repair source: the
  // active replica's zone stays empty, member 1 stays quarantined.
  EXPECT_TRUE(MemberZonePrefix(v.member(0), 0, now).empty());
  EXPECT_GE(v.Redundancy().scrub_mismatches, 1u);
  EXPECT_EQ(v.member_state(1), MemberState::kFailed);
  EXPECT_EQ(v.Redundancy().members_readmitted, 0u);

  // And host writes at the reset zone's start still land at offset 0.
  auto w2 = v.Write(IoRequest{0, stripe, now, Tokens(500, stripe / 4096)});
  ASSERT_TRUE(w2.ok()) << w2.status().ToString();
  auto r2 = v.Read(IoRequest{0, stripe, w2.value().done, {}, true});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().tokens, Tokens(500, stripe / 4096));
}

// A zone reset propagates (best-effort) to a failed member that is
// still online, so readmission starts from an in-sync, empty zone: the
// next scrub pass finds nothing stale and readmits.
TEST(RedundantVolumeTest, ResetZonePropagatesToFailedOnlineMember) {
  auto volr = MakeFemuMirror(2, /*replicas=*/0, /*stripe=*/16 * kKiB);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();

  SimTime t;
  auto w = v.Write(IoRequest{0, 4 * stripe, t, Tokens(0, 4 * stripe / 4096)});
  ASSERT_TRUE(w.ok());
  SimTime now = w.value().done;

  ASSERT_TRUE(v.MarkFailed(1).ok());
  auto rz = v.ResetZone(ZoneId{0}, now);
  ASSERT_TRUE(rz.ok()) << rz.status().ToString();
  now = rz.value();
  EXPECT_TRUE(MemberZonePrefix(v.member(1), 0, now).empty());

  ASSERT_TRUE(v.StartScrub(now).ok());
  for (int i = 0; i < 10000 && v.scrub_active(); ++i) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_FALSE(v.scrub_active());
  EXPECT_EQ(v.Redundancy().scrub_mismatches, 0u);
  EXPECT_EQ(v.member_state(1), MemberState::kActive);
  EXPECT_EQ(v.Redundancy().members_readmitted, 1u);
}

// Regression: a parity write that is already beyond single-fault
// tolerance must be refused before any leg is issued — the surviving
// lane's write pointer must not advance within the stripe row.
TEST(RedundantVolumeTest, ParityWriteBeyondToleranceRefusedUpFront) {
  auto volr = MakeFemuParity(3, /*width=*/0, /*stripe=*/16 * kKiB);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t row = 2 * v.stripe_bytes();

  SimTime t;
  auto w = v.Write(IoRequest{0, 2 * row, t, Tokens(0, 2 * row / 4096)});
  ASSERT_TRUE(w.ok());
  SimTime now = w.value().done;

  ASSERT_TRUE(v.MarkFailed(1).ok());
  ASSERT_TRUE(v.MarkFailed(2).ok());
  const auto before = MemberZonePrefix(v.member(0), 0, now);
  auto w2 = v.Write(IoRequest{2 * row, row, now, Tokens(99, row / 4096)});
  ASSERT_FALSE(w2.ok());
  EXPECT_EQ(w2.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(MemberZonePrefix(v.member(0), 0, now), before);
}

// ---------------------------------------------------------------------------
// Live rebuild
// ---------------------------------------------------------------------------

TEST(RedundantVolumeTest, RebuildConvergesUnderForegroundTraffic) {
  auto volr = MakeFemuMirror(2, /*replicas=*/0, /*stripe=*/16 * kKiB);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();
  const std::uint64_t zb = v.info().zone_size_bytes;
  const std::uint64_t zslots = zb / 4096;

  // Ground across two zones, then lose member 1 and replace it.
  SimTime t;
  auto w0 = v.Write(IoRequest{0, zb, t, Tokens(0, zslots)});
  ASSERT_TRUE(w0.ok());
  auto w1 = v.Write(IoRequest{zb, 6 * stripe, w0.value().done,
                              Tokens(1000, 6 * stripe / 4096)});
  ASSERT_TRUE(w1.ok());
  SimTime now = w1.value().done;

  ASSERT_TRUE(v.MarkFailed(1).ok());
  ASSERT_TRUE(v.ReplaceMember(1, MakeFemu(99), now).ok());
  EXPECT_TRUE(v.rebuild_active());
  EXPECT_EQ(v.member_state(1), MemberState::kRebuilding);

  // Foreground writes keep flowing during the rebuild — some land while
  // their zone is ahead of the copy cursor, some behind.
  bool wrote_mid = false;
  int ticks = 0;
  for (; ticks < 100000 && v.rebuild_active(); ++ticks) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
    if (!wrote_mid && v.rebuild_zones_done() >= 1) {
      auto wm = v.Write(IoRequest{zb + 6 * stripe, 2 * stripe, now,
                                  Tokens(2000, 2 * stripe / 4096)});
      ASSERT_TRUE(wm.ok()) << wm.status().ToString();
      now = wm.value().done;
      wrote_mid = true;
    }
  }
  ASSERT_FALSE(v.rebuild_active()) << "rebuild did not finish in " << ticks;
  EXPECT_TRUE(wrote_mid);
  EXPECT_EQ(v.member_state(1), MemberState::kActive);
  EXPECT_EQ(v.Redundancy().rebuilds_completed, 1u);
  EXPECT_GT(v.Redundancy().rebuild_slots_copied, 0u);

  // The fresh member is byte-identical to the survivor on every zone.
  const std::uint32_t zones = v.member(0).info().num_zones;
  for (std::uint32_t z = 0; z < zones; ++z) {
    EXPECT_EQ(MemberZonePrefix(v.member(1), z, now),
              MemberZonePrefix(v.member(0), z, now))
        << "zone " << z;
  }

  // And the volume serves non-degraded reads again.
  const auto red_before = v.Redundancy();
  auto r = v.Read(IoRequest{zb, 8 * stripe, now, {}, true});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().reconstructed_units, 0u);
  EXPECT_EQ(v.Redundancy().degraded_reads, red_before.degraded_reads);
}

TEST(RedundantVolumeTest, ParityRebuildReconstructsLostLane) {
  auto volr = MakeFemuParity(3, /*width=*/0, /*stripe=*/16 * kKiB);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t row = 2 * v.stripe_bytes();

  SimTime t;
  const auto toks = Tokens(0, 10 * row / 4096);
  auto w = v.Write(IoRequest{0, 10 * row, t, toks});
  ASSERT_TRUE(w.ok());
  SimTime now = w.value().done;

  const auto lane1 = MemberZonePrefix(v.member(1), 0, now);
  ASSERT_TRUE(v.MarkFailed(1).ok());
  ASSERT_TRUE(v.ReplaceMember(1, MakeFemu(77), now).ok());
  int ticks = 0;
  for (; ticks < 100000 && v.rebuild_active(); ++ticks) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_FALSE(v.rebuild_active());

  // XOR of the surviving lanes rebuilt exactly the lost lane's content
  // (data and rotating parity units alike).
  EXPECT_EQ(MemberZonePrefix(v.member(1), 0, now), lane1);
  auto r = v.Read(IoRequest{0, 10 * row, now, {}, true});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tokens, toks);
  EXPECT_EQ(r.value().reconstructed_units, 0u);
}

TEST(RedundantVolumeTest, RebuildSurvivesPowerCutOfFreshMember) {
  ConZoneConfig cfg = SmallConZoneCfg();
  cfg.fault.power_loss = true;

  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto dev = ConZoneDevice::Create(cfg.ForShard(i, 5));
    ASSERT_TRUE(dev.ok());
    devs.push_back(std::move(dev).value());
  }
  RedundantVolumeOptions opt;
  opt.stripe_bytes = 16 * kKiB;
  opt.rows_per_tick = 4;
  auto volr = RedundantVolume::Create(std::move(devs), opt);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t zb = v.info().zone_size_bytes;

  SimTime t;
  auto w = v.Write(IoRequest{0, zb, t, Tokens(0, zb / 4096)});
  ASSERT_TRUE(w.ok());
  auto w2 = v.Write(IoRequest{zb, zb / 2, w.value().done,
                              Tokens(4000, zb / 2 / 4096)});
  ASSERT_TRUE(w2.ok());
  SimTime now = w2.value().done;

  auto freshr = ConZoneDevice::Create(cfg.ForShard(9, 5));
  ASSERT_TRUE(freshr.ok());
  ConZoneDevice* fresh = freshr.value().get();
  ASSERT_TRUE(v.MarkFailed(1).ok());
  ASSERT_TRUE(v.ReplaceMember(1, std::move(freshr).value(), now).ok());

  // Let the copy get partway, then cut the fresh member mid-rebuild.
  for (int i = 0; i < 3 && v.rebuild_active(); ++i) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_TRUE(v.rebuild_active());
  ASSERT_TRUE(fresh->PowerCut(now).ok());

  // The dead member surfaces as an error, not silent progress.
  auto dead = v.Tick(now);
  ASSERT_FALSE(dead.ok());

  // Remount and keep ticking: the rebuild resynchronizes itself to the
  // fresh member's durable prefix (never a torn row) and completes.
  auto rec = fresh->Recover(now);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  now = rec.value();
  int ticks = 0;
  for (; ticks < 100000 && v.rebuild_active(); ++ticks) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_FALSE(v.rebuild_active()) << "rebuild did not finish in " << ticks;
  EXPECT_EQ(v.Redundancy().rebuilds_completed, 1u);

  const std::uint32_t zones = v.member(0).info().num_zones;
  for (std::uint32_t z = 0; z < zones; ++z) {
    EXPECT_EQ(MemberZonePrefix(v.member(1), z, now),
              MemberZonePrefix(v.member(0), z, now))
        << "zone " << z;
  }
}

// ---------------------------------------------------------------------------
// Fault rates (ConsumerDefaults) through the redundancy layer
// ---------------------------------------------------------------------------

TEST(RedundantVolumeTest, ConsumerFaultRatesAreMaskedByRedundancy) {
  ConZoneConfig cfg = SmallConZoneCfg();
  cfg.fault = FaultConfig::ConsumerDefaults();

  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto dev = ConZoneDevice::Create(cfg.ForShard(i, 1234));
    ASSERT_TRUE(dev.ok());
    devs.push_back(std::move(dev).value());
  }
  RedundantVolumeOptions opt;
  opt.stripe_bytes = 16 * kKiB;
  auto volr = RedundantVolume::Create(std::move(devs), opt);
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  const std::uint64_t stripe = v.stripe_bytes();

  // Under consumer-grade fault rates every volume-level request still
  // succeeds with intact tokens: transient faults are absorbed by the
  // members, anything that escapes is reconstructed from the peer.
  SimTime now;
  for (std::uint64_t pass = 0; pass < 4; ++pass) {
    const std::uint64_t base = pass * 8 * stripe;
    auto w = v.Write(IoRequest{base, 8 * stripe, now,
                               Tokens(base / 4096, 8 * stripe / 4096)});
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    now = w.value().done;
    auto r = v.Read(IoRequest{base, 8 * stripe, now, {}, true});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().tokens, Tokens(base / 4096, 8 * stripe / 4096));
    now = r.value().done;
  }
  EXPECT_GT(v.Reliability().TotalFaults(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism: same-seed reruns and executor thread counts
// ---------------------------------------------------------------------------

struct RunTrace {
  std::vector<std::uint64_t> done_ns;
  std::vector<std::uint64_t> tokens;
  RedundancyStats red;
};

/// A mixed scenario exercising every fan-out path: mirror writes, a
/// degraded read, a scrub pass, and a full rebuild.
RunTrace RunScenario(Executor* exec) {
  auto volr = MakeFemuMirror(4, /*replicas=*/2, /*stripe=*/16 * kKiB);
  EXPECT_TRUE(volr.ok());
  RedundantVolume& v = **volr;
  v.set_executor(exec);
  const std::uint64_t stripe = v.stripe_bytes();
  const std::uint64_t zb = v.info().zone_size_bytes;

  RunTrace tr;
  SimTime now;
  for (std::uint64_t z = 0; z < 2; ++z) {
    auto w = v.Write(IoRequest{z * zb, 8 * stripe, now,
                               Tokens(z * 1000, 8 * stripe / 4096)});
    EXPECT_TRUE(w.ok()) << w.status().ToString();
    now = w.value().done;
    tr.done_ns.push_back(now.ns());
  }

  EXPECT_TRUE(v.MarkFailed(0).ok());
  auto r = v.Read(IoRequest{0, 8 * stripe, now, {}, true});
  EXPECT_TRUE(r.ok());
  now = r.value().done;
  tr.done_ns.push_back(now.ns());
  tr.tokens.insert(tr.tokens.end(), r.value().tokens.begin(),
                   r.value().tokens.end());

  EXPECT_TRUE(v.ReplaceMember(0, MakeFemu(123), now).ok());
  for (int i = 0; i < 100000 && v.rebuild_active(); ++i) {
    auto tick = v.Tick(now);
    EXPECT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  tr.done_ns.push_back(now.ns());

  EXPECT_TRUE(v.StartScrub(now).ok());
  for (int i = 0; i < 100000 && v.scrub_active(); ++i) {
    auto tick = v.Tick(now);
    EXPECT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  tr.done_ns.push_back(now.ns());

  auto rf = v.Read(IoRequest{zb, 8 * stripe, now, {}, true});
  EXPECT_TRUE(rf.ok());
  tr.done_ns.push_back(rf.value().done.ns());
  tr.tokens.insert(tr.tokens.end(), rf.value().tokens.begin(),
                   rf.value().tokens.end());
  tr.red = v.Redundancy();
  return tr;
}

TEST(RedundantVolumeDeterminismTest, SameSeedRerunsAreBitIdentical) {
  const RunTrace a = RunScenario(nullptr);
  const RunTrace b = RunScenario(nullptr);
  EXPECT_EQ(a.done_ns, b.done_ns);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_TRUE(a.red == b.red);
}

TEST(RedundantVolumeDeterminismTest, ThreadCountDoesNotChangeOutcomes) {
  const RunTrace serial = RunScenario(nullptr);
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    WorkStealingExecutor exec(threads);
    const RunTrace par = RunScenario(&exec);
    EXPECT_EQ(par.done_ns, serial.done_ns) << threads << " threads";
    EXPECT_EQ(par.tokens, serial.tokens) << threads << " threads";
    EXPECT_TRUE(par.red == serial.red) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Conventional rebuild
// ---------------------------------------------------------------------------

TEST(RedundantVolumeTest, ConventionalRebuildCopiesMappedSlots) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (int i = 0; i < 2; ++i) devs.push_back(MakeLegacy(i + 1));
  auto volr = RedundantVolume::Create(std::move(devs), {});
  ASSERT_TRUE(volr.ok());
  RedundantVolume& v = **volr;

  SimTime t;
  const auto toks = Tokens(0, 128);
  auto w = v.Write(IoRequest{0, 128 * 4096, t, toks});
  ASSERT_TRUE(w.ok());
  SimTime now = w.value().done;

  ASSERT_TRUE(v.MarkFailed(1).ok());
  ASSERT_TRUE(v.ReplaceMember(1, MakeLegacy(3), now).ok());
  int ticks = 0;
  for (; ticks < 1000000 && v.rebuild_active(); ++ticks) {
    auto tick = v.Tick(now);
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    now = tick.value();
  }
  ASSERT_FALSE(v.rebuild_active()) << "rebuild did not finish in " << ticks;
  EXPECT_EQ(v.member_state(1), MemberState::kActive);

  auto r = v.member(1).Read(IoRequest{0, 128 * 4096, now, {}, true});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tokens, toks);
}

// ---------------------------------------------------------------------------
// Opt-in soak (CI redundancy label / CONZONE_REBUILD_SOAK=1)
// ---------------------------------------------------------------------------

// Many rounds of rebuild-under-power-cuts: each round writes a random
// amount of ground (partly torn), starts a rebuild, cuts the fresh
// member or the source at a random tick, remounts, finishes the
// rebuild, and requires byte-identical convergence on every zone.
TEST(RebuildSoakTest, RebuildUnderRandomPowerCutsSoak) {
  if (std::getenv("CONZONE_REBUILD_SOAK") == nullptr) {
    GTEST_SKIP() << "set CONZONE_REBUILD_SOAK=1 to run the rebuild soak";
  }
  ConZoneConfig cfg = SmallConZoneCfg();
  cfg.fault.power_loss = true;

  Rng pick(0xB111Dull);
  constexpr int kRounds = 100;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<ConZoneDevice*> raw;
    std::vector<std::unique_ptr<StorageDevice>> devs;
    for (std::uint32_t i = 0; i < 2; ++i) {
      auto dev = ConZoneDevice::Create(
          cfg.ForShard(i, 1000 + static_cast<std::uint64_t>(round)));
      ASSERT_TRUE(dev.ok());
      raw.push_back(dev.value().get());
      devs.push_back(std::move(dev).value());
    }
    RedundantVolumeOptions opt;
    opt.stripe_bytes = 16 * kKiB;
    opt.rows_per_tick = 1 + static_cast<std::uint32_t>(pick.NextBelow(8));
    auto volr = RedundantVolume::Create(std::move(devs), opt);
    ASSERT_TRUE(volr.ok());
    RedundantVolume& v = **volr;
    const std::uint64_t stripe = v.stripe_bytes();
    const std::uint64_t zb = v.info().zone_size_bytes;

    SimTime now;
    const std::uint64_t durable = (1 + pick.NextBelow(zb / stripe)) * stripe;
    auto w = v.Write(IoRequest{0, durable, now, Tokens(0, durable / 4096)});
    ASSERT_TRUE(w.ok()) << "round=" << round;
    auto f = v.Flush(w.value().done);
    ASSERT_TRUE(f.ok());
    now = f.value();
    const std::uint64_t torn = pick.NextBelow(4) * stripe;
    if (torn != 0 && durable + torn <= zb) {
      auto wt = v.Write(IoRequest{durable, torn, now, Tokens(durable / 4096, torn / 4096)});
      ASSERT_TRUE(wt.ok()) << "round=" << round;
      now = wt.value().done;
    }

    auto freshr =
        ConZoneDevice::Create(cfg.ForShard(9, 1000 + static_cast<std::uint64_t>(round)));
    ASSERT_TRUE(freshr.ok());
    ConZoneDevice* fresh = freshr.value().get();
    ASSERT_TRUE(v.MarkFailed(1).ok());
    ASSERT_TRUE(v.ReplaceMember(1, std::move(freshr).value(), now).ok());

    // Cut the fresh member or the source at a random point in the copy.
    ConZoneDevice* victim = pick.NextBelow(2) == 0 ? fresh : raw[0];
    const std::uint64_t cut_after = pick.NextBelow(6);
    for (std::uint64_t i = 0; i < cut_after && v.rebuild_active(); ++i) {
      auto tick = v.Tick(now);
      ASSERT_TRUE(tick.ok()) << "round=" << round;
      now = tick.value();
    }
    if (v.rebuild_active()) {
      ASSERT_TRUE(victim->PowerCut(now).ok());
      auto dead = v.Tick(now);
      EXPECT_FALSE(dead.ok()) << "round=" << round;
      auto rec = victim->Recover(now);
      ASSERT_TRUE(rec.ok()) << "round=" << round;
      now = rec.value();
    }
    int ticks = 0;
    for (; ticks < 100000 && v.rebuild_active(); ++ticks) {
      auto tick = v.Tick(now);
      ASSERT_TRUE(tick.ok())
          << "round=" << round << ": " << tick.status().ToString();
      now = tick.value();
    }
    ASSERT_FALSE(v.rebuild_active()) << "round=" << round;

    const std::uint32_t zones = v.member(0).info().num_zones;
    for (std::uint32_t z = 0; z < zones; ++z) {
      ASSERT_EQ(MemberZonePrefix(v.member(1), z, now),
                MemberZonePrefix(v.member(0), z, now))
          << "round=" << round << " zone=" << z;
    }
  }
}

}  // namespace
}  // namespace conzone
