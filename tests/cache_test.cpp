// ZoneCache + ZoneCacheFsck (DESIGN.md §14).
//
// Covers: mount validation, the put/get/delete/overwrite data path,
// eviction by zone reset (hot-entry migration, cold drops), the journal
// index bound, all three journal placements (multi-zone conventional,
// half-zone, sequential ping-pong), remount persistence, a deterministic
// power-cut sweep over every op boundary of a scripted zipfian workload,
// 24 randomized cut seeds, bit-identical same-seed recovery, fsck
// fingerprint stability, per-class I/O accounting, executor-thread-count
// invariance on a striped volume, and an opt-in crash soak
// (CONZONE_CACHE_SOAK=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "cache/zone_cache.hpp"
#include "cache/zone_cache_fsck.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/device.hpp"
#include "exec/executor.hpp"
#include "femu/femu_device.hpp"
#include "host/striped_volume.hpp"
#include "legacy/legacy_device.hpp"
#include "workload/cache_workload.hpp"

namespace conzone {
namespace {

// Small single-chip device: 4 MiB zones (1024 slots), 9 zones total, so
// the cache actually churns — zones fill, the free pool drains, and
// eviction-by-reset fires within a few hundred operations.
ConZoneConfig CacheCfg(std::uint32_t conventional) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.channels = 1;
  cfg.geometry.chips_per_channel = 1;
  cfg.geometry.blocks_per_chip = 16;
  cfg.geometry.slc_blocks_per_chip = 4;
  cfg.zone_size_bytes = 4 * kMiB;
  cfg.num_conventional_zones = conventional;
  cfg.fault.power_loss = true;
  return cfg;
}

std::unique_ptr<ConZoneDevice> MakeDevice(std::uint32_t conventional) {
  auto dev = ConZoneDevice::Create(CacheCfg(conventional));
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

std::vector<std::uint64_t> Value(std::uint64_t salt, std::uint32_t slots) {
  std::vector<std::uint64_t> v(slots);
  for (std::uint32_t i = 0; i < slots; ++i) v[i] = salt * 1000003 + i + 1;
  return v;
}

// Every entry a remounted cache serves must be a value the workload
// acknowledged for that key: generation g in [0, generations[key]].
// Anything else is wrong bytes — the one thing the crash contract
// forbids.
void CheckSemantics(ZoneCache& cache, const CacheJobSpec& spec,
                    const std::vector<std::uint32_t>& generations, SimTime& t) {
  for (const auto& e : cache.IndexSnapshot()) {
    ASSERT_LT(e.key, spec.keys);
    auto g = cache.Get(e.key, t);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    ASSERT_TRUE(g.value().hit);
    t = g.value().done;
    bool matched = false;
    for (std::uint32_t cand = 0; cand <= generations[e.key] && !matched; ++cand) {
      if (g.value().tokens.size() !=
          CacheWorkloadRunner::ValueSlots(spec, e.key, cand)) {
        continue;
      }
      matched = true;
      for (std::uint32_t i = 0; i < g.value().tokens.size(); ++i) {
        if (g.value().tokens[i] !=
            CacheWorkloadRunner::ValueToken(spec.seed, e.key, cand, i)) {
          matched = false;
          break;
        }
      }
    }
    EXPECT_TRUE(matched) << "key " << e.key << " serves unacknowledged bytes";
  }
}

// ---------------------------------------------------------------------------
// Mount validation
// ---------------------------------------------------------------------------

TEST(ZoneCacheMountTest, RejectsNullAndNonZonedDevices) {
  EXPECT_EQ(ZoneCache::Mount(nullptr, {}, SimTime::Zero()).status().code(),
            StatusCode::kInvalidArgument);
  LegacyConfig lcfg;
  auto legacy = LegacyDevice::Create(lcfg);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(ZoneCache::Mount(legacy->get(), {}, SimTime::Zero()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ZoneCacheMountTest, RejectsBadOptions) {
  auto dev = MakeDevice(2);
  {
    ZoneCacheOptions o;
    o.num_groups = 0;
    EXPECT_EQ(ZoneCache::Mount(dev.get(), o, SimTime::Zero()).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    ZoneCacheOptions o;
    o.reserve_free_zones = 0;
    EXPECT_EQ(ZoneCache::Mount(dev.get(), o, SimTime::Zero()).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    // 9 zones cannot host 8 groups + reserve + journal.
    ZoneCacheOptions o;
    o.num_groups = 8;
    EXPECT_EQ(ZoneCache::Mount(dev.get(), o, SimTime::Zero()).status().code(),
              StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

TEST(ZoneCacheDataPathTest, PutGetOverwriteDelete) {
  auto dev = MakeDevice(2);
  auto cache = ZoneCache::Mount(dev.get(), {}, SimTime::Zero());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  ZoneCache& c = **cache;
  SimTime t;

  // Miss on an empty cache is not an error.
  auto miss = c.Get(7, t);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().hit);

  const auto v1 = Value(1, 3);
  auto p = c.Put(7, 0, v1, t);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  t = p.value();

  auto hit = c.Get(7, t);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit.value().hit);
  EXPECT_EQ(hit.value().tokens, v1);
  t = hit.value().done;

  // Overwrite with a different length; the old extent becomes dead.
  const auto v2 = Value(2, 5);
  p = c.Put(7, 1, v2, t);
  ASSERT_TRUE(p.ok());
  t = p.value();
  hit = c.Get(7, t);
  ASSERT_TRUE(hit.ok() && hit.value().hit);
  EXPECT_EQ(hit.value().tokens, v2);
  t = hit.value().done;
  EXPECT_EQ(c.entries(), 1u);

  auto del = c.Delete(7, t);
  ASSERT_TRUE(del.ok());
  t = del.value();
  miss = c.Get(7, t);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().hit);
  // Deleting an absent key is a no-op.
  EXPECT_TRUE(c.Delete(7, t).ok());

  EXPECT_EQ(c.stats().gets, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().puts, 2u);
  EXPECT_EQ(c.stats().deletes, 2u);
  EXPECT_DOUBLE_EQ(c.stats().HitRatio(), 0.5);

  auto rep = ZoneCacheFsck::Check(c, t);
  EXPECT_TRUE(rep.ok()) << (rep.problems.empty() ? "" : rep.problems.front());
}

TEST(ZoneCacheDataPathTest, PutValidation) {
  auto dev = MakeDevice(2);
  auto cache = ZoneCache::Mount(dev.get(), {}, SimTime::Zero());
  ASSERT_TRUE(cache.ok());
  ZoneCache& c = **cache;
  EXPECT_EQ(c.Put(1, 0, {}, SimTime::Zero()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(c.Put(1, 5, Value(1, 2), SimTime::Zero()).status().code(),
            StatusCode::kInvalidArgument);  // group >= num_groups
  const auto huge = Value(1, static_cast<std::uint32_t>(c.zone_slots()));
  EXPECT_EQ(c.Put(1, 0, huge, SimTime::Zero()).status().code(),
            StatusCode::kInvalidArgument);  // header + value > one zone
}

TEST(ZoneCacheDataPathTest, PerClassCountersSeparateMigrationFromForeground) {
  auto dev = MakeDevice(2);
  ZoneCacheOptions opt;
  opt.sync_every_puts = 16;
  auto cache = ZoneCache::Mount(dev.get(), opt, SimTime::Zero());
  ASSERT_TRUE(cache.ok());
  ZoneCache& c = **cache;
  CacheJobSpec spec;
  spec.keys = 96;
  spec.ops = 600;
  spec.min_value_slots = 8;
  spec.max_value_slots = 15;
  auto r = CacheWorkloadRunner::Run(c, spec, SimTime::Zero());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const StatsSnapshot s = dev->Stats();
  const auto fg = static_cast<std::size_t>(IoClass::kHostForeground);
  const auto mig = static_cast<std::size_t>(IoClass::kCacheMigration);
  EXPECT_GT(s.class_writes[fg], 0u);
  EXPECT_GT(s.class_reads[fg], 0u);
  if (c.stats().migrated_entries > 0) {
    EXPECT_GT(s.class_writes[mig], 0u);
    EXPECT_GT(s.class_reads[mig], 0u);
  }
  // Class buckets (successful I/O only) never exceed the blended
  // counters, which also see requests that fail mid-flight (e.g. the
  // mount-time write-pointer probe reads).
  const auto mnt = static_cast<std::size_t>(IoClass::kMaintenance);
  EXPECT_LE(s.class_writes[fg] + s.class_writes[mig] + s.class_writes[mnt],
            s.writes);
  EXPECT_LE(s.class_reads[fg] + s.class_reads[mig] + s.class_reads[mnt],
            s.reads);
}

// ---------------------------------------------------------------------------
// Eviction
// ---------------------------------------------------------------------------

TEST(ZoneCacheEvictionTest, ResetsColdZoneAndMigratesHotEntries) {
  auto dev = MakeDevice(2);
  ZoneCacheOptions opt;
  opt.sync_every_puts = 32;
  auto cache = ZoneCache::Mount(dev.get(), opt, SimTime::Zero());
  ASSERT_TRUE(cache.ok());
  ZoneCache& c = **cache;
  SimTime t;

  // Admit unique large entries so data zones fill with *live* content
  // and the free-zone reserve — not the journal bound — forces
  // eviction-by-reset. Even keys get read immediately (a hit makes them
  // migration candidates); odd keys stay cold and must be dropped with
  // their zone.
  std::uint64_t k = 0;
  std::vector<std::uint64_t> even_put;
  while (c.stats().evictions < 2 && k < 500) {
    auto p = c.Put(k, 0, Value(k, 40), t);
    ASSERT_TRUE(p.ok()) << "put " << k << ": " << p.status().ToString();
    t = p.value();
    if (k % 2 == 0) {
      auto g = c.Get(k, t);
      ASSERT_TRUE(g.ok() && g.value().hit);
      t = g.value().done;
      even_put.push_back(k);
    }
    ++k;
  }
  ASSERT_GE(c.stats().evictions, 2u);
  EXPECT_GT(c.stats().migrated_entries, 0u);
  EXPECT_GT(c.stats().dropped_entries, 0u);

  // Every even key still present must serve intact bytes (it was either
  // untouched or migrated — never corrupted).
  for (std::uint64_t key : even_put) {
    auto g = c.Get(key, t);
    ASSERT_TRUE(g.ok());
    if (g.value().hit) EXPECT_EQ(g.value().tokens, Value(key, 40));
    t = g.value().done;
  }
  auto rep = ZoneCacheFsck::Check(c, t);
  EXPECT_TRUE(rep.ok()) << (rep.problems.empty() ? "" : rep.problems.front());
}

TEST(ZoneCacheEvictionTest, IndexPressureKeepsEntriesWithinJournalBound) {
  auto dev = MakeDevice(2);
  auto cache = ZoneCache::Mount(dev.get(), {}, SimTime::Zero());
  ASSERT_TRUE(cache.ok());
  ZoneCache& c = **cache;
  SimTime t;
  const std::uint64_t n = c.max_entries() + 50;
  for (std::uint64_t k = 0; k < n; ++k) {
    auto p = c.Put(k, k % 2, Value(k, 1), t);
    ASSERT_TRUE(p.ok()) << "put " << k << ": " << p.status().ToString();
    t = p.value();
    EXPECT_LE(c.entries(), c.max_entries());
  }
  auto rep = ZoneCacheFsck::Check(c, t);
  EXPECT_TRUE(rep.ok()) << (rep.problems.empty() ? "" : rep.problems.front());
}

// ---------------------------------------------------------------------------
// Remount persistence (all three journal placements)
// ---------------------------------------------------------------------------

class ZoneCacheJournalPlacementTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ZoneCacheJournalPlacementTest, SyncedEntriesSurviveRemount) {
  auto dev = MakeDevice(GetParam());
  ZoneCacheOptions opt;
  SimTime t;
  std::uint64_t fp1 = 0;
  {
    auto cache = ZoneCache::Mount(dev.get(), opt, t);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    ZoneCache& c = **cache;
    for (std::uint64_t k = 0; k < 20; ++k) {
      auto p = c.Put(k, 0, Value(k, 2 + k % 5), t);
      ASSERT_TRUE(p.ok());
      t = p.value();
    }
    auto d = c.Delete(3, t);
    ASSERT_TRUE(d.ok());
    t = d.value();
    auto s = c.Sync(t);
    ASSERT_TRUE(s.ok());
    t = s.value();
    fp1 = ZoneCacheFsck::Check(c, t).fingerprint;
    ASSERT_NE(fp1, 0u);
  }
  // A second mount on the same (un-cut) device sees the same state.
  auto cache = ZoneCache::Mount(dev.get(), opt, t);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  ZoneCache& c = **cache;
  EXPECT_EQ(c.entries(), 19u);
  EXPECT_EQ(c.stats().mount_dropped, 0u);
  for (std::uint64_t k = 0; k < 20; ++k) {
    auto g = c.Get(k, t);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.value().hit, k != 3);
    if (g.value().hit) EXPECT_EQ(g.value().tokens, Value(k, 2 + k % 5));
    t = g.value().done;
  }
  auto rep = ZoneCacheFsck::Check(c, t);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.fingerprint, fp1);
}

INSTANTIATE_TEST_SUITE_P(Placements, ZoneCacheJournalPlacementTest,
                         ::testing::Values(0u, 1u, 2u),
                         [](const auto& info) {
                           return "conv" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Power-cut sweep: every op boundary of a scripted workload
// ---------------------------------------------------------------------------

CacheJobSpec SweepSpec() {
  CacheJobSpec spec;
  spec.keys = 64;
  spec.ops = 48;
  spec.min_value_slots = 6;
  spec.max_value_slots = 14;
  spec.seed = 99;
  return spec;
}

// One crash round: run `ops` operations from a fresh cache, cut the
// power un-synced, recover, remount, fsck, and check every surviving
// value is an acknowledged generation. Returns the fsck fingerprint.
std::uint64_t CrashRound(std::uint32_t conventional, const CacheJobSpec& base,
                         std::uint64_t ops, std::uint64_t sync_every) {
  auto dev = MakeDevice(conventional);
  ZoneCacheOptions opt;
  opt.sync_every_puts = sync_every;
  CacheJobSpec spec = base;
  spec.ops = ops;

  auto cache = ZoneCache::Mount(dev.get(), opt, SimTime::Zero());
  EXPECT_TRUE(cache.ok()) << cache.status().ToString();
  if (!cache.ok()) return 0;
  CacheRunResult run;
  run.generations.assign(spec.keys, 0);
  // For an ops=0 round the cut lands after all mount-time journal
  // writes; any instant past their submissions is valid.
  SimTime cut = SimTime::FromNanos(1'000'000'000'000ull);
  if (ops > 0) {
    auto r = CacheWorkloadRunner::Run(**cache, spec, SimTime::Zero());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return 0;
    run = std::move(r).value();
    cut = run.end;
  }
  EXPECT_TRUE(dev->PowerCut(cut).ok());
  auto rec = dev->Recover(cut);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
  if (!rec.ok()) return 0;

  auto c2 = ZoneCache::Mount(dev.get(), opt, rec.value());
  EXPECT_TRUE(c2.ok()) << c2.status().ToString();
  if (!c2.ok()) return 0;
  auto rep = ZoneCacheFsck::Check(**c2, rec.value());
  EXPECT_EQ(rep.inconsistencies, 0u)
      << "ops=" << ops << ": " << rep.problems.front();
  SimTime t = rec.value();
  CheckSemantics(**c2, spec, run.generations, t);

  // The cache must stay serviceable: resume the workload on it (hits
  // may serve any acknowledged generation after the crash).
  CacheJobSpec resume = spec;
  resume.ops = 12;
  resume.require_latest = false;
  auto r2 = CacheWorkloadRunner::Run(**c2, resume, t, &run.generations);
  EXPECT_TRUE(r2.ok()) << r2.status().ToString();
  return rep.fingerprint;
}

TEST(ZoneCacheCrashTest, OpBoundaryCutSweep) {
  const CacheJobSpec spec = SweepSpec();
  for (std::uint64_t ops = 0; ops <= spec.ops; ++ops) {
    CrashRound(/*conventional=*/2, spec, ops, /*sync_every=*/8);
    if (HasFailure()) FAIL() << "sweep failed at op boundary " << ops;
  }
}

TEST(ZoneCacheCrashTest, OpBoundaryCutSweepSequentialJournal) {
  const CacheJobSpec spec = SweepSpec();
  for (std::uint64_t ops = 0; ops <= spec.ops; ops += 4) {
    CrashRound(/*conventional=*/0, spec, ops, /*sync_every=*/8);
    if (HasFailure()) FAIL() << "sweep failed at op boundary " << ops;
  }
}

TEST(ZoneCacheCrashTest, RandomCutSeeds) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(MixSeeds(seed, 0xCAC4E, 0));
    CacheJobSpec spec;
    spec.seed = seed;
    spec.keys = 32 + rng.NextBelow(96);
    spec.min_value_slots = 1 + static_cast<std::uint32_t>(rng.NextBelow(6));
    spec.max_value_slots =
        spec.min_value_slots + static_cast<std::uint32_t>(rng.NextBelow(10));
    const std::uint64_t ops = 1 + rng.NextBelow(150);
    const std::uint64_t sync_every = rng.NextBelow(24);
    const auto conventional = static_cast<std::uint32_t>(seed % 3);
    CrashRound(conventional, spec, ops, sync_every);
    if (HasFailure()) FAIL() << "random-cut seed " << seed << " failed";
  }
}

TEST(ZoneCacheCrashTest, SameSeedRecoveryIsBitIdentical) {
  const CacheJobSpec spec = SweepSpec();
  const std::uint64_t a = CrashRound(2, spec, 37, 8);
  ASSERT_FALSE(HasFailure());
  const std::uint64_t b = CrashRound(2, spec, 37, 8);
  ASSERT_FALSE(HasFailure());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);  // 37 ops with sync_every=8 leaves durable entries.
}

// ---------------------------------------------------------------------------
// Determinism across executor thread counts (striped volume)
// ---------------------------------------------------------------------------

TEST(ZoneCacheExecutorTest, FingerprintsIdenticalAcrossThreadCounts) {
  CacheJobSpec spec;
  spec.keys = 256;
  spec.ops = 400;
  spec.seed = 5;
  struct Round {
    std::uint64_t run_fp;
    std::uint64_t fsck_fp;
    std::uint64_t hits;
  };
  std::vector<Round> rounds;
  for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::unique_ptr<StorageDevice>> devs;
    for (std::uint32_t i = 0; i < 2; ++i) {
      FemuConfig fcfg;
      fcfg.seed = i + 1;
      auto d = FemuModelDevice::Create(fcfg);
      ASSERT_TRUE(d.ok());
      devs.push_back(std::move(d).value());
    }
    auto vol = StripedVolume::Create(std::move(devs), {});
    ASSERT_TRUE(vol.ok()) << vol.status().ToString();
    WorkStealingExecutor exec(threads);
    (*vol)->set_executor(&exec);

    auto cache = ZoneCache::Mount(vol->get(), {}, SimTime::Zero());
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    auto r = CacheWorkloadRunner::Run(**cache, spec, SimTime::Zero());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto rep = ZoneCacheFsck::Check(**cache, r.value().end);
    ASSERT_TRUE(rep.ok());
    rounds.push_back(Round{r.value().fingerprint, rep.fingerprint,
                           r.value().hits});
  }
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i].run_fp, rounds[0].run_fp);
    EXPECT_EQ(rounds[i].fsck_fp, rounds[0].fsck_fp);
    EXPECT_EQ(rounds[i].hits, rounds[0].hits);
  }
}

// ---------------------------------------------------------------------------
// Opt-in soak: repeated un-synced cuts on one surviving device
// ---------------------------------------------------------------------------

TEST(ZoneCacheCrashSoakTest, RepeatedCutsOnOneDeviceSoak) {
  if (std::getenv("CONZONE_CACHE_SOAK") == nullptr) {
    GTEST_SKIP() << "set CONZONE_CACHE_SOAK=1 to run";
  }
  auto dev = MakeDevice(2);
  ZoneCacheOptions opt;
  opt.sync_every_puts = 16;
  CacheJobSpec spec;
  spec.keys = 128;
  spec.min_value_slots = 4;
  spec.max_value_slots = 12;
  spec.require_latest = false;
  spec.seed = 7;  // Fixed across rounds: values are a function of the seed.
  std::vector<std::uint32_t> generations(spec.keys, 0);
  SimTime t;
  Rng rng(4242);
  for (int round = 0; round < 40; ++round) {
    auto cache = ZoneCache::Mount(dev.get(), opt, t);
    ASSERT_TRUE(cache.ok()) << "round " << round << ": "
                            << cache.status().ToString();
    auto rep = ZoneCacheFsck::Check(**cache, t);
    ASSERT_EQ(rep.inconsistencies, 0u)
        << "round " << round << ": " << rep.problems.front();
    CheckSemantics(**cache, spec, generations, t);
    spec.ops = 20 + rng.NextBelow(120);
    auto r = CacheWorkloadRunner::Run(**cache, spec, t, &generations);
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.status().ToString();
    generations = r.value().generations;
    t = r.value().end;
    ASSERT_TRUE(dev->PowerCut(t).ok());
    auto rec = dev->Recover(t);
    ASSERT_TRUE(rec.ok());
    t = rec.value();
  }
}

}  // namespace
}  // namespace conzone
