// Executor tests: the determinism contract of the fork-join substrate
// (DESIGN.md §7) and its two consumers.
//
//   * Core contract: Run(n, fn) invokes fn exactly once per task id in
//     [0, n), at every thread count, including n == 0 and n much larger
//     than the lane count, and a batch can be reused thousands of times
//     (workers park between batches, they don't exit).
//   * Nesting: a Run() issued from inside a task executes inline on the
//     calling lane — no deadlock, every nested task still runs once.
//   * Steal stress: skewed task costs (one lane's deque loaded with the
//     expensive tasks) still complete exactly once each. Steal *counts*
//     are scheduling-dependent, so the test asserts completion, not that
//     stealing happened — on a single-hardware-thread host the workers
//     may never wake in time to steal.
//   * StripedVolume cross-check: randomized request streams over FEMU-,
//     Legacy- and ConZone-member volumes produce bit-identical results
//     (completions, tokens, statuses, stats) with a WorkStealingExecutor
//     at threads 2/4/8 as with the SerialExecutor reference, and as with
//     no executor at all. Same-seed reruns included.
//   * ShardedRunner cross-check: an external executor passed through
//     ShardPlan::executor yields the same fingerprint as the runner's
//     own pool at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "conzone/conzone.hpp"

#include "test_io.hpp"

namespace conzone {
namespace {

// ---------------------------------------------------------------------------
// Core contract
// ---------------------------------------------------------------------------

TEST(ExecutorTest, EveryTaskRunsExactlyOnce) {
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    WorkStealingExecutor exec(threads);
    EXPECT_EQ(exec.threads(), threads);
    for (const std::size_t tasks : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}, std::size_t{64},
                                    std::size_t{1000}}) {
      std::vector<std::atomic<std::uint32_t>> hits(tasks);
      for (auto& h : hits) h.store(0);
      exec.Run(tasks, [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < tasks; ++i) {
        ASSERT_EQ(hits[i].load(), 1u)
            << "threads=" << threads << " tasks=" << tasks << " id=" << i;
      }
    }
  }
}

TEST(ExecutorTest, SerialExecutorRunsInSubmissionOrder) {
  SerialExecutor exec;
  EXPECT_EQ(exec.threads(), 1u);
  std::vector<std::size_t> order;
  exec.Run(16, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ExecutorTest, BatchesAreReusableManyTimes) {
  // Workers park between batches; thousands of small batches must not
  // leak, wedge or double-run (this is the per-IO fan-out pattern).
  WorkStealingExecutor exec(4);
  std::atomic<std::uint64_t> total{0};
  for (int batch = 0; batch < 2000; ++batch) {
    exec.Run(3, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 6000u);
}

TEST(ExecutorTest, NestedRunExecutesInlineWithoutDeadlock) {
  WorkStealingExecutor exec(4);
  EXPECT_FALSE(Executor::InTask());
  std::vector<std::atomic<std::uint32_t>> inner_hits(8 * 5);
  for (auto& h : inner_hits) h.store(0);
  std::atomic<std::uint32_t> nested_inline{0};
  exec.Run(8, [&](std::size_t outer) {
    EXPECT_TRUE(Executor::InTask());
    // A nested fork-join from a worker must not block the pool. It runs
    // inline on this lane; InTask() stays set throughout.
    exec.Run(5, [&](std::size_t inner) {
      EXPECT_TRUE(Executor::InTask());
      inner_hits[outer * 5 + inner].fetch_add(1);
    });
    nested_inline.fetch_add(1);
  });
  EXPECT_FALSE(Executor::InTask());
  EXPECT_EQ(nested_inline.load(), 8u);
  for (std::size_t i = 0; i < inner_hits.size(); ++i) {
    EXPECT_EQ(inner_hits[i].load(), 1u) << "slot " << i;
  }
}

TEST(ExecutorTest, StealStressSkewedTaskCosts) {
  // Round-robin dealing puts tasks 0, L, 2L, ... on lane 0 — make those
  // the expensive ones so other lanes drain instantly and must steal to
  // help (when the OS actually runs them in parallel). The assertable
  // contract is exactly-once completion with correct per-task results.
  constexpr std::size_t kTasks = 256;
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    WorkStealingExecutor exec(threads);
    std::vector<std::uint64_t> out(kTasks, 0);
    exec.Run(kTasks, [&](std::size_t i) {
      // Lane-0-dealt tasks spin ~100x longer than the rest.
      const bool expensive = (i % threads) == 0;
      std::uint64_t acc = i;
      const int spins = expensive ? 20000 : 200;
      for (int s = 0; s < spins; ++s) acc = acc * 6364136223846793005ull + 1;
      out[i] = acc;
    });
    // Recompute serially and compare: catches lost, duplicated and
    // cross-wired tasks in one shot.
    for (std::size_t i = 0; i < kTasks; ++i) {
      const bool expensive = (i % threads) == 0;
      std::uint64_t acc = i;
      const int spins = expensive ? 20000 : 200;
      for (int s = 0; s < spins; ++s) acc = acc * 6364136223846793005ull + 1;
      ASSERT_EQ(out[i], acc) << "threads=" << threads << " task=" << i;
    }
    // steals() is monotonic bookkeeping; just touch it for coverage.
    (void)exec.steals();
  }
}

// ---------------------------------------------------------------------------
// StripedVolume cross-check: parallel fan-out == serial reference
// ---------------------------------------------------------------------------

std::unique_ptr<StorageDevice> MakeFemuMember(std::uint64_t seed) {
  FemuConfig cfg;
  cfg.seed = seed;
  auto dev = FemuModelDevice::Create(cfg);
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

std::unique_ptr<StorageDevice> MakeLegacyMember() {
  LegacyConfig cfg;
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  auto dev = LegacyDevice::Create(cfg);
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

std::unique_ptr<StorageDevice> MakeConZoneMember(std::uint32_t i) {
  ConZoneConfig cfg = ConZoneConfig::PaperConfig();
  cfg.geometry.blocks_per_chip = 20;
  cfg.geometry.slc_blocks_per_chip = 4;
  auto dev = ConZoneDevice::Create(cfg.ForShard(i, /*master_seed=*/42));
  EXPECT_TRUE(dev.ok()) << dev.status().ToString();
  return std::move(dev).value();
}

enum class MemberKind { kFemu, kLegacy, kConZone };

std::unique_ptr<StripedVolume> MakeVolume(MemberKind kind, std::uint32_t members) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (std::uint32_t i = 0; i < members; ++i) {
    switch (kind) {
      case MemberKind::kFemu: devs.push_back(MakeFemuMember(i + 1)); break;
      case MemberKind::kLegacy: devs.push_back(MakeLegacyMember()); break;
      case MemberKind::kConZone: devs.push_back(MakeConZoneMember(i)); break;
    }
  }
  auto vol = StripedVolume::Create(std::move(devs), {});
  EXPECT_TRUE(vol.ok()) << vol.status().ToString();
  return std::move(vol).value();
}

/// Drive `vol` with a seeded random stream of stripe-spanning writes,
/// reads (token round-trips), flushes and (zoned) resets; append every
/// observable to `*out` as one comparable string. Timestamps in exact
/// nanoseconds — "bit-identical" means bit-identical.
void DriveInto(StripedVolume& vol, std::uint64_t seed, std::string* out) {
  const DeviceInfo di = vol.info();
  const bool zoned = di.zone_size_bytes != 0;
  const std::uint64_t span = zoned ? di.zone_size_bytes : 2 * kMiB;
  constexpr std::uint64_t kPage = 4 * kKiB;  // token granularity
  Rng rng;
  rng.Seed(seed);

  std::string fp;
  SimTime t;
  std::uint64_t wp = 0;  // sequential cursor within the first logical zone
  for (int step = 0; step < 120; ++step) {
    const std::uint64_t dice = rng.NextBelow(10);
    if (dice < 5) {
      // Stripe-spanning write (1..8 stripe units) at the zone cursor;
      // wraps via reset (zoned) or plain overwrite (conventional).
      const std::uint64_t len = (1 + rng.NextBelow(8)) * vol.stripe_bytes();
      if (wp + len > span) {
        if (zoned) {
          auto r = vol.ResetZone(ZoneId{0}, t);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          t = r.value();
        }
        wp = 0;
      }
      std::vector<std::uint64_t> tokens(len / kPage);
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        tokens[i] = seed * 1000003 + static_cast<std::uint64_t>(step) * 131 + i;
      }
      IoRequest req{wp, len, t, tokens};
      auto r = vol.Write(req);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      t = r.value().done;
      wp += len;
      fp += "w" + std::to_string(len) + "@" + std::to_string(t.ns()) + ";";
    } else if (dice < 8) {
      if (wp == 0) continue;  // nothing written since the last wrap
      // Read a random page-aligned slice of the written prefix, tokens
      // back through the gather/scatter path.
      const std::uint64_t pages = wp / kPage;
      const std::uint64_t first = rng.NextBelow(pages);
      const std::uint64_t len = std::min<std::uint64_t>(
          wp - first * kPage, (1 + rng.NextBelow(12)) * kPage);
      IoRequest req{first * kPage, len, t};
      req.want_tokens = true;
      auto r = vol.Read(req);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      t = r.value().done;
      fp += "r" + std::to_string(len) + "@" + std::to_string(t.ns());
      for (std::uint64_t tok : r.value().tokens) fp += "," + std::to_string(tok);
      fp += ";";
    } else {
      auto r = vol.Flush(t);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      t = r.value();
      fp += "f@" + std::to_string(t.ns()) + ";";
    }
  }
  const StatsSnapshot st = vol.Stats();
  fp += "stats:" + std::to_string(st.host_bytes_written) + "," +
        std::to_string(st.host_bytes_read) + "," +
        std::to_string(st.flash_bytes_written) + "," +
        std::to_string(st.zone_resets);
  *out = fp;
}

TEST(ExecutorStripedVolumeTest, ParallelFanOutBitIdenticalToSerial) {
  for (const MemberKind kind :
       {MemberKind::kFemu, MemberKind::kLegacy, MemberKind::kConZone}) {
    for (const std::uint64_t seed : {1ull, 77ull, 4242ull}) {
      // Reference: no executor attached (the historical inline path).
      auto ref_vol = MakeVolume(kind, 4);
      std::string reference;
      DriveInto(*ref_vol, seed, &reference);
      ASSERT_FALSE(reference.empty());

      // SerialExecutor attached must match exactly.
      {
        auto vol = MakeVolume(kind, 4);
        SerialExecutor serial;
        vol->set_executor(&serial);
        std::string fp;
        DriveInto(*vol, seed, &fp);
        EXPECT_EQ(fp, reference) << "serial, kind=" << static_cast<int>(kind)
                                 << " seed=" << seed;
      }
      // Work stealing at several widths must match bit for bit.
      for (const std::uint32_t threads : {2u, 4u, 8u}) {
        auto vol = MakeVolume(kind, 4);
        WorkStealingExecutor exec(threads);
        vol->set_executor(&exec);
        std::string fp;
        DriveInto(*vol, seed, &fp);
        EXPECT_EQ(fp, reference) << "threads=" << threads
                                 << " kind=" << static_cast<int>(kind)
                                 << " seed=" << seed;
      }
    }
  }
}

TEST(ExecutorStripedVolumeTest, SameSeedRerunIsBitIdenticalUnderParallelism) {
  // Two fresh volumes, same seed, same parallel executor width: the
  // whole observable stream must repeat exactly (run-to-run determinism,
  // not just parallel-vs-serial agreement).
  for (const std::uint32_t threads : {2u, 8u}) {
    WorkStealingExecutor exec(threads);
    std::string first;
    for (int rep = 0; rep < 2; ++rep) {
      auto vol = MakeVolume(MemberKind::kConZone, 4);
      vol->set_executor(&exec);
      std::string fp;
      DriveInto(*vol, /*seed=*/99, &fp);
      if (rep == 0) {
        first = fp;
      } else {
        EXPECT_EQ(fp, first) << "threads=" << threads;
      }
    }
  }
}

TEST(ExecutorStripedVolumeTest, FioWorkloadOnVolumeMatchesSerial) {
  // End to end through FioRunner: 512 KiB sequential writes span 8
  // stripe units, so every IO exercises the multi-run fan-out.
  auto run_one = [](Executor* exec) {
    auto vol = MakeVolume(MemberKind::kLegacy, 4);
    vol->set_executor(exec);
    JobSpec s;
    s.name = "seqwrite";
    s.pattern = IoPattern::kSequential;
    s.direction = IoDirection::kWrite;
    s.block_size = 512 * kKiB;
    // Whatever the small members add up to, rounded to whole blocks.
    s.region_size =
        std::min<std::uint64_t>(8 * kMiB, vol->info().capacity_bytes / s.block_size *
                                              s.block_size);
    s.io_count = 200;
    s.iodepth = 4;
    s.seed = 3;
    FioRunner fio(*vol);
    auto r = fio.Run({s});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    const RunResult& rr = r.value();
    std::string fp;
    for (const JobResult& j : rr.jobs) {
      fp += j.name + ":" + std::to_string(j.throughput.bytes) + "," +
            std::to_string(j.throughput.ops) + "," +
            std::to_string(j.last_completion.ns()) + "," + j.latency.Summary() + ";";
    }
    fp += "events=" + std::to_string(rr.events) +
          " end=" + std::to_string(rr.end_time.ns());
    return fp;
  };
  const std::string reference = run_one(nullptr);
  SerialExecutor serial;
  EXPECT_EQ(run_one(&serial), reference);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    WorkStealingExecutor exec(threads);
    EXPECT_EQ(run_one(&exec), reference) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// ShardedRunner on an external executor
// ---------------------------------------------------------------------------

ShardPlan ShardPlanForTest() {
  ShardPlan plan;
  plan.config = ConZoneConfig::PaperConfig();
  plan.config.geometry.blocks_per_chip = 20;
  plan.config.geometry.slc_blocks_per_chip = 4;
  JobSpec rd;
  rd.name = "randread";
  rd.pattern = IoPattern::kRandom;
  rd.direction = IoDirection::kRead;
  rd.block_size = 4096;
  rd.region_size = 8 * kMiB;
  rd.io_count = 600;
  rd.iodepth = 2;
  rd.seed = 7;
  plan.jobs = {rd};
  plan.shards = 4;
  plan.master_seed = 42;
  plan.precondition_bytes = 8 * kMiB;
  return plan;
}

std::string Fingerprint(const ShardedResult& r) {
  std::string fp;
  for (const ShardResult& s : r.shards) {
    fp += std::to_string(s.shard_id) + ":" + std::to_string(s.run.total.bytes) +
          "," + std::to_string(s.run.total.ops) + "," +
          std::to_string(s.run.end_time.ns()) + "," + s.run.latency.Summary() + ";";
  }
  fp += "total=" + std::to_string(r.total.bytes) + "," +
        std::to_string(r.total.ops) + "," + std::to_string(r.events) + "," +
        std::to_string(r.end_time.ns());
  return fp;
}

TEST(ExecutorShardedRunnerTest, ExternalExecutorMatchesInternalPool) {
  ShardPlan plan = ShardPlanForTest();
  plan.threads = 1;
  auto ref = ShardedRunner(plan).Run();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  const std::string reference = Fingerprint(ref.value());

  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    WorkStealingExecutor exec(threads);
    ShardPlan p = ShardPlanForTest();
    p.executor = &exec;
    p.threads = 0;  // must be ignored when an executor is supplied
    auto res = ShardedRunner(p).Run();
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(Fingerprint(res.value()), reference) << "threads=" << threads;
  }
}

TEST(ExecutorShardedRunnerTest, SharedExecutorServesBothConsumers) {
  // The unification claim, literally: one executor instance drives a
  // sharded run and a striped-volume fan-out; nested fan-outs inside
  // shard tasks fall back to inline execution via the InTask() guard.
  WorkStealingExecutor exec(4);

  ShardPlan plan = ShardPlanForTest();
  plan.members = 2;  // shard devices are striped volumes -> nested path
  plan.executor = &exec;
  auto sharded = ShardedRunner(plan).Run();
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  ShardPlan serial_plan = ShardPlanForTest();
  serial_plan.members = 2;
  serial_plan.threads = 1;
  auto reference = ShardedRunner(serial_plan).Run();
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_EQ(Fingerprint(sharded.value()), Fingerprint(reference.value()));

  // Same instance, striped-volume consumer, after the sharded batch.
  auto vol = MakeVolume(MemberKind::kConZone, 4);
  vol->set_executor(&exec);
  std::string fp;
  DriveInto(*vol, /*seed=*/5, &fp);
  auto ref_vol = MakeVolume(MemberKind::kConZone, 4);
  std::string ref_fp;
  DriveInto(*ref_vol, /*seed=*/5, &ref_fp);
  EXPECT_EQ(fp, ref_fp);
}

}  // namespace
}  // namespace conzone
